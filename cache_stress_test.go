package expelliarmus

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheNoStaleHitUnderConcurrentPublish races retrievals against
// publishes of new versions of the same images, with the retrieval cache
// on. Each publisher owns one VMI name and republishes it with a
// monotonically increasing version stamp in its user data, advancing a
// per-name floor only after the publish completes. Every retrieval
// captures the floor first and then asserts the image it got is at least
// that fresh — a stale cache hit (an image from before a completed
// publish) fails the test. This is exactly the race a non-seqlock
// generation bump would lose: a generation read *after* a mutation's
// writes became visible would let the mutated assembly be cached and
// served under the old key.
func TestCacheNoStaleHitUnderConcurrentPublish(t *testing.T) {
	sys := NewWithOptions(Options{CacheBytes: 64 << 20, Parallelism: 4})
	names := []string{"Mini", "Redis", "Base"}

	built := map[string]*Image{}
	for _, n := range names {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		built[n] = img
	}
	publish := func(name string, v int64) error {
		img := &Image{inner: built[name].inner.Clone()}
		if err := img.WriteUserFile("/home/user/version.txt", []byte(fmt.Sprintf("v%d", v))); err != nil {
			return err
		}
		_, err := sys.Publish(img)
		return err
	}

	// floor[name] is the highest version whose publish has completed;
	// any retrieval starting afterwards must observe at least it.
	floor := map[string]*atomic.Int64{}
	for _, n := range names {
		floor[n] = &atomic.Int64{}
		if err := publish(n, 1); err != nil {
			t.Fatalf("seed publish %s: %v", n, err)
		}
		floor[n].Store(1)
	}

	checkVersion := func(name string, low int64, img *Image) error {
		fs, err := img.inner.Mount()
		if err != nil {
			return err
		}
		data, err := fs.ReadFile("/home/user/version.txt")
		if err != nil {
			return fmt.Errorf("version file: %w", err)
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(string(data), "v"), 10, 64)
		if err != nil {
			return fmt.Errorf("version stamp %q: %w", data, err)
		}
		if v < low {
			return fmt.Errorf("STALE HIT: got version %d, but publish of %d had completed before the retrieval started", v, low)
		}
		return nil
	}

	const versions = 6
	var publishers sync.WaitGroup
	for _, name := range names {
		publishers.Add(1)
		go func(name string) {
			defer publishers.Done()
			for v := int64(2); v <= versions; v++ {
				if err := publish(name, v); err != nil {
					t.Errorf("publish %s v%d: %v", name, v, err)
					return
				}
				floor[name].Store(v)
			}
		}(name)
	}

	stop := make(chan struct{})
	var retrievers sync.WaitGroup
	const nRetrievers = 4
	for w := 0; w < nRetrievers; w++ {
		retrievers.Add(1)
		go func(w int) {
			defer retrievers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				low := floor[name].Load()
				img, _, err := sys.Retrieve(name)
				if err != nil {
					t.Errorf("retriever %d: retrieve %s: %v", w, name, err)
					return
				}
				if err := checkVersion(name, low, img); err != nil {
					t.Errorf("retriever %d: %s: %v", w, name, err)
					return
				}
			}
		}(w)
	}

	publishers.Wait()
	close(stop)
	retrievers.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: every image must now read its final version, twice — the
	// second read comes from the cache (assert it actually does), and both
	// must carry version `versions`, not any cached predecessor.
	for _, name := range names {
		before := sys.CacheStats()
		for i := 0; i < 2; i++ {
			img, _, err := sys.Retrieve(name)
			if err != nil {
				t.Fatalf("final retrieve %s: %v", name, err)
			}
			if err := checkVersion(name, versions, img); err != nil {
				t.Fatalf("final retrieve %s: %v", name, err)
			}
		}
		if after := sys.CacheStats(); after.Hits <= before.Hits {
			t.Fatalf("quiet double-retrieval of %s produced no cache hit (stats %+v)", name, after)
		}
	}
}
