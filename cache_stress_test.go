package expelliarmus

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/vmirepo"
)

// TestCacheNoStaleHitUnderConcurrentPublish races retrievals against
// publishes of new versions of the same images, with the retrieval cache
// on. Each publisher owns one VMI name and republishes it with a
// monotonically increasing version stamp in its user data, advancing a
// per-name floor only after the publish completes. Every retrieval
// captures the floor first and then asserts the image it got is at least
// that fresh — a stale cache hit (an image from before a completed
// publish) fails the test. This is exactly the race a non-seqlock
// generation bump would lose: a generation read *after* a mutation's
// writes became visible would let the mutated assembly be cached and
// served under the old key.
func TestCacheNoStaleHitUnderConcurrentPublish(t *testing.T) {
	sys := NewWithOptions(Options{CacheBytes: 64 << 20, Parallelism: 4})
	names := []string{"Mini", "Redis", "Base"}

	built := map[string]*Image{}
	for _, n := range names {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		built[n] = img
	}
	publish := func(name string, v int64) error {
		img := &Image{inner: built[name].inner.Clone()}
		if err := img.WriteUserFile("/home/user/version.txt", []byte(fmt.Sprintf("v%d", v))); err != nil {
			return err
		}
		_, err := sys.Publish(img)
		return err
	}

	// floor[name] is the highest version whose publish has completed;
	// any retrieval starting afterwards must observe at least it.
	floor := map[string]*atomic.Int64{}
	for _, n := range names {
		floor[n] = &atomic.Int64{}
		if err := publish(n, 1); err != nil {
			t.Fatalf("seed publish %s: %v", n, err)
		}
		floor[n].Store(1)
	}

	checkVersion := func(name string, low int64, img *Image) error {
		fs, err := img.inner.Mount()
		if err != nil {
			return err
		}
		data, err := fs.ReadFile("/home/user/version.txt")
		if err != nil {
			return fmt.Errorf("version file: %w", err)
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(string(data), "v"), 10, 64)
		if err != nil {
			return fmt.Errorf("version stamp %q: %w", data, err)
		}
		if v < low {
			return fmt.Errorf("STALE HIT: got version %d, but publish of %d had completed before the retrieval started", v, low)
		}
		return nil
	}

	const versions = 6
	var publishers sync.WaitGroup
	for _, name := range names {
		publishers.Add(1)
		go func(name string) {
			defer publishers.Done()
			for v := int64(2); v <= versions; v++ {
				if err := publish(name, v); err != nil {
					t.Errorf("publish %s v%d: %v", name, v, err)
					return
				}
				floor[name].Store(v)
			}
		}(name)
	}

	stop := make(chan struct{})
	var retrievers sync.WaitGroup
	const nRetrievers = 4
	for w := 0; w < nRetrievers; w++ {
		retrievers.Add(1)
		go func(w int) {
			defer retrievers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				low := floor[name].Load()
				img, _, err := sys.Retrieve(name)
				if err != nil {
					t.Errorf("retriever %d: retrieve %s: %v", w, name, err)
					return
				}
				if err := checkVersion(name, low, img); err != nil {
					t.Errorf("retriever %d: %s: %v", w, name, err)
					return
				}
			}
		}(w)
	}

	publishers.Wait()
	close(stop)
	retrievers.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: every image must now read its final version, twice — the
	// second read comes from the cache (assert it actually does), and both
	// must carry version `versions`, not any cached predecessor.
	for _, name := range names {
		before := sys.CacheStats()
		for i := 0; i < 2; i++ {
			img, _, err := sys.Retrieve(name)
			if err != nil {
				t.Fatalf("final retrieve %s: %v", name, err)
			}
			if err := checkVersion(name, versions, img); err != nil {
				t.Fatalf("final retrieve %s: %v", name, err)
			}
		}
		if after := sys.CacheStats(); after.Hits <= before.Hits {
			t.Fatalf("quiet double-retrieval of %s produced no cache hit (stats %+v)", name, after)
		}
	}
}

// TestCacheStripingAndSingleflightUnderCrossBaseTraffic is the striped
// variant of the publish-vs-retrieve stress test: the publish traffic
// lands exclusively on *other* bases (images of a different release, so
// their base images, VMI names and generation stripes are disjoint from
// the hot image's). The striping contract says the hot entry is never
// invalidated — zero misses once warm — and the singleflight contract
// says 32 concurrent misses on a cold key run exactly one assembly.
func TestCacheStripingAndSingleflightUnderCrossBaseTraffic(t *testing.T) {
	sys := NewWithOptions(Options{CacheBytes: 64 << 20})
	const hot = "Redis"

	hotImg, err := sys.BuildImage(hot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(hotImg); err != nil {
		t.Fatal(err)
	}
	hotRec, err := sys.sys.Repo().GetVMI(hot, nil)
	if err != nil {
		t.Fatal(err)
	}
	hotStripes := map[int]bool{
		vmirepo.StripeFor(hotRec.BaseID): true,
		vmirepo.StripeFor(hot):           true,
	}

	// Noise publishers: one image per foreign release, named off the hot
	// stripes (name stripes are free to choose; base stripes are content-
	// derived, so verify them after the seed publish and skip a colliding
	// release — stripe collision is striping's documented false sharing,
	// not what this test pins).
	type noise struct {
		name string
		img  *Image // built once; Publish clones internally
	}
	var publishers []noise
	for _, rel := range []catalog.Release{catalog.ReleaseBionic, catalog.ReleaseStretch} {
		b := builder.New(catalog.NewUniverseFor(rel))
		tpl, ok := catalog.Find("Mini")
		if !ok {
			t.Fatal("Mini template missing")
		}
		name := ""
		for i := 0; i < 1000; i++ {
			cand := fmt.Sprintf("noise-%s-%d", rel.Base.Version, i)
			if !hotStripes[vmirepo.StripeFor(cand)] {
				name = cand
				break
			}
		}
		tpl.Name = name
		img, err := b.Build(tpl)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		publishers = append(publishers, noise{name: name, img: &Image{inner: img}})
	}
	publishNoise := func(n noise, version int) error {
		img := &Image{inner: n.img.inner.Clone()}
		if err := img.WriteUserFile("/home/user/version.txt", []byte(fmt.Sprintf("v%d", version))); err != nil {
			return err
		}
		if _, err := sys.Publish(img); err != nil {
			return fmt.Errorf("publish %s v%d: %w", n.name, version, err)
		}
		return nil
	}
	kept := publishers[:0]
	for _, n := range publishers {
		if err := publishNoise(n, 1); err != nil {
			t.Fatal(err)
		}
		rec, err := sys.sys.Repo().GetVMI(n.name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !hotStripes[vmirepo.StripeFor(rec.BaseID)] {
			kept = append(kept, n)
		}
	}
	publishers = kept
	if len(publishers) == 0 {
		t.Fatal("every foreign release's base collides with a hot stripe; regenerate the workload")
	}

	// Warm the hot entry and capture the reference bytes.
	refImg, _, err := sys.Retrieve(hot)
	if err != nil {
		t.Fatal(err)
	}
	ref := refImg.inner.Disk.Serialize()
	warm := sys.CacheStats()

	// Phase 1 — striping: steady publish traffic on the other bases while
	// retrievers hammer the hot image. Every hot retrieval must be a warm
	// hit with the reference bytes.
	const noiseRounds = 10
	var publishWG sync.WaitGroup
	for _, n := range publishers {
		publishWG.Add(1)
		go func(n noise) {
			defer publishWG.Done()
			for v := 2; v < 2+noiseRounds; v++ {
				if err := publishNoise(n, v); err != nil {
					t.Error(err)
					return
				}
			}
		}(n)
	}
	var retrieveWG sync.WaitGroup
	var stale atomic.Int64
	const retrievesPerWorker = 10
	for w := 0; w < 4; w++ {
		retrieveWG.Add(1)
		go func(w int) {
			defer retrieveWG.Done()
			for i := 0; i < retrievesPerWorker; i++ {
				img, _, err := sys.Retrieve(hot)
				if err != nil {
					t.Errorf("retriever %d: %v", w, err)
					return
				}
				if !bytes.Equal(img.inner.Disk.Serialize(), ref) {
					stale.Add(1)
				}
			}
		}(w)
	}
	publishWG.Wait()
	retrieveWG.Wait()
	if t.Failed() {
		return
	}
	if got := stale.Load(); got != 0 {
		t.Fatalf("%d stale hot retrievals", got)
	}
	afterStorm := sys.CacheStats()
	if got := afterStorm.Misses - warm.Misses; got != 0 {
		t.Fatalf("hot entry invalidated %d times by publishes on other bases (stats %+v)", got, afterStorm)
	}
	for i, v := range afterStorm.StripeInvalidations {
		if hotStripes[i] && v != 0 {
			t.Fatalf("hot stripe %d collected %d insert invalidations", i, v)
		}
	}

	// Phase 2 — singleflight: move the hot generation with one republish,
	// then fire 32 concurrent misses; exactly one may assemble.
	hotImg2, err := sys.BuildImage(hot)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(hotImg2); err != nil {
		t.Fatal(err)
	}
	before := sys.CacheStats()
	const clients = 32
	var burst sync.WaitGroup
	for w := 0; w < clients; w++ {
		burst.Add(1)
		go func(w int) {
			defer burst.Done()
			img, _, err := sys.Retrieve(hot)
			if err != nil {
				t.Errorf("burst %d: %v", w, err)
				return
			}
			if !bytes.Equal(img.inner.Disk.Serialize(), ref) {
				t.Errorf("burst %d: bytes differ from reference", w)
			}
		}(w)
	}
	burst.Wait()
	if t.Failed() {
		return
	}
	after := sys.CacheStats()
	assemblies := (after.Puts - before.Puts) + (after.Rejected - before.Rejected)
	for i := range after.StripeInvalidations {
		assemblies += after.StripeInvalidations[i] - before.StripeInvalidations[i]
	}
	if assemblies != 1 {
		t.Fatalf("%d assemblies for %d concurrent misses, want exactly 1 (before %+v, after %+v)",
			assemblies, clients, before, after)
	}
	if served := (after.Hits - before.Hits) + (after.Coalesced - before.Coalesced); served != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d", served, clients-1)
	}
}
