package expelliarmus

// Root-level benchmark harness: one testing.B benchmark per table and
// figure of the paper's evaluation (Sec. VI), plus the ablations from
// DESIGN.md. Each benchmark regenerates its experiment and reports the
// headline quantities as custom metrics so `go test -bench=. -benchmem`
// prints the reproduced results alongside runtime cost. cmd/expelbench
// renders the same experiments as full tables.

import (
	"testing"

	"expelliarmus/internal/bench"
)

// benchRunner caches built evaluation images across all benchmarks.
var benchRunner = bench.NewRunner()

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := benchRunner.TableII()
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) != 19 {
			b.Fatalf("rows = %d", len(tbl.Rows))
		}
	}
}

func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig3a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Final("qcow2"), "qcow2_GB")
		b.ReportMetric(fig.Final("qcow2+gzip"), "gzip_GB")
		b.ReportMetric(fig.Final("mirage"), "mirage_GB")
		b.ReportMetric(fig.Final("hemera"), "hemera_GB")
		b.ReportMetric(fig.Final("expelliarmus"), "expel_GB")
	}
}

func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Final("qcow2"), "qcow2_GB")
		b.ReportMetric(fig.Final("qcow2+gzip"), "gzip_GB")
		b.ReportMetric(fig.Final("mirage"), "mirage_GB")
		b.ReportMetric(fig.Final("expelliarmus"), "expel_GB")
	}
}

func BenchmarkFig3c(b *testing.B) {
	// The paper's full 40-build series.
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig3c(40)
		if err != nil {
			b.Fatal(err)
		}
		q := fig.Final("qcow2")
		g := fig.Final("qcow2+gzip")
		m := fig.Final("mirage")
		e := fig.Final("expelliarmus")
		b.ReportMetric(q, "qcow2_GB")
		b.ReportMetric(g, "gzip_GB")
		b.ReportMetric(m, "mirage_GB")
		b.ReportMetric(e, "expel_GB")
		// §VI-B headline ratios (paper: 16x and 2.2x).
		b.ReportMetric(g/e, "gzip_over_expel_x")
		b.ReportMetric(m/e, "mirage_over_expel_x")
	}
}

func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig4a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Final("expelliarmus"), "expel_IDE_s")
		b.ReportMetric(fig.Final("mirage"), "mirage_IDE_s")
		b.ReportMetric(fig.Final("hemera"), "hemera_IDE_s")
	}
}

func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig4b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Final("expelliarmus"), "expel_Elastic_s")
		b.ReportMetric(fig.Final("semantic"), "semantic_Elastic_s")
		b.ReportMetric(fig.Final("mirage"), "mirage_Elastic_s")
	}
}

func BenchmarkFig5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig5a()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Final("total"), "elastic_retrieval_s")
		b.ReportMetric(fig.Final("import"), "elastic_import_s")
		b.ReportMetric(fig.Final("base-image-copy"), "elastic_copy_s")
	}
}

func BenchmarkFig5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := benchRunner.Fig5b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Final("mirage"), "mirage_Elastic_s")
		b.ReportMetric(fig.Final("hemera"), "hemera_Elastic_s")
		b.ReportMetric(fig.Final("expelliarmus"), "expel_Elastic_s")
	}
}

func BenchmarkAblationChunking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner.AblationChunking(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMasterGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner.AblationMasterGraph([]int{1, 5, 10, 19}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBaseSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchRunner.AblationBaseSelection(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishRedis measures the real CPU cost of one full semantic
// publish (graph build, similarity, repack, base selection) on a warm
// repository — the library's own performance, independent of the modeled
// testbed seconds.
func BenchmarkPublishRedis(b *testing.B) {
	sys := New()
	mini, err := sys.BuildImage("Mini")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Publish(mini); err != nil {
		b.Fatal(err)
	}
	redis, err := sys.BuildImage("Redis")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Publish(redis); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieveRedis measures the real CPU cost of one assembly.
func BenchmarkRetrieveRedis(b *testing.B) {
	sys := New()
	redis, err := sys.BuildImage("Redis")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Publish(redis); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Retrieve("Redis"); err != nil {
			b.Fatal(err)
		}
	}
}
