package expelliarmus

import (
	"strings"
	"testing"

	"expelliarmus/internal/core"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

// TestRetrieveAllPartialFailure: a batch containing an unpublished name
// fails, but the facade must still return one slot per input name with
// the successful retrievals filled in — the partial-results promise of
// the doc comment.
func TestRetrieveAllPartialFailure(t *testing.T) {
	sys := NewWithOptions(Options{Parallelism: 4})
	for _, n := range []string{"Mini", "Redis"} {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"Mini", "no-such-vmi", "Redis"}
	imgs, reps, err := sys.RetrieveAll(names)
	if err == nil {
		t.Fatal("batch with an unpublished name reported success")
	}
	if !strings.Contains(err.Error(), "no-such-vmi") {
		t.Fatalf("error does not name the failing image: %v", err)
	}
	if len(imgs) != len(names) || len(reps) != len(names) {
		t.Fatalf("got %d images / %d results, want %d slots each", len(imgs), len(reps), len(names))
	}
	if imgs[1] != nil || reps[1] != nil {
		t.Fatal("failed retrieval produced a non-nil result")
	}
	for _, i := range []int{0, 2} {
		// The worker pool stops scheduling after the first failure, so a
		// successful slot is not guaranteed — but a filled slot must be
		// coherent (image and result paired and named correctly).
		if (imgs[i] == nil) != (reps[i] == nil) {
			t.Fatalf("slot %d: image and result presence diverge", i)
		}
		if imgs[i] != nil && imgs[i].Name() != names[i] {
			t.Fatalf("slot %d: image %q, want %q", i, imgs[i].Name(), names[i])
		}
	}
}

// TestMapRetrieveResultsSkew is the failure-injection test for the
// result-mapping loop itself: a core batch that (through any future bug
// or partial cancellation) hands back skewed or short slices must map to
// nil slots, not index-panic.
func TestMapRetrieveResultsSkew(t *testing.T) {
	img := &vmi.Image{Name: "a"}
	rep := &core.RetrieveReport{Image: "a", Meter: &simio.Meter{}}
	cases := []struct {
		name string
		n    int
		imgs []*vmi.Image
		reps []*core.RetrieveReport
	}{
		{"RepsShorter", 3, []*vmi.Image{img, img, img}, []*core.RetrieveReport{rep}},
		{"ImgsShorter", 3, []*vmi.Image{img}, []*core.RetrieveReport{rep, rep, rep}},
		{"BothEmpty", 2, nil, nil},
		{"NilHoles", 2, []*vmi.Image{nil, img}, []*core.RetrieveReport{rep, nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outImgs, outReps := mapRetrieveResults(tc.n, tc.imgs, tc.reps)
			if len(outImgs) != tc.n || len(outReps) != tc.n {
				t.Fatalf("got %d/%d slots, want %d", len(outImgs), len(outReps), tc.n)
			}
			for i := 0; i < tc.n; i++ {
				want := i < len(tc.imgs) && i < len(tc.reps) && tc.imgs[i] != nil && tc.reps[i] != nil
				if got := outImgs[i] != nil && outReps[i] != nil; got != want {
					t.Fatalf("slot %d mapped = %v, want %v", i, got, want)
				}
				if (outImgs[i] == nil) != (outReps[i] == nil) {
					t.Fatalf("slot %d: image and result presence diverge", i)
				}
			}
		})
	}
}
