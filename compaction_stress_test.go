package expelliarmus

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCompactionUnderTraffic is the compaction-under-traffic stress
// test, reusing the publish-vs-retrieve storm harness: publishers
// republish versioned user data and retrievers assert version floors
// (any stale byte fails) while a dedicated goroutine forces metadata-WAL
// compactions as fast as it can — on top of the aggressive auto
// compaction a tiny WALCompactBytes already causes on every Sync. The
// pinned contracts: traffic racing a compaction never errors, never
// observes a stale or partial state, the retrieval cache serves zero
// stale bytes across compaction boundaries, and the repository reopened
// after the storm (state reconstructed from the last compacted snapshot
// + WAL tail) serves every final version — i.e. no reader or recovery
// path can ever see a partially-written snapshot.
func TestCompactionUnderTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction stress test skipped in -short mode")
	}
	dir := t.TempDir()
	sys, err := OpenAt(dir, Options{CacheBytes: 64 << 20, Parallelism: 4, WALCompactBytes: 2048})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	names := []string{"Mini", "Redis", "Base"}

	built := map[string]*Image{}
	for _, n := range names {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		built[n] = img
	}
	publish := func(name string, v int64) error {
		img := &Image{inner: built[name].inner.Clone()}
		if err := img.WriteUserFile("/home/user/version.txt", []byte(fmt.Sprintf("v%d", v))); err != nil {
			return err
		}
		_, err := sys.Publish(img)
		return err
	}
	checkVersion := func(name string, low int64, img *Image) error {
		fs, err := img.inner.Mount()
		if err != nil {
			return err
		}
		data, err := fs.ReadFile("/home/user/version.txt")
		if err != nil {
			return fmt.Errorf("version file: %w", err)
		}
		v, err := strconv.ParseInt(strings.TrimPrefix(string(data), "v"), 10, 64)
		if err != nil {
			return fmt.Errorf("version stamp %q: %w", data, err)
		}
		if v < low {
			return fmt.Errorf("STALE READ ACROSS COMPACTION: got version %d, floor was %d", v, low)
		}
		return nil
	}

	floor := map[string]*atomic.Int64{}
	for _, n := range names {
		floor[n] = &atomic.Int64{}
		if err := publish(n, 1); err != nil {
			t.Fatalf("seed publish %s: %v", n, err)
		}
		floor[n].Store(1)
	}
	if _, err := sys.Sync(); err != nil {
		t.Fatalf("seed Sync: %v", err)
	}

	const versions = 5
	var publishers sync.WaitGroup
	for _, name := range names {
		publishers.Add(1)
		go func(name string) {
			defer publishers.Done()
			for v := int64(2); v <= versions; v++ {
				if err := publish(name, v); err != nil {
					t.Errorf("publish %s v%d: %v", name, v, err)
					return
				}
				floor[name].Store(v)
			}
		}(name)
	}

	stop := make(chan struct{})
	var compactions atomic.Int64
	var compactor sync.WaitGroup
	compactor.Add(1)
	go func() {
		defer compactor.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st, err := sys.Compact()
			if err != nil {
				t.Errorf("compact under traffic: %v", err)
				return
			}
			if !st.Compacted {
				t.Errorf("forced compaction did not compact: %+v", st)
				return
			}
			compactions.Add(1)
		}
	}()

	var retrievers sync.WaitGroup
	for w := 0; w < 4; w++ {
		retrievers.Add(1)
		go func(w int) {
			defer retrievers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				low := floor[name].Load()
				img, _, err := sys.Retrieve(name)
				if err != nil {
					t.Errorf("retriever %d: retrieve %s: %v", w, name, err)
					return
				}
				if err := checkVersion(name, low, img); err != nil {
					t.Errorf("retriever %d: %s: %v", w, name, err)
					return
				}
			}
		}(w)
	}

	publishers.Wait()
	close(stop)
	retrievers.Wait()
	compactor.Wait()
	if t.Failed() {
		return
	}
	if compactions.Load() < 2 {
		t.Fatalf("only %d compactions raced the traffic; the storm never exercised the window", compactions.Load())
	}

	// Quiesced: every image reads its final version — twice, the second
	// time from the cache, so a compaction can also never have poisoned a
	// warm entry.
	for _, name := range names {
		before := sys.CacheStats()
		for i := 0; i < 2; i++ {
			img, _, err := sys.Retrieve(name)
			if err != nil {
				t.Fatalf("final retrieve %s: %v", name, err)
			}
			if err := checkVersion(name, versions, img); err != nil {
				t.Fatalf("final retrieve %s: %v", name, err)
			}
		}
		if after := sys.CacheStats(); after.Hits <= before.Hits {
			t.Fatalf("quiet double-retrieval of %s produced no cache hit (stats %+v)", name, after)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the state reconstructed from the last compacted snapshot
	// plus the WAL tail must hold every final version.
	re, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after compaction storm: %v", err)
	}
	defer re.Close()
	for _, name := range names {
		img, _, err := re.Retrieve(name)
		if err != nil {
			t.Fatalf("reopened retrieve %s: %v", name, err)
		}
		if err := checkVersion(name, versions, img); err != nil {
			t.Fatalf("reopened %s: %v", name, err)
		}
	}
}
