package expelliarmus

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestWALReplayEquivalence is the replay-equivalence property test for
// the metadata WAL: a random Table II op sequence — fresh publishes
// (some charged to tenants, some with TTLs), republishes with fresh
// user data, removals, TTL expiry sweeps, vacuums, retrievals — applied
// identically to a memory-backed System (the always-rewrite reference
// path: its Save() serialises the whole database) and to a disk-backed
// System whose WAL is periodically synced and aggressively compacted
// (a tiny threshold forces compactions mid-sequence). At every
// checkpoint the two must agree on byte-identical Save() snapshots,
// repository stats, tenant accounting and retrieval reports, and the
// disk System must still agree after Close and a real reopen — i.e.
// after its state has been reconstructed purely from snapshot + WAL
// replay.
func TestWALReplayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("replay-equivalence property test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260730))
	names := []string{"Mini", "Redis", "Base", "MongoDb", "Desktop"}

	mem := New()
	dir := t.TempDir()
	dsk, err := OpenAt(dir, Options{WALCompactBytes: 4096})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}

	// One built image per template per system; republishes clone it and
	// stamp versioned user data, so both systems see identical inputs.
	built := map[string]map[string]*Image{"mem": {}, "dsk": {}}
	for _, n := range names {
		for key, sys := range map[string]*System{"mem": mem, "dsk": dsk} {
			img, err := sys.BuildImage(n)
			if err != nil {
				t.Fatalf("build %s: %v", n, err)
			}
			built[key][n] = img
		}
	}
	publish := func(name string, version int, opts PublishOptions) error {
		for key, sys := range map[string]*System{"mem": mem, "dsk": dsk} {
			img := &Image{inner: built[key][name].inner.Clone()}
			if version > 0 {
				if err := img.WriteUserFile("/home/user/version.txt", []byte(fmt.Sprintf("v%d", version))); err != nil {
					return err
				}
			}
			memRes, err := sys.PublishWith(img, opts)
			if err != nil {
				return fmt.Errorf("%s publish %s v%d: %w", key, name, version, err)
			}
			_ = memRes
		}
		return nil
	}

	check := func(stage string) {
		t.Helper()
		memSnap := mustSave(t, mem)
		dskSnap := mustSave(t, dsk)
		if !bytes.Equal(memSnap, dskSnap) {
			t.Fatalf("[%s] Save() diverged: memory %d bytes, disk %d bytes", stage, len(memSnap), len(dskSnap))
		}
		// Compare the logical catalog only: DiskGB/DeadGB describe the disk
		// backend's physical footprint, which a memory repo rightly lacks.
		ms, ds := mem.RepoStats(), dsk.RepoStats()
		ms.DiskGB, ms.DeadGB = 0, 0
		ds.DiskGB, ds.DeadGB = 0, 0
		if ms != ds {
			t.Fatalf("[%s] repo stats diverged: memory %+v, disk %+v", stage, ms, ds)
		}
		// fmt prints maps in sorted key order, so this is a stable compare.
		if mt, dt := fmt.Sprint(mem.TenantStats()), fmt.Sprint(dsk.TenantStats()); mt != dt {
			t.Fatalf("[%s] tenant accounting diverged: memory %s, disk %s", stage, mt, dt)
		}
	}

	published := map[string]int{} // name -> latest user-data version
	clock := int64(1000)          // logical expiry clock; TTLs land a few ticks out
	const steps = 34
	for i := 0; i < steps; i++ {
		name := names[rng.Intn(len(names))]
		switch {
		case published[name] == 0:
			var opts PublishOptions
			if rng.Intn(2) == 0 {
				opts.Tenant = []string{"alice", "bob"}[rng.Intn(2)]
			}
			if rng.Intn(3) == 0 {
				opts.ExpiresAt = clock + int64(rng.Intn(8)+1)
			}
			if err := publish(name, 1, opts); err != nil {
				t.Fatal(err)
			}
			published[name] = 1
		case rng.Intn(6) == 0: // TTL sweep at an advancing deadline
			clock += int64(rng.Intn(5) + 1)
			memExp, err := mem.ExpireAt(clock)
			if err != nil {
				t.Fatalf("mem expire at %d: %v", clock, err)
			}
			dskExp, err := dsk.ExpireAt(clock)
			if err != nil {
				t.Fatalf("dsk expire at %d: %v", clock, err)
			}
			sort.Strings(memExp)
			sort.Strings(dskExp)
			if fmt.Sprint(memExp) != fmt.Sprint(dskExp) {
				t.Fatalf("expiry diverged at %d: memory %v, disk %v", clock, memExp, dskExp)
			}
			for _, n := range memExp {
				delete(published, n)
			}
		case rng.Intn(6) == 0: // vacuum (accounting rewrite + orphan sweep)
			for key, sys := range map[string]*System{"mem": mem, "dsk": dsk} {
				if _, err := sys.Vacuum(); err != nil {
					t.Fatalf("%s vacuum: %v", key, err)
				}
			}
		case rng.Intn(4) == 0 && len(published) > 1:
			for key, sys := range map[string]*System{"mem": mem, "dsk": dsk} {
				if err := sys.Remove(name); err != nil {
					t.Fatalf("%s remove %s: %v", key, name, err)
				}
			}
			delete(published, name)
		case rng.Intn(3) == 0:
			memImg, memRep, err := mem.Retrieve(name)
			if err != nil {
				t.Fatalf("mem retrieve %s: %v", name, err)
			}
			dskImg, dskRep, err := dsk.Retrieve(name)
			if err != nil {
				t.Fatalf("dsk retrieve %s: %v", name, err)
			}
			if !bytes.Equal(memImg.inner.Disk.Serialize(), dskImg.inner.Disk.Serialize()) {
				t.Fatalf("retrieved %s bytes diverged", name)
			}
			if fmt.Sprintf("%v %v", memRep.Imported, memRep.Seconds) != fmt.Sprintf("%v %v", dskRep.Imported, dskRep.Seconds) {
				t.Fatalf("retrieval reports for %s diverged", name)
			}
		default:
			// Republish: fresh user data, and occasionally a fresh tenant or
			// TTL — the new lifecycle record replaces the old one wholesale.
			var opts PublishOptions
			if rng.Intn(3) == 0 {
				opts.Tenant = "carol"
			}
			if rng.Intn(4) == 0 {
				opts.ExpiresAt = clock + int64(rng.Intn(8)+1)
			}
			v := published[name] + 1
			if err := publish(name, v, opts); err != nil {
				t.Fatal(err)
			}
			published[name] = v
		}
		if i%4 == 3 {
			if _, err := dsk.Sync(); err != nil {
				t.Fatalf("step %d Sync: %v", i, err)
			}
			check(fmt.Sprintf("step %d", i))
		}
		if i == steps/2 {
			st, err := dsk.Compact()
			if err != nil {
				t.Fatalf("mid-sequence Compact: %v", err)
			}
			if !st.Compacted {
				t.Fatalf("forced compaction did not compact: %+v", st)
			}
			check("post-compact")
		}
	}
	check("final")
	finalNames := make([]string, 0, len(published))
	for name := range published {
		finalNames = append(finalNames, name)
	}
	sort.Strings(finalNames)
	memSnap := mustSave(t, mem)
	memStats := mem.RepoStats()
	memRet := ""
	for _, name := range finalNames {
		_, rep, err := mem.Retrieve(name)
		if err != nil {
			t.Fatalf("final mem retrieve %s: %v", name, err)
		}
		memRet += fmt.Sprintf("%s %v %.6f %v\n", name, rep.Imported, rep.Seconds, rep.Phases)
	}
	if err := dsk.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The reopened System's state is reconstructed purely from the
	// committed snapshot + WAL replay; it must be indistinguishable.
	re, err := OpenAt(dir, Options{WALCompactBytes: 4096})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if reSnap := mustSave(t, re); !bytes.Equal(reSnap, memSnap) {
		t.Fatalf("reopened Save() differs from the always-rewrite reference: %d vs %d bytes", len(reSnap), len(memSnap))
	}
	// Logical catalog only, as in check(): the reopened repo's physical
	// footprint (DiskGB/DeadGB) depends on segment layout and released
	// bytes, neither of which a memory reference has.
	reStats, refStats := re.RepoStats(), memStats
	reStats.DiskGB, reStats.DeadGB = 0, 0
	refStats.DiskGB, refStats.DeadGB = 0, 0
	if reStats != refStats {
		t.Fatalf("reopened stats differ: %+v vs %+v", reStats, refStats)
	}
	reRet := ""
	for _, name := range finalNames {
		_, rep, err := re.Retrieve(name)
		if err != nil {
			t.Fatalf("reopened retrieve %s: %v", name, err)
		}
		reRet += fmt.Sprintf("%s %v %.6f %v\n", name, rep.Imported, rep.Seconds, rep.Phases)
	}
	if reRet != memRet {
		t.Fatalf("retrieval reports differ after WAL replay:\nmemory:\n%s\nreopened:\n%s", memRet, reRet)
	}
}

// TestWALCrashRollsBackToLastSync pins the facade-visible crash
// contract: operations after the last Sync are rolled back by a crash —
// the reopened catalog is exactly the synced one, with the unsynced
// publish absent and the unsynced removal undone.
func TestWALCrashRollsBackToLastSync(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	for _, n := range []string{"Mini", "Redis"} {
		img, err := sys.BuildImage(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Unsynced tail: remove one image, publish another.
	if err := sys.Remove("Mini"); err != nil {
		t.Fatal(err)
	}
	img, err := sys.BuildImage("Base")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(img); err != nil {
		t.Fatal(err)
	}
	if err := sys.sys.Repo().Abandon(); err != nil { // crash
		t.Fatalf("Abandon: %v", err)
	}

	re, err := OpenAt(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for _, n := range []string{"Mini", "Redis"} {
		if _, _, err := re.Retrieve(n); err != nil {
			t.Fatalf("synced VMI %s lost to the crash: %v", n, err)
		}
	}
	if _, _, err := re.Retrieve("Base"); err == nil {
		t.Fatalf("unsynced publish survived the crash")
	}
}
