package expelliarmus

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// renderRetrieve is a deterministic rendering of a retrieval report (%v
// prints maps key-sorted).
func renderRetrieve(r *RetrieveResult) string {
	return fmt.Sprintf("imported=%v t=%.9f phases=%v", r.Imported, r.Seconds, r.Phases)
}

// renderPublish is a deterministic rendering of a publish report.
func renderPublish(p *PublishResult) string {
	return fmt.Sprintf("sim=%.9f exported=%v skipped=%d base=%v t=%.9f phases=%v",
		p.Similarity, p.Exported, p.Skipped, p.BaseStored, p.Seconds, p.Phases)
}

// TestCacheTransparencyUnderRandomOps is the facade-level invalidation
// property test: one pseudo-random interleaving of Publish (fresh
// versions with changed user data), Retrieve and Remove is driven through
// two Systems that differ only in Options.CacheBytes. At every step the
// two must be indistinguishable — byte-identical retrieval reports,
// byte-identical serialized images, and the user data of whichever
// version was last published — which fails if a cached image ever
// survives the publish or removal that invalidated it.
func TestCacheTransparencyUnderRandomOps(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(20260729))
	on := NewWithOptions(Options{CacheBytes: 64 << 20})
	off := New()
	systems := []*System{on, off}

	names := []string{"Mini", "Redis", "PostgreSql", "Base"}
	built := map[string]*Image{}
	for _, n := range names {
		img, err := on.BuildImage(n) // builders are equivalent; any System's works
		if err != nil {
			t.Fatal(err)
		}
		built[n] = img
	}

	version := map[string]int{}
	published := map[string]bool{}

	publish := func(name string) {
		version[name]++
		var reports []string
		for _, sys := range systems {
			img := &Image{inner: built[name].inner.Clone()}
			if err := img.WriteUserFile("/home/user/version.txt",
				[]byte(fmt.Sprintf("v%d", version[name]))); err != nil {
				t.Fatalf("user file %s: %v", name, err)
			}
			pub, err := sys.Publish(img)
			if err != nil {
				t.Fatalf("publish %s v%d: %v", name, version[name], err)
			}
			reports = append(reports, renderPublish(pub))
		}
		if reports[0] != reports[1] {
			t.Fatalf("publish %s v%d: reports diverge\ncached:   %s\nuncached: %s",
				name, version[name], reports[0], reports[1])
		}
		published[name] = true
	}

	retrieve := func(name string) {
		imgOn, retOn, errOn := on.Retrieve(name)
		imgOff, retOff, errOff := off.Retrieve(name)
		if errOn != nil || errOff != nil {
			t.Fatalf("retrieve %s: cached err %v, uncached err %v", name, errOn, errOff)
		}
		if gotOn, gotOff := renderRetrieve(retOn), renderRetrieve(retOff); gotOn != gotOff {
			t.Fatalf("retrieve %s: reports diverge\ncached:   %s\nuncached: %s", name, gotOn, gotOff)
		}
		onBytes := imgOn.inner.Disk.Serialize()
		offBytes := imgOff.inner.Disk.Serialize()
		if !bytes.Equal(onBytes, offBytes) {
			t.Fatalf("retrieve %s: images diverge (%d vs %d bytes)", name, len(onBytes), len(offBytes))
		}
		// The image must carry the latest published user data — the check
		// that catches a stale cache entry even if both systems were wrong
		// in the same way.
		fs, err := imgOn.inner.Mount()
		if err != nil {
			t.Fatal(err)
		}
		data, err := fs.ReadFile("/home/user/version.txt")
		if err != nil {
			t.Fatalf("retrieve %s: version file: %v", name, err)
		}
		if want := fmt.Sprintf("v%d", version[name]); string(data) != want {
			t.Fatalf("retrieve %s: user data %q, want %q (stale image served)", name, data, want)
		}
	}

	remove := func(name string) {
		errOn, errOff := on.Remove(name), off.Remove(name)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("remove %s: cached err %v, uncached err %v", name, errOn, errOff)
		}
		published[name] = false
	}

	const ops = 90
	for i := 0; i < ops; i++ {
		name := names[rng.Intn(len(names))]
		switch r := rng.Float64(); {
		case r < 0.30:
			publish(name)
		case r < 0.90:
			if published[name] {
				retrieve(name)
			}
		default:
			if published[name] {
				remove(name)
			}
		}
	}

	// Final sweep: every still-published VMI compares clean, and the
	// cached system's stats agree the test exercised the cache.
	for _, name := range names {
		if published[name] {
			retrieve(name)
		}
	}
	st := on.CacheStats()
	if !st.Enabled {
		t.Fatal("cache not enabled on the cached system")
	}
	if st.Hits == 0 {
		t.Fatalf("sequence produced no cache hits (stats %+v); the property was not exercised", st)
	}
	if off.CacheStats().Enabled {
		t.Fatal("uncached system reports an enabled cache")
	}
}
