package expelliarmus

// Integration tests exercising the whole stack through the public facade:
// catalog → builder → guestfs → package manager → semantic graphs →
// repository → assembler, across multiple images and both retrieval paths.

import (
	"fmt"
	"testing"
)

// TestIntegrationLifecycle publishes a representative slice of the
// evaluation set, verifies repository invariants after each step, and
// retrieves every image back, checking functional equivalence.
func TestIntegrationLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	sys := New()
	names := []string{"Mini", "Redis", "PostgreSql", "Base", "Lemp", "Cassandra"}
	binaries := map[string][]string{
		"Mini":       nil,
		"Redis":      {"/usr/bin/redis-server"},
		"PostgreSql": {"/usr/bin/postgresql-9.5"},
		"Base":       {"/usr/bin/apache2", "/usr/bin/mysql-server", "/usr/bin/php7"},
		"Lemp":       {"/usr/bin/nginx", "/usr/bin/mysql-server", "/usr/bin/php-fpm"},
		"Cassandra":  {"/usr/bin/cassandra", "/usr/bin/openjdk-8"},
	}

	var prevSize float64
	for i, name := range names {
		img, err := sys.BuildImage(name)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		pub, err := sys.Publish(img)
		if err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
		st := sys.RepoStats()
		// One base image, ever.
		if st.BaseImages != 1 {
			t.Fatalf("after %s: %d base images", name, st.BaseImages)
		}
		if st.VMIs != i+1 {
			t.Fatalf("after %s: %d VMIs", name, st.VMIs)
		}
		// Size grows monotonically but by far less than a full image.
		if st.TotalGB < prevSize {
			t.Fatalf("repo shrank after %s", name)
		}
		if i > 0 && st.TotalGB-prevSize > 0.5 {
			t.Fatalf("repo grew %.2f GB for %s, dedup failed", st.TotalGB-prevSize, name)
		}
		prevSize = st.TotalGB
		// First image stores the base, later ones never do.
		if (i == 0) != pub.BaseStored {
			t.Fatalf("%s: BaseStored = %v at position %d", name, pub.BaseStored, i)
		}
	}

	// Everything retrieves; every expected binary is present.
	for _, name := range names {
		img, ret, err := sys.Retrieve(name)
		if err != nil {
			t.Fatalf("retrieve %s: %v", name, err)
		}
		for _, bin := range binaries[name] {
			if !img.HasFile(bin) {
				t.Errorf("%s: missing %s after retrieval", name, bin)
			}
		}
		if ret.Seconds <= 0 {
			t.Errorf("%s: zero retrieval time", name)
		}
	}

	// Cross-image assembly of never-uploaded combinations.
	combo, _, err := sys.Assemble("pg-cache", []string{"postgresql-9.5", "redis-server"}, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range []string{"/usr/bin/postgresql-9.5", "/usr/bin/redis-server"} {
		if !combo.HasFile(bin) {
			t.Errorf("assembly missing %s", bin)
		}
	}

	// Container export across the published set shares the base layer.
	exp := sys.NewContainerExporter()
	for _, name := range names {
		if _, err := exp.Export(name); err != nil {
			t.Fatalf("export %s: %v", name, err)
		}
	}
	if exp.StoreGB() > prevSize*1.2 {
		t.Errorf("container layer store %.2f GB far above repo %.2f GB", exp.StoreGB(), prevSize)
	}
}

// TestIntegrationDeterminism: two independent systems fed the same uploads
// converge to byte-identical repository sizes and identical reports.
func TestIntegrationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	run := func() (float64, string) {
		sys := New()
		var trace string
		for _, name := range []string{"Mini", "Redis", "Base"} {
			img, err := sys.BuildImage(name)
			if err != nil {
				t.Fatal(err)
			}
			pub, err := sys.Publish(img)
			if err != nil {
				t.Fatal(err)
			}
			trace += fmt.Sprintf("%s:%.4f:%d:%.3f;", name, pub.Similarity, len(pub.Exported), pub.Seconds)
		}
		return sys.RepoStats().TotalGB, trace
	}
	size1, trace1 := run()
	size2, trace2 := run()
	if size1 != size2 {
		t.Fatalf("repo sizes differ across runs: %v vs %v", size1, size2)
	}
	if trace1 != trace2 {
		t.Fatalf("publish traces differ:\n%s\n%s", trace1, trace2)
	}
}

// TestIntegrationChurnDiscarded verifies the semantic advantage directly:
// two successive builds of the same template differ only in churn, and the
// second publish adds almost nothing to the repository.
func TestIntegrationChurnDiscarded(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test skipped in -short mode")
	}
	sys := New()
	builds, err := sys.BuildIDESeries(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Publish(builds[0]); err != nil {
		t.Fatal(err)
	}
	size1 := sys.RepoStats().TotalGB
	if _, err := sys.Publish(builds[1]); err != nil {
		t.Fatal(err)
	}
	size2 := sys.RepoStats().TotalGB
	// The second build's ~105 paper-MB of unique churn must NOT land in
	// the repository; only metadata noise may.
	if growth := size2 - size1; growth > 0.02 {
		t.Fatalf("second identical-package build grew repo by %.3f GB", growth)
	}
}
