package vmirepo

import (
	"sync"
	"testing"

	"expelliarmus/internal/master"
	"expelliarmus/internal/semgraph"
)

// TestGenerationBumpsOnEveryMutation walks each mutating repository
// operation and checks the generation moved — the retrieval cache's
// invalidation protocol depends on no mutation slipping through quietly.
func TestGenerationBumpsOnEveryMutation(t *testing.T) {
	r, m := newRepo()
	last := r.Generation()
	step := func(op string, fn func()) {
		t.Helper()
		fn()
		if g := r.Generation(); g <= last {
			t.Fatalf("%s did not advance the generation (%d -> %d)", op, last, g)
		} else {
			last = g
		}
	}

	p := pkg("redis")
	step("EnsurePackage", func() {
		if _, err := r.EnsurePackage(p, []byte("blob"), m); err != nil {
			t.Fatal(err)
		}
	})
	step("PutBase", func() {
		if err := r.PutBase("base-1", attrs, []byte("base image"), m); err != nil {
			t.Fatal(err)
		}
	})
	step("PutMaster", func() {
		r.PutMaster(master.New("base-1", semgraph.New(attrs)), m)
	})
	step("PutVMI", func() {
		r.PutVMI(VMIRecord{Name: "vmi-1", BaseID: "base-1", Primaries: []string{"redis"}}, m)
	})
	step("PutUserData", func() {
		if err := r.PutUserData("vmi-1", []byte("archive"), m); err != nil {
			t.Fatal(err)
		}
	})
	step("RewireVMIs", func() { r.RewireVMIs("base-1", "base-2", m) })
	step("RemoveUserData", func() {
		if err := r.RemoveUserData("vmi-1", m); err != nil {
			t.Fatal(err)
		}
	})
	step("RemoveVMI", func() { r.RemoveVMI("vmi-1", m) })
	step("RemoveMaster", func() { r.RemoveMaster("base-1", m) })
	step("RemoveBase", func() {
		if err := r.RemoveBase("base-1", m); err != nil {
			t.Fatal(err)
		}
	})
	step("RemovePackage", func() {
		if err := r.RemovePackage(p.Ref(), m); err != nil {
			t.Fatal(err)
		}
	})
}

// TestGenerationStableAcrossReads pins the other half of the contract:
// read-only operations never move the generation, otherwise the cache
// could never take a hit.
func TestGenerationStableAcrossReads(t *testing.T) {
	r, m := newRepo()
	p := pkg("redis")
	if _, err := r.EnsurePackage(p, []byte("blob"), m); err != nil {
		t.Fatal(err)
	}
	if err := r.PutBase("base-1", attrs, []byte("base image"), m); err != nil {
		t.Fatal(err)
	}
	r.PutVMI(VMIRecord{Name: "vmi-1", BaseID: "base-1"}, m)
	g := r.Generation()
	r.HasPackage(p.Ref(), m)
	if _, _, err := r.GetPackage(p.Ref(), "fetch", m); err != nil {
		t.Fatal(err)
	}
	r.HasBase("base-1", m)
	if _, err := r.GetBase("base-1", "copy", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetVMI("vmi-1", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetUserData("vmi-1", "import", m); err != nil {
		t.Fatal(err)
	}
	r.VMIs()
	r.Stats()
	if _, err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := r.Generation(); got != g {
		t.Fatalf("reads moved the generation: %d -> %d", g, got)
	}
}

// TestGenerationWindowNeverValidatesAcrossMutation is the seqlock
// property the cache's insert path relies on: a reader that captures the
// generation before a mutation begins can never observe the same
// generation after that mutation's writes became visible. The mutation is
// held open in another goroutine while the reader samples.
func TestGenerationWindowNeverValidatesAcrossMutation(t *testing.T) {
	r, m := newRepo()
	const rounds = 200
	var wg sync.WaitGroup
	start := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range start {
			r.PutVMI(VMIRecord{Name: "vmi", BaseID: "base"}, m)
			_ = i
		}
	}()
	for i := 0; i < rounds; i++ {
		before := r.Generation()
		start <- i // mutation begins strictly after `before` was captured
		// Sample until the record write is visible, then check the window.
		for {
			if _, err := r.GetVMI("vmi", nil); err == nil {
				break
			}
		}
		if r.Generation() == before {
			t.Fatalf("round %d: observed a committed write inside a stable generation window", i)
		}
		r.RemoveVMI("vmi", m)
	}
	close(start)
	wg.Wait()
}
