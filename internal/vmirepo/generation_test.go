package vmirepo

import (
	"fmt"
	"sync"
	"testing"

	"expelliarmus/internal/master"
	"expelliarmus/internal/semgraph"
)

// TestGenerationBumpsOnEveryMutation walks each mutating repository
// operation and checks the generation moved — the retrieval cache's
// invalidation protocol depends on no mutation slipping through quietly.
func TestGenerationBumpsOnEveryMutation(t *testing.T) {
	r, m := newRepo()
	last := r.Generation()
	step := func(op string, fn func()) {
		t.Helper()
		fn()
		if g := r.Generation(); g <= last {
			t.Fatalf("%s did not advance the generation (%d -> %d)", op, last, g)
		} else {
			last = g
		}
	}

	p := pkg("redis")
	// EnsurePackage is deliberately exempt: an add-only insert of a ref no
	// master graph references cannot change any assembly's output, so it
	// must NOT flush warm cache entries (see the EnsurePackage doc).
	if _, err := r.EnsurePackage(p, []byte("blob"), m); err != nil {
		t.Fatal(err)
	}
	if g := r.Generation(); g != last {
		t.Fatalf("EnsurePackage moved the generation (%d -> %d); package-only inserts must be exempt", last, g)
	}
	step("PutBase", func() {
		if err := r.PutBase("base-1", attrs, []byte("base image"), m); err != nil {
			t.Fatal(err)
		}
	})
	step("PutMaster", func() {
		r.PutMaster(master.New("base-1", semgraph.New(attrs)), m)
	})
	step("PutVMI", func() {
		r.PutVMI(VMIRecord{Name: "vmi-1", BaseID: "base-1", Primaries: []string{"redis"}}, m)
	})
	step("PutUserData", func() {
		if err := r.PutUserData("vmi-1", []byte("archive"), m); err != nil {
			t.Fatal(err)
		}
	})
	step("RewireVMIs", func() { r.RewireVMIs("base-1", "base-2", m) })
	step("RemoveUserData", func() {
		if err := r.RemoveUserData("vmi-1", m); err != nil {
			t.Fatal(err)
		}
	})
	step("RemoveVMI", func() { r.RemoveVMI("vmi-1", m) })
	step("RemoveMaster", func() { r.RemoveMaster("base-1", m) })
	step("RemoveBase", func() {
		if err := r.RemoveBase("base-1", m); err != nil {
			t.Fatal(err)
		}
	})
	step("RemovePackage", func() {
		if err := r.RemovePackage(p.Ref(), m); err != nil {
			t.Fatal(err)
		}
	})
}

// TestGenerationStableAcrossReads pins the other half of the contract:
// read-only operations never move the generation, otherwise the cache
// could never take a hit.
func TestGenerationStableAcrossReads(t *testing.T) {
	r, m := newRepo()
	p := pkg("redis")
	if _, err := r.EnsurePackage(p, []byte("blob"), m); err != nil {
		t.Fatal(err)
	}
	if err := r.PutBase("base-1", attrs, []byte("base image"), m); err != nil {
		t.Fatal(err)
	}
	r.PutVMI(VMIRecord{Name: "vmi-1", BaseID: "base-1"}, m)
	g := r.Generation()
	r.HasPackage(p.Ref(), m)
	if _, _, err := r.GetPackage(p.Ref(), "fetch", m); err != nil {
		t.Fatal(err)
	}
	r.HasBase("base-1", m)
	if _, err := r.GetBase("base-1", "copy", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetVMI("vmi-1", m); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetUserData("vmi-1", "import", m); err != nil {
		t.Fatal(err)
	}
	r.VMIs()
	r.Stats()
	if _, err := r.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := r.Generation(); got != g {
		t.Fatalf("reads moved the generation: %d -> %d", g, got)
	}
}

// otherStripeKey returns a key whose generation stripe differs from every
// stripe of the given keys — the "unrelated base" of the striping tests.
func otherStripeKey(t *testing.T, avoid ...string) string {
	t.Helper()
	used := map[int]bool{}
	for _, k := range avoid {
		used[StripeFor(k)] = true
	}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("unrelated-%d", i)
		if !used[StripeFor(k)] {
			return k
		}
	}
	t.Fatal("no key off the avoided stripes found")
	return ""
}

// TestGenerationStriping is the striping contract: a mutation scoped to
// one base image moves only the generation of its own stripe(s), so a
// reader scoped to an unrelated base keeps its window — the property that
// lets hot cache entries survive steady publish traffic on other bases.
func TestGenerationStriping(t *testing.T) {
	r, m := newRepo()
	hotBase := "base-hot"
	hotName := "vmi-hot"
	otherBase := otherStripeKey(t, hotBase, hotName)
	otherName := otherStripeKey(t, hotBase, hotName, otherBase)

	hotGen := r.GenerationFor(hotBase, hotName)

	// A full publish-shaped mutation sequence on the unrelated base.
	if err := r.PutBase(otherBase, attrs, []byte("image"), m); err != nil {
		t.Fatal(err)
	}
	r.PutMaster(master.New(otherBase, semgraph.New(attrs)), m)
	r.PutVMI(VMIRecord{Name: otherName, BaseID: otherBase}, m)
	if err := r.PutUserData(otherName, []byte("archive"), m); err != nil {
		t.Fatal(err)
	}
	if got := r.GenerationFor(hotBase, hotName); got != hotGen {
		t.Fatalf("mutations on an unrelated base moved the hot stripes: %d -> %d", hotGen, got)
	}
	if got := r.GenerationFor(otherBase, otherName); got == 0 {
		t.Fatal("mutations did not move their own stripes")
	}
	if r.Generation() == 0 {
		t.Fatal("cross-stripe Generation() missed the mutations")
	}

	// Mutations on the hot keys move the hot stripes.
	r.PutVMI(VMIRecord{Name: hotName, BaseID: hotBase}, m)
	if got := r.GenerationFor(hotBase, hotName); got == hotGen {
		t.Fatal("mutation on the hot base left its stripes unchanged")
	}
}

// TestPackageRemovalBumpsEveryStripe: package GC has no scoping key (a
// ref can be shared across bases), so it must fall back to bumping every
// stripe — no reader anywhere may validate a window across it.
func TestPackageRemovalBumpsEveryStripe(t *testing.T) {
	r, m := newRepo()
	p := pkg("redis")
	if _, err := r.EnsurePackage(p, []byte("blob"), m); err != nil {
		t.Fatal(err)
	}
	// One probe key per stripe — generated until all GenStripes stripes
	// are covered, so no stripe escapes the assertion by hash accident.
	probes := map[int]string{}
	for i := 0; len(probes) < GenStripes; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if _, ok := probes[StripeFor(k)]; !ok {
			probes[StripeFor(k)] = k
		}
	}
	before := map[int]uint64{}
	for stripe, k := range probes {
		before[stripe] = r.GenerationFor(k)
	}
	if err := r.RemovePackage(p.Ref(), m); err != nil {
		t.Fatal(err)
	}
	for stripe, k := range probes {
		if got := r.GenerationFor(k); got == before[stripe] {
			t.Fatalf("RemovePackage left stripe %d unchanged", stripe)
		}
	}
}

// TestGenerationForIsOrderAndDuplicateIndependent: the combined value
// must depend only on the stripe set, or lookup and insert could disagree
// on a key's generation.
func TestGenerationForIsOrderAndDuplicateIndependent(t *testing.T) {
	r, m := newRepo()
	if err := r.PutBase("base-1", attrs, []byte("image"), m); err != nil {
		t.Fatal(err)
	}
	a := r.GenerationFor("base-1", "vmi-1")
	b := r.GenerationFor("vmi-1", "base-1")
	c := r.GenerationFor("base-1", "vmi-1", "base-1", "vmi-1")
	if a != b || a != c {
		t.Fatalf("GenerationFor not canonical: %d / %d / %d", a, b, c)
	}
}

// TestGenerationWindowNeverValidatesAcrossMutation is the seqlock
// property the cache's insert path relies on: a reader that captures the
// generation before a mutation begins can never observe the same
// generation after that mutation's writes became visible. The mutation is
// held open in another goroutine while the reader samples.
func TestGenerationWindowNeverValidatesAcrossMutation(t *testing.T) {
	r, m := newRepo()
	const rounds = 200
	var wg sync.WaitGroup
	start := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range start {
			r.PutVMI(VMIRecord{Name: "vmi", BaseID: "base"}, m)
			_ = i
		}
	}()
	for i := 0; i < rounds; i++ {
		before := r.Generation()
		beforeStriped := r.GenerationFor("base", "vmi")
		start <- i // mutation begins strictly after `before` was captured
		// Sample until the record write is visible, then check the window.
		for {
			if _, err := r.GetVMI("vmi", nil); err == nil {
				break
			}
		}
		if r.Generation() == before {
			t.Fatalf("round %d: observed a committed write inside a stable generation window", i)
		}
		if r.GenerationFor("base", "vmi") == beforeStriped {
			t.Fatalf("round %d: observed a committed write inside a stable striped window", i)
		}
		r.RemoveVMI("vmi", m)
	}
	close(start)
	wg.Wait()
}
