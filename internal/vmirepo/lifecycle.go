// Image lifecycle state: per-VMI lifecycle metadata (tenant, expiry,
// charged bytes), per-tenant live-byte accounting, per-class package
// reference counts, and the blob-level vacuum sweep. All of it lives in
// ordinary metadata buckets, so every mutation streams through the
// journal into the WAL and replays identically on followers — expiry and
// vacuum are replicated operations, not local heuristics.
package vmirepo

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"expelliarmus/internal/simio"
)

// VMIMeta is the lifecycle record of one published VMI. A VMI without a
// record (the common case: no tenant, no TTL) is unaccounted and never
// expires.
type VMIMeta struct {
	// Tenant is the owning namespace; "" means unaccounted.
	Tenant string
	// ExpiresAt is the Unix-seconds expiry timestamp; 0 means never.
	ExpiresAt int64
	// ChargedBytes is exactly what this publish charged its tenant (newly
	// stored package blobs + base blob if this publish stored it + the
	// user-data archive), recorded so removal credits the same amount and
	// the per-tenant totals never drift.
	ChargedBytes int64
}

func encodeVMIMeta(m VMIMeta) []byte {
	return []byte(m.Tenant + "\n" + strconv.FormatInt(m.ExpiresAt, 10) + "\n" + strconv.FormatInt(m.ChargedBytes, 10))
}

func decodeVMIMeta(name string, data []byte) (VMIMeta, error) {
	parts := strings.Split(string(data), "\n")
	if len(parts) != 3 {
		return VMIMeta{}, fmt.Errorf("vmirepo: corrupt lifecycle record for %q", name)
	}
	exp, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return VMIMeta{}, fmt.Errorf("vmirepo: corrupt lifecycle record for %q: %v", name, err)
	}
	charged, err := strconv.ParseInt(parts[2], 10, 64)
	if err != nil {
		return VMIMeta{}, fmt.Errorf("vmirepo: corrupt lifecycle record for %q: %v", name, err)
	}
	return VMIMeta{Tenant: parts[0], ExpiresAt: exp, ChargedBytes: charged}, nil
}

// PutVMIMeta stores (or replaces) a VMI's lifecycle record. Like PutVMI,
// a rewrite that would not change the stored bytes is elided from the
// journal.
func (r *Repo) PutVMIMeta(name string, meta VMIMeta, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: store lifecycle record %q: %w", name, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(name)()
	val := encodeVMIMeta(meta)
	r.meta().Bucket(bucketVMIMeta).Update([]byte(name), func(old []byte, ok bool) ([]byte, bool) {
		if ok && bytes.Equal(old, val) {
			return nil, false
		}
		return val, true
	})
	r.chargeDB(m, int64(len(val)))
	return nil
}

// GetVMIMeta returns a VMI's lifecycle record, reporting absence (not an
// error — most VMIs have none).
func (r *Repo) GetVMIMeta(name string, m *simio.Meter) (VMIMeta, bool, error) {
	val, ok := r.meta().Bucket(bucketVMIMeta).Get([]byte(name))
	r.chargeDB(m, 0)
	if !ok {
		return VMIMeta{}, false, nil
	}
	meta, err := decodeVMIMeta(name, val)
	if err != nil {
		return VMIMeta{}, false, err
	}
	return meta, true, nil
}

// RemoveVMIMeta deletes a VMI's lifecycle record if present.
func (r *Repo) RemoveVMIMeta(name string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: remove lifecycle record %q: %w", name, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(name)()
	r.meta().Bucket(bucketVMIMeta).Delete([]byte(name))
	r.chargeDB(m, 0)
	return nil
}

// VMIMetaNames lists the VMIs holding a lifecycle record, sorted.
func (r *Repo) VMIMetaNames() []string {
	var out []string
	r.meta().Bucket(bucketVMIMeta).ForEach(func(k, v []byte) bool {
		out = append(out, string(k))
		return true
	})
	sort.Strings(out)
	return out
}

// UserDataNames lists the VMIs holding a user-data archive, sorted.
func (r *Repo) UserDataNames() []string {
	var out []string
	r.meta().Bucket(bucketUserData).ForEach(func(k, v []byte) bool {
		out = append(out, string(k))
		return true
	})
	sort.Strings(out)
	return out
}

// ExpiredVMIs returns the names of VMIs whose expiry timestamp is set and
// has passed, sorted for deterministic removal order.
func (r *Repo) ExpiredVMIs(now int64) ([]string, error) {
	var out []string
	var err error
	r.meta().Bucket(bucketVMIMeta).ForEach(func(k, v []byte) bool {
		var meta VMIMeta
		meta, err = decodeVMIMeta(string(k), v)
		if err != nil {
			return false
		}
		if meta.ExpiresAt != 0 && meta.ExpiresAt <= now {
			out = append(out, string(k))
		}
		return true
	})
	sort.Strings(out)
	return out, err
}

// --- per-tenant accounting ---

// ChargeTenant adjusts a tenant's live-byte total by delta; a total that
// reaches zero (or below, which indicates an accounting bug but must not
// wedge the bucket) deletes the key. The empty tenant is unaccounted and
// charges nowhere.
//
// ChargeTenant deliberately does not bump any generation stripe: tenant
// totals are never read by the assembly path, so invalidating cached
// images for them would flush warm entries for nothing.
func (r *Repo) ChargeTenant(tenant string, delta int64, m *simio.Meter) error {
	if tenant == "" || delta == 0 {
		return nil
	}
	if r.readOnly {
		return fmt.Errorf("vmirepo: charge tenant %q: %w", tenant, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	b := r.meta().Bucket(bucketTenants)
	var cur int64
	if old, ok := b.Get([]byte(tenant)); ok {
		cur, _ = strconv.ParseInt(string(old), 10, 64)
	}
	cur += delta
	if cur <= 0 {
		b.Delete([]byte(tenant))
	} else {
		b.Put([]byte(tenant), []byte(strconv.FormatInt(cur, 10)))
	}
	r.chargeDB(m, 16)
	return nil
}

// TenantUsage returns a tenant's current live-byte total (0 when absent).
func (r *Repo) TenantUsage(tenant string) int64 {
	val, ok := r.meta().Bucket(bucketTenants).Get([]byte(tenant))
	if !ok {
		return 0
	}
	n, _ := strconv.ParseInt(string(val), 10, 64)
	return n
}

// TenantStats returns every tenant's live-byte total.
func (r *Repo) TenantStats() map[string]int64 {
	out := make(map[string]int64)
	r.meta().Bucket(bucketTenants).ForEach(func(k, v []byte) bool {
		n, _ := strconv.ParseInt(string(v), 10, 64)
		out[string(k)] = n
		return true
	})
	return out
}

// ReplaceTenantUsage rewrites the tenant bucket from recomputed totals —
// vacuum's reconciliation of accounting drift. Keys not in the survey are
// deleted; identical records are elided from the journal.
func (r *Repo) ReplaceTenantUsage(totals map[string]int64, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: replace tenant usage: %w", ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	b := r.meta().Bucket(bucketTenants)
	var stale []string
	b.ForEach(func(k, v []byte) bool {
		if totals[string(k)] <= 0 {
			stale = append(stale, string(k))
		}
		return true
	})
	sort.Strings(stale)
	for _, t := range stale {
		b.Delete([]byte(t))
	}
	tenants := make([]string, 0, len(totals))
	for t, n := range totals {
		if t != "" && n > 0 {
			tenants = append(tenants, t)
		}
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		val := []byte(strconv.FormatInt(totals[t], 10))
		b.Update([]byte(t), func(old []byte, ok bool) ([]byte, bool) {
			if ok && bytes.Equal(old, val) {
				return nil, false
			}
			return val, true
		})
	}
	r.chargeDB(m, int64(16*len(tenants)))
	return nil
}

// --- per-class package reference counts ---

// Package reference counts are keyed by package Ref; the value is the
// sorted per-class breakdown ("class\tcount" lines, class being the base
// attribute quadruple BaseAttrs.String()). Publishes of a class add refs
// for the packages their VMI uses; removals drop them, and a ref whose
// total across all classes reaches zero is garbage — exactly the
// information a single-class Remove needs to collect packages without
// surveying every other class's VMIs under a global lock.

func parsePkgRefs(val []byte) map[string]int64 {
	out := make(map[string]int64)
	for _, line := range strings.Split(string(val), "\n") {
		class, count, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		n, _ := strconv.ParseInt(count, 10, 64)
		if n > 0 {
			out[class] = n
		}
	}
	return out
}

func formatPkgRefs(refs map[string]int64) []byte {
	classes := make([]string, 0, len(refs))
	for c, n := range refs {
		if n > 0 {
			classes = append(classes, c)
		}
	}
	sort.Strings(classes)
	var b strings.Builder
	for i, c := range classes {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(c)
		b.WriteByte('\t')
		b.WriteString(strconv.FormatInt(refs[c], 10))
	}
	return []byte(b.String())
}

// AddPackageRefs counts one more use of each ref by a VMI of the given
// class. Like EnsurePackage, no generation stripe is bumped: refcounts
// are never read by the assembly path.
func (r *Repo) AddPackageRefs(class string, refs []string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: add package refs: %w", ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	b := r.meta().Bucket(bucketPkgRefs)
	for _, ref := range refs {
		counts := map[string]int64{}
		if old, ok := b.Get([]byte(ref)); ok {
			counts = parsePkgRefs(old)
		}
		counts[class]++
		b.Put([]byte(ref), formatPkgRefs(counts))
	}
	r.chargeDB(m, int64(16*len(refs)))
	return nil
}

// DropPackageRefs counts one fewer use of each ref by a VMI of the given
// class and returns (sorted) the refs whose total across ALL classes hit
// zero — the packages now unreferenced by any VMI, which the caller
// deletes via removePackageUnlessPinned. A ref with no record is skipped
// (pre-migration state; the caller's survey fallback covers it).
func (r *Repo) DropPackageRefs(class string, refs []string, m *simio.Meter) ([]string, error) {
	if r.readOnly {
		return nil, fmt.Errorf("vmirepo: drop package refs: %w", ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	b := r.meta().Bucket(bucketPkgRefs)
	var dead []string
	for _, ref := range refs {
		old, ok := b.Get([]byte(ref))
		if !ok {
			continue
		}
		counts := parsePkgRefs(old)
		counts[class]--
		if counts[class] <= 0 {
			delete(counts, class)
		}
		if len(counts) == 0 {
			b.Delete([]byte(ref))
			dead = append(dead, ref)
		} else {
			b.Put([]byte(ref), formatPkgRefs(counts))
		}
	}
	r.chargeDB(m, int64(16*len(refs)))
	sort.Strings(dead)
	return dead, nil
}

// PackageRefsEmpty reports an empty refcount bucket — the signal that a
// repository created before per-class refcounts needs its counts rebuilt
// from a survey (see core.NewSystemWithRepo).
func (r *Repo) PackageRefsEmpty() bool {
	return r.meta().Bucket(bucketPkgRefs).Len() == 0
}

// ReplacePackageRefs rewrites the whole refcount bucket from a freshly
// surveyed per-ref, per-class count — the migration rebuild and vacuum's
// reconciliation. Existing records not in the survey are deleted;
// identical records are elided from the journal.
func (r *Repo) ReplacePackageRefs(counts map[string]map[string]int64, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: replace package refs: %w", ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.lcMu.Lock()
	defer r.lcMu.Unlock()
	b := r.meta().Bucket(bucketPkgRefs)
	var stale []string
	b.ForEach(func(k, v []byte) bool {
		if _, ok := counts[string(k)]; !ok {
			stale = append(stale, string(k))
		}
		return true
	})
	sort.Strings(stale)
	for _, ref := range stale {
		b.Delete([]byte(ref))
	}
	refs := make([]string, 0, len(counts))
	for ref := range counts {
		refs = append(refs, ref)
	}
	sort.Strings(refs)
	for _, ref := range refs {
		val := formatPkgRefs(counts[ref])
		if len(val) == 0 {
			b.Delete([]byte(ref))
			continue
		}
		b.Update([]byte(ref), func(old []byte, ok bool) ([]byte, bool) {
			if ok && bytes.Equal(old, val) {
				return nil, false
			}
			return val, true
		})
	}
	r.chargeDB(m, int64(16*len(refs)))
	return nil
}

// --- blob vacuum ---

// BlobVacuumStats reports what one blob-level vacuum sweep reclaimed.
type BlobVacuumStats struct {
	// BlobsReleased counts blobs fully released because no metadata record
	// referenced them (crash-recovery orphans, loser halves of interrupted
	// two-phase commits).
	BlobsReleased int
	// BytesReclaimed is those blobs' payload bytes.
	BytesReclaimed int64
}

// VacuumBlobs releases every blob no metadata record references — the
// orphans crash recovery deliberately resurrects (extra durable blobs are
// the safe side of every crash window) and the stray references abandoned
// publishes leave behind. It runs under the exclusive operation lock, so
// the referenced-blob set is computed against a quiescent store: no
// in-flight EnsurePackage can be between its blob put and its record put
// while the sweep looks. Releases drop a blob's entire reference count,
// because whatever count an unreferenced blob carries is by definition
// stale.
func (r *Repo) VacuumBlobs() (BlobVacuumStats, error) {
	var st BlobVacuumStats
	if r.readOnly {
		return st, fmt.Errorf("vmirepo: vacuum blobs: %w", ErrReadOnly)
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	defer r.mutate()()
	live := make(map[string]struct{})
	var decodeErr error
	r.meta().Bucket(bucketPackages).ForEach(func(k, v []byte) bool {
		rec, err := decodePackageRecord(v)
		if err != nil {
			decodeErr = err
			return false
		}
		live[string(rec.BlobID[:])] = struct{}{}
		return true
	})
	if decodeErr != nil {
		return st, decodeErr
	}
	r.meta().Bucket(bucketBases).ForEach(func(k, v []byte) bool {
		rec, err := decodeBaseRecord(string(k), v)
		if err != nil {
			decodeErr = err
			return false
		}
		live[string(rec.BlobID[:])] = struct{}{}
		return true
	})
	if decodeErr != nil {
		return st, decodeErr
	}
	r.meta().Bucket(bucketUserData).ForEach(func(k, v []byte) bool {
		live[string(v)] = struct{}{}
		return true
	})
	for _, id := range r.blobs.IDs() {
		if _, ok := live[string(id[:])]; ok {
			continue
		}
		size, _ := r.blobs.Size(id)
		refs := r.blobs.Refs(id)
		for i := 0; i < refs && r.blobs.Has(id); i++ {
			if err := r.blobs.Release(id); err != nil {
				return st, fmt.Errorf("vmirepo: vacuum blob: %w", err)
			}
		}
		st.BlobsReleased++
		st.BytesReclaimed += size
	}
	return st, nil
}
