package vmirepo

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/master"
	"expelliarmus/internal/simio"
)

// newFollower returns a follower repo over a fresh in-memory blob store.
func newFollower() *Repo {
	return OpenFollower(simio.NewDevice(simio.PaperProfile()), blobstore.New())
}

// shipMeta catches the follower's metadata up to the writer's durable
// position — the in-process mirror of the replica loop's metadata half.
func shipMeta(t *testing.T, w *Repo, f *Repo) {
	t.Helper()
	wal := w.WAL()
	for {
		epoch, durable := wal.CommitState()
		fe, applied := f.Follower().Position()
		if fe != epoch {
			snapEpoch, rc, size, err := wal.SnapshotReader()
			if err != nil {
				t.Fatalf("SnapshotReader: %v", err)
			}
			snap, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || int64(len(snap)) != size {
				t.Fatalf("read snapshot: %v", err)
			}
			if err := f.ResetToSnapshot(snapEpoch, snap); err != nil {
				t.Fatalf("ResetToSnapshot(%d): %v", snapEpoch, err)
			}
			continue
		}
		if applied >= durable {
			return
		}
		rc, n, err := wal.WALReader(epoch, applied)
		if err != nil {
			t.Fatalf("WALReader(%d, %d): %v", epoch, applied, err)
		}
		chunk, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || int64(len(chunk)) != n {
			t.Fatalf("read WAL tail: %v", err)
		}
		if _, err := f.ApplyWAL(epoch, applied, chunk); err != nil {
			t.Fatalf("ApplyWAL: %v", err)
		}
	}
}

// copyBlobs copies every live blob from the writer's backend into the
// follower's — the test stand-in for the network read-through.
func copyBlobs(t *testing.T, w, f *Repo) {
	t.Helper()
	for _, id := range w.blobs.IDs() {
		if f.blobs.Has(id) {
			continue
		}
		b, ok := w.blobs.Get(id)
		if !ok {
			t.Fatalf("writer blob %s unreadable", id)
		}
		f.blobs.Put(b)
	}
}

// TestFollowerReadOnlyGates pins that every mutating entry point of a
// follower repository refuses with ErrReadOnly.
func TestFollowerReadOnlyGates(t *testing.T) {
	f := newFollower()
	if !f.ReadOnly() {
		t.Fatal("follower does not report read-only")
	}
	mg := master.New("base-1", baseSubgraph())
	checks := map[string]error{
		"PutPackage":  f.PutPackage(pkg("redis"), []byte("x"), nil),
		"PutBase":     f.PutBase("base-1", attrs, []byte("img"), nil),
		"RemoveBase":  f.RemoveBase("base-1", nil),
		"PutMaster":   f.PutMaster(mg, nil),
		"RemoveMast":  f.RemoveMaster("base-1", nil),
		"PutVMI":      f.PutVMI(VMIRecord{Name: "vm", BaseID: "base-1"}, nil),
		"RemoveVMI":   f.RemoveVMI("vm", nil),
		"RewireVMIs":  f.RewireVMIs("a", "b", nil),
		"PutUserData": f.PutUserData("vm", []byte("ud"), nil),
		"RemoveUD":    f.RemoveUserData("vm", nil),
		"RemovePkg":   f.RemovePackage(pkg("redis").Ref(), nil),
	}
	for name, err := range checks {
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s: err = %v, want ErrReadOnly", name, err)
		}
	}
	if _, err := f.Sync(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Sync: err = %v, want ErrReadOnly", err)
	}
	if _, err := f.Compact(); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Compact: err = %v, want ErrReadOnly", err)
	}
}

// TestFollowerCatchUp pins metadata equivalence and read-path parity: a
// follower fed snapshot + WAL serves byte-identical metadata and base
// images, across incremental batches and a forced compaction epoch
// switch.
func TestFollowerCatchUp(t *testing.T) {
	dir := t.TempDir()
	dev := simio.NewDevice(simio.PaperProfile())
	w, err := OpenAt(dir, dev)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer w.Close()
	f := newFollower()

	img := bytes.Repeat([]byte{0xAB}, 4096)
	if err := w.PutBase("base-1", attrs, img, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.PutPackage(pkg("redis"), []byte("redis-bytes"), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.PutVMI(VMIRecord{Name: "vm-1", BaseID: "base-1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	shipMeta(t, w, f)
	copyBlobs(t, w, f)
	if !bytes.Equal(f.MetaSnapshot(), w.meta().Snapshot()) {
		t.Fatalf("metadata snapshots differ after initial catch-up")
	}

	// The follower serves the same bytes the writer does.
	got, err := readBase(f)
	if err != nil {
		t.Fatalf("follower OpenBase: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("follower served %d bytes, want %d identical", len(got), len(img))
	}

	// Incremental batch, then a forced compaction (epoch switch).
	if err := w.PutVMI(VMIRecord{Name: "vm-2", BaseID: "base-1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	shipMeta(t, w, f)
	if !bytes.Equal(f.MetaSnapshot(), w.meta().Snapshot()) {
		t.Fatalf("metadata snapshots differ after incremental batch")
	}

	if err := w.PutUserData("vm-2", []byte("cloud-init"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	oldEpoch, _ := f.Follower().Position()
	shipMeta(t, w, f)
	copyBlobs(t, w, f)
	newEpoch, _ := f.Follower().Position()
	if newEpoch <= oldEpoch {
		t.Fatalf("epoch did not advance across compaction: %d -> %d", oldEpoch, newEpoch)
	}
	if !bytes.Equal(f.MetaSnapshot(), w.meta().Snapshot()) {
		t.Fatalf("metadata snapshots differ after epoch switch")
	}
	rec, err := f.GetVMI("vm-2", nil)
	if err != nil || rec.BaseID != "base-1" {
		t.Fatalf("follower GetVMI(vm-2) = %+v, %v", rec, err)
	}
}

func readBase(r *Repo) ([]byte, error) {
	rc, size, err := r.OpenBase("base-1", simio.PhaseFetch, nil)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	buf := make([]byte, size)
	_, err = io.ReadFull(rc, buf)
	return buf, err
}

// TestFollowerGenerationBumps pins the cache-invalidation contract:
// applying a batch bumps exactly the stripes the writer's own mutators
// would have bumped, and an epoch-switch reset bumps everything.
func TestFollowerGenerationBumps(t *testing.T) {
	dir := t.TempDir()
	dev := simio.NewDevice(simio.PaperProfile())
	w, err := OpenAt(dir, dev)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer w.Close()
	f := newFollower()
	if err := w.PutBase("base-1", attrs, []byte("img"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	shipMeta(t, w, f)

	// Pick an observer key whose stripe differs from both stripes the
	// VMI put will bump (its name and its base), so precision shows.
	name := "vm-x"
	other := "vm-other"
	for i := 0; StripeFor(other) == StripeFor(name) || StripeFor(other) == StripeFor("base-1"); i++ {
		other = fmt.Sprintf("vm-other%d", i)
	}
	genTouched := f.GenerationFor(name, "base-1")
	genOther := f.GenerationFor(other)

	if err := w.PutVMI(VMIRecord{Name: name, BaseID: "base-1"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	shipMeta(t, w, f)
	if got := f.GenerationFor(name, "base-1"); got == genTouched {
		t.Fatalf("touched stripes did not bump")
	}
	if got := f.GenerationFor(other); got != genOther {
		t.Fatalf("unrelated stripe bumped: %d -> %d", genOther, got)
	}

	// Epoch switch: everything must invalidate.
	genOther = f.GenerationFor(other)
	if _, err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	shipMeta(t, w, f)
	if got := f.GenerationFor(other); got == genOther {
		t.Fatalf("epoch switch left a stripe unbumped")
	}
}

// TestGroupCommitCoalesces pins the WAL group-commit satellite:
// concurrent Sync callers share physical syncs instead of each paying
// their own fsync, and every caller still gets a successful commit
// covering its writes.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	dev := simio.NewDevice(simio.PaperProfile())
	w, err := OpenAt(dir, dev)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer w.Close()

	// Retry rounds: coalescing needs real overlap, which the scheduler
	// all but guarantees with 32 released-together callers but does not
	// promise. One observed coalesce proves the mechanism.
	for round := 0; round < 5; round++ {
		const callers = 32
		startCalls, startPhysical := w.SyncCounters()
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(callers)
		errs := make(chan error, callers)
		for i := 0; i < callers; i++ {
			go func(i int) {
				defer done.Done()
				if err := w.PutPackage(pkg(fmt.Sprintf("p-%d-%d", round, i)), []byte("x"), nil); err != nil {
					errs <- err
					return
				}
				start.Wait()
				_, err := w.Sync()
				errs <- err
			}(i)
		}
		start.Done()
		done.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("concurrent sync: %v", err)
			}
		}
		calls, physical := w.SyncCounters()
		calls -= startCalls
		physical -= startPhysical
		if physical > calls {
			t.Fatalf("more physical syncs (%d) than callers (%d)", physical, calls)
		}
		if physical < calls {
			return // coalescing observed
		}
	}
	t.Fatalf("no coalescing observed in 5 rounds of 32 concurrent Sync callers")
}

// TestGroupCommitDurability pins that a coalesced commit really covers
// every caller's writes: after the concurrent storm, a reopen replays
// all packages.
func TestGroupCommitDurability(t *testing.T) {
	dir := t.TempDir()
	dev := simio.NewDevice(simio.PaperProfile())
	w, err := OpenAt(dir, dev)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	const callers = 16
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			if err := w.PutPackage(pkg(fmt.Sprintf("q-%d", i)), []byte("y"), nil); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			if _, err := w.Sync(); err != nil {
				t.Errorf("sync: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := OpenAt(dir, dev)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	for i := 0; i < callers; i++ {
		if !re.HasPackage(pkg(fmt.Sprintf("q-%d", i)).Ref(), nil) {
			t.Fatalf("package q-%d lost across reopen", i)
		}
	}
}
