package vmirepo

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/simio"
)

// TestNotFoundSentinel pins the error contract retrying readers rely on:
// every missing-record lookup must wrap ErrNotFound.
func TestNotFoundSentinel(t *testing.T) {
	r := testRepo()
	if _, _, err := r.GetPackage("nope", simio.PhaseFetch, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetPackage error %v does not wrap ErrNotFound", err)
	}
	if _, err := r.GetBase("nope", simio.PhaseCopy, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetBase error %v does not wrap ErrNotFound", err)
	}
	if _, err := r.GetMaster("nope", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetMaster error %v does not wrap ErrNotFound", err)
	}
	if _, err := r.GetVMI("nope", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetVMI error %v does not wrap ErrNotFound", err)
	}
	if err := r.RemovePackage("nope", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("RemovePackage error %v does not wrap ErrNotFound", err)
	}
	if err := r.RemoveBase("nope", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("RemoveBase error %v does not wrap ErrNotFound", err)
	}
}

func testRepo() *Repo {
	dev := simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
	return New(dev)
}

func testPkg(name string) pkgmeta.Package {
	return pkgmeta.Package{
		Name: name, Version: "1.0", Arch: "amd64", Distro: "ubuntu",
		Section: "apps", InstalledSize: 1 << 20,
	}
}

// TestEnsurePackageRace races many goroutines ensuring the same package:
// exactly one may report stored=true, and the blob refcount must end at
// exactly one so a later remove fully reclaims the space.
func TestEnsurePackageRace(t *testing.T) {
	r := testRepo()
	p := testPkg("contended")
	blob := []byte("identical package payload")
	const workers = 16
	var stored int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &simio.Meter{}
			ok, err := r.EnsurePackage(p, blob, m)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				mu.Lock()
				stored++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if stored != 1 {
		t.Fatalf("stored %d times, want exactly 1", stored)
	}
	if !r.HasPackage(p.Ref(), nil) {
		t.Fatal("package missing after ensure")
	}
	if err := r.RemovePackage(p.Ref(), nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().BlobBytes; got != 0 {
		t.Fatalf("blob bytes = %d after removal, want 0 (refcount leak)", got)
	}
}

// TestConcurrentDistinctPackages stores distinct packages from many
// goroutines; all must be present afterwards with exact byte accounting.
func TestConcurrentDistinctPackages(t *testing.T) {
	r := testRepo()
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p := testPkg(fmt.Sprintf("pkg-%d-%d", w, i))
				blob := []byte(fmt.Sprintf("payload of pkg-%d-%d", w, i))
				ok, err := r.EnsurePackage(p, blob, &simio.Meter{})
				if err != nil || !ok {
					t.Errorf("pkg-%d-%d: stored=%v err=%v", w, i, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Stats().Packages; got != workers*perWorker {
		t.Fatalf("packages = %d, want %d", got, workers*perWorker)
	}
	pkgs, err := r.Packages()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range pkgs {
		if _, _, err := r.GetPackage(rec.Pkg.Ref(), simio.PhaseFetch, nil); err != nil {
			t.Fatalf("get %s: %v", rec.Pkg.Ref(), err)
		}
	}
}

// TestSnapshotConsistentUnderTraffic takes snapshots while packages are
// being stored; every snapshot must Load and every loaded package record
// must have its blob (the blob/db sections are mutually consistent).
func TestSnapshotConsistentUnderTraffic(t *testing.T) {
	r := testRepo()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := testPkg(fmt.Sprintf("traffic-%d-%d", w, i))
				blob := []byte(fmt.Sprintf("blob %d %d", w, i))
				if _, err := r.EnsurePackage(p, blob, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	dev := simio.NewDevice(simio.PaperProfile())
	for i := 0; i < 15; i++ {
		snap, err := r.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		restored, err := Load(snap, dev)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		pkgs, err := restored.Packages()
		if err != nil {
			t.Fatalf("snapshot %d: packages: %v", i, err)
		}
		for _, rec := range pkgs {
			if _, _, err := restored.GetPackage(rec.Pkg.Ref(), simio.PhaseFetch, nil); err != nil {
				t.Fatalf("snapshot %d: record %s has no blob: %v", i, rec.Pkg.Ref(), err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestPutUserDataReplaceReclaims republishes user data under one name and
// checks the old archive's bytes are reclaimed, including the
// identical-content case.
func TestPutUserDataReplaceReclaims(t *testing.T) {
	r := testRepo()
	r.PutUserData("vmi", []byte("first archive"), nil)
	first := r.Stats().BlobBytes
	r.PutUserData("vmi", []byte("second archive, a bit longer"), nil)
	second := r.Stats().BlobBytes
	if second != int64(len("second archive, a bit longer")) {
		t.Fatalf("blob bytes = %d after replace, want only the new archive (old was %d)", second, first)
	}
	// Identical content: the refcount must stay at one.
	r.PutUserData("vmi", []byte("second archive, a bit longer"), nil)
	if got := r.Stats().BlobBytes; got != second {
		t.Fatalf("blob bytes = %d after identical republish, want %d", got, second)
	}
	if err := r.RemoveUserData("vmi", nil); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().BlobBytes; got != 0 {
		t.Fatalf("blob bytes = %d after removal, want 0", got)
	}
}

// TestRewireVMIsDoesNotClobberConcurrentRepublish races base rewires
// against republishes of one affected VMI name onto a different base (as
// a concurrent publish of another attribute class would commit under the
// core's striped commit locks — its commit stripe does not exclude this
// one). The rewire's per-record compare-and-rewrite must leave a
// republished record alone; the corrupt outcome an unguarded rewrite
// produces is the rewire's base spliced onto the republish's primaries.
// Many sibling records keep rewires in flight long enough for the
// republisher to land inside the scan-to-rewrite window, and a checker
// goroutine asserts no reader can ever observe a spliced record.
func TestRewireVMIsDoesNotClobberConcurrentRepublish(t *testing.T) {
	r := testRepo()
	const siblings = 400
	const rounds = 200
	victim := fmt.Sprintf("vmi-%04d", siblings)
	for j := 0; j <= siblings; j++ {
		r.PutVMI(VMIRecord{Name: fmt.Sprintf("vmi-%04d", j), BaseID: "oldA", Primaries: []string{"primsA"}}, nil)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	done := make(chan struct{})
	rewiresDone := make(chan struct{})
	go func() { // rewirer: ping-pongs every oldA/newA record
		defer wg.Done()
		defer close(rewiresDone)
		for i := 0; i < rounds; i++ {
			r.RewireVMIs("oldA", "newA", nil)
			r.RewireVMIs("newA", "oldA", nil)
		}
	}()
	go func() { // republisher: toggles the victim onto and off a foreign base
		// for as long as rewires are in flight, so the toggles keep
		// landing inside scan-to-rewrite windows.
		defer wg.Done()
		for {
			select {
			case <-rewiresDone:
				return
			default:
			}
			r.PutVMI(VMIRecord{Name: victim, BaseID: "baseB", Primaries: []string{"primsB"}}, nil)
			r.PutVMI(VMIRecord{Name: victim, BaseID: "oldA", Primaries: []string{"primsA"}}, nil)
		}
	}()
	go func() { wg.Wait(); close(done) }()

	// Invariant: primaries always belong to the base family the record
	// names. A rewire splicing newA/oldA onto primsB (or leaving primsA
	// under baseB) is the corruption the guard exists to prevent.
	check := func() {
		rec, err := r.GetVMI(victim, nil)
		if err != nil {
			t.Errorf("victim vanished: %v", err)
			return
		}
		prims := strings.Join(rec.Primaries, ",")
		switch rec.BaseID {
		case "oldA", "newA":
			if prims != "primsA" {
				t.Errorf("rewire spliced base %s onto foreign primaries %q", rec.BaseID, prims)
			}
		case "baseB":
			if prims != "primsB" {
				t.Errorf("republished record lost its primaries: %q", prims)
			}
		default:
			t.Errorf("victim on unexpected base %q", rec.BaseID)
		}
	}
	for {
		select {
		case <-done:
			check()
			return
		default:
			check()
			if t.Failed() {
				return
			}
		}
	}
}
