// Streaming access to repository blobs. The Open* getters hand out
// readers served natively by the blob backend — zero-copy views for the
// memory store, segment-offset section readers for the disk store — so a
// caller can consume a gigabyte base image without the repository ever
// materializing it. The legacy Get* getters are thin adapters over these.
//
// Cost model: the full modeled read cost is charged at open, exactly what
// the materializing getters charge, because the paper's model prices the
// repository read itself, not the caller's consumption pattern. A caller
// that opens and reads half a blob still caused the repository retrieval.
package vmirepo

import (
	"fmt"
	"io"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/chunkpool"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/simio"
)

// OpenBase returns a streaming reader over a stored base image blob and
// its size. The returned reader also implements io.ReaderAt (both
// backends guarantee it) and stays readable until the repository is
// closed — releasing the base does not invalidate it.
func (r *Repo) OpenBase(id string, ph simio.Phase, m *simio.Meter) (io.ReadCloser, int64, error) {
	val, ok := r.meta().Bucket(bucketBases).Get([]byte(id))
	r.chargeDB(m, 0)
	if !ok {
		return nil, 0, fmt.Errorf("vmirepo: base %s %w", id, ErrNotFound)
	}
	rec, err := decodeBaseRecord(id, val)
	if err != nil {
		return nil, 0, err
	}
	rc, size, err := r.blobs.Open(rec.BlobID)
	if err != nil {
		return nil, 0, fmt.Errorf("vmirepo: base %s: %w", id, err)
	}
	if m != nil {
		m.Charge(ph, r.dev.ReadCost(size))
	}
	return rc, size, nil
}

// OpenPackage returns a package's metadata plus a streaming reader over
// its payload blob and the payload size.
func (r *Repo) OpenPackage(ref string, ph simio.Phase, m *simio.Meter) (pkgmeta.Package, io.ReadCloser, int64, error) {
	val, ok := r.meta().Bucket(bucketPackages).Get([]byte(ref))
	r.chargeDB(m, 0)
	if !ok {
		return pkgmeta.Package{}, nil, 0, fmt.Errorf("vmirepo: package %s %w", ref, ErrNotFound)
	}
	rec, err := decodePackageRecord(val)
	if err != nil {
		return pkgmeta.Package{}, nil, 0, err
	}
	rc, size, err := r.blobs.Open(rec.BlobID)
	if err != nil {
		return pkgmeta.Package{}, nil, 0, fmt.Errorf("vmirepo: package %s: %w", ref, err)
	}
	if m != nil {
		m.Charge(ph, r.dev.ReadCost(size))
	}
	return rec.Pkg, rc, size, nil
}

// OpenUserData returns a streaming reader over a VMI's user-data archive,
// or a nil reader (with nil error) when none is stored — mirroring
// GetUserData's absent case. Callers MUST check the reader against nil
// before the error: a VMI published without user data is the common case,
// not a failure, and dereferencing the nil reader is the classic bug here
// (pinned by the no-user-data wire regression test in internal/server).
func (r *Repo) OpenUserData(name string, ph simio.Phase, m *simio.Meter) (io.ReadCloser, int64, error) {
	val, ok := r.meta().Bucket(bucketUserData).Get([]byte(name))
	r.chargeDB(m, 0)
	if !ok {
		return nil, 0, nil
	}
	var id blobstore.ID
	copy(id[:], val)
	rc, size, err := r.blobs.Open(id)
	if err != nil {
		return nil, 0, fmt.Errorf("vmirepo: user data for %q: %w", name, err)
	}
	if m != nil {
		m.Charge(ph, r.dev.ReadCost(size))
	}
	return rc, size, nil
}

// RetrieveBaseTo streams a stored base image straight to w in pooled
// chunks, returning the byte count — the repository-level building block
// of the end-to-end streaming retrieval (and the future wire protocol).
func (r *Repo) RetrieveBaseTo(w io.Writer, id string, ph simio.Phase, m *simio.Meter) (int64, error) {
	rc, size, err := r.OpenBase(id, ph, m)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	n, err := chunkpool.Copy(w, rc)
	if err != nil {
		return n, fmt.Errorf("vmirepo: stream base %s: %w", id, err)
	}
	if n != size {
		return n, fmt.Errorf("vmirepo: stream base %s: wrote %d of %d bytes", id, n, size)
	}
	return n, nil
}

// readAll drains a just-opened blob reader into an owned buffer; the
// shared tail of the materializing Get* adapters.
func readAll(rc io.ReadCloser, size int64, what string) ([]byte, error) {
	defer rc.Close()
	buf := make([]byte, size)
	if _, err := io.ReadFull(rc, buf); err != nil {
		return nil, fmt.Errorf("vmirepo: read %s: %w", what, err)
	}
	return buf, nil
}
