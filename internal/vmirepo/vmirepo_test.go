package vmirepo

import (
	"bytes"
	"reflect"
	"testing"

	"expelliarmus/internal/master"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/semgraph"
	"expelliarmus/internal/simio"
)

var attrs = pkgmeta.BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64"}

func newRepo() (*Repo, *simio.Meter) {
	return New(simio.NewDevice(simio.PaperProfile())), &simio.Meter{}
}

func pkg(name string) pkgmeta.Package {
	return pkgmeta.Package{
		Name: name, Version: "1.0", Arch: "amd64", Distro: "ubuntu", InstalledSize: 1000,
	}
}

func TestPackageLifecycle(t *testing.T) {
	r, m := newRepo()
	p := pkg("redis")
	blob := []byte("binary package bytes")
	if r.HasPackage(p.Ref(), m) {
		t.Fatal("empty repo has package")
	}
	if err := r.PutPackage(p, blob, m); err != nil {
		t.Fatal(err)
	}
	if !r.HasPackage(p.Ref(), m) {
		t.Fatal("stored package not found")
	}
	if err := r.PutPackage(p, blob, m); err == nil {
		t.Fatal("duplicate store succeeded")
	}
	got, data, err := r.GetPackage(p.Ref(), simio.PhaseImport, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) || !bytes.Equal(data, blob) {
		t.Fatalf("round trip: %+v, %q", got, data)
	}
	if _, _, err := r.GetPackage("ghost=1/amd64", simio.PhaseImport, m); err == nil {
		t.Fatal("missing package retrieved")
	}
	recs, err := r.Packages()
	if err != nil || len(recs) != 1 || recs[0].BlobSize != int64(len(blob)) {
		t.Fatalf("Packages = %v, %v", recs, err)
	}
	if m.Phase(simio.PhaseImport) == 0 || m.Phase(simio.PhaseStore) == 0 || m.Phase(simio.PhaseDB) == 0 {
		t.Fatalf("costs not charged: %s", m)
	}
}

func TestBaseLifecycle(t *testing.T) {
	r, m := newRepo()
	img := bytes.Repeat([]byte{0xEE}, 5000)
	if err := r.PutBase("base-1", attrs, img, m); err != nil {
		t.Fatal(err)
	}
	if err := r.PutBase("base-1", attrs, img, m); err == nil {
		t.Fatal("duplicate base store succeeded")
	}
	if !r.HasBase("base-1", m) {
		t.Fatal("stored base missing")
	}
	got, err := r.GetBase("base-1", simio.PhaseCopy, m)
	if err != nil || !bytes.Equal(got, img) {
		t.Fatalf("GetBase: %v", err)
	}
	bases, err := r.Bases()
	if err != nil || len(bases) != 1 || bases[0].Attrs != attrs {
		t.Fatalf("Bases = %v, %v", bases, err)
	}
	size := r.SizeBytes()
	if err := r.RemoveBase("base-1", m); err != nil {
		t.Fatal(err)
	}
	if r.HasBase("base-1", m) {
		t.Fatal("base survived removal")
	}
	if r.SizeBytes() >= size {
		t.Fatal("removal did not reclaim space")
	}
	if err := r.RemoveBase("base-1", m); err == nil {
		t.Fatal("double removal succeeded")
	}
	if _, err := r.GetBase("base-1", simio.PhaseCopy, m); err == nil {
		t.Fatal("removed base retrieved")
	}
}

func baseSubgraph() *semgraph.Graph {
	g := semgraph.New(attrs)
	g.AddVertex(pkg("libc6"), semgraph.KindBase)
	return g
}

func TestMasterLifecycle(t *testing.T) {
	r, m := newRepo()
	mg := master.New("base-1", baseSubgraph())
	ps := semgraph.New(attrs)
	ps.AddVertex(pkg("redis"), semgraph.KindPrimary)
	if err := mg.AddPrimarySubgraph(ps); err != nil {
		t.Fatal(err)
	}
	r.PutMaster(mg, m)
	got, err := r.GetMaster("base-1", m)
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseID != "base-1" || !reflect.DeepEqual(got.PrimaryNames(), []string{"redis"}) {
		t.Fatalf("round trip: %s %v", got.BaseID, got.PrimaryNames())
	}
	all, err := r.Masters()
	if err != nil || len(all) != 1 {
		t.Fatalf("Masters = %v, %v", all, err)
	}
	r.RemoveMaster("base-1", m)
	if _, err := r.GetMaster("base-1", m); err == nil {
		t.Fatal("removed master retrieved")
	}
}

func TestVMIRecords(t *testing.T) {
	r, m := newRepo()
	rec := VMIRecord{Name: "Redis", BaseID: "base-1", Primaries: []string{"redis-server"}}
	r.PutVMI(rec, m)
	got, err := r.GetVMI("Redis", m)
	if err != nil || !reflect.DeepEqual(got, rec) {
		t.Fatalf("GetVMI = %+v, %v", got, err)
	}
	if _, err := r.GetVMI("ghost", m); err == nil {
		t.Fatal("missing record retrieved")
	}
	// Record without primaries.
	r.PutVMI(VMIRecord{Name: "Mini", BaseID: "base-1"}, m)
	mini, err := r.GetVMI("Mini", m)
	if err != nil || len(mini.Primaries) != 0 {
		t.Fatalf("Mini = %+v, %v", mini, err)
	}
	if got := r.VMIs(); len(got) != 2 {
		t.Fatalf("VMIs = %v", got)
	}
}

func TestRewireVMIs(t *testing.T) {
	r, m := newRepo()
	r.PutVMI(VMIRecord{Name: "A", BaseID: "old", Primaries: []string{"p"}}, m)
	r.PutVMI(VMIRecord{Name: "B", BaseID: "other", Primaries: []string{"q"}}, m)
	r.RewireVMIs("old", "new", m)
	a, _ := r.GetVMI("A", m)
	b, _ := r.GetVMI("B", m)
	if a.BaseID != "new" {
		t.Fatalf("A not rewired: %+v", a)
	}
	if b.BaseID != "other" {
		t.Fatalf("B wrongly rewired: %+v", b)
	}
	if !reflect.DeepEqual(a.Primaries, []string{"p"}) {
		t.Fatalf("rewire lost primaries: %+v", a)
	}
}

func TestUserData(t *testing.T) {
	r, m := newRepo()
	got, err := r.GetUserData("Redis", simio.PhaseImport, m)
	if err != nil || got != nil {
		t.Fatalf("empty user data = %q, %v", got, err)
	}
	archive := []byte("tar archive bytes")
	r.PutUserData("Redis", archive, m)
	got, err = r.GetUserData("Redis", simio.PhaseImport, m)
	if err != nil || !bytes.Equal(got, archive) {
		t.Fatalf("round trip = %q, %v", got, err)
	}
}

func TestBlobDedupAcrossKinds(t *testing.T) {
	r, m := newRepo()
	content := bytes.Repeat([]byte{7}, 4096)
	if err := r.PutPackage(pkg("a"), content, m); err != nil {
		t.Fatal(err)
	}
	size1 := r.SizeBytes()
	// Identical content under a different ref is deduplicated at the blob
	// level even though the metadata differs.
	if err := r.PutPackage(pkg("b"), content, m); err != nil {
		t.Fatal(err)
	}
	if r.SizeBytes()-size1 > 8192 {
		t.Fatalf("identical blobs not deduplicated: %d -> %d", size1, r.SizeBytes())
	}
}

func TestStats(t *testing.T) {
	r, m := newRepo()
	r.PutPackage(pkg("a"), []byte("x"), m)
	r.PutBase("b1", attrs, []byte("img"), m)
	r.PutVMI(VMIRecord{Name: "V", BaseID: "b1"}, m)
	st := r.Stats()
	if st.Packages != 1 || st.Bases != 1 || st.VMIs != 1 {
		t.Fatalf("Stats = %+v", st)
	}
	if st.TotalBytes != st.BlobBytes+st.DBBytes {
		t.Fatalf("TotalBytes inconsistent: %+v", st)
	}
}

func TestNilMeterSafe(t *testing.T) {
	r, _ := newRepo()
	if err := r.PutPackage(pkg("a"), []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.GetPackage(pkg("a").Ref(), simio.PhaseImport, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.PutBase("b", attrs, []byte("i"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GetBase("b", simio.PhaseCopy, nil); err != nil {
		t.Fatal(err)
	}
	r.PutUserData("v", []byte("d"), nil)
	if _, err := r.GetUserData("v", simio.PhaseImport, nil); err != nil {
		t.Fatal(err)
	}
}
