// Follower mode: a read-only repository whose metadata is fed by a
// writer's shipped snapshot + WAL batches instead of local mutation. The
// read path (retrievals, assembly, stats, streaming opens) is identical
// to a writer's; every mutating entry point returns ErrReadOnly. Applied
// batches bump the same generation stripes the writer's own mutators
// bump, so a retrieval cache layered above invalidates correctly as the
// follower catches up.
package vmirepo

import (
	"fmt"
	"io"
	"strings"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/metadb"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/simio"
)

// OpenFollower returns a read-only follower repository over the given
// local blob backend (typically a read-through cache that fetches missing
// blobs from the writer). The metadata starts empty; seed it with
// ResetToSnapshot and advance it with ApplyWAL — the catch-up loop in
// internal/replica drives both.
func OpenFollower(dev *simio.Device, blobs blobstore.Backend) *Repo {
	r := &Repo{blobs: blobs, dev: dev, readOnly: true, fol: metawal.NewFollower()}
	r.db.Store(metadb.New())
	r.createBuckets()
	return r
}

// ReadOnly reports whether the repository is a follower (mutations return
// ErrReadOnly).
func (r *Repo) ReadOnly() bool { return r.readOnly }

// Follower exposes the WAL apply machinery of a follower repository (nil
// on writers) — position and totals for replication observability.
func (r *Repo) Follower() *metawal.Follower { return r.fol }

// ResetToSnapshot replaces the follower's metadata with a full snapshot
// at the given epoch — the initial seed, and the restart path when the
// writer's compaction switches epochs (metawal.ErrEpochGone). The swap is
// atomic for readers: in-flight retrievals finish against the old
// database, later ones see the new. Every generation stripe is bumped
// around the swap, so no cached assembly survives a whole-database
// replacement.
func (r *Repo) ResetToSnapshot(epoch uint64, snapshot []byte) error {
	if !r.readOnly {
		return fmt.Errorf("vmirepo: ResetToSnapshot on a writer repository")
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	db, err := r.fol.Restart(epoch, snapshot)
	if err != nil {
		return err
	}
	// The fixed buckets exist on any database a writer snapshots, but an
	// empty writer's very first snapshot and a defensive reader disagree
	// cheaply — ensure them like every other constructor does.
	for _, b := range allBuckets {
		db.CreateBucket(b)
	}
	done := r.mutate() // all stripes: nothing cached may survive the swap
	r.db.Store(db)
	done()
	return nil
}

// ResetToSnapshotReader is ResetToSnapshot fed from a stream: the
// snapshot bytes are read into one right-sized buffer (metadb.Load needs
// the full image, but nothing upstream should have to materialize a
// second copy). size must be the exact snapshot length; a short or long
// stream is refused without touching the current metadata.
func (r *Repo) ResetToSnapshotReader(epoch uint64, src io.Reader, size int64) error {
	if !r.readOnly {
		return fmt.Errorf("vmirepo: ResetToSnapshot on a writer repository")
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	db, err := r.fol.RestartFrom(epoch, src, size)
	if err != nil {
		return err
	}
	for _, b := range allBuckets {
		db.CreateBucket(b)
	}
	done := r.mutate() // all stripes: nothing cached may survive the swap
	r.db.Store(db)
	done()
	return nil
}

// ApplyWAL applies one chunk of the writer's durable WAL tail — the bytes
// [from, from+len(chunk)) of the given epoch — in commit-marker-bounded
// batches. Each batch bumps the generation stripes its ops scope to,
// mirroring the writer's own bumps, so cached assemblies invalidate with
// the same precision on both sides. Torn or out-of-order chunks are
// refused without applying anything (see metawal.Follower.Apply).
func (r *Repo) ApplyWAL(epoch uint64, from int64, chunk []byte) (metawal.ApplyStats, error) {
	if !r.readOnly {
		return metawal.ApplyStats{}, fmt.Errorf("vmirepo: ApplyWAL on a writer repository")
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	return r.fol.Apply(epoch, from, chunk, func(ops []metadb.Op) func() {
		keys, all := stripeKeysFor(ops)
		if all {
			return r.mutate()
		}
		if len(keys) == 0 {
			return nil
		}
		return r.mutate(keys...)
	})
}

// stripeKeysFor derives the generation-stripe scoping keys of one applied
// batch, mirroring the bumps the writer's own mutators made when the
// batch was recorded: bases/masters ops scope to the base-image ID,
// vmis/userdata ops to the VMI name (a VMI put additionally scopes to the
// base ID its record names — PutVMI bumps both), a package delete is the
// package-GC fallback (the writer bumps every stripe), and a package
// insert bumps nothing (EnsurePackage deliberately doesn't — no assembly
// can depend on a ref no master references yet). Unknown buckets and
// bucket drops take the conservative all-stripes fallback.
func stripeKeysFor(ops []metadb.Op) (keys []string, all bool) {
	for _, op := range ops {
		switch op.Kind {
		case metadb.OpPut, metadb.OpDelete:
			switch op.Bucket {
			case bucketBases, bucketMasters, bucketUserData:
				keys = append(keys, string(op.Key))
			case bucketVMIs:
				keys = append(keys, string(op.Key))
				if op.Kind == metadb.OpPut {
					if base, _, ok := strings.Cut(string(op.Value), "\n"); ok {
						keys = append(keys, base)
					}
				}
			case bucketPackages:
				if op.Kind == metadb.OpDelete {
					return nil, true
				}
			case bucketVMIMeta:
				keys = append(keys, string(op.Key))
			case bucketTenants, bucketPkgRefs:
				// Accounting state: never read by the assembly path, and the
				// writer's own mutators bump nothing for it (see
				// lifecycle.go) — mirror that here.
			default:
				return nil, true
			}
		case metadb.OpDropBucket:
			return nil, true
		}
	}
	return keys, false
}

// MetaSnapshot serialises the follower-visible metadata database — the
// byte image the replay-equivalence tests compare against the writer's
// own snapshot (the full Snapshot format also embeds blob refcounts,
// which a read-through follower legitimately differs on).
func (r *Repo) MetaSnapshot() []byte { return r.meta().Snapshot() }

// OpenBlob opens a raw blob by content ID — the replication blob
// endpoint's read path (a follower fetches blobs it has not yet cached
// from the writer by ID). Absence and corruption keep their blobstore
// sentinels.
func (r *Repo) OpenBlob(id blobstore.ID) (io.ReadCloser, int64, error) {
	return r.blobs.Open(id)
}

// Device returns the repository's cost-model device — followers built by
// composition (internal/replica) share it with the core system above.
func (r *Repo) Device() *simio.Device { return r.dev }
