// Package vmirepo implements the Expelliarmus VMI repository of Fig. 2:
// content-addressed storage for binary packages, base images and user-data
// archives, plus the metadata database holding the Base Image, VMI and
// Package tables and the serialized master graphs. All operations charge
// their I/O to an optional simio.Meter so publish and retrieval times
// decompose exactly as in the paper's Fig. 5a.
//
// A Repo is safe for concurrent use. Individual operations rely on the
// sharded blob store and the per-bucket metadata locks; the check-and-store
// of package export, which must be atomic against concurrent publishes,
// goes through EnsurePackage. Snapshot quiesces all writers so the
// serialized blob and metadata sections are mutually consistent even while
// traffic is in flight.
package vmirepo

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/diskstore"
	"expelliarmus/internal/master"
	"expelliarmus/internal/metadb"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/simio"
)

const (
	bucketPackages = "packages"
	bucketBases    = "bases"
	bucketMasters  = "masters"
	bucketVMIs     = "vmis"
	bucketUserData = "userdata"
	// Lifecycle buckets (see lifecycle.go): per-VMI lifecycle metadata
	// (tenant, expiry, charged bytes), per-tenant live-byte accounting,
	// and per-class package reference counts for striped removal.
	bucketVMIMeta = "vmimeta"
	bucketTenants = "tenants"
	bucketPkgRefs = "pkgrefs"
)

// allBuckets is every fixed metadata bucket, (re)created by all repository
// constructors and on follower snapshot resets.
var allBuckets = []string{
	bucketPackages, bucketBases, bucketMasters, bucketVMIs, bucketUserData,
	bucketVMIMeta, bucketTenants, bucketPkgRefs,
}

// ErrNotFound marks lookups of records that are not in the repository.
// Under concurrency it is transient in one specific case: base-image
// selection may replace a base (rewiring VMI records to the survivor)
// between a reader's record fetch and its master/base fetch, so readers
// that hit it can re-read the record and retry (see core.Retrieve).
var ErrNotFound = errors.New("not found")

// ErrReadOnly marks mutating calls on a follower repository (OpenFollower):
// a follower's metadata advances only by applying the writer's shipped
// snapshot + WAL batches, never by local mutation. Callers that need to
// write must talk to the writer.
var ErrReadOnly = errors.New("repository is read-only (follower)")

// ErrQuotaExceeded marks a publish rejected because it would push its
// tenant's live bytes past the configured quota. It lives here (not in
// core) so the wire/server layers can map it without an import cycle.
var ErrQuotaExceeded = errors.New("tenant quota exceeded")

// Repo is the Expelliarmus repository. Its blob layer is pluggable: New
// gives the in-memory sharded backend, OpenAt the durable on-disk one;
// everything above the blobstore.Backend interface is identical, which the
// round-trip tests pin down to byte-identical snapshots.
type Repo struct {
	blobs blobstore.Backend
	// db is the metadata database, held through an atomic pointer and read
	// via meta(): a follower repository replaces the whole database on an
	// epoch switch (ResetToSnapshot) while readers are in flight. Writer
	// repositories store it once at construction and never again.
	db  atomic.Pointer[metadb.DB]
	dev *simio.Device
	// dir is the on-disk root for disk-backed repositories ("" when the
	// blob backend is in-memory); metadata commits land in the dir's
	// metadata WAL (see internal/metawal).
	dir string
	// wal is the metadata write-ahead log of a disk-backed repository
	// (nil when in-memory). Every committed metadata mutation streams
	// into it via the metadb journal hook, so Sync appends the delta
	// instead of rewriting the whole database image.
	wal *metawal.Log
	// opMu is held in shared mode by every mutating operation and
	// exclusively by Snapshot, so a snapshot never interleaves with the
	// blob-put/record-put pair of a store operation (which would serialize
	// a metadata record whose blob is missing from the blob section).
	// Mutating operations on different keys still run concurrently — the
	// shared mode only excludes snapshots.
	opMu sync.RWMutex
	// udMu serialises user-data replacement, whose release-old/store-new
	// pair must be atomic to keep blob reference counts exact.
	udMu sync.Mutex
	// lcMu serialises lifecycle accounting (tenant totals and package
	// refcounts), whose read-modify-write must include the delete-at-zero
	// step that Bucket.Update cannot express (see lifecycle.go).
	lcMu sync.Mutex
	// readOnly marks a follower repository (OpenFollower): every mutating
	// entry point returns ErrReadOnly, and the metadata advances only
	// through ResetToSnapshot/ApplyWAL.
	readOnly bool
	// fol is the WAL apply machinery of a follower repository (nil on
	// writers).
	fol *metawal.Follower
	// sg coalesces concurrent Sync callers into shared physical commits
	// (group commit) — see Sync.
	sg syncGroup
	// gens are the striped repository generations: GenStripes counters,
	// each bumped around every mutating operation that touches its stripe
	// (see mutate), read by the retrieval cache to key and invalidate
	// cached assemblies. Mutations scope their bumps to the stripes of the
	// keys they touch (a base-image ID, a VMI name), so a publish on one
	// base leaves entries cached for unrelated bases reachable; operations
	// with no scoping key (package GC) bump every stripe. Monotonic, never
	// persisted — a reopened or restored repository starts a fresh
	// generation space, which is safe because it also starts with an empty
	// cache.
	gens [GenStripes]atomic.Uint64
}

// GenStripes is the number of generation stripes. Keys (base-image IDs,
// VMI names) hash onto stripes via StripeFor; two keys sharing a stripe
// false-share invalidations (safe, just a lost warm entry), never miss
// one.
const GenStripes = 64

// HashKey hashes a repository scoping key (a base-image ID, a VMI name,
// an attribute quadruple) over the full 32-bit FNV-1a width. Callers
// reduce it by their own stripe count, so differently sized stripe
// spaces (generation stripes here, the core's commit-lock stripes) stay
// uniformly distributed and never couple to each other's counts.
func HashKey(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// StripeFor maps a generation-scoping key — a base-image ID or a VMI
// name — to its stripe index.
func StripeFor(key string) int {
	return int(HashKey(key) % GenStripes)
}

// Generation returns the cross-stripe repository generation: the sum of
// all stripe counters, which moves on every mutation anywhere. It is the
// fallback for readers with no scoping key (a restore check, a whole-repo
// consistency probe); scoped readers — the retrieval cache — use
// GenerationFor and stay immune to unrelated stripes.
func (r *Repo) Generation() uint64 {
	var sum uint64
	for i := range r.gens {
		sum += r.gens[i].Load()
	}
	return sum
}

// GenerationFor returns the combined generation of the stripes covering
// keys (deduplicated, so the value is independent of key order and
// repetition). Each stripe counter is bumped both before and after every
// mutation touching it, so a reader that captures GenerationFor, performs
// a multi-step read (e.g. a whole VMI assembly) and then observes the
// same value knows that no mutation relevant to those keys committed
// anywhere inside its window — the invariant the retrieval cache's insert
// path relies on. A mutation in flight (bumped before, not yet after)
// keeps the value moving, so such a window can also never span one.
// Because each counter only ever grows, an unchanged sum implies every
// constituent stripe is unchanged.
func (r *Repo) GenerationFor(keys ...string) uint64 {
	var seen [GenStripes]bool
	var sum uint64
	for _, k := range keys {
		i := StripeFor(k)
		if !seen[i] {
			seen[i] = true
			sum += r.gens[i].Load()
		}
	}
	return sum
}

// mutate brackets a mutating operation for the generation protocol: one
// bump before the first write makes any reader that started earlier
// unable to validate its window, one bump after the last write moves all
// later readers to fresh cache keys. The bumps land only on the stripes
// of the given keys — the base image(s) and/or VMI name the mutation
// touches — so readers scoped to other stripes keep their windows; with
// no keys every stripe is bumped (the conservative fallback for
// mutations whose blast radius has no single key, e.g. package GC). Use
// as `defer r.mutate(keys...)()`.
func (r *Repo) mutate(keys ...string) func() {
	if len(keys) == 0 {
		for i := range r.gens {
			r.gens[i].Add(1)
		}
		return func() {
			for i := range r.gens {
				r.gens[i].Add(1)
			}
		}
	}
	var seen [GenStripes]bool
	var stripes []int
	for _, k := range keys {
		if i := StripeFor(k); !seen[i] {
			seen[i] = true
			stripes = append(stripes, i)
		}
	}
	for _, i := range stripes {
		r.gens[i].Add(1)
	}
	return func() {
		for _, i := range stripes {
			r.gens[i].Add(1)
		}
	}
}

// New returns an empty in-memory repository using the device for cost
// accounting.
func New(dev *simio.Device) *Repo {
	return NewWithBackend(dev, blobstore.New())
}

// NewWithBackend returns an empty repository over an explicit blob
// backend.
func NewWithBackend(dev *simio.Device, blobs blobstore.Backend) *Repo {
	r := &Repo{blobs: blobs, dev: dev}
	r.db.Store(metadb.New())
	r.createBuckets()
	return r
}

// meta returns the current metadata database. Writer repositories set it
// once; follower repositories swap it on every epoch switch, so callers
// must not cache the pointer across operations.
func (r *Repo) meta() *metadb.DB { return r.db.Load() }

// createBuckets ensures the repository's metadata buckets exist
// (CreateBucket is idempotent, so this is safe on a loaded database too).
func (r *Repo) createBuckets() {
	for _, b := range allBuckets {
		r.meta().CreateBucket(b)
	}
}

// OpenOptions tune a disk-backed repository beyond the defaults.
type OpenOptions struct {
	// WALCompactBytes compacts the metadata WAL (full snapshot rewrite +
	// fresh log) when a Sync would grow it beyond this size. Zero means
	// metawal.DefaultCompactBytes; small values force compaction churn
	// for tests and stress legs.
	WALCompactBytes int64
	// WALCompactEvery additionally compacts on every Nth effective Sync
	// (0 disables the periodic trigger).
	WALCompactEvery int
	// BlobCompactDeadRatio is the dead-byte fraction at which a sealed
	// blob segment is compacted (rewritten and retired) by Sync. Zero
	// means diskstore.DefaultCompactDeadRatio; negative disables the
	// automatic trigger (Compact still reclaims on demand).
	BlobCompactDeadRatio float64
	// BlobMaxSegmentBytes rolls the active blob segment at this size.
	// Zero means diskstore.DefaultMaxSegmentBytes; small values force
	// multi-segment layouts (and tighter compaction granularity) for
	// tests and benchmarks.
	BlobMaxSegmentBytes int64
}

// OpenAt creates or reopens a disk-backed repository rooted at dir with
// default options: blobs live in dir/blobs (append-only segments + index,
// see diskstore), the metadata database in the dir's snapshot + WAL pair
// (see metawal; a legacy meta.db layout is migrated on first open).
// Reopening runs blob crash recovery and metadata WAL replay; call Sync
// to make later work durable.
func OpenAt(dir string, dev *simio.Device) (*Repo, error) {
	return OpenAtOpts(dir, dev, OpenOptions{})
}

// OpenAtOpts is OpenAt with explicit options.
func OpenAtOpts(dir string, dev *simio.Device, o OpenOptions) (*Repo, error) {
	blobs, err := diskstore.Open(filepath.Join(dir, "blobs"), diskstore.Options{
		CompactDeadRatio: o.BlobCompactDeadRatio,
		MaxSegmentBytes:  o.BlobMaxSegmentBytes,
	})
	if err != nil {
		return nil, err
	}
	wal, db, err := metawal.Open(dir, metawal.Options{
		CompactBytes: o.WALCompactBytes,
		CompactEvery: o.WALCompactEvery,
	})
	if err != nil {
		blobs.Close()
		return nil, fmt.Errorf("vmirepo: %w", err)
	}
	r := &Repo{blobs: blobs, dev: dev, dir: dir, wal: wal}
	r.db.Store(db)
	// Bucket creation precedes the journal hookup: the fixed buckets are
	// (re)created by every open on both the live and the replay path, so
	// journaling their creation would only append noise to the WAL.
	r.createBuckets()
	db.SetJournal(wal.Record)
	return r, nil
}

// Abandon drops a disk-backed repository's file handles and directory
// lock without syncing anything — a crash simulation for recovery tests;
// production code wants Close. In-memory repositories have nothing to
// abandon.
func (r *Repo) Abandon() error {
	var first error
	if r.wal != nil {
		first = r.wal.Abandon()
	}
	if ds, ok := r.blobs.(*diskstore.Store); ok {
		if err := ds.Abandon(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WAL exposes the metadata write-ahead log of a disk-backed repository
// (nil when in-memory) — recovery reports, compaction state, and the
// crash-injection hook the kill-point tests use.
func (r *Repo) WAL() *metawal.Log { return r.wal }

// Persistent reports whether the repository is disk-backed (Sync commits
// to durable storage) or in-memory (Snapshot/Load is the only
// persistence).
func (r *Repo) Persistent() bool { return r.dir != "" }

// blobErr surfaces a durable backend's sticky I/O failure. Backend.Put
// cannot report failure (its bool means "newly stored"), so every store
// operation checks here between writing a blob and committing the
// metadata record that references it — a record pointing at a blob that
// never hit the log must not exist even in memory.
func (r *Repo) blobErr() error {
	if d, ok := r.blobs.(blobstore.Durable); ok {
		return d.Err()
	}
	return nil
}

// BlobRecovery returns the blob store's crash-recovery report when the
// repository is disk-backed.
func (r *Repo) BlobRecovery() (diskstore.RecoveryReport, bool) {
	if ds, ok := r.blobs.(*diskstore.Store); ok {
		return ds.Recovery(), true
	}
	return diskstore.RecoveryReport{}, false
}

// SyncStats reports one durable repository sync.
type SyncStats struct {
	// Blobs is the blob backend's incremental flush: only segments
	// appended since the previous sync are written.
	Blobs blobstore.SyncStats
	// MetaBytes is the metadata bytes committed this sync: the WAL delta
	// (framed op records plus the commit marker) or, on a compacting
	// sync, the fresh full snapshot. On the hot path it is O(delta) — no
	// full metadata rewrite.
	MetaBytes int64
	// MetaOps is the number of metadata mutations this sync committed.
	MetaOps int
	// Compacted reports that this sync rewrote the metadata WAL into a
	// fresh snapshot; MetaSnapshotBytes is that snapshot's size.
	Compacted         bool
	MetaSnapshotBytes int64
}

// Sync makes the repository durable on disk. It quiesces mutating
// operations (like Snapshot), then runs the two-phase commit the durable
// backend contract exists for: first SyncData makes every new blob
// durable, then the metadata WAL appends and fsyncs the mutation delta
// and commits its durability watermark, then the full blob Sync makes
// the queued releases and the blob index durable. Each crash window is
// safe in the same direction: before the WAL watermark, old metadata
// plus extra durable blobs (orphans); after it, new metadata whose every
// referenced blob is already durable, with released blobs at worst
// resurrected as orphans — never committed records pointing at missing
// blobs. Sync on an in-memory repository returns an error; use Snapshot
// instead.
//
// Concurrent Sync callers group-commit: each caller needs one physical
// sync that STARTS after its call does (so its completed operations are
// covered), but a burst of N callers shares physical passes instead of
// queueing N fsync+watermark rounds — one pass for everyone who arrived
// while the previous one ran. A caller observes at most two passes
// (the in-flight one it cannot join, then the shared one it can).
func (r *Repo) Sync() (SyncStats, error) {
	g := &r.sg
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	g.calls++
	// The pass this caller needs: the next one to start — or, when one is
	// already running, the one after it (the running pass's WAL batch was
	// sealed before this call arrived, so it may not cover it).
	target := g.completed + 1
	if g.running {
		target++
	}
	for {
		if g.completed >= target {
			st, err := g.lastSt, g.lastErr
			g.mu.Unlock()
			return st, err
		}
		if !g.running {
			g.running = true
			g.mu.Unlock()
			st, err := r.syncOrCompact(false)
			g.mu.Lock()
			g.running = false
			g.completed++
			g.lastSt, g.lastErr = st, err
			g.cond.Broadcast()
			g.mu.Unlock()
			return st, err
		}
		g.cond.Wait()
	}
}

// syncGroup is Sync's group-commit state: a generation counter of
// physical passes plus the last pass's result, shared with the callers
// that coalesced into it.
type syncGroup struct {
	mu        sync.Mutex
	cond      *sync.Cond
	running   bool
	completed uint64 // physical passes finished
	calls     uint64 // Sync calls arrived (observability)
	lastSt    SyncStats
	lastErr   error
}

// SyncCounters reports how many Sync calls arrived and how many physical
// sync passes actually ran — the group-commit coalescing ratio. Both only
// count Sync; Compact always runs its own pass.
func (r *Repo) SyncCounters() (calls, physical uint64) {
	r.sg.mu.Lock()
	defer r.sg.mu.Unlock()
	return r.sg.calls, r.sg.completed
}

// Compact is Sync with forced compaction of both stores: the metadata
// state is rewritten as a fresh full snapshot at the next epoch with an
// empty log, and the blob backend reclaims the space of released blobs
// (evacuating and retiring segments past the dead-ratio gate). The size-
// and ratio-triggered compactions run the same code from inside Sync;
// this entry point exists for operators (and stress tests) that want to
// bound reopen cost and disk usage at a moment of their choosing. Compact
// never coalesces with grouped Syncs — the operator asked for this exact
// pass.
func (r *Repo) Compact() (SyncStats, error) {
	return r.syncOrCompact(true)
}

func (r *Repo) syncOrCompact(forceCompact bool) (SyncStats, error) {
	if r.readOnly {
		return SyncStats{}, fmt.Errorf("vmirepo: sync: %w", ErrReadOnly)
	}
	if r.dir == "" {
		return SyncStats{}, fmt.Errorf("vmirepo: repository is in-memory; Sync requires OpenAt")
	}
	r.opMu.Lock()
	defer r.opMu.Unlock()
	var st SyncStats
	d, ok := r.blobs.(blobstore.Durable)
	if !ok {
		return st, fmt.Errorf("vmirepo: blob backend is not durable")
	}
	var err error
	if st.Blobs, err = d.SyncData(); err != nil {
		return st, err
	}
	var ws metawal.SyncStats
	if forceCompact {
		ws, err = r.wal.Compact()
	} else {
		ws, err = r.wal.Sync()
	}
	if err != nil {
		return st, fmt.Errorf("vmirepo: commit metadata log: %w", err)
	}
	st.MetaBytes = ws.WALBytes + ws.SnapshotBytes
	st.MetaOps = ws.Ops
	st.Compacted = ws.Compacted
	st.MetaSnapshotBytes = ws.SnapshotBytes
	rel, err := d.Sync()
	if err != nil {
		return st, err
	}
	st.Blobs.Segments += rel.Segments
	st.Blobs.SegmentBytes += rel.SegmentBytes
	st.Blobs.IndexBytes = rel.IndexBytes
	st.Blobs.SegmentsCompacted += rel.SegmentsCompacted
	st.Blobs.BytesReclaimed += rel.BytesReclaimed
	st.Blobs.DeadBytes = rel.DeadBytes
	if forceCompact {
		// The forced path reclaims blob garbage too, even when the
		// dead-ratio trigger would not have fired — the operator asked for
		// bounded disk, not a heuristic.
		if c, ok := r.blobs.(blobstore.Compactor); ok {
			cst, cerr := c.Compact()
			if cerr != nil {
				return st, cerr
			}
			st.Blobs.SegmentsCompacted += cst.SegmentsCompacted
			st.Blobs.BytesReclaimed += cst.BytesReclaimed
		}
		if ds, ok := r.blobs.(*diskstore.Store); ok {
			st.Blobs.DeadBytes = ds.DiskStats().DeadBytes
		}
	}
	return st, nil
}

// Close syncs (when the repository has a directory for its metadata) and
// releases backend resources — gated on the backend being Durable, not on
// the directory, so a durable backend injected via NewWithBackend still
// gets its handles and directory lock released. A closed repository must
// not be used further.
func (r *Repo) Close() error {
	d, ok := r.blobs.(blobstore.Durable)
	if !ok {
		return nil
	}
	if r.dir != "" {
		if _, err := r.Sync(); err != nil {
			// Do NOT d.Close() here: its internal sync would flush the
			// queued blob releases even though the metadata that stopped
			// referencing those blobs failed to commit — manufacturing the
			// dangling-metadata state the two-phase protocol prevents.
			// Abandon releases the handles and lock without syncing.
			r.Abandon()
			return err
		}
	}
	var first error
	if r.wal != nil {
		// The Sync above already committed everything; this only releases
		// the WAL file handle (its internal close-sync is a no-op).
		first = r.wal.Close()
	}
	if err := d.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// SizeBytes is the repository footprint: unique blob bytes plus the
// metadata database file — the quantity plotted in Fig. 3.
func (r *Repo) SizeBytes() int64 {
	return r.blobs.TotalBytes() + r.meta().SizeBytes()
}

func (r *Repo) chargeDB(m *simio.Meter, bytes int64) {
	if m != nil {
		m.Charge(simio.PhaseDB, r.dev.DBCost(bytes))
	}
}

// --- packages ---

// PackageRecord describes one stored binary package.
type PackageRecord struct {
	Pkg      pkgmeta.Package
	BlobID   blobstore.ID
	BlobSize int64
}

func encodePackageRecord(rec PackageRecord) []byte {
	var buf bytes.Buffer
	buf.Write(rec.BlobID[:])
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(rec.BlobSize))
	buf.Write(tmp[:n])
	buf.WriteString(pkgmeta.FormatControl(rec.Pkg))
	return buf.Bytes()
}

func decodePackageRecord(data []byte) (PackageRecord, error) {
	var rec PackageRecord
	if len(data) < sha256.Size+1 {
		return rec, fmt.Errorf("vmirepo: truncated package record")
	}
	copy(rec.BlobID[:], data[:sha256.Size])
	r := bytes.NewReader(data[sha256.Size:])
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return rec, err
	}
	rec.BlobSize = int64(size)
	control, err := io.ReadAll(r)
	if err != nil {
		return rec, err
	}
	rec.Pkg, err = pkgmeta.ParseControl(string(control))
	return rec, err
}

// HasPackage reports whether a package with the given Ref is stored. The
// index lookup charges one metadata access.
func (r *Repo) HasPackage(ref string, m *simio.Meter) bool {
	r.chargeDB(m, 0)
	_, ok := r.meta().Bucket(bucketPackages).Get([]byte(ref))
	return ok
}

// PutPackage stores a binary package blob under its metadata Ref. Storing
// an already-present Ref is an error (callers are expected to check
// HasPackage; the decomposer's dedup path never stores twice). Concurrent
// exporters that may race on the same Ref use EnsurePackage instead.
func (r *Repo) PutPackage(p pkgmeta.Package, blob []byte, m *simio.Meter) error {
	stored, err := r.EnsurePackage(p, blob, m)
	if err != nil {
		return err
	}
	if !stored {
		return fmt.Errorf("vmirepo: package %s already stored", p.Ref())
	}
	return nil
}

// EnsurePackage stores the package if its Ref is not yet present and
// reports whether this call stored it. The check-and-insert is atomic, so
// concurrent publishes exporting the same package agree on exactly one
// winner; the loser's blob reference is released (the content-addressed
// store already deduplicated the bytes). Only the winner is charged the
// store write; the loser's outcome is equivalent to having observed the
// package via HasPackage.
//
// EnsurePackage deliberately does NOT bump any generation stripe: it can
// only add a ref that no master graph references yet (publishes commit
// their master-graph update strictly after exporting packages, and GC
// rebuilds masters before dropping refs), so no assembly's output can
// depend on the insert — invalidating cached images for it would flush
// warm entries on the data-plane phase of every concurrent publish for
// nothing.
func (r *Repo) EnsurePackage(p pkgmeta.Package, blob []byte, m *simio.Meter) (bool, error) {
	if r.readOnly {
		return false, fmt.Errorf("vmirepo: store package %s: %w", p.Ref(), ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	key := []byte(p.Ref())
	id, _ := r.blobs.Put(blob)
	if err := r.blobErr(); err != nil {
		return false, fmt.Errorf("vmirepo: store package %s: %w", p.Ref(), err)
	}
	rec := PackageRecord{Pkg: p, BlobID: id, BlobSize: int64(len(blob))}
	val := encodePackageRecord(rec)
	if !r.meta().Bucket(bucketPackages).PutIfAbsent(key, val) {
		if err := r.blobs.Release(id); err != nil {
			return false, err
		}
		r.chargeDB(m, 0)
		return false, nil
	}
	if m != nil {
		m.Charge(simio.PhaseStore, r.dev.WriteCost(int64(len(blob))))
	}
	r.chargeDB(m, int64(len(val)))
	return true, nil
}

// GetPackage returns the stored package metadata and blob, charging the
// blob read to the given phase.
func (r *Repo) GetPackage(ref string, ph simio.Phase, m *simio.Meter) (pkgmeta.Package, []byte, error) {
	val, ok := r.meta().Bucket(bucketPackages).Get([]byte(ref))
	r.chargeDB(m, 0)
	if !ok {
		return pkgmeta.Package{}, nil, fmt.Errorf("vmirepo: package %s %w", ref, ErrNotFound)
	}
	rec, err := decodePackageRecord(val)
	if err != nil {
		return pkgmeta.Package{}, nil, err
	}
	rc, size, err := r.blobs.Open(rec.BlobID)
	if err != nil {
		return pkgmeta.Package{}, nil, fmt.Errorf("vmirepo: package %s: %w", ref, err)
	}
	if m != nil {
		m.Charge(ph, r.dev.ReadCost(size))
	}
	blob, err := readAll(rc, size, "package blob")
	if err != nil {
		return pkgmeta.Package{}, nil, err
	}
	return rec.Pkg, blob, nil
}

// Packages lists all stored package records sorted by Ref.
func (r *Repo) Packages() ([]PackageRecord, error) {
	var out []PackageRecord
	var err error
	r.meta().Bucket(bucketPackages).ForEach(func(k, v []byte) bool {
		var rec PackageRecord
		rec, err = decodePackageRecord(v)
		if err != nil {
			return false
		}
		out = append(out, rec)
		return true
	})
	return out, err
}

// --- base images ---

// BaseRecord describes one stored base image.
type BaseRecord struct {
	ID       string
	Attrs    pkgmeta.BaseAttrs
	BlobID   blobstore.ID
	BlobSize int64
}

func encodeBaseRecord(rec BaseRecord) []byte {
	return []byte(fmt.Sprintf("%s\n%d\n%s\n%s\n%s\n%s",
		hex.EncodeToString(rec.BlobID[:]), rec.BlobSize,
		rec.Attrs.Type, rec.Attrs.Distro, rec.Attrs.Version, rec.Attrs.Arch))
}

func decodeBaseRecord(id string, data []byte) (BaseRecord, error) {
	parts := strings.Split(string(data), "\n")
	if len(parts) != 6 {
		return BaseRecord{}, fmt.Errorf("vmirepo: corrupt base record for %s", id)
	}
	blobID, err := blobstore.ParseID(parts[0])
	if err != nil {
		return BaseRecord{}, err
	}
	var size int64
	if _, err := fmt.Sscanf(parts[1], "%d", &size); err != nil {
		return BaseRecord{}, err
	}
	return BaseRecord{
		ID: id, BlobID: blobID, BlobSize: size,
		Attrs: pkgmeta.BaseAttrs{Type: parts[2], Distro: parts[3], Version: parts[4], Arch: parts[5]},
	}, nil
}

// HasBase reports whether the base image is stored.
func (r *Repo) HasBase(id string, m *simio.Meter) bool {
	r.chargeDB(m, 0)
	_, ok := r.meta().Bucket(bucketBases).Get([]byte(id))
	return ok
}

// PutBase stores a serialized base image. It is a thin adapter over
// PutBaseReader, so both entry points share one streaming store path.
func (r *Repo) PutBase(id string, attrs pkgmeta.BaseAttrs, image []byte, m *simio.Meter) error {
	return r.PutBaseReader(id, attrs, bytes.NewReader(image), int64(len(image)), m)
}

// PutBaseReader streams a serialized base image from src into the
// repository: the bytes flow straight into the blob store (hashed and
// spooled by the backend in bounded chunks), so storing a gigabyte base
// never materializes it here. size is the expected serialized length when
// known (>= 0) — a publish knows it exactly via Disk.SerializedBytes — or
// -1 to accept whatever src yields; a known size that the stream fails to
// match releases the stored blob and errors, because a base record whose
// length disagrees with its blob would poison every later retrieval.
func (r *Repo) PutBaseReader(id string, attrs pkgmeta.BaseAttrs, src io.Reader, size int64, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: store base %s: %w", id, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(id)()
	b := r.meta().Bucket(bucketBases)
	if _, exists := b.Get([]byte(id)); exists {
		return fmt.Errorf("vmirepo: base %s already stored", id)
	}
	blobID, n, _, err := r.blobs.PutReader(src)
	if err != nil {
		return fmt.Errorf("vmirepo: store base %s: %w", id, err)
	}
	if err := r.blobErr(); err != nil {
		return fmt.Errorf("vmirepo: store base %s: %w", id, err)
	}
	if size >= 0 && n != size {
		if rerr := r.blobs.Release(blobID); rerr != nil {
			return fmt.Errorf("vmirepo: store base %s: stream yielded %d of %d bytes; release: %w", id, n, size, rerr)
		}
		return fmt.Errorf("vmirepo: store base %s: stream yielded %d of %d bytes", id, n, size)
	}
	rec := BaseRecord{ID: id, Attrs: attrs, BlobID: blobID, BlobSize: n}
	b.Put([]byte(id), encodeBaseRecord(rec))
	if m != nil {
		m.Charge(simio.PhaseStore, r.dev.WriteCost(n))
	}
	r.chargeDB(m, 64)
	return nil
}

// GetBase returns the serialized base image, charging the read to the
// given phase (PhaseCopy during retrieval).
func (r *Repo) GetBase(id string, ph simio.Phase, m *simio.Meter) ([]byte, error) {
	val, ok := r.meta().Bucket(bucketBases).Get([]byte(id))
	r.chargeDB(m, 0)
	if !ok {
		return nil, fmt.Errorf("vmirepo: base %s %w", id, ErrNotFound)
	}
	rec, err := decodeBaseRecord(id, val)
	if err != nil {
		return nil, err
	}
	rc, size, err := r.blobs.Open(rec.BlobID)
	if err != nil {
		return nil, fmt.Errorf("vmirepo: base %s: %w", id, err)
	}
	if m != nil {
		m.Charge(ph, r.dev.ReadCost(size))
	}
	return readAll(rc, size, "base blob")
}

// RemoveBase deletes a stored base image, reclaiming its blob (Algorithm 1
// line 27, remove(b, repo)).
func (r *Repo) RemoveBase(id string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: remove base %s: %w", id, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(id)()
	b := r.meta().Bucket(bucketBases)
	val, ok := b.Get([]byte(id))
	r.chargeDB(m, 0)
	if !ok {
		return fmt.Errorf("vmirepo: base %s %w", id, ErrNotFound)
	}
	rec, err := decodeBaseRecord(id, val)
	if err != nil {
		return err
	}
	if err := r.blobs.Release(rec.BlobID); err != nil {
		return err
	}
	b.Delete([]byte(id))
	return nil
}

// BaseInfo returns a stored base image's record (attributes, blob ID and
// size) without opening its blob — the cheap class lookup removal and
// lifecycle accounting need.
func (r *Repo) BaseInfo(id string) (BaseRecord, error) {
	val, ok := r.meta().Bucket(bucketBases).Get([]byte(id))
	if !ok {
		return BaseRecord{}, fmt.Errorf("vmirepo: base %s %w", id, ErrNotFound)
	}
	return decodeBaseRecord(id, val)
}

// Bases lists stored base images sorted by ID (Algorithm 2 line 3).
func (r *Repo) Bases() ([]BaseRecord, error) {
	var out []BaseRecord
	var err error
	r.meta().Bucket(bucketBases).ForEach(func(k, v []byte) bool {
		var rec BaseRecord
		rec, err = decodeBaseRecord(string(k), v)
		if err != nil {
			return false
		}
		out = append(out, rec)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, err
}

// --- master graphs ---

// PutMaster stores (or replaces) the master graph keyed by its base image.
// A rewrite that would not change the stored bytes is elided — the master
// is the largest metadata record, and a republish of an unchanged image
// must not push a full copy of it into the metadata WAL. The modeled DB
// charge is unchanged either way (the cost model accounts the logical
// operation; the elision is an I/O-layer optimisation).
func (r *Repo) PutMaster(mg *master.Graph, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: store master for %s: %w", mg.BaseID, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(mg.BaseID)()
	data := mg.Marshal()
	r.meta().Bucket(bucketMasters).Update([]byte(mg.BaseID), func(old []byte, ok bool) ([]byte, bool) {
		if ok && bytes.Equal(old, data) {
			return nil, false
		}
		return data, true
	})
	r.chargeDB(m, int64(len(data)))
	return nil
}

// GetMaster loads the master graph of a base image.
func (r *Repo) GetMaster(baseID string, m *simio.Meter) (*master.Graph, error) {
	val, ok := r.meta().Bucket(bucketMasters).Get([]byte(baseID))
	r.chargeDB(m, int64(len(val)))
	if !ok {
		return nil, fmt.Errorf("vmirepo: master graph for %s %w", baseID, ErrNotFound)
	}
	return master.Unmarshal(val)
}

// RemoveMaster deletes a master graph.
func (r *Repo) RemoveMaster(baseID string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: remove master for %s: %w", baseID, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(baseID)()
	r.meta().Bucket(bucketMasters).Delete([]byte(baseID))
	r.chargeDB(m, 0)
	return nil
}

// Masters returns all master graphs sorted by base ID.
func (r *Repo) Masters() ([]*master.Graph, error) {
	var out []*master.Graph
	var err error
	r.meta().Bucket(bucketMasters).ForEach(func(k, v []byte) bool {
		var mg *master.Graph
		mg, err = master.Unmarshal(v)
		if err != nil {
			return false
		}
		out = append(out, mg)
		return true
	})
	return out, err
}

// --- VMI records ---

// VMIRecord maps a published VMI name to its decomposition.
type VMIRecord struct {
	Name      string
	BaseID    string
	Primaries []string
}

// PutVMI stores a VMI record. Like PutMaster, a rewrite that would not
// change the stored bytes is elided from the write path (and so from the
// metadata WAL) while charging the same modeled cost.
func (r *Repo) PutVMI(rec VMIRecord, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: store VMI %q: %w", rec.Name, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(rec.BaseID, rec.Name)()
	val := []byte(rec.BaseID + "\n" + strings.Join(rec.Primaries, ","))
	r.meta().Bucket(bucketVMIs).Update([]byte(rec.Name), func(old []byte, ok bool) ([]byte, bool) {
		if ok && bytes.Equal(old, val) {
			return nil, false
		}
		return val, true
	})
	r.chargeDB(m, int64(len(val)))
	return nil
}

// GetVMI loads a VMI record by name.
func (r *Repo) GetVMI(name string, m *simio.Meter) (VMIRecord, error) {
	val, ok := r.meta().Bucket(bucketVMIs).Get([]byte(name))
	r.chargeDB(m, 0)
	if !ok {
		return VMIRecord{}, fmt.Errorf("vmirepo: VMI %q %w", name, ErrNotFound)
	}
	parts := strings.SplitN(string(val), "\n", 2)
	if len(parts) != 2 {
		return VMIRecord{}, fmt.Errorf("vmirepo: corrupt VMI record %q", name)
	}
	rec := VMIRecord{Name: name, BaseID: parts[0]}
	if parts[1] != "" {
		rec.Primaries = strings.Split(parts[1], ",")
	}
	return rec, nil
}

// RewireVMIs repoints every VMI record referencing oldBase to newBase,
// used when base-image selection replaces an obsolete base (its clustered
// primary subgraphs having been merged into the surviving master).
//
// Each rewrite is an atomic compare-and-rewrite that re-checks the record
// still points at oldBase: under striped commit locks a publish of the
// same VMI name on a *different* attribute class can commit between the
// scan and the rewrite (its commit stripe does not exclude this one), and
// blindly repointing would splice that publish's primaries onto this
// class's base. A record that moved since the scan is simply left to its
// new owner.
func (r *Repo) RewireVMIs(oldBase, newBase string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: rewire VMIs %s -> %s: %w", oldBase, newBase, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(oldBase, newBase)()
	b := r.meta().Bucket(bucketVMIs)
	var names []string
	b.ForEach(func(k, v []byte) bool {
		parts := strings.SplitN(string(v), "\n", 2)
		if len(parts) == 2 && parts[0] == oldBase {
			names = append(names, string(k))
		}
		return true
	})
	for _, name := range names {
		b.Update([]byte(name), func(old []byte, ok bool) ([]byte, bool) {
			parts := strings.SplitN(string(old), "\n", 2)
			if !ok || len(parts) != 2 || parts[0] != oldBase {
				return nil, false
			}
			r.chargeDB(m, int64(len(old)))
			return []byte(newBase + "\n" + parts[1]), true
		})
	}
	return nil
}

// VMIs lists stored VMI names.
func (r *Repo) VMIs() []string {
	var out []string
	r.meta().Bucket(bucketVMIs).ForEach(func(k, v []byte) bool {
		out = append(out, string(k))
		return true
	})
	return out
}

// --- user data ---

// PutUserData stores a VMI's user-data archive, replacing any previous
// archive for the name (re-publishing a VMI refreshes its user data). The
// replaced archive's blob reference is released so repeated republishes do
// not leak store space; a release failure surfaces the store
// inconsistency it indicates.
func (r *Repo) PutUserData(name string, archive []byte, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: store user data %q: %w", name, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.udMu.Lock()
	defer r.udMu.Unlock()
	defer r.mutate(name)()
	b := r.meta().Bucket(bucketUserData)
	sum := blobstore.Sum(archive)
	if old, ok := b.Get([]byte(name)); ok && bytes.Equal(old, sum[:]) {
		// Identical archive for the same name: the stored blob, its single
		// reference and the record are already exactly right, so the
		// replacement is elided end to end — no blob-log or WAL traffic
		// for a republish whose user data did not change. A sticky store
		// failure still surfaces like on the write path (elision must not
		// narrow the error surface), and the modeled charge below stays,
		// like PutMaster's.
		if err := r.blobErr(); err != nil {
			return fmt.Errorf("vmirepo: store user data %q: %w", name, err)
		}
		if m != nil {
			m.Charge(simio.PhaseStore, r.dev.WriteCost(int64(len(archive))))
		}
		r.chargeDB(m, 40)
		return nil
	}
	id, _ := r.blobs.Put(archive)
	if err := r.blobErr(); err != nil {
		return fmt.Errorf("vmirepo: store user data %q: %w", name, err)
	}
	if old, ok := b.Get([]byte(name)); ok {
		// Drop the previous record's reference. When the new archive has
		// identical content this simply undoes the extra reference the Put
		// above took, leaving exactly one.
		var oldID blobstore.ID
		copy(oldID[:], old)
		if err := r.blobs.Release(oldID); err != nil {
			return fmt.Errorf("vmirepo: replace user data %q: %w", name, err)
		}
	}
	b.Put([]byte(name), id[:])
	if m != nil {
		m.Charge(simio.PhaseStore, r.dev.WriteCost(int64(len(archive))))
	}
	r.chargeDB(m, 40)
	return nil
}

// GetUserData returns the archive, or nil when the VMI stored none.
func (r *Repo) GetUserData(name string, ph simio.Phase, m *simio.Meter) ([]byte, error) {
	val, ok := r.meta().Bucket(bucketUserData).Get([]byte(name))
	r.chargeDB(m, 0)
	if !ok {
		return nil, nil
	}
	var id blobstore.ID
	copy(id[:], val)
	rc, size, err := r.blobs.Open(id)
	if err != nil {
		return nil, fmt.Errorf("vmirepo: user data for %q: %w", name, err)
	}
	if m != nil {
		m.Charge(ph, r.dev.ReadCost(size))
	}
	return readAll(rc, size, fmt.Sprintf("user data for %q", name))
}

// RemovePackage deletes a stored package record and releases its blob.
func (r *Repo) RemovePackage(ref string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: remove package %s: %w", ref, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate()()
	b := r.meta().Bucket(bucketPackages)
	val, ok := b.Get([]byte(ref))
	r.chargeDB(m, 0)
	if !ok {
		return fmt.Errorf("vmirepo: package %s %w", ref, ErrNotFound)
	}
	rec, err := decodePackageRecord(val)
	if err != nil {
		return err
	}
	if err := r.blobs.Release(rec.BlobID); err != nil {
		return err
	}
	b.Delete([]byte(ref))
	return nil
}

// RemoveUserData deletes a VMI's user-data archive if present.
func (r *Repo) RemoveUserData(name string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: remove user data %q: %w", name, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	r.udMu.Lock()
	defer r.udMu.Unlock()
	defer r.mutate(name)()
	b := r.meta().Bucket(bucketUserData)
	val, ok := b.Get([]byte(name))
	r.chargeDB(m, 0)
	if !ok {
		return nil
	}
	var id blobstore.ID
	copy(id[:], val)
	if err := r.blobs.Release(id); err != nil {
		return err
	}
	b.Delete([]byte(name))
	return nil
}

// RemoveVMI deletes a VMI record.
func (r *Repo) RemoveVMI(name string, m *simio.Meter) error {
	if r.readOnly {
		return fmt.Errorf("vmirepo: remove VMI %q: %w", name, ErrReadOnly)
	}
	r.opMu.RLock()
	defer r.opMu.RUnlock()
	defer r.mutate(name)()
	r.meta().Bucket(bucketVMIs).Delete([]byte(name))
	r.chargeDB(m, 0)
	return nil
}

var repoSnapshotMagic = []byte("EXPREPO1")

// Snapshot serialises the whole repository — blobs and metadata database —
// for durable storage; Load restores it. Snapshot waits for in-flight
// store/remove operations to finish and blocks new ones while the two
// sections are captured, so a record serialized into the metadata section
// always has its blob in the blob section, even when taken mid-traffic.
// A blob the backend can no longer read faithfully (post-hoc disk damage)
// surfaces as an error here rather than a corrupt snapshot.
func (r *Repo) Snapshot() ([]byte, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	blobs, err := r.blobs.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("vmirepo: snapshot blobs: %w", err)
	}
	db := r.meta().Snapshot()
	out := make([]byte, 0, len(repoSnapshotMagic)+16+len(blobs)+len(db))
	out = append(out, repoSnapshotMagic...)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(blobs)))
	out = append(out, lenBuf[:]...)
	out = append(out, blobs...)
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(db)))
	out = append(out, lenBuf[:]...)
	out = append(out, db...)
	return out, nil
}

// Load restores a repository from a Snapshot image.
func Load(image []byte, dev *simio.Device) (*Repo, error) {
	if len(image) < len(repoSnapshotMagic)+16 || !bytes.Equal(image[:len(repoSnapshotMagic)], repoSnapshotMagic) {
		return nil, fmt.Errorf("vmirepo: bad snapshot magic")
	}
	rest := image[len(repoSnapshotMagic):]
	blobLen := binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	if blobLen > uint64(len(rest)) {
		return nil, fmt.Errorf("vmirepo: truncated blob section")
	}
	blobs, err := blobstore.Load(rest[:blobLen])
	if err != nil {
		return nil, err
	}
	rest = rest[blobLen:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("vmirepo: truncated db section")
	}
	dbLen := binary.BigEndian.Uint64(rest[:8])
	rest = rest[8:]
	if dbLen > uint64(len(rest)) {
		return nil, fmt.Errorf("vmirepo: truncated db payload")
	}
	db, err := metadb.Load(rest[:dbLen])
	if err != nil {
		return nil, err
	}
	r := &Repo{blobs: blobs, dev: dev}
	r.db.Store(db)
	r.createBuckets()
	return r, nil
}

// Stats summarises the repository.
type Stats struct {
	Packages int
	Bases    int
	VMIs     int
	// BlobBytes is the LIVE blob payload bytes — the deduplicated logical
	// size the paper's figures plot. On a disk-backed repository it is not
	// disk usage; see BlobDiskBytes.
	BlobBytes  int64
	DBBytes    int64
	TotalBytes int64
	// BlobDiskBytes is the physical segment bytes on disk (live records,
	// dead records awaiting compaction, and evacuated files pinned by open
	// readers). Zero on in-memory repositories, where live is physical.
	BlobDiskBytes int64
	// BlobDeadBytes is the reclaimable garbage within BlobDiskBytes:
	// record bytes no live blob accounts for.
	BlobDeadBytes int64
}

// Stats returns current repository statistics.
func (r *Repo) Stats() Stats {
	st := Stats{
		Packages:   r.meta().Bucket(bucketPackages).Len(),
		Bases:      r.meta().Bucket(bucketBases).Len(),
		VMIs:       r.meta().Bucket(bucketVMIs).Len(),
		BlobBytes:  r.blobs.TotalBytes(),
		DBBytes:    r.meta().SizeBytes(),
		TotalBytes: r.SizeBytes(),
	}
	// Walk through wrapping backends (a follower's read-through cache) to
	// the disk store underneath, if any — physical bytes live there.
	for bl := r.blobs; bl != nil; {
		if ds, ok := bl.(*diskstore.Store); ok {
			d := ds.DiskStats()
			st.BlobDiskBytes = d.DiskBytes
			st.BlobDeadBytes = d.DeadBytes
			break
		}
		u, ok := bl.(interface{ Unwrap() blobstore.Backend })
		if !ok {
			break
		}
		bl = u.Unwrap()
	}
	return st
}
