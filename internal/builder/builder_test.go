package builder

import (
	"bytes"
	"compress/gzip"
	"testing"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
)

func TestBuildMini(t *testing.T) {
	u := catalog.NewUniverse()
	b := New(u)
	tpl, _ := catalog.Find("Mini")
	img, err := b.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if img.Name != "Mini" || img.Base != catalog.DefaultBase {
		t.Fatalf("metadata: %+v", img)
	}
	if len(img.Primaries) != 0 {
		t.Fatalf("Mini has primaries: %v", img.Primaries)
	}
	fs, err := img.Mount()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := mgr.Installed()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != len(u.EssentialNames()) {
		t.Fatalf("Mini has %d packages, want %d essential", len(pkgs), len(u.EssentialNames()))
	}
	// Identity and churn exist.
	if !fs.Exists("/etc/machine-id") || !fs.Exists("/etc/hostname") {
		t.Fatal("identity files missing")
	}
	churn := false
	fs.Walk("/var/log", func(fi fstree.FileInfo) error { churn = true; return nil })
	if !churn {
		t.Fatal("no churn under /var/log")
	}
}

func TestBuildRedisInstallsStack(t *testing.T) {
	u := catalog.NewUniverse()
	b := New(u)
	tpl, _ := catalog.Find("Redis")
	img, err := b.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := img.Mount()
	mgr, _ := pkgmgr.New(fs)
	if !mgr.IsInstalled("redis-server") {
		t.Fatal("redis-server not installed")
	}
	if !fs.Exists("/usr/bin/redis-server") {
		t.Fatal("redis binary missing")
	}
	// User data exists under a user-data root.
	found := false
	for _, root := range catalog.UserDataRoots {
		fs.Walk(root, func(fi fstree.FileInfo) error {
			if !fi.IsDir {
				found = true
			}
			return nil
		})
	}
	if !found {
		t.Fatal("no user data files")
	}
}

func TestBuildDeterministic(t *testing.T) {
	u := catalog.NewUniverse()
	tpl, _ := catalog.Find("Redis")
	a, err := New(u).Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(u).Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Serialize(), b.Serialize()) {
		t.Fatal("same template built different images")
	}
}

func TestBuildUnknownPrimaryFails(t *testing.T) {
	u := catalog.NewUniverse()
	tpl, _ := catalog.Find("Mini")
	tpl.Primaries = []string{"does-not-exist"}
	if _, err := New(u).Build(tpl); err == nil {
		t.Fatal("build with unknown primary succeeded")
	}
}

// TestBuildSizesNearTableII checks the calibration anchors: Mini's mounted
// size should be near the paper's 1.913 GB (paper scale) and its file
// count near 75,749.
func TestBuildSizesNearTableII(t *testing.T) {
	u := catalog.NewUniverse()
	b := New(u)
	tpl, _ := catalog.Find("Mini")
	img, err := b.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	st, err := img.Stats()
	if err != nil {
		t.Fatal(err)
	}
	paperGB := float64(catalog.Paper(st.MountedBytes)) / 1e9
	if paperGB < 1.6 || paperGB > 2.4 {
		t.Errorf("Mini mounted = %.3f GB (paper scale), want ~1.9", paperGB)
	}
	paperFiles := catalog.PaperFiles(st.Files)
	if paperFiles < 60000 || paperFiles > 95000 {
		t.Errorf("Mini files = %d (paper scale), want ~75.7k", paperFiles)
	}
	t.Logf("Mini: mounted %.3f GB, %d files (paper scale), serialized %.3f GB",
		paperGB, paperFiles, float64(catalog.Paper(st.SerializedBytes))/1e9)
}

// TestImageGzipRatio verifies the whole-image compressibility anchor
// (Fig. 3b: 41.81 GB of qcow2 compresses to ~15 GB, a 2.8x ratio).
func TestImageGzipRatio(t *testing.T) {
	u := catalog.NewUniverse()
	tpl, _ := catalog.Find("Mini")
	img, err := New(u).Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	raw := img.Serialize()
	var buf bytes.Buffer
	w, _ := gzip.NewWriterLevel(&buf, gzip.DefaultCompression)
	w.Write(raw)
	w.Close()
	ratio := float64(len(raw)) / float64(buf.Len())
	if ratio < 2.0 || ratio > 4.2 {
		t.Errorf("image gzip ratio = %.2fx, want ~2.8x (band [2.0,4.2])", ratio)
	}
	t.Logf("image gzip ratio = %.2fx", ratio)
}

func TestImageCloneIndependent(t *testing.T) {
	u := catalog.NewUniverse()
	tpl, _ := catalog.Find("Mini")
	img, err := New(u).Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	clone := img.Clone()
	fs, _ := clone.Mount()
	if err := fs.RemoveAll("/usr"); err != nil {
		t.Fatal(err)
	}
	origFS, _ := img.Mount()
	if !origFS.Exists("/usr/bin/bash") {
		t.Fatal("mutating clone affected original")
	}
}
