// Package builder constructs synthetic VMIs from catalog templates — the
// virt-builder of the reproduction (Sec. V: "We create each VMI using
// virt-builder"). A build creates a sparse disk, formats the guest
// filesystem, installs the essential base OS plus the template's primary
// packages (with dependencies, in SCC-aware order), and writes the
// template's system churn and user data.
package builder

import (
	"fmt"
	"path"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
)

// Builder builds images against one package universe.
type Builder struct {
	uni *catalog.Universe
}

// New returns a builder over the universe.
func New(u *catalog.Universe) *Builder { return &Builder{uni: u} }

// Universe returns the builder's package universe.
func (b *Builder) Universe() *catalog.Universe { return b.uni }

// Build materialises the template as a VMI.
func (b *Builder) Build(t catalog.Template) (*vmi.Image, error) {
	// Full package set: essential base OS plus the primaries' closure.
	roots := append(b.uni.EssentialNames(), t.Primaries...)
	names, err := pkgmgr.Closure(b.uni, roots)
	if err != nil {
		return nil, fmt.Errorf("builder %s: %w", t.Name, err)
	}

	// Size the disk: content plus generous headroom for metadata and
	// temporary package imports during later reassembly.
	var contentReal int64
	realFiles := 0
	for _, n := range names {
		spec, _ := b.uni.Spec(n)
		contentReal += catalog.Real(spec.InstalledSize)
		realFiles += catalog.RealFiles(spec.FileCount) + 1 // + conf file
	}
	contentReal += catalog.Real(t.ChurnBytes + t.SharedChurnBytes + t.UserDataBytes)
	realFiles += catalog.RealFiles(t.ChurnFiles) + catalog.RealFiles(t.SharedChurnFiles) +
		catalog.RealFiles(t.UserDataFiles)

	maxInodes := uint32(realFiles+realFiles/4+128) + 512
	virtualSize := contentReal*3 + int64(maxInodes)*64*2 + 1<<20
	// Round up to a cluster multiple.
	virtualSize = (virtualSize + catalog.ClusterSize - 1) / catalog.ClusterSize * catalog.ClusterSize

	disk := vdisk.New(t.Name, virtualSize, catalog.ClusterSize)
	fs, err := fstree.Format(disk, maxInodes)
	if err != nil {
		return nil, fmt.Errorf("builder %s: format: %w", t.Name, err)
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		return nil, fmt.Errorf("builder %s: %w", t.Name, err)
	}

	// Install all packages dependencies-first, cycles grouped.
	order, err := pkgmgr.InstallOrder(b.uni, names)
	if err != nil {
		return nil, fmt.Errorf("builder %s: %w", t.Name, err)
	}
	for _, group := range order {
		for _, name := range group {
			spec, _ := b.uni.Spec(name)
			files, err := b.uni.FilesFor(name)
			if err != nil {
				return nil, err
			}
			if err := mgr.InstallPackage(spec.Package, files); err != nil {
				return nil, fmt.Errorf("builder %s: install %s: %w", t.Name, name, err)
			}
		}
	}

	// System churn and user data (outside package management).
	if err := writeDataFiles(fs, t.ChurnFileSet()); err != nil {
		return nil, fmt.Errorf("builder %s: churn: %w", t.Name, err)
	}
	if err := writeDataFiles(fs, t.UserDataFileSet()); err != nil {
		return nil, fmt.Errorf("builder %s: user data: %w", t.Name, err)
	}

	// Instance identity files (cleared by sysprep on reassembly).
	if err := fs.MkdirAll("/etc"); err != nil {
		return nil, err
	}
	id := fmt.Sprintf("machine-id-%016x\n", t.InstanceSeed)
	if err := fs.WriteFile("/etc/machine-id", []byte(id)); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/etc/hostname", []byte(t.Name+"\n")); err != nil {
		return nil, err
	}

	return &vmi.Image{
		Name:      t.Name,
		Base:      b.uni.Release().Base,
		Primaries: append([]string(nil), t.Primaries...),
		Disk:      disk,
	}, nil
}

func writeDataFiles(fs *fstree.FS, files []pkgfmt.File) error {
	for _, f := range files {
		if err := fs.MkdirAll(path.Dir(f.Path)); err != nil {
			return err
		}
		if err := fs.WriteFile(f.Path, f.Data); err != nil {
			return err
		}
	}
	return nil
}
