package blobstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentPutGet drives puts, dedup hits, gets and releases from many
// goroutines and checks the aggregate accounting afterwards.
func TestConcurrentPutGet(t *testing.T) {
	s := New()
	const workers = 8
	const blobs = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < blobs; i++ {
				// Half the blobs are shared across all workers (dedup
				// traffic), half are private.
				var data []byte
				if i%2 == 0 {
					data = []byte(fmt.Sprintf("shared-%04d", i))
				} else {
					data = []byte(fmt.Sprintf("private-%d-%04d", w, i))
				}
				id, _ := s.Put(data)
				got, ok := s.Get(id)
				if !ok || string(got) != string(data) {
					t.Errorf("worker %d: blob %d corrupted or lost", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	wantUnique := blobs/2 + workers*(blobs/2)
	if got := s.Len(); got != wantUnique {
		t.Fatalf("Len = %d, want %d", got, wantUnique)
	}
	puts, hits := s.Stats()
	if puts != workers*blobs {
		t.Fatalf("puts = %d, want %d", puts, workers*blobs)
	}
	wantHits := int64((workers - 1) * (blobs / 2))
	if hits != wantHits {
		t.Fatalf("hits = %d, want %d", hits, wantHits)
	}

	// Shared blobs carry one reference per worker; release them all and the
	// store must drain to only private blobs.
	for i := 0; i < blobs; i += 2 {
		id := Sum([]byte(fmt.Sprintf("shared-%04d", i)))
		var rg sync.WaitGroup
		for w := 0; w < workers; w++ {
			rg.Add(1)
			go func() {
				defer rg.Done()
				if err := s.Release(id); err != nil {
					t.Error(err)
				}
			}()
		}
		rg.Wait()
		if s.Has(id) {
			t.Fatalf("shared blob %d survived full release", i)
		}
	}
	if got := s.Len(); got != workers*(blobs/2) {
		t.Fatalf("after release Len = %d, want %d", got, workers*(blobs/2))
	}
}

// TestConcurrentTotalBytes checks byte accounting stays exact under
// concurrent put/release churn.
func TestConcurrentTotalBytes(t *testing.T) {
	s := New()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				data := []byte(fmt.Sprintf("w%d-i%d-%s", w, i, "padpadpadpad"))
				id, _ := s.Put(data)
				if i%2 == 1 {
					if err := s.Release(id); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var want int64
	for _, id := range s.IDs() {
		n, _ := s.Size(id)
		want += n
	}
	if got := s.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d (sum of live blobs)", got, want)
	}
}

// TestSnapshotUnderConcurrentTraffic snapshots while writers run; every
// snapshot must load cleanly with content-verified IDs.
func TestSnapshotUnderConcurrentTraffic(t *testing.T) {
	s := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Put([]byte(fmt.Sprintf("traffic-%d-%d", w, i)))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		restored, err := Load(snap)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		if restored.TotalBytes() < 0 {
			t.Fatalf("snapshot %d: negative byte accounting", i)
		}
	}
	close(stop)
	wg.Wait()
}
