package blobstore_test

import (
	"testing"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/blobstoretest"
)

// TestConformance runs the shared backend conformance suite against the
// in-memory sharded store. The disk backend runs the identical suite in
// its own package, which is what keeps the two honest relative to each
// other.
func TestConformance(t *testing.T) {
	blobstoretest.Run(t, func(t *testing.T) blobstore.Backend {
		return blobstore.New()
	})
}
