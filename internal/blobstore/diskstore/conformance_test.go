package diskstore_test

import (
	"bytes"
	"fmt"
	"testing"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/blobstoretest"
	"expelliarmus/internal/blobstore/diskstore"
)

func open(t *testing.T, dir string, opts diskstore.Options) *diskstore.Store {
	t.Helper()
	s, err := diskstore.Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestConformance runs the shared backend conformance suite against the
// disk store — the same suite the in-memory store passes.
func TestConformance(t *testing.T) {
	blobstoretest.Run(t, func(t *testing.T) blobstore.Backend {
		s := open(t, t.TempDir(), diskstore.Options{})
		t.Cleanup(func() { s.Close() })
		return s
	})
}

// TestConformanceTinySegments reruns the full suite with a roll threshold
// small enough that every few records open a new segment file, so the
// multi-segment read and replay paths see the same contract.
func TestConformanceTinySegments(t *testing.T) {
	blobstoretest.Run(t, func(t *testing.T) blobstore.Backend {
		s := open(t, t.TempDir(), diskstore.Options{MaxSegmentBytes: 128})
		t.Cleanup(func() { s.Close() })
		return s
	})
}

// TestReopenPreservesState closes a synced store and reopens it, checking
// contents, reference counts and aggregates all survive.
func TestReopenPreservesState(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 256})
	type want struct {
		data []byte
		refs int
	}
	wants := map[blobstore.ID]want{}
	var totalBytes int64
	for i := 0; i < 30; i++ {
		data := []byte(fmt.Sprintf("reopen-blob-%03d", i))
		id, _ := s.Put(data)
		refs := 1
		for j := 0; j < i%3; j++ {
			if err := s.AddRef(id); err != nil {
				t.Fatalf("AddRef: %v", err)
			}
			refs++
		}
		wants[id] = want{data: data, refs: refs}
		totalBytes += int64(len(data))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := open(t, dir, diskstore.Options{MaxSegmentBytes: 256})
	defer r.Close()
	if rec := r.Recovery(); rec.ReplayedRecords != 0 || rec.Torn() || rec.IndexRebuilt {
		t.Fatalf("clean reopen needed recovery: %+v", rec)
	}
	if r.Len() != len(wants) {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), len(wants))
	}
	if r.TotalBytes() != totalBytes {
		t.Fatalf("reopened TotalBytes = %d, want %d", r.TotalBytes(), totalBytes)
	}
	for id, w := range wants {
		got, ok := r.Get(id)
		if !ok || !bytes.Equal(got, w.data) {
			t.Fatalf("reopened Get(%s) = %v", id, ok)
		}
		if r.Refs(id) != w.refs {
			t.Fatalf("reopened Refs(%s) = %d, want %d", id, r.Refs(id), w.refs)
		}
	}
}

// TestIncrementalSync pins the headline durability property: a sync after
// new appends flushes only the newly appended bytes, and a sync with no
// traffic flushes nothing.
func TestIncrementalSync(t *testing.T) {
	s := open(t, t.TempDir(), diskstore.Options{MaxSegmentBytes: 1 << 20})
	defer s.Close()

	var firstBytes int64
	for i := 0; i < 20; i++ {
		s.Put([]byte(fmt.Sprintf("first-wave-%03d", i)))
	}
	st, err := s.Sync()
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st.Segments == 0 || st.SegmentBytes == 0 {
		t.Fatalf("first sync flushed nothing: %+v", st)
	}
	firstBytes = st.SegmentBytes

	// Quiet sync: nothing appended, nothing flushed.
	st, err = s.Sync()
	if err != nil {
		t.Fatalf("quiet Sync: %v", err)
	}
	if st.Segments != 0 || st.SegmentBytes != 0 {
		t.Fatalf("quiet sync flushed %+v", st)
	}

	// One small append: the flush must cover just that record, not the
	// whole store again.
	s.Put([]byte("one-more"))
	st, err = s.Sync()
	if err != nil {
		t.Fatalf("incremental Sync: %v", err)
	}
	if st.Segments != 1 {
		t.Fatalf("incremental sync touched %d segments, want 1", st.Segments)
	}
	if st.SegmentBytes >= firstBytes {
		t.Fatalf("incremental sync flushed %d bytes, full store was %d", st.SegmentBytes, firstBytes)
	}
}

// TestSegmentRolling forces tiny segments and checks the store stays
// correct across many files.
func TestSegmentRolling(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 64})
	ids := make([]blobstore.ID, 40)
	for i := range ids {
		ids[i], _ = s.Put([]byte(fmt.Sprintf("rolling-%03d-%030d", i, i)))
	}
	st, err := s.Sync()
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st.Segments < 10 {
		t.Fatalf("expected many tiny segments, synced %d", st.Segments)
	}
	for i, id := range ids {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("blob %d unreadable after rolling", i)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := open(t, dir, diskstore.Options{MaxSegmentBytes: 64})
	defer r.Close()
	for i, id := range ids {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("blob %d unreadable after reopen", i)
		}
	}
}
