package diskstore_test

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"expelliarmus/internal/blobstore/diskstore"
)

// TestSnapshotSurfacesPostHocDamage pins the error-returning Snapshot
// contract: when a live blob's bytes rot on disk after they were written
// (flipped in place underneath the open store), Snapshot must return an
// error — not panic, and never serialise the damaged bytes as blob
// content (Load would re-derive a different ID and strand the repository
// metadata saved alongside).
func TestSnapshotSurfacesPostHocDamage(t *testing.T) {
	dir := t.TempDir()
	s, err := diskstore.Open(dir, diskstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	marker := []byte("distinctive-payload-to-damage-in-place-0123456789")
	s.Put(marker)
	s.Put([]byte("healthy sibling blob"))
	if _, err := s.SyncData(); err != nil {
		t.Fatal(err)
	}

	// Healthy store: Snapshot succeeds.
	if _, err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot on healthy store: %v", err)
	}

	// Flip one payload byte of the marker blob in place, underneath the
	// open store.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), "seg-") {
			segs = append(segs, filepath.Join(dir, de.Name()))
		}
	}
	sort.Strings(segs)
	damaged := false
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		off := bytes.Index(data, marker)
		if off < 0 {
			continue
		}
		f, err := os.OpenFile(seg, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{data[off+10] ^ 0xFF}, int64(off+10)); err != nil {
			t.Fatal(err)
		}
		f.Close()
		damaged = true
		break
	}
	if !damaged {
		t.Fatal("marker blob not found in any segment file")
	}

	img, err := s.Snapshot()
	if err == nil {
		t.Fatalf("Snapshot serialised a damaged blob into %d bytes without error", len(img))
	}
	if !strings.Contains(err.Error(), "snapshot read") {
		t.Fatalf("unexpected snapshot error: %v", err)
	}
}
