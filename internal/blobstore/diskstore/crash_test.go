package diskstore_test

// Crash-recovery tests: each scenario builds a store, simulates a kill
// point with Abandon (drop handles and the dir lock without syncing —
// exactly what a dying process leaves behind) and/or damages the files
// the way an interrupted write would, then reopens and checks that every
// fully-committed blob survives and the damage is reported — never
// panicked on.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/diskstore"
)

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "seg-") {
			segs = append(segs, de.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no segment files")
	}
	sort.Strings(segs)
	return filepath.Join(dir, segs[len(segs)-1])
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestRecoverUnsyncedTail kills the store after appends that were never
// synced: no index exists, yet replay must recover every whole record.
func TestRecoverUnsyncedTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	var ids []blobstore.ID
	for i := 0; i < 10; i++ {
		id, _ := s.Put([]byte(fmt.Sprintf("unsynced-%d", i)))
		ids = append(ids, id)
	}
	// Crash: no Sync, no Close.
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	rec := r.Recovery()
	if rec.ReplayedRecords != 10 {
		t.Fatalf("replayed %d records, want 10", rec.ReplayedRecords)
	}
	if rec.Torn() {
		t.Fatalf("no tear expected: %+v", rec)
	}
	for i, id := range ids {
		if got, ok := r.Get(id); !ok || !bytes.Equal(got, []byte(fmt.Sprintf("unsynced-%d", i))) {
			t.Fatalf("blob %d lost without a tear", i)
		}
	}
}

// TestRecoverBeyondSyncWatermark syncs part of the history, appends more,
// crashes: the synced part loads from the index and the rest replays.
func TestRecoverBeyondSyncWatermark(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	idA, _ := s.Put([]byte("committed-by-index"))
	if _, err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	idB, _ := s.Put([]byte("only-in-log"))
	if err := s.AddRef(idA); err != nil {
		t.Fatalf("AddRef: %v", err)
	}
	// Crash.
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	if rec := r.Recovery(); rec.ReplayedRecords != 2 || rec.IndexRebuilt {
		t.Fatalf("recovery = %+v, want 2 replayed records from a good index", rec)
	}
	if _, ok := r.Get(idB); !ok {
		t.Fatalf("post-watermark put lost")
	}
	if got := r.Refs(idA); got != 2 {
		t.Fatalf("post-watermark addref lost: refs = %d, want 2", got)
	}
}

// TestTornTailTruncated cuts the final record in half — a crash
// mid-append — and asserts reopen drops exactly the torn record, keeps
// everything before it, and reports the truncation.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	whole, _ := s.Put([]byte("survives the tear"))
	before := fileSize(t, lastSegment(t, dir))
	torn, _ := s.Put([]byte("this record gets cut in half"))
	after := fileSize(t, lastSegment(t, dir))
	// Crash, then the tail of the last write never reached the platter.
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	cut := before + (after-before)/2
	if err := os.Truncate(lastSegment(t, dir), cut); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	rec := r.Recovery()
	if !rec.Torn() {
		t.Fatalf("tear not reported: %+v", rec)
	}
	if rec.TornOffset != before || rec.DroppedBytes != cut-before {
		t.Fatalf("tear geometry = %+v, want offset %d dropping %d", rec, before, cut-before)
	}
	if got, ok := r.Get(whole); !ok || !bytes.Equal(got, []byte("survives the tear")) {
		t.Fatalf("fully-committed blob lost to the tear")
	}
	if r.Has(torn) {
		t.Fatalf("half-written blob resurrected")
	}
	if fileSize(t, lastSegment(t, dir)) != before {
		t.Fatalf("segment not truncated to last whole record")
	}

	// The store must accept writes after the tear, and they must persist.
	again, stored := r.Put([]byte("written after recovery"))
	if !stored {
		t.Fatalf("post-recovery Put refused")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("post-recovery Close: %v", err)
	}
	r2 := open(t, dir, diskstore.Options{})
	defer r2.Close()
	if _, ok := r2.Get(again); !ok {
		t.Fatalf("post-recovery write lost")
	}
}

// TestCorruptCRCAtTail flips one payload bit in the final record: the
// checksum must catch it and recovery must drop the record like a tear.
func TestCorruptCRCAtTail(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	keep, _ := s.Put([]byte("intact record"))
	before := fileSize(t, lastSegment(t, dir))
	bad, _ := s.Put([]byte("record whose bits rot"))
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // flip a payload bit in the last record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	rec := r.Recovery()
	if !rec.Torn() || rec.TornOffset != before {
		t.Fatalf("CRC mismatch not treated as torn tail: %+v", rec)
	}
	if _, ok := r.Get(keep); !ok {
		t.Fatalf("intact record lost")
	}
	if r.Has(bad) {
		t.Fatalf("checksum-failing record admitted")
	}
}

// TestCorruptionAmidTailRefused flips a bit in a record that has a whole,
// valid record after it in the last segment: a genuine torn append leaves
// only garbage beyond the failure, so a parseable record there proves real
// corruption of committed data and Open must refuse rather than silently
// truncate the intact record away with the damage.
func TestCorruptionAmidTailRefused(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	first, _ := s.Put([]byte("first record gets damaged"))
	mid := fileSize(t, lastSegment(t, dir))
	s.Put([]byte("second record stays whole"))
	_ = first
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[mid-3] ^= 0x20 // payload bit inside the FIRST record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := diskstore.Open(dir, diskstore.Options{}); err == nil {
		t.Fatalf("Open truncated a corrupt record that had a valid record after it")
	}
}

// TestCorruptionBeforeTailRefused damages a record that is *not* at the
// log tail (an earlier segment): that is real corruption, not a crash
// artifact, and Open must refuse it with an error rather than silently
// dropping committed history.
func TestCorruptionBeforeTailRefused(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 64})
	for i := 0; i < 12; i++ {
		s.Put([]byte(fmt.Sprintf("multi-segment-%03d-%030d", i, i)))
	}
	// Crash with several unsynced segments on disk.
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "seg-") {
			segs = append(segs, de.Name())
		}
	}
	sort.Strings(segs)
	if len(segs) < 3 {
		t.Fatalf("test needs ≥3 segments, got %d", len(segs))
	}
	mid := filepath.Join(dir, segs[len(segs)/2])
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := diskstore.Open(dir, diskstore.Options{MaxSegmentBytes: 64}); err == nil {
		t.Fatalf("Open accepted corruption in a non-tail segment")
	}
}

// TestCorruptIndexFallsBackToReplay damages the committed index: because
// segments hold the complete operation history, Open rebuilds the exact
// state from the log and reports the rebuild.
func TestCorruptIndexFallsBackToReplay(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	idA, _ := s.Put([]byte("first"))
	idB, _ := s.Put([]byte("second"))
	if err := s.AddRef(idB); err != nil {
		t.Fatal(err)
	}
	idGone, _ := s.Put([]byte("released before sync"))
	if err := s.Release(idGone); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	idx := filepath.Join(dir, "index")
	img, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x01
	if err := os.WriteFile(idx, img, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	rec := r.Recovery()
	if !rec.IndexRebuilt {
		t.Fatalf("index rebuild not reported: %+v", rec)
	}
	if _, ok := r.Get(idA); !ok {
		t.Fatalf("blob A lost in rebuild")
	}
	if got := r.Refs(idB); got != 2 {
		t.Fatalf("refcount not reconstructed from log: %d, want 2", got)
	}
	if r.Has(idGone) {
		t.Fatalf("released blob resurrected by rebuild")
	}
}

// TestLeftoverIndexTmpIgnored simulates a crash between writing index.tmp
// and renaming it: the stale temp file must not disturb recovery and the
// next sync must still commit cleanly.
func TestLeftoverIndexTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	id, _ := s.Put([]byte("durable"))
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "index.tmp"), []byte("half-written junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	if _, ok := r.Get(id); !ok {
		t.Fatalf("blob lost with stale index.tmp present")
	}
	if _, err := r.Sync(); err != nil {
		t.Fatalf("Sync with stale index.tmp: %v", err)
	}
}

// TestReleaseDurableOnlyAtSync pins the deferred-release contract: a
// release that was never Synced is lost by a crash — the blob is
// resurrected with its pre-release reference count — while a synced
// release stays collected. Losing a release can only create an orphan;
// the dangerous direction (a durable release deleting a blob that
// still-durable metadata references) must be impossible.
func TestReleaseDurableOnlyAtSync(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	id, _ := s.Put([]byte("released but not synced"))
	if err := s.AddRef(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(id); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(id); err != nil {
		t.Fatal(err)
	}
	if s.Has(id) {
		t.Fatalf("blob live after releasing every reference")
	}
	// Crash: releases were applied in memory but never logged.
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	r := open(t, dir, diskstore.Options{})
	if !r.Has(id) {
		t.Fatalf("unsynced release became durable: blob gone after reopen")
	}
	if got := r.Refs(id); got != 2 {
		t.Fatalf("resurrected refs = %d, want pre-release 2", got)
	}
	// The same releases, this time synced, must stick across reopen.
	if err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	if err := r.Release(id); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2 := open(t, dir, diskstore.Options{})
	defer r2.Close()
	if r2.Has(id) {
		t.Fatalf("synced release not durable: blob resurrected")
	}
}

// TestSecondOpenRefused pins the single-instance lock: while one store
// owns a directory, a second Open — which would append to the same
// segments while tracking offsets independently — must fail, and the
// directory must become openable again once the first store lets go.
func TestSecondOpenRefused(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	if _, err := diskstore.Open(dir, diskstore.Options{}); err == nil {
		t.Fatalf("second Open of a locked store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := open(t, dir, diskstore.Options{})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMissingSegmentRefused deletes a segment file the committed index
// references: Open must refuse with an error — the data is gone, and
// silently serving "not found" for durable blobs would be data loss
// masquerading as absence.
func TestMissingSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 64})
	for i := 0; i < 12; i++ {
		s.Put([]byte(fmt.Sprintf("doomed-segment-%03d-%030d", i, i)))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(lastSegment(t, dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := diskstore.Open(dir, diskstore.Options{MaxSegmentBytes: 64}); err == nil {
		t.Fatalf("Open accepted an index referencing a deleted segment")
	}
}

// TestTornBeforeMagic crashes so early the newest segment has not even a
// complete magic: recovery truncates it to nothing and the store keeps
// working.
func TestTornBeforeMagic(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	id, _ := s.Put([]byte("in segment one"))
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Fake a crash during the very first write of segment 2.
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000002.log"), []byte("EXP"), 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	rec := r.Recovery()
	if !rec.Torn() || rec.TornSegment != 2 || rec.TornOffset != 0 {
		t.Fatalf("torn-before-magic not handled: %+v", rec)
	}
	if _, ok := r.Get(id); !ok {
		t.Fatalf("earlier segment lost")
	}
	id2, stored := r.Put([]byte("after recovery"))
	if !stored {
		t.Fatalf("Put after magic truncation refused")
	}
	if _, ok := r.Get(id2); !ok {
		t.Fatalf("blob written into recovered segment unreadable")
	}
}
