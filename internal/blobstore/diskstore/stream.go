// Streaming blob IO for the disk store. Gets are served straight from
// segment offsets — a blob read is an io.SectionReader over the segment's
// shared pread handle, never a materialized buffer — and puts stream
// through a bounded spool that feeds the SHA-256 and record CRC
// incrementally, then append to the log under the same roll/magic/fsync
// discipline as every other record.
package diskstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/chunkpool"
)

// spillThreshold is the largest streamed put buffered entirely in memory.
// Beyond it the spool spills to a put-*.tmp file in the store directory,
// keeping peak put memory bounded by the chunk size regardless of blob
// size. The threshold exists because a put's payload cannot go straight to
// the segment log: the record header (CRC + length) precedes the payload
// and O_APPEND forbids back-patching, and dedup needs the full content
// hash before deciding whether to append at all.
const spillThreshold = 1 << 20

// spoolPattern names spill files; load deletes strays left by a crash.
const spoolPattern = "put-*.tmp"

// spool accumulates a streamed put outside the store lock, hashing as it
// fills. mem holds small payloads; file takes over once spillThreshold is
// crossed.
type spool struct {
	dir  string
	mem  []byte
	file *os.File
	size int64
	hash hash.Hash
	crc  uint32 // record CRC, seeded with the recPut kind byte
}

func newSpool(dir string) *spool {
	return &spool{
		dir:  dir,
		hash: sha256.New(),
		crc:  crc32.Checksum([]byte{recPut}, crcTable),
	}
}

// fill consumes r in pooled chunks, updating size, hash and crc.
func (sp *spool) fill(r io.Reader) error {
	buf := chunkpool.Get()
	defer chunkpool.Put(buf)
	for {
		n, rerr := r.Read(*buf)
		if n > 0 {
			chunk := (*buf)[:n]
			sp.hash.Write(chunk)
			sp.crc = crc32.Update(sp.crc, crcTable, chunk)
			if err := sp.store(chunk); err != nil {
				return err
			}
			sp.size += int64(n)
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}

func (sp *spool) store(chunk []byte) error {
	if sp.file == nil {
		if int64(len(sp.mem))+int64(len(chunk)) <= spillThreshold {
			sp.mem = append(sp.mem, chunk...)
			return nil
		}
		f, err := os.CreateTemp(sp.dir, spoolPattern)
		if err != nil {
			return err
		}
		sp.file = f
		if _, err := f.Write(sp.mem); err != nil {
			return err
		}
		sp.mem = nil
	}
	_, err := sp.file.Write(chunk)
	return err
}

// payload returns a reader over the spooled bytes, rewound to the start.
func (sp *spool) payload() (io.Reader, error) {
	if sp.file == nil {
		return bytes.NewReader(sp.mem), nil
	}
	if _, err := sp.file.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return io.LimitReader(sp.file, sp.size), nil
}

// discard releases the spool's memory and deletes its spill file, if any.
func (sp *spool) discard() {
	if sp.file != nil {
		name := sp.file.Name()
		sp.file.Close()
		os.Remove(name)
		sp.file = nil
	}
	sp.mem = nil
}

// removeStraySpools deletes put-*.tmp spill files left behind by a crashed
// streaming put. Only called from load, where the exclusive directory lock
// guarantees no live PutReader owns one.
func (s *Store) removeStraySpools() {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range des {
		name := de.Name()
		if strings.HasPrefix(name, "put-") && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// PutReader streams r into the store, hashing incrementally, and takes one
// reference on the resulting blob. The payload is spooled outside the
// store lock (in memory up to spillThreshold, then in a temp file), so a
// slow source never blocks other mutations, then appended to the segment
// log in chunked writes. If r fails mid-stream the store is unchanged. A
// store already in sticky failure refuses the put and returns the failure.
func (s *Store) PutReader(r io.Reader) (blobstore.ID, int64, bool, error) {
	// Fast-fail before consuming the source: a store in sticky failure
	// refuses the put anyway, so spooling a potentially multi-gigabyte
	// stream (and burning a temp file) first would be pure waste. The
	// failure is re-checked under the lock below — it can trip between
	// here and there.
	if err := s.Err(); err != nil {
		return blobstore.ID{}, 0, false, err
	}
	sp := newSpool(s.dir)
	defer sp.discard()
	if err := sp.fill(r); err != nil {
		return blobstore.ID{}, sp.size, false, fmt.Errorf("diskstore: put stream: %w", err)
	}
	if sp.size > math.MaxUint32 {
		return blobstore.ID{}, sp.size, false, fmt.Errorf("diskstore: put stream: %d bytes exceeds the record size limit", sp.size)
	}
	var id blobstore.ID
	sp.hash.Sum(id[:0])
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts.Add(1)
	if s.failure != nil {
		return id, sp.size, false, s.failure
	}
	if e, ok := s.blobs[id]; ok {
		if _, _, err := s.appendLocked(recAddRef, id[:]); err != nil {
			s.fail(err)
			return id, sp.size, false, err
		}
		e.refs++
		s.hits.Add(1)
		s.dirty = true
		return id, sp.size, false, nil
	}
	if e, ok := s.limbo[id]; ok {
		// The blob's bytes are still on disk and its final release is still
		// queued: cancel one queued release instead of logging anything. The
		// log's reference count at this position stays exactly right — the
		// cancelled release will never be appended, and the entry returns to
		// the catalog with the one reference that release would have dropped.
		// From the caller's view the content had been fully released, so
		// this reports stored (the catalog regained a blob), not a dedup hit.
		s.cancelPendingLocked(id)
		delete(s.limbo, id)
		e.refs = 1
		s.blobs[id] = e
		s.bytes += e.size
		s.dirty = true
		return id, sp.size, true, nil
	}
	payload, err := sp.payload()
	if err != nil {
		return id, sp.size, false, fmt.Errorf("diskstore: put stream: rewind spool: %w", err)
	}
	seg, off, err := s.appendStreamLocked(recPut, sp.crc, sp.size, payload)
	if err != nil {
		s.fail(err)
		return id, sp.size, false, err
	}
	e := &entry{seg: seg, off: off, size: sp.size, refs: 1, kind: recPut}
	s.blobs[id] = e
	s.bytes += sp.size
	s.liveSeg[seg] += e.footprint()
	s.dirty = true
	return id, sp.size, true, nil
}

// appendStreamLocked appends one record whose payload arrives as a stream
// with a precomputed CRC (seeded with the kind byte, updated over the
// payload — the same image recframe.Append produces). The header goes
// first, then the payload in pooled chunks, so no record-sized buffer ever
// exists; a crash mid-payload leaves a torn tail, exactly like a crash
// inside any other append, and recovery truncates it. Caller holds mu.
func (s *Store) appendStreamLocked(kind byte, crc uint32, size int64, payload io.Reader) (uint32, int64, error) {
	recSize := int64(recHeaderSize) + size
	f, err := s.prepareAppendLocked(recSize)
	if err != nil {
		return 0, 0, err
	}
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(size))
	hdr[8] = kind
	if _, err := f.Write(hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("diskstore: append to segment %d: %w", s.active, err)
	}
	n, err := chunkpool.Copy(f, payload)
	if err != nil {
		return 0, 0, fmt.Errorf("diskstore: append to segment %d: %w", s.active, err)
	}
	if n != size {
		return 0, 0, fmt.Errorf("diskstore: append to segment %d: payload stream yielded %d of %d bytes", s.active, n, size)
	}
	off := s.lens[s.active]
	s.lens[s.active] += recSize
	return s.active, off + recHeaderSize, nil
}

// segReader streams one blob record straight from its segment offset. It
// wraps an io.SectionReader over the segment's shared pread handle, so
// concurrent readers and appends never interfere and nothing is
// materialized. Sequential reads feed the record CRC incrementally; the
// moment the last payload byte passes through, the sum is checked against
// the stored record header and a mismatch turns the stream's end into an
// error instead of a clean EOF. ReadAt serves random access without
// touching the sequential cursor (spot-verified at open only).
//
// An open segReader pins its segment: compaction may evacuate the segment
// and drop it from the catalog, but the file handle stays open — and the
// file on disk — until the last pinned reader closes, so a reader taken
// before the blob moved streams the old record to EOF undisturbed.
type segReader struct {
	store  *Store
	rc     *atomic.Int64
	closed bool
	sr     *io.SectionReader
	seg    uint32
	size   int64
	pos    int64
	crc    uint32
	want   uint32
	err    error // sticky checksum/short-read failure
}

func (r *segReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	n, err := r.sr.Read(p)
	if n > 0 {
		r.crc = crc32.Update(r.crc, crcTable, p[:n])
		r.pos += int64(n)
		if r.pos == r.size && r.crc != r.want {
			r.err = fmt.Errorf("diskstore: segment %d: blob record checksum mismatch: %w", r.seg, errCorrupt)
			return n, r.err
		}
	}
	if err == io.EOF && r.pos < r.size {
		// The segment lost bytes after the fact; zero-padded or truncated
		// content must never be served as blob data.
		r.err = fmt.Errorf("diskstore: segment %d short read: %w", r.seg, io.ErrUnexpectedEOF)
		return n, r.err
	}
	return n, err
}

func (r *segReader) ReadAt(p []byte, off int64) (int, error) {
	return r.sr.ReadAt(p, off)
}

// Close releases the reader's pin on its segment. If the segment was
// evacuated by compaction while this reader held it open, the last pin to
// drop deletes the file. Closing twice is safe.
func (r *segReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.store.unpin(r.seg, r.rc)
	return nil
}

// unpin drops one reader pin on seg and, when the segment is retiring and
// this was the last pin, finishes the retirement: close the handle, delete
// the file. New pins are impossible by then — a retiring segment has no
// catalog entries pointing at it and is gone from segs — so the count can
// only stay zero.
func (s *Store) unpin(seg uint32, rc *atomic.Int64) {
	if rc.Add(-1) != 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ret, ok := s.retiring[seg]
	if !ok || rc.Load() != 0 {
		return
	}
	ret.f.Close()
	os.Remove(ret.path)
	delete(s.retiring, seg)
	delete(s.readers, seg)
}

// Open returns a streaming reader over the blob's payload, served directly
// from its segment offset. The record header is spot-verified here (kind
// and length must match the catalog; the stored CRC seeds the sequential
// verification in segReader), but the payload itself is not read — opening
// a gigabyte blob costs one header-sized pread. A header that cannot be
// read or no longer matches the catalog is real on-disk damage, reported
// as a corruption error (never as not-found) and tripping the store's
// sticky failure, matching Get's refusal to serve damaged bytes. The
// reader pins its segment against compaction's retirement (see segReader),
// so it stays readable after the blob is released or moved — until its own
// Close or the store's. It also implements io.ReaderAt.
func (s *Store) Open(id blobstore.ID) (io.ReadCloser, int64, error) {
	s.mu.RLock()
	ep, ok := s.blobs[id]
	var e entry
	var f *os.File
	var rc *atomic.Int64
	if ok {
		e = *ep
		f, ok = s.segs[e.seg]
		if ok {
			// Pin while still under the lock: the moment it drops, a racing
			// compaction could retire the segment and close the handle.
			rc = s.readers[e.seg]
			rc.Add(1)
		}
	}
	s.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("diskstore: open %s: %w", id, blobstore.ErrNotFound)
	}
	// A move record's payload carries a reference-count prefix between the
	// framing header and the blob bytes; the header pread grabs both, and
	// the prefix joins the CRC seed (the stored sum covers kind | refs |
	// blob for moves, kind | blob for puts).
	prefix := 0
	if e.kind == recMove {
		prefix = recMoveRefsLen
	}
	hdr := make([]byte, recHeaderSize+prefix)
	if _, err := f.ReadAt(hdr, e.off-int64(len(hdr))); err != nil {
		s.unpin(e.seg, rc)
		cerr := fmt.Errorf("diskstore: segment %d: blob %s header unreadable (%v): %w", e.seg, id, err, blobstore.ErrCorrupt)
		s.failSticky(cerr)
		return nil, 0, cerr
	}
	if hdr[8] != e.kind || int64(binary.LittleEndian.Uint32(hdr[4:8])) != e.size+int64(prefix) {
		s.unpin(e.seg, rc)
		cerr := fmt.Errorf("diskstore: segment %d: blob %s header mismatches catalog (kind %d, length %d, want %d): %w",
			e.seg, id, hdr[8], binary.LittleEndian.Uint32(hdr[4:8]), e.size+int64(prefix), blobstore.ErrCorrupt)
		s.failSticky(cerr)
		return nil, 0, cerr
	}
	crc := crc32.Checksum(hdr[8:9], crcTable)
	crc = crc32.Update(crc, crcTable, hdr[recHeaderSize:])
	r := &segReader{
		store: s,
		rc:    rc,
		sr:    io.NewSectionReader(f, e.off, e.size),
		seg:   e.seg,
		size:  e.size,
		crc:   crc,
		want:  binary.LittleEndian.Uint32(hdr[0:4]),
	}
	return r, e.size, nil
}

// cancelPendingLocked removes the most recent queued release of id. Caller
// holds mu and guarantees at least one is queued (id is in limbo).
func (s *Store) cancelPendingLocked(id blobstore.ID) {
	for i := len(s.pending) - 1; i >= 0; i-- {
		if s.pending[i] == id {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}
