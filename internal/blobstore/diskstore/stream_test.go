package diskstore_test

// Streaming-specific crash tests: gets are served straight from segment
// offsets, so damage on disk must surface through the streamed read path
// — a torn record must not be openable at all, and a record whose bytes
// rot after the index was written must fail its in-flight CRC check
// rather than hand corrupt data to a caller.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/iotest"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/blobstoretest"
	"expelliarmus/internal/blobstore/diskstore"
)

// TestTornTailRefusesStreamedRead cuts the last record mid-payload and
// reopens: the torn blob must not be streamable (Open says no), while the
// record before the tear still streams end to end.
func TestTornTailRefusesStreamedRead(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	intact := bytes.Repeat([]byte("whole "), 4000)
	intactID, _ := s.Put(intact)
	before := fileSize(t, lastSegment(t, dir))
	tornID, _ := s.Put(bytes.Repeat([]byte("torn "), 4000))
	after := fileSize(t, lastSegment(t, dir))
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
	if err := os.Truncate(lastSegment(t, dir), before+(after-before)/2); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	if !r.Recovery().Torn() {
		t.Fatalf("tear not reported: %+v", r.Recovery())
	}
	if rc, _, err := r.Open(tornID); err == nil {
		rc.Close()
		t.Fatalf("Open succeeded on a torn record")
	} else if !errors.Is(err, blobstore.ErrNotFound) {
		// The torn tail was truncated away at recovery, so the blob is
		// absent, not corrupt — the store already healed around it.
		t.Fatalf("Open(torn) = %v, want ErrNotFound", err)
	}
	rc, size, err := r.Open(intactID)
	if err != nil || size != int64(len(intact)) {
		t.Fatalf("Open(intact) = %v, %d; want nil, %d", err, size, len(intact))
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(got, intact) {
		t.Fatalf("streamed read of pre-tear blob differs (err=%v)", err)
	}
}

// TestOpenCorruptHeaderIsNotAbsence damages a stored record's header in
// place on the live store and runs the shared corruption contract: Open
// must say "corrupt", never "not found" — conflating the two turned
// integrity incidents into silent 404s. The damage must also trip the
// store's sticky failure so later mutations refuse rather than append
// after known rot.
func TestOpenCorruptHeaderIsNotAbsence(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	blobstoretest.RunOpenCorrupt(t, s, func(t *testing.T, id blobstore.ID, data []byte) {
		if _, err := s.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		// Locate the record by its payload and break the kind byte, which
		// sits immediately before the payload in the record framing. The
		// write goes to the same inode the store holds open, so its
		// positional reads observe the damage.
		seg := lastSegment(t, dir)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		pos := bytes.Index(raw, data[:64])
		if pos <= 0 {
			t.Fatal("payload not found in segment")
		}
		f, err := os.OpenFile(seg, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := f.WriteAt([]byte{0xFF}, int64(pos-1)); err != nil {
			t.Fatal(err)
		}
	})
	if err := s.Err(); err == nil {
		t.Fatalf("corrupt Open did not trip the sticky failure")
	} else if !errors.Is(err, blobstore.ErrCorrupt) {
		t.Fatalf("sticky failure = %v, want ErrCorrupt", err)
	}
	if _, _, _, err := s.PutReader(bytes.NewReader([]byte("after rot"))); err == nil {
		t.Fatalf("PutReader accepted data after a detected corruption")
	}
	if err := s.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}
}

// TestPostHocRotFailsStreamedCRC flips payload bytes of a fully synced
// record after the store closed. Index-based load trusts the index, so
// the damage is only discoverable at read time: the streamed reader's
// incremental CRC must refuse to complete, and the materializing Get must
// report the blob unavailable rather than return rotten bytes.
func TestPostHocRotFailsStreamedCRC(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	data := bytes.Repeat([]byte("payload "), 8192)
	id, _ := s.Put(data)
	if _, err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Rot a byte deep inside the record's payload.
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	pos := bytes.Index(raw, data[:64])
	if pos < 0 {
		t.Fatal("payload not found in segment")
	}
	raw[pos+1000] ^= 0x40
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := open(t, dir, diskstore.Options{})
	defer r.Close()
	if r.Recovery().IndexRebuilt {
		t.Fatalf("index unexpectedly rebuilt; rot would be caught at replay, not read")
	}
	rc, _, err := r.Open(id)
	if err != nil {
		t.Fatalf("Open refused a catalogued blob before any read: %v", err)
	}
	defer rc.Close()
	if _, err := io.ReadAll(rc); err == nil {
		t.Fatalf("streamed read of a rotten record completed without error")
	}
	if _, ok := r.Get(id); ok {
		t.Fatalf("Get returned rotten bytes")
	}
}

// spoolFiles lists the put-*.tmp spill files a streaming put spools
// oversized payloads into.
func spoolFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "put-*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFailedStreamedPutUnlinksSpoolImmediately is the regression for the
// daemon spool leak: a streamed put whose source fails after crossing the
// spill threshold must delete its put-*.tmp file on the error path itself
// — on the live store, not at the next reopen's stray sweep. A daemon
// never reopens, so anything less accumulates a temp file per failed
// upload until the disk fills.
func TestFailedStreamedPutUnlinksSpoolImmediately(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	defer s.Close()

	boom := errors.New("source died mid-upload")
	// Well past the 1 MiB spill threshold before the source fails, so the
	// spool is certainly file-backed.
	src := io.MultiReader(bytes.NewReader(bytes.Repeat([]byte("spilled-payload|"), 1<<17)), iotest.ErrReader(boom))
	if _, _, _, err := s.PutReader(src); !errors.Is(err, boom) {
		t.Fatalf("PutReader with failing source = %v, want the source's error", err)
	}
	if left := spoolFiles(t, dir); len(left) != 0 {
		t.Fatalf("failed streamed put leaked spool files: %v", left)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("failed put changed the store: %d blobs", n)
	}

	// The error path must not have wedged anything: the same payload
	// streams in cleanly afterwards, and a successful spilled put cleans
	// its spool too.
	data := bytes.Repeat([]byte("spilled-payload|"), 1<<17)
	id, n, stored, err := s.PutReader(bytes.NewReader(data))
	if err != nil || !stored || n != int64(len(data)) {
		t.Fatalf("PutReader after failed put = id %v, n %d, stored %v, err %v", id, n, stored, err)
	}
	if left := spoolFiles(t, dir); len(left) != 0 {
		t.Fatalf("successful streamed put left spool files behind: %v", left)
	}
	rc, size, err := s.Open(id)
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Open after recovery from failed put: %v, %d", err, size)
	}
	defer rc.Close()
	if got, err := io.ReadAll(rc); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("streamed read differs after failed-put recovery (err=%v)", err)
	}
}

// TestFailedSmallStreamedPutLeavesNoTrace is the in-memory-spool sibling:
// a source failing under the spill threshold must leave neither spool
// files nor any store mutation behind.
func TestFailedSmallStreamedPutLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	defer s.Close()

	boom := errors.New("tiny source died")
	src := io.MultiReader(bytes.NewReader([]byte("just a few bytes")), iotest.ErrReader(boom))
	if _, _, _, err := s.PutReader(src); !errors.Is(err, boom) {
		t.Fatalf("PutReader with failing source = %v, want the source's error", err)
	}
	if left := spoolFiles(t, dir); len(left) != 0 {
		t.Fatalf("failed in-memory put leaked spool files: %v", left)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("failed put changed the store: %d blobs", n)
	}
}
