package diskstore

// Fuzz targets for the two on-disk decoders. Both must hold two
// properties on arbitrary input: never panic (and never allocate
// proportionally to attacker-controlled counts), and when they do accept
// an input, the decoded value must survive an encode/decode round trip
// semantically (byte-canonicality is not required of the *input*, since
// varints have redundant encodings, but our own encoder must be a fixed
// point). Seeds live in testdata/fuzz and via f.Add below; CI runs a
// short -fuzz smoke on every PR.

import (
	"bytes"
	"testing"

	"expelliarmus/internal/blobstore"
)

func FuzzSegmentRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(segmentMagic)
	f.Add(appendRecord(nil, recPut, []byte("seed blob payload")))
	f.Add(appendRecord(nil, recPut, nil))
	id := blobstore.Sum([]byte("seed blob payload"))
	f.Add(appendRecord(nil, recAddRef, id[:]))
	f.Add(appendRecord(nil, recRelease, id[:]))
	two := appendRecord(appendRecord(nil, recPut, []byte("a")), recAddRef, id[:])
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, size, err := parseRecord(data)
		if err != nil {
			return
		}
		if size < recHeaderSize || size > len(data) {
			t.Fatalf("accepted record with impossible size %d of %d", size, len(data))
		}
		re := appendRecord(nil, kind, payload)
		kind2, payload2, size2, err2 := parseRecord(re)
		if err2 != nil {
			t.Fatalf("re-encoded record rejected: %v", err2)
		}
		if kind2 != kind || !bytes.Equal(payload2, payload) || size2 != len(re) {
			t.Fatalf("record round trip changed value")
		}
	})
}

func FuzzIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add(indexMagic)
	f.Add(encodeIndex(0, 0, nil))
	mk := func(content string, seg uint32, off, size int64, refs int) indexEntry {
		return indexEntry{id: blobstore.Sum([]byte(content)), seg: seg, off: off, size: size, refs: refs}
	}
	f.Add(encodeIndex(3, 12345, []indexEntry{
		mk("alpha", 1, 17, 100, 2),
		mk("beta", 2, 9, 4096, 1),
		mk("gamma", 3, 900, 1, 7),
	}))
	full := encodeIndex(1, 8, []indexEntry{mk("delta", 1, 17, 32, 1)})
	f.Add(full[:len(full)-2]) // torn trailer
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, off, entries, err := parseIndex(data)
		if err != nil {
			return
		}
		re := encodeIndex(seg, off, entries)
		seg2, off2, entries2, err2 := parseIndex(re)
		if err2 != nil {
			t.Fatalf("re-encoded index rejected: %v", err2)
		}
		if seg2 != seg || off2 != off || len(entries2) != len(entries) {
			t.Fatalf("index round trip changed watermark or cardinality")
		}
		for i := range entries {
			if entries2[i] != entries[i] {
				t.Fatalf("index round trip changed entry %d", i)
			}
		}
	})
}
