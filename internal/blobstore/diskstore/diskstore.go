// Package diskstore implements the on-disk blobstore.Backend: a
// content-addressed, reference-counted blob store whose state lives in
// append-only segment files plus an atomically committed index, so a
// repository can outgrow RAM and a save writes only what changed.
//
// Layout of a store directory:
//
//	seg-00000001.log   append-only operation log (CRC-framed records)
//	seg-00000002.log   ... rolled when a segment reaches MaxSegmentBytes
//	index              committed catalog: blob locations + refcounts +
//	                   durability watermark (replaced via temp + rename)
//	index.tmp          transient; leftover only after a crash mid-commit
//
// Every mutation is logged to the active segment, so the log is a
// complete operation history and replaying it reconstructs exact
// reference counts — but Put/AddRef and Release are logged at different
// times, and deliberately so. Puts and addrefs append eagerly: losing one
// to a crash can only lose data, so they must reach the log before any
// metadata that references them is committed (SyncData is the barrier a
// caller uses for exactly that). Releases apply to the in-memory catalog
// immediately but are queued and appended only during Sync, after the
// caller has had the chance to commit its metadata: a release that
// replays on reopen deletes a blob, and if it became durable before the
// metadata that stopped referencing the blob, a crash would leave
// committed records pointing at nothing. Deferring releases flips every
// crash outcome into the safe direction — at worst a released blob is
// resurrected as an orphan, never a live record dangling.
//
// Sync makes the store durable incrementally: it appends the queued
// releases, fsyncs only segments with bytes appended since the previous
// sync, then commits a fresh index whose watermark records how far the
// durable log extends. Open loads the index and replays any log records
// at or beyond the watermark; a torn or checksum-failing record at the
// tail of the newest segment is truncated away and reported (a crash
// mid-append), while damage anywhere else — including an index that
// references a segment file missing from the directory — is refused as
// real corruption. A missing or unreadable index is not fatal either:
// segments are never rewritten, so the full log replays into the same
// state.
//
// Concurrency: reads (Get, Has, Size, Refs, Len, IDs, Snapshot) take a
// shared lock and may run in parallel; mutations serialise on one
// exclusive lock because they all append to the single active segment —
// lock striping would buy nothing while the log tail is the bottleneck.
// The shard key the in-memory store stripes on (leading hash byte) is
// instead the grouping key of the index file, keeping the two backends'
// layouts aligned.
package diskstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"expelliarmus/internal/atomicfile"
	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/recframe"
)

// DefaultMaxSegmentBytes is the roll threshold when Options leave it zero.
const DefaultMaxSegmentBytes = 8 << 20

// DefaultCompactDeadRatio is the dead-byte fraction at which a sealed
// segment becomes a compaction candidate when Options leave the ratio zero.
const DefaultCompactDeadRatio = 0.5

// Options configure a disk store.
type Options struct {
	// MaxSegmentBytes rolls the active segment to a new file once it
	// reaches this size (a single oversized record may still exceed it).
	// Zero means DefaultMaxSegmentBytes. Small values are useful in tests
	// to force multi-segment layouts.
	MaxSegmentBytes int64
	// CompactDeadRatio is the dead-byte fraction (dead bytes over total
	// record bytes) at which a sealed segment is scored a compaction
	// candidate. Sync compacts candidates automatically after committing
	// its index; Compact does the same on demand. Zero means
	// DefaultCompactDeadRatio; a negative value disables the automatic
	// trigger (Compact still works, using the default ratio).
	CompactDeadRatio float64
}

// RecoveryReport describes what Open had to do beyond loading the index.
type RecoveryReport struct {
	// ReplayedRecords counts log records applied on top of the index —
	// operations that happened after the last completed Sync.
	ReplayedRecords int
	// IndexRebuilt reports that an index file existed but was unreadable
	// (bad magic, checksum, or structure), so the state was rebuilt by
	// replaying the full segment log.
	IndexRebuilt bool
	// TornSegment is the segment whose tail was truncated (0 = none).
	TornSegment uint32
	// TornOffset is the file offset the torn segment was truncated to.
	TornOffset int64
	// DroppedBytes is how many trailing bytes the truncation discarded.
	DroppedBytes int64
	// DroppedReleases counts release records found at the log tail without
	// a following commit marker — the remains of a Sync that died mid-batch
	// — which recovery drops and truncates away so the batch applies
	// all-or-nothing (the affected blobs resurrect as orphans, the safe
	// direction).
	DroppedReleases int
	// SegmentsSwept counts segment files deleted at open because the
	// committed index no longer references them and they lie wholly below
	// the durability watermark — the remains of a compaction that crashed
	// after switching the index but before retiring its source segments.
	SegmentsSwept int
}

// Torn reports whether recovery found (and removed) a torn log tail.
func (r RecoveryReport) Torn() bool { return r.TornSegment != 0 }

type entry struct {
	seg  uint32
	off  int64 // blob-byte offset within the segment file
	size int64
	refs int
	kind byte // recPut or recMove: how the record framing around off reads
}

// footprint is the record's full on-disk size: header, the move prefix if
// any, and the blob bytes. Per-segment live-byte accounting sums these.
func (e *entry) footprint() int64 {
	n := int64(recHeaderSize) + e.size
	if e.kind == recMove {
		n += recMoveRefsLen
	}
	return n
}

// Store is the disk-backed blob store. Construct with Open; the zero value
// is not usable. A Store is safe for concurrent use.
type Store struct {
	dir      string
	maxSeg   int64
	deadGate float64      // effective CompactDeadRatio (< 0: auto-compaction off)
	unlock   func() error // releases the exclusive dir/lock flock

	// Kill is the crash-injection hook for compaction: when non-nil it
	// runs at each CompactKillPoint, and a returned error aborts the
	// operation exactly as a crash at that point would. Tests set it, then
	// Abandon and reopen; production leaves it nil. Set before any use.
	Kill func(CompactKillPoint) error

	mu    sync.RWMutex
	blobs map[blobstore.ID]*entry
	// limbo holds entries whose last reference was released but whose
	// release records are still queued in pending. They are invisible to
	// every read path (the blob is gone from the catalog's point of view)
	// but their bytes are still live on disk: an index committed before
	// the queued releases flush — a compaction switch does exactly that —
	// must re-encode them (with their queued releases folded back into the
	// reference count), or reopening from that index would make the
	// releases durable before the caller's metadata commit. Compaction
	// also moves them like any live record. A Put of the same content
	// resurrects the entry instead of cancelling it destructively.
	limbo map[blobstore.ID]*entry
	bytes int64 // live payload bytes (garbage in released records excluded)
	dirty bool  // catalog changed since the last committed index

	segs      map[uint32]*os.File // open handles; active one is also the writer
	lens      map[uint32]int64    // current byte length per segment
	syncedLen map[uint32]int64    // durable (fsynced + index-covered) length per segment
	liveSeg   map[uint32]int64    // live record footprint bytes per segment (blobs + limbo)
	readers   map[uint32]*atomic.Int64
	retiring  map[uint32]*retiredSeg // evacuated segments waiting for reader drain
	active    uint32                 // newest segment number (0 = none yet)
	pending   []blobstore.ID         // releases applied in memory, logged at next Sync

	compacting bool // single-flight guard for the copy phase

	failure  error // sticky first I/O error; mutations refuse once set
	recovery RecoveryReport

	// Replay-only state: release records buffered until their commit
	// marker (see recCommit), with positions so an unmarked tail can be
	// truncated away.
	relBuf []bufferedRelease

	puts atomic.Int64
	hits atomic.Int64

	segsCompacted  atomic.Int64 // cumulative segments retired since Open
	bytesReclaimed atomic.Int64 // cumulative segment-file bytes freed since Open
}

// retiredSeg is a segment whose records were all rewritten elsewhere and
// whose index references are gone, but which still has open readers
// streaming from it. The last reader's Close deletes the file.
type retiredSeg struct {
	f    *os.File
	path string
	size int64
}

// bufferedRelease is a replayed release record waiting for its commit
// marker, with enough position to truncate an unmarked tail.
type bufferedRelease struct {
	id  blobstore.ID
	seg uint32
	off int64
}

// Store implements the full durable backend contract.
var _ blobstore.Durable = (*Store)(nil)

// Open creates or reopens a store rooted at dir, running crash recovery:
// the committed index is loaded, the log tail beyond its watermark is
// replayed, and a torn final record is truncated away. The recovery
// outcome is readable via Recovery. Open takes an exclusive lock on the
// directory and fails if another store instance — in this process or any
// other — already holds it.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: open %s: %w", dir, err)
	}
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		dir:       dir,
		maxSeg:    opts.MaxSegmentBytes,
		deadGate:  opts.CompactDeadRatio,
		unlock:    unlock,
		blobs:     make(map[blobstore.ID]*entry),
		limbo:     make(map[blobstore.ID]*entry),
		segs:      make(map[uint32]*os.File),
		lens:      make(map[uint32]int64),
		syncedLen: make(map[uint32]int64),
		liveSeg:   make(map[uint32]int64),
		readers:   make(map[uint32]*atomic.Int64),
		retiring:  make(map[uint32]*retiredSeg),
	}
	if s.maxSeg <= 0 {
		s.maxSeg = DefaultMaxSegmentBytes
	}
	if s.deadGate == 0 {
		s.deadGate = DefaultCompactDeadRatio
	}
	if err := s.load(); err != nil {
		s.closeFiles(false)
		return nil, err
	}
	return s, nil
}

// Recovery returns what Open had to recover.
func (s *Store) Recovery() RecoveryReport { return s.recovery }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// load reads the index (if usable), opens all segments and replays the
// log from the index watermark (or from the beginning when rebuilding).
func (s *Store) load() error {
	// Spill files from streaming puts interrupted by a crash are dead
	// weight: the exclusive directory lock guarantees no live PutReader
	// owns one.
	s.removeStraySpools()
	watermarkSeg, watermarkOff, entries, idxErr := s.loadIndex()
	segNums, err := s.listSegments()
	if err != nil {
		return err
	}
	if idxErr != nil {
		// Unreadable index: distrust it entirely and rebuild from the log.
		s.recovery.IndexRebuilt = true
		watermarkSeg, watermarkOff, entries = 0, 0, nil
	}
	if s.recovery.IndexRebuilt || watermarkSeg == 0 {
		// Full replay reconstructs reference counts from the complete
		// operation history — which only exists while every segment since
		// the first is still present. Once compaction has retired or swept
		// a segment, the addref/release history of blobs that were never
		// moved is gone with it, and replaying the remainder would invent
		// wrong counts. Refuse loudly instead.
		for i, n := range segNums {
			if n != uint32(i)+1 {
				return fmt.Errorf("diskstore: cannot rebuild the catalog by replay: segment log starts at %d (compaction has retired earlier segments), and the index is unusable", segNums[0])
			}
		}
	}
	for _, e := range entries {
		ec := e
		s.blobs[e.id] = &entry{seg: ec.seg, off: ec.off, size: ec.size, refs: ec.refs, kind: ec.kind}
		s.bytes += e.size
		s.liveSeg[ec.seg] += s.blobs[e.id].footprint()
	}
	for _, n := range segNums {
		// O_APPEND so later appends land at the end regardless of how far
		// recovery read; reads always go through ReadAt (pread).
		f, err := os.OpenFile(filepath.Join(s.dir, segmentName(n)), os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("diskstore: open segment %d: %w", n, err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		s.segs[n] = f
		s.lens[n] = fi.Size()
		s.readers[n] = &atomic.Int64{}
		if n > s.active {
			s.active = n
		}
	}
	// Every segment the index vouches for must actually be present: the
	// committed catalog pointing at a missing file is real corruption (a
	// deleted or lost segment), not a crash artifact, and silently serving
	// "not found" for its blobs would turn durable data into absent data.
	for _, e := range entries {
		if _, ok := s.segs[e.seg]; !ok {
			return fmt.Errorf("diskstore: index references missing segment %d (blob %s)", e.seg, e.id)
		}
	}
	// The watermark segment itself must be present and at least as long as
	// the index claims — even when no entry points into it (it may hold
	// only addref/release records). A shorter or missing file means
	// durably-synced log records are gone, and accepting it would let new
	// appends land below the stale watermark where a later recovery never
	// replays them.
	if watermarkSeg != 0 {
		if _, ok := s.segs[watermarkSeg]; !ok {
			return fmt.Errorf("diskstore: index watermark references missing segment %d", watermarkSeg)
		}
		if s.lens[watermarkSeg] < watermarkOff {
			return fmt.Errorf("diskstore: segment %d is %d bytes, shorter than the synced watermark %d",
				watermarkSeg, s.lens[watermarkSeg], watermarkOff)
		}
	}
	// The durable watermark: everything the index vouches for was fsynced
	// before the index committed. Replayed bytes beyond it may only be in
	// the page cache, so they stay below the watermark until the next Sync.
	for _, n := range segNums {
		switch {
		case n < watermarkSeg:
			s.syncedLen[n] = s.lens[n]
		case n == watermarkSeg:
			s.syncedLen[n] = watermarkOff
		}
	}
	// Sweep segments the committed index no longer references: wholly
	// below the watermark (their records never replay) with zero live
	// entries, they are the source files of a compaction that crashed
	// after the index switch but before retiring them — or sealed segments
	// whose every blob was released and flushed. Either way they are dead
	// weight the crashed retire (or this open) reclaims. Only a trusted
	// index may authorize this: after a rebuild nothing vouches that the
	// files are garbage.
	if !s.recovery.IndexRebuilt {
		for _, n := range segNums {
			if n >= watermarkSeg || s.liveSeg[n] != 0 || s.lens[n] <= int64(len(segmentMagic)) {
				continue
			}
			s.segs[n].Close()
			if err := os.Remove(filepath.Join(s.dir, segmentName(n))); err != nil {
				return fmt.Errorf("diskstore: sweep unreferenced segment %d: %w", n, err)
			}
			delete(s.segs, n)
			delete(s.lens, n)
			delete(s.syncedLen, n)
			delete(s.readers, n)
			s.recovery.SegmentsSwept++
		}
	}
	for i, n := range segNums {
		if n < watermarkSeg {
			continue
		}
		start := int64(len(segmentMagic))
		if n == watermarkSeg && watermarkOff > start {
			start = watermarkOff
		}
		if err := s.replaySegment(n, start, i == len(segNums)-1); err != nil {
			return err
		}
	}
	// Release records still buffered when the log ends never got their
	// commit marker: the Sync writing them died mid-batch. Drop them — the
	// blobs resurrect as orphans, the safe direction — and truncate them
	// off the log, because leaving half a batch in place would let a
	// marker appended by a future Sync commit it.
	if err := s.dropUnmarkedReleases(); err != nil {
		return err
	}
	// Replayed records (and a rebuilt index) are state the on-disk index
	// does not yet reflect; the next Sync must commit it.
	s.dirty = s.recovery.ReplayedRecords > 0 || s.recovery.IndexRebuilt ||
		s.recovery.DroppedReleases > 0 || s.recovery.SegmentsSwept > 0
	return nil
}

// dropUnmarkedReleases truncates the trailing run of release records that
// never received a commit marker. The records are whole and CRC-valid, but
// they are the tail of a Sync that died between appending its batch and
// appending the marker; a crashed batch must apply all-or-nothing.
func (s *Store) dropUnmarkedReleases() error {
	if len(s.relBuf) == 0 {
		return nil
	}
	// The run is contiguous at the log tail, possibly spanning a roll:
	// truncate each affected segment back to the run's first record in it.
	cut := map[uint32]int64{}
	for _, r := range s.relBuf {
		if off, ok := cut[r.seg]; !ok || r.off < off {
			cut[r.seg] = r.off
		}
	}
	for n, keep := range cut {
		if err := s.segs[n].Truncate(keep); err != nil {
			return fmt.Errorf("diskstore: truncate unmarked release batch in segment %d: %w", n, err)
		}
		s.lens[n] = keep
		if s.syncedLen[n] > keep {
			s.syncedLen[n] = keep
		}
	}
	s.recovery.DroppedReleases = len(s.relBuf)
	s.relBuf = nil
	return nil
}

// loadIndex parses dir/index. A missing file is a fresh (or never-synced)
// store, reported as zero values with nil error; an unreadable file is
// reported as an error so load falls back to full replay.
func (s *Store) loadIndex() (uint32, int64, []indexEntry, error) {
	img, err := os.ReadFile(filepath.Join(s.dir, "index"))
	if os.IsNotExist(err) {
		return 0, 0, nil, nil
	}
	if err != nil {
		return 0, 0, nil, err
	}
	return parseIndex(img)
}

// listSegments returns existing segment numbers in ascending order.
func (s *Store) listSegments() ([]uint32, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var nums []uint32
	for _, de := range des {
		var n uint32
		// Sscanf ignores trailing characters, so require the round trip
		// through segmentName to match exactly — a stray seg-00000001.log.bak
		// must not make segment 1 replay twice.
		if _, err := fmt.Sscanf(de.Name(), "seg-%08d.log", &n); err == nil && n > 0 && de.Name() == segmentName(n) {
			nums = append(nums, n)
		}
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	return nums, nil
}

// replaySegment applies log records of segment n starting at offset start.
// A torn or corrupt record is tolerated only at the tail of the last
// segment — the signature of a crash mid-append — where the file is
// truncated to the last whole record; anywhere else it is corruption.
func (s *Store) replaySegment(n uint32, start int64, last bool) error {
	f := s.segs[n]
	size := s.lens[n]
	if size < int64(len(segmentMagic)) {
		// The file died before its magic finished. Only acceptable as the
		// very tail of the log.
		if !last {
			return fmt.Errorf("diskstore: segment %d shorter than its header", n)
		}
		return s.truncateSegment(n, 0, size)
	}
	magic := make([]byte, len(segmentMagic))
	if _, err := f.ReadAt(magic, 0); err != nil {
		return err
	}
	if string(magic) != string(segmentMagic) {
		return fmt.Errorf("diskstore: segment %d has bad magic", n)
	}
	if start >= size {
		return nil
	}
	buf := make([]byte, size-start)
	if _, err := f.ReadAt(buf, start); err != nil {
		return fmt.Errorf("diskstore: read segment %d: %w", n, err)
	}
	off := start
	for len(buf) > 0 {
		kind, payload, recSize, err := parseRecord(buf)
		if err != nil {
			if !last {
				return fmt.Errorf("diskstore: segment %d offset %d: %w", n, off, err)
			}
			// A genuine torn append leaves only garbage after the failed
			// record — the crash stopped the log there. A whole, valid,
			// CRC-passing record beyond the failure therefore proves the
			// damage is real corruption of committed data, which must be
			// refused, not silently truncated away with everything after it.
			if tail := nextValidRecord(buf[1:]); tail >= 0 {
				return fmt.Errorf("diskstore: segment %d offset %d: %w followed by a valid record at offset %d — refusing to truncate committed data",
					n, off, err, off+1+int64(tail))
			}
			return s.truncateSegment(n, off, size-off)
		}
		if err := s.apply(kind, payload, n, off); err != nil {
			return err
		}
		// Releases count when their batch commits (applyBufferedReleases);
		// markers are batch framing, not operations.
		if kind != recRelease && kind != recCommit {
			s.recovery.ReplayedRecords++
		}
		buf = buf[recSize:]
		off += int64(recSize)
	}
	return nil
}

// nextValidRecord scans b for any offset at which a whole record parses,
// returning that offset or -1 — evidence that damage is real corruption
// of committed data rather than a torn append (see recframe.NextValid).
func nextValidRecord(b []byte) int { return recframe.NextValid(b) }

// truncateSegment drops the torn tail of segment n and records it.
func (s *Store) truncateSegment(n uint32, keep, dropped int64) error {
	if err := s.segs[n].Truncate(keep); err != nil {
		return fmt.Errorf("diskstore: truncate torn segment %d: %w", n, err)
	}
	s.lens[n] = keep
	if s.syncedLen[n] > keep {
		s.syncedLen[n] = keep
	}
	s.recovery.TornSegment = n
	s.recovery.TornOffset = keep
	s.recovery.DroppedBytes = dropped
	return nil
}

// apply replays one log record into the in-memory catalog. Releases are
// buffered until their commit marker so a Sync batch replays atomically; a
// non-release record while releases are buffered can only come from a log
// written before commit markers existed, and applies the buffer first (the
// log demonstrably continued past the batch, so it was complete).
func (s *Store) apply(kind byte, payload []byte, seg uint32, recOff int64) error {
	if kind != recRelease && kind != recCommit && len(s.relBuf) > 0 {
		if err := s.applyBufferedReleases(); err != nil {
			return err
		}
	}
	switch kind {
	case recPut:
		id := sha256.Sum256(payload)
		if e, ok := s.blobs[id]; ok {
			e.refs++
			return nil
		}
		e := &entry{seg: seg, off: recOff + recHeaderSize, size: int64(len(payload)), refs: 1, kind: recPut}
		s.blobs[id] = e
		s.bytes += e.size
		s.liveSeg[seg] += e.footprint()
		return nil
	case recAddRef:
		id, err := refPayload(payload)
		if err != nil {
			return err
		}
		e, ok := s.blobs[id]
		if !ok {
			return fmt.Errorf("diskstore: replayed addref for unknown blob %s", id)
		}
		e.refs++
		return nil
	case recRelease:
		id, err := refPayload(payload)
		if err != nil {
			return err
		}
		s.relBuf = append(s.relBuf, bufferedRelease{id: id, seg: seg, off: recOff})
		return nil
	case recCommit:
		if len(payload) != 0 {
			return fmt.Errorf("%w: commit marker carries %d payload bytes", errCorrupt, len(payload))
		}
		return s.applyBufferedReleases()
	case recMove:
		if len(payload) < recMoveRefsLen {
			return fmt.Errorf("%w: move record payload is %d bytes, shorter than its refs prefix", errCorrupt, len(payload))
		}
		refs := int(binary.LittleEndian.Uint32(payload[:recMoveRefsLen]))
		if refs == 0 {
			return fmt.Errorf("%w: move record with zero refs", errCorrupt)
		}
		blob := payload[recMoveRefsLen:]
		id := sha256.Sum256(blob)
		e, ok := s.blobs[id]
		if !ok {
			// Full replay after the source segment's put record was lost to
			// a tear, or a moved blob whose index entry predates this move:
			// the move carries everything needed to (re)create the entry.
			e = &entry{}
			s.blobs[id] = e
			s.bytes += int64(len(blob))
		} else {
			s.liveSeg[e.seg] -= e.footprint()
		}
		// Absolute, not a delta: at append time the count was the blob's
		// logged reference count at exactly this log position, and once the
		// source segment retires, the history behind it is unreplayable.
		e.seg, e.off, e.size, e.refs, e.kind = seg, recOff+recHeaderSize+recMoveRefsLen, int64(len(blob)), refs, recMove
		s.liveSeg[seg] += e.footprint()
		return nil
	default:
		return fmt.Errorf("diskstore: unknown record kind %d", kind)
	}
}

// applyBufferedReleases applies a complete, marker-committed release batch.
func (s *Store) applyBufferedReleases() error {
	for _, r := range s.relBuf {
		e, ok := s.blobs[r.id]
		if !ok {
			return fmt.Errorf("diskstore: replayed release for unknown blob %s", r.id)
		}
		e.refs--
		if e.refs == 0 {
			s.bytes -= e.size
			s.liveSeg[e.seg] -= e.footprint()
			delete(s.blobs, r.id)
		}
		s.recovery.ReplayedRecords++
	}
	s.relBuf = nil
	return nil
}

// fail records the first I/O error; the store refuses further mutations
// and surfaces the error from Sync and Close. Caller holds mu exclusively.
func (s *Store) fail(err error) {
	if s.failure == nil {
		s.failure = err
	}
}

// failSticky is fail for paths that do not already hold the exclusive
// lock (the read paths, which detect on-disk damage).
func (s *Store) failSticky(err error) {
	s.mu.Lock()
	s.fail(err)
	s.mu.Unlock()
}

// prepareAppendLocked rolls the active segment when the next record would
// overflow it and restores a truncated-away magic, returning the file the
// record must land in. It is the one place the roll/magic discipline
// lives, shared by the buffered and streaming append paths. Caller holds mu.
func (s *Store) prepareAppendLocked(recSize int64) (*os.File, error) {
	if s.active == 0 || (s.lens[s.active] > int64(len(segmentMagic)) && s.lens[s.active]+recSize > s.maxSeg) {
		if err := s.rollLocked(); err != nil {
			return nil, err
		}
	}
	f := s.segs[s.active]
	if s.lens[s.active] < int64(len(segmentMagic)) {
		// Recovery truncated this segment to nothing (torn before its
		// header finished); restore the magic before the first record.
		if _, err := f.Write(segmentMagic); err != nil {
			return nil, fmt.Errorf("diskstore: rewrite segment %d magic: %w", s.active, err)
		}
		s.lens[s.active] = int64(len(segmentMagic))
	}
	return f, nil
}

// appendLocked frames and appends one small record (refs, releases) in a
// single write, rolling the active segment when full, and returns the
// payload's file offset. Blob payloads go through appendStreamLocked
// instead. Caller holds mu.
func (s *Store) appendLocked(kind byte, payload []byte) (seg uint32, payloadOff int64, err error) {
	recSize := int64(recHeaderSize + len(payload))
	f, err := s.prepareAppendLocked(recSize)
	if err != nil {
		return 0, 0, err
	}
	buf := make([]byte, 0, recSize)
	buf = appendRecord(buf, kind, payload)
	if _, err := f.Write(buf); err != nil {
		return 0, 0, fmt.Errorf("diskstore: append to segment %d: %w", s.active, err)
	}
	off := s.lens[s.active]
	s.lens[s.active] += recSize
	return s.active, off + recHeaderSize, nil
}

// rollLocked opens the next segment file and writes its magic. Two
// ordering rules make rolls crash-safe. The outgoing segment is fsynced
// before the new one takes appends: recovery tolerates a torn tail only
// in the LAST segment (anywhere else is real corruption), so a segment
// must be complete on disk before any record lands after it. And the new
// file's directory entry is fsynced immediately: a later Sync commits an
// index referencing this segment by number, and that index must never
// become durable while the file's very existence is still only in the
// page cache.
func (s *Store) rollLocked() error {
	if s.active != 0 {
		if err := s.segs[s.active].Sync(); err != nil {
			return fmt.Errorf("diskstore: sync segment %d before roll: %w", s.active, err)
		}
	}
	n := s.active + 1
	f, err := os.OpenFile(filepath.Join(s.dir, segmentName(n)), os.O_RDWR|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: create segment %d: %w", n, err)
	}
	if _, err := f.Write(segmentMagic); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: write segment %d magic: %w", n, err)
	}
	if err := atomicfile.SyncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: persist segment %d directory entry: %w", n, err)
	}
	s.segs[n] = f
	s.lens[n] = int64(len(segmentMagic))
	s.readers[n] = &atomic.Int64{}
	s.active = n
	return nil
}

// Put stores data (if not already present) and takes one reference on it.
// Either way the operation is logged, so a reopened store reproduces the
// exact reference count. After a previous I/O failure Put mutates nothing
// and reports the content as not newly stored; the failure itself is
// surfaced by Sync/Close. Put is a thin adapter over PutReader, so both
// entry points share the streaming append path.
func (s *Store) Put(data []byte) (blobstore.ID, bool) {
	id, _, stored, _ := s.PutReader(bytes.NewReader(data))
	return id, stored
}

// readLocked fetches a blob's payload from its segment. Caller holds mu
// (shared is enough: locations are immutable and segment files are only
// truncated during Open).
func (s *Store) readLocked(e *entry) ([]byte, error) {
	f, ok := s.segs[e.seg]
	if !ok {
		return nil, fmt.Errorf("diskstore: segment %d not open", e.seg)
	}
	buf := make([]byte, e.size)
	n, err := f.ReadAt(buf, e.off)
	if n < len(buf) {
		// ReadAt guarantees err != nil here; a short read means the segment
		// lost bytes after the fact, and zero-padded data must never be
		// served (or worse, serialised by Snapshot) as blob content.
		if err == nil || err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("diskstore: segment %d short read at %d: %w", e.seg, e.off, err)
	}
	return buf, nil
}

// Get returns the blob's contents, re-verifying the content address on
// the way in — a blob whose stored bytes no longer hash to its ID (disk
// damage after the fact) is reported as absent rather than returned. Get
// is a thin adapter over Open; the caller owns the returned slice.
func (s *Store) Get(id blobstore.ID) ([]byte, bool) {
	rc, size, err := s.Open(id)
	if err != nil {
		return nil, false
	}
	defer rc.Close()
	data := make([]byte, size)
	if _, err := io.ReadFull(rc, data); err != nil {
		return nil, false
	}
	if blobstore.Sum(data) != id {
		return nil, false
	}
	return data, true
}

// Size returns the length of the blob without reading it.
func (s *Store) Size(id blobstore.ID) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.blobs[id]
	if !ok {
		return 0, false
	}
	return e.size, true
}

// Has reports whether the blob exists.
func (s *Store) Has(id blobstore.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[id]
	return ok
}

// AddRef takes an additional reference on an existing blob.
func (s *Store) AddRef(id blobstore.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	e, ok := s.blobs[id]
	if !ok {
		return fmt.Errorf("diskstore: addref %s: not found", id)
	}
	if _, _, err := s.appendLocked(recAddRef, id[:]); err != nil {
		s.fail(err)
		return err
	}
	e.refs++
	s.dirty = true
	return nil
}

// Refs returns the current reference count, or zero if absent.
func (s *Store) Refs(id blobstore.ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.blobs[id]; ok {
		return e.refs
	}
	return 0
}

// Release drops one reference; at zero the blob leaves the catalog and its
// bytes stop counting toward TotalBytes. The record bytes become garbage
// in their segment once the release flushes; compaction reclaims them when
// the segment's dead ratio crosses the threshold. The release record is
// queued and hits the log only at the next Sync (see the package comment):
// a crash before then resurrects the reference on reopen, which is the
// safe failure direction. Until that Sync the entry sits in limbo — dead
// to every read path, but still live on disk (see the limbo field).
func (s *Store) Release(id blobstore.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	e, ok := s.blobs[id]
	if !ok {
		return fmt.Errorf("diskstore: release %s: not found", id)
	}
	s.pending = append(s.pending, id)
	e.refs--
	if e.refs == 0 {
		s.bytes -= e.size
		delete(s.blobs, id)
		s.limbo[id] = e
	}
	s.dirty = true
	return nil
}

// Len returns the number of distinct live blobs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// TotalBytes returns the live payload bytes (released garbage excluded).
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Stats reports cumulative put and dedup-hit counts since Open.
func (s *Store) Stats() (puts, hits int64) {
	return s.puts.Load(), s.hits.Load()
}

// IDs returns all live blob IDs in lexicographic order.
func (s *Store) IDs() []blobstore.ID {
	s.mu.RLock()
	out := make([]blobstore.ID, 0, len(s.blobs))
	for id := range s.blobs {
		out = append(out, id)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}

// Snapshot serialises live blobs and reference counts in the EXPBLB1
// format — byte-identical to what the in-memory store with the same
// contents would produce. A blob that can no longer be read faithfully
// (post-hoc disk damage) surfaces as an error: skipping it silently would
// corrupt the snapshot, and serialising damaged bytes would strand the
// metadata saved alongside (Load re-derives IDs from content).
func (s *Store) Snapshot() ([]byte, error) {
	s.mu.RLock()
	entries := make([]blobstore.SnapshotEntry, 0, len(s.blobs))
	for id, e := range s.blobs {
		data, err := s.readLocked(e)
		if err == nil && blobstore.Sum(data) != id {
			// Same re-verification Get does: bit-rotted bytes must not be
			// serialised as blob content.
			err = fmt.Errorf("content hash mismatch")
		}
		if err != nil {
			s.mu.RUnlock()
			return nil, fmt.Errorf("diskstore: snapshot read %s: %w", id, err)
		}
		entries = append(entries, blobstore.SnapshotEntry{ID: id, Refs: e.refs, Data: data})
	}
	s.mu.RUnlock()
	return blobstore.EncodeSnapshot(entries), nil
}

// syncSegmentsLocked fsyncs every segment with bytes appended since the
// previous sync and accounts the flush into st. Caller holds mu.
func (s *Store) syncSegmentsLocked(st *blobstore.SyncStats) error {
	nums := make([]uint32, 0, len(s.segs))
	for n := range s.segs {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	for _, n := range nums {
		if s.lens[n] <= s.syncedLen[n] {
			continue
		}
		if err := s.segs[n].Sync(); err != nil {
			s.fail(err)
			return fmt.Errorf("diskstore: sync segment %d: %w", n, err)
		}
		st.Segments++
		st.SegmentBytes += s.lens[n] - s.syncedLen[n]
		s.syncedLen[n] = s.lens[n]
	}
	return nil
}

// SyncData makes all preceding Put and AddRef records durable without
// committing the index or the queued releases. It is the first half of the
// two-phase protocol a repository runs: after SyncData, metadata
// referencing the stored blobs may be committed; a full Sync then makes
// the releases and the index durable. Used alone it is still a valid
// (conservative) crash point — reopen replays the durable log tail from
// the old watermark.
func (s *Store) SyncData() (blobstore.SyncStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return blobstore.SyncStats{}, s.failure
	}
	var st blobstore.SyncStats
	err := s.syncSegmentsLocked(&st)
	return st, err
}

// Sync makes all preceding operations durable: the queued release records
// are appended to the log followed by one commit marker (so recovery
// applies the batch all-or-nothing), every segment with bytes appended
// since the previous sync is fsynced (only those — the store's save is
// incremental), and a fresh index is committed via write-temp + rename.
// After a crash anywhere inside Sync the store reopens to either the
// previous or the next committed state: segments are fsynced before the
// index that references them, and the log tail beyond the old watermark is
// replayed regardless. When the committed catalog leaves a sealed segment
// past the dead-ratio threshold, Sync then compacts it in the same call
// (unless Options disabled the automatic trigger) and folds the
// reclamation into its stats.
func (s *Store) Sync() (blobstore.SyncStats, error) {
	st, err := s.syncIndex()
	if err != nil {
		return st, err
	}
	s.mu.RLock()
	auto := s.deadGate >= 0 && len(s.candidateSegsLocked(s.deadGate)) > 0
	s.mu.RUnlock()
	if auto {
		cst, cerr := s.compact()
		st.SegmentsCompacted += cst.SegmentsCompacted
		st.BytesReclaimed += cst.BytesReclaimed
		if cerr != nil {
			return st, cerr
		}
	}
	s.mu.RLock()
	st.DeadBytes = s.deadBytesLocked()
	s.mu.RUnlock()
	return st, nil
}

// syncIndex is the flush-and-commit core of Sync, without the automatic
// compaction trigger (Compact and Close call it directly — a close must
// not grow into a surprise rewrite of half the store).
func (s *Store) syncIndex() (blobstore.SyncStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return blobstore.SyncStats{}, s.failure
	}
	var st blobstore.SyncStats
	if !s.dirty {
		// Nothing mutated since the last committed index: the identical
		// catalog does not need to be re-encoded and re-fsynced (Close
		// after an explicit Sync hits this path).
		return st, nil
	}
	for i, id := range s.pending {
		if _, _, err := s.appendLocked(recRelease, id[:]); err != nil {
			s.fail(err)
			s.pending = s.pending[i:] // keep the unlogged tail for diagnosis
			return st, err
		}
	}
	if len(s.pending) > 0 {
		// The marker is what commits the batch: recovery drops (and
		// truncates) any release run that ends without one.
		if _, _, err := s.appendLocked(recCommit, nil); err != nil {
			s.fail(err)
			return st, err
		}
	}
	s.pending = nil
	// The queued releases are in the log now: limbo entries stop being
	// live bytes, and their segments' dead ratios grow accordingly.
	for _, e := range s.limbo {
		s.liveSeg[e.seg] -= e.footprint()
	}
	s.limbo = make(map[blobstore.ID]*entry)
	if err := s.syncSegmentsLocked(&st); err != nil {
		return st, err
	}
	entries := make([]indexEntry, 0, len(s.blobs))
	for id, e := range s.blobs {
		entries = append(entries, indexEntry{id: id, seg: e.seg, off: e.off, size: e.size, refs: e.refs, kind: e.kind})
	}
	img := encodeIndex(s.active, s.lens[s.active], entries)
	if err := atomicfile.Write(filepath.Join(s.dir, "index"), img); err != nil {
		err = fmt.Errorf("diskstore: commit index: %w", err)
		s.fail(err)
		return st, err
	}
	st.IndexBytes = int64(len(img))
	s.dirty = false
	return st, nil
}

// deadBytesLocked sums record bytes no live entry accounts for across all
// open segments. Caller holds mu (shared suffices).
func (s *Store) deadBytesLocked() int64 {
	var dead int64
	for n, l := range s.lens {
		if d := l - int64(len(segmentMagic)) - s.liveSeg[n]; d > 0 {
			dead += d
		}
	}
	return dead
}

// Err returns the store's sticky I/O failure, if any. Mutating methods
// cannot report failure through the Backend interface (Put's bool means
// "newly stored", not "succeeded"), so callers that are about to commit
// metadata referencing just-written blobs check here first.
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.failure
}

// Close syncs and releases all file handles and the directory lock. The
// store is unusable after. Close commits the index but never triggers
// compaction — shutdown must not grow into a rewrite of half the store —
// and it removes any evacuated segments still waiting on reader drain
// (their readers are dead with the store anyway).
func (s *Store) Close() error {
	_, err := s.syncIndex()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cerr := s.closeFiles(true); err == nil {
		err = cerr
	}
	return err
}

// Abandon releases all file handles and the directory lock WITHOUT
// syncing anything — the store simply stops, exactly as a crashed process
// would. It exists so crash-recovery tests can reopen the directory in
// the same process; production code wants Close. Evacuated segments
// pending reader drain are closed but left on disk, exactly as a crash
// would leave them: the next Open's sweep reclaims them.
func (s *Store) Abandon() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeFiles(false)
}

func (s *Store) closeFiles(removeRetired bool) error {
	var first error
	for n, f := range s.segs {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.segs, n)
	}
	for n, r := range s.retiring {
		if err := r.f.Close(); err != nil && first == nil {
			first = err
		}
		if removeRetired {
			if err := os.Remove(r.path); err != nil && first == nil {
				first = err
			}
		}
		delete(s.retiring, n)
	}
	if s.unlock != nil {
		if err := s.unlock(); err != nil && first == nil {
			first = err
		}
		s.unlock = nil
	}
	return first
}
