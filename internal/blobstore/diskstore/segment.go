package diskstore

import (
	"fmt"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/recframe"
)

// Segment files are append-only operation logs. Each file starts with an
// 8-byte magic and then holds records in the shared recframe framing
// (crc32c | len | kind | payload — the same vocabulary the metadata WAL
// speaks):
//
//	offset 0: "EXPSEG1\n"
//	records: | crc32c (4, LE) | payload len n (4, LE) | kind (1) | payload (n) |
//
// A record is the unit of atomicity: recovery replays whole records and
// truncates anything after the first incomplete or mismatching one at
// the log tail.
var segmentMagic = []byte("EXPSEG1\n")

// Record kinds. The log captures every mutating operation, not just blob
// contents, so replay reconstructs exact reference counts.
const (
	recPut     byte = 1 // payload: blob bytes (ID = SHA-256 of payload)
	recAddRef  byte = 2 // payload: 32-byte blob ID
	recRelease byte = 3 // payload: 32-byte blob ID
	// recCommit marks the end of a release batch. Sync appends the queued
	// releases and then one commit marker, so recovery can tell a complete
	// batch from the tail of a Sync that died mid-append: replay buffers
	// release records and applies them only when their marker arrives, and
	// an unmarked trailing run is dropped (and physically truncated —
	// leaving half a batch in the log would let a later marker commit it).
	// Recovery therefore lands on operation boundaries: either every
	// release of a batch applies or none does. Puts and addrefs are not
	// gated — losing one loses data, so they stay self-committing.
	recCommit byte = 4 // payload: empty
	// recMove is a compaction rewrite of a surviving record into a fresh
	// segment: u32 LE reference count, then the blob bytes. The count is
	// the blob's logged reference count at append time, and replay applies
	// it absolutely (not as a delta): once the source segment is retired,
	// the addref/release history that produced the count is gone from the
	// log, so the move record must carry the total itself.
	recMove byte = 5 // payload: refs (4, LE) | blob bytes
)

// recMoveRefsLen is the length of recMove's reference-count prefix; a move
// record's payload is the prefix plus the blob bytes, and the catalog's
// payload offset points just past it.
const recMoveRefsLen = 4

// Local names for the shared framing, kept so the recovery code reads in
// this package's vocabulary.
const recHeaderSize = recframe.HeaderSize

var (
	crcTable   = recframe.CRCTable
	errTorn    = recframe.ErrTorn
	errCorrupt = recframe.ErrCorrupt
)

func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	return recframe.Append(buf, kind, payload)
}

func parseRecord(b []byte) (kind byte, payload []byte, size int, err error) {
	return recframe.Parse(b)
}

// refPayload validates the payload of an addref/release record.
func refPayload(payload []byte) (blobstore.ID, error) {
	var id blobstore.ID
	if len(payload) != len(id) {
		return id, fmt.Errorf("%w: ref payload is %d bytes, want %d", errCorrupt, len(payload), len(id))
	}
	copy(id[:], payload)
	return id, nil
}

// segmentName renders the file name of segment n ("seg-00000001.log").
func segmentName(n uint32) string { return fmt.Sprintf("seg-%08d.log", n) }
