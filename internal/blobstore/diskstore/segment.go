package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"expelliarmus/internal/blobstore"
)

// Segment files are append-only operation logs. Each file starts with an
// 8-byte magic and then holds CRC-framed records:
//
//	offset 0: "EXPSEG1\n"
//	records: | crc32c (4, LE) | payload len n (4, LE) | kind (1) | payload (n) |
//
// The checksum covers the kind byte and the payload, so a flipped bit
// anywhere in a record (including its kind) fails verification. A record
// is the unit of atomicity: recovery replays whole records and truncates
// anything after the first incomplete or mismatching one at the log tail.
var segmentMagic = []byte("EXPSEG1\n")

// Record kinds. The log captures every mutating operation, not just blob
// contents, so replay reconstructs exact reference counts.
const (
	recPut     byte = 1 // payload: blob bytes (ID = SHA-256 of payload)
	recAddRef  byte = 2 // payload: 32-byte blob ID
	recRelease byte = 3 // payload: 32-byte blob ID
)

// recHeaderSize is crc(4) + len(4) + kind(1).
const recHeaderSize = 9

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks an incomplete record at a log tail: more bytes could have
// completed it, so it is the signature of a crash mid-append. errCorrupt
// marks a record whose bytes are all present but fail the checksum.
var (
	errTorn    = errors.New("diskstore: torn record")
	errCorrupt = errors.New("diskstore: corrupt record")
)

// appendRecord frames kind+payload into buf and returns the extended
// slice. The wire image is exactly what parseRecord accepts.
func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	var hdr [recHeaderSize]byte
	crc := crc32.Checksum([]byte{kind}, crcTable)
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	hdr[8] = kind
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseRecord decodes one record from the head of b without copying. It
// returns the record kind, the payload (aliasing b), and the total encoded
// size. Incomplete input yields errTorn; a checksum mismatch yields
// errCorrupt.
func parseRecord(b []byte) (kind byte, payload []byte, size int, err error) {
	if len(b) < recHeaderSize {
		return 0, nil, 0, errTorn
	}
	n := binary.LittleEndian.Uint32(b[4:8])
	if uint64(len(b)-recHeaderSize) < uint64(n) {
		return 0, nil, 0, errTorn
	}
	kind = b[8]
	payload = b[recHeaderSize : recHeaderSize+int(n)]
	crc := crc32.Checksum(b[8:recHeaderSize+int(n)], crcTable)
	if crc != binary.LittleEndian.Uint32(b[0:4]) {
		return 0, nil, 0, errCorrupt
	}
	return kind, payload, recHeaderSize + int(n), nil
}

// refPayload validates the payload of an addref/release record.
func refPayload(payload []byte) (blobstore.ID, error) {
	var id blobstore.ID
	if len(payload) != len(id) {
		return id, fmt.Errorf("%w: ref payload is %d bytes, want %d", errCorrupt, len(payload), len(id))
	}
	copy(id[:], payload)
	return id, nil
}

// segmentName renders the file name of segment n ("seg-00000001.log").
func segmentName(n uint32) string { return fmt.Sprintf("seg-%08d.log", n) }
