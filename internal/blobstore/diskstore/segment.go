package diskstore

import (
	"fmt"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/recframe"
)

// Segment files are append-only operation logs. Each file starts with an
// 8-byte magic and then holds records in the shared recframe framing
// (crc32c | len | kind | payload — the same vocabulary the metadata WAL
// speaks):
//
//	offset 0: "EXPSEG1\n"
//	records: | crc32c (4, LE) | payload len n (4, LE) | kind (1) | payload (n) |
//
// A record is the unit of atomicity: recovery replays whole records and
// truncates anything after the first incomplete or mismatching one at
// the log tail.
var segmentMagic = []byte("EXPSEG1\n")

// Record kinds. The log captures every mutating operation, not just blob
// contents, so replay reconstructs exact reference counts.
const (
	recPut     byte = 1 // payload: blob bytes (ID = SHA-256 of payload)
	recAddRef  byte = 2 // payload: 32-byte blob ID
	recRelease byte = 3 // payload: 32-byte blob ID
)

// Local names for the shared framing, kept so the recovery code reads in
// this package's vocabulary.
const recHeaderSize = recframe.HeaderSize

var (
	crcTable   = recframe.CRCTable
	errTorn    = recframe.ErrTorn
	errCorrupt = recframe.ErrCorrupt
)

func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	return recframe.Append(buf, kind, payload)
}

func parseRecord(b []byte) (kind byte, payload []byte, size int, err error) {
	return recframe.Parse(b)
}

// refPayload validates the payload of an addref/release record.
func refPayload(payload []byte) (blobstore.ID, error) {
	var id blobstore.ID
	if len(payload) != len(id) {
		return id, fmt.Errorf("%w: ref payload is %d bytes, want %d", errCorrupt, len(payload), len(id))
	}
	copy(id[:], payload)
	return id, nil
}

// segmentName renders the file name of segment n ("seg-00000001.log").
func segmentName(n uint32) string { return fmt.Sprintf("seg-%08d.log", n) }
