//go:build unix

package diskstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/lock so two stores —
// in this process or another — can never append to the same segment files
// at once (each would track offsets the other invalidates, persisting a
// corrupt index). The lock dies with the file descriptor, so a crashed
// process never leaves a stale lock behind.
func lockDir(dir string) (func() error, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("diskstore: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s is in use by another store instance: %w", dir, err)
	}
	return f.Close, nil
}
