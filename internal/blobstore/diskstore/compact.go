// Online segment compaction. Released blobs leave their record bytes
// behind as garbage in sealed segments; the compactor scores each sealed
// segment by its dead-byte ratio, rewrites the surviving records of the
// worst offenders into the active segment as recMove records, switches the
// committed index to the new locations, and retires the evacuated files —
// all while puts, refs, releases, syncs and streamed reads keep running.
//
// The phase discipline mirrors the metadata WAL's compaction (and the
// log-cleaning shape of segmented-log systems generally): every phase
// boundary is a crash point the recovery path lands safely on.
//
//  1. Plan: pick sealed segments whose dead ratio crosses the gate.
//  2. Rewrite: for each surviving blob, append a recMove carrying the
//     blob's logged reference count and bytes. Each move is one short
//     critical section; mutations interleave freely between moves.
//  3. Switch: fsync the moves, then commit an index that references only
//     the new locations (KillAfterRewrite sits just before this — a crash
//     there reopens from the old index and replays the moves).
//  4. Retire: drop the evacuated segments from the store and delete their
//     files — unless a streamed reader still holds a pin, in which case
//     the file lingers until the last reader closes (see segReader). A
//     crash before retirement (KillAfterSwitch) leaves files the next
//     Open's sweep identifies as unreferenced and deletes.
//
// Orphan drift across these windows is one-directional: a crash can leave
// extra bytes on disk (unretired sources, replayed-but-superseded moves),
// never a live record pointing at missing bytes.
package diskstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"expelliarmus/internal/atomicfile"
	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/chunkpool"
)

// CompactKillPoint identifies a crash-injection point inside a compaction,
// one per phase boundary (see the Kill field on Store).
type CompactKillPoint int

const (
	// KillMidRewrite fires after the first surviving record has been
	// rewritten: some moves are in the log, the index still points at the
	// old locations.
	KillMidRewrite CompactKillPoint = iota + 1
	// KillAfterRewrite fires after every move is appended but before the
	// index switches: the old index is still the committed truth.
	KillAfterRewrite
	// KillAfterSwitch fires after the new index commits but before the
	// evacuated segments are retired: both copies of every moved blob are
	// on disk, only the new one referenced.
	KillAfterSwitch
)

// kill runs the crash-injection hook, if set.
func (s *Store) kill(p CompactKillPoint) error {
	if s.Kill == nil {
		return nil
	}
	if err := s.Kill(p); err != nil {
		return fmt.Errorf("diskstore: compaction killed: %w", err)
	}
	return nil
}

// candidateSegsLocked returns sealed segments whose dead-byte ratio is at
// least gate, ascending. The active segment is never a candidate — it is
// still taking appends, and moves land in it. Caller holds mu (shared
// suffices: the scoring inputs are the per-segment accounting maps).
func (s *Store) candidateSegsLocked(gate float64) []uint32 {
	var out []uint32
	for n, l := range s.lens {
		if n == s.active {
			continue
		}
		total := l - int64(len(segmentMagic))
		if total <= 0 {
			continue
		}
		dead := total - s.liveSeg[n]
		if dead <= 0 {
			continue
		}
		if float64(dead) >= gate*float64(total) {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pendingCountLocked counts queued (not yet logged) releases of id. The
// blob's logged reference count is its in-memory count plus this. Caller
// holds mu.
func (s *Store) pendingCountLocked(id blobstore.ID) int {
	c := 0
	for _, p := range s.pending {
		if p == id {
			c++
		}
	}
	return c
}

// Compact flushes the store's state (queued releases, index) and then
// compacts every sealed segment whose dead-byte ratio is at or past the
// configured threshold — or past DefaultCompactDeadRatio when Options
// disabled the automatic trigger. It returns what was reclaimed; a
// concurrent compaction already in flight makes Compact a no-op.
func (s *Store) Compact() (blobstore.CompactStats, error) {
	if _, err := s.syncIndex(); err != nil {
		return blobstore.CompactStats{}, err
	}
	return s.compact()
}

// compact runs one plan→rewrite→switch→retire cycle. Callers must have
// flushed queued releases first (syncIndex) so the dead-ratio scoring sees
// them; Sync and Compact both do.
func (s *Store) compact() (st blobstore.CompactStats, err error) {
	s.mu.Lock()
	if s.failure != nil {
		s.mu.Unlock()
		return st, s.failure
	}
	if s.compacting {
		// Single-flight: the racing caller's cycle is already reclaiming.
		s.mu.Unlock()
		return st, nil
	}
	s.compacting = true
	gate := s.deadGate
	if gate < 0 {
		gate = DefaultCompactDeadRatio
	}
	cands := s.candidateSegsLocked(gate)
	candSet := make(map[uint32]bool, len(cands))
	for _, n := range cands {
		candSet[n] = true
	}
	// The survivors to rewrite: every blob — catalog or limbo — whose
	// bytes live in a candidate. Blobs put or resurrected after this point
	// land in the active segment and need no move.
	var jobs []blobstore.ID
	for id, e := range s.blobs {
		if candSet[e.seg] {
			jobs = append(jobs, id)
		}
	}
	for id, e := range s.limbo {
		if candSet[e.seg] {
			jobs = append(jobs, id)
		}
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()
	if len(cands) == 0 {
		return st, nil
	}
	sort.Slice(jobs, func(i, j int) bool { return string(jobs[i][:]) < string(jobs[j][:]) })

	moved := false
	for _, id := range jobs {
		n, err := s.moveOne(id, candSet)
		if err != nil {
			return st, err
		}
		st.BlobsMoved += n
		if n > 0 && !moved {
			moved = true
			if err := s.kill(KillMidRewrite); err != nil {
				return st, err
			}
		}
	}
	if err := s.kill(KillAfterRewrite); err != nil {
		return st, err
	}
	// The switch: fsync the moves, then commit an index referencing only
	// the new locations. In that order — the index watermark must never
	// extend past bytes that exist only in the page cache.
	if err := s.commitCatalog(); err != nil {
		return st, err
	}
	if err := s.kill(KillAfterSwitch); err != nil {
		return st, err
	}

	// Retire. The evacuated segments hold no referenced records; readers
	// opened before their blobs moved may still be streaming, so a pinned
	// file lingers (invisible to the catalog) until its last reader closes.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range cands {
		if s.liveSeg[n] != 0 {
			err := fmt.Errorf("diskstore: compaction: segment %d still holds %d live bytes after evacuation", n, s.liveSeg[n])
			s.fail(err)
			return st, err
		}
		f := s.segs[n]
		size := s.lens[n]
		path := filepath.Join(s.dir, segmentName(n))
		delete(s.segs, n)
		delete(s.lens, n)
		delete(s.syncedLen, n)
		delete(s.liveSeg, n)
		if s.readers[n].Load() == 0 {
			f.Close()
			if rerr := os.Remove(path); rerr != nil {
				s.fail(rerr)
				return st, rerr
			}
			delete(s.readers, n)
		} else {
			s.retiring[n] = &retiredSeg{f: f, path: path, size: size}
		}
		st.SegmentsCompacted++
		st.BytesReclaimed += size
		s.segsCompacted.Add(1)
		s.bytesReclaimed.Add(size)
	}
	return st, nil
}

// moveOne rewrites one blob's record into the active segment if it still
// lives in a candidate, returning how many records were appended (0 or 1).
// The source bytes are re-verified against the blob's content address on
// the way through — compaction must not immortalize silent disk damage —
// and the move record carries the blob's logged reference count, computed
// under the same lock that serializes every refcount mutation, so replay
// can apply it absolutely.
func (s *Store) moveOne(id blobstore.ID, cands map[uint32]bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return 0, s.failure
	}
	e, ok := s.blobs[id]
	if !ok {
		e, ok = s.limbo[id]
	}
	if !ok || !cands[e.seg] {
		// Fully released and flushed, or already relocated: nothing to move.
		return 0, nil
	}
	f := s.segs[e.seg]
	loggedRefs := e.refs + s.pendingCountLocked(id)
	if loggedRefs <= 0 {
		err := fmt.Errorf("diskstore: compaction: blob %s has logged refcount %d", id, loggedRefs)
		s.fail(err)
		return 0, err
	}
	var refs4 [recMoveRefsLen]byte
	binary.LittleEndian.PutUint32(refs4[:], uint32(loggedRefs))
	crc := crc32.Checksum([]byte{recMove}, crcTable)
	crc = crc32.Update(crc, crcTable, refs4[:])
	h := sha256.New()
	src := io.NewSectionReader(f, e.off, e.size)
	buf := chunkpool.Get()
	for read := int64(0); read < e.size; {
		n := int64(len(*buf))
		if e.size-read < n {
			n = e.size - read
		}
		if _, rerr := io.ReadFull(src, (*buf)[:n]); rerr != nil {
			chunkpool.Put(buf)
			err := fmt.Errorf("diskstore: compaction: segment %d: blob %s unreadable (%v): %w", e.seg, id, rerr, blobstore.ErrCorrupt)
			s.fail(err)
			return 0, err
		}
		crc = crc32.Update(crc, crcTable, (*buf)[:n])
		h.Write((*buf)[:n])
		read += n
	}
	chunkpool.Put(buf)
	var got blobstore.ID
	h.Sum(got[:0])
	if got != id {
		err := fmt.Errorf("diskstore: compaction: segment %d: blob %s content hash mismatch: %w", e.seg, id, blobstore.ErrCorrupt)
		s.fail(err)
		return 0, err
	}
	payload := io.MultiReader(bytes.NewReader(refs4[:]), io.NewSectionReader(f, e.off, e.size))
	seg, off, err := s.appendStreamLocked(recMove, crc, e.size+recMoveRefsLen, payload)
	if err != nil {
		s.fail(err)
		return 0, err
	}
	s.liveSeg[e.seg] -= e.footprint()
	e.seg, e.off, e.kind = seg, off+recMoveRefsLen, recMove
	s.liveSeg[seg] += e.footprint()
	s.dirty = true
	return 1, nil
}

// commitCatalog fsyncs every segment with unsynced appends and commits an
// index of the current catalog — including limbo entries, and with each
// blob's QUEUED releases folded back into its reference count. This is the
// one index commit that runs with releases possibly still queued (Sync
// always logs them first), and it must not make them durable: a reopen
// from this index sees the pre-release counts, resurrecting the released
// blobs exactly as the deferred-release contract promises.
func (s *Store) commitCatalog() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	var st blobstore.SyncStats
	if err := s.syncSegmentsLocked(&st); err != nil {
		return err
	}
	pend := make(map[blobstore.ID]int, len(s.pending))
	for _, id := range s.pending {
		pend[id]++
	}
	entries := make([]indexEntry, 0, len(s.blobs)+len(s.limbo))
	for id, e := range s.blobs {
		entries = append(entries, indexEntry{id: id, seg: e.seg, off: e.off, size: e.size, refs: e.refs + pend[id], kind: e.kind})
	}
	for id, e := range s.limbo {
		entries = append(entries, indexEntry{id: id, seg: e.seg, off: e.off, size: e.size, refs: pend[id], kind: e.kind})
	}
	img := encodeIndex(s.active, s.lens[s.active], entries)
	if err := atomicfile.Write(filepath.Join(s.dir, "index"), img); err != nil {
		err = fmt.Errorf("diskstore: commit index: %w", err)
		s.fail(err)
		return err
	}
	// The committed image differs from the in-memory catalog exactly when
	// releases are still queued; they are what the next Sync must flush.
	s.dirty = len(s.pending) > 0
	return nil
}

// DiskStats reports the store's physical footprint next to its live bytes.
type DiskStats struct {
	// LiveBytes is the payload bytes of live blobs (what TotalBytes reports).
	LiveBytes int64
	// DiskBytes is the segment bytes actually on disk: every open segment
	// plus evacuated files still pinned by readers. The index file is not
	// included.
	DiskBytes int64
	// DeadBytes is the record bytes no live blob accounts for — what
	// compaction can eventually reclaim.
	DeadBytes int64
	// Segments is the number of open (non-retired) segment files.
	Segments int
	// SegmentsCompacted and BytesReclaimed are cumulative since Open.
	SegmentsCompacted int64
	BytesReclaimed    int64
}

// DiskStats returns the store's physical-footprint accounting.
func (s *Store) DiskStats() DiskStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := DiskStats{
		LiveBytes:         s.bytes,
		DeadBytes:         s.deadBytesLocked(),
		Segments:          len(s.segs),
		SegmentsCompacted: s.segsCompacted.Load(),
		BytesReclaimed:    s.bytesReclaimed.Load(),
	}
	for _, l := range s.lens {
		d.DiskBytes += l
	}
	for _, r := range s.retiring {
		d.DiskBytes += r.size
	}
	return d
}
