//go:build !unix

package diskstore

// lockDir is a no-op on platforms without flock; single-instance use is
// the caller's responsibility there.
func lockDir(dir string) (func() error, error) {
	return func() error { return nil }, nil
}
