package diskstore_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/blobstore/diskstore"
	"expelliarmus/internal/recframe"
)

// segFiles counts seg-*.log files in dir.
func segFiles(t *testing.T, dir string) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// churnStore fills a store with blobs spanning many tiny segments, keeping
// every 4th (with an extra reference, so absolute refcount replay is
// observable) and releasing the rest. Returns the kept IDs and their data.
func churnStore(t *testing.T, s *diskstore.Store) ([]blobstore.ID, [][]byte) {
	t.Helper()
	var keep []blobstore.ID
	var keepData [][]byte
	for i := 0; i < 48; i++ {
		data := bytes.Repeat([]byte(fmt.Sprintf("compact-blob-%03d|", i)), 8)
		id, stored := s.Put(data)
		if !stored {
			t.Fatalf("blob %d not stored", i)
		}
		if i%4 == 0 {
			if err := s.AddRef(id); err != nil {
				t.Fatal(err)
			}
			keep = append(keep, id)
			keepData = append(keepData, data)
		}
	}
	for i := 0; i < 48; i++ {
		if i%4 == 0 {
			continue
		}
		data := bytes.Repeat([]byte(fmt.Sprintf("compact-blob-%03d|", i)), 8)
		if err := s.Release(blobstore.Sum(data)); err != nil {
			t.Fatal(err)
		}
	}
	return keep, keepData
}

func verifyKeep(t *testing.T, s *diskstore.Store, keep []blobstore.ID, keepData [][]byte) {
	t.Helper()
	for i, id := range keep {
		got, ok := s.Get(id)
		if !ok {
			t.Fatalf("kept blob %d missing", i)
		}
		if !bytes.Equal(got, keepData[i]) {
			t.Fatalf("kept blob %d not byte-identical", i)
		}
		if refs := s.Refs(id); refs != 2 {
			t.Fatalf("kept blob %d has %d refs, want 2", i, refs)
		}
	}
	if s.Len() != len(keep) {
		t.Fatalf("store holds %d blobs, want %d", s.Len(), len(keep))
	}
}

// TestCompactReclaimsDeadSegments drives an explicit Compact over a store
// whose sealed segments are mostly garbage and checks the files actually
// shrink from disk while every survivor stays byte-identical — including
// across a reopen from the switched index.
func TestCompactReclaimsDeadSegments(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 512, CompactDeadRatio: -1})
	keep, keepData := churnStore(t, s)
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	before := segFiles(t, dir)
	d := s.DiskStats()
	if d.DeadBytes == 0 {
		t.Fatal("no dead bytes after releasing most blobs")
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if st.SegmentsCompacted == 0 || st.BytesReclaimed == 0 || st.BlobsMoved == 0 {
		t.Fatalf("compact reclaimed nothing: %+v", st)
	}
	if after := segFiles(t, dir); after >= before {
		t.Fatalf("segment files did not shrink: %d -> %d", before, after)
	}
	d2 := s.DiskStats()
	if d2.DiskBytes >= d.DiskBytes {
		t.Fatalf("disk bytes did not shrink: %d -> %d", d.DiskBytes, d2.DiskBytes)
	}
	if d2.LiveBytes != d.LiveBytes {
		t.Fatalf("live bytes changed across compact: %d -> %d", d.LiveBytes, d2.LiveBytes)
	}
	verifyKeep(t, s, keep, keepData)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = open(t, dir, diskstore.Options{MaxSegmentBytes: 512})
	defer s.Close()
	if rec := s.Recovery(); rec.ReplayedRecords != 0 || rec.IndexRebuilt || rec.Torn() {
		t.Fatalf("reopen after clean compact+close had to recover: %+v", rec)
	}
	verifyKeep(t, s, keep, keepData)
}

// TestSyncAutoCompacts checks the dead-ratio trigger: with the threshold
// at its default, a Sync that flushes enough releases compacts in the same
// call and reports it in its stats.
func TestSyncAutoCompacts(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 512})
	defer s.Close()
	keep, keepData := churnStore(t, s)
	st, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsCompacted == 0 || st.BytesReclaimed == 0 {
		t.Fatalf("sync did not auto-compact: %+v", st)
	}
	verifyKeep(t, s, keep, keepData)
}

// TestCompactDisabledRatioNeverAuto checks that a negative ratio turns the
// automatic trigger off: syncs leave the garbage in place, and the dead
// bytes keep being reported.
func TestCompactDisabledRatioNeverAuto(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 512, CompactDeadRatio: -1})
	defer s.Close()
	churnStore(t, s)
	st, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsCompacted != 0 {
		t.Fatalf("sync compacted with the trigger disabled: %+v", st)
	}
	if st.DeadBytes == 0 {
		t.Fatal("sync stats report no dead bytes despite released blobs")
	}
}

// TestCompactKillMatrix crashes a compaction at each phase boundary and
// checks reopen lands on exactly one consistent view: every kept blob
// byte-identical with its exact reference count, every released blob gone,
// and the only drift being orphaned bytes on disk (never missing data).
func TestCompactKillMatrix(t *testing.T) {
	points := []struct {
		name  string
		point diskstore.CompactKillPoint
	}{
		{"MidRewrite", diskstore.KillMidRewrite},
		{"AfterRewrite", diskstore.KillAfterRewrite},
		{"AfterSwitch", diskstore.KillAfterSwitch},
	}
	for _, tc := range points {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, diskstore.Options{MaxSegmentBytes: 512, CompactDeadRatio: -1})
			keep, keepData := churnStore(t, s)
			if _, err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			boom := fmt.Errorf("injected crash")
			s.Kill = func(p diskstore.CompactKillPoint) error {
				if p == tc.point {
					return boom
				}
				return nil
			}
			if _, err := s.Compact(); err == nil {
				t.Fatal("compact survived its injected crash")
			}
			if err := s.Abandon(); err != nil {
				t.Fatal(err)
			}
			s = open(t, dir, diskstore.Options{MaxSegmentBytes: 512, CompactDeadRatio: -1})
			defer s.Close()
			rec := s.Recovery()
			if rec.IndexRebuilt {
				t.Fatalf("recovery rebuilt the index: %+v", rec)
			}
			if tc.point == diskstore.KillAfterSwitch && rec.SegmentsSwept == 0 {
				t.Fatalf("post-switch crash left no unreferenced segments to sweep: %+v", rec)
			}
			verifyKeep(t, s, keep, keepData)
			// Consistency must survive the next full cycle too: flushing,
			// compacting and reopening on top of the crash-recovered state.
			if _, err := s.Compact(); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
			verifyKeep(t, s, keep, keepData)
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := open(t, dir, diskstore.Options{MaxSegmentBytes: 512})
			defer s2.Close()
			verifyKeep(t, s2, keep, keepData)
		})
	}
}

// TestReaderPinsRetiringSegment opens a streaming reader, compacts the
// segment out from under it, and checks the evacuated file outlives its
// catalog death exactly until the reader closes.
func TestReaderPinsRetiringSegment(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 512, CompactDeadRatio: -1})
	defer s.Close()
	keep, keepData := churnStore(t, s)
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	rc, _, err := s.Open(keep[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// The reader's segment was evacuated but must still be on disk: file
	// count exceeds what the store accounts as open segments.
	if files, segs := segFiles(t, dir), s.DiskStats().Segments; files <= segs {
		t.Fatalf("no retiring segment pinned: %d files, %d open segments", files, segs)
	}
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read from retiring segment: %v", err)
	}
	if !bytes.Equal(got, keepData[0]) {
		t.Fatal("retiring-segment read not byte-identical")
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if files, segs := segFiles(t, dir), s.DiskStats().Segments; files != segs {
		t.Fatalf("retired file not deleted at last reader close: %d files, %d open segments", files, segs)
	}
	verifyKeep(t, s, keep, keepData)
}

// TestUnmarkedReleaseTailDropped simulates a Sync that died between
// appending its release batch and its commit marker: reopen must drop the
// whole batch (resurrecting the blobs — the safe direction) and truncate
// it off the log so no later marker can commit it.
func TestUnmarkedReleaseTailDropped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{})
	data := []byte("marker-discipline")
	id, _ := s.Put(data)
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Abandon(); err != nil {
		t.Fatal(err)
	}
	// Forge the torn batch: a bare release record with no marker after it.
	seg := lastSegment(t, dir)
	before := fileSize(t, seg)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	rec := recframe.Append(nil, 3 /* recRelease */, id[:])
	if _, err := f.Write(rec); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s = open(t, dir, diskstore.Options{})
	defer s.Close()
	rec2 := s.Recovery()
	if rec2.DroppedReleases != 1 {
		t.Fatalf("DroppedReleases = %d, want 1", rec2.DroppedReleases)
	}
	if !s.Has(id) {
		t.Fatal("blob of an uncommitted release batch did not resurrect")
	}
	if got := fileSize(t, seg); got != before {
		t.Fatalf("unmarked batch not truncated: %d bytes, want %d", got, before)
	}
}

// TestCompactUnderTraffic races explicit compactions against live puts,
// reads, releases and syncs. Run under -race in CI; the assertions here
// are pure correctness — every blob that survives reads back
// byte-identical through both Get and a streamed Open.
func TestCompactUnderTraffic(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, diskstore.Options{MaxSegmentBytes: 2048})
	defer s.Close()
	const workers, rounds = 4, 120
	var wg sync.WaitGroup
	errc := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []blobstore.ID
			var data [][]byte
			for i := 0; i < rounds; i++ {
				d := bytes.Repeat([]byte(fmt.Sprintf("traffic-%d-%03d|", w, i)), 6)
				id, _ := s.Put(d)
				mine = append(mine, id)
				data = append(data, d)
				// Read back an earlier blob through the streaming path
				// while compaction may be moving it. Only even indices:
				// odd ones get released below.
				j := (i / 2) * 2
				rc, _, err := s.Open(mine[j])
				if err != nil {
					errc <- fmt.Errorf("worker %d open: %w", w, err)
					return
				}
				got, err := io.ReadAll(rc)
				rc.Close()
				if err != nil || !bytes.Equal(got, data[j]) {
					errc <- fmt.Errorf("worker %d round %d: streamed read diverged (%v)", w, i, err)
					return
				}
				// Churn: release every odd-index blob right after publishing.
				if i%2 == 1 {
					if err := s.Release(mine[i]); err != nil {
						errc <- fmt.Errorf("worker %d release: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			if _, err := s.Sync(); err != nil {
				errc <- fmt.Errorf("sync: %w", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			if _, err := s.Compact(); err != nil {
				errc <- fmt.Errorf("compact: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("store failed under traffic: %v", err)
	}
}
