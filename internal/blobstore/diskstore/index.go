package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"expelliarmus/internal/blobstore"
)

// The index is the committed catalog of live blobs: for every blob, where
// its bytes live (segment, offset, length), its reference count and its
// record kind, plus the durability watermark — how far into the newest
// segment the index's view extends. Everything a segment holds at or
// beyond the watermark is replayed on open; everything below it is
// covered by the index.
//
// Wire format (v2 — v1 lacked the per-entry kind and parses as an error,
// which sends Open down the full-replay path):
//
//	offset 0: "EXPIDX2\n"
//	body:     uvarint watermarkSeg   (0 = no segment written yet)
//	          uvarint watermarkOff
//	          256 shard sections, keyed by the blob ID's leading byte —
//	          the same shard key the in-memory store stripes its locks on:
//	            uvarint entryCount
//	            entries sorted by ID:
//	              id (32) | uvarint seg | uvarint off | uvarint len |
//	              uvarint refs | uvarint kind (0 = put record, 1 = move)
//	trailer:  crc32c of body (4, LE)
//
// The kind is what makes per-segment live/dead byte ratios derivable from
// the index alone: an entry's on-disk footprint is header + payload for a
// put record but carries an extra reference-count prefix for a move, so
// summing footprints per segment and subtracting from the file length
// yields each segment's dead bytes — the compactor's scoring input —
// without reading a single record.
//
// The file is only ever replaced atomically (write temp + rename), never
// updated in place, so a reader sees either the previous or the next
// committed image. The trailing checksum guards against a torn rename on
// filesystems without atomic-rename guarantees; a mismatch makes Open fall
// back to a full log replay rather than trusting a half-written catalog.
var indexMagic = []byte("EXPIDX2\n")

// indexShards is the shard-section count: one per possible leading hash
// byte. (The in-memory store folds this to 64 lock stripes; the file keeps
// all 256 so the grouping is exact, not modular.)
const indexShards = 256

// indexEntry is one blob's committed location, reference count and record
// kind (recPut or recMove).
type indexEntry struct {
	id   blobstore.ID
	seg  uint32
	off  int64
	size int64
	refs int
	kind byte
}

// Index encodings of the two record kinds an entry can point at.
const (
	idxKindPut  = 0
	idxKindMove = 1
)

func encodeKind(kind byte) uint64 {
	if kind == recMove {
		return idxKindMove
	}
	return idxKindPut
}

// encodeIndex serialises the watermark and entries. Entries may be in any
// order; the encoder groups them by shard and sorts within each shard so
// the image is deterministic for identical state.
func encodeIndex(watermarkSeg uint32, watermarkOff int64, entries []indexEntry) []byte {
	shards := make([][]indexEntry, indexShards)
	for _, e := range entries {
		s := int(e.id[0])
		shards[s] = append(shards[s], e)
	}
	var body []byte
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) { body = append(body, tmp[:binary.PutUvarint(tmp[:], v)]...) }
	putU(uint64(watermarkSeg))
	putU(uint64(watermarkOff))
	for _, sh := range shards {
		sort.Slice(sh, func(i, j int) bool { return string(sh[i].id[:]) < string(sh[j].id[:]) })
		putU(uint64(len(sh)))
		for _, e := range sh {
			body = append(body, e.id[:]...)
			putU(uint64(e.seg))
			putU(uint64(e.off))
			putU(uint64(e.size))
			putU(uint64(e.refs))
			putU(encodeKind(e.kind))
		}
	}
	out := make([]byte, 0, len(indexMagic)+len(body)+4)
	out = append(out, indexMagic...)
	out = append(out, body...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(body, crcTable))
	return append(out, crcBuf[:]...)
}

// parseIndex decodes an index image. Any structural damage — bad magic,
// truncation, checksum mismatch, counts exceeding what the bytes could
// hold — returns an error; the caller treats that as "no usable index" and
// rebuilds from the segment log.
func parseIndex(b []byte) (watermarkSeg uint32, watermarkOff int64, entries []indexEntry, err error) {
	if len(b) < len(indexMagic)+4 || string(b[:len(indexMagic)]) != string(indexMagic) {
		return 0, 0, nil, fmt.Errorf("diskstore: bad index magic")
	}
	body := b[len(indexMagic) : len(b)-4]
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crcTable) != want {
		return 0, 0, nil, fmt.Errorf("diskstore: index checksum mismatch")
	}
	pos := 0
	getU := func() (uint64, error) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("diskstore: truncated index varint")
		}
		pos += n
		return v, nil
	}
	wseg, err := getU()
	if err != nil {
		return 0, 0, nil, err
	}
	woff, err := getU()
	if err != nil {
		return 0, 0, nil, err
	}
	for shard := 0; shard < indexShards; shard++ {
		count, err := getU()
		if err != nil {
			return 0, 0, nil, err
		}
		// An entry is at least 32 id bytes + 5 one-byte varints; a count
		// claiming more than the remaining bytes could hold is corruption,
		// and bounding it here keeps hostile counts from forcing huge
		// allocations (the decoders are fuzz targets).
		if count > uint64(len(body)-pos)/37 {
			return 0, 0, nil, fmt.Errorf("diskstore: index shard %d count %d exceeds remaining bytes", shard, count)
		}
		var prev blobstore.ID
		for i := uint64(0); i < count; i++ {
			var e indexEntry
			if len(body)-pos < len(e.id) {
				return 0, 0, nil, fmt.Errorf("diskstore: truncated index entry id")
			}
			copy(e.id[:], body[pos:])
			pos += len(e.id)
			if int(e.id[0]) != shard {
				return 0, 0, nil, fmt.Errorf("diskstore: index entry %s filed under shard %d", e.id, shard)
			}
			// The format is canonical: strictly ascending IDs per shard.
			// Out-of-order or duplicate entries mean the file was not
			// produced by the encoder.
			if i > 0 && string(e.id[:]) <= string(prev[:]) {
				return 0, 0, nil, fmt.Errorf("diskstore: index shard %d entries out of order", shard)
			}
			prev = e.id
			seg, err := getU()
			if err != nil {
				return 0, 0, nil, err
			}
			off, err := getU()
			if err != nil {
				return 0, 0, nil, err
			}
			size, err := getU()
			if err != nil {
				return 0, 0, nil, err
			}
			refs, err := getU()
			if err != nil {
				return 0, 0, nil, err
			}
			if refs == 0 {
				return 0, 0, nil, fmt.Errorf("diskstore: index entry %s has zero refs", e.id)
			}
			kind, err := getU()
			if err != nil {
				return 0, 0, nil, err
			}
			switch kind {
			case idxKindPut:
				e.kind = recPut
			case idxKindMove:
				e.kind = recMove
			default:
				return 0, 0, nil, fmt.Errorf("diskstore: index entry %s has unknown kind %d", e.id, kind)
			}
			e.seg, e.off, e.size, e.refs = uint32(seg), int64(off), int64(size), int(refs)
			entries = append(entries, e)
		}
	}
	if pos != len(body) {
		return 0, 0, nil, fmt.Errorf("diskstore: %d trailing index bytes", len(body)-pos)
	}
	return uint32(wseg), int64(woff), entries, nil
}
