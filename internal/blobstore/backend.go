package blobstore

import (
	"errors"
	"io"
)

// ErrNotFound reports that no live blob with the requested ID exists.
// Open returns it (wrapped) for absent blobs, so callers can tell a
// missing blob from one whose stored bytes can no longer be served.
var ErrNotFound = errors.New("blob not found")

// ErrCorrupt reports that a blob exists in the catalog but its stored
// bytes cannot be served faithfully — on-disk damage, not absence.
// Backends wrap it in the errors they return for such blobs; callers
// must never treat it as not-found (the data is there, but broken, and
// reporting it absent would silently turn durable data into missing
// data).
var ErrCorrupt = errors.New("blob corrupt")

// Backend is the storage contract behind the repository's content-addressed
// blob layer. Two implementations exist: the in-memory sharded Store in
// this package, and the append-only on-disk store in
// internal/blobstore/diskstore. Both are exercised by the shared
// conformance suite in internal/blobstore/blobstoretest, which pins the
// exact put/get/ref-count/GC semantics a new backend must reproduce.
//
// All methods must be safe for concurrent use. Snapshot must serialise the
// live blobs and reference counts in the deterministic EXPBLB1 format
// produced by (*Store).Snapshot, so repository snapshots are byte-identical
// regardless of which backend captured them and Load can always restore
// them into memory.
type Backend interface {
	// Put stores data (if not already present) and takes one reference on
	// it, returning the blob ID and whether the content was newly stored.
	// The store never aliases data: the caller may reuse or mutate the
	// slice after Put returns. Implementations keep Put a thin adapter
	// over PutReader so both entry points share one streaming core.
	Put(data []byte) (ID, bool)
	// PutReader streams r into the store, hashing as it reads, and takes
	// one reference on the resulting blob. It returns the blob ID, the
	// number of bytes consumed, and whether the content was newly stored.
	// If r fails mid-stream the store is left unchanged and the read error
	// is returned. Peak memory is bounded by the chunk size (plus a small
	// spool for the on-disk backend), not the blob size.
	PutReader(r io.Reader) (ID, int64, bool, error)
	// Get returns a copy of the blob's contents; the caller owns the
	// returned slice and may mutate it freely. Implementations keep Get a
	// thin adapter over Open.
	Get(id ID) ([]byte, bool)
	// Open returns a reader over the blob's contents and its size. The
	// returned reader also implements io.ReaderAt for random access. It
	// never materializes the whole blob: the memory backend serves a
	// zero-copy view of its immutable stored bytes, and the disk backend
	// serves straight from the segment offset (spot-verifying the record
	// header on open, and verifying the full record checksum incrementally
	// as a sequential read crosses it). An absent blob reports an error
	// wrapping ErrNotFound; a blob the backend can no longer serve
	// faithfully (e.g. an on-disk record whose header no longer matches
	// the catalog) reports an error wrapping ErrCorrupt — the two must
	// never be conflated. An open reader stays readable after the blob is
	// released — and, for backends that compact, after the blob's bytes
	// are moved: the reader pins its underlying storage until closed — but
	// is valid only until the backend is closed. Close never fails;
	// callers must still call it, since a reader may hold a pin that
	// defers space reclamation until released.
	Open(id ID) (io.ReadCloser, int64, error)
	// Size returns the length of the blob without copying it.
	Size(id ID) (int64, bool)
	// Has reports whether the blob exists.
	Has(id ID) bool
	// AddRef takes an additional reference on an existing blob.
	AddRef(id ID) error
	// Refs returns the current reference count, or zero if absent.
	Refs(id ID) int
	// Release drops one reference; at zero the blob is deleted and its
	// bytes reclaimed from the live total.
	Release(id ID) error
	// Len returns the number of distinct live blobs.
	Len() int
	// TotalBytes returns the number of unique live bytes stored.
	TotalBytes() int64
	// Stats reports cumulative put and dedup-hit counts since the backend
	// was opened (counters are not persisted across reopen).
	Stats() (puts, hits int64)
	// IDs returns all live blob IDs in lexicographic order.
	IDs() []ID
	// Snapshot serialises live blobs and reference counts in the
	// deterministic EXPBLB1 format. A backend that can no longer read a
	// live blob faithfully (e.g. post-hoc disk damage) must return an
	// error rather than serialise wrong or partial content.
	Snapshot() ([]byte, error)
}

// SyncStats reports what one durable sync wrote. For the disk backend a
// sync is incremental: only segments with bytes appended since the
// previous sync are flushed, so after a quiet period Segments and
// SegmentBytes are zero even when the store holds gigabytes.
type SyncStats struct {
	// Segments counts segment flushes (fsync calls on segment files). In a
	// repository-level sync the two phases (SyncData, then Sync) may each
	// flush the same file — once for new blob bytes, once for the release
	// records appended between the phases — so a combined report can count
	// one file twice; SegmentBytes never double-counts a byte.
	Segments int
	// SegmentBytes is the number of newly appended segment bytes made
	// durable by this sync (not the total store size).
	SegmentBytes int64
	// IndexBytes is the size of the index image committed by this sync.
	IndexBytes int64
	// SegmentsCompacted and BytesReclaimed report the segment compaction
	// this sync triggered, if any: segments evacuated and their file bytes
	// freed (a reclaimed file pinned by an open reader is freed when the
	// reader closes, but counts here).
	SegmentsCompacted int
	BytesReclaimed    int64
	// DeadBytes is the garbage remaining after this sync: record bytes in
	// segment files that no live blob accounts for. Nonzero is normal —
	// compaction runs only when a segment's dead ratio crosses the
	// threshold.
	DeadBytes int64
}

// CompactStats reports what one on-demand compaction reclaimed.
type CompactStats struct {
	// SegmentsCompacted counts segments evacuated and retired.
	SegmentsCompacted int
	// BytesReclaimed is the segment-file bytes those retirements freed
	// (files pinned by open readers are freed at reader close, but count
	// here).
	BytesReclaimed int64
	// BlobsMoved counts surviving records rewritten into fresh segments.
	BlobsMoved int
}

// Compactor is implemented by backends that can reclaim the space of
// released blobs on demand. Callers feature-test with a type assertion;
// the in-memory store implements it as a no-op (it holds no garbage — a
// release frees the bytes immediately).
type Compactor interface {
	Compact() (CompactStats, error)
}

// Durable is implemented by backends whose state lives outside process
// memory. The in-memory Store is not Durable; callers feature-test with a
// type assertion.
//
// The interface is two-phase so a repository can order blob durability
// around its own metadata commit: SyncData makes all preceding Put/AddRef
// operations durable (new blobs may then be referenced by committed
// metadata), Sync additionally makes Release operations and the backend's
// own catalog durable (releases must become durable only after the
// metadata that stopped referencing the blobs — see the diskstore package
// comment). Close syncs and releases file handles.
//
// Mutations cannot report I/O failure through the Backend interface, so a
// Durable backend keeps the first failure sticky and exposes it via Err;
// callers check it after writing blobs and before committing metadata
// that references them.
type Durable interface {
	Backend
	SyncData() (SyncStats, error)
	Sync() (SyncStats, error)
	Close() error
	Err() error
}

// Backend conformance of the in-memory store.
var _ Backend = (*Store)(nil)
