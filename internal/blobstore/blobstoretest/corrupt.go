package blobstoretest

import (
	"errors"
	"testing"

	"expelliarmus/internal/blobstore"
)

// RunOpenCorrupt pins the corruption half of the Open contract: once a
// stored blob's on-media record has been damaged, Open must fail with an
// error wrapping blobstore.ErrCorrupt — and must NOT report the blob as
// absent, because callers route the two cases very differently (absence
// is a retryable 404, corruption is an integrity incident that freezes
// the store). The caller supplies the damage: corrupt receives the blob's
// ID and original bytes and must break the stored record in place, with
// the backend still open. Backends with no externally reachable media
// (the in-memory store) have nothing to corrupt and skip this case.
func RunOpenCorrupt(t *testing.T, b blobstore.Backend, corrupt func(t *testing.T, id blobstore.ID, data []byte)) {
	data := patternBlob(96 * 1024)
	id, stored := b.Put(data)
	if !stored {
		t.Fatalf("Put reported duplicate in a fresh store")
	}
	corrupt(t, id, data)
	rc, _, err := b.Open(id)
	if err == nil {
		rc.Close()
		t.Fatalf("Open returned a reader over a corrupt record")
	}
	if !errors.Is(err, blobstore.ErrCorrupt) {
		t.Fatalf("Open(corrupt) = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, blobstore.ErrNotFound) {
		t.Fatalf("Open(corrupt) conflates corruption with absence: %v", err)
	}
}
