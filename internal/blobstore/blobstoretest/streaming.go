package blobstoretest

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"expelliarmus/internal/blobstore"
)

// runStreaming registers the streaming and aliasing properties of the
// Backend contract; called from Run so every backend gets them.
func runStreaming(t *testing.T, newBackend Factory) {
	t.Run("NoAliasing", func(t *testing.T) { testNoAliasing(t, newBackend(t)) })
	t.Run("StreamRoundTrip", func(t *testing.T) { testStreamRoundTrip(t, newBackend(t)) })
	t.Run("StreamDedup", func(t *testing.T) { testStreamDedup(t, newBackend(t)) })
	t.Run("StreamPutError", func(t *testing.T) { testStreamPutError(t, newBackend(t)) })
	t.Run("StreamLargeSpill", func(t *testing.T) { testStreamLargeSpill(t, newBackend(t)) })
	t.Run("StreamPartialReadEarlyClose", func(t *testing.T) { testStreamEarlyClose(t, newBackend(t)) })
	t.Run("StreamReadAfterRelease", func(t *testing.T) { testStreamReadAfterRelease(t, newBackend(t)) })
	t.Run("StreamConcurrentGets", func(t *testing.T) { testStreamConcurrent(t, newBackend(t)) })
}

// oneWayReader hides every method but Read, so backends cannot shortcut
// through Seek/WriteTo/Bytes — the stream really is consumed as a stream.
type oneWayReader struct{ r io.Reader }

func (o oneWayReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// patternBlob builds a deterministic, non-repeating payload of n bytes.
func patternBlob(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + i>>9 + 13)
	}
	return out
}

// testNoAliasing pins the ownership contract: the store must not retain
// the caller's Put slice, and Get must hand out bytes the caller may
// scribble on freely.
func testNoAliasing(t *testing.T, b blobstore.Backend) {
	orig := []byte("immutable once stored")
	data := append([]byte(nil), orig...)
	id, _ := b.Put(data)
	for i := range data { // caller reuses its buffer
		data[i] = 0xEE
	}
	got, ok := b.Get(id)
	if !ok || !bytes.Equal(got, orig) {
		t.Fatalf("mutating the Put input corrupted the stored blob: %q", got)
	}
	for i := range got { // caller scribbles on the returned copy
		got[i] = 0xAA
	}
	again, ok := b.Get(id)
	if !ok || !bytes.Equal(again, orig) {
		t.Fatalf("mutating a Get result corrupted the stored blob: %q", again)
	}
}

func testStreamRoundTrip(t *testing.T, b blobstore.Backend) {
	data := patternBlob(10 * 1024)
	id, n, stored, err := b.PutReader(oneWayReader{bytes.NewReader(data)})
	if err != nil {
		t.Fatalf("PutReader: %v", err)
	}
	if !stored || n != int64(len(data)) || id != blobstore.Sum(data) {
		t.Fatalf("PutReader = (%s, %d, %v), want fresh store of %d bytes", id, n, stored, len(data))
	}
	rc, size, err := b.Open(id)
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Open = %v, size %d; want nil, %d", err, size, len(data))
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("streamed read differs from input (err=%v)", err)
	}
	// The contract requires random access on the returned reader.
	ra, ok := rc.(io.ReaderAt)
	if !ok {
		t.Fatalf("Open reader does not implement io.ReaderAt")
	}
	mid := make([]byte, 100)
	if _, err := ra.ReadAt(mid, 5000); err != nil || !bytes.Equal(mid, data[5000:5100]) {
		t.Fatalf("ReadAt mid-blob differs (err=%v)", err)
	}
}

func testStreamDedup(t *testing.T, b blobstore.Backend) {
	data := patternBlob(4096)
	id1, _, stored1, err1 := b.PutReader(oneWayReader{bytes.NewReader(data)})
	id2, n2, stored2, err2 := b.PutReader(oneWayReader{bytes.NewReader(data)})
	if err1 != nil || err2 != nil {
		t.Fatalf("PutReader errors: %v, %v", err1, err2)
	}
	if !stored1 || stored2 || id1 != id2 || n2 != int64(len(data)) {
		t.Fatalf("dedup: stored=(%v,%v) ids equal=%v", stored1, stored2, id1 == id2)
	}
	if got := b.Refs(id1); got != 2 {
		t.Fatalf("Refs after double PutReader = %d, want 2", got)
	}
	if puts, hits := b.Stats(); puts != 2 || hits != 1 {
		t.Fatalf("Stats = %d puts, %d hits; want 2, 1", puts, hits)
	}
}

// errAfter yields n pattern bytes, then fails: a source dying mid-upload.
type errAfter struct{ left int }

func (e *errAfter) Read(p []byte) (int, error) {
	if e.left <= 0 {
		return 0, errors.New("source torn away")
	}
	n := len(p)
	if n > e.left {
		n = e.left
	}
	for i := 0; i < n; i++ {
		p[i] = byte(i)
	}
	e.left -= n
	return n, nil
}

func testStreamPutError(t *testing.T, b blobstore.Backend) {
	before, beforeBytes := b.Len(), b.TotalBytes()
	if _, _, _, err := b.PutReader(&errAfter{left: 2 << 20}); err == nil {
		t.Fatalf("PutReader with a failing source did not error")
	}
	if b.Len() != before || b.TotalBytes() != beforeBytes {
		t.Fatalf("failed PutReader changed the store: %d blobs, %d bytes", b.Len(), b.TotalBytes())
	}
}

// testStreamLargeSpill pushes a blob past any in-memory spooling
// threshold (the disk backend spills puts over 1 MiB to a spool file).
func testStreamLargeSpill(t *testing.T, b blobstore.Backend) {
	data := patternBlob(3<<20 + 137)
	id, n, stored, err := b.PutReader(oneWayReader{bytes.NewReader(data)})
	if err != nil || !stored || n != int64(len(data)) {
		t.Fatalf("PutReader(3MiB) = (%d, %v, %v)", n, stored, err)
	}
	rc, size, err := b.Open(id)
	if err != nil || size != int64(len(data)) {
		t.Fatalf("Open(3MiB) = %v, %d", err, size)
	}
	defer rc.Close()
	got, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("3MiB round trip differs (err=%v)", err)
	}
}

// testStreamEarlyClose opens and abandons many readers mid-blob; leaks of
// file handles or goroutines would fail this loop (or the -race leg) long
// before the iteration count runs out.
func testStreamEarlyClose(t *testing.T, b blobstore.Backend) {
	data := patternBlob(256 * 1024)
	id, _ := b.Put(data)
	for i := 0; i < 500; i++ {
		rc, _, err := b.Open(id)
		if err != nil {
			t.Fatalf("Open failed on iteration %d: %v", i, err)
		}
		buf := make([]byte, 777)
		if _, err := io.ReadFull(rc, buf); err != nil {
			t.Fatalf("partial read %d: %v", i, err)
		}
		if !bytes.Equal(buf, data[:777]) {
			t.Fatalf("partial read %d returned wrong bytes", i)
		}
		if err := rc.Close(); err != nil {
			t.Fatalf("early Close %d: %v", i, err)
		}
	}
	// The store must still serve complete reads afterwards.
	if got, ok := b.Get(id); !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get after early-close churn failed")
	}
}

// testStreamReadAfterRelease pins the lifetime contract: a reader opened
// before the blob's last Release keeps working (the repository hands
// lazily-backed images to callers that outlive the catalog entry).
func testStreamReadAfterRelease(t *testing.T, b blobstore.Backend) {
	data := patternBlob(64 * 1024)
	id, _ := b.Put(data)
	rc, _, err := b.Open(id)
	if err != nil {
		t.Fatalf("Open failed: %v", err)
	}
	defer rc.Close()
	if err := b.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if b.Has(id) {
		t.Fatalf("blob survived its last Release")
	}
	got, err := io.ReadAll(rc)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read after release differs (err=%v)", err)
	}
}

func testStreamConcurrent(t *testing.T, b blobstore.Backend) {
	data := patternBlob(512 * 1024)
	id, _ := b.Put(data)
	const readers = 8
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rc, size, err := b.Open(id)
			if err != nil {
				t.Errorf("reader %d: Open failed: %v", w, err)
				return
			}
			defer rc.Close()
			// Interleave sequential reads with random access on the same
			// blob from sibling goroutines.
			if ra, ok := rc.(io.ReaderAt); ok && w%2 == 0 {
				off := int64(w * 1000)
				buf := make([]byte, 333)
				if _, err := ra.ReadAt(buf, off); err != nil || !bytes.Equal(buf, data[off:off+333]) {
					t.Errorf("reader %d: ReadAt differs (err=%v)", w, err)
					return
				}
			}
			got, err := io.ReadAll(rc)
			if err != nil || int64(len(got)) != size || !bytes.Equal(got, data) {
				t.Errorf("reader %d: streamed read differs (err=%v)", w, err)
			}
		}(w)
	}
	wg.Wait()
}
