// Package blobstoretest is the shared conformance suite every
// blobstore.Backend implementation must pass. The in-memory store and the
// on-disk store both run it (see conformance tests in their packages), so
// the two backends cannot drift apart on put/get/ref-count/GC semantics,
// snapshot encoding, or behaviour under concurrent access. A new backend
// earns its place by calling Run with a factory and passing under -race.
package blobstoretest

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"expelliarmus/internal/blobstore"
)

// Factory returns a fresh, empty backend for one subtest. Implementations
// backed by files should root themselves in t.TempDir() so every subtest
// is isolated.
type Factory func(t *testing.T) blobstore.Backend

// Run exercises the full Backend contract against backends produced by
// newBackend. Each property runs as its own subtest on its own instance.
func Run(t *testing.T, newBackend Factory) {
	t.Run("PutGet", func(t *testing.T) { testPutGet(t, newBackend(t)) })
	t.Run("DedupSecondPut", func(t *testing.T) { testDedup(t, newBackend(t)) })
	t.Run("EmptyBlob", func(t *testing.T) { testEmptyBlob(t, newBackend(t)) })
	t.Run("RefCountGC", func(t *testing.T) { testRefCountGC(t, newBackend(t)) })
	t.Run("MissingBlobErrors", func(t *testing.T) { testMissing(t, newBackend(t)) })
	t.Run("IDsSorted", func(t *testing.T) { testIDsSorted(t, newBackend(t)) })
	t.Run("Stats", func(t *testing.T) { testStats(t, newBackend(t)) })
	t.Run("SnapshotEquivalence", func(t *testing.T) { testSnapshotEquivalence(t, newBackend(t)) })
	t.Run("SnapshotLoadRoundTrip", func(t *testing.T) { testSnapshotLoad(t, newBackend(t)) })
	t.Run("ConcurrentDistinct", func(t *testing.T) { testConcurrentDistinct(t, newBackend(t)) })
	t.Run("ConcurrentSameBlob", func(t *testing.T) { testConcurrentSame(t, newBackend(t)) })
	t.Run("ConcurrentMixed", func(t *testing.T) { testConcurrentMixed(t, newBackend(t)) })
	t.Run("ReleaseCompactGet", func(t *testing.T) { testReleaseCompactGet(t, newBackend(t)) })
	runStreaming(t, newBackend)
}

func blobOf(i int) []byte {
	return []byte(fmt.Sprintf("blob-%04d-%s", i, string(make([]byte, i%7))))
}

func testPutGet(t *testing.T, b blobstore.Backend) {
	data := []byte("the quick brown fox")
	id, stored := b.Put(data)
	if !stored {
		t.Fatalf("first Put reported not stored")
	}
	if id != blobstore.Sum(data) {
		t.Fatalf("Put returned wrong ID")
	}
	got, ok := b.Get(id)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v; want original data", got, ok)
	}
	if n, ok := b.Size(id); !ok || n != int64(len(data)) {
		t.Fatalf("Size = %d, %v; want %d, true", n, ok, len(data))
	}
	if !b.Has(id) {
		t.Fatalf("Has = false after Put")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if b.TotalBytes() != int64(len(data)) {
		t.Fatalf("TotalBytes = %d, want %d", b.TotalBytes(), len(data))
	}
}

func testDedup(t *testing.T, b blobstore.Backend) {
	data := []byte("same bytes both times")
	id1, stored1 := b.Put(data)
	id2, stored2 := b.Put(data)
	if !stored1 || stored2 {
		t.Fatalf("stored flags = %v, %v; want true, false", stored1, stored2)
	}
	if id1 != id2 {
		t.Fatalf("same content produced different IDs")
	}
	if got := b.Refs(id1); got != 2 {
		t.Fatalf("Refs after double Put = %d, want 2", got)
	}
	if b.TotalBytes() != int64(len(data)) {
		t.Fatalf("TotalBytes counts duplicates: %d", b.TotalBytes())
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
}

func testEmptyBlob(t *testing.T, b blobstore.Backend) {
	id, stored := b.Put(nil)
	if !stored {
		t.Fatalf("empty blob not stored")
	}
	got, ok := b.Get(id)
	if !ok || len(got) != 0 {
		t.Fatalf("Get(empty) = %q, %v", got, ok)
	}
	if n, ok := b.Size(id); !ok || n != 0 {
		t.Fatalf("Size(empty) = %d, %v", n, ok)
	}
	if b.TotalBytes() != 0 {
		t.Fatalf("TotalBytes = %d for empty blob", b.TotalBytes())
	}
}

func testRefCountGC(t *testing.T, b blobstore.Backend) {
	data := []byte("reference counted")
	id, _ := b.Put(data)
	if err := b.AddRef(id); err != nil {
		t.Fatalf("AddRef: %v", err)
	}
	if got := b.Refs(id); got != 2 {
		t.Fatalf("Refs = %d, want 2", got)
	}
	if err := b.Release(id); err != nil {
		t.Fatalf("first Release: %v", err)
	}
	if !b.Has(id) {
		t.Fatalf("blob collected while a reference remained")
	}
	if err := b.Release(id); err != nil {
		t.Fatalf("final Release: %v", err)
	}
	if b.Has(id) {
		t.Fatalf("blob survived its last Release")
	}
	if got := b.Refs(id); got != 0 {
		t.Fatalf("Refs after GC = %d, want 0", got)
	}
	if b.TotalBytes() != 0 || b.Len() != 0 {
		t.Fatalf("store not empty after GC: %d bytes, %d blobs", b.TotalBytes(), b.Len())
	}
	// Re-putting previously collected content must behave like a fresh put.
	if _, stored := b.Put(data); !stored {
		t.Fatalf("re-Put after GC reported not stored")
	}
	if got := b.Refs(id); got != 1 {
		t.Fatalf("Refs after re-Put = %d, want 1", got)
	}
	if got, ok := b.Get(id); !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get after re-Put = %q, %v", got, ok)
	}
}

func testMissing(t *testing.T, b blobstore.Backend) {
	id := blobstore.Sum([]byte("never stored"))
	if _, ok := b.Get(id); ok {
		t.Fatalf("Get(missing) = ok")
	}
	// Open must report absence specifically — never nil, and never the
	// corruption error, which callers treat as an integrity incident.
	if rc, _, err := b.Open(id); err == nil {
		rc.Close()
		t.Fatalf("Open(missing) did not error")
	} else if !errors.Is(err, blobstore.ErrNotFound) {
		t.Fatalf("Open(missing) = %v, want ErrNotFound", err)
	} else if errors.Is(err, blobstore.ErrCorrupt) {
		t.Fatalf("Open(missing) reports corruption: %v", err)
	}
	if _, ok := b.Size(id); ok {
		t.Fatalf("Size(missing) = ok")
	}
	if b.Has(id) {
		t.Fatalf("Has(missing) = true")
	}
	if b.Refs(id) != 0 {
		t.Fatalf("Refs(missing) != 0")
	}
	if err := b.AddRef(id); err == nil {
		t.Fatalf("AddRef(missing) did not error")
	}
	if err := b.Release(id); err == nil {
		t.Fatalf("Release(missing) did not error")
	}
}

func testIDsSorted(t *testing.T, b blobstore.Backend) {
	const n = 50
	want := map[blobstore.ID]bool{}
	for i := 0; i < n; i++ {
		id, _ := b.Put(blobOf(i))
		want[id] = true
	}
	ids := b.IDs()
	if len(ids) != n {
		t.Fatalf("IDs returned %d, want %d", len(ids), n)
	}
	for i := 1; i < len(ids); i++ {
		if string(ids[i-1][:]) >= string(ids[i][:]) {
			t.Fatalf("IDs not strictly sorted at %d", i)
		}
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("IDs returned unknown blob %s", id)
		}
	}
}

func testStats(t *testing.T, b blobstore.Backend) {
	b.Put([]byte("a"))
	b.Put([]byte("a"))
	b.Put([]byte("b"))
	puts, hits := b.Stats()
	if puts != 3 || hits != 1 {
		t.Fatalf("Stats = %d puts, %d hits; want 3, 1", puts, hits)
	}
}

// testSnapshotEquivalence pins the property repository snapshots depend
// on: a backend's Snapshot must be byte-identical to the in-memory store
// holding the same blobs and reference counts.
func testSnapshotEquivalence(t *testing.T, b blobstore.Backend) {
	ref := blobstore.New()
	for i := 0; i < 40; i++ {
		data := blobOf(i)
		b.Put(data)
		ref.Put(data)
		if i%3 == 0 { // vary reference counts
			id := blobstore.Sum(data)
			if err := b.AddRef(id); err != nil {
				t.Fatalf("AddRef: %v", err)
			}
			if err := ref.AddRef(id); err != nil {
				t.Fatalf("ref AddRef: %v", err)
			}
		}
		if i%5 == 0 { // and collect a few entirely
			id := blobstore.Sum(data)
			for b.Refs(id) > 0 {
				if err := b.Release(id); err != nil {
					t.Fatalf("Release: %v", err)
				}
			}
			for ref.Refs(id) > 0 {
				if err := ref.Release(id); err != nil {
					t.Fatalf("ref Release: %v", err)
				}
			}
		}
	}
	got, err := b.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	want, err := ref.Snapshot()
	if err != nil {
		t.Fatalf("reference Snapshot: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Snapshot differs from in-memory reference: %d vs %d bytes", len(got), len(want))
	}
}

func testSnapshotLoad(t *testing.T, b blobstore.Backend) {
	type blob struct {
		data []byte
		refs int
	}
	blobs := map[blobstore.ID]blob{}
	for i := 0; i < 20; i++ {
		data := blobOf(i)
		id, _ := b.Put(data)
		refs := 1
		for j := 0; j < i%4; j++ {
			if err := b.AddRef(id); err != nil {
				t.Fatalf("AddRef: %v", err)
			}
			refs++
		}
		blobs[id] = blob{data: data, refs: refs}
	}
	img, err := b.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := blobstore.Load(img)
	if err != nil {
		t.Fatalf("Load(Snapshot): %v", err)
	}
	if restored.Len() != len(blobs) {
		t.Fatalf("restored %d blobs, want %d", restored.Len(), len(blobs))
	}
	for id, want := range blobs {
		got, ok := restored.Get(id)
		if !ok || !bytes.Equal(got, want.data) {
			t.Fatalf("restored Get(%s) = %v", id, ok)
		}
		if restored.Refs(id) != want.refs {
			t.Fatalf("restored Refs(%s) = %d, want %d", id, restored.Refs(id), want.refs)
		}
	}
	if restored.TotalBytes() != b.TotalBytes() {
		t.Fatalf("restored TotalBytes = %d, want %d", restored.TotalBytes(), b.TotalBytes())
	}
}

// testConcurrentDistinct has goroutines publish disjoint blobs while
// readers sweep; run under -race it checks the locking story.
func testConcurrentDistinct(t *testing.T, b blobstore.Backend) {
	const workers, perWorker = 8, 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				data := []byte(fmt.Sprintf("w%d-i%d", w, i))
				id, stored := b.Put(data)
				if !stored {
					t.Errorf("disjoint blob reported duplicate")
					return
				}
				if got, ok := b.Get(id); !ok || !bytes.Equal(got, data) {
					t.Errorf("Get just-put blob failed")
					return
				}
			}
		}(w)
	}
	// Concurrent readers exercising aggregate queries mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			b.Len()
			b.TotalBytes()
			b.IDs()
			b.Stats()
		}
	}()
	wg.Wait()
	if b.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", b.Len(), workers*perWorker)
	}
}

// testConcurrentSame races many goroutines putting identical content:
// exactly one must win the store, and the reference count must equal the
// number of puts.
func testConcurrentSame(t *testing.T, b blobstore.Backend) {
	const workers = 16
	data := []byte("contended content")
	var wg sync.WaitGroup
	var storedCount sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, stored := b.Put(data)
			storedCount.Store(w, stored)
		}(w)
	}
	wg.Wait()
	wins := 0
	storedCount.Range(func(_, v any) bool {
		if v.(bool) {
			wins++
		}
		return true
	})
	if wins != 1 {
		t.Fatalf("%d goroutines observed a fresh store, want exactly 1", wins)
	}
	id := blobstore.Sum(data)
	if got := b.Refs(id); got != workers {
		t.Fatalf("Refs = %d, want %d", got, workers)
	}
	if b.TotalBytes() != int64(len(data)) {
		t.Fatalf("TotalBytes = %d, want %d", b.TotalBytes(), len(data))
	}
}

// testConcurrentMixed interleaves puts, ref churn and GC on a shared set
// of blobs, then verifies the final counts are exact.
func testConcurrentMixed(t *testing.T, b blobstore.Backend) {
	const workers = 8
	const blobsN = 10
	ids := make([]blobstore.ID, blobsN)
	for i := range ids {
		ids[i], _ = b.Put(blobOf(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker adds then removes one reference per blob; the net
			// effect must be zero.
			for _, id := range ids {
				if err := b.AddRef(id); err != nil {
					t.Errorf("AddRef: %v", err)
					return
				}
			}
			for _, id := range ids {
				if err := b.Release(id); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, id := range ids {
		if got := b.Refs(id); got != 1 {
			t.Fatalf("blob %d Refs = %d, want 1", i, got)
		}
	}
}
