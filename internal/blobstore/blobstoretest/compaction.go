package blobstoretest

import (
	"bytes"
	"io"
	"testing"

	"expelliarmus/internal/blobstore"
)

// testReleaseCompactGet pins the contract around space reclamation:
// releasing blobs and then compacting must never disturb what survives.
// Every surviving blob retrieves byte-identical after Compact, released
// blobs stay gone, and — the subtle one — a reader opened BEFORE the
// compaction streams its blob to EOF even if compaction moved the blob
// and retired the segment under the reader. Whether any segment actually
// compacts depends on the backend's layout (small-segment disk factories
// exercise real retirement; the memory backend's Compact is a no-op); the
// semantics must hold either way.
func testReleaseCompactGet(t *testing.T, b blobstore.Backend) {
	c, ok := b.(blobstore.Compactor)
	if !ok {
		t.Skip("backend does not implement Compactor")
	}
	var keep []blobstore.ID
	var keepData [][]byte
	var drop []blobstore.ID
	for i := 0; i < 32; i++ {
		data := bytes.Repeat(blobOf(i), 4)
		id, stored := b.Put(data)
		if !stored {
			t.Fatalf("blob %d: not newly stored", i)
		}
		if i%2 == 0 {
			keep = append(keep, id)
			keepData = append(keepData, data)
		} else {
			drop = append(drop, id)
		}
	}
	// Open into the pre-compaction layout before anything is released.
	rc, size, err := b.Open(keep[0])
	if err != nil {
		t.Fatalf("open before compact: %v", err)
	}
	for _, id := range drop {
		if err := b.Release(id); err != nil {
			t.Fatalf("release: %v", err)
		}
	}
	if d, ok := b.(blobstore.Durable); ok {
		// Deferred-release backends queue releases until a sync; flush so
		// the compactor sees the garbage.
		if _, err := d.Sync(); err != nil {
			t.Fatalf("sync before compact: %v", err)
		}
	}
	if _, err := c.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for i, id := range keep {
		got, ok := b.Get(id)
		if !ok {
			t.Fatalf("surviving blob %d lost after compact", i)
		}
		if !bytes.Equal(got, keepData[i]) {
			t.Fatalf("surviving blob %d not byte-identical after compact", i)
		}
	}
	for i, id := range drop {
		if b.Has(id) {
			t.Fatalf("released blob %d resurrected by compact", i)
		}
	}
	// The old reader must stream the original bytes to a clean EOF: if the
	// backend retired the segment, the reader's pin kept it readable.
	got, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("read through pre-compaction reader: %v", err)
	}
	if int64(len(got)) != size || !bytes.Equal(got, keepData[0]) {
		t.Fatalf("pre-compaction reader returned %d bytes, want %d byte-identical", len(got), size)
	}
	if err := rc.Close(); err != nil {
		t.Fatalf("close pre-compaction reader: %v", err)
	}
	// With the garbage gone, a second compaction finds nothing to do.
	if _, err := c.Compact(); err != nil {
		t.Fatalf("idempotent compact: %v", err)
	}
	for i, id := range keep {
		got, ok := b.Get(id)
		if !ok || !bytes.Equal(got, keepData[i]) {
			t.Fatalf("surviving blob %d damaged by second compact", i)
		}
	}
}
