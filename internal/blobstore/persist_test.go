package blobstore

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

// mustSnapshot unwraps the in-memory store's Snapshot, whose error exists
// for durable backends and is always nil here.
func mustSnapshot(t *testing.T, s *Store) []byte {
	t.Helper()
	img, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return img
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	s := New()
	id1, _ := s.Put([]byte("first blob"))
	s.Put([]byte("first blob")) // refs = 2
	id2, _ := s.Put([]byte(""))
	id3, _ := s.Put(bytes.Repeat([]byte{0xAB}, 10000))

	got, err := Load(mustSnapshot(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.TotalBytes() != s.TotalBytes() {
		t.Fatalf("restored: %d blobs, %d bytes", got.Len(), got.TotalBytes())
	}
	if got.Refs(id1) != 2 {
		t.Fatalf("refcount lost: %d", got.Refs(id1))
	}
	for _, id := range []ID{id1, id2, id3} {
		want, _ := s.Get(id)
		have, ok := got.Get(id)
		if !ok || !bytes.Equal(have, want) {
			t.Fatalf("blob %s corrupted", id)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Store {
		s := New()
		for i := 0; i < 50; i++ {
			s.Put([]byte(fmt.Sprintf("blob-%d", i)))
		}
		return s
	}
	if !bytes.Equal(mustSnapshot(t, build()), mustSnapshot(t, build())) {
		t.Fatal("snapshot not deterministic")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load([]byte("nope")); err == nil {
		t.Fatal("accepted garbage")
	}
	s := New()
	s.Put([]byte("content"))
	img := mustSnapshot(t, s)
	if _, err := Load(img[:len(img)-3]); err == nil {
		t.Fatal("accepted truncated image")
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	err := quick.Check(func(blobs [][]byte) bool {
		s := New()
		for _, b := range blobs {
			s.Put(b)
		}
		img, err := s.Snapshot()
		if err != nil {
			return false
		}
		got, err := Load(img)
		if err != nil {
			return false
		}
		if got.Len() != s.Len() || got.TotalBytes() != s.TotalBytes() {
			return false
		}
		for _, id := range s.IDs() {
			want, _ := s.Get(id)
			have, ok := got.Get(id)
			if !ok || !bytes.Equal(have, want) || got.Refs(id) != s.Refs(id) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
