package blobstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	data := []byte("hello, dedup world")
	id, fresh := s.Put(data)
	if !fresh {
		t.Fatal("first Put reported duplicate")
	}
	got, ok := s.Get(id)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if n, ok := s.Size(id); !ok || n != int64(len(data)) {
		t.Fatalf("Size = %d, %v", n, ok)
	}
}

func TestPutDeduplicates(t *testing.T) {
	s := New()
	id1, _ := s.Put([]byte("same"))
	id2, fresh := s.Put([]byte("same"))
	if id1 != id2 {
		t.Fatal("same content produced different IDs")
	}
	if fresh {
		t.Fatal("second Put reported fresh")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.TotalBytes() != 4 {
		t.Fatalf("TotalBytes = %d, want 4", s.TotalBytes())
	}
	if s.Refs(id1) != 2 {
		t.Fatalf("Refs = %d, want 2", s.Refs(id1))
	}
	puts, hits := s.Stats()
	if puts != 2 || hits != 1 {
		t.Fatalf("Stats = %d,%d, want 2,1", puts, hits)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New()
	data := []byte("mutable")
	id, _ := s.Put(data)
	data[0] = 'X'
	got, _ := s.Get(id)
	if got[0] != 'm' {
		t.Fatal("store aliases caller's slice")
	}
}

func TestReleaseReclaims(t *testing.T) {
	s := New()
	id, _ := s.Put([]byte("abc"))
	s.Put([]byte("abc")) // refs=2
	if err := s.Release(id); err != nil {
		t.Fatal(err)
	}
	if !s.Has(id) {
		t.Fatal("blob dropped while referenced")
	}
	if err := s.Release(id); err != nil {
		t.Fatal(err)
	}
	if s.Has(id) || s.TotalBytes() != 0 || s.Len() != 0 {
		t.Fatal("blob not reclaimed at refcount zero")
	}
	if err := s.Release(id); err == nil {
		t.Fatal("Release of absent blob succeeded")
	}
}

func TestAddRef(t *testing.T) {
	s := New()
	id, _ := s.Put([]byte("x"))
	if err := s.AddRef(id); err != nil {
		t.Fatal(err)
	}
	if s.Refs(id) != 2 {
		t.Fatalf("Refs = %d, want 2", s.Refs(id))
	}
	var missing ID
	if err := s.AddRef(missing); err == nil {
		t.Fatal("AddRef of absent blob succeeded")
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	var id ID
	if _, ok := s.Get(id); ok {
		t.Fatal("Get of absent blob succeeded")
	}
	if _, ok := s.Size(id); ok {
		t.Fatal("Size of absent blob succeeded")
	}
	if s.Refs(id) != 0 {
		t.Fatal("Refs of absent blob non-zero")
	}
}

func TestIDsSortedAndComplete(t *testing.T) {
	s := New()
	want := map[ID]bool{}
	for i := 0; i < 20; i++ {
		id, _ := s.Put([]byte(fmt.Sprintf("blob-%d", i)))
		want[id] = true
	}
	ids := s.IDs()
	if len(ids) != 20 {
		t.Fatalf("IDs returned %d, want 20", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if string(ids[i-1][:]) >= string(ids[i][:]) {
			t.Fatal("IDs not strictly sorted")
		}
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatal("IDs returned unknown id")
		}
	}
}

func TestIDStringParseRoundTrip(t *testing.T) {
	id := Sum([]byte("round trip"))
	parsed, err := ParseID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != id {
		t.Fatal("ParseID(String()) != id")
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("ParseID accepted invalid hex")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Fatal("ParseID accepted short digest")
	}
}

// TestQuickRefcountNeverDropsLive is the property from DESIGN.md: a blob
// with outstanding references survives any interleaving of put/release.
func TestQuickRefcountNeverDropsLive(t *testing.T) {
	err := quick.Check(func(content []byte, extraPuts uint8) bool {
		s := New()
		id, _ := s.Put(content)
		n := int(extraPuts%8) + 1 // refs now n+1 via n extra puts
		for i := 0; i < n; i++ {
			s.Put(content)
		}
		for i := 0; i < n; i++ {
			if err := s.Release(id); err != nil {
				return false
			}
			if !s.Has(id) {
				return false // still one ref outstanding
			}
		}
		if err := s.Release(id); err != nil {
			return false
		}
		return !s.Has(id) && s.TotalBytes() == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickTotalBytesMatchesUnique(t *testing.T) {
	err := quick.Check(func(blobs [][]byte) bool {
		s := New()
		unique := map[string]bool{}
		var want int64
		for _, b := range blobs {
			s.Put(b)
			if !unique[string(b)] {
				unique[string(b)] = true
				want += int64(len(b))
			}
		}
		return s.TotalBytes() == want && s.Len() == len(unique)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPuts(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Put([]byte(fmt.Sprintf("blob-%d", i%50)))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 50 {
		t.Fatalf("Len = %d, want 50", s.Len())
	}
	id := Sum([]byte("blob-0"))
	if s.Refs(id) != 8*200/50 {
		t.Fatalf("Refs = %d, want 32", s.Refs(id))
	}
}
