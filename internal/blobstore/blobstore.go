// Package blobstore implements a content-addressed, reference-counted blob
// store. It is the storage backend shared by every deduplicating scheme in
// this repository: Mirage and Hemera store file contents in it, the
// block-dedup baselines store chunks, and the Expelliarmus repository stores
// binary packages, base images and user-data archives.
//
// Blobs are addressed by their SHA-256 digest, so the store physically keeps
// at most one copy of any byte sequence — the "content level" deduplication
// the paper contrasts with its semantic approach. Reference counting lets a
// scheme release content (e.g. when Expelliarmus replaces an obsolete base
// image, Algorithm 1 lines 22–28) and reclaim space deterministically.
//
// The store is mutex-striped: blobs live in shards keyed by the leading
// byte of their content hash, so concurrent publishes writing different
// packages lock different shards and proceed in parallel. SHA-256 output is
// uniform, which makes the leading byte an ideal shard key. Aggregate
// counters (unique bytes, put/hit statistics) are atomics, so size queries
// never touch a shard lock.
package blobstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"expelliarmus/internal/chunkpool"
)

// ID is the SHA-256 digest addressing a blob.
type ID [sha256.Size]byte

// Sum returns the ID of data.
func Sum(data []byte) ID { return sha256.Sum256(data) }

// String renders the ID as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID decodes a 64-character hex digest.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("blobstore: parse id: %w", err)
	}
	if len(b) != sha256.Size {
		return id, fmt.Errorf("blobstore: parse id: got %d bytes, want %d", len(b), sha256.Size)
	}
	copy(id[:], b)
	return id, nil
}

type entry struct {
	data []byte
	refs int
}

// numShards is the lock-stripe count. A power of two so the shard index is
// a mask of the hash's leading byte; 64 stripes keep contention negligible
// for any realistic publish fan-out while costing ~6 KB per store.
const numShards = 64

type shard struct {
	mu    sync.RWMutex
	blobs map[ID]*entry
}

// Store is a content-addressed blob store. It is safe for concurrent use;
// operations on blobs whose IDs fall into different shards do not contend.
// The zero value is not usable; construct with New.
type Store struct {
	shards [numShards]shard
	bytes  atomic.Int64
	puts   atomic.Int64
	hits   atomic.Int64
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].blobs = make(map[ID]*entry)
	}
	return s
}

func (s *Store) shardFor(id ID) *shard {
	return &s.shards[id[0]&(numShards-1)]
}

// Put stores data (if not already present) and takes one reference on it.
// It returns the blob ID and whether the content was newly stored. The
// caller keeps ownership of data; it is copied, never aliased. Put is a
// thin adapter over PutReader (in-memory sources can never fail, so the
// error leg vanishes).
func (s *Store) Put(data []byte) (ID, bool) {
	id, _, stored, _ := s.PutReader(bytes.NewReader(data))
	return id, stored
}

// PutReader streams r into the store, hashing incrementally, and takes one
// reference on the resulting blob. The bytes read from r become the
// store's private copy, so the contents can never alias caller memory. If
// r fails mid-stream the store is unchanged and the error is returned.
func (s *Store) PutReader(r io.Reader) (ID, int64, bool, error) {
	h := sha256.New()
	var buf bytes.Buffer
	n, err := chunkpool.Copy(io.MultiWriter(&buf, h), r)
	if err != nil {
		return ID{}, n, false, fmt.Errorf("blobstore: put stream: %w", err)
	}
	var id ID
	h.Sum(id[:0])
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.puts.Add(1)
	if e, ok := sh.blobs[id]; ok {
		e.refs++
		s.hits.Add(1)
		return id, n, false, nil
	}
	sh.blobs[id] = &entry{data: buf.Bytes(), refs: 1}
	s.bytes.Add(n)
	return id, n, true, nil
}

// Get returns a copy of the blob's contents; the caller owns the result
// and may mutate it without affecting the store. Get is a thin adapter
// over Open.
func (s *Store) Get(id ID) ([]byte, bool) {
	rc, size, err := s.Open(id)
	if err != nil {
		return nil, false
	}
	defer rc.Close()
	out := make([]byte, size)
	if _, err := io.ReadFull(rc, out); err != nil {
		return nil, false
	}
	return out, true
}

// memReader is a zero-copy view over a stored blob. The underlying slice
// is immutable (PutReader builds it privately, Get hands out copies), so
// the view stays valid even after the blob is released.
type memReader struct{ *bytes.Reader }

func (memReader) Close() error { return nil }

// Open returns a zero-copy reader over the blob's immutable stored bytes
// and its size. The reader also implements io.ReaderAt. An absent blob
// reports ErrNotFound; the in-memory store has no corruption failure mode
// (its bytes are private and immutable), so that is its only error.
func (s *Store) Open(id ID) (io.ReadCloser, int64, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	e, ok := sh.blobs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("blobstore: open %s: %w", id, ErrNotFound)
	}
	return memReader{bytes.NewReader(e.data)}, int64(len(e.data)), nil
}

// Size returns the length of the blob without copying it.
func (s *Store) Size(id ID) (int64, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.blobs[id]
	if !ok {
		return 0, false
	}
	return int64(len(e.data)), true
}

// Has reports whether the blob exists.
func (s *Store) Has(id ID) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.blobs[id]
	return ok
}

// AddRef takes an additional reference on an existing blob.
func (s *Store) AddRef(id ID) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.blobs[id]
	if !ok {
		return fmt.Errorf("blobstore: addref %s: not found", id)
	}
	e.refs++
	return nil
}

// Refs returns the current reference count, or zero if absent.
func (s *Store) Refs(id ID) int {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if e, ok := sh.blobs[id]; ok {
		return e.refs
	}
	return 0
}

// Release drops one reference; when the count reaches zero the blob is
// deleted and its bytes reclaimed.
func (s *Store) Release(id ID) error {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.blobs[id]
	if !ok {
		return fmt.Errorf("blobstore: release %s: not found", id)
	}
	e.refs--
	if e.refs < 0 {
		return fmt.Errorf("blobstore: release %s: refcount underflow", id)
	}
	if e.refs == 0 {
		s.bytes.Add(-int64(len(e.data)))
		delete(sh.blobs, id)
	}
	return nil
}

// Len returns the number of distinct blobs stored.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.blobs)
		sh.mu.RUnlock()
	}
	return n
}

// TotalBytes returns the number of unique bytes physically stored — the
// quantity plotted on the y-axis of Fig. 3.
func (s *Store) TotalBytes() int64 { return s.bytes.Load() }

// Stats reports cumulative put and dedup-hit counts.
func (s *Store) Stats() (puts, hits int64) {
	return s.puts.Load(), s.hits.Load()
}

// Compact is a no-op: the in-memory store frees a blob's bytes the moment
// its last reference is released, so there is never garbage to reclaim.
// It exists so callers can drive Compact through the Compactor interface
// without special-casing the backend.
func (s *Store) Compact() (CompactStats, error) { return CompactStats{}, nil }

// The in-memory store satisfies the on-demand compaction contract.
var _ Compactor = (*Store)(nil)

// IDs returns all blob IDs in lexicographic order (deterministic).
func (s *Store) IDs() []ID {
	out := make([]ID, 0, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.blobs {
			out = append(out, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}
