// Package blobstore implements a content-addressed, reference-counted blob
// store. It is the storage backend shared by every deduplicating scheme in
// this repository: Mirage and Hemera store file contents in it, the
// block-dedup baselines store chunks, and the Expelliarmus repository stores
// binary packages, base images and user-data archives.
//
// Blobs are addressed by their SHA-256 digest, so the store physically keeps
// at most one copy of any byte sequence — the "content level" deduplication
// the paper contrasts with its semantic approach. Reference counting lets a
// scheme release content (e.g. when Expelliarmus replaces an obsolete base
// image, Algorithm 1 lines 22–28) and reclaim space deterministically.
package blobstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// ID is the SHA-256 digest addressing a blob.
type ID [sha256.Size]byte

// Sum returns the ID of data.
func Sum(data []byte) ID { return sha256.Sum256(data) }

// String renders the ID as lowercase hex.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID decodes a 64-character hex digest.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("blobstore: parse id: %w", err)
	}
	if len(b) != sha256.Size {
		return id, fmt.Errorf("blobstore: parse id: got %d bytes, want %d", len(b), sha256.Size)
	}
	copy(id[:], b)
	return id, nil
}

type entry struct {
	data []byte
	refs int
}

// Store is a content-addressed blob store. It is safe for concurrent use.
// The zero value is not usable; construct with New.
type Store struct {
	mu    sync.RWMutex
	blobs map[ID]*entry
	bytes int64
	puts  int64
	hits  int64
}

// New returns an empty store.
func New() *Store {
	return &Store{blobs: make(map[ID]*entry)}
}

// Put stores data (if not already present) and takes one reference on it.
// It returns the blob ID and whether the content was newly stored.
func (s *Store) Put(data []byte) (ID, bool) {
	id := Sum(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if e, ok := s.blobs[id]; ok {
		e.refs++
		s.hits++
		return id, false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.blobs[id] = &entry{data: cp, refs: 1}
	s.bytes += int64(len(cp))
	return id, true
}

// Get returns the blob's contents. The returned slice must not be modified.
func (s *Store) Get(id ID) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.blobs[id]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// Size returns the length of the blob without copying it.
func (s *Store) Size(id ID) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.blobs[id]
	if !ok {
		return 0, false
	}
	return int64(len(e.data)), true
}

// Has reports whether the blob exists.
func (s *Store) Has(id ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[id]
	return ok
}

// AddRef takes an additional reference on an existing blob.
func (s *Store) AddRef(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blobs[id]
	if !ok {
		return fmt.Errorf("blobstore: addref %s: not found", id)
	}
	e.refs++
	return nil
}

// Refs returns the current reference count, or zero if absent.
func (s *Store) Refs(id ID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.blobs[id]; ok {
		return e.refs
	}
	return 0
}

// Release drops one reference; when the count reaches zero the blob is
// deleted and its bytes reclaimed.
func (s *Store) Release(id ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.blobs[id]
	if !ok {
		return fmt.Errorf("blobstore: release %s: not found", id)
	}
	e.refs--
	if e.refs < 0 {
		return fmt.Errorf("blobstore: release %s: refcount underflow", id)
	}
	if e.refs == 0 {
		s.bytes -= int64(len(e.data))
		delete(s.blobs, id)
	}
	return nil
}

// Len returns the number of distinct blobs stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// TotalBytes returns the number of unique bytes physically stored — the
// quantity plotted on the y-axis of Fig. 3.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Stats reports cumulative put and dedup-hit counts.
func (s *Store) Stats() (puts, hits int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.hits
}

// IDs returns all blob IDs in lexicographic order (deterministic).
func (s *Store) IDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ID, 0, len(s.blobs))
	for id := range s.blobs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		return string(out[i][:]) < string(out[j][:])
	})
	return out
}
