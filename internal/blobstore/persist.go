package blobstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

var snapshotMagic = []byte("EXPBLB1\n")

// SnapshotEntry is one blob captured for serialisation.
type SnapshotEntry struct {
	ID   ID
	Refs int
	Data []byte
}

// EncodeSnapshot serialises blobs and reference counts in the
// deterministic (ID-sorted) EXPBLB1 format. It is shared by every Backend
// implementation so snapshots are byte-identical regardless of which
// backend captured them. The entries slice is reordered in place.
func EncodeSnapshot(entries []SnapshotEntry) []byte {
	sort.Slice(entries, func(i, j int) bool {
		return string(entries[i].ID[:]) < string(entries[j].ID[:])
	})
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	var tmp [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeU(uint64(len(entries)))
	for _, c := range entries {
		writeU(uint64(c.Refs))
		writeU(uint64(len(c.Data)))
		buf.Write(c.Data)
	}
	return buf.Bytes()
}

// Snapshot serialises the store — blob contents and reference counts — in
// deterministic (ID-sorted) order. Each shard is captured under its read
// lock; blob contents are immutable once stored, so the serialized bytes
// are exact even when concurrent readers are active. The in-memory store
// cannot suffer post-hoc damage, so its error is always nil (the signature
// exists for durable backends, which can).
func (s *Store) Snapshot() ([]byte, error) {
	var snap []SnapshotEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, e := range sh.blobs {
			snap = append(snap, SnapshotEntry{ID: id, Refs: e.refs, Data: e.data})
		}
		sh.mu.RUnlock()
	}
	return EncodeSnapshot(snap), nil
}

// Load restores a store from a Snapshot image. Blob IDs are recomputed
// from content and verified implicitly by the addressing scheme.
func Load(image []byte) (*Store, error) {
	r := bytes.NewReader(image)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, fmt.Errorf("blobstore: bad snapshot magic")
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("blobstore: corrupt snapshot: %w", err)
	}
	s := New()
	for i := uint64(0); i < count; i++ {
		refs, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("blobstore: corrupt refcount: %w", err)
		}
		if refs == 0 {
			return nil, fmt.Errorf("blobstore: snapshot contains dead blob")
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("blobstore: corrupt length: %w", err)
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("blobstore: blob length %d exceeds remaining %d", n, r.Len())
		}
		data := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, err
			}
		}
		id := Sum(data)
		s.shardFor(id).blobs[id] = &entry{data: data, refs: int(refs)}
		s.bytes.Add(int64(len(data)))
	}
	return s, nil
}
