package blobstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

var snapshotMagic = []byte("EXPBLB1\n")

// Snapshot serialises the store — blob contents and reference counts — in
// deterministic (ID-sorted) order. Each shard is captured under its read
// lock; blob contents are immutable once stored, so the serialized bytes
// are exact even when concurrent readers are active.
func (s *Store) Snapshot() []byte {
	type captured struct {
		id   ID
		refs int
		data []byte
	}
	var snap []captured
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id, e := range sh.blobs {
			snap = append(snap, captured{id: id, refs: e.refs, data: e.data})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(snap, func(i, j int) bool {
		return string(snap[i].id[:]) < string(snap[j].id[:])
	})

	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	var tmp [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeU(uint64(len(snap)))
	for _, c := range snap {
		writeU(uint64(c.refs))
		writeU(uint64(len(c.data)))
		buf.Write(c.data)
	}
	return buf.Bytes()
}

// Load restores a store from a Snapshot image. Blob IDs are recomputed
// from content and verified implicitly by the addressing scheme.
func Load(image []byte) (*Store, error) {
	r := bytes.NewReader(image)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, fmt.Errorf("blobstore: bad snapshot magic")
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("blobstore: corrupt snapshot: %w", err)
	}
	s := New()
	for i := uint64(0); i < count; i++ {
		refs, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("blobstore: corrupt refcount: %w", err)
		}
		if refs == 0 {
			return nil, fmt.Errorf("blobstore: snapshot contains dead blob")
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("blobstore: corrupt length: %w", err)
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("blobstore: blob length %d exceeds remaining %d", n, r.Len())
		}
		data := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, err
			}
		}
		id := Sum(data)
		s.shardFor(id).blobs[id] = &entry{data: data, refs: int(refs)}
		s.bytes.Add(int64(len(data)))
	}
	return s, nil
}
