package blobstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

var snapshotMagic = []byte("EXPBLB1\n")

// Snapshot serialises the store — blob contents and reference counts — in
// deterministic (ID-sorted) order.
func (s *Store) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]ID, 0, len(s.blobs))
	for id := range s.blobs {
		ids = append(ids, id)
	}
	// Sort without the exported helper to avoid re-locking.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && string(ids[j][:]) < string(ids[j-1][:]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	var tmp [binary.MaxVarintLen64]byte
	writeU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	writeU(uint64(len(ids)))
	for _, id := range ids {
		e := s.blobs[id]
		writeU(uint64(e.refs))
		writeU(uint64(len(e.data)))
		buf.Write(e.data)
	}
	return buf.Bytes()
}

// Load restores a store from a Snapshot image. Blob IDs are recomputed
// from content and verified implicitly by the addressing scheme.
func Load(image []byte) (*Store, error) {
	r := bytes.NewReader(image)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, snapshotMagic) {
		return nil, fmt.Errorf("blobstore: bad snapshot magic")
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("blobstore: corrupt snapshot: %w", err)
	}
	s := New()
	for i := uint64(0); i < count; i++ {
		refs, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("blobstore: corrupt refcount: %w", err)
		}
		if refs == 0 {
			return nil, fmt.Errorf("blobstore: snapshot contains dead blob")
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("blobstore: corrupt length: %w", err)
		}
		if n > uint64(r.Len()) {
			return nil, fmt.Errorf("blobstore: blob length %d exceeds remaining %d", n, r.Len())
		}
		data := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(r, data); err != nil {
				return nil, err
			}
		}
		id := Sum(data)
		s.blobs[id] = &entry{data: data, refs: int(refs)}
		s.bytes += int64(len(data))
	}
	return s, nil
}
