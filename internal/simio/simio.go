// Package simio provides a deterministic storage-device and appliance cost
// model for the Expelliarmus reproduction.
//
// The paper reports wall-clock publish and retrieval times measured on the
// authors' testbed (quad-core host, external SSD, libguestfs appliance).
// Re-measuring wall-clock time on different hardware against a synthetic,
// down-scaled image set would not reproduce the *shape* of those results, so
// instead every store in this repository charges its primitive operations
// (launching a guestfs handle, opening a file, streaming bytes, touching a
// database page, installing a package, ...) to a Meter using the closed-form
// costs defined here. The resulting "seconds" are deterministic and directly
// comparable with the paper's figures.
//
// Profiles are expressed at paper scale (real gigabyte images, real
// 75k-file filesystems). Because the synthetic workload is generated at a
// reduced byte and file-count scale, Profile.Scaled derives an equivalent
// profile such that charging the *scaled* byte and file counts yields
// paper-scale durations.
package simio

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase labels a component of a publish or retrieval operation. The phases
// mirror the decomposition used by the paper in Fig. 5a (base image copy,
// handle creation, VMI reset, package import) plus the publish-side phases
// discussed in Sec. VI-C.
type Phase string

// Phases charged by the stores in this repository.
const (
	PhaseLaunch     Phase = "launch"     // guestfs handle creation
	PhaseCopy       Phase = "copy"       // base image copy from repository
	PhaseReset      Phase = "reset"      // virt-sysprep style VMI reset
	PhaseImport     Phase = "import"     // package import + installation
	PhaseExport     Phase = "export"     // package repack + export to repo
	PhaseScan       Phase = "scan"       // filesystem scan / indexing
	PhaseHash       Phase = "hash"       // content hashing for dedup
	PhaseDB         Phase = "db"         // metadata / small-file DB access
	PhaseStore      Phase = "store"      // writing blobs into the repository
	PhaseFetch      Phase = "fetch"      // reading blobs out of the repository
	PhaseSimilarity Phase = "similarity" // semantic similarity computation
	PhaseCleanup    Phase = "cleanup"    // package removal and cache cleanup
	PhaseCompress   Phase = "compress"   // gzip compression
	PhaseDecompress Phase = "decompress" // gzip decompression
)

// Profile describes the modeled testbed. All throughputs are in bytes per
// second and all latencies are per-operation. The zero value is unusable;
// construct profiles with PaperProfile (optionally followed by Scaled).
type Profile struct {
	// SeqReadBps is the sequential read bandwidth of the repository disk.
	SeqReadBps float64
	// SeqWriteBps is the sequential write bandwidth of the repository disk.
	SeqWriteBps float64
	// FileOpenLat is the per-file metadata overhead (open/close/stat) paid
	// when a store traverses or writes individual files.
	FileOpenLat time.Duration
	// SmallFileReadLat is the per-file penalty for reading small files from
	// a filesystem-backed repository (the Mirage weakness the paper
	// discusses: "inefficient in reading small files below 1MB").
	SmallFileReadLat time.Duration
	// SmallFileSize is the threshold below which a file counts as small.
	SmallFileSize int64
	// DBPageLat is the cost of one database page access; small files served
	// from the Hemera database pay this instead of SmallFileReadLat.
	DBPageLat time.Duration
	// DBPageSize is the modeled database page size.
	DBPageSize int64
	// LaunchLat is the cost of configuring and launching a guestfs handle.
	LaunchLat time.Duration
	// InstallBps is the package installation throughput in installed bytes
	// per second (unpack + configure through the guest package manager).
	InstallBps float64
	// RepackBps is the dpkg-repack style throughput for recreating a binary
	// package from installed files (the dominant Expelliarmus publish cost).
	RepackBps float64
	// PkgOverheadLat is the fixed per-package cost of invoking the package
	// manager (repack or install), independent of package size.
	PkgOverheadLat time.Duration
	// HashBps is the content hashing throughput used by dedup stores.
	HashBps float64
	// FileResetLat is the per-file cost of the virt-sysprep style reset.
	FileResetLat time.Duration
	// GzipBps and GunzipBps are the gzip (de)compression throughputs.
	GzipBps   float64
	GunzipBps float64
	// SimVertexLat is the per-vertex cost of semantic similarity
	// computation; the paper reports <100ms per VMI in total.
	SimVertexLat time.Duration
}

// PaperProfile returns the cost model calibrated against the testbed numbers
// reported in Sec. VI of the paper (see EXPERIMENTS.md for the calibration
// trail: Mini publish 39.5 s, Mini retrieval 24.6 s, Desktop retrieval
// 102.3 s, Mirage retrieval up to ~500 s, ...).
func PaperProfile() Profile {
	return Profile{
		SeqReadBps:       250e6,
		SeqWriteBps:      80e6,
		FileOpenLat:      2 * time.Millisecond,
		SmallFileReadLat: 4 * time.Millisecond,
		SmallFileSize:    1 << 20,
		DBPageLat:        150 * time.Microsecond,
		DBPageSize:       4096,
		LaunchLat:        5500 * time.Millisecond,
		InstallBps:       5.5e6,
		RepackBps:        2e6,
		PkgOverheadLat:   280 * time.Millisecond,
		HashBps:          400e6,
		FileResetLat:     100 * time.Microsecond,
		GzipBps:          60e6,
		GunzipBps:        180e6,
		SimVertexLat:     40 * time.Microsecond,
	}
}

// Scaled derives a profile for a workload generated at 1/byteScale of the
// paper's byte volume and 1/fileScale of its file counts, so that charging
// scaled quantities yields paper-scale durations: throughputs are divided
// by byteScale and per-file (and per-DB-access, which is dominated by
// per-file small-blob traffic) latencies multiplied by fileScale. The
// small-file threshold scales by byteScale/fileScale because one generated
// file stands for fileScale paper files and is therefore byteScale/fileScale
// times smaller than the paper file it represents.
func (p Profile) Scaled(byteScale, fileScale float64) Profile {
	if byteScale <= 0 || fileScale <= 0 {
		panic("simio: scale factors must be positive")
	}
	q := p
	q.SeqReadBps /= byteScale
	q.SeqWriteBps /= byteScale
	q.InstallBps /= byteScale
	q.RepackBps /= byteScale
	q.HashBps /= byteScale
	q.GzipBps /= byteScale
	q.GunzipBps /= byteScale
	q.FileOpenLat = scaleDur(p.FileOpenLat, fileScale)
	q.SmallFileReadLat = scaleDur(p.SmallFileReadLat, fileScale)
	q.FileResetLat = scaleDur(p.FileResetLat, fileScale)
	q.DBPageLat = scaleDur(p.DBPageLat, fileScale)
	q.SmallFileSize = int64(float64(p.SmallFileSize) / byteScale * fileScale)
	return q
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// Device evaluates operation costs under a Profile. A Device is stateless
// and safe for concurrent use.
type Device struct {
	prof Profile
}

// NewDevice returns a Device using the given profile.
func NewDevice(p Profile) *Device { return &Device{prof: p} }

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

func bytesCost(n int64, bps float64) time.Duration {
	if n <= 0 || bps <= 0 {
		return 0
	}
	return time.Duration(float64(n) / bps * float64(time.Second))
}

// ReadCost is the cost of sequentially reading n bytes.
func (d *Device) ReadCost(n int64) time.Duration { return bytesCost(n, d.prof.SeqReadBps) }

// WriteCost is the cost of sequentially writing n bytes.
func (d *Device) WriteCost(n int64) time.Duration { return bytesCost(n, d.prof.SeqWriteBps) }

// OpenCost is the metadata cost of touching n files.
func (d *Device) OpenCost(n int) time.Duration {
	return time.Duration(n) * d.prof.FileOpenLat
}

// SmallFileReadCost is the cost of reading n files of size bytes each from a
// filesystem-backed repository, including the small-file penalty when the
// size is below the profile threshold.
func (d *Device) SmallFileReadCost(size int64) time.Duration {
	c := d.ReadCost(size)
	if size < d.prof.SmallFileSize {
		c += d.prof.SmallFileReadLat
	} else {
		c += d.prof.FileOpenLat
	}
	return c
}

// DBCost is the cost of accessing n bytes through the metadata database,
// charged per page.
func (d *Device) DBCost(n int64) time.Duration {
	if n <= 0 {
		return d.prof.DBPageLat
	}
	pages := (n + d.prof.DBPageSize - 1) / d.prof.DBPageSize
	return time.Duration(pages) * d.prof.DBPageLat
}

// LaunchCost is the cost of creating a guestfs handle.
func (d *Device) LaunchCost() time.Duration { return d.prof.LaunchLat }

// InstallCost is the cost of installing packages totalling n installed
// bytes across count packages.
func (d *Device) InstallCost(n int64, count int) time.Duration {
	return bytesCost(n, d.prof.InstallBps) + time.Duration(count)*d.prof.PkgOverheadLat
}

// RepackCost is the cost of recreating binary packages from n installed
// bytes across count packages.
func (d *Device) RepackCost(n int64, count int) time.Duration {
	return bytesCost(n, d.prof.RepackBps) + time.Duration(count)*d.prof.PkgOverheadLat
}

// HashCost is the cost of hashing n bytes.
func (d *Device) HashCost(n int64) time.Duration { return bytesCost(n, d.prof.HashBps) }

// ResetCost is the cost of a virt-sysprep style reset over n files.
func (d *Device) ResetCost(files int) time.Duration {
	return time.Duration(files) * d.prof.FileResetLat
}

// GzipCost is the cost of compressing n bytes.
func (d *Device) GzipCost(n int64) time.Duration { return bytesCost(n, d.prof.GzipBps) }

// GunzipCost is the cost of decompressing n (compressed) bytes.
func (d *Device) GunzipCost(n int64) time.Duration { return bytesCost(n, d.prof.GunzipBps) }

// SimilarityCost is the cost of comparing a semantic graph with v vertices
// against the master graph.
func (d *Device) SimilarityCost(v int) time.Duration {
	return time.Duration(v) * d.prof.SimVertexLat
}

// PhaseCost pairs a phase with its accumulated duration.
type PhaseCost struct {
	Phase Phase
	Cost  time.Duration
}

// Meter accumulates operation costs by phase. The zero value is ready to
// use. Meters are safe for concurrent use: charges are commutative sums,
// so a meter shared by the worker pool of a parallel publish or retrieval
// accumulates exactly the same totals as the sequential loop, regardless
// of interleaving.
type Meter struct {
	mu     sync.Mutex
	phases map[Phase]time.Duration
	total  time.Duration
}

// Charge adds d to the given phase.
func (m *Meter) Charge(ph Phase, d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simio: negative charge %v for phase %q", d, ph))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.phases == nil {
		m.phases = make(map[Phase]time.Duration)
	}
	m.phases[ph] += d
	m.total += d
}

// Total returns the sum of all charges.
func (m *Meter) Total() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// Seconds returns the total as float64 seconds.
func (m *Meter) Seconds() float64 { return m.Total().Seconds() }

// Phase returns the accumulated cost of one phase.
func (m *Meter) Phase(ph Phase) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.phases[ph]
}

// Breakdown returns all phases with non-zero cost, ordered by descending
// cost (ties broken by phase name for determinism).
func (m *Meter) Breakdown() []PhaseCost {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PhaseCost, 0, len(m.phases))
	for ph, c := range m.phases {
		out = append(out, PhaseCost{Phase: ph, Cost: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Reset clears all charges.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.phases = nil
	m.total = 0
}

// Snapshot returns a copy of the per-phase totals.
func (m *Meter) Snapshot() map[Phase]time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Phase]time.Duration, len(m.phases))
	for ph, c := range m.phases {
		out[ph] = c
	}
	return out
}

// String renders the meter as "total (phase=dur, ...)".
func (m *Meter) String() string {
	bd := m.Breakdown()
	parts := make([]string, len(bd))
	for i, pc := range bd {
		parts[i] = fmt.Sprintf("%s=%.2fs", pc.Phase, pc.Cost.Seconds())
	}
	return fmt.Sprintf("%.2fs (%s)", m.Seconds(), strings.Join(parts, ", "))
}
