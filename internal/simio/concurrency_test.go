package simio

import (
	"sync"
	"testing"
	"time"
)

// TestMeterConcurrentCharge charges one meter from many goroutines and
// checks the totals equal the sequential sum — the property the parallel
// publish pipeline relies on to keep modeled times independent of the
// parallelism setting.
func TestMeterConcurrentCharge(t *testing.T) {
	var m Meter
	const workers = 8
	const charges = 500
	phases := []Phase{PhaseExport, PhaseStore, PhaseDB, PhaseHash}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < charges; i++ {
				m.Charge(phases[i%len(phases)], time.Duration(i+1)*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()

	var want time.Duration
	for i := 0; i < charges; i++ {
		want += time.Duration(i+1) * time.Microsecond
	}
	want *= workers
	if got := m.Total(); got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
	var phaseSum time.Duration
	for _, pc := range m.Breakdown() {
		phaseSum += pc.Cost
	}
	if phaseSum != want {
		t.Fatalf("phase sum = %v, want %v", phaseSum, want)
	}
	snap := m.Snapshot()
	if len(snap) != len(phases) {
		t.Fatalf("snapshot has %d phases, want %d", len(snap), len(phases))
	}
}
