package simio

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMeterChargeAndTotal(t *testing.T) {
	var m Meter
	m.Charge(PhaseLaunch, 2*time.Second)
	m.Charge(PhaseCopy, 3*time.Second)
	m.Charge(PhaseLaunch, time.Second)
	if got := m.Total(); got != 6*time.Second {
		t.Fatalf("Total = %v, want 6s", got)
	}
	if got := m.Phase(PhaseLaunch); got != 3*time.Second {
		t.Fatalf("Phase(launch) = %v, want 3s", got)
	}
	if got := m.Phase(PhaseReset); got != 0 {
		t.Fatalf("Phase(reset) = %v, want 0", got)
	}
	if got := m.Seconds(); got != 6 {
		t.Fatalf("Seconds = %v, want 6", got)
	}
}

func TestMeterBreakdownOrdering(t *testing.T) {
	var m Meter
	m.Charge(PhaseImport, 5*time.Second)
	m.Charge(PhaseCopy, 7*time.Second)
	m.Charge(PhaseReset, 5*time.Second)
	bd := m.Breakdown()
	if len(bd) != 3 {
		t.Fatalf("len(Breakdown) = %d, want 3", len(bd))
	}
	if bd[0].Phase != PhaseCopy {
		t.Errorf("Breakdown[0] = %v, want copy first (largest)", bd[0].Phase)
	}
	// Equal costs are ordered by phase name for determinism.
	if bd[1].Phase != PhaseImport || bd[2].Phase != PhaseReset {
		t.Errorf("tie order = %v,%v, want import,reset", bd[1].Phase, bd[2].Phase)
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Charge(PhaseDB, time.Second)
	m.Reset()
	if m.Total() != 0 || len(m.Breakdown()) != 0 {
		t.Fatalf("meter not empty after Reset: %v", m.String())
	}
}

func TestMeterSnapshotIsCopy(t *testing.T) {
	var m Meter
	m.Charge(PhaseHash, time.Second)
	snap := m.Snapshot()
	snap[PhaseHash] = 99 * time.Second
	if m.Phase(PhaseHash) != time.Second {
		t.Fatal("Snapshot aliases internal state")
	}
}

func TestMeterString(t *testing.T) {
	var m Meter
	m.Charge(PhaseLaunch, 1500*time.Millisecond)
	s := m.String()
	if !strings.Contains(s, "launch=1.50s") || !strings.HasPrefix(s, "1.50s") {
		t.Fatalf("String = %q", s)
	}
}

func TestMeterNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative charge")
		}
	}()
	var m Meter
	m.Charge(PhaseDB, -time.Second)
}

func TestMeterConcurrentCharges(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Charge(PhaseStore, time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got, want := m.Total(), 5000*time.Millisecond; got != want {
		t.Fatalf("Total = %v, want %v", got, want)
	}
}

func TestDeviceByteCostsLinear(t *testing.T) {
	d := NewDevice(PaperProfile())
	one := d.ReadCost(1e6)
	two := d.ReadCost(2e6)
	if math.Abs(two.Seconds()-2*one.Seconds()) > 1e-9 {
		t.Fatalf("ReadCost not linear: %v vs 2*%v", two, one)
	}
	if d.ReadCost(0) != 0 || d.WriteCost(0) != 0 || d.HashCost(0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
	if d.WriteCost(1e6) <= d.ReadCost(1e6) {
		t.Fatal("profile models writes slower than reads; costs disagree")
	}
}

func TestDeviceSmallFilePenalty(t *testing.T) {
	p := PaperProfile()
	d := NewDevice(p)
	small := d.SmallFileReadCost(p.SmallFileSize - 1)
	large := d.SmallFileReadCost(p.SmallFileSize)
	// The small file is ~1 byte shorter but must cost notably more due to
	// the per-file penalty exceeding the metadata-only overhead.
	if small <= large {
		t.Fatalf("small-file read %v not penalised vs large %v", small, large)
	}
	wantMin := p.SmallFileReadLat
	if small < wantMin {
		t.Fatalf("small-file read %v below penalty %v", small, wantMin)
	}
}

func TestDeviceDBCostPages(t *testing.T) {
	p := PaperProfile()
	d := NewDevice(p)
	if got := d.DBCost(0); got != p.DBPageLat {
		t.Fatalf("DBCost(0) = %v, want one page %v", got, p.DBPageLat)
	}
	if got := d.DBCost(1); got != p.DBPageLat {
		t.Fatalf("DBCost(1) = %v, want one page", got)
	}
	if got := d.DBCost(p.DBPageSize + 1); got != 2*p.DBPageLat {
		t.Fatalf("DBCost(pagesize+1) = %v, want two pages", got)
	}
}

func TestDevicePerItemCosts(t *testing.T) {
	p := PaperProfile()
	d := NewDevice(p)
	if got := d.OpenCost(10); got != 10*p.FileOpenLat {
		t.Fatalf("OpenCost(10) = %v", got)
	}
	if got := d.ResetCost(1000); got != 1000*p.FileResetLat {
		t.Fatalf("ResetCost(1000) = %v", got)
	}
	if got := d.LaunchCost(); got != p.LaunchLat {
		t.Fatalf("LaunchCost = %v", got)
	}
	if got := d.SimilarityCost(100); got != 100*p.SimVertexLat {
		t.Fatalf("SimilarityCost(100) = %v", got)
	}
	withOverhead := d.InstallCost(0, 3)
	if withOverhead != 3*p.PkgOverheadLat {
		t.Fatalf("InstallCost(0,3) = %v", withOverhead)
	}
	if d.RepackCost(1e6, 1) <= d.RepackCost(1e6, 0) {
		t.Fatal("package overhead not charged")
	}
}

// TestScaledProfileEquivalence verifies the core scaling contract: charging
// scaled quantities on a scaled device equals charging paper quantities on
// the paper device, to within duration rounding.
func TestScaledProfileEquivalence(t *testing.T) {
	const byteScale, fileScale = 1024, 64
	paper := NewDevice(PaperProfile())
	scaled := NewDevice(PaperProfile().Scaled(byteScale, fileScale))

	paperBytes := int64(1913 * 1e6) // the Mini image
	scaledBytes := paperBytes / byteScale
	got := scaled.WriteCost(scaledBytes).Seconds()
	want := paper.WriteCost(paperBytes).Seconds()
	if math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("scaled WriteCost = %.4fs, paper = %.4fs", got, want)
	}

	paperFiles := 75749
	scaledFiles := paperFiles / fileScale
	gotR := scaled.ResetCost(scaledFiles).Seconds()
	wantR := paper.ResetCost(paperFiles).Seconds()
	if math.Abs(gotR-wantR)/wantR > 2e-2 {
		t.Fatalf("scaled ResetCost = %.4fs, paper = %.4fs", gotR, wantR)
	}
}

func TestScaledPanicsOnBadFactor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive scale")
		}
	}()
	PaperProfile().Scaled(0, 1)
}

// TestPaperCalibrationAnchors sanity-checks the profile against two anchor
// measurements from Table II so accidental retuning is caught: Mini publish
// (launch + scan + base store) ~39.5s and Mini retrieval (copy + launch +
// reset) ~24.6s.
func TestPaperCalibrationAnchors(t *testing.T) {
	d := NewDevice(PaperProfile())
	miniBytes := int64(1.913e9)
	miniFiles := 75749

	publish := d.LaunchCost() + d.ReadCost(miniBytes)/4 + d.WriteCost(miniBytes)
	if s := publish.Seconds(); s < 25 || s > 55 {
		t.Errorf("modeled Mini-like publish %.1fs outside [25,55]", s)
	}
	retrieve := d.ReadCost(miniBytes) + d.LaunchCost() + d.ResetCost(miniFiles)
	if s := retrieve.Seconds(); s < 15 || s > 35 {
		t.Errorf("modeled Mini-like retrieval %.1fs outside [15,35]", s)
	}
}
