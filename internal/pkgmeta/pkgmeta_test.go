package pkgmeta

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func samplePackage() Package {
	return Package{
		Name:          "mariadb",
		Version:       "10.1.2",
		Arch:          "amd64",
		Distro:        "ubuntu",
		Section:       "database",
		InstalledSize: 123456789,
		Depends:       []string{"libc6", "ucf"},
		Essential:     false,
	}
}

func TestControlRoundTrip(t *testing.T) {
	want := samplePackage()
	got, err := ParseControl(FormatControl(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestControlEssentialAndNoDeps(t *testing.T) {
	want := Package{Name: "libc6", Version: "2.23", Arch: "amd64", Distro: "ubuntu",
		InstalledSize: 10, Essential: true}
	s := FormatControl(want)
	if !strings.Contains(s, "Essential: yes") {
		t.Fatalf("control missing Essential: %q", s)
	}
	got, err := ParseControl(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Essential || got.Depends != nil {
		t.Fatalf("got %+v", got)
	}
}

func TestParseControlErrors(t *testing.T) {
	if _, err := ParseControl("no colon here"); err == nil {
		t.Fatal("accepted malformed line")
	}
	if _, err := ParseControl("Version: 1.0\n"); err == nil {
		t.Fatal("accepted stanza without Package")
	}
	if _, err := ParseControl("Package: x\nInstalled-Size: abc\n"); err == nil {
		t.Fatal("accepted bad Installed-Size")
	}
}

func TestParseControlIgnoresUnknownFields(t *testing.T) {
	p, err := ParseControl("Package: x\nMaintainer: someone\nInstalled-Size: 5\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "x" || p.InstalledSize != 5 {
		t.Fatalf("got %+v", p)
	}
}

func TestStatusRoundTripSorted(t *testing.T) {
	pkgs := []Package{
		{Name: "zsh", Version: "5", Arch: "amd64", Distro: "u", InstalledSize: 1},
		{Name: "bash", Version: "4", Arch: "amd64", Distro: "u", InstalledSize: 2, Essential: true},
		{Name: "perl-base", Version: "5.22", Arch: "amd64", Distro: "u", InstalledSize: 3,
			Depends: []string{"libc6", "dpkg"}},
	}
	got, err := ParseStatus(FormatStatus(pkgs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d stanzas", len(got))
	}
	// Output is sorted by name.
	if got[0].Name != "bash" || got[1].Name != "perl-base" || got[2].Name != "zsh" {
		t.Fatalf("order = %s,%s,%s", got[0].Name, got[1].Name, got[2].Name)
	}
	if !reflect.DeepEqual(got[1].Depends, []string{"libc6", "dpkg"}) {
		t.Fatalf("depends = %v", got[1].Depends)
	}
}

func TestParseStatusEmpty(t *testing.T) {
	got, err := ParseStatus("")
	if err != nil || len(got) != 0 {
		t.Fatalf("ParseStatus(\"\") = %v, %v", got, err)
	}
}

func TestBaseAttrs(t *testing.T) {
	a := BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64"}
	if a.String() != "linux/ubuntu/16.04/x86_64" {
		t.Fatalf("String = %q", a.String())
	}
	if a.IsZero() {
		t.Fatal("non-zero attrs reported zero")
	}
	if !(BaseAttrs{}).IsZero() {
		t.Fatal("zero attrs not reported zero")
	}
	b := a
	if a != b {
		t.Fatal("equal attrs compare unequal")
	}
}

func TestRef(t *testing.T) {
	p := samplePackage()
	if got := p.Ref(); got != "mariadb=10.1.2/amd64" {
		t.Fatalf("Ref = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePackage()
	q := p.Clone()
	q.Depends[0] = "mutated"
	if p.Depends[0] != "libc6" {
		t.Fatal("Clone shares Depends slice")
	}
}

// TestQuickControlRoundTrip: control encoding round-trips arbitrary
// well-formed packages (fields restricted to token-safe characters).
func TestQuickControlRoundTrip(t *testing.T) {
	sanitize := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if r > ' ' && r != ':' && r != ',' && r < 127 {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	err := quick.Check(func(name, ver string, size uint32, deps []string, ess bool) bool {
		p := Package{
			Name:          sanitize(name),
			Version:       sanitize(ver),
			Arch:          "amd64",
			Distro:        "ubuntu",
			InstalledSize: int64(size),
			Essential:     ess,
		}
		for _, d := range deps {
			p.Depends = append(p.Depends, sanitize(d))
		}
		got, err := ParseControl(FormatControl(p))
		return err == nil && reflect.DeepEqual(got, p)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
