// Package pkgmeta defines the package and base-image metadata model shared
// by the package manager, the binary package format, the synthetic catalog
// and the semantic graph: the attribute quadruples of Sec. III-C of the
// paper, plus the Debian-control-style text encoding used for status files
// and package control data.
package pkgmeta

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ArchAll is the architecture value of portable packages; per Sec. III-C,
// "an architecture attribute of 'all' means that the package is portable
// and available on base images with any architecture".
const ArchAll = "all"

// BaseAttrs is the attribute quadruple of a base image:
// attrs(BI) = (type, distro, ver, arch).
type BaseAttrs struct {
	Type    string // guest OS type, e.g. "linux"
	Distro  string // distribution, e.g. "ubuntu"
	Version string // distribution version, e.g. "16.04"
	Arch    string // machine architecture, e.g. "x86_64"
}

// String renders the quadruple as "type/distro/version/arch".
func (a BaseAttrs) String() string {
	return a.Type + "/" + a.Distro + "/" + a.Version + "/" + a.Arch
}

// IsZero reports whether all attributes are empty.
func (a BaseAttrs) IsZero() bool { return a == BaseAttrs{} }

// Package describes one software package: the per-vertex attributes of the
// VMI semantic graph (Sec. III-C/III-E) plus the dependency edges.
type Package struct {
	// Name is the package attribute ("pkg" in the paper), e.g. "mariadb".
	Name string
	// Version is the package version.
	Version string
	// Arch is the package architecture, or ArchAll for portable packages.
	Arch string
	// Distro is the distribution the package was built for.
	Distro string
	// Section classifies the package (libs, database, web, ...).
	Section string
	// InstalledSize is the disk space the installed package consumes
	// (paper-scale bytes) — the "size" used by simsize in Sec. III-F.
	InstalledSize int64
	// Depends lists the names of directly required packages.
	Depends []string
	// Essential marks base-OS packages that are never auto-removed.
	Essential bool
}

// Ref identifies the package as "name=version/arch".
func (p Package) Ref() string {
	return p.Name + "=" + p.Version + "/" + p.Arch
}

// Clone returns a deep copy of the package.
func (p Package) Clone() Package {
	q := p
	q.Depends = append([]string(nil), p.Depends...)
	return q
}

// --- control stanza encoding ---

// FormatControl renders the package as a Debian-control-style stanza.
func FormatControl(p Package) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Package: %s\n", p.Name)
	fmt.Fprintf(&b, "Version: %s\n", p.Version)
	fmt.Fprintf(&b, "Architecture: %s\n", p.Arch)
	fmt.Fprintf(&b, "Distribution: %s\n", p.Distro)
	if p.Section != "" {
		fmt.Fprintf(&b, "Section: %s\n", p.Section)
	}
	fmt.Fprintf(&b, "Installed-Size: %d\n", p.InstalledSize)
	if len(p.Depends) > 0 {
		fmt.Fprintf(&b, "Depends: %s\n", strings.Join(p.Depends, ", "))
	}
	if p.Essential {
		b.WriteString("Essential: yes\n")
	}
	return b.String()
}

// ParseControl parses a single control stanza.
func ParseControl(s string) (Package, error) {
	var p Package
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok {
			return p, fmt.Errorf("pkgmeta: malformed control line %q", line)
		}
		value = strings.TrimSpace(value)
		switch key {
		case "Package":
			p.Name = value
		case "Version":
			p.Version = value
		case "Architecture":
			p.Arch = value
		case "Distribution":
			p.Distro = value
		case "Section":
			p.Section = value
		case "Installed-Size":
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return p, fmt.Errorf("pkgmeta: bad Installed-Size %q: %w", value, err)
			}
			p.InstalledSize = n
		case "Depends":
			for _, dep := range strings.Split(value, ",") {
				dep = strings.TrimSpace(dep)
				if dep != "" {
					p.Depends = append(p.Depends, dep)
				}
			}
		case "Essential":
			p.Essential = value == "yes"
		default:
			// Unknown fields are ignored for forward compatibility.
		}
	}
	if p.Name == "" {
		return p, fmt.Errorf("pkgmeta: control stanza missing Package field")
	}
	return p, nil
}

// FormatStatus renders a set of packages as a multi-stanza status file,
// sorted by name for determinism.
func FormatStatus(pkgs []Package) string {
	sorted := append([]Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i, p := range sorted {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(FormatControl(p))
	}
	return b.String()
}

// ParseStatus parses a multi-stanza status file.
func ParseStatus(s string) ([]Package, error) {
	var out []Package
	for _, stanza := range strings.Split(s, "\n\n") {
		if strings.TrimSpace(stanza) == "" {
			continue
		}
		p, err := ParseControl(stanza)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
