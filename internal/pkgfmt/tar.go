package pkgfmt

import (
	"archive/tar"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// PackTar assembles files into an uncompressed tar archive, sorted by path
// for determinism. It is used for user-data archives, which the repository
// stores verbatim (unlike binary packages, which are compressed).
func PackTar(files []File) ([]byte, error) {
	sorted := append([]File(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, f := range sorted {
		if !strings.HasPrefix(f.Path, "/") {
			return nil, fmt.Errorf("pkgfmt: tar path %q not absolute", f.Path)
		}
		hdr := &tar.Header{Name: f.Path, Mode: 0644, Size: int64(len(f.Data))}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, err
		}
		if _, err := tw.Write(f.Data); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnpackTar decodes an archive produced by PackTar.
func UnpackTar(blob []byte) ([]File, error) {
	tr := tar.NewReader(bytes.NewReader(blob))
	var files []File
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pkgfmt: corrupt tar: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, err
		}
		files = append(files, File{Path: hdr.Name, Data: data})
	}
	return files, nil
}
