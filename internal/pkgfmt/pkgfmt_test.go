package pkgfmt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"expelliarmus/internal/pkgmeta"
)

func samplePkg() pkgmeta.Package {
	return pkgmeta.Package{
		Name: "redis-server", Version: "3.0.6", Arch: "amd64", Distro: "ubuntu",
		Section: "database", InstalledSize: 1 << 20, Depends: []string{"libc6"},
	}
}

func sampleFiles() []File {
	return []File{
		{Path: "/usr/bin/redis-server", Data: bytes.Repeat([]byte{0x7f, 'E', 'L', 'F'}, 500)},
		{Path: "/etc/redis/redis.conf", Data: []byte("port 6379\n")},
		{Path: "/usr/share/doc/redis/README", Data: []byte("redis docs")},
	}
}

func TestBuildExtractRoundTrip(t *testing.T) {
	blob, err := Build(samplePkg(), sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	p, files, err := Extract(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, samplePkg()) {
		t.Fatalf("metadata mismatch: %+v", p)
	}
	if len(files) != 3 {
		t.Fatalf("got %d files", len(files))
	}
	// Files come back sorted by path.
	if files[0].Path != "/etc/redis/redis.conf" {
		t.Fatalf("first file %q, want /etc/redis/redis.conf", files[0].Path)
	}
	byPath := map[string][]byte{}
	for _, f := range files {
		byPath[f.Path] = f.Data
	}
	for _, want := range sampleFiles() {
		if !bytes.Equal(byPath[want.Path], want.Data) {
			t.Fatalf("file %s corrupted", want.Path)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(samplePkg(), sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	// Different input order must not change the output.
	files := sampleFiles()
	files[0], files[2] = files[2], files[0]
	b, err := Build(samplePkg(), files)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("package build not deterministic under file reordering")
	}
}

func TestBuildCompresses(t *testing.T) {
	// Repetitive content must compress: the stored .deb is smaller than
	// the installed size, as the paper notes.
	data := bytes.Repeat([]byte("configuration line with repetition\n"), 2000)
	files := []File{{Path: "/etc/big.conf", Data: data}}
	blob, err := Build(samplePkg(), files)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) >= len(data)/2 {
		t.Fatalf("package %d bytes not much smaller than payload %d", len(blob), len(data))
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(pkgmeta.Package{}, nil); err == nil {
		t.Fatal("accepted package without name")
	}
	if _, err := Build(samplePkg(), []File{{Path: "relative/path", Data: nil}}); err == nil {
		t.Fatal("accepted relative file path")
	}
}

func TestExtractRejectsCorrupt(t *testing.T) {
	if _, _, err := Extract([]byte("not gzip")); err == nil {
		t.Fatal("accepted non-gzip blob")
	}
	blob, _ := Build(samplePkg(), sampleFiles())
	if _, _, err := Extract(blob[:len(blob)/2]); err == nil {
		t.Fatal("accepted truncated blob")
	}
}

func TestPeek(t *testing.T) {
	blob, err := Build(samplePkg(), sampleFiles())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Peek(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, samplePkg()) {
		t.Fatalf("Peek = %+v", p)
	}
	if _, err := Peek([]byte("junk")); err == nil {
		t.Fatal("Peek accepted junk")
	}
}

func TestEmptyFileAndNoFiles(t *testing.T) {
	blob, err := Build(samplePkg(), []File{{Path: "/usr/share/empty", Data: nil}})
	if err != nil {
		t.Fatal(err)
	}
	_, files, err := Extract(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || len(files[0].Data) != 0 {
		t.Fatalf("files = %+v", files)
	}
	blob2, err := Build(samplePkg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, files2, err := Extract(blob2)
	if err != nil || len(files2) != 0 {
		t.Fatalf("no-files package: %v, %d files", err, len(files2))
	}
}

// TestQuickRoundTrip: arbitrary file contents survive the build/extract
// round trip.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	err := quick.Check(func(contents [][]byte) bool {
		if len(contents) > 20 {
			contents = contents[:20]
		}
		var files []File
		for i, c := range contents {
			files = append(files, File{
				Path: "/data/file-" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Data: c,
			})
		}
		blob, err := Build(samplePkg(), files)
		if err != nil {
			return false
		}
		_, got, err := Extract(blob)
		if err != nil || len(got) != len(files) {
			return false
		}
		byPath := map[string][]byte{}
		for _, f := range got {
			byPath[f.Path] = f.Data
		}
		for _, f := range files {
			if !bytes.Equal(byPath[f.Path], f.Data) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	files := make([]File, 50)
	rng := rand.New(rand.NewSource(2))
	for i := range files {
		data := make([]byte, 4096)
		rng.Read(data)
		files[i] = File{Path: "/usr/lib/pkg/file-" + string(rune('a'+i%26)), Data: data}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(samplePkg(), files); err != nil {
			b.Fatal(err)
		}
	}
}
