// Package pkgfmt implements the binary package format (the ".deb" analogue)
// used throughout the reproduction: a gzip-compressed tar archive holding a
// control stanza and the package's files. The Expelliarmus publish path
// recreates these binaries from installed files (dpkg-repack style,
// Sec. V-3) and the retrieval path extracts and installs them from the
// local repository (Sec. V-4).
//
// Because the payload is genuinely gzip-compressed with the standard
// library, stored package sizes are smaller than installed sizes exactly as
// the paper describes ("the installation size ... is always larger than
// the size of a software packaged in the .deb or .rpm format").
package pkgfmt

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"

	"expelliarmus/internal/pkgmeta"
)

// File is one file installed by a package. Paths are absolute guest paths.
type File struct {
	Path string
	Data []byte
}

// controlName is the archive member holding the control stanza.
const controlName = "control"

// dataPrefix prefixes data members; the remainder is the absolute path.
const dataPrefix = "data"

// Build assembles a binary package from metadata and files. Files are
// stored sorted by path, making the output deterministic.
func Build(p pkgmeta.Package, files []File) ([]byte, error) {
	if p.Name == "" {
		return nil, fmt.Errorf("pkgfmt: package has no name")
	}
	sorted := append([]File(nil), files...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	var buf bytes.Buffer
	gz, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, err
	}
	tw := tar.NewWriter(gz)

	control := []byte(pkgmeta.FormatControl(p))
	if err := writeMember(tw, controlName, control); err != nil {
		return nil, err
	}
	for _, f := range sorted {
		if !strings.HasPrefix(f.Path, "/") {
			return nil, fmt.Errorf("pkgfmt: %s: file path %q not absolute", p.Name, f.Path)
		}
		if err := writeMember(tw, dataPrefix+f.Path, f.Data); err != nil {
			return nil, err
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	if err := gz.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeMember(tw *tar.Writer, name string, data []byte) error {
	hdr := &tar.Header{
		Name: name,
		Mode: 0644,
		Size: int64(len(data)),
	}
	if err := tw.WriteHeader(hdr); err != nil {
		return err
	}
	_, err := tw.Write(data)
	return err
}

// Extract decodes a binary package into its metadata and files.
func Extract(blob []byte) (pkgmeta.Package, []File, error) {
	var p pkgmeta.Package
	gz, err := gzip.NewReader(bytes.NewReader(blob))
	if err != nil {
		return p, nil, fmt.Errorf("pkgfmt: not a package (gzip): %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	var files []File
	sawControl := false
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return p, nil, fmt.Errorf("pkgfmt: corrupt archive: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return p, nil, fmt.Errorf("pkgfmt: read member %q: %w", hdr.Name, err)
		}
		switch {
		case hdr.Name == controlName:
			p, err = pkgmeta.ParseControl(string(data))
			if err != nil {
				return p, nil, err
			}
			sawControl = true
		case strings.HasPrefix(hdr.Name, dataPrefix+"/"):
			files = append(files, File{
				Path: strings.TrimPrefix(hdr.Name, dataPrefix),
				Data: data,
			})
		default:
			return p, nil, fmt.Errorf("pkgfmt: unexpected member %q", hdr.Name)
		}
	}
	if !sawControl {
		return p, nil, fmt.Errorf("pkgfmt: archive has no control member")
	}
	return p, files, nil
}

// Peek decodes only the control metadata without materialising file data.
func Peek(blob []byte) (pkgmeta.Package, error) {
	var p pkgmeta.Package
	gz, err := gzip.NewReader(bytes.NewReader(blob))
	if err != nil {
		return p, fmt.Errorf("pkgfmt: not a package (gzip): %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return p, fmt.Errorf("pkgfmt: corrupt archive: %w", err)
		}
		if hdr.Name == controlName {
			data, err := io.ReadAll(tr)
			if err != nil {
				return p, err
			}
			return pkgmeta.ParseControl(string(data))
		}
	}
	return p, fmt.Errorf("pkgfmt: archive has no control member")
}
