// Package server exposes one Expelliarmus system over HTTP — the network
// repository of the service era: publish, retrieve, assemble, remove,
// stats, sync, snapshot and graph export, with request and response
// bodies streamed end to end.
//
// Streaming contract. Retrieval and assembly responses carry the image
// bytes as a chunked body written straight from the assembly pipeline
// (core.RetrieveTo into the ResponseWriter — the server never holds a
// whole image), followed by HTTP trailers:
//
//	X-Expel-Sha256  hex digest of the body
//	X-Expel-Bytes   body length in bytes
//	X-Expel-Result  the operation's wire.RetrieveResult as JSON
//
// An error before the first body byte yields a clean status code; an
// error after bytes have flowed aborts the connection mid-chunk, so a
// client can never mistake a truncated image for a complete one (the
// chunked framing never terminates and the trailers never arrive).
//
// Error mapping. Absence and corruption are deliberately kept apart, on
// the wire as in the blob store: a missing VMI is 404 with
// X-Expel-Error-Kind "not-found", while a blob the store cannot serve
// faithfully is 500 with kind "corrupt" — the client resurfaces these as
// vmirepo.ErrNotFound and blobstore.ErrCorrupt respectively, so remote
// callers route the two cases exactly like in-process ones.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/core"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

// Header and trailer names of the streaming protocol.
const (
	HeaderSha256    = "X-Expel-Sha256"
	HeaderBytes     = "X-Expel-Bytes"
	HeaderResult    = "X-Expel-Result"
	HeaderErrorKind = "X-Expel-Error-Kind"
	// HeaderEpoch carries the snapshot/WAL epoch of a replication stream.
	HeaderEpoch = "X-Expel-Epoch"
	// HeaderSize declares a replication stream's exact byte length up
	// front (HeaderBytes arrives only in the trailers, after the body), so
	// a follower can size its buffer once and consume the stream without
	// growing an intermediate copy.
	HeaderSize = "X-Expel-Size"
)

// Error kinds carried in HeaderErrorKind.
const (
	KindNotFound = "not-found"
	KindCorrupt  = "corrupt"
	// KindReadOnly marks a mutating request refused by a follower daemon.
	KindReadOnly = "read-only"
	// KindEpochGone marks a WAL tail request for an epoch the writer's
	// compaction has retired — the follower must restart from the current
	// snapshot.
	KindEpochGone = "epoch-gone"
	// KindQuotaExceeded marks a publish rejected because it would push its
	// tenant past the configured quota.
	KindQuotaExceeded = "quota-exceeded"
)

// Server is an http.Handler serving one shared Expelliarmus system.
// Concurrency is delegated to the system itself, which is safe for any
// mix of publishes, retrievals and removals.
type Server struct {
	sys  *core.System
	mux  *http.ServeMux
	repl ReplStatser
}

// ReplStatser reports replication state for the stats endpoint — the
// replica catch-up loop implements it on follower daemons (the server
// cannot import internal/replica directly: client → server → core).
type ReplStatser interface {
	ReplicationStats() wire.ReplicationStats
}

// SetReplica attaches a follower's replication loop so /v1/stats reports
// applied epoch/offset and lag. Call before serving requests.
func (s *Server) SetReplica(rs ReplStatser) { s.repl = rs }

// New returns a server over sys.
func New(sys *core.System) *Server {
	s := &Server{sys: sys, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/images/{name}", s.handleRetrieve)
	s.mux.HandleFunc("POST /v1/images", s.handlePublish)
	s.mux.HandleFunc("DELETE /v1/images/{name}", s.handleRemove)
	s.mux.HandleFunc("POST /v1/assemble", s.handleAssemble)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/sync", s.handleSync)
	s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	s.mux.HandleFunc("POST /v1/vacuum", s.handleVacuum)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/graphs/dot", s.handleDOT)
	s.mux.HandleFunc("GET /v1/repl/commit", s.handleReplCommit)
	s.mux.HandleFunc("GET /v1/repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("GET /v1/repl/wal", s.handleReplWAL)
	s.mux.HandleFunc("GET /v1/repl/blob/{id}", s.handleReplBlob)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeError maps an operation error onto a status and error-kind
// header. It must only be called before any body bytes were written.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, vmirepo.ErrNotFound), errors.Is(err, blobstore.ErrNotFound):
		w.Header().Set(HeaderErrorKind, KindNotFound)
		status = http.StatusNotFound
	case errors.Is(err, blobstore.ErrCorrupt):
		w.Header().Set(HeaderErrorKind, KindCorrupt)
	case errors.Is(err, vmirepo.ErrReadOnly):
		w.Header().Set(HeaderErrorKind, KindReadOnly)
		status = http.StatusForbidden
	case errors.Is(err, metawal.ErrEpochGone):
		w.Header().Set(HeaderErrorKind, KindEpochGone)
		status = http.StatusGone
	case errors.Is(err, vmirepo.ErrQuotaExceeded):
		w.Header().Set(HeaderErrorKind, KindQuotaExceeded)
		status = http.StatusRequestEntityTooLarge
	}
	http.Error(w, err.Error(), status)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// hashCountWriter tees the streamed body into a digest and a byte count
// for the response trailers.
type hashCountWriter struct {
	w io.Writer
	h io.Writer
	n int64
}

func (hw *hashCountWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	hw.n += int64(n)
	return n, err
}

// streamImage runs produce with the response writer as sink and settles
// the streaming contract: trailers on success, a clean status when the
// operation failed before its first byte, a connection abort when it
// failed with bytes already on the wire.
func streamImage(w http.ResponseWriter, produce func(io.Writer) (*wire.RetrieveResult, error)) {
	w.Header().Set("Trailer", HeaderSha256+", "+HeaderBytes+", "+HeaderResult)
	w.Header().Set("Content-Type", "application/octet-stream")
	h := sha256.New()
	hw := &hashCountWriter{w: w, h: h}
	res, err := produce(hw)
	if err != nil {
		if hw.n == 0 {
			// Nothing sent yet: undo the trailer declaration and fail clean.
			w.Header().Del("Trailer")
			writeError(w, err)
			return
		}
		// Bytes are already on the wire; the only honest signal left is a
		// dead connection, which the chunked framing turns into an
		// unmistakable truncation on the client side.
		panic(http.ErrAbortHandler)
	}
	rb, merr := json.Marshal(res)
	if merr != nil {
		panic(http.ErrAbortHandler)
	}
	w.Header().Set(HeaderSha256, hex.EncodeToString(h.Sum(nil)))
	w.Header().Set(HeaderBytes, strconv.FormatInt(hw.n, 10))
	w.Header().Set(HeaderResult, string(rb))
}

func (s *Server) handleRetrieve(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	streamImage(w, func(sink io.Writer) (*wire.RetrieveResult, error) {
		_, rep, err := s.sys.RetrieveTo(sink, name)
		if err != nil {
			return nil, err
		}
		return wire.NewRetrieveResult(rep), nil
	})
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	img, meta, err := wire.ReadImageMeta(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("decode image: %v", err), http.StatusBadRequest)
		return
	}
	rep, err := s.sys.PublishWith(img, core.PublishOpts{
		Tenant:    meta.Tenant,
		ExpiresAt: meta.ExpiresAt,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, wire.NewPublishResult(rep))
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	if err := s.sys.Remove(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleAssemble(w http.ResponseWriter, r *http.Request) {
	var req wire.AssembleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("decode request: %v", err), http.StatusBadRequest)
		return
	}
	streamImage(w, func(sink io.Writer) (*wire.RetrieveResult, error) {
		img, rep, err := s.sys.Assemble(req.Name, req.Primaries, req.UserDataFrom)
		if err != nil {
			return nil, err
		}
		if _, err := img.Disk.WriteTo(sink); err != nil {
			return nil, err
		}
		return wire.NewRetrieveResult(rep), nil
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Repo().Stats()
	out := wire.Stats{
		Packages:   st.Packages,
		Bases:      st.Bases,
		VMIs:       st.VMIs,
		TotalBytes: st.TotalBytes,
		DiskBytes:  st.BlobDiskBytes,
		DeadBytes:  st.BlobDeadBytes,
	}
	if cs, ok := s.sys.CacheStats(); ok {
		out.CacheEnabled = true
		out.CacheHits = cs.Hits
		out.CacheMisses = cs.Misses
		out.CacheEntries = cs.Entries
		out.CacheBytes = cs.Bytes
	}
	if ts := s.sys.TenantStats(); len(ts) > 0 {
		out.Tenants = ts
	}
	switch {
	case s.repl != nil:
		rs := s.repl.ReplicationStats()
		out.Repl = &rs
	default:
		if wal := s.sys.Repo().WAL(); wal != nil {
			epoch, durable := wal.CommitState()
			out.Repl = &wire.ReplicationStats{Role: "writer", Epoch: epoch, DurableBytes: durable}
		}
	}
	writeJSON(w, out)
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	st, err := s.sys.Sync()
	if err != nil {
		writeError(w, err)
		return
	}
	writeSyncStats(w, st)
}

// handleCompact forces compaction of both stores (metadata WAL snapshot
// rewrite, blob segment reclamation) and replies with the same durable-
// save breakdown a sync does.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	st, err := s.sys.Compact()
	if err != nil {
		writeError(w, err)
		return
	}
	writeSyncStats(w, st)
}

// handleVacuum reclaims dangling repository state (unreferenced
// packages, orphaned archives and lifecycle records, blob orphans) and
// compacts the stores, replying with what the pass removed.
func (s *Server) handleVacuum(w http.ResponseWriter, r *http.Request) {
	st, err := s.sys.Vacuum()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, wire.VacuumStats{
		PackagesRemoved: st.PackagesRemoved,
		UserDataRemoved: st.UserDataRemoved,
		MetaRemoved:     st.MetaRemoved,
		BlobsReleased:   st.BlobsReleased,
		BytesReclaimed:  st.BytesReclaimed,
	})
}

func writeSyncStats(w http.ResponseWriter, st vmirepo.SyncStats) {
	writeJSON(w, wire.SyncStats{
		Segments:          st.Blobs.Segments,
		SegmentBytes:      st.Blobs.SegmentBytes,
		IndexBytes:        st.Blobs.IndexBytes,
		MetaBytes:         st.MetaBytes,
		MetaOps:           st.MetaOps,
		Compacted:         st.Compacted,
		MetaSnapshotBytes: st.MetaSnapshotBytes,
		SegmentsCompacted: st.Blobs.SegmentsCompacted,
		BytesReclaimed:    st.Blobs.BytesReclaimed,
		DeadBytes:         st.Blobs.DeadBytes,
	})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.sys.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(snap)))
	w.Write(snap)
}

func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	dot, err := s.sys.MasterDOT()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, dot)
}
