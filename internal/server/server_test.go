package server_test

// Client/server integration tests over a real TCP loopback listener —
// httptest's in-process transport would skip exactly the failure modes
// these pin: mid-request connection aborts, request deadlines, and the
// chunked-framing truncation signal. All run under -race in CI.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/client"
	"expelliarmus/internal/core"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/server"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

func testDevice() *simio.Device {
	return simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
}

// startServer serves sys on a real loopback listener and returns its
// address plus the http.Server for shutdown-path tests.
func startServer(t *testing.T, sys *core.System) (string, *http.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(sys)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

// buildTestImage installs the essential package closure onto a fresh
// disk, optionally adds user data under /home and an opaque bulk payload
// under /opt/bulk (outside package management and user-data roots, so it
// rides in the base image and bloats the retrieval stream).
func buildTestImage(t *testing.T, name string, userData bool, bulk int64) *vmi.Image {
	t.Helper()
	uni := catalog.NewUniverse()
	names, err := pkgmgr.Closure(uni, uni.EssentialNames())
	if err != nil {
		t.Fatal(err)
	}
	var contentReal int64
	realFiles := 0
	for _, n := range names {
		spec, _ := uni.Spec(n)
		contentReal += catalog.Real(spec.InstalledSize)
		realFiles += catalog.RealFiles(spec.FileCount) + 1
	}
	const clusterSize = vdisk.DefaultClusterSize
	maxInodes := uint32(realFiles+realFiles/4+128) + 512
	virtualSize := contentReal*3 + bulk + bulk/8 + int64(maxInodes)*64*2 + 8<<20
	virtualSize = (virtualSize + clusterSize - 1) / clusterSize * clusterSize

	disk := vdisk.New(name, virtualSize, clusterSize)
	fs, err := fstree.Format(disk, maxInodes)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		t.Fatal(err)
	}
	order, err := pkgmgr.InstallOrder(uni, names)
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range order {
		for _, n := range group {
			spec, _ := uni.Spec(n)
			files, err := uni.FilesFor(n)
			if err != nil {
				t.Fatal(err)
			}
			if err := mgr.InstallPackage(spec.Package, files); err != nil {
				t.Fatal(err)
			}
		}
	}
	if userData {
		if err := fs.MkdirAll("/home/user"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/home/user/notes.txt", []byte("remote user data")); err != nil {
			t.Fatal(err)
		}
	}
	if bulk > 0 {
		if err := fs.MkdirAll("/opt/bulk"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/opt/bulk/payload.bin", catalog.GenContent(0x5EC1+uint64(bulk), int(bulk))); err != nil {
			t.Fatal(err)
		}
	}
	return &vmi.Image{Name: name, Base: uni.Release().Base, Disk: disk}
}

type shaCounter struct {
	h hash.Hash
	n int64
}

func newShaCounter() *shaCounter { return &shaCounter{h: sha256.New()} }

func (w *shaCounter) Write(p []byte) (int, error) {
	w.h.Write(p)
	w.n += int64(len(p))
	return len(p), nil
}

func (w *shaCounter) sum() string { return fmt.Sprintf("%x", w.h.Sum(nil)) }

// TestRemoteRoundTrip publishes over the wire and checks the remote
// retrieval is byte-identical to an in-process one — the fidelity half
// of the tentpole's headline gate.
func TestRemoteRoundTrip(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute, Retries: 1})
	defer cl.Close()
	ctx := context.Background()

	img := buildTestImage(t, "round-trip", true, 1<<20)
	pub, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) })
	if err != nil {
		t.Fatalf("remote publish: %v", err)
	}
	// An essential-only image decomposes entirely into its base: a fresh
	// base must be stored, and nothing package-exported.
	if !pub.BaseStored || pub.Seconds <= 0 {
		t.Fatalf("publish result implausible: %+v", pub)
	}

	local := newShaCounter()
	if _, _, err := sys.RetrieveTo(local, "round-trip"); err != nil {
		t.Fatalf("in-process retrieve: %v", err)
	}
	remote := newShaCounter()
	n, res, err := cl.Retrieve(ctx, "round-trip", remote)
	if err != nil {
		t.Fatalf("remote retrieve: %v", err)
	}
	if n != local.n || remote.sum() != local.sum() {
		t.Fatalf("remote image differs: %d bytes %s, in-process %d bytes %s",
			n, remote.sum(), local.n, local.sum())
	}
	if res == nil || res.Seconds <= 0 {
		t.Fatalf("retrieve result missing: %+v", res)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.VMIs != 1 || st.Bases != 1 {
		t.Fatalf("stats = %+v, want 1 VMI on 1 base", st)
	}
}

// TestRemoteNoUserData is the regression for the OpenUserData absent
// case: a VMI published without any user data must retrieve cleanly over
// the wire (the nil-reader, nil-error return must never be dereferenced
// anywhere on the serving path).
func TestRemoteNoUserData(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer cl.Close()
	ctx := context.Background()

	img := buildTestImage(t, "no-user-data", false, 0)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		t.Fatalf("remote publish: %v", err)
	}
	sink := newShaCounter()
	n, _, err := cl.Retrieve(ctx, "no-user-data", sink)
	if err != nil {
		t.Fatalf("remote retrieve of a user-data-free VMI: %v", err)
	}
	if n == 0 {
		t.Fatalf("retrieved empty image")
	}
	// And the same image again via assembly, which takes the other
	// OpenUserData-adjacent path (userDataFrom empty).
	if _, _, err := cl.Assemble(ctx, wire.AssembleRequest{Name: "no-user-data-2", Primaries: nil}, io.Discard); err != nil {
		t.Fatalf("remote assemble: %v", err)
	}
}

// TestRemoteNotFound pins the error mapping for absence.
func TestRemoteNotFound(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: time.Minute})
	defer cl.Close()

	_, _, err := cl.Retrieve(context.Background(), "never-published", io.Discard)
	if !errors.Is(err, vmirepo.ErrNotFound) {
		t.Fatalf("remote retrieve of missing VMI = %v, want ErrNotFound", err)
	}
	if errors.Is(err, blobstore.ErrCorrupt) {
		t.Fatalf("absence misreported as corruption: %v", err)
	}
}

// TestConcurrentRemoteRetrieves races many clients over pooled
// connections against one shared system; every stream must verify and
// match every other.
func TestConcurrentRemoteRetrieves(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer cl.Close()
	ctx := context.Background()

	img := buildTestImage(t, "concurrent", true, 2<<20)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		t.Fatal(err)
	}
	ref := newShaCounter()
	if _, _, err := sys.RetrieveTo(ref, "concurrent"); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sink := newShaCounter()
			n, _, err := cl.Retrieve(ctx, "concurrent", sink)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if n != ref.n || sink.sum() != ref.sum() {
				t.Errorf("client %d: stream differs from in-process retrieval", i)
			}
		}(i)
	}
	wg.Wait()
}

// closeServerSink closes the server after the first body bytes arrive,
// then keeps consuming: the remainder of the stream must fail, not
// silently end.
type closeServerSink struct {
	srv  *http.Server
	once sync.Once
	n    int64
}

func (s *closeServerSink) Write(p []byte) (int, error) {
	s.once.Do(func() { s.srv.Close() })
	s.n += int64(len(p))
	return len(p), nil
}

// TestMidRequestShutdown kills the server while a retrieval is streaming;
// the client must surface an error — never a short-but-clean image.
func TestMidRequestShutdown(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, srv := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer cl.Close()
	ctx := context.Background()

	// Big enough that the response cannot fit in the socket buffers: the
	// server is still writing when the connection dies.
	img := buildTestImage(t, "shutdown", false, 24<<20)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		t.Fatal(err)
	}
	sink := &closeServerSink{srv: srv}
	_, _, err := cl.Retrieve(ctx, "shutdown", sink)
	if err == nil {
		t.Fatalf("retrieve across a server shutdown reported success (%d bytes)", sink.n)
	}
}

// TestRequestDeadline pins the per-request deadline: a client-imposed
// timeout shorter than the retrieval must surface context.DeadlineExceeded.
func TestRequestDeadline(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	slow := client.New(addr, client.Options{Timeout: time.Millisecond})
	defer slow.Close()
	setup := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer setup.Close()
	ctx := context.Background()

	img := buildTestImage(t, "deadline", false, 8<<20)
	if _, err := setup.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		t.Fatal(err)
	}
	_, _, err := slow.Retrieve(ctx, "deadline", io.Discard)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1ms-deadline retrieve = %v, want DeadlineExceeded", err)
	}
}

// corruptSegmentKinds flips the kind byte of every record in every
// segment file under dir — in place, on the same inodes the store holds
// open, so its positional reads see the damage immediately.
func corruptSegmentKinds(t *testing.T, dir string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), "seg-") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Records start after the 8-byte magic: [crc|len|kind|payload].
		for off := int64(8); off+9 <= int64(len(raw)); {
			plen := int64(binary.LittleEndian.Uint32(raw[off+4 : off+8]))
			if _, err := f.WriteAt([]byte{0xEE}, off+8); err != nil {
				t.Fatal(err)
			}
			off += 9 + plen
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRemoteCorruptIsNotNotFound is the acceptance gate's remote half:
// after on-disk damage, a remote retrieval must report corruption —
// wrapping blobstore.ErrCorrupt through the HTTP error mapping — and
// never a 404.
func TestRemoteCorruptIsNotNotFound(t *testing.T) {
	dir := t.TempDir()
	repo, err := vmirepo.OpenAtOpts(dir, testDevice(), vmirepo.OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystemWithRepo(repo, testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer cl.Close()
	ctx := context.Background()

	img := buildTestImage(t, "rot", true, 1<<20)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		t.Fatal(err)
	}
	// Flush the records to disk, then damage every one of them.
	if _, err := cl.Sync(ctx); err != nil {
		t.Fatalf("remote sync: %v", err)
	}
	corruptSegmentKinds(t, filepath.Join(dir, "blobs"))

	_, _, err = cl.Retrieve(ctx, "rot", io.Discard)
	if err == nil {
		t.Fatalf("remote retrieve served a corrupt repository")
	}
	if !errors.Is(err, blobstore.ErrCorrupt) {
		t.Fatalf("remote retrieve of corrupt blob = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, vmirepo.ErrNotFound) {
		t.Fatalf("corruption conflated with absence over the wire: %v", err)
	}
	// The store is sticky-failed now; Close would rightly error. Leave the
	// handles to the process exit — this repository is damage evidence.
}

// TestRemoteCompactReclaims exercises the compaction verb end to end on
// a disk-backed server: remove a bulky VMI, observe dead bytes in the
// stats, POST /v1/compact, and watch the physical footprint shrink while
// a surviving image still retrieves byte-identically. Auto-compaction is
// disabled so the reclamation is attributable to the verb under test.
func TestRemoteCompactReclaims(t *testing.T) {
	dir := t.TempDir()
	repo, err := vmirepo.OpenAtOpts(dir, testDevice(), vmirepo.OpenOptions{BlobCompactDeadRatio: -1})
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystemWithRepo(repo, testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer cl.Close()
	ctx := context.Background()

	// Publish and remove a victim on its own, syncing so its releases
	// commit and its whole base goes dead on disk; then publish the
	// keeper, whose fresh base lands on top of the garbage and straddles
	// the segment roll — compaction must rewrite those live records out
	// of the mostly-dead sealed segment.
	victim := buildTestImage(t, "victim", false, 4<<20)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, victim) }); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove(ctx, "victim"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	keeper := buildTestImage(t, "keeper", true, 1<<20)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, keeper) }); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	ref := newShaCounter()
	if _, _, err := cl.Retrieve(ctx, "keeper", ref); err != nil {
		t.Fatal(err)
	}
	before, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.DeadBytes == 0 {
		t.Fatalf("removal left no visible garbage: %+v", before)
	}

	cst, err := cl.Compact(ctx)
	if err != nil {
		t.Fatalf("remote compact: %v", err)
	}
	if cst.SegmentsCompacted == 0 || cst.BytesReclaimed == 0 {
		t.Fatalf("compact reclaimed nothing: %+v", cst)
	}
	after, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.DiskBytes >= before.DiskBytes {
		t.Fatalf("disk footprint did not shrink: %d -> %d", before.DiskBytes, after.DiskBytes)
	}
	if after.TotalBytes != before.TotalBytes {
		t.Fatalf("compaction changed the live size: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	sink := newShaCounter()
	if _, _, err := cl.Retrieve(ctx, "keeper", sink); err != nil {
		t.Fatalf("retrieve after compact: %v", err)
	}
	if sink.n != ref.n || sink.sum() != ref.sum() {
		t.Fatalf("keeper changed across compaction")
	}
}

// TestRemoteRemoveAndSnapshot covers the remaining verbs end to end.
func TestRemoteRemoveAndSnapshot(t *testing.T) {
	sys := core.NewSystem(testDevice(), core.Options{})
	addr, _ := startServer(t, sys)
	cl := client.New(addr, client.Options{Timeout: 2 * time.Minute})
	defer cl.Close()
	ctx := context.Background()

	img := buildTestImage(t, "verbs", true, 0)
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		t.Fatal(err)
	}
	dot, err := cl.GraphDOT(ctx)
	if err != nil || !strings.Contains(dot, "digraph") {
		t.Fatalf("GraphDOT = %q, %v", dot, err)
	}
	var snap bytes.Buffer
	if n, err := cl.Snapshot(ctx, &snap); err != nil || n == 0 {
		t.Fatalf("Snapshot = %d, %v", n, err)
	}
	if err := cl.Remove(ctx, "verbs"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := cl.Remove(ctx, "verbs"); !errors.Is(err, vmirepo.ErrNotFound) {
		t.Fatalf("second Remove = %v, want ErrNotFound", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil || st.VMIs != 0 {
		t.Fatalf("stats after remove = %+v, %v", st, err)
	}
}
