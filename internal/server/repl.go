// Replication endpoints: the writer side of snapshot + WAL shipping. A
// follower (internal/replica) tails these four routes:
//
//	GET /v1/repl/commit              current epoch + durable WAL bytes
//	GET /v1/repl/snapshot            full metadata snapshot of the
//	                                 current epoch (X-Expel-Epoch header)
//	GET /v1/repl/wal?epoch=&from=    durable WAL tail [from, durable)
//	GET /v1/repl/blob/{id}           one raw blob by content ID
//
// The byte streams reuse the retrieval trailers (X-Expel-Sha256,
// X-Expel-Bytes), so a follower verifies every shipped byte the same way
// image downloads are verified. A WAL request for an epoch the writer's
// compaction has retired is 410 with kind "epoch-gone" — the signal to
// restart from the current snapshot.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/wire"
)

// replWAL returns the repository's metadata WAL, or an error for servers
// that have nothing to ship (memory-backed daemons persist nothing).
func (s *Server) replWAL() (*metawal.Log, error) {
	wal := s.sys.Repo().WAL()
	if wal == nil {
		return nil, fmt.Errorf("server: repository has no WAL to replicate (memory-backed?)")
	}
	return wal, nil
}

func (s *Server) handleReplCommit(w http.ResponseWriter, r *http.Request) {
	wal, err := s.replWAL()
	if err != nil {
		writeError(w, err)
		return
	}
	epoch, durable := wal.CommitState()
	writeJSON(w, wire.ReplCommit{Epoch: epoch, DurableBytes: durable})
}

// streamVerified copies a replication byte stream to the client with the
// digest/length trailers, aborting the connection if the source fails
// mid-body (mirroring streamImage's truncation contract).
func streamVerified(w http.ResponseWriter, rc io.ReadCloser, size int64) {
	defer rc.Close()
	w.Header().Set("Trailer", HeaderSha256+", "+HeaderBytes)
	w.Header().Set("Content-Type", "application/octet-stream")
	h := sha256.New()
	hw := &hashCountWriter{w: w, h: h}
	if _, err := io.Copy(hw, rc); err != nil || hw.n != size {
		panic(http.ErrAbortHandler)
	}
	w.Header().Set(HeaderSha256, hex.EncodeToString(h.Sum(nil)))
	w.Header().Set(HeaderBytes, strconv.FormatInt(hw.n, 10))
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	wal, err := s.replWAL()
	if err != nil {
		writeError(w, err)
		return
	}
	epoch, rc, size, err := wal.SnapshotReader()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	w.Header().Set(HeaderSize, strconv.FormatInt(size, 10))
	streamVerified(w, rc, size)
}

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	wal, err := s.replWAL()
	if err != nil {
		writeError(w, err)
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad epoch: %v", err), http.StatusBadRequest)
		return
	}
	from, err := strconv.ParseInt(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad from offset: %v", err), http.StatusBadRequest)
		return
	}
	rc, n, err := wal.WALReader(epoch, from)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	streamVerified(w, rc, n)
}

func (s *Server) handleReplBlob(w http.ResponseWriter, r *http.Request) {
	id, err := blobstore.ParseID(r.PathValue("id"))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad blob id: %v", err), http.StatusBadRequest)
		return
	}
	rc, size, err := s.sys.Repo().OpenBlob(id)
	if err != nil {
		writeError(w, err)
		return
	}
	streamVerified(w, rc, size)
}
