package core

import (
	"bytes"
	"sort"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

var testDev = simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))

func newSystem(t *testing.T, opts Options) (*System, *builder.Builder) {
	t.Helper()
	return NewSystem(testDev, opts), builder.New(catalog.NewUniverse())
}

func buildImage(t *testing.T, b *builder.Builder, name string) *vmi.Image {
	t.Helper()
	tpl, ok := catalog.Find(name)
	if !ok {
		t.Fatalf("template %s not found", name)
	}
	img, err := b.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestPublishMiniStoresBase(t *testing.T) {
	s, b := newSystem(t, Options{})
	rep, err := s.Publish(buildImage(t, b, "Mini"))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BaseStored {
		t.Fatal("first publish did not store a base image")
	}
	if rep.Similarity != 0 {
		t.Fatalf("Similarity = %v on empty repo, want 0 (Table II row 1)", rep.Similarity)
	}
	if len(rep.Exported) != 0 {
		t.Fatalf("Mini exported packages: %v", rep.Exported)
	}
	st := s.Repo().Stats()
	if st.Bases != 1 || st.VMIs != 1 {
		t.Fatalf("repo stats: %+v", st)
	}
	// Publish time is dominated by the base store; the paper reports
	// 39.52 s for Mini.
	if sec := rep.Seconds(); sec < 20 || sec > 60 {
		t.Errorf("Mini publish = %.1fs, want ~39.5s (band [20,60])", sec)
	}
}

func TestPublishSecondImageDedupsBase(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	sizeAfterMini := s.Repo().SizeBytes()

	rep, err := s.Publish(buildImage(t, b, "Redis"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseStored {
		t.Fatal("Redis stored a second base image despite identical base")
	}
	if rep.Similarity < 0.9 {
		t.Fatalf("Redis similarity = %.3f, want ~0.97 (Table II)", rep.Similarity)
	}
	if len(rep.Exported) != 1 || rep.Exported[0] != "redis-server" {
		t.Fatalf("Redis exported %v, want [redis-server]", rep.Exported)
	}
	// Repo grows only by the redis package and user data.
	growth := s.Repo().SizeBytes() - sizeAfterMini
	if growth > catalog.Real(40*1e6) {
		t.Fatalf("repo grew %d bytes for Redis, want < 40 paper-MB", growth)
	}
	if st := s.Repo().Stats(); st.Bases != 1 {
		t.Fatalf("bases = %d, want 1", st.Bases)
	}
	// Redis publish is fast (paper: 10.28 s).
	if sec := rep.Seconds(); sec < 5 || sec > 20 {
		t.Errorf("Redis publish = %.1fs, want ~10s", sec)
	}
}

func TestPublishSharedPackagesNotReexported(t *testing.T) {
	s, b := newSystem(t, Options{})
	for _, n := range []string{"Mini", "Base"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	// Lemp shares mysql-server with Base: only nginx and php-fpm are new.
	rep, err := s.Publish(buildImage(t, b, "Lemp"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(rep.Exported)
	want := []string{"nginx", "php-fpm"}
	if len(rep.Exported) != 2 || rep.Exported[0] != want[0] || rep.Exported[1] != want[1] {
		t.Fatalf("Lemp exported %v, want %v", rep.Exported, want)
	}
	if rep.Skipped == 0 {
		t.Fatal("Lemp skipped no packages despite overlap with Base")
	}
}

func TestPublishRetrieveRoundTrip(t *testing.T) {
	s, b := newSystem(t, Options{})
	orig := buildImage(t, b, "Redis")

	// Capture ground truth before publishing consumes the image.
	origFS, _ := orig.Mount()
	var userPaths []string
	userData := map[string][]byte{}
	for _, root := range vmi.UserDataRoots {
		origFS.Walk(root, func(fi fstree.FileInfo) error {
			if !fi.IsDir {
				data, _ := origFS.ReadFile(fi.Path)
				userPaths = append(userPaths, fi.Path)
				userData[fi.Path] = data
			}
			return nil
		})
	}
	origMgr, _ := pkgmgr.New(origFS)
	origPkgs, _ := origMgr.Installed()

	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(orig); err != nil {
		t.Fatal(err)
	}

	got, rep, err := s.Retrieve("Redis")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Redis" || len(got.Primaries) != 1 {
		t.Fatalf("retrieved metadata: %+v", got)
	}

	// Functional equivalence: same package set, same user data.
	gotFS, err := got.Mount()
	if err != nil {
		t.Fatal(err)
	}
	gotMgr, _ := pkgmgr.New(gotFS)
	gotPkgs, _ := gotMgr.Installed()
	if len(gotPkgs) != len(origPkgs) {
		t.Fatalf("retrieved %d packages, original had %d", len(gotPkgs), len(origPkgs))
	}
	for i := range origPkgs {
		if gotPkgs[i].Ref() != origPkgs[i].Ref() {
			t.Fatalf("package %d: %s != %s", i, gotPkgs[i].Ref(), origPkgs[i].Ref())
		}
	}
	if !gotFS.Exists("/usr/bin/redis-server") {
		t.Fatal("redis binary missing after retrieval")
	}
	for _, p := range userPaths {
		data, err := gotFS.ReadFile(p)
		if err != nil {
			t.Fatalf("user data %s missing: %v", p, err)
		}
		if !bytes.Equal(data, userData[p]) {
			t.Fatalf("user data %s corrupted", p)
		}
	}
	// Temporary assembly machinery cleaned up.
	if gotFS.Exists(localRepoDir) {
		t.Fatal("local repository not cleaned up")
	}
	if gotFS.Exists("/etc/apt/sources.list.d/local.list") {
		t.Fatal("local sources config not removed")
	}
	// Retrieval time near the paper's 22.05 s for Redis.
	if sec := rep.Seconds(); sec < 10 || sec > 40 {
		t.Errorf("Redis retrieval = %.1fs, want ~22s", sec)
	}
	// Phase decomposition (Fig. 5a): copy, launch, reset, import all present.
	for _, ph := range []simio.Phase{simio.PhaseCopy, simio.PhaseLaunch, simio.PhaseReset, simio.PhaseImport} {
		if rep.Meter.Phase(ph) == 0 {
			t.Errorf("retrieval phase %s has zero cost", ph)
		}
	}
}

func TestRetrieveUnknownVMI(t *testing.T) {
	s, _ := newSystem(t, Options{})
	if _, _, err := s.Retrieve("ghost"); err == nil {
		t.Fatal("retrieved unknown VMI")
	}
}

func TestRetrieveMiniNoImports(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	got, rep, err := s.Retrieve("Mini")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Imported) != 0 {
		t.Fatalf("Mini imported %v", rep.Imported)
	}
	fs, _ := got.Mount()
	mgr, _ := pkgmgr.New(fs)
	if !mgr.IsInstalled("libc6") {
		t.Fatal("base packages missing")
	}
	// Churn was reset: the retrieved Mini is pristine.
	if fs.Exists("/var/log/run") {
		t.Fatal("instance churn survived sysprep")
	}
}

func TestAssembleNovelCombination(t *testing.T) {
	s, b := newSystem(t, Options{})
	for _, n := range []string{"Mini", "Redis", "Base"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	// redis-server + apache2 were never uploaded together.
	img, rep, err := s.Assemble("custom", []string{"redis-server", "apache2"}, "")
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := img.Mount()
	mgr, _ := pkgmgr.New(fs)
	for _, p := range []string{"redis-server", "apache2", "libaprutil1", "libc6"} {
		if !mgr.IsInstalled(p) {
			t.Fatalf("assembled image missing %s", p)
		}
	}
	if len(rep.Imported) < 3 {
		t.Fatalf("imported = %v", rep.Imported)
	}
	// Unavailable package combinations fail.
	if _, _, err := s.Assemble("bad", []string{"mongodb-org"}, ""); err == nil {
		t.Fatal("assembled VMI with package never published")
	}
}

func TestPublishIsIdempotentPerName(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	size1 := s.Repo().SizeBytes()
	// Republishing the same image (rebuilt, identical content) adds nothing
	// but the republished user data (deduped as a blob) and DB noise.
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	size2 := s.Repo().SizeBytes()
	if size2-size1 > 64*1024 {
		t.Fatalf("republish grew repo by %d bytes", size2-size1)
	}
}

func TestNoBaseSelectionStoresEveryBase(t *testing.T) {
	s, b := newSystem(t, Options{NoBaseSelection: true})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Repo().Stats(); st.Bases != 2 {
		t.Fatalf("bases = %d with selection disabled, want 2", st.Bases)
	}

	// With selection enabled the second base replaces nothing (it is never
	// stored), keeping exactly one.
	s2, b2 := newSystem(t, Options{})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s2.Publish(buildImage(t, b2, n)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s2.Repo().Stats(); st.Bases != 1 {
		t.Fatalf("bases = %d with selection enabled, want 1", st.Bases)
	}
}

func TestBaseSelectionReplacesObsoleteBases(t *testing.T) {
	// Publish with selection disabled to accumulate redundant bases, then
	// flip it on: the next publish should consolidate.
	dev := testDev
	s := NewSystem(dev, Options{NoBaseSelection: true})
	b := builder.New(catalog.NewUniverse())
	for _, n := range []string{"Mini", "Redis"} {
		img := buildImage(t, b, n)
		if _, err := s.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Repo().Stats(); st.Bases != 2 {
		t.Fatalf("setup: bases = %d", st.Bases)
	}
	s.opts.NoBaseSelection = false
	rep, err := s.Publish(buildImage(t, b, "PostgreSql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ReplacedBases) == 0 {
		t.Fatal("consolidating publish replaced no bases")
	}
	if st := s.Repo().Stats(); st.Bases != 1 {
		t.Fatalf("bases = %d after consolidation, want 1", st.Bases)
	}
	// All three VMIs remain retrievable after consolidation.
	for _, n := range []string{"Redis", "PostgreSql"} {
		img, _, err := s.Retrieve(n)
		if err != nil {
			t.Fatalf("retrieve %s after consolidation: %v", n, err)
		}
		fs, _ := img.Mount()
		mgr, _ := pkgmgr.New(fs)
		if n == "Redis" && !mgr.IsInstalled("redis-server") {
			t.Fatal("consolidated retrieval lost redis")
		}
	}
}

func TestSemanticVariantExportsEverything(t *testing.T) {
	s, b := newSystem(t, Options{NoSemanticDedup: true})
	if _, err := s.Publish(buildImage(t, b, "Base")); err != nil {
		t.Fatal(err)
	}
	// Lemp shares mysql-server with Base; the variant repacks it anyway.
	rep, err := s.Publish(buildImage(t, b, "Lemp"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped == 0 {
		t.Fatal("variant should still skip storing duplicate refs")
	}
	// Export phase cost exceeds the dedup system's for the same image.
	s2, b2 := newSystem(t, Options{})
	if _, err := s2.Publish(buildImage(t, b2, "Base")); err != nil {
		t.Fatal(err)
	}
	rep2, err := s2.Publish(buildImage(t, b2, "Lemp"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meter.Phase(simio.PhaseExport) <= rep2.Meter.Phase(simio.PhaseExport) {
		t.Fatalf("variant export %.1fs not above dedup export %.1fs",
			rep.Meter.Phase(simio.PhaseExport).Seconds(),
			rep2.Meter.Phase(simio.PhaseExport).Seconds())
	}
}

func TestRepoSizeMonotoneAndBounded(t *testing.T) {
	s, b := newSystem(t, Options{})
	var prev int64
	var published int64
	for _, n := range []string{"Mini", "Redis", "PostgreSql"} {
		img := buildImage(t, b, n)
		st, _ := img.Stats()
		published += st.SerializedBytes
		if _, err := s.Publish(img); err != nil {
			t.Fatal(err)
		}
		size := s.Repo().SizeBytes()
		if size < prev {
			t.Fatalf("repo shrank: %d -> %d", prev, size)
		}
		if size > published+256*1024 {
			t.Fatalf("repo %d exceeds total published bytes %d (+slack)", size, published)
		}
		prev = size
	}
}

func TestDescribeRepo(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	desc := s.DescribeRepo()
	if desc == "" || !bytes.Contains([]byte(desc), []byte("bases=1")) {
		t.Fatalf("DescribeRepo = %q", desc)
	}
}
