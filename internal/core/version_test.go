package core

import (
	"errors"
	"testing"

	"expelliarmus/internal/master"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/vmi"
)

// upgradeRedisInImage swaps the image's redis-server for a v2 build.
func upgradeRedisInImage(t *testing.T, img *vmi.Image) {
	t.Helper()
	fs, err := img.Mount()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		t.Fatal(err)
	}
	v2, ok, err := mgr.Get("redis-server")
	if err != nil || !ok {
		t.Fatalf("redis-server not installed: %v", err)
	}
	v2.Version = "2.0-ubuntu2"
	blob, err := pkgfmt.Build(v2, []pkgfmt.File{
		{Path: "/usr/bin/redis-server", Data: []byte("redis v2 binary")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Upgrade(blob); err != nil {
		t.Fatal(err)
	}
}

// TestVersionConflictRejected: publishing a second VMI that carries a
// different version of an already-clustered primary on the same base must
// fail with ErrVersionConflict (the master-graph limitation documented in
// DESIGN.md §6).
func TestVersionConflictRejected(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	upgraded := buildImage(t, b, "Redis")
	upgraded.Name = "Redis-v2"
	upgradeRedisInImage(t, upgraded)

	_, err := s.Publish(upgraded)
	if err == nil {
		t.Fatal("conflicting publish succeeded")
	}
	var conflict *master.ErrVersionConflict
	if !errors.As(err, &conflict) {
		t.Fatalf("error = %v, want ErrVersionConflict", err)
	}
	if conflict.Pkg != "redis-server" {
		t.Fatalf("conflict on %q", conflict.Pkg)
	}
	// The failed publish must not have broken the existing VMI.
	if _, _, err := s.Retrieve("Redis"); err != nil {
		t.Fatalf("original Redis broken by failed publish: %v", err)
	}
}

// TestVersionUpgradeAfterRetirement: retiring the old VMI rebuilds the
// master graph and unblocks publishing the upgraded image; retrieval then
// installs the new version.
func TestVersionUpgradeAfterRetirement(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("Redis"); err != nil {
		t.Fatal(err)
	}

	upgraded := buildImage(t, b, "Redis")
	upgraded.Name = "Redis-v2"
	upgradeRedisInImage(t, upgraded)
	rep, err := s.Publish(upgraded)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Exported) != 1 || rep.Exported[0] != "redis-server" {
		t.Fatalf("exported = %v", rep.Exported)
	}
	if !s.Repo().HasPackage("redis-server=2.0-ubuntu2/amd64", nil) {
		t.Fatal("v2 package not stored")
	}

	got, _, err := s.Retrieve("Redis-v2")
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := got.Mount()
	mgr, _ := pkgmgr.New(fs)
	p, ok, _ := mgr.Get("redis-server")
	if !ok || p.Version != "2.0-ubuntu2" {
		t.Fatalf("retrieved version = %+v (ok=%v)", p, ok)
	}
	data, err := fs.ReadFile("/usr/bin/redis-server")
	if err != nil || string(data) != "redis v2 binary" {
		t.Fatalf("binary = %q, %v", data, err)
	}
}
