package core

import (
	"fmt"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/vmirepo"
)

// TestLifecycleCrashMatrix extends the WAL kill-point matrix to the
// lifecycle paths: a TTL sweep (ExpireAt -> Remove) killed while its
// commit is in flight, and a Vacuum killed inside its internal
// compaction. Recovery must land on exactly one of the two
// transactionally consistent states — the last synced state (the expired
// image back, its tenant still charged) when the kill preceded the
// effective commit, the new state (image gone, tenant credited) when it
// followed — never a mix, and never metadata pointing at missing blobs.
// Orphan blobs are the only permitted drift; Vacuum itself is the tool
// that reclaims them, so a re-run after recovery must converge.
func TestLifecycleCrashMatrix(t *testing.T) {
	cases := []struct {
		name   string
		point  metawal.KillPoint
		vacuum bool
		// newState: the reopened repository reflects the expiry (Mini gone,
		// alice credited); otherwise the last synced state.
		newState bool
	}{
		{"expire-after-blob-syncdata", metawal.KillBeforeAppend, false, false},
		{"expire-after-wal-append", metawal.KillAfterAppend, false, true},
		{"expire-after-watermark", metawal.KillAfterCommit, false, true},
		{"vacuum-mid-compaction-after-snapshot", metawal.KillAfterSnapshot, true, false},
		{"vacuum-mid-compaction-after-wal-reset", metawal.KillAfterWALReset, true, false},
		{"vacuum-after-compaction-commit", metawal.KillAfterCompactCommit, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			repo, err := vmirepo.OpenAt(dir, testDev)
			if err != nil {
				t.Fatalf("OpenAt: %v", err)
			}
			sys := NewSystemWithRepo(repo, testDev, Options{})
			b := builder.New(catalog.NewUniverse())
			if _, err := sys.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "alice", ExpiresAt: 100}); err != nil {
				t.Fatalf("publish Mini: %v", err)
			}
			if _, err := sys.PublishWith(buildImage(t, b, "Redis"), PublishOpts{Tenant: "bob"}); err != nil {
				t.Fatalf("publish Redis: %v", err)
			}
			aliceCharge := sys.TenantStats()["alice"]
			bobCharge := sys.TenantStats()["bob"]
			if aliceCharge <= 0 || bobCharge <= 0 {
				t.Fatalf("publishes not charged: alice %d, bob %d", aliceCharge, bobCharge)
			}
			if _, err := sys.Sync(); err != nil {
				t.Fatalf("baseline Sync: %v", err)
			}

			// The mutation under test: the TTL sweep removes Mini (its
			// metadata deletes, queued blob releases, and tenant credit all
			// ride the killed commit).
			expired, err := sys.ExpireAt(150)
			if err != nil || len(expired) != 1 || expired[0] != "Mini" {
				t.Fatalf("ExpireAt = %v, %v; want [Mini]", expired, err)
			}

			repo.WAL().Kill = func(p metawal.KillPoint) error {
				if p == tc.point {
					return fmt.Errorf("injected crash at %s", tc.name)
				}
				return nil
			}
			if tc.vacuum {
				_, err = sys.Vacuum()
			} else {
				_, err = sys.Sync()
			}
			if err == nil {
				t.Fatalf("killed %s reported success", tc.name)
			}
			if err := repo.Abandon(); err != nil {
				t.Fatalf("Abandon: %v", err)
			}

			repo2, err := vmirepo.OpenAt(dir, testDev)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", tc.name, err)
			}
			sys2 := NewSystemWithRepo(repo2, testDev, Options{})
			defer sys2.Close()
			checkNoDanglingMetadata(t, sys2)

			if _, _, err := sys2.Retrieve("Redis"); err != nil {
				t.Fatalf("Redis must survive crash at %s: %v", tc.name, err)
			}
			_, _, err = sys2.Retrieve("Mini")
			if tc.newState && err == nil {
				t.Fatalf("expired Mini resurrected after crash at %s", tc.name)
			}
			if !tc.newState && err != nil {
				t.Fatalf("crash before commit must roll back to last sync; Mini: %v", err)
			}

			// Tenant accounting is part of the same transaction: it must
			// match whichever state recovery landed on, exactly.
			wantAlice := aliceCharge
			if tc.newState {
				wantAlice = 0
			}
			if got := sys2.TenantStats()["alice"]; got != wantAlice {
				t.Fatalf("alice charged %d after crash at %s, want %d", got, tc.name, wantAlice)
			}
			if got := sys2.TenantStats()["bob"]; got != bobCharge {
				t.Fatalf("bob charged %d after crash at %s, want %d", got, tc.name, bobCharge)
			}

			// The only drift the protocol allows is orphan blobs; a Vacuum
			// on the recovered repository reclaims them and converges — a
			// second pass finds nothing.
			if _, err := sys2.Vacuum(); err != nil {
				t.Fatalf("vacuum after recovery: %v", err)
			}
			st, err := sys2.Vacuum()
			if err != nil {
				t.Fatalf("second vacuum after recovery: %v", err)
			}
			if st.PackagesRemoved != 0 || st.BlobsReleased != 0 || st.MetaRemoved != 0 || st.UserDataRemoved != 0 {
				t.Fatalf("vacuum did not converge after crash at %s: %+v", tc.name, st)
			}
			if _, _, err := sys2.Retrieve("Redis"); err != nil {
				t.Fatalf("Redis lost to post-recovery vacuum: %v", err)
			}
		})
	}
}
