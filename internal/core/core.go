// Package core implements the Expelliarmus system of Sec. IV: the semantic
// analyzer, the VMI decomposer (publishing, Algorithm 1), base-image
// selection (Algorithm 2) and the VMI assembler (retrieval, Algorithm 3),
// orchestrated over the repository of Fig. 2.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path"
	"sort"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/guestfs"
	"expelliarmus/internal/master"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/semgraph"
	"expelliarmus/internal/similarity"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// Options configure the system. The zero value enables the full design;
// the flags exist for the paper's "semantic decomposition" variant
// (Fig. 4b) and the ablation studies in DESIGN.md.
type Options struct {
	// NoSemanticDedup disables the repository-existence check during
	// export: every required package is repacked and stored, as in the
	// paper's "Semantic" comparison variant.
	NoSemanticDedup bool
	// NoBaseSelection disables Algorithm 2: every published VMI stores its
	// own base image (ablation A3).
	NoBaseSelection bool
}

// System is the Expelliarmus VMI management system.
type System struct {
	repo *vmirepo.Repo
	dev  *simio.Device
	opts Options
}

// NewSystem creates a system over a fresh repository.
func NewSystem(dev *simio.Device, opts Options) *System {
	return &System{repo: vmirepo.New(dev), dev: dev, opts: opts}
}

// Repo exposes the underlying repository.
func (s *System) Repo() *vmirepo.Repo { return s.repo }

// PublishReport describes one publish operation.
type PublishReport struct {
	Image string
	// Similarity is SimG between the uploaded VMI's semantic graph and the
	// best-matching master graph (0 when the repository holds none with
	// matching base attributes) — Table II's "Similarity [SimG]".
	Similarity float64
	// Exported lists the packages repacked and stored (non-redundant).
	Exported []string
	// ExportedBytes is their total installed size (paper scale).
	ExportedBytes int64
	// Skipped counts packages already present in the repository.
	Skipped int
	// BaseStored reports whether this publish stored a new base image.
	BaseStored bool
	// BaseID is the base image the VMI was clustered on.
	BaseID string
	// ReplacedBases lists base images removed by Algorithm 2.
	ReplacedBases []string
	// Meter holds the publish cost decomposition.
	Meter *simio.Meter
}

// Seconds returns the total modeled publish time.
func (r *PublishReport) Seconds() float64 { return r.Meter.Seconds() }

// Publish runs the semantic analyzer and the decomposer on the image
// (Algorithm 1). Publishing consumes the image: its primary packages,
// unused dependencies and user data are removed in place. Callers that
// need the image afterwards must Clone it first.
func (s *System) Publish(img *vmi.Image) (*PublishReport, error) {
	rep := &PublishReport{Image: img.Name, Meter: &simio.Meter{}}

	// Step 2 (Fig. 2): guestfs access and semantic analysis.
	h := guestfs.New(img.Disk, s.dev, rep.Meter)
	if err := h.Launch(); err != nil {
		return nil, fmt.Errorf("core: publish %s: %w", img.Name, err)
	}
	fs, _ := h.FS()
	mgr, err := h.PackageManager()
	if err != nil {
		return nil, err
	}
	installed, err := mgr.Installed()
	if err != nil {
		return nil, err
	}
	g := semgraph.Build(img.Base, installed, img.Primaries)
	rep.Meter.Charge(simio.PhaseSimilarity, s.dev.SimilarityCost(g.Len()))
	rep.Similarity = s.bestSimilarity(g)

	// Algorithm 1 line 1: extract the primary package subgraph.
	ps := g.PrimarySubgraph()

	// Lines 2–5: store non-redundant primary-subgraph packages. Essential
	// packages stay with the base image and are never exported.
	for _, v := range ps.Vertices() {
		if v.Pkg.Essential {
			continue
		}
		ref := v.Pkg.Ref()
		if !s.opts.NoSemanticDedup && s.repo.HasPackage(ref, rep.Meter) {
			rep.Skipped++
			continue
		}
		blob, err := mgr.Repack(v.Pkg.Name)
		if err != nil {
			return nil, fmt.Errorf("core: publish %s: %w", img.Name, err)
		}
		rep.Meter.Charge(simio.PhaseExport,
			s.dev.RepackCost(catalog.Real(v.Pkg.InstalledSize), 1))
		if s.opts.NoSemanticDedup && s.repo.HasPackage(ref, rep.Meter) {
			// The variant still repacks (paying the cost) but cannot store
			// the same ref twice.
			rep.Skipped++
			continue
		}
		if err := s.repo.PutPackage(v.Pkg, blob, rep.Meter); err != nil {
			return nil, err
		}
		rep.Exported = append(rep.Exported, v.Pkg.Name)
		rep.ExportedBytes += v.Pkg.InstalledSize
	}

	// Line 6: store the user data.
	userFiles, err := collectUserData(fs)
	if err != nil {
		return nil, err
	}
	if len(userFiles) > 0 {
		archive, err := pkgfmt.PackTar(userFiles)
		if err != nil {
			return nil, err
		}
		rep.Meter.Charge(simio.PhaseExport, s.dev.ReadCost(int64(len(archive))))
		s.repo.PutUserData(img.Name, archive, rep.Meter)
	}

	// Lines 7–11: remove primaries, unused dependencies and user data,
	// leaving only the base image BI (line 12).
	filesBefore := fs.NumFiles()
	for _, p := range img.Primaries {
		if mgr.IsInstalled(p) {
			if err := mgr.Remove(p); err != nil {
				return nil, fmt.Errorf("core: publish %s: %w", img.Name, err)
			}
		}
	}
	if _, err := mgr.Autoremove(nil); err != nil {
		return nil, err
	}
	for _, root := range vmi.UserDataRoots {
		if err := fs.RemoveAll(root); err != nil {
			return nil, err
		}
	}
	// Removing files costs a per-file unlink, not a full open/read cycle.
	rep.Meter.Charge(simio.PhaseCleanup, s.dev.ResetCost(filesBefore-fs.NumFiles()))

	// Line 13: the base image subgraph.
	remaining, err := mgr.Installed()
	if err != nil {
		return nil, err
	}
	baseSub := semgraph.Build(img.Base, remaining, nil)
	baseID := s.baseIdentity(img, baseSub)

	// Line 14: base image selection (Algorithm 2).
	selected, replaceList, err := s.selectBaseImage(baseID, baseSub, ps, rep.Meter)
	if err != nil {
		return nil, err
	}
	rep.BaseID = selected

	var mg *master.Graph
	if selected == baseID && !s.repo.HasBase(selected, rep.Meter) {
		// Lines 15–17: store this base image and create its master graph.
		serialized := img.Disk.Serialize()
		rep.Meter.Charge(simio.PhaseScan, s.dev.ReadCost(int64(len(serialized))))
		if err := s.repo.PutBase(baseID, img.Base, serialized, rep.Meter); err != nil {
			return nil, err
		}
		mg = master.New(baseID, baseSub)
		rep.BaseStored = true
	} else {
		// Line 19: reuse the stored base image's master graph (either a
		// different selected base, or a stored base with the same semantic
		// identity as the decomposed one).
		mg, err = s.repo.GetMaster(selected, rep.Meter)
		if err != nil {
			return nil, err
		}
	}
	// Line 21: cluster this VMI's primary subgraph.
	if err := mg.AddPrimarySubgraph(ps); err != nil {
		return nil, err
	}
	// Lines 22–28: fold in and remove replaced base images.
	for _, b := range replaceList {
		if b == baseID || b == selected {
			continue
		}
		other, err := s.repo.GetMaster(b, rep.Meter)
		if err != nil {
			return nil, err
		}
		if err := mg.Merge(other); err != nil {
			return nil, err
		}
		if err := s.repo.RemoveBase(b, rep.Meter); err != nil {
			return nil, err
		}
		s.repo.RemoveMaster(b, rep.Meter)
		// VMIs clustered on the replaced base are now served by the
		// selected one (their packages were merged into its master).
		s.repo.RewireVMIs(b, selected, rep.Meter)
		rep.ReplacedBases = append(rep.ReplacedBases, b)
	}
	// Line 29: update the master graph.
	s.repo.PutMaster(mg, rep.Meter)

	s.repo.PutVMI(vmirepo.VMIRecord{
		Name:      img.Name,
		BaseID:    selected,
		Primaries: append([]string(nil), img.Primaries...),
	}, rep.Meter)
	h.Close()
	return rep, nil
}

// bestSimilarity compares the uploaded graph against the master graphs
// sharing its base attributes and returns the highest SimG.
func (s *System) bestSimilarity(g *semgraph.Graph) float64 {
	masters, err := s.repo.Masters()
	if err != nil {
		return 0
	}
	best := 0.0
	for _, m := range masters {
		if m.Attrs() != g.Base() {
			continue
		}
		if sim := m.Similarity(g); sim > best {
			best = sim
		}
	}
	return best
}

// baseIdentity derives the identity of a decomposed base image: the hash
// of its attribute quadruple and package refs. Two bases with identical
// semantics share an identity even when their bytes differ (instance
// churn), which is precisely the paper's semantic dedup of base images.
// With base selection disabled every image keeps a distinct base identity.
func (s *System) baseIdentity(img *vmi.Image, baseSub *semgraph.Graph) string {
	hsh := sha256.New()
	hsh.Write([]byte(img.Base.String()))
	for _, v := range baseSub.Vertices() {
		hsh.Write([]byte(v.Pkg.Ref()))
		hsh.Write([]byte{0})
	}
	if s.opts.NoBaseSelection {
		hsh.Write([]byte("image:" + img.Name))
	}
	return "base-" + hex.EncodeToString(hsh.Sum(nil))[:16]
}

// selectBaseImage implements Algorithm 2. It returns the ID of the base
// image to cluster on (baseID itself when the new base must be stored) and
// the list of stored base IDs it replaces.
func (s *System) selectBaseImage(baseID string, baseSub, ps *semgraph.Graph, m *simio.Meter) (string, []string, error) {
	if s.opts.NoBaseSelection {
		return baseID, nil, nil
	}
	type entry struct {
		id      string
		baseSub *semgraph.Graph
		psList  []*semgraph.Graph
	}
	// Line 1: the candidate list starts with the new base image.
	list3 := []entry{{id: baseID, baseSub: baseSub, psList: []*semgraph.Graph{ps}}}

	// Lines 3–12: add stored base images with simBI = 1 and their master
	// graphs' primary subgraphs.
	bases, err := s.repo.Bases()
	if err != nil {
		return "", nil, err
	}
	for _, b := range bases {
		if similarity.SimBI(baseSub.Base(), b.Attrs) != 1 {
			continue
		}
		mg, err := s.repo.GetMaster(b.ID, m)
		if err != nil {
			return "", nil, err
		}
		e := entry{id: b.ID, baseSub: mg.BaseSubgraph()}
		for _, p := range mg.PrimaryNames() {
			sub, err := mg.PrimarySubgraph(p)
			if err != nil {
				return "", nil, err
			}
			e.psList = append(e.psList, sub)
		}
		list3 = append(list3, e)
	}

	// Lines 13–26: build the quadruple list.
	type quad struct {
		id          string
		replaceList []string
		size        int64
		isNew       bool
	}
	var list4 []quad
	for i, ei := range list3 {
		var replace []string
		for j, ej := range list3 {
			if i == j || ei.id == ej.id {
				continue
			}
			compatible := true
			for _, psj := range ej.psList {
				if !similarity.Compatible(ei.baseSub, psj) {
					compatible = false
					break
				}
			}
			if compatible {
				replace = append(replace, ej.id)
			}
		}
		if len(replace) == 0 {
			continue
		}
		sort.Strings(replace)
		list4 = append(list4, quad{
			id:          ei.id,
			replaceList: replace,
			size:        ei.baseSub.TotalSize(),
			isNew:       ei.id == baseID,
		})
	}

	// Line 27: sort by replace-list size (desc), base size (asc), and
	// prefer bases already in the repository (no unnecessary storage).
	sort.Slice(list4, func(a, b int) bool {
		qa, qb := list4[a], list4[b]
		if len(qa.replaceList) != len(qb.replaceList) {
			return len(qa.replaceList) > len(qb.replaceList)
		}
		if qa.size != qb.size {
			return qa.size < qb.size
		}
		if qa.isNew != qb.isNew {
			return !qa.isNew // existing base first
		}
		return qa.id < qb.id
	})

	// Lines 28–32: pick the first quadruple involving the new base.
	for _, q := range list4 {
		if q.id == baseID {
			return q.id, q.replaceList, nil
		}
		for _, r := range q.replaceList {
			if r == baseID {
				return q.id, q.replaceList, nil
			}
		}
	}
	// Line 33: no candidate — store the new base.
	return baseID, nil, nil
}

// collectUserData gathers all files under the user-data roots.
func collectUserData(fs *fstree.FS) ([]pkgfmt.File, error) {
	var out []pkgfmt.File
	for _, root := range vmi.UserDataRoots {
		if !fs.Exists(root) {
			continue
		}
		err := fs.Walk(root, func(fi fstree.FileInfo) error {
			if fi.IsDir {
				return nil
			}
			data, err := fs.ReadFile(fi.Path)
			if err != nil {
				return err
			}
			out = append(out, pkgfmt.File{Path: fi.Path, Data: data})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RetrieveReport describes one retrieval operation.
type RetrieveReport struct {
	Image string
	// Imported lists the installed packages.
	Imported []string
	// ImportedBytes is their total installed size (paper scale).
	ImportedBytes int64
	// Meter decomposes the retrieval cost into the Fig. 5a phases.
	Meter *simio.Meter
}

// Seconds returns the total modeled retrieval time.
func (r *RetrieveReport) Seconds() float64 { return r.Meter.Seconds() }

// Retrieve assembles a previously published VMI by name (Algorithm 3).
func (s *System) Retrieve(name string) (*vmi.Image, *RetrieveReport, error) {
	rep := &RetrieveReport{Image: name, Meter: &simio.Meter{}}
	rec, err := s.repo.GetVMI(name, rep.Meter)
	if err != nil {
		return nil, nil, err
	}
	img, err := s.assemble(name, rec.BaseID, rec.Primaries, name, rep)
	if err != nil {
		return nil, nil, err
	}
	return img, rep, nil
}

// Assemble builds a VMI that was never uploaded in this exact form: any
// primary package combination available in the repository, on a compatible
// stored base image ("VMI assembly either with identical or with differing
// functionality", Sec. IV-D). userDataFrom optionally names a published
// VMI whose user data to import.
func (s *System) Assemble(name string, primaries []string, userDataFrom string) (*vmi.Image, *RetrieveReport, error) {
	rep := &RetrieveReport{Image: name, Meter: &simio.Meter{}}
	masters, err := s.repo.Masters()
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(masters, func(i, j int) bool { return masters[i].BaseID < masters[j].BaseID })
	for _, mg := range masters {
		if !hasAll(mg.PrimaryNames(), primaries) {
			continue
		}
		img, err := s.assemble(name, mg.BaseID, primaries, userDataFrom, rep)
		if err != nil {
			return nil, nil, err
		}
		return img, rep, nil
	}
	return nil, nil, fmt.Errorf("core: no stored base provides packages %v", primaries)
}

func hasAll(have []string, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

// localRepoDir is the temporary in-guest package repository used during
// assembly (Sec. V-4).
const localRepoDir = "/var/local-repo"

// assemble implements Algorithm 3 against a specific base image.
func (s *System) assemble(name, baseID string, primaries []string, userDataFrom string, rep *RetrieveReport) (*vmi.Image, error) {
	// Line 1: subgraphs from the repository.
	mg, err := s.repo.GetMaster(baseID, rep.Meter)
	if err != nil {
		return nil, err
	}
	baseSub := mg.BaseSubgraph()
	psUnion := semgraph.New(mg.Attrs())
	for _, p := range primaries {
		sub, err := mg.PrimarySubgraph(p)
		if err != nil {
			return nil, fmt.Errorf("core: assemble %s: %w", name, err)
		}
		psUnion.Union(sub)
	}
	// Line 2: compatibility check.
	if !similarity.Compatible(baseSub, psUnion) {
		return nil, fmt.Errorf("core: assemble %s: primary packages incompatible with base %s", name, baseID)
	}

	// Lines 3–4: copy the base image and reset it.
	blob, err := s.repo.GetBase(baseID, simio.PhaseCopy, rep.Meter)
	if err != nil {
		return nil, err
	}
	disk, err := vdisk.Deserialize(name, blob)
	if err != nil {
		return nil, err
	}
	h := guestfs.New(disk, s.dev, rep.Meter)
	if err := h.Launch(); err != nil {
		return nil, err
	}
	if err := h.Sysprep(nil); err != nil {
		return nil, err
	}
	fs, _ := h.FS()

	// Line 5: import the user data.
	if userDataFrom != "" {
		archive, err := s.repo.GetUserData(userDataFrom, simio.PhaseImport, rep.Meter)
		if err != nil {
			return nil, err
		}
		if archive != nil {
			files, err := pkgfmt.UnpackTar(archive)
			if err != nil {
				return nil, err
			}
			for _, f := range files {
				if err := fs.MkdirAll(path.Dir(f.Path)); err != nil {
					return nil, err
				}
				if err := fs.WriteFile(f.Path, f.Data); err != nil {
					return nil, err
				}
			}
		}
	}

	// Lines 6–10: packages in the primary subgraph missing from the base.
	var missing []string
	for _, v := range psUnion.Vertices() {
		if !baseSub.HasVertex(v.Pkg.Name) {
			missing = append(missing, v.Pkg.Name)
		}
	}

	// Lines 11–13: import and install through the guest package manager
	// from a temporary local repository.
	mgr, err := h.PackageManager()
	if err != nil {
		return nil, err
	}
	order, err := pkgmgr.InstallOrder(graphUniverse{psUnion}, missing)
	if err != nil {
		return nil, err
	}
	if err := fs.MkdirAll(localRepoDir); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll("/etc/apt/sources.list.d"); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/etc/apt/sources.list.d/local.list",
		[]byte("deb [trusted=yes] file:"+localRepoDir+" ./\n")); err != nil {
		return nil, err
	}
	for _, group := range order {
		for _, pkgName := range group {
			v, _ := psUnion.Vertex(pkgName)
			_, blob, err := s.repo.GetPackage(v.Pkg.Ref(), simio.PhaseImport, rep.Meter)
			if err != nil {
				return nil, err
			}
			local := path.Join(localRepoDir, pkgName+".deb")
			if err := fs.WriteFile(local, blob); err != nil {
				return nil, err
			}
			if mgr.IsInstalled(pkgName) {
				// Already present (e.g. imported by an earlier group).
				fs.Remove(local)
				continue
			}
			if err := mgr.Install(blob); err != nil {
				return nil, err
			}
			rep.Meter.Charge(simio.PhaseImport,
				s.dev.InstallCost(catalog.Real(v.Pkg.InstalledSize), 1))
			rep.Imported = append(rep.Imported, pkgName)
			rep.ImportedBytes += v.Pkg.InstalledSize
			if err := fs.Remove(local); err != nil {
				return nil, err
			}
		}
	}
	// Restore the default repository configuration (Sec. V-4).
	if err := fs.RemoveAll(localRepoDir); err != nil {
		return nil, err
	}
	if err := fs.Remove("/etc/apt/sources.list.d/local.list"); err != nil {
		return nil, err
	}
	h.Close()

	disk.SetName(name)
	return &vmi.Image{
		Name:      name,
		Base:      mg.Attrs(),
		Primaries: append([]string(nil), primaries...),
		Disk:      disk,
	}, nil
}

// graphUniverse adapts a semantic graph to the resolver's Universe.
type graphUniverse struct{ g *semgraph.Graph }

func (u graphUniverse) Lookup(name string) (pkgmeta.Package, bool) {
	v, ok := u.g.Vertex(name)
	return v.Pkg, ok
}

// MasterDOT renders every stored master graph in Graphviz DOT format —
// the semantic-graph visualisation of Fig. 1a for the live repository.
func (s *System) MasterDOT() (string, error) {
	masters, err := s.repo.Masters()
	if err != nil {
		return "", err
	}
	var out string
	for _, mg := range masters {
		out += mg.G.DOT("master_" + mg.BaseID)
	}
	return out, nil
}

// DescribeRepo returns a human-readable repository summary.
func (s *System) DescribeRepo() string {
	st := s.repo.Stats()
	return fmt.Sprintf("packages=%d bases=%d vmis=%d blob=%.2fMB db=%.2fMB total=%.2fMB",
		st.Packages, st.Bases, st.VMIs,
		float64(st.BlobBytes)/1e6, float64(st.DBBytes)/1e6, float64(st.TotalBytes)/1e6)
}
