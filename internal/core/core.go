// Package core implements the Expelliarmus system of Sec. IV: the semantic
// analyzer, the VMI decomposer (publishing, Algorithm 1), base-image
// selection (Algorithm 2) and the VMI assembler (retrieval, Algorithm 3),
// orchestrated over the repository of Fig. 2.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"sync"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/guestfs"
	"expelliarmus/internal/master"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/pool"
	"expelliarmus/internal/retrievecache"
	"expelliarmus/internal/semgraph"
	"expelliarmus/internal/similarity"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// Options configure the system. The zero value enables the full design;
// the flags exist for the paper's "semantic decomposition" variant
// (Fig. 4b) and the ablation studies in DESIGN.md.
type Options struct {
	// NoSemanticDedup disables the repository-existence check during
	// export: every required package is repacked and stored, as in the
	// paper's "Semantic" comparison variant.
	NoSemanticDedup bool
	// NoBaseSelection disables Algorithm 2: every published VMI stores its
	// own base image (ablation A3).
	NoBaseSelection bool
	// Parallelism bounds the total worker goroutines per operation: a solo
	// publish or retrieval fans out per package (the export loop of
	// Algorithm 1, the per-group fetches of Algorithm 3), while
	// PublishAll/RetrieveAll fan out across images with sequential
	// per-image internals, so the bound never compounds. Values <= 1 run
	// strictly sequentially. For
	// an operation running alone the setting changes wall-clock time only
	// (the Meter accumulates the same charges in any interleaving);
	// overlapping operations can shift modeled totals slightly, e.g. when
	// two publishes race to repack one shared package.
	Parallelism int
	// CacheBytes bounds the retrieval cache: an LRU of recently assembled
	// images keyed by (base image, primary set, user-data source, striped
	// repository generation) that serves repeat retrievals without
	// re-running Algorithm 3. Zero (the default) disables caching. The
	// cache is transparent at the cost-model level — a hit replays the
	// cold retrieval's modeled charges exactly — and invalidation is by
	// per-base striped generation: a publish, removal or user-data
	// replacement touching the entry's base image or VMI name moves
	// lookups to fresh keys, so a cached image is never served after its
	// constituent packages change, while mutations on unrelated bases
	// leave warm entries servable. Concurrent misses of one key coalesce
	// behind a single assembly (miss singleflight).
	CacheBytes int64
	// TenantQuotas caps each tenant's live bytes (newly stored package,
	// base and user-data bytes attributed to its publishes). A publish
	// that would push its tenant past the cap is rejected with
	// vmirepo.ErrQuotaExceeded before any master-graph mutation. Absent
	// or zero entries mean unlimited; the empty tenant is never capped.
	TenantQuotas map[string]int64
}

// System is the Expelliarmus VMI management system. One System may serve
// many goroutines: publishes, retrievals, assemblies and removals can all
// run concurrently against the shared repository.
//
// The concurrency design splits each operation into a parallel data plane
// (repacking, hashing and storing package blobs — the dominant cost) and a
// serialized metadata commit (base-image selection, master-graph update,
// VMI record). The commit locks serialise only the commits, striped by
// base-attribute quadruple; package export from different publishes
// proceeds in parallel, coordinated by the repository's atomic
// EnsurePackage. The pin set bridges the gap between a publish observing a
// package in the repository and its VMI record landing: Remove never
// garbage-collects a pinned package, which closes the classic
// check-then-commit race between concurrent publish and remove.
type System struct {
	repo *vmirepo.Repo
	dev  *simio.Device
	opts Options

	// cache is the retrieval cache (nil when Options.CacheBytes is zero);
	// see cache.go for the hit/insert protocol. flights coalesces
	// concurrent misses of one key behind a single assembly, cctr tracks
	// the coalescing and per-stripe counters.
	cache   *retrievecache.Cache
	flights flightGroup
	cctr    cacheCounters

	// commitMu stripes the multi-step metadata transactions by
	// base-attribute quadruple: the tail of Publish (Algorithm 2 +
	// master-graph update + VMI record) only ever reads and writes bases
	// whose attributes match its own exactly (SimBI = 1 requires an equal
	// quadruple), so publishes clustering on unrelated attribute classes
	// commit in parallel. Remove, Snapshot, Sync and Close span classes
	// and take every stripe (lockAllCommits).
	commitMu [commitStripes]sync.Mutex

	// pinMu guards pinned: package refs required by in-flight publishes
	// whose VMI records have not committed yet, counted per publish. It
	// also guards udPinned: VMI names whose user-data archive an in-flight
	// publish stored before taking its commit lock — Vacuum must not
	// collect those archives as orphans.
	pinMu    sync.Mutex
	pinned   map[string]int
	udPinned map[string]int
}

// commitStripes is the number of commit-lock stripes. Attribute classes
// hash onto stripes; two classes sharing a stripe merely serialise their
// commits (safe), never corrupt each other.
const commitStripes = 16

// commitStripe hashes a base-attribute quadruple onto a commit-lock
// stripe. The reduction happens over the full hash width, so the
// distribution is uniform regardless of how commitStripes relates to the
// generation stripe count.
func commitStripe(attrs pkgmeta.BaseAttrs) int {
	return int(vmirepo.HashKey(attrs.String()) % commitStripes)
}

// lockCommit locks the commit stripe of one base-attribute quadruple and
// returns the unlock. A publish's whole commit transaction interacts only
// with bases of its exact quadruple (Algorithm 2 filters candidates by
// SimBI = 1, and VersionSim returns 1 only on equal version strings), so
// one stripe suffices.
func (s *System) lockCommit(attrs pkgmeta.BaseAttrs) func() {
	mu := &s.commitMu[commitStripe(attrs)]
	mu.Lock()
	return mu.Unlock
}

// lockAllCommits locks every commit stripe in index order (deadlock-free
// against single-stripe holders) and returns the unlock — for
// transactions whose read set spans attribute classes: Remove's
// live-reference survey, Snapshot, Sync and Close.
func (s *System) lockAllCommits() func() {
	for i := range s.commitMu {
		s.commitMu[i].Lock()
	}
	return func() {
		for i := range s.commitMu {
			s.commitMu[i].Unlock()
		}
	}
}

// lockStripes locks up to two commit stripes in index order (deadlock-free
// against lockAllCommits and single-stripe holders) and returns the
// unlock.
func (s *System) lockStripes(a, b int) func() {
	if a > b {
		a, b = b, a
	}
	s.commitMu[a].Lock()
	if b != a {
		s.commitMu[b].Lock()
	}
	return func() {
		if b != a {
			s.commitMu[b].Unlock()
		}
		s.commitMu[a].Unlock()
	}
}

// lockCommitForPublish locks the commit stripes a publish of name under
// attrs needs: the publish's own class stripe plus, when a record of the
// same name already exists, the stripe of that record's class — a
// republish credits the old record's refcounts and tenant charge, which
// must not race a removal of it. The record's class is resolved outside
// the locks and re-validated under them; a record that moved between
// classes retries, and one whose class cannot be resolved (its base
// mid-replacement) falls back to every stripe.
func (s *System) lockCommitForPublish(attrs pkgmeta.BaseAttrs, name string) func() {
	newStripe := commitStripe(attrs)
	stripeOf := func(baseID string) (int, bool) {
		binfo, err := s.repo.BaseInfo(baseID)
		if err != nil {
			return 0, false
		}
		return commitStripe(binfo.Attrs), true
	}
	for attempt := 0; attempt < 4; attempt++ {
		oldStripe := newStripe
		if rec, err := s.repo.GetVMI(name, nil); err == nil {
			st, ok := stripeOf(rec.BaseID)
			if !ok {
				break // unresolvable class: all-stripes fallback
			}
			oldStripe = st
		}
		unlock := s.lockStripes(newStripe, oldStripe)
		rec, err := s.repo.GetVMI(name, nil)
		if err != nil {
			return unlock // no old record: surplus stripe is harmless
		}
		if st, ok := stripeOf(rec.BaseID); ok && (st == oldStripe || st == newStripe) {
			return unlock
		}
		unlock()
	}
	return s.lockAllCommits()
}

// NewSystem creates a system over a fresh repository.
func NewSystem(dev *simio.Device, opts Options) *System {
	return &System{repo: vmirepo.New(dev), dev: dev, opts: opts, cache: newCache(opts), pinned: make(map[string]int), udPinned: make(map[string]int)}
}

// parallelism returns the effective worker bound (at least one).
func (s *System) parallelism() int { return pool.Clamp(s.opts.Parallelism) }

// pinPackage marks ref as required by an in-flight publish so concurrent
// removals cannot garbage-collect it before the publish commits.
func (s *System) pinPackage(ref string) {
	s.pinMu.Lock()
	s.pinned[ref]++
	s.pinMu.Unlock()
}

// unpinPackages drops the pins a publish took, after its commit (or on
// failure).
func (s *System) unpinPackages(refs []string) {
	s.pinMu.Lock()
	for _, ref := range refs {
		if s.pinned[ref] <= 1 {
			delete(s.pinned, ref)
		} else {
			s.pinned[ref]--
		}
	}
	s.pinMu.Unlock()
}

// removePackageUnlessPinned garbage-collects a package unless an in-flight
// publish holds it, reporting whether it was removed. The pin check and
// the removal are atomic under pinMu: a publish pins before its existence
// check, so either the pin lands first (the package survives) or the
// removal lands first (the publish observes the package as absent and
// re-exports it).
func (s *System) removePackageUnlessPinned(ref string) (bool, error) {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	if s.pinned[ref] > 0 {
		return false, nil
	}
	if err := s.repo.RemovePackage(ref, nil); err != nil {
		return false, err
	}
	return true, nil
}

// pinUserData marks name's user-data archive as owned by an in-flight
// publish (stored before the commit lock), so Vacuum cannot collect it
// as an orphan; unpinUserData drops the pin after the commit (or on
// failure).
func (s *System) pinUserData(name string) {
	s.pinMu.Lock()
	s.udPinned[name]++
	s.pinMu.Unlock()
}

func (s *System) unpinUserData(name string) {
	s.pinMu.Lock()
	if s.udPinned[name] <= 1 {
		delete(s.udPinned, name)
	} else {
		s.udPinned[name]--
	}
	s.pinMu.Unlock()
}

func (s *System) userDataPinned(name string) bool {
	s.pinMu.Lock()
	defer s.pinMu.Unlock()
	return s.udPinned[name] > 0
}

// Repo exposes the underlying repository.
func (s *System) Repo() *vmirepo.Repo { return s.repo }

// PublishReport describes one publish operation.
type PublishReport struct {
	Image string
	// Similarity is SimG between the uploaded VMI's semantic graph and the
	// best-matching master graph (0 when the repository holds none with
	// matching base attributes) — Table II's "Similarity [SimG]".
	Similarity float64
	// Exported lists the packages repacked and stored (non-redundant).
	Exported []string
	// ExportedBytes is their total installed size (paper scale).
	ExportedBytes int64
	// Skipped counts packages already present in the repository.
	Skipped int
	// BaseStored reports whether this publish stored a new base image.
	BaseStored bool
	// BaseID is the base image the VMI was clustered on.
	BaseID string
	// ReplacedBases lists base images removed by Algorithm 2.
	ReplacedBases []string
	// Meter holds the publish cost decomposition.
	Meter *simio.Meter
}

// Seconds returns the total modeled publish time.
func (r *PublishReport) Seconds() float64 { return r.Meter.Seconds() }

// PublishOpts carry a publish's lifecycle attributes.
type PublishOpts struct {
	// Tenant is the owning namespace charged for the publish's newly
	// stored bytes; "" publishes unaccounted.
	Tenant string
	// ExpiresAt is the Unix-seconds timestamp past which the VMI is
	// removed by the expiry scanner; 0 means never.
	ExpiresAt int64
}

// Publish runs the semantic analyzer and the decomposer on the image
// (Algorithm 1). Publishing consumes the image: its primary packages,
// unused dependencies and user data are removed in place. Callers that
// need the image afterwards must Clone it first.
func (s *System) Publish(img *vmi.Image) (*PublishReport, error) {
	return s.publish(img, s.parallelism(), PublishOpts{})
}

// PublishWith is Publish with explicit lifecycle attributes (tenant and
// expiry).
func (s *System) PublishWith(img *vmi.Image, opts PublishOpts) (*PublishReport, error) {
	return s.publish(img, s.parallelism(), opts)
}

// publish is Publish with an explicit worker bound for the package export
// loop. Batch operations pass 1 so Options.Parallelism bounds the total
// goroutines across the batch rather than compounding per image.
func (s *System) publish(img *vmi.Image, workers int, popts PublishOpts) (*PublishReport, error) {
	// Refuse up front on followers: publishing does expensive semantic
	// analysis before its first repository write, and failing at the
	// commit tail would waste all of it.
	if s.repo.ReadOnly() {
		return nil, fmt.Errorf("core: publish %s: %w", img.Name, vmirepo.ErrReadOnly)
	}
	rep := &PublishReport{Image: img.Name, Meter: &simio.Meter{}}

	// Step 2 (Fig. 2): guestfs access and semantic analysis.
	h := guestfs.New(img.Disk, s.dev, rep.Meter)
	if err := h.Launch(); err != nil {
		return nil, fmt.Errorf("core: publish %s: %w", img.Name, err)
	}
	fs, _ := h.FS()
	mgr, err := h.PackageManager()
	if err != nil {
		return nil, err
	}
	installed, err := mgr.Installed()
	if err != nil {
		return nil, err
	}
	g := semgraph.Build(img.Base, installed, img.Primaries)
	rep.Meter.Charge(simio.PhaseSimilarity, s.dev.SimilarityCost(g.Len()))
	rep.Similarity = s.bestSimilarity(g)

	// Algorithm 1 line 1: extract the primary package subgraph.
	ps := g.PrimarySubgraph()

	// Lines 2–5: store non-redundant primary-subgraph packages. Essential
	// packages stay with the base image and are never exported. The
	// pack → hash → store chain per package is independent, so it fans out
	// over a bounded worker pool; outcomes are collected per vertex index
	// and merged in vertex order, keeping the report deterministic. Every
	// required ref is pinned (before its existence check) until the VMI
	// record commits, so a concurrent Remove cannot collect it in between.
	verts := ps.Vertices()
	type outcome struct {
		exported bool
		skipped  bool
		name     string
		size     int64
		// blobBytes is the stored blob's length when this call stored it —
		// the package share of the tenant charge.
		blobBytes int64
	}
	outcomes := make([]outcome, len(verts))
	var (
		pinRefsMu sync.Mutex
		pinRefs   []string
	)
	defer func() { s.unpinPackages(pinRefs) }()
	exportErr := pool.Map(workers, len(verts), func(i int) error {
		v := verts[i]
		if v.Pkg.Essential {
			return nil
		}
		ref := v.Pkg.Ref()
		s.pinPackage(ref)
		pinRefsMu.Lock()
		pinRefs = append(pinRefs, ref)
		pinRefsMu.Unlock()
		if !s.opts.NoSemanticDedup && s.repo.HasPackage(ref, rep.Meter) {
			outcomes[i].skipped = true
			return nil
		}
		blob, err := mgr.Repack(v.Pkg.Name)
		if err != nil {
			return fmt.Errorf("core: publish %s: %w", img.Name, err)
		}
		rep.Meter.Charge(simio.PhaseExport,
			s.dev.RepackCost(catalog.Real(v.Pkg.InstalledSize), 1))
		if s.opts.NoSemanticDedup && s.repo.HasPackage(ref, rep.Meter) {
			// The variant still repacks (paying the cost) but cannot store
			// the same ref twice.
			outcomes[i].skipped = true
			return nil
		}
		stored, err := s.repo.EnsurePackage(v.Pkg, blob, rep.Meter)
		if err != nil {
			return err
		}
		if !stored {
			// A concurrent publish stored the same ref first; equivalent
			// to having observed it via the dedup check.
			outcomes[i].skipped = true
			return nil
		}
		outcomes[i] = outcome{exported: true, name: v.Pkg.Name, size: v.Pkg.InstalledSize, blobBytes: int64(len(blob))}
		return nil
	})
	if exportErr != nil {
		return nil, exportErr
	}
	// storedBytes accumulates what this publish newly stored — the tenant
	// charge recorded in the VMI's lifecycle record at commit.
	var storedBytes int64
	for _, o := range outcomes {
		if o.skipped {
			rep.Skipped++
		}
		if o.exported {
			rep.Exported = append(rep.Exported, o.name)
			rep.ExportedBytes += o.size
			storedBytes += o.blobBytes
		}
	}

	// Line 6: store the user data. The archive lands before the commit
	// lock, so it is pinned until the VMI record commits — a concurrent
	// Vacuum must not collect it as an orphan in between.
	userFiles, err := collectUserData(fs)
	if err != nil {
		return nil, err
	}
	s.pinUserData(img.Name)
	defer s.unpinUserData(img.Name)
	if len(userFiles) > 0 {
		archive, err := pkgfmt.PackTar(userFiles)
		if err != nil {
			return nil, err
		}
		rep.Meter.Charge(simio.PhaseExport, s.dev.ReadCost(int64(len(archive))))
		if err := s.repo.PutUserData(img.Name, archive, rep.Meter); err != nil {
			return nil, err
		}
		storedBytes += int64(len(archive))
	}

	// Lines 7–11: remove primaries, unused dependencies and user data,
	// leaving only the base image BI (line 12).
	filesBefore := fs.NumFiles()
	for _, p := range img.Primaries {
		if mgr.IsInstalled(p) {
			if err := mgr.Remove(p); err != nil {
				return nil, fmt.Errorf("core: publish %s: %w", img.Name, err)
			}
		}
	}
	if _, err := mgr.Autoremove(nil); err != nil {
		return nil, err
	}
	for _, root := range vmi.UserDataRoots {
		if err := fs.RemoveAll(root); err != nil {
			return nil, err
		}
	}
	// Removing files costs a per-file unlink, not a full open/read cycle.
	rep.Meter.Charge(simio.PhaseCleanup, s.dev.ResetCost(filesBefore-fs.NumFiles()))

	// Line 13: the base image subgraph.
	remaining, err := mgr.Installed()
	if err != nil {
		return nil, err
	}
	baseSub := semgraph.Build(img.Base, remaining, nil)
	baseID := s.baseIdentity(img, baseSub)

	// Lines 14–29 are the metadata commit: base-image selection reads the
	// repository state of this base-attribute class and the master-graph
	// update is a read-modify-write, so the whole transaction is
	// serialized against other commits of the same class (and against
	// Remove's same-class removals and Snapshot/Sync, which take every
	// stripe). Commits on unrelated attribute classes proceed in parallel.
	// A republish additionally holds the stripe of the class the old
	// record belongs to, so crediting that record's refcounts and tenant
	// charge cannot race a removal processing the same record.
	defer s.lockCommitForPublish(img.Base, img.Name)()

	// Capture what the record this publish replaces (if any) contributed,
	// before any graph mutation invalidates the master it was clustered
	// on: its package refs, its attribute class, and its tenant charge.
	var (
		hadOld   bool
		oldClass string
		oldRefs  []string
		oldMeta  vmirepo.VMIMeta
		hadMeta  bool
	)
	if oldRec, err := s.repo.GetVMI(img.Name, nil); err == nil {
		hadOld = true
		binfo, err := s.repo.BaseInfo(oldRec.BaseID)
		if err != nil {
			return nil, fmt.Errorf("core: publish %s: resolve replaced record: %w", img.Name, err)
		}
		oldClass = binfo.Attrs.String()
		refs, err := s.vmiPackageRefs(oldRec)
		if err != nil {
			return nil, fmt.Errorf("core: publish %s: survey replaced record: %w", img.Name, err)
		}
		for ref := range refs {
			oldRefs = append(oldRefs, ref)
		}
		sort.Strings(oldRefs)
		if oldMeta, hadMeta, err = s.repo.GetVMIMeta(img.Name, rep.Meter); err != nil {
			return nil, err
		}
	}

	// Line 14: base image selection (Algorithm 2).
	selected, replaceList, err := s.selectBaseImage(baseID, baseSub, ps, rep.Meter)
	if err != nil {
		return nil, err
	}
	rep.BaseID = selected

	// Quota gate: enforced after the selection decision (so the charge is
	// exact) and before the first master-graph mutation, crediting the
	// record this publish replaces. A rejected publish leaves only
	// orphan-side state behind — pre-commit packages and user data that
	// the next Vacuum reclaims — never a half-committed graph.
	willStoreBase := selected == baseID && !s.repo.HasBase(selected, rep.Meter)
	charge := storedBytes
	if willStoreBase {
		charge += img.Disk.SerializedBytes()
	}
	if quota := s.opts.TenantQuotas[popts.Tenant]; popts.Tenant != "" && quota > 0 {
		usage := s.repo.TenantUsage(popts.Tenant)
		if hadMeta && oldMeta.Tenant == popts.Tenant {
			usage -= oldMeta.ChargedBytes
		}
		if usage+charge > quota {
			return nil, fmt.Errorf("core: publish %s: tenant %q needs %d of %d quota bytes: %w",
				img.Name, popts.Tenant, usage+charge, quota, vmirepo.ErrQuotaExceeded)
		}
	}

	var mg *master.Graph
	if willStoreBase {
		// Lines 15–17: store this base image and create its master graph.
		// The serialization streams straight into the blob store through a
		// pipe — the decomposed base is never materialized as one buffer,
		// so publish memory stays bounded by the clusters the image already
		// holds. SerializedBytes prices the read (and pins the expected
		// stream length) without producing a byte.
		size := img.Disk.SerializedBytes()
		rep.Meter.Charge(simio.PhaseScan, s.dev.ReadCost(size))
		pr, pw := io.Pipe()
		go func() {
			_, werr := img.Disk.WriteTo(pw)
			pw.CloseWithError(werr)
		}()
		err := s.repo.PutBaseReader(baseID, img.Base, pr, size, rep.Meter)
		// Closing the read side unblocks the writer goroutine on every
		// early-return path (e.g. a store fast-failing before consuming
		// the stream); after a complete consume it is a no-op.
		pr.Close()
		if err != nil {
			return nil, err
		}
		mg = master.New(baseID, baseSub)
		rep.BaseStored = true
	} else {
		// Line 19: reuse the stored base image's master graph (either a
		// different selected base, or a stored base with the same semantic
		// identity as the decomposed one).
		mg, err = s.repo.GetMaster(selected, rep.Meter)
		if err != nil {
			return nil, err
		}
	}
	// Line 21: cluster this VMI's primary subgraph.
	if err := mg.AddPrimarySubgraph(ps); err != nil {
		return nil, err
	}
	// Lines 22–28: fold in and remove replaced base images.
	for _, b := range replaceList {
		if b == baseID || b == selected {
			continue
		}
		other, err := s.repo.GetMaster(b, rep.Meter)
		if err != nil {
			return nil, err
		}
		if err := mg.Merge(other); err != nil {
			return nil, err
		}
		if err := s.repo.RemoveBase(b, rep.Meter); err != nil {
			return nil, err
		}
		if err := s.repo.RemoveMaster(b, rep.Meter); err != nil {
			return nil, err
		}
		// VMIs clustered on the replaced base are now served by the
		// selected one (their packages were merged into its master).
		if err := s.repo.RewireVMIs(b, selected, rep.Meter); err != nil {
			return nil, err
		}
		rep.ReplacedBases = append(rep.ReplacedBases, b)
	}
	// Line 29: update the master graph.
	if err := s.repo.PutMaster(mg, rep.Meter); err != nil {
		return nil, err
	}

	newRec := vmirepo.VMIRecord{
		Name:      img.Name,
		BaseID:    selected,
		Primaries: append([]string(nil), img.Primaries...),
	}
	if err := s.repo.PutVMI(newRec, rep.Meter); err != nil {
		return nil, err
	}

	// Lifecycle commit, in the same lock window as the record it
	// describes. Refs are added before the replaced record's are dropped,
	// so a shared ref never transits zero; packages only the replaced
	// record needed are collected here (the pins cover the new record's).
	newRefSet, err := s.vmiPackageRefs(newRec)
	if err != nil {
		return nil, fmt.Errorf("core: publish %s: survey committed record: %w", img.Name, err)
	}
	newRefs := make([]string, 0, len(newRefSet))
	for ref := range newRefSet {
		newRefs = append(newRefs, ref)
	}
	sort.Strings(newRefs)
	if err := s.repo.AddPackageRefs(img.Base.String(), newRefs, rep.Meter); err != nil {
		return nil, err
	}
	if hadOld {
		dead, err := s.repo.DropPackageRefs(oldClass, oldRefs, rep.Meter)
		if err != nil {
			return nil, err
		}
		for _, ref := range dead {
			if _, err := s.removePackageUnlessPinned(ref); err != nil {
				return nil, err
			}
		}
	}
	if hadMeta {
		if err := s.repo.ChargeTenant(oldMeta.Tenant, -oldMeta.ChargedBytes, rep.Meter); err != nil {
			return nil, err
		}
	}
	if popts.Tenant != "" || popts.ExpiresAt != 0 {
		if err := s.repo.PutVMIMeta(img.Name, vmirepo.VMIMeta{
			Tenant: popts.Tenant, ExpiresAt: popts.ExpiresAt, ChargedBytes: charge,
		}, rep.Meter); err != nil {
			return nil, err
		}
		if err := s.repo.ChargeTenant(popts.Tenant, charge, rep.Meter); err != nil {
			return nil, err
		}
	} else if hadMeta {
		if err := s.repo.RemoveVMIMeta(img.Name, rep.Meter); err != nil {
			return nil, err
		}
	}
	h.Close()
	return rep, nil
}

// bestSimilarity compares the uploaded graph against the master graphs
// sharing its base attributes and returns the highest SimG.
func (s *System) bestSimilarity(g *semgraph.Graph) float64 {
	masters, err := s.repo.Masters()
	if err != nil {
		return 0
	}
	best := 0.0
	for _, m := range masters {
		if m.Attrs() != g.Base() {
			continue
		}
		if sim := m.Similarity(g); sim > best {
			best = sim
		}
	}
	return best
}

// baseIdentity derives the identity of a decomposed base image: the hash
// of its attribute quadruple and package refs. Two bases with identical
// semantics share an identity even when their bytes differ (instance
// churn), which is precisely the paper's semantic dedup of base images.
// With base selection disabled every image keeps a distinct base identity.
func (s *System) baseIdentity(img *vmi.Image, baseSub *semgraph.Graph) string {
	hsh := sha256.New()
	hsh.Write([]byte(img.Base.String()))
	for _, v := range baseSub.Vertices() {
		hsh.Write([]byte(v.Pkg.Ref()))
		hsh.Write([]byte{0})
	}
	if s.opts.NoBaseSelection {
		hsh.Write([]byte("image:" + img.Name))
	}
	return "base-" + hex.EncodeToString(hsh.Sum(nil))[:16]
}

// selectBaseImage implements Algorithm 2. It returns the ID of the base
// image to cluster on (baseID itself when the new base must be stored) and
// the list of stored base IDs it replaces.
func (s *System) selectBaseImage(baseID string, baseSub, ps *semgraph.Graph, m *simio.Meter) (string, []string, error) {
	if s.opts.NoBaseSelection {
		return baseID, nil, nil
	}
	type entry struct {
		id      string
		baseSub *semgraph.Graph
		psList  []*semgraph.Graph
	}
	// Line 1: the candidate list starts with the new base image.
	list3 := []entry{{id: baseID, baseSub: baseSub, psList: []*semgraph.Graph{ps}}}

	// Lines 3–12: add stored base images with simBI = 1 and their master
	// graphs' primary subgraphs.
	bases, err := s.repo.Bases()
	if err != nil {
		return "", nil, err
	}
	for _, b := range bases {
		if similarity.SimBI(baseSub.Base(), b.Attrs) != 1 {
			continue
		}
		mg, err := s.repo.GetMaster(b.ID, m)
		if err != nil {
			return "", nil, err
		}
		e := entry{id: b.ID, baseSub: mg.BaseSubgraph()}
		for _, p := range mg.PrimaryNames() {
			sub, err := mg.PrimarySubgraph(p)
			if err != nil {
				return "", nil, err
			}
			e.psList = append(e.psList, sub)
		}
		list3 = append(list3, e)
	}

	// Lines 13–26: build the quadruple list.
	type quad struct {
		id          string
		replaceList []string
		size        int64
		isNew       bool
	}
	var list4 []quad
	for i, ei := range list3 {
		var replace []string
		for j, ej := range list3 {
			if i == j || ei.id == ej.id {
				continue
			}
			compatible := true
			for _, psj := range ej.psList {
				if !similarity.Compatible(ei.baseSub, psj) {
					compatible = false
					break
				}
			}
			if compatible {
				replace = append(replace, ej.id)
			}
		}
		if len(replace) == 0 {
			continue
		}
		sort.Strings(replace)
		list4 = append(list4, quad{
			id:          ei.id,
			replaceList: replace,
			size:        ei.baseSub.TotalSize(),
			isNew:       ei.id == baseID,
		})
	}

	// Line 27: sort by replace-list size (desc), base size (asc), and
	// prefer bases already in the repository (no unnecessary storage).
	sort.Slice(list4, func(a, b int) bool {
		qa, qb := list4[a], list4[b]
		if len(qa.replaceList) != len(qb.replaceList) {
			return len(qa.replaceList) > len(qb.replaceList)
		}
		if qa.size != qb.size {
			return qa.size < qb.size
		}
		if qa.isNew != qb.isNew {
			return !qa.isNew // existing base first
		}
		return qa.id < qb.id
	})

	// Lines 28–32: pick the first quadruple involving the new base.
	for _, q := range list4 {
		if q.id == baseID {
			return q.id, q.replaceList, nil
		}
		for _, r := range q.replaceList {
			if r == baseID {
				return q.id, q.replaceList, nil
			}
		}
	}
	// Line 33: no candidate — store the new base.
	return baseID, nil, nil
}

// collectUserData gathers all files under the user-data roots.
func collectUserData(fs *fstree.FS) ([]pkgfmt.File, error) {
	var out []pkgfmt.File
	for _, root := range vmi.UserDataRoots {
		if !fs.Exists(root) {
			continue
		}
		err := fs.Walk(root, func(fi fstree.FileInfo) error {
			if fi.IsDir {
				return nil
			}
			data, err := fs.ReadFile(fi.Path)
			if err != nil {
				return err
			}
			out = append(out, pkgfmt.File{Path: fi.Path, Data: data})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RetrieveReport describes one retrieval operation.
type RetrieveReport struct {
	Image string
	// Imported lists the installed packages.
	Imported []string
	// ImportedBytes is their total installed size (paper scale).
	ImportedBytes int64
	// Meter decomposes the retrieval cost into the Fig. 5a phases.
	Meter *simio.Meter
}

// Seconds returns the total modeled retrieval time.
func (r *RetrieveReport) Seconds() float64 { return r.Meter.Seconds() }

// Retrieve assembles a previously published VMI by name (Algorithm 3).
//
// Under concurrent publish traffic, base-image selection may replace the
// VMI's base between the record read and the master/base reads (the
// record is atomically rewired to the surviving base). Retrieve absorbs
// that window by re-reading the record and retrying; each attempt starts
// a fresh meter, so the report reflects exactly one assembly.
func (s *System) Retrieve(name string) (*vmi.Image, *RetrieveReport, error) {
	return s.retrieve(name, s.parallelism())
}

// retrieve is Retrieve with an explicit worker bound for the per-group
// package fetches (1 when called from RetrieveAll). When the retrieval
// cache is enabled, the striped repository generation of the VMI's base
// image and name is captured right after the record read: a hit under
// that generation is served from the cache (hash-verified, modeled
// charges replayed), concurrent misses of the same key coalesce behind
// one assembly (the miss singleflight), and a completed assembly is
// inserted only if the generation is still unchanged — so an assembly
// that raced a relevant publish or removal can never be cached under a
// key a later lookup would trust.
//
// The record read happens before the generation capture, which is safe:
// an entry's validity depends only on the master graph, base blob,
// packages and user data named by its key — all covered by the captured
// stripes — never on the record itself, which only selects which key a
// retrieval builds.
func (s *System) retrieve(name string, workers int) (*vmi.Image, *RetrieveReport, error) {
	const maxAttempts = 3
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rep := &RetrieveReport{Image: name, Meter: &simio.Meter{}}
		rec, err := s.repo.GetVMI(name, rep.Meter)
		if err != nil {
			return nil, nil, err
		}
		var gen uint64
		var key retrievecache.Key
		if s.cache != nil {
			gen = s.repo.GenerationFor(rec.BaseID, name)
			key = retrievecache.NewKey(rec.BaseID, rec.Primaries, name, gen)
			ent, err := s.cache.Get(key)
			if err != nil {
				return nil, nil, fmt.Errorf("core: retrieve %s: %w", name, err)
			}
			if ent != nil {
				s.cctr.hits[vmirepo.StripeFor(rec.BaseID)].Add(1)
				return s.materializeCached(name, rec, ent)
			}
			// Miss. Coalesce behind any in-flight assembly of the same
			// key — except on the final attempt, where the caller
			// assembles solo so repeated leader failures can never
			// starve it.
			if attempt < maxAttempts-1 {
				if fl, leader := s.flights.join(key); !leader {
					<-fl.done
					if fl.ent != nil {
						s.cctr.coalesced.Add(1)
						return s.materializeCached(name, rec, fl.ent)
					}
					// A hard leader failure hits every follower too:
					// surface it like a solo assembly would, instead of
					// re-amplifying assembly load on a failing backend.
					if fl.err != nil && !errors.Is(fl.err, vmirepo.ErrNotFound) {
						return nil, nil, fl.err
					}
					// The leader hit the transient not-found window, or
					// its assembly raced a mutation on this stripe: retry
					// with a fresh record and generation (usually
					// straight into a hit on the leader's insert at the
					// new generation, or into leading a fresh flight).
					lastErr = fl.err
					continue
				} else {
					img, lrep, err := s.leadAssembly(key, gen, rec, rep, workers, fl)
					if err == nil {
						return img, lrep, nil
					}
					if !errors.Is(err, vmirepo.ErrNotFound) {
						return nil, nil, err
					}
					lastErr = err
					continue
				}
			}
		}
		// Solo assembly: no cache, or the final attempt of a cached
		// retrieval.
		img, err := s.assemble(name, rec.BaseID, rec.Primaries, name, rep, workers)
		if err == nil {
			if s.cache != nil {
				s.cacheAssembled(key, gen, img, rep)
			}
			return img, rep, nil
		}
		if !errors.Is(err, vmirepo.ErrNotFound) {
			return nil, nil, err
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("core: retrieve %s: %w", name, lastErr)
}

// leadAssembly runs one assembly as the singleflight leader for key: it
// assembles, attempts the generation-checked cache insert, and publishes
// the outcome to the flight's followers (a verified shareable entry, or
// nil telling them to retry). The flight is always finished, even when
// the assembly errors.
//
// Before assembling, the leader re-checks the cache: between this
// caller's miss and its taking the flight lead, a previous flight for
// the same key may have finished and inserted — serving that entry
// instead of assembling again is what keeps the herd at one assembly per
// generation even across flight boundaries. The re-check is a Peek, so
// the caller's already-counted miss is not double-counted.
func (s *System) leadAssembly(key retrievecache.Key, gen uint64, rec vmirepo.VMIRecord, rep *RetrieveReport, workers int, fl *flight) (*vmi.Image, *RetrieveReport, error) {
	var shared *retrievecache.Entry
	var sharedBuild func() *retrievecache.Entry
	var aerr error
	defer func() { s.flights.finish(key, fl, shared, aerr, sharedBuild) }()
	ent, err := s.cache.Peek(key)
	if err != nil {
		aerr = err
		return nil, nil, fmt.Errorf("core: retrieve %s: %w", rec.Name, err)
	}
	if ent != nil {
		s.cctr.hits[vmirepo.StripeFor(rec.BaseID)].Add(1)
		shared = ent
		img, crep, err := s.materializeCached(rec.Name, rec, ent)
		if err != nil {
			shared, aerr = nil, err
		}
		return img, crep, err
	}
	img, err := s.assemble(rec.Name, rec.BaseID, rec.Primaries, rec.Name, rep, workers)
	if err != nil {
		aerr = err
		return nil, nil, err
	}
	shared, sharedBuild = s.cacheAssembled(key, gen, img, rep)
	return img, rep, nil
}

// Assemble builds a VMI that was never uploaded in this exact form: any
// primary package combination available in the repository, on a compatible
// stored base image ("VMI assembly either with identical or with differing
// functionality", Sec. IV-D). userDataFrom optionally names a published
// VMI whose user data to import.
func (s *System) Assemble(name string, primaries []string, userDataFrom string) (*vmi.Image, *RetrieveReport, error) {
	// Like Retrieve, Assemble retries when a candidate base disappears
	// under it mid-assembly because a concurrent publish commit replaced
	// it (the rescan then finds the surviving, merged master).
	const maxAttempts = 3
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rep := &RetrieveReport{Image: name, Meter: &simio.Meter{}}
		masters, err := s.repo.Masters()
		if err != nil {
			return nil, nil, err
		}
		sort.Slice(masters, func(i, j int) bool { return masters[i].BaseID < masters[j].BaseID })
		found := false
		for _, mg := range masters {
			if !hasAll(mg.PrimaryNames(), primaries) {
				continue
			}
			found = true
			img, err := s.assemble(name, mg.BaseID, primaries, userDataFrom, rep, s.parallelism())
			if err == nil {
				return img, rep, nil
			}
			if !errors.Is(err, vmirepo.ErrNotFound) {
				return nil, nil, err
			}
			lastErr = err
			break
		}
		if !found {
			return nil, nil, fmt.Errorf("core: no stored base provides packages %v", primaries)
		}
	}
	return nil, nil, fmt.Errorf("core: assemble %s: %w", name, lastErr)
}

func hasAll(have []string, want []string) bool {
	set := make(map[string]bool, len(have))
	for _, h := range have {
		set[h] = true
	}
	for _, w := range want {
		if !set[w] {
			return false
		}
	}
	return true
}

// localRepoDir is the temporary in-guest package repository used during
// assembly (Sec. V-4).
const localRepoDir = "/var/local-repo"

// assemble implements Algorithm 3 against a specific base image, fetching
// each dependency group's packages with up to `workers` goroutines.
func (s *System) assemble(name, baseID string, primaries []string, userDataFrom string, rep *RetrieveReport, workers int) (*vmi.Image, error) {
	// Line 1: subgraphs from the repository.
	mg, err := s.repo.GetMaster(baseID, rep.Meter)
	if err != nil {
		return nil, err
	}
	baseSub := mg.BaseSubgraph()
	psUnion := semgraph.New(mg.Attrs())
	for _, p := range primaries {
		sub, err := mg.PrimarySubgraph(p)
		if err != nil {
			return nil, fmt.Errorf("core: assemble %s: %w", name, err)
		}
		psUnion.Union(sub)
	}
	// Line 2: compatibility check.
	if !similarity.Compatible(baseSub, psUnion) {
		return nil, fmt.Errorf("core: assemble %s: primary packages incompatible with base %s", name, baseID)
	}

	// Lines 6–10, hoisted: packages in the primary subgraph missing from
	// the base, and their install order. Both need only graph data, so
	// they run before the base image opens — which lets the package
	// payloads prefetch concurrently with the copy/launch/sysprep window
	// below instead of serializing behind it.
	var missing []string
	for _, v := range psUnion.Vertices() {
		if !baseSub.HasVertex(v.Pkg.Name) {
			missing = append(missing, v.Pkg.Name)
		}
	}
	order, err := pkgmgr.InstallOrder(graphUniverse{psUnion}, missing)
	if err != nil {
		return nil, err
	}
	var flat []string
	for _, group := range order {
		flat = append(flat, group...)
	}
	blobs := make([][]byte, len(flat))
	blobAt := make(map[string]int, len(flat))
	for i, pkgName := range flat {
		blobAt[pkgName] = i
	}
	fetch := func(i int) error {
		v, _ := psUnion.Vertex(flat[i])
		_, blob, err := s.repo.GetPackage(v.Pkg.Ref(), simio.PhaseImport, rep.Meter)
		if err != nil {
			return err
		}
		blobs[i] = blob
		return nil
	}
	fetchDone := func() error { return nil }
	if len(flat) > 0 {
		if workers > 1 {
			ch := make(chan error, 1)
			go func() { ch <- pool.Map(workers, len(flat), fetch) }()
			var once sync.Once
			var ferr error
			fetchDone = func() error {
				once.Do(func() { ferr = <-ch })
				return ferr
			}
			// Drain on every exit path: an error return from the guest
			// phases below must not leave the fetch goroutine charging the
			// meter after the retrieval has reported.
			defer fetchDone()
		} else {
			fetchDone = func() error { return pool.Map(workers, len(flat), fetch) }
		}
	}

	// Lines 3–4: copy the base image and reset it. The copy is lazy: the
	// disk deserializes over the blob store's own reader (segment-offset
	// section reads on the disk backend, zero-copy views in memory), so
	// base clusters the assembly never touches are never materialized.
	rc, size, err := s.repo.OpenBase(baseID, simio.PhaseCopy, rep.Meter)
	if err != nil {
		return nil, err
	}
	disk, err := deserializeBase(name, rc, size)
	if err != nil {
		return nil, err
	}
	h := guestfs.New(disk, s.dev, rep.Meter)
	if err := h.Launch(); err != nil {
		return nil, err
	}
	if err := h.Sysprep(nil); err != nil {
		return nil, err
	}
	fs, _ := h.FS()

	// Line 5: import the user data.
	if userDataFrom != "" {
		archive, err := s.repo.GetUserData(userDataFrom, simio.PhaseImport, rep.Meter)
		if err != nil {
			return nil, err
		}
		if archive != nil {
			files, err := pkgfmt.UnpackTar(archive)
			if err != nil {
				return nil, err
			}
			for _, f := range files {
				if err := fs.MkdirAll(path.Dir(f.Path)); err != nil {
					return nil, err
				}
				if err := fs.WriteFile(f.Path, f.Data); err != nil {
					return nil, err
				}
			}
		}
	}

	// Lines 11–13: import and install through the guest package manager
	// from a temporary local repository.
	mgr, err := h.PackageManager()
	if err != nil {
		return nil, err
	}
	if err := fs.MkdirAll(localRepoDir); err != nil {
		return nil, err
	}
	if err := fs.MkdirAll("/etc/apt/sources.list.d"); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/etc/apt/sources.list.d/local.list",
		[]byte("deb [trusted=yes] file:"+localRepoDir+" ./\n")); err != nil {
		return nil, err
	}
	// Join the prefetch started above; from here every payload is in hand
	// (the guest-side installs below mutate the image filesystem and stay
	// sequential, preserving dependency order and determinism).
	if err := fetchDone(); err != nil {
		return nil, err
	}
	for _, group := range order {
		for _, pkgName := range group {
			blob := blobs[blobAt[pkgName]]
			v, _ := psUnion.Vertex(pkgName)
			local := path.Join(localRepoDir, pkgName+".deb")
			if err := fs.WriteFile(local, blob); err != nil {
				return nil, err
			}
			if mgr.IsInstalled(pkgName) {
				// Already present (e.g. imported by an earlier group).
				fs.Remove(local)
				continue
			}
			if err := mgr.Install(blob); err != nil {
				return nil, err
			}
			rep.Meter.Charge(simio.PhaseImport,
				s.dev.InstallCost(catalog.Real(v.Pkg.InstalledSize), 1))
			rep.Imported = append(rep.Imported, pkgName)
			rep.ImportedBytes += v.Pkg.InstalledSize
			if err := fs.Remove(local); err != nil {
				return nil, err
			}
		}
	}
	// Restore the default repository configuration (Sec. V-4).
	if err := fs.RemoveAll(localRepoDir); err != nil {
		return nil, err
	}
	if err := fs.Remove("/etc/apt/sources.list.d/local.list"); err != nil {
		return nil, err
	}
	h.Close()

	disk.SetName(name)
	return &vmi.Image{
		Name:      name,
		Base:      mg.Attrs(),
		Primaries: append([]string(nil), primaries...),
		Disk:      disk,
	}, nil
}

// deserializeBase builds the assembly's working disk over a just-opened
// base image reader. Both built-in backends hand out io.ReaderAt views
// that stay valid for the life of the store (their Close is a no-op), so
// the disk reads base clusters straight from the store on demand; a
// backend whose reader lacks ReaderAt falls back to materializing the
// blob once.
func deserializeBase(name string, rc io.ReadCloser, size int64) (*vdisk.Disk, error) {
	defer rc.Close()
	if ra, ok := rc.(io.ReaderAt); ok {
		return vdisk.DeserializeLazy(name, ra, size)
	}
	blob, err := io.ReadAll(rc)
	if err != nil {
		return nil, err
	}
	return vdisk.Deserialize(name, blob)
}

// RetrieveTo assembles a published VMI like Retrieve and streams its
// serialized image straight to w, returning the byte count. The written
// bytes pass through the same lazy backing the assembly read them from,
// so peak memory stays bounded by the clusters the assembly actually
// touched plus the streaming chunk — it does not grow with image size.
func (s *System) RetrieveTo(w io.Writer, name string) (int64, *RetrieveReport, error) {
	img, rep, err := s.retrieve(name, s.parallelism())
	if err != nil {
		return 0, nil, err
	}
	n, err := img.Disk.WriteTo(w)
	if err != nil {
		return n, rep, fmt.Errorf("core: retrieve %s: stream image: %w", name, err)
	}
	return n, rep, nil
}

// graphUniverse adapts a semantic graph to the resolver's Universe.
type graphUniverse struct{ g *semgraph.Graph }

func (u graphUniverse) Lookup(name string) (pkgmeta.Package, bool) {
	v, ok := u.g.Vertex(name)
	return v.Pkg, ok
}

// MasterDOT renders every stored master graph in Graphviz DOT format —
// the semantic-graph visualisation of Fig. 1a for the live repository.
func (s *System) MasterDOT() (string, error) {
	masters, err := s.repo.Masters()
	if err != nil {
		return "", err
	}
	var out string
	for _, mg := range masters {
		out += mg.G.DOT("master_" + mg.BaseID)
	}
	return out, nil
}

// DescribeRepo returns a human-readable repository summary.
func (s *System) DescribeRepo() string {
	st := s.repo.Stats()
	return fmt.Sprintf("packages=%d bases=%d vmis=%d blob=%.2fMB db=%.2fMB total=%.2fMB",
		st.Packages, st.Bases, st.VMIs,
		float64(st.BlobBytes)/1e6, float64(st.DBBytes)/1e6, float64(st.TotalBytes)/1e6)
}
