package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"expelliarmus/internal/retrievecache"
)

const testCacheBytes = 64 << 20

// retrieveTrace captures everything a retrieval reports, for equality
// checks between cold and warm paths.
type retrieveTrace struct {
	image    []byte
	imported []string
	bytes    int64
	seconds  float64
	phases   string
}

func traceRetrieve(t *testing.T, s *System, name string) retrieveTrace {
	t.Helper()
	img, rep, err := s.Retrieve(name)
	if err != nil {
		t.Fatalf("retrieve %s: %v", name, err)
	}
	return retrieveTrace{
		image:    img.Disk.Serialize(),
		imported: rep.Imported,
		bytes:    rep.ImportedBytes,
		seconds:  rep.Seconds(),
		phases:   rep.Meter.String(),
	}
}

// TestCacheHitMatchesColdRetrieval pins the transparency contract: a warm
// retrieval returns byte-identical image content and a byte-identical
// modeled report — the cache may only change wall-clock time.
func TestCacheHitMatchesColdRetrieval(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	cold := traceRetrieve(t, s, "Redis")
	warm := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(cold.image, warm.image) {
		t.Fatalf("warm image differs from cold: %d vs %d bytes", len(warm.image), len(cold.image))
	}
	if !reflect.DeepEqual(cold.imported, warm.imported) || cold.bytes != warm.bytes {
		t.Fatalf("warm import report differs: %v/%d vs %v/%d",
			warm.imported, warm.bytes, cold.imported, cold.bytes)
	}
	if cold.seconds != warm.seconds || cold.phases != warm.phases {
		t.Fatalf("warm modeled cost differs:\ncold %s\nwarm %s", cold.phases, warm.phases)
	}
	st, ok := s.CacheStats()
	if !ok {
		t.Fatal("cache enabled but CacheStats reports disabled")
	}
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

// TestCacheInvalidatedByAnyMutation checks generation invalidation from
// the side the cache cannot see: after an unrelated publish and after a
// removal, a repeat retrieval must miss (fresh generation) yet still
// return identical results.
func TestCacheInvalidatedByAnyMutation(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	first := traceRetrieve(t, s, "Redis") // miss + insert

	if _, err := s.Publish(buildImage(t, b, "PostgreSql")); err != nil {
		t.Fatal(err)
	}
	second := traceRetrieve(t, s, "Redis") // generation moved: miss again
	if !bytes.Equal(first.image, second.image) {
		t.Fatal("retrieval after unrelated publish returned different bytes")
	}

	if err := s.Remove("Mini"); err != nil {
		t.Fatal(err)
	}
	third := traceRetrieve(t, s, "Redis") // removal moved it again
	if !bytes.Equal(first.image, third.image) {
		t.Fatal("retrieval after removal returned different bytes")
	}

	st, _ := s.CacheStats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v: every retrieval should have missed (generation moved)", st)
	}

	// With the repository quiet again, the cache warms back up.
	warm := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(first.image, warm.image) {
		t.Fatal("warm retrieval differs")
	}
	if st, _ := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v: quiet repeat should hit", st)
	}
}

// TestRetrieveAllUsesCache checks the batch path shares the cache.
func TestRetrieveAllUsesCache(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes, Parallelism: 4})
	names := []string{"Mini", "Redis", "PostgreSql"}
	for _, n := range names {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.RetrieveAll(names); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RetrieveAll(names); err != nil {
		t.Fatal(err)
	}
	st, _ := s.CacheStats()
	if st.Misses != int64(len(names)) || st.Hits != int64(len(names)) {
		t.Fatalf("stats = %+v, want %d misses then %d hits", st, len(names), len(names))
	}
}

// TestPoisonedEntrySurfacesAsError corrupts a cached image in place and
// checks the next retrieval fails loudly instead of returning wrong
// bytes — and that the poisoned entry is evicted, so the retrieval after
// that reassembles cleanly.
func TestPoisonedEntrySurfacesAsError(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	clean := traceRetrieve(t, s, "Redis") // insert

	// Reach into the cache exactly as the retrieval path would and flip a
	// bit in the stored image — simulated bit rot.
	rec, err := s.repo.GetVMI("Redis", nil)
	if err != nil {
		t.Fatal(err)
	}
	key := retrievecache.NewKey(rec.BaseID, rec.Primaries, "Redis", s.repo.Generation())
	ent, err := s.cache.Get(key)
	if err != nil || ent == nil {
		t.Fatalf("cached entry not found: %v", err)
	}
	ent.Image[len(ent.Image)/2] ^= 0x01

	if _, _, err := s.Retrieve("Redis"); !errors.Is(err, retrievecache.ErrPoisoned) {
		t.Fatalf("retrieve over poisoned entry returned %v, want ErrPoisoned", err)
	}
	// The entry was evicted: the next retrieval reassembles and matches.
	recovered := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(clean.image, recovered.image) {
		t.Fatal("recovery after poison returned different bytes")
	}
	st, _ := s.CacheStats()
	if st.Poisoned != 1 {
		t.Fatalf("stats = %+v, want Poisoned = 1", st)
	}
}

// TestCacheDisabledByDefault: the zero options run without a cache and
// CacheStats says so.
func TestCacheDisabledByDefault(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Retrieve("Mini"); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.CacheStats(); ok || st != (retrievecache.Stats{}) {
		t.Fatalf("cache unexpectedly enabled: %+v", st)
	}
}
