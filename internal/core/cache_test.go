package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/retrievecache"
	"expelliarmus/internal/vmirepo"
)

const testCacheBytes = 64 << 20

// retrieveTrace captures everything a retrieval reports, for equality
// checks between cold and warm paths.
type retrieveTrace struct {
	image    []byte
	imported []string
	bytes    int64
	seconds  float64
	phases   string
}

func traceRetrieve(t *testing.T, s *System, name string) retrieveTrace {
	t.Helper()
	img, rep, err := s.Retrieve(name)
	if err != nil {
		t.Fatalf("retrieve %s: %v", name, err)
	}
	return retrieveTrace{
		image:    img.Disk.Serialize(),
		imported: rep.Imported,
		bytes:    rep.ImportedBytes,
		seconds:  rep.Seconds(),
		phases:   rep.Meter.String(),
	}
}

// TestCacheHitMatchesColdRetrieval pins the transparency contract: a warm
// retrieval returns byte-identical image content and a byte-identical
// modeled report — the cache may only change wall-clock time.
func TestCacheHitMatchesColdRetrieval(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	cold := traceRetrieve(t, s, "Redis")
	warm := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(cold.image, warm.image) {
		t.Fatalf("warm image differs from cold: %d vs %d bytes", len(warm.image), len(cold.image))
	}
	if !reflect.DeepEqual(cold.imported, warm.imported) || cold.bytes != warm.bytes {
		t.Fatalf("warm import report differs: %v/%d vs %v/%d",
			warm.imported, warm.bytes, cold.imported, cold.bytes)
	}
	if cold.seconds != warm.seconds || cold.phases != warm.phases {
		t.Fatalf("warm modeled cost differs:\ncold %s\nwarm %s", cold.phases, warm.phases)
	}
	st, ok := s.CacheStats()
	if !ok {
		t.Fatal("cache enabled but CacheStats reports disabled")
	}
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
}

// TestCacheInvalidatedByAnyMutation checks generation invalidation from
// the side the cache cannot see: after a publish of a different image on
// the same base (all Xenial catalog images decompose to one shared base,
// so its master graph — and generation stripe — moves) and after a
// removal, a repeat retrieval must miss (fresh generation) yet still
// return identical results. The striping counterpart — a publish on an
// unrelated base leaves entries warm — is TestCrossReleasePublishKeepsCacheWarm.
func TestCacheInvalidatedByAnyMutation(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	first := traceRetrieve(t, s, "Redis") // miss + insert

	if _, err := s.Publish(buildImage(t, b, "PostgreSql")); err != nil {
		t.Fatal(err)
	}
	second := traceRetrieve(t, s, "Redis") // generation moved: miss again
	if !bytes.Equal(first.image, second.image) {
		t.Fatal("retrieval after unrelated publish returned different bytes")
	}

	if err := s.Remove("Mini"); err != nil {
		t.Fatal(err)
	}
	third := traceRetrieve(t, s, "Redis") // removal moved it again
	if !bytes.Equal(first.image, third.image) {
		t.Fatal("retrieval after removal returned different bytes")
	}

	st, _ := s.CacheStats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("stats = %+v: every retrieval should have missed (generation moved)", st)
	}

	// With the repository quiet again, the cache warms back up.
	warm := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(first.image, warm.image) {
		t.Fatal("warm retrieval differs")
	}
	if st, _ := s.CacheStats(); st.Hits != 1 {
		t.Fatalf("stats = %+v: quiet repeat should hit", st)
	}
}

// TestRetrieveAllUsesCache checks the batch path shares the cache.
func TestRetrieveAllUsesCache(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes, Parallelism: 4})
	names := []string{"Mini", "Redis", "PostgreSql"}
	for _, n := range names {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.RetrieveAll(names); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RetrieveAll(names); err != nil {
		t.Fatal(err)
	}
	st, _ := s.CacheStats()
	if st.Misses != int64(len(names)) || st.Hits != int64(len(names)) {
		t.Fatalf("stats = %+v, want %d misses then %d hits", st, len(names), len(names))
	}
}

// TestPoisonedEntrySurfacesAsError corrupts a cached image in place and
// checks the next retrieval fails loudly instead of returning wrong
// bytes — and that the poisoned entry is evicted, so the retrieval after
// that reassembles cleanly.
func TestPoisonedEntrySurfacesAsError(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	clean := traceRetrieve(t, s, "Redis") // insert

	// Reach into the cache exactly as the retrieval path would and flip a
	// bit in the stored image — simulated bit rot.
	rec, err := s.repo.GetVMI("Redis", nil)
	if err != nil {
		t.Fatal(err)
	}
	key := retrievecache.NewKey(rec.BaseID, rec.Primaries, "Redis", s.repo.GenerationFor(rec.BaseID, "Redis"))
	ent, err := s.cache.Get(key)
	if err != nil || ent == nil {
		t.Fatalf("cached entry not found: %v", err)
	}
	ent.Image[len(ent.Image)/2] ^= 0x01

	if _, _, err := s.Retrieve("Redis"); !errors.Is(err, retrievecache.ErrPoisoned) {
		t.Fatalf("retrieve over poisoned entry returned %v, want ErrPoisoned", err)
	}
	// The entry was evicted: the next retrieval reassembles and matches.
	recovered := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(clean.image, recovered.image) {
		t.Fatal("recovery after poison returned different bytes")
	}
	st, _ := s.CacheStats()
	if st.Poisoned != 1 {
		t.Fatalf("stats = %+v, want Poisoned = 1", st)
	}
}

// TestPackageOnlyInsertKeepsCacheWarm is the EnsurePackage exemption
// regression test: an insert that only adds a ref unreachable from any
// master graph cannot change assembly output, so it must not move any
// generation stripe — warm entries stay servable through the data-plane
// phase of a concurrent publish.
func TestPackageOnlyInsertKeepsCacheWarm(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	cold := traceRetrieve(t, s, "Redis") // miss + insert

	// A package-only insert, as the data-plane phase of a publish would
	// issue it: a fresh ref no master graph references.
	extra := pkgmeta.Package{Name: "storm-extra", Version: "9.9", Arch: "amd64", Distro: "ubuntu", InstalledSize: 1000}
	stored, err := s.repo.EnsurePackage(extra, []byte("payload"), nil)
	if err != nil || !stored {
		t.Fatalf("EnsurePackage = %v, %v", stored, err)
	}

	warm := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(cold.image, warm.image) {
		t.Fatal("retrieval after package-only insert returned different bytes")
	}
	st, _ := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v: the package-only insert flushed the warm entry", st)
	}
}

// TestOversizeImageCountsRejected pins the stats fix: an image whose
// lower-bound serialized size already exceeds the whole budget skips the
// insert, but the skip must be counted as Rejected so hit-rate math can
// see uncacheable images.
func TestOversizeImageCountsRejected(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: 1024}) // far below any image
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	first := traceRetrieve(t, s, "Mini")
	second := traceRetrieve(t, s, "Mini")
	if !bytes.Equal(first.image, second.image) {
		t.Fatal("uncacheable retrievals differ")
	}
	st, _ := s.CacheStats()
	if st.Puts != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v: an oversize image was inserted", st)
	}
	if st.Rejected != 2 {
		t.Fatalf("stats = %+v, want Rejected = 2 (one per skipped insert)", st)
	}
	if st.Misses != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 misses / 0 hits", st)
	}
}

// TestConcurrentMissesCoalesce is the singleflight contract at the core
// level: 32 concurrent misses of one cold key run exactly one assembly;
// everyone gets byte-identical images and reports.
func TestConcurrentMissesCoalesce(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	ref := traceRetrieve(t, s, "Redis") // reference bytes
	// Move the hot generation (a publish on the shared base) so the key is
	// cold again, then quiesce before the storm.
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	before, _ := s.CacheStats()

	const clients = 32
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	seconds := make([]float64, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			img, rep, err := s.Retrieve("Redis")
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("worker %d: %v", w, err))
				mu.Unlock()
				return
			}
			seconds[w] = rep.Seconds()
			// The Mini publish grew the shared master graph, so modeled
			// seconds legitimately differ from ref — but the image bytes
			// must not, and every worker must agree with every other.
			if !bytes.Equal(img.Disk.Serialize(), ref.image) {
				mu.Lock()
				failures = append(failures, fmt.Sprintf("worker %d: image bytes differ from reference", w))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(failures) > 0 {
		t.Fatal(failures[0])
	}
	for w := 1; w < clients; w++ {
		if seconds[w] != seconds[0] {
			t.Fatalf("worker %d modeled %.9fs, worker 0 %.9fs — coalesced reports diverge", w, seconds[w], seconds[0])
		}
	}
	after, _ := s.CacheStats()
	assemblies := (after.Puts - before.Puts) + (after.Rejected - before.Rejected)
	for i := range after.StripeInvalidations {
		assemblies += after.StripeInvalidations[i] - before.StripeInvalidations[i]
	}
	if assemblies != 1 {
		t.Fatalf("%d assemblies for %d concurrent misses, want exactly 1 (stats %+v)", assemblies, clients, after)
	}
	served := (after.Hits - before.Hits) + after.Coalesced - before.Coalesced
	if served != clients-1 {
		t.Fatalf("hits+coalesced = %d, want %d (stats %+v)", served, clients-1, after)
	}
}

// TestCrossReleasePublishKeepsCacheWarm is the striping contract at the
// core level: publishes of another release (a different base-attribute
// quadruple, hence a different base image and generation stripes) must
// leave the hot image's entry servable, and the per-stripe counters must
// attribute the hits to the hot base's stripe.
func TestCrossReleasePublishKeepsCacheWarm(t *testing.T) {
	s, b := newSystem(t, Options{CacheBytes: testCacheBytes})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	rec, err := s.repo.GetVMI("Redis", nil)
	if err != nil {
		t.Fatal(err)
	}
	hotStripes := map[int]bool{
		vmirepo.StripeFor(rec.BaseID): true,
		vmirepo.StripeFor("Redis"):    true,
	}

	// Noise images from another release, renamed so their name stripes are
	// under our control; skip candidates that collide with the hot stripes
	// (collisions are striping's documented false-sharing mode, not what
	// this test pins).
	bionic := builder.New(catalog.NewUniverseFor(catalog.ReleaseBionic))
	tpl, _ := catalog.Find("Mini")
	var noise []string
	for i := 0; len(noise) < 2 && i < 100; i++ {
		name := fmt.Sprintf("noise-bionic-%d", i)
		if !hotStripes[vmirepo.StripeFor(name)] {
			noise = append(noise, name)
		}
	}

	cold := traceRetrieve(t, s, "Redis") // miss + insert

	publishNoise := func(name string) {
		ntpl := tpl
		ntpl.Name = name
		img, err := bionic.Build(ntpl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Publish(img); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
		nrec, err := s.repo.GetVMI(name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if hotStripes[vmirepo.StripeFor(nrec.BaseID)] {
			t.Skipf("noise base %s collides with a hot stripe; striping cannot be observed", nrec.BaseID)
		}
	}
	for _, n := range noise {
		publishNoise(n)
	}

	warm := traceRetrieve(t, s, "Redis")
	if !bytes.Equal(cold.image, warm.image) {
		t.Fatal("retrieval after cross-release publishes returned different bytes")
	}
	st, _ := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v: cross-release publishes flushed the warm entry", st)
	}
	if got := st.StripeHits[vmirepo.StripeFor(rec.BaseID)]; got != 1 {
		t.Fatalf("StripeHits[hot] = %d, want 1", got)
	}
	var inval int64
	for _, v := range st.StripeInvalidations {
		inval += v
	}
	if inval != 0 {
		t.Fatalf("stats = %+v: quiesced publishes produced insert invalidations", st)
	}
}

// TestCacheDisabledByDefault: the zero options run without a cache and
// CacheStats says so.
func TestCacheDisabledByDefault(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Mini")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Retrieve("Mini"); err != nil {
		t.Fatal(err)
	}
	if st, ok := s.CacheStats(); ok || st.Hits != 0 || st.Misses != 0 || st.StripeHits != nil {
		t.Fatalf("cache unexpectedly enabled: %+v", st)
	}
}
