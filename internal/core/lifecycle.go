package core

// Image lifecycle: TTL expiry and vacuum. Expiry removes images whose
// timestamp has passed through the ordinary striped Remove path, so
// everything an expired image referenced is garbage-collected exactly
// like an operator removal. Vacuum is the complementary deep clean: it
// reconciles every piece of derived state — package refcounts, tenant
// totals, lifecycle records — against the committed VMI records, removes
// what nothing references (including the blob orphans crash recovery
// deliberately resurrects), and compacts the stores to give the bytes
// back to the disk.

import (
	"errors"
	"fmt"

	"expelliarmus/internal/vmirepo"
)

// ExpireAt removes every VMI whose expiry timestamp is at or before now
// (Unix seconds), returning the names removed. Each removal is the
// ordinary Remove transaction; a VMI already gone when its turn comes
// (raced by an operator removal) is skipped, not an error.
func (s *System) ExpireAt(now int64) ([]string, error) {
	if s.repo.ReadOnly() {
		return nil, fmt.Errorf("core: expire: %w", vmirepo.ErrReadOnly)
	}
	names, err := s.repo.ExpiredVMIs(now)
	if err != nil {
		return nil, err
	}
	var removed []string
	for _, name := range names {
		if err := s.Remove(name); err != nil {
			if errors.Is(err, vmirepo.ErrNotFound) {
				continue
			}
			return removed, fmt.Errorf("core: expire %s: %w", name, err)
		}
		removed = append(removed, name)
	}
	return removed, nil
}

// VacuumStats reports what one Vacuum pass reclaimed.
type VacuumStats struct {
	// PackagesRemoved counts package records no VMI referenced.
	PackagesRemoved int
	// UserDataRemoved counts user-data archives whose VMI is gone.
	UserDataRemoved int
	// MetaRemoved counts lifecycle records whose VMI is gone.
	MetaRemoved int
	// BlobsReleased counts blobs no metadata record referenced (crash
	// orphans and abandoned publishes).
	BlobsReleased int
	// BytesReclaimed is the payload bytes of the removed packages and
	// released blobs.
	BytesReclaimed int64
}

// Vacuum walks the metadata graph and reclaims everything dangling:
// packages no VMI references, user-data archives and lifecycle records of
// VMIs that no longer exist, stale refcounts and tenant totals (rewritten
// from a fresh survey), and blobs no record references — the orphans
// crash recovery deliberately resurrects, which are the only drift the
// two-phase commit allows. On a disk-backed repository it then compacts
// both stores so the reclaimed bytes leave the disk.
//
// Vacuum holds every commit stripe: the survey must see a frozen
// metadata graph. State owned by in-flight publishes that have not
// reached their commit lock yet — pinned packages, pinned user-data
// archives, and the blobs their already-committed records protect — is
// left alone.
func (s *System) Vacuum() (VacuumStats, error) {
	var st VacuumStats
	if s.repo.ReadOnly() {
		return st, fmt.Errorf("core: vacuum: %w", vmirepo.ErrReadOnly)
	}
	defer s.lockAllCommits()()

	counts, err := s.surveyPackageRefs()
	if err != nil {
		return st, fmt.Errorf("core: vacuum: %w", err)
	}
	liveVMIs := map[string]bool{}
	for _, name := range s.repo.VMIs() {
		liveVMIs[name] = true
	}

	// Packages no VMI references (pinned ones belong to in-flight
	// publishes and survive).
	pkgs, err := s.repo.Packages()
	if err != nil {
		return st, err
	}
	for _, rec := range pkgs {
		ref := rec.Pkg.Ref()
		if counts[ref] != nil {
			continue
		}
		removed, err := s.removePackageUnlessPinned(ref)
		if err != nil {
			return st, err
		}
		if removed {
			st.PackagesRemoved++
			st.BytesReclaimed += rec.BlobSize
		}
	}

	// User-data archives whose VMI is gone (skip archives a publish
	// stored ahead of its commit).
	for _, name := range s.repo.UserDataNames() {
		if liveVMIs[name] || s.userDataPinned(name) {
			continue
		}
		if err := s.repo.RemoveUserData(name, nil); err != nil {
			return st, err
		}
		st.UserDataRemoved++
	}

	// Lifecycle records whose VMI is gone; tenant totals recomputed from
	// the survivors so accounting drift cannot accumulate.
	totals := map[string]int64{}
	for _, name := range s.repo.VMIMetaNames() {
		meta, ok, err := s.repo.GetVMIMeta(name, nil)
		if err != nil {
			return st, err
		}
		if !ok {
			continue
		}
		if !liveVMIs[name] {
			if err := s.repo.RemoveVMIMeta(name, nil); err != nil {
				return st, err
			}
			st.MetaRemoved++
			continue
		}
		if meta.Tenant != "" {
			totals[meta.Tenant] += meta.ChargedBytes
		}
	}
	if err := s.repo.ReplaceTenantUsage(totals, nil); err != nil {
		return st, err
	}
	if err := s.repo.ReplacePackageRefs(counts, nil); err != nil {
		return st, err
	}

	// Blob-level sweep: release whatever no record references.
	bst, err := s.repo.VacuumBlobs()
	if err != nil {
		return st, err
	}
	st.BlobsReleased = bst.BlobsReleased
	st.BytesReclaimed += bst.BytesReclaimed

	// Give the bytes back to the disk. The repository-level compaction is
	// called directly (not via System.Compact) because this transaction
	// already holds every commit stripe.
	if s.repo.Persistent() {
		if _, err := s.repo.Compact(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// TenantStats returns every tenant's recorded live bytes.
func (s *System) TenantStats() map[string]int64 { return s.repo.TenantStats() }
