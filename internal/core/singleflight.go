package core

import (
	"sync"
	"sync/atomic"

	"expelliarmus/internal/retrievecache"
)

// flight is one in-progress assembly that concurrent cache misses of the
// same key coalesce behind: the first miss leads and runs Algorithm 3
// once; every later miss waits for it instead of assembling the same
// image again (the thundering-herd fix for retrieval storms on one
// popular image).
type flight struct {
	done chan struct{}
	// waiters counts followers (incremented under the group lock); finish
	// reads it after unregistering the flight — when it is final — to
	// decide whether a shareable entry is worth building when the cache
	// itself would reject it (oversize images).
	waiters atomic.Int32
	// ent and err are the leader's outcome, written strictly before done
	// is closed. ent is non-nil only when the leader re-verified the
	// generation after assembling, so followers may serve a deep copy of
	// it exactly like a cache hit; ent == nil tells followers to retry
	// with a fresh record and generation.
	ent *retrievecache.Entry
	err error
}

// FlightStats is the queue-depth meter of the miss singleflight. Led and
// PeakDepth are cumulative over the system's lifetime; Active and Waiting
// are gauges of the in-flight state at the instant of the snapshot.
type FlightStats struct {
	// Led counts flights that took off: assemblies started as the
	// singleflight leader of their key.
	Led int64
	// Active is the number of flights currently in the air.
	Active int64
	// Waiting is the number of retrievals currently queued behind an
	// active flight (followers blocked on a leader's outcome).
	Waiting int64
	// PeakDepth is the deepest follower queue any single flight has ever
	// built up — the high-water mark of per-key retrieval pressure.
	PeakDepth int64
}

// flightGroup coalesces concurrent misses per cache key. The zero value
// is ready to use.
type flightGroup struct {
	mu  sync.Mutex
	m   map[retrievecache.Key]*flight
	ctr FlightStats // maintained under mu
}

// join returns the flight for key and whether the caller leads it. A
// leader must call finish exactly once; followers wait on fl.done.
func (g *flightGroup) join(key retrievecache.Key) (fl *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		depth := int64(fl.waiters.Add(1))
		g.ctr.Waiting++
		if depth > g.ctr.PeakDepth {
			g.ctr.PeakDepth = depth
		}
		return fl, false
	}
	if g.m == nil {
		g.m = make(map[retrievecache.Key]*flight)
	}
	fl = &flight{done: make(chan struct{})}
	g.m[key] = fl
	g.ctr.Led++
	g.ctr.Active++
	return fl, true
}

// stats snapshots the queue-depth meter.
func (g *flightGroup) stats() FlightStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ctr
}

// finish publishes the leader's outcome and releases the flight. The key
// is removed from the group before done is closed, so a miss arriving
// after the outcome is sealed starts a fresh flight rather than joining
// a finished one.
//
// build, when non-nil, produces a shareable entry on demand for an
// outcome that has followers but no cached entry (an image too large to
// cache). It runs strictly after the key is removed from the group —
// joins only happen under the group lock while the key is present, so
// the waiter count read here is final and no follower can slip in after
// a "no waiters" decision.
func (g *flightGroup) finish(key retrievecache.Key, fl *flight, ent *retrievecache.Entry, err error, build func() *retrievecache.Entry) {
	g.mu.Lock()
	delete(g.m, key)
	g.ctr.Active--
	// The key is out of the map, so the waiter count is final: settle the
	// gauge for every follower this flight is about to release.
	g.ctr.Waiting -= int64(fl.waiters.Load())
	g.mu.Unlock()
	if ent == nil && err == nil && build != nil && fl.waiters.Load() > 0 {
		ent = build()
	}
	fl.ent, fl.err = ent, err
	close(fl.done)
}
