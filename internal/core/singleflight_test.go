package core

import (
	"testing"

	"expelliarmus/internal/retrievecache"
)

// TestFlightStatsMeter drives a flightGroup directly and checks the
// queue-depth meter through a full flight lifecycle: leader takeoff,
// followers queuing, landing, and a second shallower flight that must
// not disturb the recorded peak.
func TestFlightStatsMeter(t *testing.T) {
	var g flightGroup
	keyA := retrievecache.NewKey("base-a", []string{"p"}, "img-a", 1)
	keyB := retrievecache.NewKey("base-b", []string{"q"}, "img-b", 1)

	if st := g.stats(); st != (FlightStats{}) {
		t.Fatalf("zero-value stats = %+v, want all zero", st)
	}

	flA, leader := g.join(keyA)
	if !leader {
		t.Fatal("first join of keyA did not lead")
	}
	for i := 0; i < 3; i++ {
		if _, led := g.join(keyA); led {
			t.Fatalf("follower %d of keyA led", i)
		}
	}
	flB, leader := g.join(keyB)
	if !leader {
		t.Fatal("first join of keyB did not lead")
	}
	if _, led := g.join(keyB); led {
		t.Fatal("follower of keyB led")
	}

	want := FlightStats{Led: 2, Active: 2, Waiting: 4, PeakDepth: 3}
	if st := g.stats(); st != want {
		t.Fatalf("mid-flight stats = %+v, want %+v", st, want)
	}

	g.finish(keyA, flA, nil, nil, nil)
	want = FlightStats{Led: 2, Active: 1, Waiting: 1, PeakDepth: 3}
	if st := g.stats(); st != want {
		t.Fatalf("after keyA landed: stats = %+v, want %+v", st, want)
	}

	g.finish(keyB, flB, nil, nil, nil)
	want = FlightStats{Led: 2, Active: 0, Waiting: 0, PeakDepth: 3}
	if st := g.stats(); st != want {
		t.Fatalf("after all landed: stats = %+v, want %+v", st, want)
	}

	// A later flight with a shallower queue bumps Led but not PeakDepth.
	flA2, leader := g.join(keyA)
	if !leader {
		t.Fatal("fresh join of a finished key did not lead")
	}
	if _, led := g.join(keyA); led {
		t.Fatal("follower of second keyA flight led")
	}
	g.finish(keyA, flA2, nil, nil, nil)
	want = FlightStats{Led: 3, Active: 0, Waiting: 0, PeakDepth: 3}
	if st := g.stats(); st != want {
		t.Fatalf("after shallow reflight: stats = %+v, want %+v", st, want)
	}
}
