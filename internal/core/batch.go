package core

import (
	"fmt"

	"expelliarmus/internal/pool"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// PublishAll publishes a batch of images concurrently against the one
// shared repository. Options.Parallelism bounds the total worker
// goroutines: the batch fans out across images, and each image's package
// export runs sequentially inside its worker (a solo Publish instead fans
// out per package under the same bound). Like Publish, it consumes the
// images.
//
// Cross-image semantic deduplication still applies — concurrent publishes
// coordinate through the repository's atomic package store, so a package
// shared by several images in the batch is stored exactly once (whichever
// publish wins the race exports it; the others count it as skipped).
//
// The batch is not a transaction: on error, publishes that already
// committed stay in the repository. The returned slice always has one
// entry per input image, in input order; entries are nil for images whose
// publish failed or never started.
func (s *System) PublishAll(imgs []*vmi.Image) ([]*PublishReport, error) {
	reps := make([]*PublishReport, len(imgs))
	err := pool.Map(s.parallelism(), len(imgs), func(i int) error {
		rep, err := s.publish(imgs[i], 1, PublishOpts{})
		if err != nil {
			return fmt.Errorf("core: publish all [%d] %s: %w", i, imgs[i].Name, err)
		}
		reps[i] = rep
		return nil
	})
	return reps, err
}

// RetrieveAll assembles a batch of published VMIs concurrently under the
// same single Parallelism bound as PublishAll. Images and reports are
// returned in input order; on error the slices carry the successful
// entries (nil where a retrieval failed or never started). Retrieval has
// no repository side effects, so a failed batch can simply be retried.
func (s *System) RetrieveAll(names []string) ([]*vmi.Image, []*RetrieveReport, error) {
	imgs := make([]*vmi.Image, len(names))
	reps := make([]*RetrieveReport, len(names))
	err := pool.Map(s.parallelism(), len(names), func(i int) error {
		img, rep, err := s.retrieve(names[i], 1)
		if err != nil {
			return fmt.Errorf("core: retrieve all [%d] %s: %w", i, names[i], err)
		}
		imgs[i], reps[i] = img, rep
		return nil
	})
	return imgs, reps, err
}

// Snapshot serialises the repository for durable storage. It waits out any
// in-flight metadata commit (and, through the repository, any in-flight
// store operation), so the captured image is transactionally consistent:
// every VMI recorded in it is fully retrievable after Load, even when the
// snapshot is taken while concurrent traffic is running. A blob the
// backend can no longer read faithfully surfaces as an error rather than
// a corrupt snapshot.
func (s *System) Snapshot() ([]byte, error) {
	defer s.lockAllCommits()()
	return s.repo.Snapshot()
}

// Sync makes a disk-backed repository durable. Like Snapshot it waits out
// any in-flight metadata commit, so the committed state is
// transactionally consistent; unlike Snapshot it is incremental — only
// blob segments appended since the previous sync are written.
func (s *System) Sync() (vmirepo.SyncStats, error) {
	defer s.lockAllCommits()()
	return s.repo.Sync()
}

// Compact is Sync with a forced metadata-WAL compaction: the metadata
// state is rewritten as a fresh full snapshot and the log starts empty,
// bounding reopen cost. Like Sync it waits out any in-flight metadata
// commit, so the snapshot it writes is transactionally consistent even
// under concurrent traffic.
func (s *System) Compact() (vmirepo.SyncStats, error) {
	defer s.lockAllCommits()()
	return s.repo.Compact()
}

// Close syncs (when disk-backed) and releases repository resources.
func (s *System) Close() error {
	defer s.lockAllCommits()()
	return s.repo.Close()
}
