package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// TestExpiryUnderTraffic runs the TTL sweeper concurrently with
// publishers and retrievers (the CI -race leg). Expiry rides the
// ordinary striped Remove path, so the only acceptable reader-visible
// effect is ErrNotFound on an image whose time came; afterwards tenant
// accounting must reconcile exactly (a Vacuum's from-scratch survey
// changes nothing) and every survivor must still retrieve.
func TestExpiryUnderTraffic(t *testing.T) {
	s, b := newSystem(t, Options{})
	names := []string{"Mini", "Redis", "PostgreSql", "Django", "Tomcat", "MongoDb"}
	images := map[string]*vmi.Image{}
	for _, n := range names {
		images[n] = buildImage(t, b, n)
	}

	var clock atomic.Int64
	clock.Store(1000)
	stop := make(chan struct{})
	var pubs, aux sync.WaitGroup

	// Publishers: one per template, republishing with short TTLs charged
	// to alternating tenants while the sweeper runs underneath them.
	for i, name := range names {
		pubs.Add(1)
		go func(i int, name string) {
			defer pubs.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			tenant := []string{"alice", "bob"}[i%2]
			for round := 0; round < 10; round++ {
				opts := PublishOpts{Tenant: tenant}
				if rng.Intn(2) == 0 {
					opts.ExpiresAt = clock.Load() + int64(rng.Intn(3)+1)
				}
				if _, err := s.PublishWith(images[name].Clone(), opts); err != nil {
					t.Errorf("publish %s: %v", name, err)
					return
				}
			}
		}(i, name)
	}

	// Retrievers: an image vanishing mid-loop is the expected
	// ErrNotFound; anything else — a torn read, a dangling package — is
	// the bug this test exists to catch.
	for i := 0; i < 3; i++ {
		aux.Add(1)
		go func(i int) {
			defer aux.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := names[rng.Intn(len(names))]
				if _, _, err := s.Retrieve(name); err != nil && !errors.Is(err, vmirepo.ErrNotFound) {
					t.Errorf("retrieve %s: %v", name, err)
					return
				}
			}
		}(i)
	}

	// The sweeper: advance the logical clock and expire continuously.
	aux.Add(1)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.ExpireAt(clock.Add(1)); err != nil {
				t.Errorf("expiry sweep: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	pubs.Wait()
	close(stop)
	aux.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain every outstanding TTL, then reconcile: the incremental
	// charge/credit bookkeeping maintained under concurrency must equal
	// the from-scratch survey Vacuum rewrites it with.
	if _, err := s.ExpireAt(clock.Load() + 100); err != nil {
		t.Fatalf("final sweep: %v", err)
	}
	before := fmt.Sprint(s.TenantStats())
	if _, err := s.Vacuum(); err != nil {
		t.Fatalf("vacuum: %v", err)
	}
	if after := fmt.Sprint(s.TenantStats()); after != before {
		t.Fatalf("tenant accounting drifted under concurrent expiry: %s -> %s", before, after)
	}
	for _, name := range s.Repo().VMIs() {
		if _, _, err := s.Retrieve(name); err != nil {
			t.Fatalf("survivor %s not retrievable: %v", name, err)
		}
	}
}
