package core

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"expelliarmus/internal/retrievecache"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// newCache builds the retrieval cache selected by the options (nil when
// disabled).
func newCache(opts Options) *retrievecache.Cache {
	if opts.CacheBytes <= 0 {
		return nil
	}
	return retrievecache.New(opts.CacheBytes)
}

// cacheCounters are the core-level counters layered on top of the
// cache's own: singleflight coalescing and the per-stripe breakdown of
// hits and stood-down inserts, indexed by the generation stripe of the
// retrieval's base image (vmirepo.StripeFor).
type cacheCounters struct {
	coalesced     atomic.Int64
	hits          [vmirepo.GenStripes]atomic.Int64
	invalidations [vmirepo.GenStripes]atomic.Int64
}

// CacheStats bundles the retrieval cache's own counters with the
// core-level singleflight and generation-striping counters.
type CacheStats struct {
	retrievecache.Stats
	// Coalesced counts misses served by waiting on a concurrent assembly
	// of the same key (the miss singleflight) instead of assembling the
	// image again themselves.
	Coalesced int64
	// StripeHits and StripeInvalidations break cache hits and stood-down
	// inserts (the generation moved while the assembly ran, so the result
	// was not cached) down by the generation stripe of the retrieval's
	// base image. Under per-base striping, steady publish traffic on
	// unrelated bases shows up as invalidations on its own stripes while
	// the hot image's stripe keeps accumulating hits.
	StripeHits          []int64
	StripeInvalidations []int64
	// Flights is the queue-depth meter of the miss singleflight: how many
	// assemblies are in the air right now, how many retrievals are queued
	// behind them, and the deepest queue any single flight has built up.
	Flights FlightStats
}

// CacheStats returns the retrieval cache's counters; ok is false when the
// system runs without a cache.
func (s *System) CacheStats() (st CacheStats, ok bool) {
	if s.cache == nil {
		return CacheStats{}, false
	}
	st.Stats = s.cache.Stats()
	st.Coalesced = s.cctr.coalesced.Load()
	st.StripeHits = make([]int64, vmirepo.GenStripes)
	st.StripeInvalidations = make([]int64, vmirepo.GenStripes)
	for i := 0; i < vmirepo.GenStripes; i++ {
		st.StripeHits[i] = s.cctr.hits[i].Load()
		st.StripeInvalidations[i] = s.cctr.invalidations[i].Load()
	}
	st.Flights = s.flights.stats()
	return st, true
}

// materializeCached turns a verified cache entry into a fresh image and
// report. The image is deserialized lazily over the cached bytes: the
// disk's copy-on-write layer means callers may still mutate the result
// without touching the cache, but a hit no longer duplicates the whole
// image up front — clusters are read from the (immutable) cached entry on
// demand, which is what keeps hit-path memory flat under the streaming
// retrieval. The report replays the cold retrieval's per-phase charges
// into a fresh meter, so a hit's report is byte-identical to the miss
// that seeded it. Singleflight followers go through the same path, so a
// coalesced miss is indistinguishable from a hit to the caller.
func (s *System) materializeCached(name string, rec vmirepo.VMIRecord, ent *retrievecache.Entry) (*vmi.Image, *RetrieveReport, error) {
	disk, err := vdisk.DeserializeLazy(name, bytes.NewReader(ent.Image), int64(len(ent.Image)))
	if err != nil {
		// The bytes hashed correctly, so this is an insertion-side bug,
		// not bit rot — surface it rather than fall back silently.
		return nil, nil, fmt.Errorf("core: retrieve %s: decode cached image: %w", name, err)
	}
	rep := &RetrieveReport{
		Image:         name,
		Imported:      append([]string(nil), ent.Imported...),
		ImportedBytes: ent.ImportedBytes,
		Meter:         &simio.Meter{},
	}
	for ph, d := range ent.Phases {
		rep.Meter.Charge(ph, d)
	}
	return &vmi.Image{
		Name:      name,
		Base:      ent.Base,
		Primaries: append([]string(nil), rec.Primaries...),
		Disk:      disk,
	}, rep, nil
}

// cacheAssembled turns a completed assembly into a cache insert and — for
// a singleflight leader — a shareable entry for its followers, but only
// when the striped generation is still the one captured before the
// retrieval's first read. An unchanged generation proves no mutation
// relevant to this base or VMI committed anywhere inside the assembly
// window (the repository bumps the stripes both before and after every
// mutation), so the serialized bytes are a faithful image of the key's
// generation and safe to serve to any later lookup under it. If the check
// fails the assembly is simply not cached (and the stand-down is counted
// against the base's stripe) — correctness never depends on an insert
// happening.
//
// The second return is a deferred entry builder for an image too large
// for the cache: the skipped insert is counted as Rejected (so the stats
// see uncacheable images), but serializing it is still worth doing for
// singleflight followers, who each skip a full assembly — the leader
// hands the builder to flightGroup.finish, which invokes it only once
// the flight is sealed and the follower count is final. A solo caller
// ignores it, paying nothing.
func (s *System) cacheAssembled(key retrievecache.Key, gen uint64, img *vmi.Image, rep *RetrieveReport) (ent *retrievecache.Entry, build func() *retrievecache.Entry) {
	if s.repo.GenerationFor(key.BaseID, key.UserData) != gen {
		s.cctr.invalidations[vmirepo.StripeFor(key.BaseID)].Add(1)
		return nil, nil
	}
	newEntry := func() *retrievecache.Entry {
		// The assembled disk may be lazily backed by the blob store, so
		// serialization can fail (a store torn down mid-flight). A failed
		// build simply isn't cached — nil sends followers back to retry,
		// and correctness never depends on an insert happening.
		var buf bytes.Buffer
		buf.Grow(int(img.Disk.SerializedBytes()))
		if _, err := img.Disk.WriteTo(&buf); err != nil {
			return nil
		}
		return retrievecache.NewEntry(
			buf.Bytes(), img.Base, rep.Imported, rep.ImportedBytes, rep.Meter.Snapshot())
	}
	// AllocatedBytes is a lower bound on the serialized size (data
	// clusters without tables); when it alone exceeds the whole budget the
	// cache would reject the entry anyway, so defer the serialize + hash
	// to whoever actually has followers waiting for the bytes.
	if img.Disk.AllocatedBytes() > s.cache.MaxBytes() {
		s.cache.NoteRejected()
		return nil, newEntry
	}
	if ent = newEntry(); ent == nil {
		return nil, nil
	}
	s.cache.Put(key, ent)
	return ent, nil
}
