package core

import (
	"fmt"

	"expelliarmus/internal/retrievecache"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// newCache builds the retrieval cache selected by the options (nil when
// disabled).
func newCache(opts Options) *retrievecache.Cache {
	if opts.CacheBytes <= 0 {
		return nil
	}
	return retrievecache.New(opts.CacheBytes)
}

// CacheStats returns the retrieval cache's counters; ok is false when the
// system runs without a cache.
func (s *System) CacheStats() (st retrievecache.Stats, ok bool) {
	if s.cache == nil {
		return retrievecache.Stats{}, false
	}
	return s.cache.Stats(), true
}

// materializeCached turns a verified cache entry into a fresh image and
// report. The image is deserialized from the cached bytes (a full copy —
// callers may mutate the result without touching the cache), and the
// report replays the cold retrieval's per-phase charges into a fresh
// meter, so a hit's report is byte-identical to the miss that seeded it.
func (s *System) materializeCached(name string, rec vmirepo.VMIRecord, ent *retrievecache.Entry) (*vmi.Image, *RetrieveReport, error) {
	disk, err := vdisk.Deserialize(name, ent.Image)
	if err != nil {
		// The bytes hashed correctly, so this is an insertion-side bug,
		// not bit rot — surface it rather than fall back silently.
		return nil, nil, fmt.Errorf("core: retrieve %s: decode cached image: %w", name, err)
	}
	rep := &RetrieveReport{
		Image:         name,
		Imported:      append([]string(nil), ent.Imported...),
		ImportedBytes: ent.ImportedBytes,
		Meter:         &simio.Meter{},
	}
	for ph, d := range ent.Phases {
		rep.Meter.Charge(ph, d)
	}
	return &vmi.Image{
		Name:      name,
		Base:      ent.Base,
		Primaries: append([]string(nil), rec.Primaries...),
		Disk:      disk,
	}, rep, nil
}

// cacheAssembled inserts a completed assembly, but only when the
// repository generation is still the one captured before the retrieval's
// first read. An unchanged generation proves no mutation committed
// anywhere inside the assembly window (the repository bumps it both
// before and after every mutation), so the serialized bytes are a
// faithful image of generation `gen` and safe to serve to any later
// lookup under the same generation. If the check fails the assembly is
// simply not cached — correctness never depends on an insert happening.
func (s *System) cacheAssembled(key retrievecache.Key, gen uint64, img *vmi.Image, rep *RetrieveReport) {
	if s.repo.Generation() != gen {
		return
	}
	// AllocatedBytes is a lower bound on the serialized size (data
	// clusters without tables); when it alone exceeds the whole budget,
	// skip the Serialize + hash the cache would reject anyway, so an
	// uncacheably large image costs its misses nothing.
	if img.Disk.AllocatedBytes() > s.cache.MaxBytes() {
		return
	}
	s.cache.Put(key, retrievecache.NewEntry(
		img.Disk.Serialize(), img.Base, rep.Imported, rep.ImportedBytes, rep.Meter.Snapshot()))
}
