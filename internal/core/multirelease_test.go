package core

import (
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/pkgmgr"
)

// TestMultiReleaseSeparateMasters publishes images from two releases of
// the same distribution: simBI = 0.5 between their bases, so Algorithm 2
// must keep both base images and cluster each VMI on its own master graph.
func TestMultiReleaseSeparateMasters(t *testing.T) {
	s := NewSystem(testDev, Options{})
	xenial := builder.New(catalog.NewUniverseFor(catalog.ReleaseXenial))
	bionic := builder.New(catalog.NewUniverseFor(catalog.ReleaseBionic))

	tpl, _ := catalog.Find("Redis")
	imgX, err := xenial.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	// The newer release needs a distinct VMI name in the repository.
	tplB := tpl
	tplB.Name = "Redis-bionic"
	imgB, err := bionic.Build(tplB)
	if err != nil {
		t.Fatal(err)
	}
	if imgX.Base == imgB.Base {
		t.Fatal("releases share base attrs")
	}

	repX, err := s.Publish(imgX)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := s.Publish(imgB)
	if err != nil {
		t.Fatal(err)
	}
	if !repX.BaseStored || !repB.BaseStored {
		t.Fatal("each release must store its own base image")
	}
	if repB.Similarity != 0 {
		t.Fatalf("cross-release similarity = %v, want 0 (no master with matching attrs)", repB.Similarity)
	}
	if len(repB.ReplacedBases) != 0 {
		t.Fatalf("cross-release base replacement: %v", repB.ReplacedBases)
	}
	if st := s.Repo().Stats(); st.Bases != 2 {
		t.Fatalf("bases = %d, want 2 (one per release)", st.Bases)
	}
	// Both packages are stored: same name, different versions.
	masters, err := s.Repo().Masters()
	if err != nil || len(masters) != 2 {
		t.Fatalf("masters = %d, %v", len(masters), err)
	}

	// Both VMIs retrieve correctly with their own release's packages.
	for _, name := range []string{"Redis", "Redis-bionic"} {
		img, _, err := s.Retrieve(name)
		if err != nil {
			t.Fatalf("retrieve %s: %v", name, err)
		}
		fs, _ := img.Mount()
		mgr, _ := pkgmgr.New(fs)
		p, ok, err := mgr.Get("redis-server")
		if err != nil || !ok {
			t.Fatalf("%s: redis-server missing", name)
		}
		wantVer := catalog.ReleaseXenial.PkgVersion
		if name == "Redis-bionic" {
			wantVer = catalog.ReleaseBionic.PkgVersion
		}
		if p.Version != wantVer {
			t.Fatalf("%s: redis version %s, want %s", name, p.Version, wantVer)
		}
	}
}

// TestCrossDistroIsolation checks the SimBI = 0 path: a different
// distribution never interacts with existing masters at all.
func TestCrossDistroIsolation(t *testing.T) {
	s := NewSystem(testDev, Options{})
	ubuntu := builder.New(catalog.NewUniverse())
	debian := builder.New(catalog.NewUniverseFor(catalog.ReleaseStretch))

	tpl, _ := catalog.Find("Mini")
	imgU, err := ubuntu.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	tplD := tpl
	tplD.Name = "Mini-debian"
	imgD, err := debian.Build(tplD)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(imgU); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Publish(imgD)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BaseStored || rep.Similarity != 0 {
		t.Fatalf("debian publish: stored=%v sim=%v", rep.BaseStored, rep.Similarity)
	}
	if st := s.Repo().Stats(); st.Bases != 2 {
		t.Fatalf("bases = %d", st.Bases)
	}
	// Assembly never mixes releases: requesting a debian-only package
	// combination from the ubuntu master fails cleanly... both bases offer
	// no primaries here, so any assembly fails.
	if _, _, err := s.Assemble("x", []string{"redis-server"}, ""); err == nil {
		t.Fatal("assembled package absent from every master")
	}
}
