package core

import (
	"fmt"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/vmirepo"
)

// TestCrashAfterRemoveKeepsLastSyncState pins the repository-wide crash
// invariant: operations after the last Sync that release blobs (Remove)
// must not leave the durable metadata pointing at missing blobs. A crash
// rolls the repository back to exactly the last Sync — the removed VMI is
// still there and still retrievable, because blob releases become durable
// only together with the metadata that stopped referencing them.
func TestCrashAfterRemoveKeepsLastSyncState(t *testing.T) {
	dir := t.TempDir()
	repo, err := vmirepo.OpenAt(dir, testDev)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	sys := NewSystemWithRepo(repo, testDev, Options{})
	b := builder.New(catalog.NewUniverse())
	for _, name := range []string{"Mini", "Redis"} {
		if _, err := sys.Publish(buildImage(t, b, name)); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
	}
	if _, err := sys.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := sys.Remove("Mini"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, _, err := sys.Retrieve("Mini"); err == nil {
		t.Fatalf("Mini retrievable after Remove")
	}
	// Crash: the Remove's metadata change and blob releases were never
	// committed.
	if err := repo.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	repo2, err := vmirepo.OpenAt(dir, testDev)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	sys2 := NewSystemWithRepo(repo2, testDev, Options{})
	defer sys2.Close()
	for _, name := range []string{"Mini", "Redis"} {
		if _, _, err := sys2.Retrieve(name); err != nil {
			t.Fatalf("retrieve %s after crash-reopen: %v (metadata referencing missing blobs?)", name, err)
		}
	}
}

// checkNoDanglingMetadata asserts the repository-wide crash invariant on
// a reopened repository: every committed metadata record resolves — all
// VMIs retrieve end to end, every package and base record's blob reads
// back, and user data (when recorded) is fetchable. Drift in the other
// direction (orphan blobs no record references) is allowed; dangling
// metadata never is.
func checkNoDanglingMetadata(t *testing.T, sys *System) {
	t.Helper()
	repo := sys.Repo()
	for _, name := range repo.VMIs() {
		if _, _, err := sys.Retrieve(name); err != nil {
			t.Fatalf("recovered VMI %s not retrievable: %v", name, err)
		}
		if _, err := repo.GetUserData(name, "store", nil); err != nil {
			t.Fatalf("recovered user data for %s unreadable: %v", name, err)
		}
	}
	pkgs, err := repo.Packages()
	if err != nil {
		t.Fatalf("recovered package records unreadable: %v", err)
	}
	for _, p := range pkgs {
		if _, _, err := repo.GetPackage(p.Pkg.Ref(), "store", nil); err != nil {
			t.Fatalf("recovered package %s dangling: %v", p.Pkg.Ref(), err)
		}
	}
	bases, err := repo.Bases()
	if err != nil {
		t.Fatalf("recovered base records unreadable: %v", err)
	}
	for _, b := range bases {
		if _, err := repo.GetBase(b.ID, "store", nil); err != nil {
			t.Fatalf("recovered base %s dangling: %v", b.ID, err)
		}
	}
}

// TestWALCrashMatrix is the kill-point crash matrix for the metadata
// WAL: a repository is synced at a known state, mutated (a Remove that
// queues blob releases plus a publish that adds blobs), and then killed
// at every injection point of the commit protocol — after blob SyncData
// (= WAL entry), after the WAL batch append+fsync, after the watermark
// commit, and at each window of a forced compaction. Recovery must land
// on exactly one of the two transactionally consistent states (the last
// synced state when the kill preceded the effective commit, the new
// state when it followed), with orphan blobs as the only permitted
// drift.
func TestWALCrashMatrix(t *testing.T) {
	cases := []struct {
		name    string
		point   metawal.KillPoint
		compact bool
		// newState: the reopened repository reflects the mutations (Mini
		// removed, Base published); otherwise the last synced state (Mini
		// and Redis present, Base absent).
		newState bool
	}{
		{"after-blob-syncdata", metawal.KillBeforeAppend, false, false},
		{"after-wal-append", metawal.KillAfterAppend, false, true},
		{"after-watermark", metawal.KillAfterCommit, false, true},
		{"mid-compaction-after-snapshot", metawal.KillAfterSnapshot, true, false},
		{"mid-compaction-after-wal-reset", metawal.KillAfterWALReset, true, false},
		{"after-compaction-commit", metawal.KillAfterCompactCommit, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			repo, err := vmirepo.OpenAt(dir, testDev)
			if err != nil {
				t.Fatalf("OpenAt: %v", err)
			}
			sys := NewSystemWithRepo(repo, testDev, Options{})
			b := builder.New(catalog.NewUniverse())
			for _, name := range []string{"Mini", "Redis"} {
				if _, err := sys.Publish(buildImage(t, b, name)); err != nil {
					t.Fatalf("publish %s: %v", name, err)
				}
			}
			if _, err := sys.Sync(); err != nil {
				t.Fatalf("baseline Sync: %v", err)
			}
			// The mutation under test: a removal (metadata deletes + queued
			// blob releases) and a publish (metadata adds + new blobs).
			if err := sys.Remove("Mini"); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := sys.Publish(buildImage(t, b, "Base")); err != nil {
				t.Fatalf("publish Base: %v", err)
			}

			repo.WAL().Kill = func(p metawal.KillPoint) error {
				if p == tc.point {
					return fmt.Errorf("injected crash at %s", tc.name)
				}
				return nil
			}
			if tc.compact {
				_, err = sys.Compact()
			} else {
				_, err = sys.Sync()
			}
			if err == nil {
				t.Fatalf("killed commit reported success")
			}
			if err := repo.Abandon(); err != nil {
				t.Fatalf("Abandon: %v", err)
			}

			repo2, err := vmirepo.OpenAt(dir, testDev)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", tc.name, err)
			}
			sys2 := NewSystemWithRepo(repo2, testDev, Options{})
			defer sys2.Close()
			checkNoDanglingMetadata(t, sys2)

			wantPresent := map[string]bool{"Redis": true, "Mini": !tc.newState, "Base": tc.newState}
			for name, want := range wantPresent {
				_, _, err := sys2.Retrieve(name)
				if want && err != nil {
					t.Fatalf("%s should be retrievable after crash at %s: %v", name, tc.name, err)
				}
				if !want && err == nil {
					t.Fatalf("%s should be absent after crash at %s", name, tc.name)
				}
			}
			if tc.newState {
				// The removal became durable; its queued blob releases must
				// NOT have (they are logged only by the final blob sync,
				// which the kill preceded) — drift is orphans only, never a
				// record pointing at a reclaimed blob.
				if rec, ok := repo2.BlobRecovery(); !ok || rec.Torn() {
					t.Fatalf("blob store recovery unexpected: %+v (present %v)", rec, ok)
				}
			}
		})
	}
}
