package core

import (
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/vmirepo"
)

// TestCrashAfterRemoveKeepsLastSyncState pins the repository-wide crash
// invariant: operations after the last Sync that release blobs (Remove)
// must not leave the durable metadata pointing at missing blobs. A crash
// rolls the repository back to exactly the last Sync — the removed VMI is
// still there and still retrievable, because blob releases become durable
// only together with the metadata that stopped referencing them.
func TestCrashAfterRemoveKeepsLastSyncState(t *testing.T) {
	dir := t.TempDir()
	repo, err := vmirepo.OpenAt(dir, testDev)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	sys := NewSystemWithRepo(repo, testDev, Options{})
	b := builder.New(catalog.NewUniverse())
	for _, name := range []string{"Mini", "Redis"} {
		if _, err := sys.Publish(buildImage(t, b, name)); err != nil {
			t.Fatalf("publish %s: %v", name, err)
		}
	}
	if _, err := sys.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := sys.Remove("Mini"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, _, err := sys.Retrieve("Mini"); err == nil {
		t.Fatalf("Mini retrievable after Remove")
	}
	// Crash: the Remove's metadata change and blob releases were never
	// committed.
	if err := repo.Abandon(); err != nil {
		t.Fatalf("Abandon: %v", err)
	}

	repo2, err := vmirepo.OpenAt(dir, testDev)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	sys2 := NewSystemWithRepo(repo2, testDev, Options{})
	defer sys2.Close()
	for _, name := range []string{"Mini", "Redis"} {
		if _, _, err := sys2.Retrieve(name); err != nil {
			t.Fatalf("retrieve %s after crash-reopen: %v (metadata referencing missing blobs?)", name, err)
		}
	}
}
