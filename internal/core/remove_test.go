package core

import (
	"testing"

	"expelliarmus/internal/vmirepo"
)

func TestRemoveGarbageCollectsUniquePackages(t *testing.T) {
	s, b := newSystem(t, Options{})
	for _, n := range []string{"Mini", "Redis", "Base"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := s.Repo().SizeBytes()
	if !s.Repo().HasPackage("redis-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("setup: redis package missing")
	}

	if err := s.Remove("Redis"); err != nil {
		t.Fatal(err)
	}
	// Redis's unique package is gone; Base's packages survive.
	if s.Repo().HasPackage("redis-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("redis package survived removal")
	}
	if !s.Repo().HasPackage("mysql-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("unrelated package removed")
	}
	if s.Repo().SizeBytes() >= sizeBefore {
		t.Fatal("removal did not reclaim space")
	}
	// The VMI is gone; the others still retrieve.
	if _, _, err := s.Retrieve("Redis"); err == nil {
		t.Fatal("removed VMI still retrievable")
	}
	for _, n := range []string{"Mini", "Base"} {
		if _, _, err := s.Retrieve(n); err != nil {
			t.Fatalf("retrieve %s after removal: %v", n, err)
		}
	}
	// Assembly can no longer offer redis-server.
	if _, _, err := s.Assemble("x", []string{"redis-server"}, ""); err == nil {
		t.Fatal("assembled garbage-collected package")
	}
	// But still offers Base's packages.
	if _, _, err := s.Assemble("y", []string{"apache2"}, ""); err != nil {
		t.Fatalf("assembly of surviving package failed: %v", err)
	}
}

func TestRemoveKeepsSharedPackages(t *testing.T) {
	s, b := newSystem(t, Options{})
	for _, n := range []string{"Base", "Lemp"} { // share mysql-server
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove("Base"); err != nil {
		t.Fatal(err)
	}
	// mysql-server is still needed by Lemp.
	if !s.Repo().HasPackage("mysql-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("shared package garbage-collected")
	}
	// apache2 was only Base's.
	if s.Repo().HasPackage("apache2=1.0-ubuntu1/amd64", nil) {
		t.Fatal("apache2 survived though only Base used it")
	}
	if _, _, err := s.Retrieve("Lemp"); err != nil {
		t.Fatalf("Lemp broken after Base removal: %v", err)
	}
}

func TestRemoveLastVMIDropsBase(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("Redis"); err != nil {
		t.Fatal(err)
	}
	st := s.Repo().Stats()
	if st.VMIs != 0 || st.Bases != 0 || st.Packages != 0 {
		t.Fatalf("repo not empty after last removal: %+v", st)
	}
	// Blob bytes fully reclaimed.
	if st.BlobBytes != 0 {
		t.Fatalf("blob bytes remain: %d", st.BlobBytes)
	}
	// Republish works after total removal.
	if _, err := s.Publish(buildImage(t, b, "Redis")); err != nil {
		t.Fatalf("republish after removal: %v", err)
	}
}

func TestRemoveUnknownVMI(t *testing.T) {
	s, _ := newSystem(t, Options{})
	if err := s.Remove("ghost"); err == nil {
		t.Fatal("removed unknown VMI")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, b := newSystem(t, Options{})
	for _, n := range []string{"Mini", "Redis"} {
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	img, err := s.Repo().Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := vmirepo.Load(img, testDev)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSystemWithRepo(restored, testDev, Options{})
	if s2.Repo().SizeBytes() != s.Repo().SizeBytes() {
		t.Fatalf("sizes differ: %d vs %d", s2.Repo().SizeBytes(), s.Repo().SizeBytes())
	}
	got, _, err := s2.Retrieve("Redis")
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := got.Mount()
	if !fs.Exists("/usr/bin/redis-server") {
		t.Fatal("restored repository lost content")
	}
	// The restored repo keeps deduplicating new publishes.
	rep, err := s2.Publish(buildImage(t, b, "Lemp"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaseStored {
		t.Fatal("restored repo re-stored the base")
	}
	// Corrupt snapshots are rejected.
	if _, err := vmirepo.Load(img[:40], testDev); err == nil {
		t.Fatal("loaded truncated snapshot")
	}
	if _, err := vmirepo.Load([]byte("garbage"), testDev); err == nil {
		t.Fatal("loaded garbage")
	}
}
