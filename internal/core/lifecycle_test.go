package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/vmirepo"
)

// tenantCharge measures what publishing template costs a tenant on a
// fresh repository — the charge quota tests calibrate against.
func tenantCharge(t *testing.T, template string) int64 {
	t.Helper()
	s, b := newSystem(t, Options{})
	if _, err := s.PublishWith(buildImage(t, b, template), PublishOpts{Tenant: "probe"}); err != nil {
		t.Fatal(err)
	}
	charge := s.TenantStats()["probe"]
	if charge <= 0 {
		t.Fatalf("publish of %s charged %d bytes", template, charge)
	}
	return charge
}

func TestTenantQuotaEnforced(t *testing.T) {
	quota := tenantCharge(t, "Mini")
	s := NewSystem(testDev, Options{TenantQuotas: map[string]int64{"alice": quota}})
	b := builder.New(catalog.NewUniverse())

	// Exactly at quota: allowed.
	if _, err := s.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "alice"}); err != nil {
		t.Fatalf("publish at quota: %v", err)
	}
	if got := s.TenantStats()["alice"]; got != quota {
		t.Fatalf("alice usage = %d, want %d", got, quota)
	}

	// A second image needs new bytes and must be rejected — before any
	// graph mutation, so the repository still serves the first image.
	_, err := s.PublishWith(buildImage(t, b, "Redis"), PublishOpts{Tenant: "alice"})
	if !errors.Is(err, vmirepo.ErrQuotaExceeded) {
		t.Fatalf("over-quota publish = %v, want ErrQuotaExceeded", err)
	}
	if st := s.Repo().Stats(); st.VMIs != 1 {
		t.Fatalf("rejected publish left %d VMIs, want 1", st.VMIs)
	}
	if _, _, err := s.Retrieve("Mini"); err != nil {
		t.Fatalf("Mini broken after rejected publish: %v", err)
	}

	// Unquota'd tenants and the empty tenant are never capped.
	if _, err := s.PublishWith(buildImage(t, b, "Redis"), PublishOpts{Tenant: "bob"}); err != nil {
		t.Fatalf("uncapped tenant rejected: %v", err)
	}
	if _, err := s.Publish(buildImage(t, b, "Base")); err != nil {
		t.Fatalf("tenantless publish rejected: %v", err)
	}

	// Removal credits the tenant back in full, making room again.
	if err := s.Remove("Mini"); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.TenantStats()["alice"]; ok {
		t.Fatalf("alice still charged %d bytes after removal", got)
	}
	if _, err := s.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "alice"}); err != nil {
		t.Fatalf("publish after removal freed quota: %v", err)
	}
}

// TestRepublishRechargesTenant: republishing the same name must not
// double-charge — the old record's charge is credited as the new one is
// recorded, and the quota check discounts it up front.
func TestRepublishRechargesTenant(t *testing.T) {
	s, b := newSystem(t, Options{})
	if _, err := s.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	first := s.TenantStats()["alice"]
	if _, err := s.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	second := s.TenantStats()["alice"]
	// The republish stores less (base and packages dedup away), so the
	// recorded charge can only shrink; doubling would exceed first.
	if second > first {
		t.Fatalf("republish grew charge %d -> %d", first, second)
	}
	// Republishing under a different tenant moves the whole charge.
	if _, err := s.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "carol"}); err != nil {
		t.Fatal(err)
	}
	ts := s.TenantStats()
	if _, ok := ts["alice"]; ok {
		t.Fatalf("alice still charged after tenant handoff: %v", ts)
	}
	if ts["carol"] <= 0 {
		t.Fatalf("carol not charged after handoff: %v", ts)
	}
}

func TestExpireAtRemovesOnlyExpired(t *testing.T) {
	s, b := newSystem(t, Options{})
	pubs := []struct {
		name string
		exp  int64
	}{{"Mini", 100}, {"Redis", 200}, {"Base", 0}}
	for _, p := range pubs {
		if _, err := s.PublishWith(buildImage(t, b, p.name), PublishOpts{Tenant: "alice", ExpiresAt: p.exp}); err != nil {
			t.Fatal(err)
		}
	}

	// Before any deadline: nothing to do.
	removed, err := s.ExpireAt(99)
	if err != nil || len(removed) != 0 {
		t.Fatalf("ExpireAt(99) = %v, %v", removed, err)
	}

	removed, err = s.ExpireAt(150)
	if err != nil || len(removed) != 1 || removed[0] != "Mini" {
		t.Fatalf("ExpireAt(150) = %v, %v, want [Mini]", removed, err)
	}
	if _, _, err := s.Retrieve("Mini"); !errors.Is(err, vmirepo.ErrNotFound) {
		t.Fatalf("expired VMI retrieve = %v, want ErrNotFound", err)
	}
	for _, n := range []string{"Redis", "Base"} {
		if _, _, err := s.Retrieve(n); err != nil {
			t.Fatalf("unexpired %s broken: %v", n, err)
		}
	}

	// Expiry credits the tenant like any removal.
	afterFirst := s.TenantStats()["alice"]
	removed, err = s.ExpireAt(200) // boundary is inclusive
	if err != nil || len(removed) != 1 || removed[0] != "Redis" {
		t.Fatalf("ExpireAt(200) = %v, %v, want [Redis]", removed, err)
	}
	if got := s.TenantStats()["alice"]; got >= afterFirst {
		t.Fatalf("expiry did not credit tenant: %d -> %d", afterFirst, got)
	}
	// The never-expiring image survives arbitrarily far futures.
	if removed, err := s.ExpireAt(time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC).Unix()); err != nil || len(removed) != 0 {
		t.Fatalf("never-expiring image expired: %v, %v", removed, err)
	}
}

// TestVacuumReclaimsQuotaRejectedOrphans: a quota-rejected publish
// stores its package and user-data blobs before the commit-time check;
// Vacuum must reclaim them while leaving survivors byte-identical.
func TestVacuumReclaimsQuotaRejectedOrphans(t *testing.T) {
	quota := tenantCharge(t, "Mini")
	s := NewSystem(testDev, Options{TenantQuotas: map[string]int64{"alice": quota}})
	b := builder.New(catalog.NewUniverse())
	if _, err := s.PublishWith(buildImage(t, b, "Mini"), PublishOpts{Tenant: "alice"}); err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	if _, _, err := s.RetrieveTo(&before, "Mini"); err != nil {
		t.Fatal(err)
	}

	if _, err := s.PublishWith(buildImage(t, b, "Redis"), PublishOpts{Tenant: "alice"}); !errors.Is(err, vmirepo.ErrQuotaExceeded) {
		t.Fatalf("want quota rejection, got %v", err)
	}
	// The rejected publish left package orphans (e.g. redis-server).
	if !s.Repo().HasPackage("redis-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("setup: expected orphaned package from rejected publish")
	}
	sizeBefore := s.Repo().SizeBytes()

	st, err := s.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st.PackagesRemoved == 0 || st.BytesReclaimed <= 0 {
		t.Fatalf("vacuum reclaimed nothing: %+v", st)
	}
	if s.Repo().HasPackage("redis-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("orphaned package survived vacuum")
	}
	if s.Repo().SizeBytes() >= sizeBefore {
		t.Fatal("vacuum did not shrink the repository")
	}

	var after bytes.Buffer
	if _, _, err := s.RetrieveTo(&after, "Mini"); err != nil {
		t.Fatalf("survivor broken after vacuum: %v", err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("survivor bytes changed across vacuum")
	}
	// A second pass finds nothing: vacuum converges.
	st2, err := s.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if st2.PackagesRemoved != 0 || st2.BlobsReleased != 0 || st2.BytesReclaimed != 0 {
		t.Fatalf("second vacuum still reclaimed: %+v", st2)
	}
}

// vmiStripe resolves the commit stripe a published VMI's class hashes to.
func vmiStripe(t *testing.T, s *System, name string) int {
	t.Helper()
	rec, err := s.repo.GetVMI(name, nil)
	if err != nil {
		t.Fatal(err)
	}
	binfo, err := s.repo.BaseInfo(rec.BaseID)
	if err != nil {
		t.Fatal(err)
	}
	return commitStripe(binfo.Attrs)
}

// TestRemoveCommitsUnderSingleStripe pins the striped-removal contract:
// a single-class Remove must complete while every OTHER commit stripe is
// held, and publishes on unrelated classes must proceed while a Remove
// is blocked on its own class stripe.
func TestRemoveCommitsUnderSingleStripe(t *testing.T) {
	s := NewSystem(testDev, Options{})
	xenial := builder.New(catalog.NewUniverseFor(catalog.ReleaseXenial))
	bionic := builder.New(catalog.NewUniverseFor(catalog.ReleaseBionic))
	tpl, _ := catalog.Find("Redis")
	imgX, err := xenial.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(imgX); err != nil {
		t.Fatal(err)
	}
	sx := vmiStripe(t, s, "Redis")

	// Part 1: hold every stripe except the VMI's own; Remove must not
	// need any of them.
	for i := range s.commitMu {
		if i != sx {
			s.commitMu[i].Lock()
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.Remove("Redis") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("single-class Remove blocked on an unrelated stripe")
	}
	for i := range s.commitMu {
		if i != sx {
			s.commitMu[i].Unlock()
		}
	}

	// Part 2: republish, block the Remove on its own stripe, and show an
	// unrelated-class publish still lands while the Remove waits.
	imgX2, err := xenial.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(imgX2); err != nil {
		t.Fatal(err)
	}
	s.commitMu[sx].Lock()
	go func() { done <- s.Remove("Redis") }()

	tplB := tpl
	tplB.Name = "Redis-bionic"
	imgB, err := bionic.Build(tplB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Publish(imgB); err != nil {
		t.Fatalf("unrelated-class publish blocked behind a Remove: %v", err)
	}
	if sb := vmiStripe(t, s, "Redis-bionic"); sb == sx {
		t.Fatalf("fixture broken: both classes share stripe %d", sb)
	}
	select {
	case err := <-done:
		t.Fatalf("Remove completed without its class stripe: %v", err)
	default:
	}
	s.commitMu[sx].Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Retrieve("Redis-bionic"); err != nil {
		t.Fatalf("unrelated VMI broken after striped remove: %v", err)
	}
}

// TestVacuumPreservesRefcountedGC: after a vacuum rewrote the refcount
// bucket, removals must keep garbage-collecting exactly.
func TestVacuumPreservesRefcountedGC(t *testing.T) {
	s, b := newSystem(t, Options{})
	for _, n := range []string{"Base", "Lemp"} { // share mysql-server
		if _, err := s.Publish(buildImage(t, b, n)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Vacuum(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("Base"); err != nil {
		t.Fatal(err)
	}
	if !s.Repo().HasPackage("mysql-server=1.0-ubuntu1/amd64", nil) {
		t.Fatal("shared package collected after vacuum rebuild")
	}
	if s.Repo().HasPackage("apache2=1.0-ubuntu1/amd64", nil) {
		t.Fatal("unshared package survived after vacuum rebuild")
	}
	if _, _, err := s.RetrieveTo(io.Discard, "Lemp"); err != nil {
		t.Fatalf("survivor broken: %v", err)
	}
}
