package core

import (
	"fmt"
	"sort"

	"expelliarmus/internal/master"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmirepo"
)

// NewSystemWithRepo creates a system over an existing repository (e.g. one
// restored from a snapshot). Repositories created before per-class
// package refcounts existed get their counts rebuilt from a survey here.
func NewSystemWithRepo(repo *vmirepo.Repo, dev *simio.Device, opts Options) *System {
	s := &System{repo: repo, dev: dev, opts: opts, cache: newCache(opts), pinned: make(map[string]int), udPinned: make(map[string]int)}
	s.migratePackageRefs()
	return s
}

// migratePackageRefs rebuilds the per-class package refcounts for a
// repository that predates the refcount bucket (empty counts alongside
// live VMI records). The rebuild is journaled like any mutation, so a
// follower replaying this writer's WAL converges on the same counts.
// Best-effort: a survey failure leaves the bucket empty, which degrades
// removal GC to vacuum-only reclamation instead of failing open.
func (s *System) migratePackageRefs() {
	if s.repo.ReadOnly() || !s.repo.PackageRefsEmpty() || len(s.repo.VMIs()) == 0 {
		return
	}
	counts, err := s.surveyPackageRefs()
	if err != nil {
		return
	}
	s.repo.ReplacePackageRefs(counts, nil)
}

// surveyPackageRefs computes, from the committed VMI records, how many
// VMIs of each attribute class reference each package — the ground truth
// the refcount bucket caches. Callers hold whatever commit locks their
// consistency needs.
func (s *System) surveyPackageRefs() (map[string]map[string]int64, error) {
	counts := map[string]map[string]int64{}
	for _, name := range s.repo.VMIs() {
		rec, err := s.repo.GetVMI(name, nil)
		if err != nil {
			return nil, err
		}
		binfo, err := s.repo.BaseInfo(rec.BaseID)
		if err != nil {
			return nil, err
		}
		class := binfo.Attrs.String()
		refs, err := s.vmiPackageRefs(rec)
		if err != nil {
			return nil, err
		}
		for ref := range refs {
			if counts[ref] == nil {
				counts[ref] = map[string]int64{}
			}
			counts[ref][class]++
		}
	}
	return counts, nil
}

// vmiPackageRefs returns the non-base package refs a VMI's assembly pulls
// from the repository: the union of its primaries' subgraphs within its
// master graph, minus base-image packages.
func (s *System) vmiPackageRefs(rec vmirepo.VMIRecord) (map[string]bool, error) {
	mg, err := s.repo.GetMaster(rec.BaseID, nil)
	if err != nil {
		return nil, err
	}
	baseSub := mg.BaseSubgraph()
	refs := map[string]bool{}
	for _, p := range rec.Primaries {
		sub, err := mg.PrimarySubgraph(p)
		if err != nil {
			return nil, err
		}
		for _, v := range sub.Vertices() {
			if !baseSub.HasVertex(v.Pkg.Name) {
				refs[v.Pkg.Ref()] = true
			}
		}
	}
	return refs, nil
}

// Remove deletes a published VMI and garbage-collects everything no
// remaining VMI needs: packages referenced only by the removed image (per
// the per-class refcounts publishes maintain), its user data and
// lifecycle record, and — when it was the last VMI on its base — the base
// image and master graph. When the base survives, the master graph is
// rebuilt from the remaining VMIs so it no longer advertises unavailable
// packages.
//
// The paper treats the repository as append-only; removal closes the
// loop for long-lived deployments (images are versioned, cloned and
// eventually retired — the sprawl the paper opens with).
//
// Remove commits under the single commit-lock stripe of the VMI's
// attribute class, like publishes do: everything it reads and writes —
// the record, its master graph, the same-base survivor scan — stays
// within that class, and cross-class package sharing is settled by the
// refcounts (atomic in the repository), so publishes on unrelated classes
// are never blocked. The class is resolved optimistically and
// re-validated under the stripe; a record that moves mid-resolve retries,
// and an unresolvable class falls back to every stripe. Packages pinned
// by in-flight publishes are never collected.
func (s *System) Remove(name string) error {
	// Refuse up front on followers — a removal that failed midway through
	// its garbage collection would still have been read-only safe (every
	// mutator is gated), but the early error keeps the route cheap.
	if s.repo.ReadOnly() {
		return fmt.Errorf("core: remove %s: %w", name, vmirepo.ErrReadOnly)
	}
	const maxAttempts = 4
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rec, err := s.repo.GetVMI(name, nil)
		if err != nil {
			return err
		}
		binfo, err := s.repo.BaseInfo(rec.BaseID)
		if err != nil {
			// The base is mid-replacement by a same-class publish commit;
			// the next read sees the rewired record.
			continue
		}
		unlock := s.lockCommit(binfo.Attrs)
		rec2, err := s.repo.GetVMI(name, nil)
		if err != nil {
			unlock()
			return err
		}
		if rec2.BaseID != rec.BaseID {
			// Rewired or republished while resolving; its class stripe may
			// differ — re-resolve.
			unlock()
			continue
		}
		err = s.removeLocked(rec2, binfo.Attrs.String())
		unlock()
		return err
	}
	// The record would not hold still long enough to resolve its class;
	// the global transaction always works.
	defer s.lockAllCommits()()
	rec, err := s.repo.GetVMI(name, nil)
	if err != nil {
		return err
	}
	binfo, err := s.repo.BaseInfo(rec.BaseID)
	if err != nil {
		return fmt.Errorf("core: remove %s: %w", name, err)
	}
	return s.removeLocked(rec, binfo.Attrs.String())
}

// removeLocked is the removal transaction body; the caller holds (at
// least) the commit stripe of the record's attribute class.
func (s *System) removeLocked(rec vmirepo.VMIRecord, class string) error {
	name := rec.Name
	target, err := s.vmiPackageRefs(rec)
	if err != nil {
		return fmt.Errorf("core: remove %s: %w", name, err)
	}
	refs := make([]string, 0, len(target))
	for ref := range target {
		refs = append(refs, ref)
	}
	sort.Strings(refs)

	// Drop this record's refcounts; refs whose total across every class
	// hit zero are garbage (no survey of other classes' VMIs needed).
	dead, err := s.repo.DropPackageRefs(class, refs, nil)
	if err != nil {
		return err
	}
	for _, ref := range dead {
		if _, err := s.removePackageUnlessPinned(ref); err != nil {
			return err
		}
	}

	if err := s.repo.RemoveUserData(name, nil); err != nil {
		return err
	}
	if err := s.repo.RemoveVMI(name, nil); err != nil {
		return err
	}
	// Credit the tenant and drop the lifecycle record.
	meta, ok, err := s.repo.GetVMIMeta(name, nil)
	if err != nil {
		return err
	}
	if ok {
		if err := s.repo.ChargeTenant(meta.Tenant, -meta.ChargedBytes, nil); err != nil {
			return err
		}
		if err := s.repo.RemoveVMIMeta(name, nil); err != nil {
			return err
		}
	}

	// Scan for survivors on the same base. A VMI record's base determines
	// its class, so every record matching this BaseID commits under the
	// stripe we hold — the scan is stable even while unrelated classes
	// publish concurrently.
	var sameBase []vmirepo.VMIRecord
	for _, other := range s.repo.VMIs() {
		if other == name {
			continue
		}
		orec, err := s.repo.GetVMI(other, nil)
		if err != nil {
			return err
		}
		if orec.BaseID == rec.BaseID {
			sameBase = append(sameBase, orec)
		}
	}

	if len(sameBase) == 0 {
		if err := s.repo.RemoveBase(rec.BaseID, nil); err != nil {
			return err
		}
		return s.repo.RemoveMaster(rec.BaseID, nil)
	}

	// Rebuild the surviving master from the remaining VMIs' subgraphs so
	// Assemble cannot offer packages that were just garbage-collected.
	old, err := s.repo.GetMaster(rec.BaseID, nil)
	if err != nil {
		return err
	}
	rebuilt := master.New(rec.BaseID, old.BaseSubgraph())
	for _, sv := range sameBase {
		for _, p := range sv.Primaries {
			sub, err := old.PrimarySubgraph(p)
			if err != nil {
				return err
			}
			if err := rebuilt.AddPrimarySubgraph(sub); err != nil {
				return err
			}
		}
	}
	return s.repo.PutMaster(rebuilt, nil)
}
