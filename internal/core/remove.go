package core

import (
	"fmt"
	"sort"

	"expelliarmus/internal/master"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmirepo"
)

// NewSystemWithRepo creates a system over an existing repository (e.g. one
// restored from a snapshot).
func NewSystemWithRepo(repo *vmirepo.Repo, dev *simio.Device, opts Options) *System {
	return &System{repo: repo, dev: dev, opts: opts, cache: newCache(opts), pinned: make(map[string]int)}
}

// vmiPackageRefs returns the non-base package refs a VMI's assembly pulls
// from the repository: the union of its primaries' subgraphs within its
// master graph, minus base-image packages.
func (s *System) vmiPackageRefs(rec vmirepo.VMIRecord) (map[string]bool, error) {
	mg, err := s.repo.GetMaster(rec.BaseID, nil)
	if err != nil {
		return nil, err
	}
	baseSub := mg.BaseSubgraph()
	refs := map[string]bool{}
	for _, p := range rec.Primaries {
		sub, err := mg.PrimarySubgraph(p)
		if err != nil {
			return nil, err
		}
		for _, v := range sub.Vertices() {
			if !baseSub.HasVertex(v.Pkg.Name) {
				refs[v.Pkg.Ref()] = true
			}
		}
	}
	return refs, nil
}

// Remove deletes a published VMI and garbage-collects everything no
// remaining VMI needs: packages referenced only by the removed image, its
// user data, and — when it was the last VMI on its base — the base image
// and master graph. When the base survives, the master graph is rebuilt
// from the remaining VMIs so it no longer advertises unavailable packages.
//
// The paper treats the repository as append-only; removal closes the
// loop for long-lived deployments (images are versioned, cloned and
// eventually retired — the sprawl the paper opens with).
//
// Remove is one metadata transaction: its survey of live references
// spans every base-attribute class, so it takes all commit-lock stripes,
// staying consistent with every committed VMI. Packages pinned by
// in-flight publishes are never collected (see removePackageUnlessPinned).
func (s *System) Remove(name string) error {
	// Refuse up front on followers — a removal that failed midway through
	// its garbage-collection survey would still have been read-only safe
	// (every mutator is gated), but the early error keeps the route cheap.
	if s.repo.ReadOnly() {
		return fmt.Errorf("core: remove %s: %w", name, vmirepo.ErrReadOnly)
	}
	defer s.lockAllCommits()()
	rec, err := s.repo.GetVMI(name, nil)
	if err != nil {
		return err
	}
	target, err := s.vmiPackageRefs(rec)
	if err != nil {
		return fmt.Errorf("core: remove %s: %w", name, err)
	}

	// Survey the remaining VMIs: which packages and bases stay live.
	usedRefs := map[string]bool{}
	baseInUse := false
	type survivor struct {
		rec vmirepo.VMIRecord
	}
	var sameBase []survivor
	for _, other := range s.repo.VMIs() {
		if other == name {
			continue
		}
		orec, err := s.repo.GetVMI(other, nil)
		if err != nil {
			return err
		}
		refs, err := s.vmiPackageRefs(orec)
		if err != nil {
			return err
		}
		for ref := range refs {
			usedRefs[ref] = true
		}
		if orec.BaseID == rec.BaseID {
			baseInUse = true
			sameBase = append(sameBase, survivor{rec: orec})
		}
	}

	// Drop packages only the removed VMI needed.
	var obsolete []string
	for ref := range target {
		if !usedRefs[ref] {
			obsolete = append(obsolete, ref)
		}
	}
	sort.Strings(obsolete)
	for _, ref := range obsolete {
		if err := s.removePackageUnlessPinned(ref); err != nil {
			return err
		}
	}

	if err := s.repo.RemoveUserData(name, nil); err != nil {
		return err
	}
	if err := s.repo.RemoveVMI(name, nil); err != nil {
		return err
	}

	if !baseInUse {
		if err := s.repo.RemoveBase(rec.BaseID, nil); err != nil {
			return err
		}
		return s.repo.RemoveMaster(rec.BaseID, nil)
	}

	// Rebuild the surviving master from the remaining VMIs' subgraphs so
	// Assemble cannot offer packages that were just garbage-collected.
	old, err := s.repo.GetMaster(rec.BaseID, nil)
	if err != nil {
		return err
	}
	rebuilt := master.New(rec.BaseID, old.BaseSubgraph())
	for _, sv := range sameBase {
		for _, p := range sv.rec.Primaries {
			sub, err := old.PrimarySubgraph(p)
			if err != nil {
				return err
			}
			if err := rebuilt.AddPrimarySubgraph(sub); err != nil {
				return err
			}
		}
	}
	return s.repo.PutMaster(rebuilt, nil)
}
