package core

import (
	"strings"
	"sync"
	"testing"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// buildCatalog builds one image per template name, sequentially (the
// builder is cheap relative to publish, and tests share the resulting
// slice by cloning).
func buildCatalog(t *testing.T, names []string) []*vmi.Image {
	t.Helper()
	_, b := newSystem(t, Options{})
	out := make([]*vmi.Image, len(names))
	for i, n := range names {
		out[i] = buildImage(t, b, n)
	}
	return out
}

func templateNames(n int) []string {
	tpls := catalog.Paper19()
	if n > len(tpls) {
		n = len(tpls)
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = tpls[i].Name
	}
	return names
}

// TestPublishDeterministicAcrossParallelism publishes the same image into
// fresh repositories at different parallelism settings: the modeled
// seconds, phase decomposition and export report must be identical — the
// knob may change wall-clock time only.
func TestPublishDeterministicAcrossParallelism(t *testing.T) {
	names := []string{"Mini", "Redis", "Base"}
	imgs := buildCatalog(t, names)

	type result struct {
		seconds  float64
		exported string
		skipped  int
	}
	run := func(par int) []result {
		s := NewSystem(testDev, Options{Parallelism: par})
		var out []result
		for _, img := range imgs {
			rep, err := s.Publish(img.Clone())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, result{
				seconds:  rep.Seconds(),
				exported: strings.Join(rep.Exported, ","),
				skipped:  rep.Skipped,
			})
		}
		return out
	}

	seq := run(0)
	for _, par := range []int{2, 8} {
		got := run(par)
		for i := range seq {
			if got[i] != seq[i] {
				t.Errorf("parallelism=%d image %s: %+v != sequential %+v",
					par, names[i], got[i], seq[i])
			}
		}
	}
}

// TestRetrieveDeterministicAcrossParallelism does the same for retrieval.
func TestRetrieveDeterministicAcrossParallelism(t *testing.T) {
	names := []string{"Mini", "Redis", "Base"}
	imgs := buildCatalog(t, names)

	run := func(par int) []float64 {
		s := NewSystem(testDev, Options{Parallelism: par})
		for _, img := range imgs {
			if _, err := s.Publish(img.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		var out []float64
		for _, n := range names {
			_, rep, err := s.Retrieve(n)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rep.Seconds())
		}
		return out
	}

	seq := run(0)
	for _, par := range []int{2, 8} {
		got := run(par)
		for i := range seq {
			if got[i] != seq[i] {
				t.Errorf("parallelism=%d retrieve %s: %.6fs != sequential %.6fs",
					par, names[i], got[i], seq[i])
			}
		}
	}
}

// TestConcurrentPublishSharedRepo publishes the catalog from many
// goroutines into one System and checks the repository converges to a
// state equivalent to sequential upload: every VMI retrievable, every
// package stored exactly once.
func TestConcurrentPublishSharedRepo(t *testing.T) {
	names := templateNames(12)
	imgs := buildCatalog(t, names)
	s := NewSystem(testDev, Options{Parallelism: 4})

	reps, err := s.PublishAll(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(imgs) {
		t.Fatalf("got %d reports, want %d", len(reps), len(imgs))
	}
	for i, rep := range reps {
		if rep == nil || rep.Image != names[i] {
			t.Fatalf("report %d out of order: %+v", i, rep)
		}
	}

	// Cross-publish dedup must hold under concurrency: no package ref may
	// have been stored twice (EnsurePackage guarantees one winner).
	pkgs, err := s.Repo().Packages()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rec := range pkgs {
		if seen[rec.Pkg.Ref()] {
			t.Fatalf("package %s stored twice", rec.Pkg.Ref())
		}
		seen[rec.Pkg.Ref()] = true
	}

	// Every published VMI must assemble correctly afterwards.
	retrieved, rreps, err := s.RetrieveAll(names)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range retrieved {
		if img.Name != names[i] {
			t.Fatalf("retrieved[%d] = %s, want %s", i, img.Name, names[i])
		}
		if rreps[i].Seconds() <= 0 {
			t.Fatalf("retrieve %s: no modeled cost", names[i])
		}
	}
}

// TestConcurrentPublishRemoveRetrieve mixes publishes, retrievals and
// removals of disjoint image sets from 8+ goroutines over one System. The
// pin set must prevent the GC from collecting packages a concurrent
// publish is counting on.
func TestConcurrentPublishRemoveRetrieve(t *testing.T) {
	names := templateNames(16)
	imgs := buildCatalog(t, names)
	s := NewSystem(testDev, Options{Parallelism: 2})

	const workers = 8
	perWorker := len(names) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := imgs[w*perWorker : (w+1)*perWorker]
			for round := 0; round < 2; round++ {
				for _, img := range mine {
					if _, err := s.Publish(img.Clone()); err != nil {
						t.Errorf("worker %d publish %s: %v", w, img.Name, err)
						return
					}
				}
				for _, img := range mine {
					got, _, err := s.Retrieve(img.Name)
					if err != nil {
						t.Errorf("worker %d retrieve %s: %v", w, img.Name, err)
						return
					}
					if got.Name != img.Name {
						t.Errorf("worker %d retrieved %s, want %s", w, got.Name, img.Name)
						return
					}
				}
				// Remove the worker's first image, then republish it next
				// round (or leave it removed on the final round for half
				// the workers, exercising GC against live traffic).
				if round == 0 || w%2 == 0 {
					if err := s.Remove(mine[0].Name); err != nil {
						t.Errorf("worker %d remove %s: %v", w, mine[0].Name, err)
						return
					}
				}
				if round == 0 {
					if _, err := s.Publish(mine[0].Clone()); err != nil {
						t.Errorf("worker %d republish %s: %v", w, mine[0].Name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Surviving VMIs must all be retrievable, and their packages present.
	for _, name := range s.Repo().VMIs() {
		if _, _, err := s.Retrieve(name); err != nil {
			t.Errorf("post-stress retrieve %s: %v", name, err)
		}
	}
}

// TestSnapshotDuringTraffic takes System snapshots while publishes,
// retrievals and removals are in flight; every snapshot must restore to a
// repository whose recorded VMIs are all retrievable.
func TestSnapshotDuringTraffic(t *testing.T) {
	names := templateNames(8)
	imgs := buildCatalog(t, names)
	s := NewSystem(testDev, Options{Parallelism: 2})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := imgs[w*2 : w*2+2]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				img := mine[i%2]
				if _, err := s.Publish(img.Clone()); err != nil {
					t.Errorf("worker %d publish %s: %v", w, img.Name, err)
					return
				}
				if _, _, err := s.Retrieve(img.Name); err != nil {
					t.Errorf("worker %d retrieve %s: %v", w, img.Name, err)
					return
				}
				if i%3 == 2 {
					if err := s.Remove(img.Name); err != nil {
						t.Errorf("worker %d remove %s: %v", w, img.Name, err)
						return
					}
				}
			}
		}(w)
	}

	for i := 0; i < 5; i++ {
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		repo, err := vmirepo.Load(snap, testDev)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		restored := NewSystemWithRepo(repo, testDev, Options{})
		for _, name := range repo.VMIs() {
			if _, _, err := restored.Retrieve(name); err != nil {
				t.Fatalf("snapshot %d: restored VMI %s not retrievable: %v", i, name, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
