// Package pool provides the bounded worker pool behind the parallel
// publish/retrieve pipeline: the package export loop of Algorithm 1 and the
// package import loop of Algorithm 3 fan out over it, as do the facade's
// PublishAll/RetrieveAll batch operations.
//
// The pool is deliberately index-based rather than channel-of-work based:
// callers keep results in a pre-sized slice indexed by task number, which is
// what preserves deterministic report ordering no matter how the scheduler
// interleaves workers.
package pool

import (
	"sync"
	"sync/atomic"
)

// Map runs fn(0), fn(1), ..., fn(n-1) using at most `workers` concurrent
// goroutines and returns the error of the lowest-indexed failing call, or
// nil when every call succeeds.
//
// With workers <= 1 the calls run inline on the caller's goroutine, strictly
// in index order, stopping at the first error — byte-for-byte the behavior
// of the sequential loop it replaces. With workers > 1 tasks are claimed
// from an atomic counter; after a failure no new tasks are started, but
// already-running tasks complete.
func Map(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Clamp normalises a parallelism knob: values below 1 mean sequential.
func Clamp(parallelism int) int {
	if parallelism < 1 {
		return 1
	}
	return parallelism
}
