package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapRunsAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		results := make([]int, 100)
		err := Map(workers, len(results), func(i int) error {
			results[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, got := range results {
			if got != i*i {
				t.Fatalf("workers=%d: task %d not run (got %d)", workers, i, got)
			}
		}
	}
}

func TestMapSequentialOrderAndEarlyStop(t *testing.T) {
	var order []int
	boom := errors.New("boom")
	err := Map(1, 10, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	want := []int{0, 1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

func TestMapReturnsLowestIndexedError(t *testing.T) {
	err := Map(8, 50, func(i int) error {
		if i%7 == 6 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := err.Error(); got != "task 6 failed" {
		t.Fatalf("err = %q, want lowest-indexed failure", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	err := Map(workers, 64, func(i int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds workers %d", p, workers)
	}
}

func TestMapZeroTasks(t *testing.T) {
	if err := Map(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	for in, want := range map[int]int{-1: 1, 0: 1, 1: 1, 8: 8} {
		if got := Clamp(in); got != want {
			t.Fatalf("Clamp(%d) = %d, want %d", in, got, want)
		}
	}
}
