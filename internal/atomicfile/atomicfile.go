// Package atomicfile provides the one crash-safe file-replace idiom the
// persistence layer depends on, so every committed image (blob index,
// metadata database) goes through identical, jointly-tested machinery.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// Write atomically replaces path with data: the bytes are written to
// path+".tmp", fsynced, renamed over path, and the parent directory is
// fsynced so the rename itself is durable. A reader (or a post-crash
// reopen) sees either the previous content or the new content, never a
// mixture; a leftover .tmp file after a crash is inert.
func Write(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("atomicfile: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("atomicfile: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so entries created or renamed in it survive
// power loss. Errors are returned for the caller to judge: some
// filesystems refuse directory fsync, and callers that only need
// best-effort may ignore them.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}
