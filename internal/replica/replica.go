// Package replica implements the follower side of the replicated read
// path: a catch-up loop that tails a writer daemon's replication
// endpoints — commit watermark, snapshot, WAL tail — and applies them to
// a read-only follower repository, plus a read-through blob cache that
// pulls missing blobs from the writer on first retrieval.
//
// The protocol is pull-based and crash-tolerant by construction. The
// follower only ever asks for durable bytes (the writer's commit
// watermark bounds every WAL request), every shipped stream is verified
// against digest/length trailers, and the apply side
// (vmirepo.ApplyWAL → metawal.Follower) refuses torn or out-of-order
// chunks — so a writer crash, a connection cut, or a follower restart
// leaves the follower at some exact commit boundary the writer actually
// reached, never in between. When the writer's compaction retires the
// epoch being tailed, the WAL request comes back epoch-gone and the
// follower restarts from the current snapshot.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/client"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

// Options configure a Replica.
type Options struct {
	// Poll is the delay between commit polls once caught up (default
	// 500ms). Catch-up itself runs unthrottled.
	Poll time.Duration
	// Client configures the HTTP client used to tail the writer.
	Client client.Options
	// Logf, when set, receives progress lines (snapshot restarts, epoch
	// switches, apply errors).
	Logf func(format string, args ...any)
}

// Replica owns a follower repository and keeps it converging toward a
// writer daemon.
type Replica struct {
	repo      *vmirepo.Repo
	rt        *ReadThrough
	cl        *client.Client
	writerURL string
	opts      Options

	mu     sync.Mutex
	target wire.ReplCommit // writer position as of the last poll
}

// New builds a follower repository over local (the blob store misses are
// cached into) tailing the writer at writerURL, and returns the replica
// driving it. The repository starts empty; call CatchUp (or start Run)
// before serving.
func New(writerURL string, local blobstore.Backend, dev *simio.Device, opts Options) *Replica {
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	cl := client.New(writerURL, opts.Client)
	rt := NewReadThrough(local, cl)
	return &Replica{
		repo:      vmirepo.OpenFollower(dev, rt),
		rt:        rt,
		cl:        cl,
		writerURL: writerURL,
		opts:      opts,
	}
}

// Repo returns the follower repository — wire it into a core.System with
// NewSystemWithRepo to serve retrievals/assemblies from the replica.
func (r *Replica) Repo() *vmirepo.Repo { return r.repo }

// Client returns the client tailing the writer.
func (r *Replica) Client() *client.Client { return r.cl }

func (r *Replica) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// restart seeds the follower from the writer's current snapshot. The
// snapshot streams from the wire into the follower's load path — trailer
// verification happens as the bytes flow, and the only materialization
// is the one exact-sized buffer the metadata load itself needs, so a
// restart never holds the snapshot twice.
func (r *Replica) restart(ctx context.Context) error {
	epoch, rc, size, err := r.cl.ReplSnapshotReader(ctx)
	if err != nil {
		return fmt.Errorf("replica: fetch snapshot: %w", err)
	}
	defer rc.Close()
	if err := r.repo.ResetToSnapshotReader(epoch, rc, size); err != nil {
		return fmt.Errorf("replica: load snapshot epoch %d: %w", epoch, err)
	}
	r.logf("replica: restarted from snapshot epoch %d (%d bytes)", epoch, size)
	return nil
}

// CatchUp converges the follower to the writer's durable position as of
// one commit poll: snapshot-restart if the epoch moved (or the follower
// is fresh), then WAL tail application until applied == durable. It
// returns once caught up to that observed position; a writer that keeps
// committing needs the next CatchUp (Run loops it).
func (r *Replica) CatchUp(ctx context.Context) error {
	commit, err := r.cl.ReplCommit(ctx)
	if err != nil {
		return fmt.Errorf("replica: poll commit: %w", err)
	}
	r.mu.Lock()
	r.target = commit
	r.mu.Unlock()

	for {
		epoch, applied := r.repo.Follower().Position()
		if epoch != commit.Epoch {
			if err := r.restart(ctx); err != nil {
				return err
			}
			// The snapshot may already be a newer epoch than the commit we
			// polled; re-poll so the tail request matches what we loaded.
			if commit, err = r.cl.ReplCommit(ctx); err != nil {
				return fmt.Errorf("replica: poll commit: %w", err)
			}
			r.mu.Lock()
			r.target = commit
			r.mu.Unlock()
			continue
		}
		if applied >= commit.DurableBytes {
			return nil
		}
		chunk, err := r.cl.ReplWAL(ctx, epoch, applied)
		if err != nil {
			if errors.Is(err, metawal.ErrEpochGone) {
				// The writer compacted under us; restart from its new
				// snapshot on the next iteration.
				r.logf("replica: epoch %d retired by writer compaction", epoch)
				if commit, err = r.cl.ReplCommit(ctx); err != nil {
					return fmt.Errorf("replica: poll commit: %w", err)
				}
				r.mu.Lock()
				r.target = commit
				r.mu.Unlock()
				continue
			}
			return fmt.Errorf("replica: fetch WAL tail: %w", err)
		}
		st, err := r.repo.ApplyWAL(epoch, applied, chunk)
		if err != nil {
			return fmt.Errorf("replica: apply WAL [%d, %d) of epoch %d: %w", applied, applied+int64(len(chunk)), epoch, err)
		}
		if st.Batches > 0 {
			r.logf("replica: applied %d batches / %d ops (%d bytes) at epoch %d", st.Batches, st.Ops, st.Bytes, epoch)
		}
	}
}

// Run polls and catches up until ctx is cancelled. Transient errors are
// logged and retried on the next poll — a follower outlives writer
// restarts.
func (r *Replica) Run(ctx context.Context) {
	t := time.NewTicker(r.opts.Poll)
	defer t.Stop()
	for {
		if err := r.CatchUp(ctx); err != nil && ctx.Err() == nil {
			r.logf("replica: catch-up: %v", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ReplicationStats implements server.ReplStatser: the follower's applied
// position, the writer's last observed durable position, and the lag
// between them.
func (r *Replica) ReplicationStats() wire.ReplicationStats {
	r.mu.Lock()
	target := r.target
	r.mu.Unlock()
	fol := r.repo.Follower()
	epoch, applied := fol.Position()
	batches, ops := fol.Totals()
	st := wire.ReplicationStats{
		Role:         "follower",
		Epoch:        epoch,
		DurableBytes: target.DurableBytes,
		AppliedBytes: applied,
		Batches:      batches,
		Ops:          ops,
		WriterURL:    r.writerURL,
	}
	switch {
	case target.Epoch == epoch:
		if target.DurableBytes > applied {
			st.LagBytes = target.DurableBytes - applied
		}
	case target.Epoch != 0:
		// The follower is on a retired (or not yet loaded) epoch: its
		// applied offset counts bytes of a WAL the writer no longer
		// appends to, so none of the target's durable bytes are applied
		// yet — the whole target is outstanding. Reporting zero here
		// (the old behaviour) made the most-behind state look caught up.
		st.LagBytes = target.DurableBytes
	}
	return st
}

// Fetches reports the read-through traffic: how many blobs (and bytes)
// were pulled from the writer because a retrieval needed them before the
// local cache held them.
func (r *Replica) Fetches() (blobs, bytes int64) { return r.rt.Fetches() }

// Close releases the writer connection pool. The follower repository
// (and its local blob store) is closed separately by its owner.
func (r *Replica) Close() { r.cl.Close() }
