package replica_test

// End-to-end replication tests over a real loopback listener: a
// disk-backed writer daemon, a follower built by the replica loop, and
// the wire protocol between them. These pin the tentpole's headline
// gates — byte-identical retrievals from the follower mid-catch-up,
// including across a writer compaction epoch switch — plus the
// read-only route rejection and the replay-equivalence property.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"io"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/client"
	"expelliarmus/internal/core"
	"expelliarmus/internal/metawal"
	"expelliarmus/internal/replica"
	"expelliarmus/internal/server"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

var testDev = simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))

// startServer serves sys on a loopback listener, optionally wiring a
// replica's stats, and returns the address.
func startServer(t *testing.T, sys *core.System, rep *replica.Replica) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := server.New(sys)
	if rep != nil {
		h.SetReplica(rep)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// openWriter opens (or reopens) a disk-backed writer system at dir.
func openWriter(t *testing.T, dir string) *core.System {
	t.Helper()
	repo, err := vmirepo.OpenAt(dir, testDev)
	if err != nil {
		t.Fatalf("OpenAt(%s): %v", dir, err)
	}
	return core.NewSystemWithRepo(repo, testDev, core.Options{})
}

func buildImage(t *testing.T, b *builder.Builder, name string) *vmi.Image {
	t.Helper()
	tpl, ok := catalog.Find(name)
	if !ok {
		t.Fatalf("template %s not found", name)
	}
	img, err := b.Build(tpl)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func publish(t *testing.T, sys *core.System, b *builder.Builder, name string) {
	t.Helper()
	if _, err := sys.Publish(buildImage(t, b, name)); err != nil {
		t.Fatalf("publish %s: %v", name, err)
	}
}

type shaCounter struct {
	h hash.Hash
	n int64
}

func newShaCounter() *shaCounter { return &shaCounter{h: sha256.New()} }

func (w *shaCounter) Write(p []byte) (int, error) {
	w.h.Write(p)
	w.n += int64(len(p))
	return len(p), nil
}

func (w *shaCounter) sum() string { return fmt.Sprintf("%x", w.h.Sum(nil)) }

// retrieveSum retrieves name from sys and returns (bytes, sha).
func retrieveSum(t *testing.T, sys *core.System, name string) (int64, string) {
	t.Helper()
	w := newShaCounter()
	if _, _, err := sys.RetrieveTo(w, name); err != nil {
		t.Fatalf("retrieve %s: %v", name, err)
	}
	return w.n, w.sum()
}

func mustCatchUp(t *testing.T, rep *replica.Replica) {
	t.Helper()
	if err := rep.CatchUp(context.Background()); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
}

// TestReplicaServesIdenticalRetrievals is the headline gate: a follower
// that caught up over the wire serves byte-identical retrievals, pulls
// blobs through on demand, keeps serving its applied state while the
// writer moves ahead (mid-catch-up), and converges again — across a
// forced compaction epoch switch — after the next catch-up.
func TestReplicaServesIdenticalRetrievals(t *testing.T) {
	dir := t.TempDir()
	wsys := openWriter(t, dir)
	t.Cleanup(func() { wsys.Close() })
	waddr := startServer(t, wsys, nil)
	b := builder.New(catalog.NewUniverse())

	publish(t, wsys, b, "Mini")
	publish(t, wsys, b, "Redis")
	if _, err := wsys.Sync(); err != nil {
		t.Fatal(err)
	}

	rep := replica.New(waddr, blobstore.New(), testDev, replica.Options{
		Client: client.Options{Timeout: time.Minute, Retries: 1},
	})
	t.Cleanup(rep.Close)
	mustCatchUp(t, rep)
	fsys := core.NewSystemWithRepo(rep.Repo(), testDev, core.Options{})
	faddr := startServer(t, fsys, rep)

	wantN, wantSum := retrieveSum(t, wsys, "Mini")
	gotN, gotSum := retrieveSum(t, fsys, "Mini")
	if gotN != wantN || gotSum != wantSum {
		t.Fatalf("follower Mini differs: %d bytes %s vs writer %d bytes %s", gotN, gotSum, wantN, wantSum)
	}

	// Mid-catch-up: the writer moves on (publish + compaction epoch
	// switch); the follower, not yet re-polled, still serves its applied
	// state byte-identically.
	publish(t, wsys, b, "PostgreSql")
	if _, err := wsys.Compact(); err != nil {
		t.Fatal(err)
	}
	gotN, gotSum = retrieveSum(t, fsys, "Redis")
	wantN, wantSum = retrieveSum(t, wsys, "Redis")
	if gotN != wantN || gotSum != wantSum {
		t.Fatalf("mid-catch-up Redis differs: %d bytes %s vs %d bytes %s", gotN, gotSum, wantN, wantSum)
	}
	if _, _, err := fsys.Retrieve("PostgreSql"); err == nil {
		t.Fatalf("follower served a VMI it has not applied yet")
	}

	// Catch up across the epoch switch and converge.
	mustCatchUp(t, rep)
	if !bytes.Equal(rep.Repo().MetaSnapshot(), wsys.Repo().MetaSnapshot()) {
		t.Fatalf("metadata snapshots differ after epoch switch")
	}
	gotN, gotSum = retrieveSum(t, fsys, "PostgreSql")
	wantN, wantSum = retrieveSum(t, wsys, "PostgreSql")
	if gotN != wantN || gotSum != wantSum {
		t.Fatalf("post-epoch-switch PostgreSql differs")
	}

	// Remote retrieval from the follower daemon verifies end to end too.
	cl := client.New(faddr, client.Options{Timeout: time.Minute})
	defer cl.Close()
	remote := newShaCounter()
	if _, _, err := cl.Retrieve(context.Background(), "PostgreSql", remote); err != nil {
		t.Fatalf("remote retrieve from follower: %v", err)
	}
	if remote.sum() != wantSum {
		t.Fatalf("follower wire retrieval differs from writer's bytes")
	}

	// Replication observability: writer reports its epoch/durable bytes,
	// follower reports applied position and upstream.
	wst, err := client.New(waddr, client.Options{}).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if wst.Repl == nil || wst.Repl.Role != "writer" || wst.Repl.Epoch == 0 {
		t.Fatalf("writer stats lack replication section: %+v", wst.Repl)
	}
	fst, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Batches may be zero here: the last catch-up crossed an epoch
	// switch, so the follower restarted from a snapshot that already
	// covered everything and had no WAL tail left to apply.
	if fst.Repl == nil || fst.Repl.Role != "follower" || fst.Repl.Epoch != wst.Repl.Epoch || fst.Repl.WriterURL == "" {
		t.Fatalf("follower stats lack replication section: %+v", fst.Repl)
	}
	if fst.Repl.LagBytes != 0 {
		t.Fatalf("caught-up follower reports %d lag bytes", fst.Repl.LagBytes)
	}
}

// TestReplicaRejectsMutatingRoutes pins the read-only contract over the
// wire (and the client-side unwrap): publish, remove, sync and compact
// against a follower daemon come back 403/read-only and unwrap to
// vmirepo.ErrReadOnly.
func TestReplicaRejectsMutatingRoutes(t *testing.T) {
	dir := t.TempDir()
	wsys := openWriter(t, dir)
	t.Cleanup(func() { wsys.Close() })
	waddr := startServer(t, wsys, nil)
	b := builder.New(catalog.NewUniverse())
	publish(t, wsys, b, "Mini")
	if _, err := wsys.Sync(); err != nil {
		t.Fatal(err)
	}

	rep := replica.New(waddr, blobstore.New(), testDev, replica.Options{})
	t.Cleanup(rep.Close)
	mustCatchUp(t, rep)
	fsys := core.NewSystemWithRepo(rep.Repo(), testDev, core.Options{})
	faddr := startServer(t, fsys, rep)
	cl := client.New(faddr, client.Options{Timeout: time.Minute})
	defer cl.Close()
	ctx := context.Background()

	img := buildImage(t, b, "Redis")
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); !errors.Is(err, vmirepo.ErrReadOnly) {
		t.Fatalf("publish to follower: err = %v, want ErrReadOnly", err)
	}
	if err := cl.Remove(ctx, "Mini"); !errors.Is(err, vmirepo.ErrReadOnly) {
		t.Fatalf("remove on follower: err = %v, want ErrReadOnly", err)
	}
	if _, err := cl.Sync(ctx); !errors.Is(err, vmirepo.ErrReadOnly) {
		t.Fatalf("sync on follower: err = %v, want ErrReadOnly", err)
	}
	if _, err := cl.Compact(ctx); !errors.Is(err, vmirepo.ErrReadOnly) {
		t.Fatalf("compact on follower: err = %v, want ErrReadOnly", err)
	}
	// The refused routes left the follower serving normally.
	if _, _, err := fsys.Retrieve("Mini"); err != nil {
		t.Fatalf("follower broken after refused mutations: %v", err)
	}
}

// TestReplayEquivalenceProperty drives a random operation sequence
// (publishes — some with tenants and TTLs — removals, expiry sweeps,
// vacuums, syncs, forced compactions) on the writer while a follower
// catches up at random batch boundaries. At every catch-up point the
// follower's metadata must be byte-identical to the writer's, and at the
// end every surviving VMI must retrieve byte-identically.
func TestReplayEquivalenceProperty(t *testing.T) {
	names := []string{"Mini", "Redis", "PostgreSql", "Django", "Tomcat"}
	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			wsys := openWriter(t, dir)
			t.Cleanup(func() { wsys.Close() })
			waddr := startServer(t, wsys, nil)
			b := builder.New(catalog.NewUniverse())
			rep := replica.New(waddr, blobstore.New(), testDev, replica.Options{
				Client: client.Options{Timeout: time.Minute},
			})
			t.Cleanup(rep.Close)
			fsys := core.NewSystemWithRepo(rep.Repo(), testDev, core.Options{})

			published := map[string]bool{}
			compacted := false
			// Logical expiry clock (fixed base so runs are reproducible):
			// TTL publishes expire a few ticks out, expiry sweeps advance it.
			clock := int64(1000)
			for step := 0; step < 14; step++ {
				switch op := rng.Intn(13); {
				case op < 4: // publish an unpublished template
					var candidates []string
					for _, n := range names {
						if !published[n] {
							candidates = append(candidates, n)
						}
					}
					if len(candidates) == 0 {
						continue
					}
					n := candidates[rng.Intn(len(candidates))]
					var opts core.PublishOpts
					if rng.Intn(2) == 0 {
						opts.Tenant = []string{"alice", "bob"}[rng.Intn(2)]
					}
					if rng.Intn(2) == 0 {
						opts.ExpiresAt = clock + int64(rng.Intn(6)+1)
					}
					if _, err := wsys.PublishWith(buildImage(t, b, n), opts); err != nil {
						t.Fatalf("publish %s: %v", n, err)
					}
					published[n] = true
				case op < 6: // remove a published one
					var have []string
					for n := range published {
						have = append(have, n)
					}
					if len(have) == 0 {
						continue
					}
					n := have[rng.Intn(len(have))]
					if err := wsys.Remove(n); err != nil {
						t.Fatalf("remove %s: %v", n, err)
					}
					delete(published, n)
				case op < 8: // expiry sweep at an advancing deadline
					clock += int64(rng.Intn(4) + 1)
					expired, err := wsys.ExpireAt(clock)
					if err != nil {
						t.Fatalf("expire at %d: %v", clock, err)
					}
					for _, n := range expired {
						delete(published, n)
					}
				case op < 9: // vacuum (journaled accounting rewrite + GC)
					if _, err := wsys.Vacuum(); err != nil {
						t.Fatalf("vacuum: %v", err)
					}
				case op < 11: // commit a batch
					if _, err := wsys.Sync(); err != nil {
						t.Fatal(err)
					}
				default: // epoch switch
					if _, err := wsys.Compact(); err != nil {
						t.Fatal(err)
					}
					compacted = true
				}
				if rng.Intn(3) == 0 {
					// Random catch-up boundary: the follower must land on
					// exactly the writer's durable state.
					mustCatchUp(t, rep)
					if _, err := wsys.Sync(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if !compacted {
				if _, err := wsys.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := wsys.Sync(); err != nil {
				t.Fatal(err)
			}
			mustCatchUp(t, rep)

			if !bytes.Equal(rep.Repo().MetaSnapshot(), wsys.Repo().MetaSnapshot()) {
				t.Fatalf("metadata snapshots differ after final catch-up")
			}
			wstats, fstats := wsys.Repo().Stats(), rep.Repo().Stats()
			if wstats.VMIs != fstats.VMIs || wstats.Bases != fstats.Bases || wstats.Packages != fstats.Packages {
				t.Fatalf("logical stats differ: writer %+v, follower %+v", wstats, fstats)
			}
			for n := range published {
				wn, wsum := retrieveSum(t, wsys, n)
				fn, fsum := retrieveSum(t, fsys, n)
				if wn != fn || wsum != fsum {
					t.Fatalf("%s differs: writer %d bytes %s, follower %d bytes %s", n, wn, wsum, fn, fsum)
				}
			}
		})
	}
}

// TestReplicaSurvivesWriterCrash is the kill-the-writer matrix across
// the shipping boundary: the writer dies at each WAL kill point, reopens
// (running its own recovery), and the follower — which may have already
// applied batches from before the crash — catches up against the
// reopened writer and converges to its recovered state.
func TestReplicaSurvivesWriterCrash(t *testing.T) {
	kills := []struct {
		name string
		kp   metawal.KillPoint
	}{
		{"after-append", metawal.KillAfterAppend},
		{"after-commit", metawal.KillAfterCommit},
		{"after-snapshot", metawal.KillAfterSnapshot},
		{"after-wal-reset", metawal.KillAfterWALReset},
		{"after-compact-commit", metawal.KillAfterCompactCommit},
	}
	for _, k := range kills {
		k := k
		t.Run(k.name, func(t *testing.T) {
			dir := t.TempDir()
			wsys := openWriter(t, dir)
			waddr := startServer(t, wsys, nil)
			b := builder.New(catalog.NewUniverse())
			publish(t, wsys, b, "Mini")
			if _, err := wsys.Sync(); err != nil {
				t.Fatal(err)
			}

			rep := replica.New(waddr, blobstore.New(), testDev, replica.Options{
				Client: client.Options{Timeout: time.Minute},
			})
			t.Cleanup(rep.Close)
			mustCatchUp(t, rep)

			// Arm the kill point and let the writer die mid-commit. The
			// compaction-side kill points need Compact to reach them.
			publish(t, wsys, b, "Redis")
			wsys.Repo().WAL().Kill = func(p metawal.KillPoint) error {
				if p == k.kp {
					return fmt.Errorf("injected crash at %s", k.name)
				}
				return nil
			}
			var err error
			if k.kp >= metawal.KillAfterSnapshot {
				_, err = wsys.Compact()
			} else {
				_, err = wsys.Sync()
			}
			if err == nil {
				t.Fatalf("killed commit reported success")
			}
			if err := wsys.Repo().Abandon(); err != nil {
				t.Fatalf("Abandon: %v", err)
			}

			// Reopen: the writer recovers to a commit boundary. Recovery
			// may have replayed a complete-but-unacknowledged batch into
			// memory without advancing the durable watermark; the writer's
			// first sync re-acknowledges it, exactly as a restarted daemon
			// would before serving. Then let the follower converge.
			wsys2 := openWriter(t, dir)
			t.Cleanup(func() { wsys2.Close() })
			if _, err := wsys2.Sync(); err != nil {
				t.Fatalf("post-recovery sync: %v", err)
			}
			waddr2 := startServer(t, wsys2, nil)
			rep2 := replica.New(waddr2, blobstore.New(), testDev, replica.Options{
				Client: client.Options{Timeout: time.Minute},
			})
			t.Cleanup(rep2.Close)
			fsys2 := core.NewSystemWithRepo(rep2.Repo(), testDev, core.Options{})
			mustCatchUp(t, rep2)
			if !bytes.Equal(rep2.Repo().MetaSnapshot(), wsys2.Repo().MetaSnapshot()) {
				t.Fatalf("fresh follower does not match recovered writer")
			}
			for _, name := range wsys2.Repo().VMIs() {
				wn, wsum := retrieveSum(t, wsys2, name)
				fn, fsum := retrieveSum(t, fsys2, name)
				if wn != fn || wsum != fsum {
					t.Fatalf("recovered %s differs on follower", name)
				}
			}

			// The pre-crash follower kept its applied state consistent:
			// everything it holds still retrieves (blobs read through from
			// the recovered writer — but only against the same URL). The
			// old writer address is dead, so just check its local state.
			if got := len(rep.Repo().VMIs()); got == 0 {
				t.Fatalf("pre-crash follower lost its applied state")
			}
		})
	}
}
