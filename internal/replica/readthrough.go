package replica

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/client"
)

// ReadThrough is a blob backend that serves from a local store and
// fetches misses from the writer's replication blob endpoint, caching
// them locally. The shipped metadata references blobs by content ID; the
// follower pulls each one the first time a retrieval needs it, so a
// fresh follower serves correct (if slower) retrievals immediately and
// converges to local-speed service as its cache warms.
//
// Fetched bytes are verified twice: the transport trailers catch a
// truncated or damaged stream, and the local store re-derives the
// content address as it ingests — a blob that hashes to the wrong ID is
// released and reported corrupt, never served.
type ReadThrough struct {
	local blobstore.Backend
	cl    *client.Client

	mu       sync.Mutex
	inflight map[blobstore.ID]chan struct{}

	fetches    atomic.Int64
	fetchBytes atomic.Int64
}

// NewReadThrough wraps local with writer-backed miss handling.
func NewReadThrough(local blobstore.Backend, cl *client.Client) *ReadThrough {
	return &ReadThrough{local: local, cl: cl, inflight: make(map[blobstore.ID]chan struct{})}
}

// Unwrap exposes the local store, so stats walks (and tests) can reach
// the underlying disk backend through the wrapper.
func (t *ReadThrough) Unwrap() blobstore.Backend { return t.local }

// Fetches reports how many blobs and bytes were pulled from the writer.
func (t *ReadThrough) Fetches() (blobs, bytes int64) {
	return t.fetches.Load(), t.fetchBytes.Load()
}

// fetch pulls one blob from the writer into the local store, coalescing
// concurrent misses on the same ID into one download.
func (t *ReadThrough) fetch(id blobstore.ID) error {
	var ch chan struct{}
	for {
		t.mu.Lock()
		if racing, ok := t.inflight[id]; ok {
			t.mu.Unlock()
			<-racing
			if t.local.Has(id) {
				return nil
			}
			// The racing fetch failed; take our own turn.
			continue
		}
		ch = make(chan struct{})
		t.inflight[id] = ch
		t.mu.Unlock()
		break
	}
	defer func() {
		t.mu.Lock()
		delete(t.inflight, id)
		t.mu.Unlock()
		close(ch)
	}()
	pr, pw := io.Pipe()
	go func() {
		_, err := t.cl.ReplBlob(context.Background(), id.String(), pw)
		pw.CloseWithError(err)
	}()
	got, n, _, err := t.local.PutReader(pr)
	if err != nil {
		return fmt.Errorf("replica: fetch blob %s: %w", id, err)
	}
	if got != id {
		t.local.Release(got)
		return fmt.Errorf("replica: blob %s arrived hashing to %s: %w", id, got, blobstore.ErrCorrupt)
	}
	t.fetches.Add(1)
	t.fetchBytes.Add(n)
	return nil
}

// Open serves the blob from the local store, fetching it from the writer
// first on a miss.
func (t *ReadThrough) Open(id blobstore.ID) (io.ReadCloser, int64, error) {
	rc, size, err := t.local.Open(id)
	if err == nil || !isNotFound(err) {
		return rc, size, err
	}
	if ferr := t.fetch(id); ferr != nil {
		return nil, 0, ferr
	}
	return t.local.Open(id)
}

// Get mirrors Open's read-through for the materializing getter.
func (t *ReadThrough) Get(id blobstore.ID) ([]byte, bool) {
	if b, ok := t.local.Get(id); ok {
		return b, true
	}
	if err := t.fetch(id); err != nil {
		return nil, false
	}
	return t.local.Get(id)
}

func isNotFound(err error) bool {
	type causer interface{ Unwrap() error }
	for err != nil {
		if err == blobstore.ErrNotFound {
			return true
		}
		c, ok := err.(causer)
		if !ok {
			return false
		}
		err = c.Unwrap()
	}
	return false
}

// --- local delegation (the rest of the Backend contract) ---

func (t *ReadThrough) Put(data []byte) (blobstore.ID, bool) { return t.local.Put(data) }
func (t *ReadThrough) PutReader(r io.Reader) (blobstore.ID, int64, bool, error) {
	return t.local.PutReader(r)
}
func (t *ReadThrough) Size(id blobstore.ID) (int64, bool) { return t.local.Size(id) }
func (t *ReadThrough) Has(id blobstore.ID) bool           { return t.local.Has(id) }
func (t *ReadThrough) AddRef(id blobstore.ID) error       { return t.local.AddRef(id) }
func (t *ReadThrough) Refs(id blobstore.ID) int           { return t.local.Refs(id) }
func (t *ReadThrough) Release(id blobstore.ID) error      { return t.local.Release(id) }
func (t *ReadThrough) Len() int                           { return t.local.Len() }
func (t *ReadThrough) TotalBytes() int64                  { return t.local.TotalBytes() }
func (t *ReadThrough) Stats() (int64, int64)              { return t.local.Stats() }
func (t *ReadThrough) IDs() []blobstore.ID                { return t.local.IDs() }
func (t *ReadThrough) Snapshot() ([]byte, error)          { return t.local.Snapshot() }

// --- durability passthrough ---
//
// A follower over a disk-backed local store must flush and close it like
// any durable backend; over the in-memory store these are no-ops. The
// wrapper therefore always satisfies blobstore.Durable — the repository's
// read-only gate keeps the sync path unreachable on followers anyway,
// leaving Close (handle + lock release) as the call that matters.

func (t *ReadThrough) SyncData() (blobstore.SyncStats, error) {
	if d, ok := t.local.(blobstore.Durable); ok {
		return d.SyncData()
	}
	return blobstore.SyncStats{}, nil
}

func (t *ReadThrough) Sync() (blobstore.SyncStats, error) {
	if d, ok := t.local.(blobstore.Durable); ok {
		return d.Sync()
	}
	return blobstore.SyncStats{}, nil
}

func (t *ReadThrough) Close() error {
	if d, ok := t.local.(blobstore.Durable); ok {
		return d.Close()
	}
	return nil
}

func (t *ReadThrough) Err() error {
	if d, ok := t.local.(blobstore.Durable); ok {
		return d.Err()
	}
	return nil
}

var (
	_ blobstore.Backend = (*ReadThrough)(nil)
	_ blobstore.Durable = (*ReadThrough)(nil)
)
