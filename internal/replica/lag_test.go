package replica

// White-box regression for the cross-epoch lag report. LagBytes was
// computed only when the follower's epoch matched the writer's last
// polled commit — so a follower still on a retired epoch (the state
// furthest behind) reported zero lag, indistinguishable from caught up.

import (
	"testing"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/wire"
)

func TestLagSpansEpochSwitch(t *testing.T) {
	dev := simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))
	r := New("http://127.0.0.1:0", blobstore.New(), dev, Options{})
	defer r.Close()

	// Never polled: the zero target must not fabricate lag.
	if st := r.ReplicationStats(); st.LagBytes != 0 {
		t.Fatalf("fresh follower lag = %d, want 0", st.LagBytes)
	}

	// Polled a writer on an epoch the follower has not loaded (fresh
	// follower, or the writer compacted under it): every durable byte of
	// the target epoch is outstanding, and that is the lag — the old
	// behaviour reported 0 here, the most-behind state masquerading as
	// caught up.
	r.mu.Lock()
	r.target = wire.ReplCommit{Epoch: 3, DurableBytes: 4096}
	r.mu.Unlock()
	st := r.ReplicationStats()
	if st.LagBytes != 4096 {
		t.Fatalf("cross-epoch lag = %d, want 4096 (target's full durable length)", st.LagBytes)
	}
	if st.DurableBytes != 4096 || st.AppliedBytes != 0 {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}
