package bench

import (
	"math"
	"strings"
	"testing"
)

// sharedRunner caches built images across the test binary.
var sharedRunner = NewRunner()

func TestFig3aShape(t *testing.T) {
	fig, err := sharedRunner.Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 4 || fig.X[0] != "Mini" || fig.X[3] != "IDE" {
		t.Fatalf("x axis = %v", fig.X)
	}
	q, e := fig.Final("qcow2"), fig.Final("expelliarmus")
	m, h := fig.Final("mirage"), fig.Final("hemera")
	g := fig.Final("qcow2+gzip")
	// Paper endpoints: qcow2 8.85, gzip 3.2, mirage/hemera 3.4, expel 2.3.
	if q < 7 || q > 11 {
		t.Errorf("qcow2 final = %.2f GB, paper 8.85", q)
	}
	if g < 2.4 || g > 4.2 {
		t.Errorf("gzip final = %.2f GB, paper 3.2", g)
	}
	if m < 2.5 || m > 4.8 {
		t.Errorf("mirage final = %.2f GB, paper 3.4", m)
	}
	if e < 1.8 || e > 3.0 {
		t.Errorf("expelliarmus final = %.2f GB, paper 2.3", e)
	}
	// Orderings: Expelliarmus wins; qcow2 loses; mirage ≈ hemera.
	if !(e < m && e < h && e < q) {
		t.Errorf("expelliarmus %.2f not smallest (m=%.2f h=%.2f q=%.2f)", e, m, h, q)
	}
	if math.Abs(m-h)/m > 0.25 {
		t.Errorf("mirage %.2f vs hemera %.2f differ too much", m, h)
	}
	// Monotone growth for every store.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Errorf("%s shrank at step %d: %.3f -> %.3f", s.Label, i, s.Y[i-1], s.Y[i])
			}
		}
	}
}

func TestFig3bShape(t *testing.T) {
	fig, err := sharedRunner.Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 19 {
		t.Fatalf("x axis has %d points", len(fig.X))
	}
	q, g := fig.Final("qcow2"), fig.Final("qcow2+gzip")
	m, e := fig.Final("mirage"), fig.Final("expelliarmus")
	// Paper: qcow2 41.81, gzip 15, mirage/hemera 8.81, expel 2.75.
	if q < 35 || q > 50 {
		t.Errorf("qcow2 final = %.2f GB, paper 41.81", q)
	}
	if g < 11 || g > 19 {
		t.Errorf("gzip final = %.2f GB, paper 15", g)
	}
	if m < 6.5 || m > 12 {
		t.Errorf("mirage final = %.2f GB, paper 8.81", m)
	}
	if e < 2.0 || e > 4.5 {
		t.Errorf("expelliarmus final = %.2f GB, paper 2.75", e)
	}
	// The crossover: at 19 images the dedup schemes beat gzip, which beats
	// raw; Expelliarmus beats everything by a wide margin.
	if !(q > g && g > m && m > e) {
		t.Errorf("ordering violated: q=%.1f g=%.1f m=%.1f e=%.1f", q, g, m, e)
	}
	if m/e < 2.0 {
		t.Errorf("mirage/expel ratio = %.2f, paper ≈ 3.2", m/e)
	}
}

func TestFig3cShapeReduced(t *testing.T) {
	// 12 builds keep the test fast; the full 40-build series runs in the
	// root-level benchmark and cmd/expelbench.
	fig, err := sharedRunner.Fig3c(12)
	if err != nil {
		t.Fatal(err)
	}
	q, g := fig.Final("qcow2"), fig.Final("qcow2+gzip")
	m, e := fig.Final("mirage"), fig.Final("expelliarmus")
	t.Logf("12 IDE builds: qcow2=%.1f gzip=%.1f mirage=%.1f expel=%.1f", q, g, m, e)
	// Qcow2 grows linearly (~2.8 GB per build); Expelliarmus stays nearly
	// flat after the first build; Mirage grows only by per-build churn.
	if q < 25 {
		t.Errorf("qcow2 = %.1f GB after 12 builds, want ~33", q)
	}
	if e > 4.0 {
		t.Errorf("expelliarmus = %.1f GB, want nearly flat ~3", e)
	}
	if m > q/2 {
		t.Errorf("mirage %.1f not well below qcow2 %.1f", m, q)
	}
	// Expelliarmus growth from build 2 to the end is only user data and
	// metadata noise.
	growth := fig.Final("expelliarmus") - fig.At("expelliarmus", 1)
	if growth > 1.0 {
		t.Errorf("expelliarmus grew %.2f GB over 10 rebuilt images", growth)
	}
	// Headline direction (paper: 16x vs gzip, 2.2x vs mirage at 40 builds;
	// at 12 builds the ratios are smaller but must already be >1).
	if g/e < 2 {
		t.Errorf("gzip/expel = %.1f, want > 2 at 12 builds", g/e)
	}
	if m/e < 1.2 {
		t.Errorf("mirage/expel = %.1f, want > 1.2 at 12 builds", m/e)
	}
}

func TestFig4aShape(t *testing.T) {
	fig, err := sharedRunner.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	// Expelliarmus publishes faster than Mirage and Hemera for every one
	// of the four shared images (Fig. 4a).
	for i, x := range fig.X {
		e := fig.At("expelliarmus", i)
		m := fig.At("mirage", i)
		h := fig.At("hemera", i)
		if e >= m || e >= h {
			t.Errorf("%s: expelliarmus %.1fs not fastest (mirage %.1fs, hemera %.1fs)", x, e, m, h)
		}
	}
}

func TestFig4bShape(t *testing.T) {
	fig, err := sharedRunner.Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 19 {
		t.Fatalf("x axis has %d points", len(fig.X))
	}
	// The Semantic (no-dedup) variant is never faster than Expelliarmus
	// and strictly slower once the repository holds shared packages.
	slower := 0
	for i := range fig.X {
		e, s := fig.At("expelliarmus", i), fig.At("semantic", i)
		if s < e-1e-9 {
			t.Errorf("%s: semantic %.1fs faster than expelliarmus %.1fs", fig.X[i], s, e)
		}
		if s > e+1 {
			slower++
		}
	}
	if slower < 5 {
		t.Errorf("semantic variant materially slower on only %d images", slower)
	}
	// Expelliarmus publish wins against Mirage/Hemera on most images
	// (Desktop, with its 100+ package export, is the paper's outlier too).
	wins := 0
	for i := range fig.X {
		if fig.At("expelliarmus", i) < fig.At("mirage", i) {
			wins++
		}
	}
	if wins < 13 {
		t.Errorf("expelliarmus beats mirage on only %d/19 images", wins)
	}
}

func TestFig5aShape(t *testing.T) {
	fig, err := sharedRunner.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	// The first three phases are roughly equal across images ("share
	// nearly equal time"); import varies.
	for i, x := range fig.X {
		c := fig.At("base-image-copy", i)
		l := fig.At("handle-creation", i)
		r := fig.At("vmi-reset", i)
		if c <= 0 || l <= 0 || r <= 0 {
			t.Errorf("%s: zero phase cost (copy=%.1f launch=%.1f reset=%.1f)", x, c, l, r)
		}
		if c > 20 || l > 20 || r > 20 {
			t.Errorf("%s: fixed phase too large (copy=%.1f launch=%.1f reset=%.1f)", x, c, l, r)
		}
		total := fig.At("total", i)
		sum := c + l + r + fig.At("import", i)
		if sum > total+1e-6 {
			t.Errorf("%s: phases %.1f exceed total %.1f", x, sum, total)
		}
	}
	// Import is highest for Desktop (paper: "highest in case of Desktop").
	maxImport, maxAt := 0.0, ""
	for i, x := range fig.X {
		if v := fig.At("import", i); v > maxImport {
			maxImport, maxAt = v, x
		}
	}
	if maxAt != "Desktop" {
		t.Errorf("largest import = %s (%.1fs), paper says Desktop", maxAt, maxImport)
	}
	// Mini imports no packages — only its small user-data archive.
	if v := fig.At("import", 0); v > 1.0 {
		t.Errorf("Mini import = %.1fs, want < 1s (user data only)", v)
	}
}

func TestFig5bShape(t *testing.T) {
	fig, err := sharedRunner.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	// Mirage is the slowest retrieval for every image; Hemera and
	// Expelliarmus are comparable (Fig. 5b).
	for i, x := range fig.X {
		m, h, e := fig.At("mirage", i), fig.At("hemera", i), fig.At("expelliarmus", i)
		if m <= h || m <= e {
			t.Errorf("%s: mirage %.1fs not slowest (hemera %.1fs, expel %.1fs)", x, m, h, e)
		}
	}
	// Mirage retrieval lands in the paper's few-hundred-seconds range.
	if m := fig.Final("mirage"); m < 150 || m > 900 {
		t.Errorf("mirage ElasticStack retrieval = %.0fs, paper ~500s range", m)
	}
}

func TestTableIIAgainstPaper(t *testing.T) {
	tbl, err := sharedRunner.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 19 {
		t.Fatalf("Table II has %d rows", len(tbl.Rows))
	}
	s := tbl.String()
	for _, want := range []string{"Mini", "ElasticStack", "publish[s]", "p:retrieve"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	// Column 2 = measured mounted GB, column 3 = paper. Require every row
	// within 15% of the paper's mounted size.
	for _, row := range tbl.Rows {
		var meas, ref float64
		if _, err := sscan(row[2], &meas); err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if _, err := sscan(row[3], &ref); err != nil {
			t.Fatalf("bad cell %q", row[3])
		}
		if math.Abs(meas-ref)/ref > 0.15 {
			t.Errorf("%s: mounted %.3f vs paper %.3f (>15%%)", row[1], meas, ref)
		}
	}
}

func sscan(s string, f *float64) (int, error) {
	return fmtSscanf(s, f)
}

func TestAblationChunking(t *testing.T) {
	tbl, err := sharedRunner.AblationChunking()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]float64{}
	for _, row := range tbl.Rows {
		var gb float64
		if _, err := fmtSscanf(row[1], &gb); err != nil {
			t.Fatal(err)
		}
		sizes[row[0]] = gb
	}
	t.Logf("\n%s", tbl)
	// Block-size sensitivity: small aligned chunks dedup far better than
	// large ones (Jayaram et al.).
	if sizes["blockdedup-fixed-256"] >= sizes["blockdedup-fixed-4096"] {
		t.Errorf("fixed-256 %.2f not below fixed-4096 %.2f",
			sizes["blockdedup-fixed-256"], sizes["blockdedup-fixed-4096"])
	}
	// Content-level dedup cannot match the semantic scheme.
	if sizes["expelliarmus"] >= sizes["blockdedup-fixed-256"] {
		t.Errorf("expelliarmus %.2f not below best block dedup %.2f",
			sizes["expelliarmus"], sizes["blockdedup-fixed-256"])
	}
	// Every dedup scheme beats raw storage.
	for name, gb := range sizes {
		if name == "qcow2" {
			continue
		}
		if gb >= sizes["qcow2"] {
			t.Errorf("%s %.2f not below qcow2 %.2f", name, gb, sizes["qcow2"])
		}
	}
}

func TestAblationMasterGraph(t *testing.T) {
	tbl, err := sharedRunner.AblationMasterGraph([]int{1, 5, 10, 19})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At 19 stored VMIs the master-graph comparison must be decisively
	// cheaper than pairwise (the design motivation of Sec. III-H).
	var speedup float64
	if _, err := fmtSscanf(strings.TrimSuffix(tbl.Rows[3][3], "x"), &speedup); err != nil {
		t.Fatal(err)
	}
	if speedup < 2 {
		t.Errorf("master-graph speedup at 19 VMIs = %.1fx, want > 2x", speedup)
	}
}

func TestAblationBaseSelection(t *testing.T) {
	tbl, err := sharedRunner.AblationBaseSelection()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	var onGB, offGB float64
	var onBases, offBases int
	fmtSscanf(tbl.Rows[0][1], &onGB)
	fmtSscanf(tbl.Rows[1][1], &offGB)
	fmtSscanfInt(tbl.Rows[0][2], &onBases)
	fmtSscanfInt(tbl.Rows[1][2], &offBases)
	if onBases != 1 {
		t.Errorf("selection-on stored %d bases, want 1", onBases)
	}
	if offBases != 19 {
		t.Errorf("selection-off stored %d bases, want 19", offBases)
	}
	// The paper: "the base image is a major contributor to the higher
	// repository size" — disabling selection must blow the repo up.
	if offGB < onGB*5 {
		t.Errorf("selection-off %.1f GB not dramatically above selection-on %.1f GB", offGB, onGB)
	}
}

func TestAblationUploadOrder(t *testing.T) {
	tbl, err := sharedRunner.AblationUploadOrder()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	var gb1, gb2, s1, s2 float64
	fmtSscanf(tbl.Rows[0][1], &gb1)
	fmtSscanf(tbl.Rows[1][1], &gb2)
	fmtSscanf(tbl.Rows[0][2], &s1)
	fmtSscanf(tbl.Rows[1][2], &s2)
	// Package and user-data storage is order-independent; the stored base
	// image differs by the first image's churn (Mini 180 paper-MB vs
	// ElasticStack 600 paper-MB), bounding the gap below ~0.6 GB.
	if diff := gb2 - gb1; diff < 0 || diff > 0.6 {
		t.Errorf("repo size gap = %.2f GB, want (0, 0.6] (first image's churn)", diff)
	}
	if gb1 > 4.5 || gb2 > 4.5 {
		t.Errorf("either order should stay far below qcow2: %.2f / %.2f", gb1, gb2)
	}
	// Both orders pay roughly the same total publish cost (same packages
	// exported once each, same single base store).
	if ratio := s1 / s2; ratio < 0.85 || ratio > 1.18 {
		t.Errorf("publish totals diverge: %.1f vs %.1f", s1, s2)
	}
}

func TestPaperDataConsistency(t *testing.T) {
	if len(PaperTableII) != 19 {
		t.Fatalf("PaperTableII has %d rows", len(PaperTableII))
	}
	if _, ok := PaperTableIIRow("Desktop"); !ok {
		t.Fatal("Desktop missing from paper data")
	}
	if _, ok := PaperTableIIRow("NotAnImage"); ok {
		t.Fatal("bogus row found")
	}
	for fig, vals := range PaperFig3 {
		if len(vals) != 5 {
			t.Errorf("%s has %d schemes", fig, len(vals))
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	s := tbl.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "a  bb") {
		t.Errorf("render = %q", s)
	}
	fig := &Figure{Title: "F", XLabel: "x", YLabel: "y", X: []string{"p1"},
		Series: []Series{{Label: "s1", Y: []float64{3.14}}}}
	if fig.Final("s1") != 3.14 {
		t.Error("Final wrong")
	}
	if !math.IsNaN(fig.Final("missing")) || !math.IsNaN(fig.At("s1", 9)) {
		t.Error("missing lookups should be NaN")
	}
	if !strings.Contains(fig.String(), "3.14") {
		t.Error("figure table missing value")
	}
}
