package bench

import (
	"fmt"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/chunker"
	"expelliarmus/internal/core"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/semgraph"
	"expelliarmus/internal/similarity"
	"expelliarmus/internal/stores"
)

// AblationChunking (A1) compares block-level deduplication at several
// chunk sizes — fixed and Rabin content-defined — against file-level
// (Mirage) and semantic (Expelliarmus) schemes on the 19-image workload.
// It demonstrates two related-work observations: chunk-size selection
// decides the dedup factor (Jayaram et al.), and content-level dedup
// cannot reach the semantic scheme's footprint because it must keep every
// image's churn.
func (r *Runner) AblationChunking() (*Table, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	ss := []stores.Store{
		stores.NewBlockDedup(r.Dev, chunker.NewFixed(catalog.ClusterSize)),
		stores.NewBlockDedup(r.Dev, chunker.NewFixed(4*catalog.ClusterSize)),
		stores.NewBlockDedup(r.Dev, chunker.NewFixed(16*catalog.ClusterSize)),
		stores.NewBlockDedup(r.Dev, chunker.NewRabin(1024)),
		stores.NewBlockDedup(r.Dev, chunker.NewRabin(4096)),
		stores.NewQcow2(r.Dev),
		stores.NewMirage(r.Dev),
		exp,
	}
	for _, t := range catalog.Paper19() {
		for _, s := range ss {
			img, err := r.WL.Image(t)
			if err != nil {
				return nil, err
			}
			if _, err := s.Publish(img); err != nil {
				return nil, fmt.Errorf("bench: %s publish %s: %w", s.Name(), t.Name, err)
			}
		}
	}
	tbl := &Table{
		Title:   "Ablation A1: block-level vs file-level vs semantic dedup, 19 VMIs",
		Columns: []string{"scheme", "repo size [GB]", "vs qcow2"},
	}
	var qcowGB float64
	for _, s := range ss {
		if s.Name() == "qcow2" {
			qcowGB = paperGB(s.SizeBytes())
		}
	}
	for _, s := range ss {
		gb := paperGB(s.SizeBytes())
		tbl.AddRow(s.Name(), fmt.Sprintf("%.2f", gb), fmt.Sprintf("%.1fx", qcowGB/gb))
	}
	return tbl, nil
}

// graphFor builds a VMI's semantic graph straight from the catalog
// (no disk build needed), for the master-graph ablation.
func graphFor(u *catalog.Universe, t catalog.Template) (*semgraph.Graph, error) {
	names, err := pkgmgr.Closure(u, append(u.EssentialNames(), t.Primaries...))
	if err != nil {
		return nil, err
	}
	var installed []pkgmeta.Package
	for _, n := range names {
		p, _ := u.Lookup(n)
		installed = append(installed, p)
	}
	return semgraph.Build(catalog.DefaultBase, installed, t.Primaries), nil
}

// AblationMasterGraph (A2) measures the real CPU cost of computing the
// semantic similarity of a new upload against N stored VMIs pairwise,
// versus a single comparison against their master graph — the
// justification for Sec. III-H ("reduce the similarity computation
// overhead ... with one single master graph similarity comparison").
func (r *Runner) AblationMasterGraph(counts []int) (*Table, error) {
	u := catalog.NewUniverse()
	tpls := catalog.Paper19()
	graphs := make([]*semgraph.Graph, len(tpls))
	for i, t := range tpls {
		g, err := graphFor(u, t)
		if err != nil {
			return nil, err
		}
		graphs[i] = g
	}
	// The upload to compare: the last template.
	upload := graphs[len(graphs)-1]

	tbl := &Table{
		Title:   "Ablation A2: pairwise vs master-graph similarity computation",
		Columns: []string{"stored VMIs", "pairwise [ms]", "master [ms]", "speedup"},
	}
	const reps = 10
	for _, n := range counts {
		if n > len(graphs) {
			n = len(graphs)
		}
		stored := graphs[:n]
		// Pairwise: compare against every stored VMI graph.
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for _, g := range stored {
				similarity.SimG(upload, g)
			}
		}
		pairwise := time.Since(start) / reps

		// Master: one union graph, one comparison.
		mg := stored[0].Clone()
		for _, g := range stored[1:] {
			mg.Union(g)
		}
		start = time.Now()
		for rep := 0; rep < reps; rep++ {
			similarity.SimG(upload, mg)
		}
		masterCost := time.Since(start) / reps

		speedup := float64(pairwise) / float64(masterCost)
		tbl.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", float64(pairwise)/1e6),
			fmt.Sprintf("%.3f", float64(masterCost)/1e6),
			fmt.Sprintf("%.1fx", speedup))
	}
	return tbl, nil
}

// AblationUploadOrder (A4) publishes the 19-image workload in Table II
// order and in reverse, comparing final repository size and total publish
// time. Packages and user data dedup identically either way, but the
// stored base image retains the churn of whichever image was decomposed
// first — so publishing ElasticStack (600 paper-MB churn) first costs a
// visibly larger base than publishing Mini (180 paper-MB) first. A
// production deployment would sysprep the base before storing it; the
// paper's system, like this reproduction, does not.
func (r *Runner) AblationUploadOrder() (*Table, error) {
	tpls := catalog.Paper19()
	reversed := make([]catalog.Template, len(tpls))
	for i, t := range tpls {
		reversed[len(tpls)-1-i] = t
	}
	tbl := &Table{
		Title:   "Ablation A4: upload order sensitivity, 19 VMIs",
		Columns: []string{"order", "repo size [GB]", "total publish [s]"},
	}
	for _, run := range []struct {
		label string
		tpls  []catalog.Template
	}{{"table-II", tpls}, {"reversed", reversed}} {
		s, err := r.newExpel(core.Options{})
		if err != nil {
			return nil, err
		}
		var total float64
		for _, t := range run.tpls {
			img, err := r.WL.Image(t)
			if err != nil {
				return nil, err
			}
			st, err := s.Publish(img)
			if err != nil {
				return nil, err
			}
			total += st.Seconds
		}
		tbl.AddRow(run.label, fmt.Sprintf("%.2f", paperGB(s.SizeBytes())),
			fmt.Sprintf("%.1f", total))
	}
	return tbl, nil
}

// AblationBaseSelection (A3) quantifies Algorithm 2: repository size and
// stored base-image count for the 19-image workload with base-image
// selection enabled versus disabled (every VMI keeps its own base).
func (r *Runner) AblationBaseSelection() (*Table, error) {
	withSel, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	without, err := r.newExpel(core.Options{NoBaseSelection: true})
	if err != nil {
		return nil, err
	}
	for _, t := range catalog.Paper19() {
		for _, s := range []*stores.Expel{withSel, without} {
			img, err := r.WL.Image(t)
			if err != nil {
				return nil, err
			}
			if _, err := s.Publish(img); err != nil {
				return nil, err
			}
		}
	}
	tbl := &Table{
		Title:   "Ablation A3: base-image selection (Algorithm 2) on vs off, 19 VMIs",
		Columns: []string{"variant", "repo size [GB]", "base images"},
	}
	for _, s := range []*stores.Expel{withSel, without} {
		st := s.System().Repo().Stats()
		label := "selection-on"
		if s == without {
			label = "selection-off"
		}
		tbl.AddRow(label, fmt.Sprintf("%.2f", paperGB(st.TotalBytes)), fmt.Sprintf("%d", st.Bases))
	}
	return tbl, nil
}
