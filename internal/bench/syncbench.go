package bench

import (
	"fmt"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/vmirepo"
)

// SyncDeltaResult reports the sync-cost scenario: the Table II catalog
// published into a disk-backed repository and synced, followed by a run
// of single-image publishes each followed by its own Sync, followed by a
// forced compaction. The headline contrast is the per-delta sync cost
// (WAL append: O(delta)) against the compaction cost (full metadata
// snapshot: O(repository)) — the factor the metadata WAL buys over the
// pre-WAL whole-image rewrite, which paid the snapshot price on every
// Sync.
type SyncDeltaResult struct {
	// Dir is the repository directory (left on disk for inspection).
	Dir string
	// Images is the initial catalog size; Deltas how many single-image
	// publish+Sync rounds followed.
	Images int
	Deltas int
	// CatalogSync is the first durable sync (everything since open) and
	// its metadata bytes — the baseline the deltas are incremental to.
	CatalogSync     vmirepo.SyncStats
	CatalogSyncWall time.Duration
	// DeltaMetaBytes / DeltaOps / DeltaWall are the per-round metadata
	// bytes, op counts and wall clock of the incremental syncs.
	DeltaMetaBytes []int64
	DeltaOps       []int
	DeltaWall      []time.Duration
	// SnapshotBytes is the full metadata snapshot a forced compaction
	// wrote — what every Sync used to cost before the WAL — and
	// CompactWall its wall clock.
	SnapshotBytes int64
	CompactWall   time.Duration
	// BytesRatio is SnapshotBytes over the mean delta metadata bytes: how
	// many times cheaper a single-image Sync is than a full rewrite.
	// WallRatio is the same contrast in wall-clock time (noisier —
	// dominated by fsync latency — so the acceptance gate is on bytes).
	BytesRatio float64
	WallRatio  float64
	// RetrievedAll confirms every VMI (catalog + deltas) was assembled
	// from the reopened repository.
	RetrievedAll bool
}

// String renders the scenario as a table.
func (s *SyncDeltaResult) String() string {
	tbl := &Table{
		Title:   fmt.Sprintf("Sync cost vs delta size: %d VMIs + %d single-image deltas on the disk backend (%s)", s.Images, s.Deltas, s.Dir),
		Columns: []string{"step", "wall[ms]", "meta ops", "meta bytes"},
	}
	tbl.AddRow("catalog sync",
		fmt.Sprintf("%.1f", s.CatalogSyncWall.Seconds()*1e3),
		fmt.Sprintf("%d", s.CatalogSync.MetaOps),
		fmt.Sprintf("%d", s.CatalogSync.MetaBytes))
	var sumBytes int64
	var sumWall time.Duration
	for i := range s.DeltaMetaBytes {
		tbl.AddRow(fmt.Sprintf("delta sync %d (+1 image)", i+1),
			fmt.Sprintf("%.1f", s.DeltaWall[i].Seconds()*1e3),
			fmt.Sprintf("%d", s.DeltaOps[i]),
			fmt.Sprintf("%d", s.DeltaMetaBytes[i]))
		sumBytes += s.DeltaMetaBytes[i]
		sumWall += s.DeltaWall[i]
	}
	if n := len(s.DeltaMetaBytes); n > 0 {
		tbl.AddRow("delta sync mean",
			fmt.Sprintf("%.1f", sumWall.Seconds()*1e3/float64(n)),
			"",
			fmt.Sprintf("%d", sumBytes/int64(n)))
	}
	tbl.AddRow("forced compaction (full snapshot)",
		fmt.Sprintf("%.1f", s.CompactWall.Seconds()*1e3),
		"",
		fmt.Sprintf("%d", s.SnapshotBytes))
	tbl.AddRow("full-rewrite/delta bytes", fmt.Sprintf("%.1fx", s.BytesRatio), "", "")
	tbl.AddRow("full-rewrite/delta wall (fsync-bound at bench scale)", fmt.Sprintf("%.1fx", s.WallRatio), "", "")
	verified := "retrieval FAILED"
	if s.RetrievedAll {
		verified = "all VMIs retrieved after reopen"
	}
	tbl.AddRow("reopen", "", "", verified)
	return tbl.String()
}

// SyncDelta runs the sync-cost scenario with the given number of
// single-image delta rounds. It errors — failing the CI smoke job — if a
// single-image Sync does not come in at least 5x cheaper (metadata bytes)
// than the full snapshot a pre-WAL Sync would have rewritten, i.e. if
// Sync has stopped being O(delta) on the metadata side. The WAL
// compaction threshold is pinned high for the measurement (auto
// compaction mid-run would bill one delta for a full snapshot); the
// closing forced compaction exercises the compaction path explicitly.
func (r *Runner) SyncDelta(deltas int) (*SyncDeltaResult, error) {
	if deltas < 1 {
		return nil, fmt.Errorf("bench: sync experiment needs at least 1 delta, got %d", deltas)
	}
	dir, repo, err := r.NewDiskRepoOpts("expelbench-sync-", vmirepo.OpenOptions{WALCompactBytes: 1 << 40})
	if err != nil {
		return nil, err
	}
	sys := core.NewSystemWithRepo(repo, r.Dev, core.Options{})
	sysOpen := true
	defer func() {
		if sysOpen {
			sys.Close()
		}
	}()
	res := &SyncDeltaResult{Dir: dir, Deltas: deltas}

	tpls := catalog.Paper19()
	res.Images = len(tpls)
	names := make([]string, 0, len(tpls)+deltas)
	for _, t := range tpls {
		img, err := r.WL.Image(t)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Publish(img); err != nil {
			return nil, fmt.Errorf("bench: sync publish %s: %w", t.Name, err)
		}
		names = append(names, t.Name)
	}
	start := time.Now()
	if res.CatalogSync, err = sys.Sync(); err != nil {
		return nil, fmt.Errorf("bench: catalog sync: %w", err)
	}
	res.CatalogSyncWall = time.Since(start)
	// The bulk load's pending delta (every intermediate master version)
	// outweighs the database, so this first sync is expected to take the
	// oversized-delta compaction path — O(min(delta, repository)).
	if !res.CatalogSync.Compacted {
		return nil, fmt.Errorf("bench: catalog sync did not take the oversized-delta compaction path (%+v)", res.CatalogSync)
	}

	for i, t := range catalog.IDEBuilds(deltas) {
		img, err := r.WL.Builder().Build(t)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Publish(img); err != nil {
			return nil, fmt.Errorf("bench: sync publish delta %s: %w", t.Name, err)
		}
		names = append(names, t.Name)
		start = time.Now()
		st, err := sys.Sync()
		if err != nil {
			return nil, fmt.Errorf("bench: delta sync %d: %w", i+1, err)
		}
		wall := time.Since(start)
		if st.Compacted {
			return nil, fmt.Errorf("bench: delta sync %d compacted — a single-image delta must append, not rewrite (%+v)", i+1, st)
		}
		if st.MetaBytes == 0 || st.MetaOps == 0 {
			return nil, fmt.Errorf("bench: delta sync %d committed nothing (%+v)", i+1, st)
		}
		res.DeltaMetaBytes = append(res.DeltaMetaBytes, st.MetaBytes)
		res.DeltaOps = append(res.DeltaOps, st.MetaOps)
		res.DeltaWall = append(res.DeltaWall, wall)
	}

	start = time.Now()
	comp, err := sys.Compact()
	if err != nil {
		return nil, fmt.Errorf("bench: forced compaction: %w", err)
	}
	res.CompactWall = time.Since(start)
	if !comp.Compacted || comp.MetaSnapshotBytes == 0 {
		return nil, fmt.Errorf("bench: forced compaction did not rewrite a snapshot (%+v)", comp)
	}
	res.SnapshotBytes = comp.MetaSnapshotBytes

	var sumBytes int64
	var sumWall time.Duration
	for i := range res.DeltaMetaBytes {
		sumBytes += res.DeltaMetaBytes[i]
		sumWall += res.DeltaWall[i]
	}
	meanBytes := float64(sumBytes) / float64(deltas)
	res.BytesRatio = float64(res.SnapshotBytes) / meanBytes
	if meanWall := sumWall.Seconds() / float64(deltas); meanWall > 0 {
		res.WallRatio = res.CompactWall.Seconds() / meanWall
	}
	if res.BytesRatio < 5 {
		return nil, fmt.Errorf("bench: single-image Sync wrote %0.f metadata bytes vs a %d-byte full rewrite (%.1fx < 5x): Sync is not O(delta)",
			meanBytes, res.SnapshotBytes, res.BytesRatio)
	}

	sysOpen = false
	if err := sys.Close(); err != nil {
		return nil, err
	}
	repo2, err := vmirepo.OpenAt(dir, r.Dev)
	if err != nil {
		return nil, fmt.Errorf("bench: reopen: %w", err)
	}
	sys2 := core.NewSystemWithRepo(repo2, r.Dev, core.Options{})
	res.RetrievedAll = true
	for _, name := range names {
		if _, _, err := sys2.Retrieve(name); err != nil {
			res.RetrievedAll = false
			sys2.Close()
			return res, fmt.Errorf("bench: retrieve %s after reopen: %w", name, err)
		}
	}
	if err := sys2.Close(); err != nil {
		return nil, fmt.Errorf("bench: close reopened store: %w", err)
	}
	return res, nil
}
