package bench

import (
	"fmt"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/vmirepo"
)

// PersistResult reports the persistence scenario: the Table II catalog
// published into a disk-backed repository, synced, grown by one more
// image, synced again, then closed and reopened. The interesting contrast
// is FullSync vs IncrementalSync — the second sync writes only the
// segments the extra image appended, not the whole store — and the reopen
// time, which is index-load plus log-tail replay rather than a full
// deserialisation.
type PersistResult struct {
	// Dir is the repository directory (left on disk for inspection).
	Dir string
	// Images is the initial catalog size; RepoBytes the on-heap-equivalent
	// repository footprint after it (paper scale applies to the GB figure
	// in String).
	Images    int
	RepoBytes int64
	// FullSync is the first durable sync: everything since open.
	FullSync vmirepo.SyncStats
	FullWall time.Duration
	// IncrementalSync is the sync after publishing one extra image.
	IncrementalSync vmirepo.SyncStats
	IncrementalWall time.Duration
	// ReopenWall is the time to reopen the repository from disk;
	// RetrievedAll confirms every VMI was assembled from the reopened
	// store.
	ReopenWall   time.Duration
	RetrievedAll bool
}

// String renders the scenario as a table.
func (p *PersistResult) String() string {
	tbl := &Table{
		Title:   fmt.Sprintf("Persistence: %d VMIs on the disk backend (%s)", p.Images, p.Dir),
		Columns: []string{"step", "wall[ms]", "segments", "segment bytes", "index+meta bytes"},
	}
	tbl.AddRow("full sync",
		fmt.Sprintf("%.1f", p.FullWall.Seconds()*1e3),
		fmt.Sprintf("%d", p.FullSync.Blobs.Segments),
		fmt.Sprintf("%d", p.FullSync.Blobs.SegmentBytes),
		fmt.Sprintf("%d", p.FullSync.Blobs.IndexBytes+p.FullSync.MetaBytes))
	tbl.AddRow("incremental sync (+1 image)",
		fmt.Sprintf("%.1f", p.IncrementalWall.Seconds()*1e3),
		fmt.Sprintf("%d", p.IncrementalSync.Blobs.Segments),
		fmt.Sprintf("%d", p.IncrementalSync.Blobs.SegmentBytes),
		fmt.Sprintf("%d", p.IncrementalSync.Blobs.IndexBytes+p.IncrementalSync.MetaBytes))
	verified := "retrieval FAILED"
	if p.RetrievedAll {
		verified = "all VMIs retrieved"
	}
	tbl.AddRow("reopen", fmt.Sprintf("%.1f", p.ReopenWall.Seconds()*1e3), "", "", verified)
	ratio := 0.0
	if p.FullSync.Blobs.SegmentBytes > 0 {
		ratio = float64(p.IncrementalSync.Blobs.SegmentBytes) / float64(p.FullSync.Blobs.SegmentBytes)
	}
	tbl.AddRow("incremental/full bytes", fmt.Sprintf("%.3f", ratio), "", "", "")
	return tbl.String()
}

// Persistence runs the disk-backend scenario rooted under the runner's
// StoreRoot (or the OS temp dir).
func (r *Runner) Persistence() (*PersistResult, error) {
	dir, repo, err := r.NewDiskRepo("expelbench-persist-")
	if err != nil {
		return nil, err
	}
	sys := core.NewSystemWithRepo(repo, r.Dev, core.Options{})
	// Release the store (flock + handles) on every early error return;
	// the explicit Close below flips the flag.
	sysOpen := true
	defer func() {
		if sysOpen {
			sys.Close()
		}
	}()
	res := &PersistResult{Dir: dir}

	tpls := catalog.Paper19()
	res.Images = len(tpls)
	for _, t := range tpls {
		img, err := r.WL.Image(t)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Publish(img); err != nil {
			return nil, fmt.Errorf("bench: persist publish %s: %w", t.Name, err)
		}
	}
	res.RepoBytes = sys.Repo().SizeBytes()

	start := time.Now()
	if res.FullSync, err = sys.Sync(); err != nil {
		return nil, fmt.Errorf("bench: full sync: %w", err)
	}
	res.FullWall = time.Since(start)

	// One more image: an IDE rebuild, the paper's Fig. 3c growth unit.
	more := catalog.IDEBuilds(1)
	img, err := r.WL.Builder().Build(more[0])
	if err != nil {
		return nil, err
	}
	if _, err := sys.Publish(img); err != nil {
		return nil, fmt.Errorf("bench: persist publish extra: %w", err)
	}
	start = time.Now()
	if res.IncrementalSync, err = sys.Sync(); err != nil {
		return nil, fmt.Errorf("bench: incremental sync: %w", err)
	}
	res.IncrementalWall = time.Since(start)
	sysOpen = false
	if err := sys.Close(); err != nil {
		return nil, err
	}

	start = time.Now()
	repo2, err := vmirepo.OpenAt(dir, r.Dev)
	if err != nil {
		return nil, fmt.Errorf("bench: reopen: %w", err)
	}
	res.ReopenWall = time.Since(start)
	sys2 := core.NewSystemWithRepo(repo2, r.Dev, core.Options{})
	res.RetrievedAll = true
	for _, t := range tpls {
		if _, _, err := sys2.Retrieve(t.Name); err != nil {
			res.RetrievedAll = false
			sys2.Close()
			return res, fmt.Errorf("bench: retrieve %s after reopen: %w", t.Name, err)
		}
	}
	// Close is where a sticky store failure would surface; do not drop it.
	if err := sys2.Close(); err != nil {
		return nil, fmt.Errorf("bench: close reopened store: %w", err)
	}
	return res, nil
}
