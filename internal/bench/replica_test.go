package bench

import "testing"

// TestReplicaExperiment runs the replica gate at test scale. The
// experiment is self-enforcing — it errors on metadata divergence, on a
// non-identical follower stream, on a warm-pass read-through fetch, or
// if the follower accepts mutation — so the test mostly asserts it ran
// to the expected shape.
func TestReplicaExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("replica experiment skipped in -short mode")
	}
	r := NewRunner()
	res, err := r.ReplicaConvergence(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.CloseAll(); err != nil {
			t.Errorf("CloseAll: %v", err)
		}
	}()
	if len(res.Rounds) != 4 {
		t.Fatalf("got %d rounds, want 4\n%s", len(res.Rounds), res)
	}
	if res.Epochs <= 1 {
		t.Fatalf("final epoch %d; the alternating compactions should have switched epochs\n%s", res.Epochs, res)
	}
	if res.WarmMiss != 0 {
		t.Fatalf("warm pass fetched %d blobs\n%s", res.WarmMiss, res)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.FetchBlobs < int64(len(res.Rounds)) {
		t.Fatalf("only %d blobs fetched across %d distinct images — read-through never exercised\n%s",
			last.FetchBlobs, len(res.Rounds), res)
	}
	t.Logf("\n%s", res)
}
