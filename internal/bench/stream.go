package bench

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"hash"
	"io"
	"runtime"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
)

// StreamCeilingBytes is the flat-memory gate of the stream experiment:
// the streamed retrieval path may allocate at most this much per
// retrieval, no matter how large the image is. The budget covers the
// assembly's real working set — guest metadata, touched clusters, the
// lazy cluster directory — plus pooled streaming chunks; it does not
// scale with image bulk, which is the whole point.
const StreamCeilingBytes = 32 << 20

// StreamMinRatio is the second gate: at the largest scale the legacy
// materializing path (Retrieve + Disk.Serialize into one []byte) must
// allocate at least this many times more than the streamed path, or the
// streaming plumbing has quietly started materializing somewhere.
const StreamMinRatio = 5.0

// StreamScale is one row of the stream experiment: one image whose bulk
// payload is BulkBytes, retrieved via both paths.
type StreamScale struct {
	// BulkBytes is the size of the opaque payload baked into the image's
	// base (outside package management, user data and sysprep paths, so
	// it survives decomposition and reassembly verbatim).
	BulkBytes int64
	// ImageBytes is the serialized size of the retrieved image.
	ImageBytes int64
	// StreamedAlloc and LegacyAlloc are the bytes allocated by one
	// streamed (RetrieveTo) and one materializing (Retrieve + Serialize)
	// retrieval; Ratio is LegacyAlloc / StreamedAlloc.
	StreamedAlloc int64
	LegacyAlloc   int64
	Ratio         float64
	// Wall is the host wall-clock time of the streamed retrieval.
	Wall time.Duration
}

// StreamResult reports the stream experiment across all scales.
type StreamResult struct {
	Backend string
	Scales  []StreamScale
}

// String renders the experiment as a table.
func (r *StreamResult) String() string {
	backend := r.Backend
	if backend == "" {
		backend = "memory"
	}
	tbl := &Table{
		Title: fmt.Sprintf("Streaming retrieval memory: alloc per retrieval vs image bulk (%s backend, ceiling %d MiB, min ratio %.0fx)",
			backend, int64(StreamCeilingBytes)>>20, StreamMinRatio),
		Columns: []string{"bulk[MiB]", "image[MiB]", "streamed-alloc[MiB]", "legacy-alloc[MiB]", "ratio", "wall[s]"},
	}
	for _, s := range r.Scales {
		tbl.AddRow(
			fmt.Sprintf("%.1f", float64(s.BulkBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(s.ImageBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(s.StreamedAlloc)/(1<<20)),
			fmt.Sprintf("%.2f", float64(s.LegacyAlloc)/(1<<20)),
			fmt.Sprintf("%.1fx", s.Ratio),
			fmt.Sprintf("%.3f", s.Wall.Seconds()))
	}
	return tbl.String()
}

// shaCountWriter consumes a stream without retaining it: the sink of the
// streamed retrieval, costing O(1) memory regardless of stream length.
type shaCountWriter struct {
	h hash.Hash
	n int64
}

func (w *shaCountWriter) Write(p []byte) (int, error) {
	w.h.Write(p)
	w.n += int64(len(p))
	return len(p), nil
}

// measureAlloc runs fn and returns the bytes it allocated (the
// TotalAlloc delta — cumulative allocation, unaffected by when GC
// happens to run, so the measurement is deterministic for a
// deterministic fn). A GC cycle runs first so leftover garbage from
// earlier phases cannot be attributed to fn.
func measureAlloc(fn func() error) (int64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	err := fn()
	runtime.ReadMemStats(&m1)
	return int64(m1.TotalAlloc - m0.TotalAlloc), err
}

// buildBulkImage constructs a minimal publishable image — the essential
// base OS only, no primaries — carrying `bulk` bytes of opaque payload
// under /opt/bulk. That path is outside package management, outside the
// user-data roots and outside the sysprep reset set, so the payload
// lands in the decomposed base image at publish and flows through the
// base-copy path of every subsequent retrieval: exactly the traffic the
// streaming plumbing is supposed to carry at O(1) memory.
func buildBulkImage(name string, bulk int64) (*vmi.Image, error) {
	uni := catalog.NewUniverse()
	names, err := pkgmgr.Closure(uni, uni.EssentialNames())
	if err != nil {
		return nil, fmt.Errorf("bench: stream closure: %w", err)
	}
	var contentReal int64
	realFiles := 0
	for _, n := range names {
		spec, _ := uni.Spec(n)
		contentReal += catalog.Real(spec.InstalledSize)
		realFiles += catalog.RealFiles(spec.FileCount) + 1
	}
	// The workload's tiny paper-scale cluster size (256 B) would make the
	// per-cluster directory of a lazily opened image cost ~20% of the
	// image itself; bulk images use 4 KiB clusters (the vdisk default,
	// carried in the image header) so directory overhead is ~0.1%.
	const clusterSize = vdisk.DefaultClusterSize
	maxInodes := uint32(realFiles+realFiles/4+128) + 512
	virtualSize := contentReal*3 + bulk + bulk/8 + int64(maxInodes)*64*2 + 8<<20
	virtualSize = (virtualSize + clusterSize - 1) / clusterSize * clusterSize

	disk := vdisk.New(name, virtualSize, clusterSize)
	fs, err := fstree.Format(disk, maxInodes)
	if err != nil {
		return nil, fmt.Errorf("bench: stream format: %w", err)
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		return nil, err
	}
	order, err := pkgmgr.InstallOrder(uni, names)
	if err != nil {
		return nil, err
	}
	for _, group := range order {
		for _, n := range group {
			spec, _ := uni.Spec(n)
			files, err := uni.FilesFor(n)
			if err != nil {
				return nil, err
			}
			if err := mgr.InstallPackage(spec.Package, files); err != nil {
				return nil, fmt.Errorf("bench: stream install %s: %w", n, err)
			}
		}
	}
	if err := fs.MkdirAll("/opt/bulk"); err != nil {
		return nil, err
	}
	if err := fs.WriteFile("/opt/bulk/payload.bin", catalog.GenContent(0xB07B+uint64(bulk), int(bulk))); err != nil {
		return nil, fmt.Errorf("bench: stream payload: %w", err)
	}
	return &vmi.Image{
		Name: name,
		Base: uni.Release().Base,
		Disk: disk,
	}, nil
}

// StreamFlatRSS runs the stream experiment: three images whose bulk
// payload grows 100x (topBulk/100, topBulk/10, topBulk; topBulk <= 0
// defaults to 200 MiB), each published into its own fresh system (the
// semantic base identity would otherwise dedup the bases — all three
// carry the same essential package set — and silently collapse the
// scales onto one blob). Each image is retrieved twice under
// measurement: once streamed end-to-end (RetrieveTo into a hashing
// counter) and once through the legacy materializing API (Retrieve,
// then Disk.Serialize). Three gates make the experiment self-enforcing:
//
//  1. streamed allocation stays under StreamCeilingBytes at every scale
//     (flat memory as the image grows 100x);
//  2. at the largest scale the legacy path allocates at least
//     StreamMinRatio times more (the streamed path really does avoid
//     materializing);
//  3. both paths produce byte-identical images (SHA-256), so the memory
//     win never comes at the cost of fidelity.
//
// The retrieval cache is pinned off: this experiment measures the
// assembly/serve path itself, and a warm cache would replace the very
// traffic under test (the cachehit experiment covers hits).
func (r *Runner) StreamFlatRSS(topBulk int64) (*StreamResult, error) {
	if topBulk <= 0 {
		topBulk = 200 << 20
	}
	res := &StreamResult{Backend: r.Backend}
	for _, bulk := range []int64{topBulk / 100, topBulk / 10, topBulk} {
		sys, err := r.NewCoreSystem(core.Options{CacheBytes: -1})
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("stream-bulk-%dM", bulk>>20)
		img, err := buildBulkImage(name, bulk)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Publish(img); err != nil {
			return nil, fmt.Errorf("bench: stream publish %s: %w", name, err)
		}

		// Warm-up retrieval: populates chunk pools and touches every code
		// path once, so the measured runs see steady-state allocation.
		if _, _, err := sys.RetrieveTo(io.Discard, name); err != nil {
			return nil, fmt.Errorf("bench: stream warmup %s: %w", name, err)
		}

		sc := StreamScale{BulkBytes: bulk}
		streamSink := &shaCountWriter{h: sha256.New()}
		start := time.Now()
		sc.StreamedAlloc, err = measureAlloc(func() error {
			_, _, err := sys.RetrieveTo(streamSink, name)
			return err
		})
		sc.Wall = time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: stream retrieve %s: %w", name, err)
		}
		sc.ImageBytes = streamSink.n

		var legacy []byte
		sc.LegacyAlloc, err = measureAlloc(func() error {
			img, _, err := sys.Retrieve(name)
			if err != nil {
				return err
			}
			legacy = img.Disk.Serialize()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: legacy retrieve %s: %w", name, err)
		}
		if int64(len(legacy)) != sc.ImageBytes {
			return nil, fmt.Errorf("bench: stream %s: streamed %d bytes, legacy serialized %d",
				name, sc.ImageBytes, len(legacy))
		}
		legacySum := sha256.Sum256(legacy)
		if !bytes.Equal(streamSink.h.Sum(nil), legacySum[:]) {
			return nil, fmt.Errorf("bench: stream %s: streamed image differs from legacy serialization", name)
		}

		sc.Ratio = float64(sc.LegacyAlloc) / float64(sc.StreamedAlloc)
		if sc.StreamedAlloc > StreamCeilingBytes {
			return nil, fmt.Errorf("bench: stream %s: streamed retrieval allocated %d bytes, ceiling %d",
				name, sc.StreamedAlloc, int64(StreamCeilingBytes))
		}
		res.Scales = append(res.Scales, sc)
	}
	last := res.Scales[len(res.Scales)-1]
	if last.Ratio < StreamMinRatio {
		return nil, fmt.Errorf("bench: stream: legacy/streamed allocation ratio %.1fx at %d MiB bulk, want >= %.0fx",
			last.Ratio, last.BulkBytes>>20, StreamMinRatio)
	}
	return res, nil
}
