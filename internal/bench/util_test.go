package bench

import "fmt"

// fmtSscanf and fmtSscanfInt are tiny wrappers so test assertions read
// cleanly when parsing rendered table cells.
func fmtSscanf(s string, f *float64) (int, error) { return fmt.Sscanf(s, "%f", f) }

func fmtSscanfInt(s string, i *int) (int, error) { return fmt.Sscanf(s, "%d", i) }
