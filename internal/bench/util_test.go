package bench

import (
	"fmt"
	"os"
	"testing"
)

// TestMain closes every disk-backed system the shared runner created (a
// no-op on the default memory backend) so a sticky disk-store failure
// fails the suite instead of vanishing with the process.
func TestMain(m *testing.M) {
	code := m.Run()
	if err := sharedRunner.CloseAll(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: closing disk-backed systems: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// fmtSscanf and fmtSscanfInt are tiny wrappers so test assertions read
// cleanly when parsing rendered table cells.
func fmtSscanf(s string, f *float64) (int, error) { return fmt.Sscanf(s, "%f", f) }

func fmtSscanfInt(s string, i *int) (int, error) { return fmt.Sscanf(s, "%d", i) }
