package bench

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"expelliarmus/internal/client"
	"expelliarmus/internal/core"
	"expelliarmus/internal/server"
	"expelliarmus/internal/wire"
)

// RemoteCeilingBytes is the flat-memory gate of the remote experiment,
// per concurrent client: one remote retrieval may cost the process at
// most this much allocation — the streamed assembly working set (see
// StreamCeilingBytes) plus HTTP chunking and the client's verifying
// copy — no matter how large the image is. Total allocation under N
// concurrent clients is gated at N times this, at every scale, which is
// what makes the server's memory ceiling flat while the payload grows.
const RemoteCeilingBytes = StreamCeilingBytes + 8<<20

// RemoteScale is one row of the remote experiment: one image bulk, N
// concurrent remote retrievals.
type RemoteScale struct {
	BulkBytes  int64
	ImageBytes int64
	// TotalAlloc is the process-wide allocation of all Clients concurrent
	// remote retrievals together (server and client sides; both run in
	// this process over a real TCP loopback); PerClient is TotalAlloc
	// divided by the client count.
	TotalAlloc int64
	PerClient  int64
	Wall       time.Duration
}

// RemoteResult reports the remote experiment across all scales.
type RemoteResult struct {
	Backend string
	Clients int
	Scales  []RemoteScale
}

// String renders the experiment as a table.
func (r *RemoteResult) String() string {
	backend := r.Backend
	if backend == "" {
		backend = "memory"
	}
	tbl := &Table{
		Title: fmt.Sprintf("Remote retrieval memory: %d concurrent clients vs image bulk (%s backend, per-client ceiling %d MiB)",
			r.Clients, backend, int64(RemoteCeilingBytes)>>20),
		Columns: []string{"bulk[MiB]", "image[MiB]", "total-alloc[MiB]", "per-client[MiB]", "wall[s]"},
	}
	for _, s := range r.Scales {
		tbl.AddRow(
			fmt.Sprintf("%.1f", float64(s.BulkBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(s.ImageBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(s.TotalAlloc)/(1<<20)),
			fmt.Sprintf("%.2f", float64(s.PerClient)/(1<<20)),
			fmt.Sprintf("%.3f", s.Wall.Seconds()))
	}
	return tbl.String()
}

// RemoteFlatRSS runs the remote experiment: the network half of the
// streaming story. Per scale (bulk growing 10x, then 10x again, so the
// largest image is 100x the smallest), a fresh system is served by a
// real HTTP server on a loopback listener; the bulk image is published
// THROUGH the wire (exercising the streaming upload and PutBaseReader
// path), then `clients` concurrent remote retrievals stream it back
// simultaneously. Three gates:
//
//  1. every remote stream is byte-identical (SHA-256) to an in-process
//     RetrieveTo of the same VMI — network delivery never trades
//     fidelity;
//  2. total allocation across all concurrent retrievals stays under
//     clients x RemoteCeilingBytes at every scale — the server's memory
//     ceiling is flat while the payload grows 100x;
//  3. every stream's length matches the in-process byte count.
//
// Fresh system per scale for the same reason as StreamFlatRSS: semantic
// base dedup would otherwise collapse the scales onto one blob. The
// retrieval cache is pinned off; a warm cache would serve the very
// traffic whose assembly-under-concurrency cost is being measured.
func (r *Runner) RemoteFlatRSS(topBulk int64, clients int) (*RemoteResult, error) {
	if topBulk <= 0 {
		topBulk = 64 << 20
	}
	if clients <= 0 {
		clients = 16
	}
	res := &RemoteResult{Backend: r.Backend, Clients: clients}
	ctx := context.Background()
	for _, bulk := range []int64{topBulk / 100, topBulk / 10, topBulk} {
		sys, err := r.NewCoreSystem(core.Options{CacheBytes: -1})
		if err != nil {
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv := &http.Server{Handler: server.New(sys)}
		go srv.Serve(ln)
		cl := client.New(ln.Addr().String(), client.Options{Timeout: 10 * time.Minute, Retries: 1})

		name := fmt.Sprintf("remote-bulk-%dM", bulk>>20)
		sc, err := r.remoteScale(ctx, sys, cl, name, bulk, clients)
		cl.Close()
		srv.Close()
		if err != nil {
			return nil, err
		}
		res.Scales = append(res.Scales, *sc)
	}
	return res, nil
}

func (r *Runner) remoteScale(ctx context.Context, sys *core.System, cl *client.Client, name string, bulk int64, clients int) (*RemoteScale, error) {
	img, err := buildBulkImage(name, bulk)
	if err != nil {
		return nil, err
	}
	if _, err := cl.Publish(ctx, func(w io.Writer) error { return wire.WriteImage(w, img) }); err != nil {
		return nil, fmt.Errorf("bench: remote publish %s: %w", name, err)
	}

	// In-process reference stream: the fidelity yardstick.
	ref := &shaCountWriter{h: sha256.New()}
	if _, _, err := sys.RetrieveTo(ref, name); err != nil {
		return nil, fmt.Errorf("bench: reference retrieve %s: %w", name, err)
	}
	refSum := fmt.Sprintf("%x", ref.h.Sum(nil))

	// Warm-up: one remote retrieval populates connection pools, chunk
	// pools and every code path, so the measured burst sees steady state.
	if _, _, err := cl.Retrieve(ctx, name, io.Discard); err != nil {
		return nil, fmt.Errorf("bench: remote warmup %s: %w", name, err)
	}

	sc := &RemoteScale{BulkBytes: bulk, ImageBytes: ref.n}
	start := time.Now()
	sc.TotalAlloc, err = measureAlloc(func() error {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sink := &shaCountWriter{h: sha256.New()}
				n, _, err := cl.Retrieve(ctx, name, sink)
				if err != nil {
					errs[i] = err
					return
				}
				if n != ref.n || fmt.Sprintf("%x", sink.h.Sum(nil)) != refSum {
					errs[i] = fmt.Errorf("client %d: remote stream differs from in-process retrieval (%d vs %d bytes)", i, n, ref.n)
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
	sc.Wall = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("bench: remote retrieve %s: %w", name, err)
	}
	sc.PerClient = sc.TotalAlloc / int64(clients)
	if ceiling := int64(clients) * RemoteCeilingBytes; sc.TotalAlloc > ceiling {
		return nil, fmt.Errorf("bench: remote %s: %d concurrent retrievals allocated %d bytes, ceiling %d",
			name, clients, sc.TotalAlloc, ceiling)
	}
	return sc, nil
}
