package bench

import (
	"testing"
)

// TestStreamExperiment runs the stream experiment on the configured
// backend at a 64 MiB top scale (1x / 10x / 100x bulk growth). The
// experiment self-enforces its gates — streamed allocation under the
// constant ceiling at every scale, legacy/streamed ratio of at least
// StreamMinRatio at the largest, and byte-identical output between the
// streamed and materializing paths — so any violation surfaces as an
// error here. The memory flatness is additionally asserted across the
// scales: allocation at 100x bulk must stay within a small constant
// multiple of allocation at 1x, or the path has started scaling with
// image size even if it still fits the absolute ceiling.
func TestStreamExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("stream experiment skipped in -short mode")
	}
	r := NewRunner()
	res, err := r.StreamFlatRSS(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.CloseAll(); err != nil {
			t.Errorf("CloseAll: %v", err)
		}
	}()
	if len(res.Scales) != 3 {
		t.Fatalf("got %d scales, want 3\n%s", len(res.Scales), res)
	}
	first, last := res.Scales[0], res.Scales[len(res.Scales)-1]
	// The residual growth across 100x of bulk is the per-cluster lazy
	// directory (~0.1% of image size); 4x headroom over the smallest
	// scale bounds it without inviting flakes.
	if last.StreamedAlloc > 4*first.StreamedAlloc {
		t.Fatalf("streamed allocation grew %.1fx across 100x bulk growth (%d -> %d bytes)\n%s",
			float64(last.StreamedAlloc)/float64(first.StreamedAlloc),
			first.StreamedAlloc, last.StreamedAlloc, res)
	}
	t.Logf("\n%s", res)
}
