package bench

import (
	"bytes"
	"fmt"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/retrievecache"
)

// DefaultCacheBytes is the retrieval-cache budget the cachehit experiment
// uses when the runner does not set one: large enough to hold the whole
// Table II catalog, so the experiment measures hit latency, not eviction
// policy.
const DefaultCacheBytes = 256 << 20

// CacheHitRow is one image's cold-vs-warm measurement.
type CacheHitRow struct {
	Image string
	// ColdWall is the wall-clock time of the first retrieval (a cache
	// miss that runs the full assembly and seeds the cache); WarmWall is
	// the mean wall-clock time of the subsequent cache hits.
	ColdWall, WarmWall time.Duration
	// ModeledS is the modeled retrieval seconds — identical cold and warm
	// by construction (the experiment fails otherwise), so one column
	// suffices.
	ModeledS float64
}

// Speedup is cold over warm wall-clock time.
func (r CacheHitRow) Speedup() float64 {
	if r.WarmWall <= 0 {
		return 0
	}
	return float64(r.ColdWall) / float64(r.WarmWall)
}

// CacheHitResult reports the cachehit experiment: repeat retrieval of the
// Table II catalog with the retrieval cache on, cold vs warm.
type CacheHitResult struct {
	Backend    string
	CacheBytes int64
	WarmIters  int
	Rows       []CacheHitRow
	// ColdTotal and WarmTotal aggregate the per-image walls (warm already
	// averaged per image), so Speedup is the catalog-level answer to "how
	// much faster is a repeat instantiation?".
	ColdTotal, WarmTotal time.Duration
	Stats                retrievecache.Stats
}

// Speedup is the aggregate cold/warm wall-clock ratio.
func (c *CacheHitResult) Speedup() float64 {
	if c.WarmTotal <= 0 {
		return 0
	}
	return float64(c.ColdTotal) / float64(c.WarmTotal)
}

// String renders the experiment as a table.
func (c *CacheHitResult) String() string {
	backend := c.Backend
	if backend == "" {
		backend = "memory"
	}
	tbl := &Table{
		Title: fmt.Sprintf("Retrieval cache: cold vs warm, 19 VMIs (%s backend, %d MiB cache, warm = mean of %d hits)",
			backend, c.CacheBytes>>20, c.WarmIters),
		Columns: []string{"VMI", "cold[ms]", "warm[ms]", "speedup", "modeled[s]"},
	}
	for _, row := range c.Rows {
		tbl.AddRow(row.Image,
			fmt.Sprintf("%.2f", row.ColdWall.Seconds()*1e3),
			fmt.Sprintf("%.2f", row.WarmWall.Seconds()*1e3),
			fmt.Sprintf("%.1fx", row.Speedup()),
			fmt.Sprintf("%.1f", row.ModeledS))
	}
	tbl.AddRow("TOTAL",
		fmt.Sprintf("%.2f", c.ColdTotal.Seconds()*1e3),
		fmt.Sprintf("%.2f", c.WarmTotal.Seconds()*1e3),
		fmt.Sprintf("%.1fx", c.Speedup()),
		"")
	return tbl.String() + fmt.Sprintf(
		"cache: %d hits, %d misses, %d entries, %.1f MiB of %.1f MiB\n",
		c.Stats.Hits, c.Stats.Misses, c.Stats.Entries,
		float64(c.Stats.Bytes)/(1<<20), float64(c.Stats.MaxBytes)/(1<<20))
}

// CacheHit publishes the Table II catalog into a cache-enabled system on
// the runner's backend, then retrieves every image once cold and
// warmIters times warm, measuring wall-clock time. It verifies the
// transparency contract as it goes: warm retrievals must return
// byte-identical images and identical modeled seconds, or the experiment
// errors out — a benchmark that silently measured wrong bytes would be
// worse than none.
func (r *Runner) CacheHit(warmIters int) (*CacheHitResult, error) {
	if warmIters <= 0 {
		warmIters = 3
	}
	opts := core.Options{CacheBytes: r.CacheBytes}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	sys, err := r.NewCoreSystem(opts)
	if err != nil {
		return nil, err
	}
	res := &CacheHitResult{Backend: r.Backend, CacheBytes: opts.CacheBytes, WarmIters: warmIters}

	tpls := catalog.Paper19()
	for _, t := range tpls {
		img, err := r.WL.Image(t)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Publish(img); err != nil {
			return nil, fmt.Errorf("bench: cachehit publish %s: %w", t.Name, err)
		}
	}

	for _, t := range tpls {
		start := time.Now()
		coldImg, coldRep, err := sys.Retrieve(t.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: cachehit cold retrieve %s: %w", t.Name, err)
		}
		row := CacheHitRow{Image: t.Name, ColdWall: time.Since(start), ModeledS: coldRep.Seconds()}
		coldBytes := coldImg.Disk.Serialize()

		var warm time.Duration
		for i := 0; i < warmIters; i++ {
			start = time.Now()
			warmImg, warmRep, err := sys.Retrieve(t.Name)
			if err != nil {
				return nil, fmt.Errorf("bench: cachehit warm retrieve %s: %w", t.Name, err)
			}
			warm += time.Since(start)
			if got := warmRep.Seconds(); got != row.ModeledS {
				return nil, fmt.Errorf("bench: cachehit %s: warm modeled %.6fs != cold %.6fs — cache is not cost-transparent",
					t.Name, got, row.ModeledS)
			}
			if i == 0 && !bytes.Equal(warmImg.Disk.Serialize(), coldBytes) {
				return nil, fmt.Errorf("bench: cachehit %s: warm image bytes differ from cold", t.Name)
			}
		}
		row.WarmWall = warm / time.Duration(warmIters)
		res.ColdTotal += row.ColdWall
		res.WarmTotal += row.WarmWall
		res.Rows = append(res.Rows, row)
	}

	st, ok := sys.CacheStats()
	if !ok {
		return nil, fmt.Errorf("bench: cachehit: cache unexpectedly disabled")
	}
	if want := int64(len(tpls) * warmIters); st.Hits != want {
		return nil, fmt.Errorf("bench: cachehit: %d hits, want %d — warm retrievals did not come from the cache", st.Hits, want)
	}
	res.Stats = st.Stats
	return res, nil
}
