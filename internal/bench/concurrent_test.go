package bench

import (
	"runtime"
	"testing"
)

// TestConcurrentPublishScenario runs the concurrent-workload scenario and
// checks its invariants: the parallel batch reaches the same deduplicated
// repository, modeled costs stay in the sequential band, and (on multicore
// hosts) the worker pool beats the sequential path in wall-clock time.
func TestConcurrentPublishScenario(t *testing.T) {
	res, err := sharedRunner.ConcurrentPublish(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 19 {
		t.Fatalf("images = %d, want the Table II catalog (19)", res.Images)
	}
	if res.SequentialWall <= 0 || res.ParallelWall <= 0 {
		t.Fatalf("non-positive wall times: %+v", res)
	}

	// Semantic dedup must hold under concurrency: the parallel repository
	// ends within a few percent of the sequential one (base-image
	// selection may resolve replacement chains slightly differently
	// depending on commit order).
	if res.SequentialRepoGB <= 0 {
		t.Fatalf("sequential repo empty: %+v", res)
	}
	ratio := res.ParallelRepoGB / res.SequentialRepoGB
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("parallel repo %.2f GB vs sequential %.2f GB (ratio %.3f), dedup degraded",
			res.ParallelRepoGB, res.SequentialRepoGB, ratio)
	}

	// Modeled time: concurrency may add duplicate repack work (two
	// publishes racing on one package) but never removes modeled work
	// wholesale; keep it within a sane band of the sequential total.
	mratio := res.ParallelModeled / res.SequentialModeled
	if mratio < 0.95 || mratio > 1.5 {
		t.Errorf("parallel modeled %.1fs vs sequential %.1fs (ratio %.3f)",
			res.ParallelModeled, res.SequentialModeled, mratio)
	}

	seqT, parT := res.Throughput()
	t.Logf("sequential %.3fs (%.2f VMI/s), parallel(%d) %.3fs (%.2f VMI/s), speedup %.2fx",
		res.SequentialWall.Seconds(), seqT, res.Clients,
		res.ParallelWall.Seconds(), parT, res.Speedup())

	// The wall-clock win needs real cores; on a single-CPU host the pool
	// can only interleave, so the strict assertion is multicore-only.
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skipf("single CPU (NumCPU=%d): skipping strict wall-clock speedup assertion", runtime.NumCPU())
	}
	if res.Speedup() <= 1.0 {
		t.Errorf("parallel batch publish did not beat sequential: speedup %.2fx (seq %v, par %v)",
			res.Speedup(), res.SequentialWall, res.ParallelWall)
	}
}
