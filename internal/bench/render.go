package bench

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one line of a figure.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a line/bar chart rendered as a table: one row per x point, one
// column per series.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
}

// Final returns the last y value of the named series, or NaN.
func (f *Figure) Final(label string) float64 {
	for _, s := range f.Series {
		if s.Label == label && len(s.Y) > 0 {
			return s.Y[len(s.Y)-1]
		}
	}
	return nan
}

// At returns series label's value at x index i, or NaN.
func (f *Figure) At(label string, i int) float64 {
	for _, s := range f.Series {
		if s.Label == label && i >= 0 && i < len(s.Y) {
			return s.Y[i]
		}
	}
	return nan
}

var nan = math.NaN()

// Table renders the figure data as a table.
func (f *Figure) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s  (y: %s)", f.Title, f.YLabel),
		Columns: append([]string{f.XLabel}, labels(f.Series)...),
	}
	for i, x := range f.X {
		row := []string{x}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.2f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

// String renders the figure as its table form.
func (f *Figure) String() string { return f.Table().String() }
