package bench

import (
	"crypto/sha256"
	"fmt"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/vmirepo"
)

// ChurnRound is one publish/remove cycle's footprint measurement, taken
// after the removals' releases have been committed by Sync.
type ChurnRound struct {
	// LiveBytes is the deduplicated live repository size (identical on
	// both systems by construction).
	LiveBytes int64
	// DiskOn/DeadOn are the physical and reclaimable blob bytes of the
	// compaction-enabled repository; DiskOff/DeadOff of the disabled one.
	DiskOn, DeadOn   int64
	DiskOff, DeadOff int64
}

// ChurnResult reports the churn scenario: an identical publish/remove
// loop driven against two disk-backed repositories — one with dead-ratio
// compaction enabled (the default), one with the automatic trigger
// disabled — holding a fixed keeper set live throughout. The claim under
// test is the storage bound: with compaction on, steady-state disk usage
// stays within 2x the live bytes; with it off, the same workload's
// garbage accumulates without bound (every round leaks one churn set).
type ChurnResult struct {
	Keepers, Churners, Rounds int
	RoundStats                []ChurnRound
	// SegmentsCompacted/BytesReclaimed accumulate the enabled
	// repository's automatic compactions across the whole loop.
	SegmentsCompacted int
	BytesReclaimed    int64
	// Verified confirms every keeper retrieved byte-identically from
	// both repositories after the final round.
	Verified bool
}

// String renders the scenario as a table.
func (c *ChurnResult) String() string {
	tbl := &Table{
		Title: fmt.Sprintf("Churn: %d keepers live, %d images published+removed per round, %d rounds (disk backend)",
			c.Keepers, c.Churners, c.Rounds),
		Columns: []string{"round", "live[GB]", "compact-on disk[GB]", "ratio", "compact-off disk[GB]", "ratio"},
	}
	for i, r := range c.RoundStats {
		tbl.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.3f", paperGB(r.LiveBytes)),
			fmt.Sprintf("%.3f", paperGB(r.DiskOn)),
			fmt.Sprintf("%.2f", ratio(r.DiskOn, r.LiveBytes)),
			fmt.Sprintf("%.3f", paperGB(r.DiskOff)),
			fmt.Sprintf("%.2f", ratio(r.DiskOff, r.LiveBytes)))
	}
	verified := "keeper retrieval FAILED"
	if c.Verified {
		verified = "keepers byte-identical"
	}
	tbl.AddRow("compactions", fmt.Sprintf("%d segs", c.SegmentsCompacted),
		fmt.Sprintf("%.3f GB reclaimed", paperGB(c.BytesReclaimed)), "", "", verified)
	return tbl.String()
}

func ratio(disk, live int64) float64 {
	if live <= 0 {
		return 0
	}
	return float64(disk) / float64(live)
}

// churnBound is the steady-state gate: physical disk usage of the
// compaction-enabled repository must stay within this multiple of the
// live bytes once the loop has warmed up.
const churnBound = 2.0

// Churn runs the publish/remove churn loop for the given number of
// rounds (<=0 picks a default). It errors if the compaction-enabled
// repository ever exceeds the 2x-live disk bound after the first round,
// if the disabled repository fails to demonstrate the unbounded growth
// the bound protects against, or if any keeper image is not
// byte-identical across the two repositories at the end.
func (r *Runner) Churn(rounds int) (*ChurnResult, error) {
	if rounds <= 0 {
		rounds = 6
	}
	tpls := catalog.Paper19()
	if len(tpls) < 4 {
		return nil, fmt.Errorf("bench: churn needs at least 4 templates, have %d", len(tpls))
	}
	keepers := tpls[:4]
	// Each churn image carries user data unique to it — the one component
	// the repository must preserve verbatim (package content dedupes away
	// and system churn is discarded semantically), so every publish/remove
	// cycle strands real garbage on disk.
	const churnPerRound = 2
	churners := make([]catalog.Template, rounds*churnPerRound)
	for i := range churners {
		churners[i] = catalog.Template{
			Name:          fmt.Sprintf("churn-%03d", i+1),
			UserDataBytes: 512 << 20, // paper scale; ~512 KiB generated
			UserDataFiles: 256,
			SeriesSeed:    0xC4412100 + uint64(i),
			InstanceSeed:  0xC4412200 + uint64(i),
		}
	}

	// Small segments keep the compaction granularity fine enough that the
	// active (never-compacted) segment cannot dominate the bound.
	const segBytes = 256 << 10
	open := func(prefix string, deadRatio float64) (*core.System, error) {
		_, repo, err := r.NewDiskRepoOpts(prefix, vmirepo.OpenOptions{
			WALCompactBytes:      r.WALCompactBytes,
			BlobCompactDeadRatio: deadRatio,
			BlobMaxSegmentBytes:  segBytes,
		})
		if err != nil {
			return nil, err
		}
		return core.NewSystemWithRepo(repo, r.Dev, core.Options{}), nil
	}
	on, err := open("expelbench-churn-on-", 0) // default dead-ratio trigger
	if err != nil {
		return nil, err
	}
	onOpen := true
	defer func() {
		if onOpen {
			on.Close()
		}
	}()
	off, err := open("expelbench-churn-off-", -1) // automatic trigger disabled
	if err != nil {
		return nil, err
	}
	offOpen := true
	defer func() {
		if offOpen {
			off.Close()
		}
	}()
	both := map[string]*core.System{"on": on, "off": off}

	res := &ChurnResult{Keepers: len(keepers), Churners: churnPerRound, Rounds: rounds}
	for _, t := range keepers {
		for key, sys := range both {
			img, err := r.WL.Image(t)
			if err != nil {
				return nil, err
			}
			if _, err := sys.Publish(img); err != nil {
				return nil, fmt.Errorf("bench: churn publish keeper %s (%s): %w", t.Name, key, err)
			}
		}
	}

	for round := 1; round <= rounds; round++ {
		batch := churners[(round-1)*churnPerRound : round*churnPerRound]
		for _, t := range batch {
			img, err := r.WL.Builder().Build(t)
			if err != nil {
				return nil, err
			}
			for key, sys := range both {
				if _, err := sys.Publish(img.Clone()); err != nil {
					return nil, fmt.Errorf("bench: churn round %d publish %s (%s): %w", round, t.Name, key, err)
				}
			}
		}
		for _, t := range batch {
			for key, sys := range both {
				if err := sys.Remove(t.Name); err != nil {
					return nil, fmt.Errorf("bench: churn round %d remove %s (%s): %w", round, t.Name, key, err)
				}
			}
		}
		// One sync commits the round's appends and releases; on the
		// enabled system it also runs the dead-ratio compaction pass.
		for key, sys := range both {
			st, err := sys.Sync()
			if err != nil {
				return nil, fmt.Errorf("bench: churn round %d sync (%s): %w", round, key, err)
			}
			if key == "on" {
				res.SegmentsCompacted += st.Blobs.SegmentsCompacted
				res.BytesReclaimed += st.Blobs.BytesReclaimed
			}
		}

		onSt, offSt := on.Repo().Stats(), off.Repo().Stats()
		if onSt.TotalBytes != offSt.TotalBytes {
			return nil, fmt.Errorf("bench: churn round %d: live size diverged (%d vs %d)", round, onSt.TotalBytes, offSt.TotalBytes)
		}
		res.RoundStats = append(res.RoundStats, ChurnRound{
			LiveBytes: onSt.TotalBytes,
			DiskOn:    onSt.BlobDiskBytes, DeadOn: onSt.BlobDeadBytes,
			DiskOff: offSt.BlobDiskBytes, DeadOff: offSt.BlobDeadBytes,
		})
		// The first round may still be digesting the keeper bootstrap;
		// from the second on, the bound must hold.
		if round > 1 && ratio(onSt.BlobDiskBytes, onSt.TotalBytes) > churnBound {
			return res, fmt.Errorf("bench: churn round %d: compaction-on disk %d bytes exceeds %.1fx live %d bytes",
				round, onSt.BlobDiskBytes, churnBound, onSt.TotalBytes)
		}
	}

	// The disabled repository must show why the bound needs compaction:
	// its garbage grows with every round and ends both over the bound and
	// strictly above the enabled repository's footprint.
	last := res.RoundStats[len(res.RoundStats)-1]
	if ratio(last.DiskOff, last.LiveBytes) <= churnBound {
		return res, fmt.Errorf("bench: churn control failed: compaction-off disk %d bytes within %.1fx live %d bytes — workload generated no meaningful garbage",
			last.DiskOff, churnBound, last.LiveBytes)
	}
	if last.DiskOff <= last.DiskOn {
		return res, fmt.Errorf("bench: churn control failed: compaction-off disk %d not above compaction-on %d", last.DiskOff, last.DiskOn)
	}
	if res.SegmentsCompacted == 0 || res.BytesReclaimed == 0 {
		return res, fmt.Errorf("bench: churn loop triggered no compaction (segs %d, reclaimed %d)", res.SegmentsCompacted, res.BytesReclaimed)
	}

	// Fidelity: every keeper must retrieve byte-identically from both
	// repositories — compaction moved its records, never its bytes.
	for _, t := range keepers {
		sums := map[string][32]byte{}
		for key, sys := range both {
			h := sha256.New()
			if _, _, err := sys.RetrieveTo(h, t.Name); err != nil {
				return res, fmt.Errorf("bench: churn final retrieve %s (%s): %w", t.Name, key, err)
			}
			var sum [32]byte
			copy(sum[:], h.Sum(nil))
			sums[key] = sum
		}
		if sums["on"] != sums["off"] {
			return res, fmt.Errorf("bench: keeper %s diverged between compacted and uncompacted repositories", t.Name)
		}
	}
	res.Verified = true

	onOpen = false
	if err := on.Close(); err != nil {
		return res, fmt.Errorf("bench: churn close (on): %w", err)
	}
	offOpen = false
	if err := off.Close(); err != nil {
		return res, fmt.Errorf("bench: churn close (off): %w", err)
	}
	return res, nil
}
