package bench

import (
	"testing"
)

// TestRemoteExperiment runs the remote experiment on the configured
// backend at a 16 MiB top scale with 8 concurrent network clients. The
// experiment self-enforces byte identity against in-process retrieval
// and the flat per-client allocation ceiling; flatness is additionally
// asserted across the scales, like the stream experiment — if total
// allocation under the same client count grows with image bulk, the
// serving path has started materializing somewhere between the assembly
// and the socket.
func TestRemoteExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("remote experiment skipped in -short mode")
	}
	r := NewRunner()
	res, err := r.RemoteFlatRSS(16<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.CloseAll(); err != nil {
			t.Errorf("CloseAll: %v", err)
		}
	}()
	if len(res.Scales) != 3 {
		t.Fatalf("got %d scales, want 3\n%s", len(res.Scales), res)
	}
	first, last := res.Scales[0], res.Scales[len(res.Scales)-1]
	if last.TotalAlloc > 4*first.TotalAlloc {
		t.Fatalf("remote allocation grew %.1fx across 100x bulk growth (%d -> %d bytes)\n%s",
			float64(last.TotalAlloc)/float64(first.TotalAlloc),
			first.TotalAlloc, last.TotalAlloc, res)
	}
	t.Logf("\n%s", res)
}
