package bench

import (
	"strings"
	"testing"
)

// TestCacheHitExperiment runs the cachehit experiment on the configured
// backend (memory by default; CI's disk job sets EXPELBENCH_BACKEND=disk)
// and checks the acceptance property: warm retrieval of a repeated
// Table II image is at least 2x faster than cold in wall-clock time,
// while modeled seconds and image bytes stay identical (CacheHit itself
// errors on any transparency violation).
func TestCacheHitExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cachehit experiment skipped in -short mode")
	}
	r := NewRunner()
	res, err := r.CacheHit(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.CloseAll(); err != nil {
			t.Errorf("CloseAll: %v", err)
		}
	}()
	if len(res.Rows) != 19 {
		t.Fatalf("rows = %d, want the 19 Table II images", len(res.Rows))
	}
	if got := res.Speedup(); got < 2 {
		t.Fatalf("aggregate warm speedup %.2fx < 2x\n%s", got, res)
	}
	if res.Stats.Poisoned != 0 || res.Stats.Evictions != 0 {
		t.Fatalf("unexpected cache churn during the experiment: %+v", res.Stats)
	}
	out := res.String()
	for _, want := range []string{"Retrieval cache", "TOTAL", "cache:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
