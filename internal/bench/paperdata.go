package bench

// PaperRow holds the published Table II values for one VMI.
type PaperRow struct {
	Name      string
	MountedGB float64
	Files     int
	SimG      float64
	PublishS  float64
	RetrieveS float64
}

// PaperTableII reproduces Table II of the paper verbatim, used as the
// reference column in the regenerated table and in EXPERIMENTS.md.
var PaperTableII = []PaperRow{
	{"Mini", 1.913, 75749, 0.00, 39.52, 24.64},
	{"Redis", 1.914, 75796, 0.97, 10.28, 22.05},
	{"PostgreSql", 1.963, 77497, 0.59, 39.699, 33.91},
	{"Django", 1.969, 79751, 0.71, 18.916, 27.30},
	{"RabbitMQ", 1.956, 77596, 0.56, 25.620, 33.87},
	{"Base", 1.986, 78471, 0.89, 42.236, 47.17},
	{"CouchDB", 1.965, 77725, 0.70, 37.99, 42.58},
	{"Cassandra", 2.531, 79740, 0.71, 42.58, 35.66},
	{"Tomcat", 2.049, 76356, 0.37, 60.65, 36.37},
	{"Lapp", 2.107, 77816, 0.53, 56.71, 61.79},
	{"Lemp", 2.112, 77360, 0.97, 25.093, 57.11},
	{"MongoDb", 2.110, 75820, 0.15, 90.465, 29.33},
	{"OwnCloud", 2.378, 90667, 0.76, 80.942, 100.43},
	{"Desktop", 2.233, 90338, 0.50, 201.721, 102.34},
	{"ApacheSolr", 2.338, 79161, 0.84, 71.555, 92.57},
	{"IDE", 2.727, 81200, 0.52, 135.333, 63.62},
	{"Jenkins", 2.515, 79695, 0.87, 63.504, 81.24},
	{"Redmine", 2.363, 95309, 0.79, 112.908, 97.08},
	{"ElasticStack", 2.671, 103719, 0.64, 166.001, 99.91},
}

// PaperTableIIRow returns the reference row for a VMI name.
func PaperTableIIRow(name string) (PaperRow, bool) {
	for _, r := range PaperTableII {
		if r.Name == name {
			return r, true
		}
	}
	return PaperRow{}, false
}

// PaperFig3 records the cumulative repository sizes (GB) the paper reports
// at the end of each Fig. 3 scenario.
var PaperFig3 = map[string]map[string]float64{
	"fig3a": { // 4 VMIs
		"qcow2": 8.85, "qcow2+gzip": 3.2, "mirage": 3.4, "hemera": 3.4, "expelliarmus": 2.3,
	},
	"fig3b": { // 19 VMIs
		"qcow2": 41.81, "qcow2+gzip": 15.0, "mirage": 8.81, "hemera": 8.81, "expelliarmus": 2.75,
	},
	"fig3c": { // 40 IDE builds
		"qcow2": 109.92, "qcow2+gzip": 48.0, "mirage": 6.4, "hemera": 6.4, "expelliarmus": 2.94,
	},
}

// PaperHeadline holds the §VI-B headline ratios for the 40-IDE scenario:
// Expelliarmus is 16x better than gzip and 2.2x better than Mirage/Hemera,
// which are in turn 7.5x better than gzip.
var PaperHeadline = struct {
	ExpelVsGzip   float64
	ExpelVsMirage float64
	MirageVsGzip  float64
}{16, 2.2, 7.5}
