package bench

import "testing"

// TestLifecycleScenario runs the lifecycle gate on the environment's
// backend (memory by default; CI's disk leg sets EXPELBENCH_BACKEND):
// TTL expiry through the Remove path, vacuum convergence, per-tenant
// accounting returning to keeper-only values, keeper byte-fidelity, and
// the quota-exceeded rejection over a real loopback connection.
func TestLifecycleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("lifecycle scenario skipped in -short mode")
	}
	r := NewRunner()
	r.StoreRoot = t.TempDir()
	res, err := r.Lifecycle(2)
	if err != nil {
		t.Fatalf("Lifecycle: %v", err)
	}
	if err := r.CloseAll(); err != nil {
		t.Fatalf("CloseAll: %v", err)
	}
	if !res.Verified || !res.WireQuota {
		t.Fatalf("gates not green: %+v", res)
	}
	if res.Expired != 4 {
		t.Fatalf("want 2 tenants x 2 TTL'd images expired, got %d", res.Expired)
	}
	for _, tn := range res.Tenants {
		if tn.ChargeBefore <= 0 || tn.ChargeAfter != tn.ChargeBefore {
			t.Fatalf("tenant accounting wrong: %+v", tn)
		}
	}
	if s := res.String(); s == "" {
		t.Fatalf("empty rendering")
	}
}

// TestLifecycleScenarioDisk pins the physical reclamation bound
// regardless of the environment: on the disk backend, expiry + vacuum
// must land the footprint within LifecycleDiskBound of the surviving
// live bytes.
func TestLifecycleScenarioDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("lifecycle disk scenario skipped in -short mode")
	}
	r := NewRunner()
	r.Backend = "disk"
	r.StoreRoot = t.TempDir()
	res, err := r.Lifecycle(2)
	if err != nil {
		t.Fatalf("Lifecycle (disk): %v", err)
	}
	if err := r.CloseAll(); err != nil {
		t.Fatalf("CloseAll: %v", err)
	}
	if res.DiskGB <= 0 || res.Ratio <= 0 || res.Ratio > LifecycleDiskBound {
		t.Fatalf("disk footprint gate not exercised: disk %.3f GB, ratio %.2f", res.DiskGB, res.Ratio)
	}
}
