package bench

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/client"
	"expelliarmus/internal/core"
	"expelliarmus/internal/server"
	"expelliarmus/internal/vmirepo"
	"expelliarmus/internal/wire"
)

// LifecycleDiskBound is the reclamation gate: after the TTL sweep and the
// vacuum, the repository's physical blob bytes must be within this
// multiple of the surviving live bytes — expiry plus vacuum really gave
// the dead images' bytes back to the disk, not just hid their names.
const LifecycleDiskBound = 1.1

// LifecycleTenant is one tenant's row of the lifecycle experiment.
type LifecycleTenant struct {
	Tenant  string
	Keeper  string // the image that never expires
	Expired int    // TTL'd images this tenant published and lost to the sweep
	// ChargeBefore/ChargeAfter are the tenant's accounted live bytes right
	// after its keeper publish and after expiry+vacuum; the gate requires
	// them equal — expiry credited back exactly what the TTL'd images cost.
	ChargeBefore, ChargeAfter int64
}

// LifecycleResult reports the lifecycle experiment.
type LifecycleResult struct {
	Backend  string
	Tenants  []LifecycleTenant
	Expired  int
	Vacuum   core.VacuumStats
	Vacuum2  core.VacuumStats // second pass; all-zero proves convergence
	LiveGB   float64
	DiskGB   float64 // 0 on the memory backend
	Ratio    float64 // DiskBytes / LiveBytes (disk backend only)
	Wall     time.Duration
	Verified bool // keepers byte-identical before and after expiry+vacuum
	// WireQuota confirms the quota-exceeded rejection survived a real
	// network round trip as the typed error, after an in-quota publish to
	// the same tenant succeeded.
	WireQuota bool
}

// String renders the experiment as a table.
func (r *LifecycleResult) String() string {
	backend := r.Backend
	if backend == "" {
		backend = "memory"
	}
	tbl := &Table{
		Title: fmt.Sprintf("Lifecycle: %d tenants, %d images expired, vacuum reclaimed %d pkgs + %d blobs (%s backend)",
			len(r.Tenants), r.Expired, r.Vacuum.PackagesRemoved, r.Vacuum.BlobsReleased, backend),
		Columns: []string{"tenant", "keeper", "expired", "charge-before[GB]", "charge-after[GB]"},
	}
	for _, t := range r.Tenants {
		tbl.AddRow(t.Tenant, t.Keeper, fmt.Sprintf("%d", t.Expired),
			fmt.Sprintf("%.3f", paperGB(t.ChargeBefore)),
			fmt.Sprintf("%.3f", paperGB(t.ChargeAfter)))
	}
	verified := "keeper retrieval FAILED"
	if r.Verified {
		verified = "keepers byte-identical"
	}
	quota := "wire quota leg FAILED"
	if r.WireQuota {
		quota = "quota-exceeded over the wire"
	}
	foot := fmt.Sprintf("%.3f GB live", r.LiveGB)
	if r.DiskGB > 0 {
		foot = fmt.Sprintf("%.3f GB live, %.3f GB disk (%.2fx <= %.1fx)", r.LiveGB, r.DiskGB, r.Ratio, LifecycleDiskBound)
	}
	tbl.AddRow("gates", foot, fmt.Sprintf("%.1fs", r.Wall.Seconds()), verified, quota)
	return tbl.String()
}

// Lifecycle runs the image-lifecycle gate: each of `tenants` tenants
// publishes one keeper (no TTL) and two TTL'd images carrying unique
// user data (real garbage the repository must later give back), the TTL
// sweep expires every TTL'd image, and a vacuum reclaims the remains.
// Gates, in order: expired images answer ErrNotFound (not corruption);
// per-tenant accounting returns exactly to its keeper-only value; on the
// disk backend the physical footprint lands within LifecycleDiskBound of
// the surviving live bytes; every keeper retrieves byte-identically to
// its pre-expiry stream; a second vacuum reclaims nothing; and a
// loopback-HTTP quota leg rejects an over-quota publish with the typed
// quota-exceeded error after an in-quota publish succeeded.
func (r *Runner) Lifecycle(tenants int) (*LifecycleResult, error) {
	if tenants <= 0 {
		tenants = 3
	}
	tpls := catalog.Paper19()
	if tenants > len(tpls)-1 {
		tenants = len(tpls) - 1 // one template is reserved for the rejected publish
	}
	start := time.Now()

	// Backend-selected system; on disk, small segments keep the
	// footprint gate's granularity fine (as in the churn experiment).
	// The one-byte quota for "blocked" guarantees the rejected-publish
	// leg below strands real pre-commit garbage for the vacuum.
	opts := core.Options{TenantQuotas: map[string]int64{"blocked": 1}}
	var sys *core.System
	if r.Backend == "disk" {
		_, repo, err := r.NewDiskRepoOpts("expelbench-lifecycle-", vmirepo.OpenOptions{
			WALCompactBytes:     r.WALCompactBytes,
			BlobMaxSegmentBytes: 256 << 10,
		})
		if err != nil {
			return nil, err
		}
		sys = core.NewSystemWithRepo(repo, r.Dev, opts)
		r.mu.Lock()
		r.opened = append(r.opened, sys)
		r.mu.Unlock()
	} else {
		var err error
		sys, err = r.NewCoreSystem(opts)
		if err != nil {
			return nil, err
		}
	}

	res := &LifecycleResult{Backend: r.Backend}
	const clock = int64(1000)
	const expPerTenant = 2

	// Keepers first; their charges are the accounting baseline the sweep
	// must return each tenant to.
	for i := 0; i < tenants; i++ {
		tenant := fmt.Sprintf("tenant-%02d", i+1)
		img, err := r.WL.Image(tpls[i])
		if err != nil {
			return nil, err
		}
		if _, err := sys.PublishWith(img, core.PublishOpts{Tenant: tenant}); err != nil {
			return nil, fmt.Errorf("bench: lifecycle publish keeper %s: %w", tpls[i].Name, err)
		}
		res.Tenants = append(res.Tenants, LifecycleTenant{
			Tenant:       tenant,
			Keeper:       tpls[i].Name,
			ChargeBefore: sys.TenantStats()[tenant],
		})
	}

	// TTL'd images: unique user data per image, so every expiry strands
	// real bytes only the vacuum's sweep can account for reclaiming.
	var doomed []string
	for i := range res.Tenants {
		for j := 0; j < expPerTenant; j++ {
			t := catalog.Template{
				Name:          fmt.Sprintf("ttl-%02d-%d", i+1, j+1),
				UserDataBytes: 512 << 20, // paper scale; ~512 KiB generated
				UserDataFiles: 256,
				SeriesSeed:    0x11FE0100 + uint64(i*expPerTenant+j),
				InstanceSeed:  0x11FE0200 + uint64(i*expPerTenant+j),
			}
			img, err := r.WL.Builder().Build(t)
			if err != nil {
				return nil, err
			}
			opts := core.PublishOpts{Tenant: res.Tenants[i].Tenant, ExpiresAt: clock + int64(j+1)}
			if _, err := sys.PublishWith(img, opts); err != nil {
				return nil, fmt.Errorf("bench: lifecycle publish %s: %w", t.Name, err)
			}
			doomed = append(doomed, t.Name)
			res.Tenants[i].Expired++
		}
	}
	if sys.Repo().Persistent() {
		if _, err := sys.Sync(); err != nil {
			return nil, fmt.Errorf("bench: lifecycle sync: %w", err)
		}
	}

	// Reference streams of the keepers before anything is reclaimed.
	refSums := map[string]string{}
	for _, t := range res.Tenants {
		sink := &shaCountWriter{h: sha256.New()}
		if _, _, err := sys.RetrieveTo(sink, t.Keeper); err != nil {
			return nil, fmt.Errorf("bench: lifecycle reference retrieve %s: %w", t.Keeper, err)
		}
		refSums[t.Keeper] = fmt.Sprintf("%x", sink.h.Sum(nil))
	}

	// An over-quota publish is rejected at commit time, after its
	// packages and user data streamed in — stranding exactly the
	// pre-commit garbage the vacuum exists to reclaim.
	rej, err := r.WL.Image(tpls[tenants])
	if err != nil {
		return nil, err
	}
	if _, err := sys.PublishWith(rej, core.PublishOpts{Tenant: "blocked"}); !errors.Is(err, vmirepo.ErrQuotaExceeded) {
		return nil, fmt.Errorf("bench: lifecycle over-quota publish answered %v, want %v", err, vmirepo.ErrQuotaExceeded)
	}

	// The sweep. Every TTL lands at or before clock+expPerTenant.
	expired, err := sys.ExpireAt(clock + expPerTenant)
	if err != nil {
		return nil, fmt.Errorf("bench: lifecycle expire: %w", err)
	}
	sort.Strings(expired)
	sort.Strings(doomed)
	if fmt.Sprint(expired) != fmt.Sprint(doomed) {
		return nil, fmt.Errorf("bench: lifecycle expired %v, want %v", expired, doomed)
	}
	res.Expired = len(expired)
	for _, name := range expired {
		if _, _, err := sys.Retrieve(name); !errors.Is(err, vmirepo.ErrNotFound) {
			return nil, fmt.Errorf("bench: expired %s answered %v, want %v", name, err, vmirepo.ErrNotFound)
		}
	}

	// Vacuum gives the bytes back; a second pass must find nothing.
	res.Vacuum, err = sys.Vacuum()
	if err != nil {
		return nil, fmt.Errorf("bench: lifecycle vacuum: %w", err)
	}
	res.Vacuum2, err = sys.Vacuum()
	if err != nil {
		return nil, fmt.Errorf("bench: lifecycle second vacuum: %w", err)
	}
	if v := res.Vacuum2; v.PackagesRemoved != 0 || v.UserDataRemoved != 0 || v.MetaRemoved != 0 || v.BlobsReleased != 0 {
		return nil, fmt.Errorf("bench: lifecycle vacuum did not converge: second pass reclaimed %+v", v)
	}
	if res.Vacuum.PackagesRemoved == 0 || res.Vacuum.BytesReclaimed <= 0 {
		return nil, fmt.Errorf("bench: lifecycle vacuum reclaimed nothing from the rejected publish: %+v", res.Vacuum)
	}

	// Accounting gate: each tenant is back to exactly its keeper charge.
	for i := range res.Tenants {
		res.Tenants[i].ChargeAfter = sys.TenantStats()[res.Tenants[i].Tenant]
		if res.Tenants[i].ChargeAfter != res.Tenants[i].ChargeBefore {
			return res, fmt.Errorf("bench: lifecycle tenant %s charged %d after expiry, want keeper-only %d",
				res.Tenants[i].Tenant, res.Tenants[i].ChargeAfter, res.Tenants[i].ChargeBefore)
		}
	}

	// Footprint gate (disk backend): the survivors' bytes plus bounded
	// slack is all the disk may still hold.
	st := sys.Repo().Stats()
	res.LiveGB = paperGB(st.TotalBytes)
	if r.Backend == "disk" {
		res.DiskGB = paperGB(st.BlobDiskBytes)
		res.Ratio = ratio(st.BlobDiskBytes, st.TotalBytes)
		if res.Ratio > LifecycleDiskBound {
			return res, fmt.Errorf("bench: lifecycle disk %d bytes is %.2fx live %d bytes, bound %.1fx",
				st.BlobDiskBytes, res.Ratio, st.TotalBytes, LifecycleDiskBound)
		}
	}

	// Fidelity gate: keepers stream byte-identically to their pre-expiry
	// reference.
	for _, t := range res.Tenants {
		sink := &shaCountWriter{h: sha256.New()}
		if _, _, err := sys.RetrieveTo(sink, t.Keeper); err != nil {
			return res, fmt.Errorf("bench: lifecycle final retrieve %s: %w", t.Keeper, err)
		}
		if got := fmt.Sprintf("%x", sink.h.Sum(nil)); got != refSums[t.Keeper] {
			return res, fmt.Errorf("bench: keeper %s changed across expiry+vacuum", t.Keeper)
		}
	}
	res.Verified = true

	if err := r.lifecycleWireQuota(); err != nil {
		return res, err
	}
	res.WireQuota = true
	res.Wall = time.Since(start)
	return res, nil
}

// lifecycleWireQuota is the network leg: against a loopback expelserverd
// handler with a one-image quota for tenant "capped", the first publish
// charged to it succeeds and the second is rejected with the typed
// quota-exceeded error — the rejection must survive the HTTP round trip.
func (r *Runner) lifecycleWireQuota() error {
	// Measure one image's charge on a throwaway system, then cap the
	// tenant at exactly that.
	probe, err := r.WL.Image(catalog.Paper19()[0])
	if err != nil {
		return err
	}
	psys := core.NewSystem(r.Dev, core.Options{})
	if _, err := psys.PublishWith(probe, core.PublishOpts{Tenant: "probe"}); err != nil {
		return fmt.Errorf("bench: lifecycle quota probe: %w", err)
	}
	quota := psys.TenantStats()["probe"]
	if quota <= 0 {
		return fmt.Errorf("bench: lifecycle quota probe charged %d bytes", quota)
	}

	qsys := core.NewSystem(r.Dev, core.Options{TenantQuotas: map[string]int64{"capped": quota}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: server.New(qsys)}
	go srv.Serve(ln)
	defer srv.Close()
	cl := client.New("http://"+ln.Addr().String(), client.Options{Timeout: time.Minute})
	defer cl.Close()
	ctx := context.Background()

	encode := func(i int) func(io.Writer) error {
		return func(w io.Writer) error {
			img, err := r.WL.Image(catalog.Paper19()[i])
			if err != nil {
				return err
			}
			return wire.WriteImageMeta(w, img, wire.PublishMeta{Tenant: "capped"})
		}
	}
	if _, err := cl.Publish(ctx, encode(0)); err != nil {
		return fmt.Errorf("bench: lifecycle in-quota publish over the wire: %w", err)
	}
	_, err = cl.Publish(ctx, encode(1))
	if !errors.Is(err, vmirepo.ErrQuotaExceeded) {
		return fmt.Errorf("bench: lifecycle over-quota publish answered %v, want %v", err, vmirepo.ErrQuotaExceeded)
	}
	// The rejected publish must not have changed the repository.
	if got := qsys.TenantStats()["capped"]; got != quota {
		return fmt.Errorf("bench: rejected publish changed capped tenant's charge: %d, want %d", got, quota)
	}
	return nil
}
