package bench

import "testing"

// TestSyncDeltaExperiment runs the sync-cost scenario and pins the PR's
// headline acceptance criterion at system level: after the catalog load,
// bytes written per Sync are O(delta) — a single-image sync appends a
// WAL batch at least 5x smaller than the full metadata rewrite the
// pre-WAL layout paid on every Sync (the experiment itself errors below
// 5x; the ratio here is asserted far higher because a single-image delta
// is a few records, not a few percent of the catalog).
func TestSyncDeltaExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("sync scenario skipped in -short mode")
	}
	r := NewRunner()
	r.StoreRoot = t.TempDir()
	res, err := r.SyncDelta(3)
	if err != nil {
		t.Fatalf("SyncDelta: %v", err)
	}
	if !res.CatalogSync.Compacted || res.CatalogSync.MetaBytes == 0 {
		t.Fatalf("catalog sync did not compact the bulk-load delta: %+v", res.CatalogSync)
	}
	for i, b := range res.DeltaMetaBytes {
		if b == 0 {
			t.Fatalf("delta sync %d wrote no metadata", i+1)
		}
		if b >= res.SnapshotBytes {
			t.Fatalf("delta sync %d wrote %d bytes, not smaller than the %d-byte full rewrite",
				i+1, b, res.SnapshotBytes)
		}
	}
	if res.BytesRatio < 5 {
		t.Fatalf("full-rewrite/delta ratio %.1fx below the 5x acceptance floor", res.BytesRatio)
	}
	if !res.RetrievedAll {
		t.Fatalf("not all VMIs retrievable after reopen")
	}
	if s := res.String(); s == "" {
		t.Fatalf("empty rendering")
	}
}
