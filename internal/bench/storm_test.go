package bench

import (
	"strings"
	"testing"
)

// TestStormExperiment runs the storm experiment on the configured backend
// and checks the acceptance contracts: cached hot-image retrievals stay
// warm across >= 100 publishes to unrelated bases (0 stale bytes, hit
// rate >= 90%), and each burst of 32 concurrent misses costs at most one
// assembly (Storm itself errors on any stale byte).
func TestStormExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("storm experiment skipped in -short mode")
	}
	r := NewRunner()
	res, err := r.Storm(110, 8, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.CloseAll(); err != nil {
			t.Errorf("CloseAll: %v", err)
		}
	}()
	if res.Publishes < 100 {
		t.Fatalf("only %d publishes completed, want >= 100", res.Publishes)
	}
	if res.Stale != 0 {
		t.Fatalf("%d stale retrievals", res.Stale)
	}
	if res.HitRate < 0.9 {
		t.Fatalf("hit rate %.3f < 0.9 under unrelated publish traffic (%d hits / %d misses)\n%s",
			res.HitRate, res.Hits, res.Misses, res)
	}
	if res.BurstAssemblies > int64(res.Bursts) {
		t.Fatalf("%d assemblies across %d bursts of %d concurrent misses — singleflight failed\n%s",
			res.BurstAssemblies, res.Bursts, res.BurstClients, res)
	}
	out := res.String()
	for _, want := range []string{"Retrieval storm", "publish-storm", "miss-bursts"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
