package bench

import "testing"

// TestChurnScenario runs a shortened churn loop and pins the storage
// bound end to end: with dead-ratio compaction on, steady-state disk
// stays within 2x the live bytes; with it off, the identical workload
// grows past the bound; and the keeper images come back byte-identical
// from both repositories.
func TestChurnScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("churn scenario skipped in -short mode")
	}
	r := NewRunner()
	r.StoreRoot = t.TempDir()
	res, err := r.Churn(4)
	if err != nil {
		t.Fatalf("Churn: %v", err)
	}
	if !res.Verified {
		t.Fatalf("keeper fidelity not verified: %+v", res)
	}
	if len(res.RoundStats) != 4 {
		t.Fatalf("want 4 round measurements, got %d", len(res.RoundStats))
	}
	last := res.RoundStats[len(res.RoundStats)-1]
	if last.DeadOff <= last.DeadOn {
		t.Fatalf("compaction-off repo should hold more garbage: dead on=%d off=%d", last.DeadOn, last.DeadOff)
	}
	if s := res.String(); s == "" {
		t.Fatalf("empty rendering")
	}
}
