package bench

import (
	"fmt"
	"time"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/vmi"
)

// ConcurrentResult reports the concurrent-workload scenario: the Table II
// catalog batch-published into one shared Expelliarmus repository, once
// strictly sequentially and once with a bounded worker pool. The modeled
// seconds stay identical by construction (parallelism changes wall-clock
// time only), so the interesting quantities are host wall-clock and
// aggregate throughput.
type ConcurrentResult struct {
	// Images is the catalog size (19 for Table II).
	Images int
	// Clients is the worker-pool bound used for the parallel run.
	Clients int
	// SequentialWall and ParallelWall are host wall-clock times for the
	// whole batch.
	SequentialWall time.Duration
	ParallelWall   time.Duration
	// SequentialModeled and ParallelModeled are the summed modeled publish
	// seconds of the two runs. They can differ slightly: under concurrency
	// two publishes may both repack a package that sequential upload would
	// have deduplicated (exactly one still stores it).
	SequentialModeled float64
	ParallelModeled   float64
	// SequentialRepoGB and ParallelRepoGB are the final repository sizes
	// at paper scale; semantic dedup must hold under concurrency, so they
	// should match closely.
	SequentialRepoGB float64
	ParallelRepoGB   float64
}

// Speedup is the wall-clock ratio sequential/parallel (>1 means the
// parallel pipeline won).
func (c *ConcurrentResult) Speedup() float64 {
	if c.ParallelWall <= 0 {
		return 0
	}
	return float64(c.SequentialWall) / float64(c.ParallelWall)
}

// Throughput returns images per wall-clock second for both runs.
func (c *ConcurrentResult) Throughput() (sequential, parallel float64) {
	if c.SequentialWall > 0 {
		sequential = float64(c.Images) / c.SequentialWall.Seconds()
	}
	if c.ParallelWall > 0 {
		parallel = float64(c.Images) / c.ParallelWall.Seconds()
	}
	return
}

// String renders the scenario result as a table.
func (c *ConcurrentResult) String() string {
	seqT, parT := c.Throughput()
	tbl := &Table{
		Title: fmt.Sprintf("Concurrent batch publish: %d VMIs, %d clients", c.Images, c.Clients),
		Columns: []string{"run", "wall[s]", "throughput[VMI/s]",
			"modeled[s]", "repo[GB]"},
	}
	tbl.AddRow("sequential",
		fmt.Sprintf("%.3f", c.SequentialWall.Seconds()),
		fmt.Sprintf("%.2f", seqT),
		fmt.Sprintf("%.1f", c.SequentialModeled),
		fmt.Sprintf("%.2f", c.SequentialRepoGB))
	tbl.AddRow(fmt.Sprintf("parallel(%d)", c.Clients),
		fmt.Sprintf("%.3f", c.ParallelWall.Seconds()),
		fmt.Sprintf("%.2f", parT),
		fmt.Sprintf("%.1f", c.ParallelModeled),
		fmt.Sprintf("%.2f", c.ParallelRepoGB))
	tbl.AddRow("speedup", fmt.Sprintf("%.2fx", c.Speedup()), "", "", "")
	return tbl.String()
}

// ConcurrentPublish runs the concurrent-workload scenario: the full
// Table II catalog is published into a fresh repository twice — first
// strictly sequentially in upload order, then as a concurrent batch with
// `clients` workers sharing one System. Image building happens before the
// timed sections, so the measurement isolates the publish pipeline.
func (r *Runner) ConcurrentPublish(clients int) (*ConcurrentResult, error) {
	tpls := catalog.Paper19()
	seqImgs := make([]*vmi.Image, len(tpls))
	parImgs := make([]*vmi.Image, len(tpls))
	for i, t := range tpls {
		var err error
		if seqImgs[i], err = r.WL.Image(t); err != nil {
			return nil, err
		}
		if parImgs[i], err = r.WL.Image(t); err != nil {
			return nil, err
		}
	}
	res := &ConcurrentResult{Images: len(tpls), Clients: clients}

	seqSys, err := r.NewCoreSystem(core.Options{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i, img := range seqImgs {
		rep, err := seqSys.Publish(img)
		if err != nil {
			return nil, fmt.Errorf("bench: sequential publish %s: %w", tpls[i].Name, err)
		}
		res.SequentialModeled += rep.Seconds()
	}
	res.SequentialWall = time.Since(start)
	res.SequentialRepoGB = paperGB(seqSys.Repo().SizeBytes())

	parSys, err := r.NewCoreSystem(core.Options{Parallelism: clients})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	reps, err := parSys.PublishAll(parImgs)
	if err != nil {
		return nil, fmt.Errorf("bench: parallel publish: %w", err)
	}
	res.ParallelWall = time.Since(start)
	for _, rep := range reps {
		res.ParallelModeled += rep.Seconds()
	}
	res.ParallelRepoGB = paperGB(parSys.Repo().SizeBytes())
	return res, nil
}
