package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPersistenceScenario runs the disk-backend persistence scenario and
// pins the PR's headline acceptance criterion at system level: the sync
// after publishing one extra image writes only that image's segments, a
// strict subset of the first full sync, and every VMI is retrievable from
// the reopened repository.
func TestPersistenceScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("persistence scenario skipped in -short mode")
	}
	r := NewRunner()
	r.StoreRoot = t.TempDir()
	res, err := r.Persistence()
	if err != nil {
		t.Fatalf("Persistence: %v", err)
	}
	if res.FullSync.Blobs.SegmentBytes == 0 || res.FullSync.MetaBytes == 0 {
		t.Fatalf("full sync wrote nothing: %+v", res.FullSync)
	}
	if res.IncrementalSync.Blobs.SegmentBytes == 0 {
		t.Fatalf("incremental sync wrote no blob bytes for a new image: %+v", res.IncrementalSync)
	}
	if res.IncrementalSync.Blobs.SegmentBytes >= res.FullSync.Blobs.SegmentBytes {
		t.Fatalf("incremental sync (%d bytes) not smaller than full sync (%d bytes)",
			res.IncrementalSync.Blobs.SegmentBytes, res.FullSync.Blobs.SegmentBytes)
	}
	if !res.RetrievedAll {
		t.Fatalf("not all VMIs retrievable after reopen")
	}
	// The repository directory must actually hold segment files, an index
	// and the metadata snapshot + WAL pair with its commit record.
	if _, err := os.Stat(filepath.Join(res.Dir, "meta.commit")); err != nil {
		t.Fatalf("meta.commit missing: %v", err)
	}
	for _, pat := range []string{"meta.snap-*", "meta.wal-*"} {
		m, err := filepath.Glob(filepath.Join(res.Dir, pat))
		if err != nil || len(m) != 1 {
			t.Fatalf("want exactly one %s file, got %v (err %v)", pat, m, err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(res.Dir, "blobs", "*"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no blob files under %s/blobs: %v", res.Dir, err)
	}
	if s := res.String(); s == "" {
		t.Fatalf("empty rendering")
	}
}
