package bench

import (
	"fmt"

	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/stores"
)

// fig3Stores returns the five schemes of Fig. 3, freshly initialised.
func (r *Runner) fig3Stores() ([]stores.Store, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	return []stores.Store{
		stores.NewQcow2(r.Dev),
		stores.NewGzip(r.Dev),
		stores.NewMirage(r.Dev),
		stores.NewHemera(r.Dev),
		exp,
	}, nil
}

// repoGrowth publishes the templates into each store in order and records
// the cumulative repository size after each image.
func (r *Runner) repoGrowth(title string, tpls []catalog.Template) (*Figure, error) {
	ss, err := r.fig3Stores()
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		Title:  title,
		XLabel: "VMI",
		YLabel: "cumulative repository size (paper-equivalent GB)",
	}
	series := make([]Series, len(ss))
	for i, s := range ss {
		series[i] = Series{Label: s.Name()}
	}
	for _, t := range tpls {
		fig.X = append(fig.X, t.Name)
		for i, s := range ss {
			img, err := r.WL.Image(t)
			if err != nil {
				return nil, err
			}
			if _, err := s.Publish(img); err != nil {
				return nil, fmt.Errorf("bench: %s publish %s: %w", s.Name(), t.Name, err)
			}
			series[i].Y = append(series[i].Y, paperGB(s.SizeBytes()))
		}
	}
	fig.Series = series
	return fig, nil
}

// Fig3a regenerates Fig. 3a: repository growth over the 4 VMIs shared with
// the Mirage and Hemera studies (Mini, Base, Desktop, IDE).
func (r *Runner) Fig3a() (*Figure, error) {
	return r.repoGrowth("Fig. 3a: repository size growth, 4 VMIs", catalog.Paper4())
}

// Fig3b regenerates Fig. 3b: repository growth over the 19 Table II VMIs.
func (r *Runner) Fig3b() (*Figure, error) {
	return r.repoGrowth("Fig. 3b: repository size growth, 19 VMIs", catalog.Paper19())
}

// Fig3c regenerates Fig. 3c: repository growth over n successive IDE
// builds (the paper uses 40).
func (r *Runner) Fig3c(builds int) (*Figure, error) {
	return r.repoGrowth(
		fmt.Sprintf("Fig. 3c: repository size growth, %d successive IDE builds", builds),
		catalog.IDEBuilds(builds))
}

// publishTimes publishes the templates into each store in order and
// records per-image publish seconds.
func publishTimes(wl *Workload, tpls []catalog.Template, ss []stores.Store, title string) (*Figure, error) {
	fig := &Figure{Title: title, XLabel: "VMI", YLabel: "publish time (s)"}
	series := make([]Series, len(ss))
	for i, s := range ss {
		series[i] = Series{Label: s.Name()}
	}
	for _, t := range tpls {
		fig.X = append(fig.X, t.Name)
		for i, s := range ss {
			img, err := wl.Image(t)
			if err != nil {
				return nil, err
			}
			st, err := s.Publish(img)
			if err != nil {
				return nil, fmt.Errorf("bench: %s publish %s: %w", s.Name(), t.Name, err)
			}
			series[i].Y = append(series[i].Y, st.Seconds)
		}
	}
	fig.Series = series
	return fig, nil
}

// Fig4a regenerates Fig. 4a: publish times of the 4 shared VMIs for
// Expelliarmus, Mirage and Hemera.
func (r *Runner) Fig4a() (*Figure, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	ss := []stores.Store{
		exp,
		stores.NewMirage(r.Dev),
		stores.NewHemera(r.Dev),
	}
	return publishTimes(r.WL, catalog.Paper4(), ss, "Fig. 4a: publish time, 4 VMIs")
}

// Fig4b regenerates Fig. 4b: publish times of the 19 VMIs for
// Expelliarmus, the "Semantic" no-dedup variant, Mirage and Hemera.
func (r *Runner) Fig4b() (*Figure, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	sem, err := r.newExpel(core.Options{NoSemanticDedup: true})
	if err != nil {
		return nil, err
	}
	ss := []stores.Store{
		exp,
		&renamed{Store: sem, name: "semantic"},
		stores.NewMirage(r.Dev),
		stores.NewHemera(r.Dev),
	}
	return publishTimes(r.WL, catalog.Paper19(), ss, "Fig. 4b: publish time, 19 VMIs")
}

// renamed overrides a store's display name (for the "Semantic" variant).
type renamed struct {
	stores.Store
	name string
}

func (r *renamed) Name() string { return r.name }

// Fig5a regenerates Fig. 5a: the Expelliarmus retrieval time decomposition
// (base image copy, guestfs handle creation, VMI reset, package import)
// over the 19-image repository.
func (r *Runner) Fig5a() (*Figure, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	tpls := catalog.Paper19()
	for _, t := range tpls {
		img, err := r.WL.Image(t)
		if err != nil {
			return nil, err
		}
		if _, err := exp.Publish(img); err != nil {
			return nil, err
		}
	}
	fig := &Figure{
		Title:  "Fig. 5a: Expelliarmus retrieval time decomposition, 19 VMIs",
		XLabel: "VMI",
		YLabel: "retrieval time (s)",
	}
	phases := []struct {
		label string
		phase simio.Phase
	}{
		{"base-image-copy", simio.PhaseCopy},
		{"handle-creation", simio.PhaseLaunch},
		{"vmi-reset", simio.PhaseReset},
		{"import", simio.PhaseImport},
	}
	series := make([]Series, len(phases)+1)
	for i, p := range phases {
		series[i] = Series{Label: p.label}
	}
	series[len(phases)] = Series{Label: "total"}
	for _, t := range tpls {
		fig.X = append(fig.X, t.Name)
		_, st, err := exp.Retrieve(t.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: retrieve %s: %w", t.Name, err)
		}
		for i, p := range phases {
			series[i].Y = append(series[i].Y, st.Phases[p.phase])
		}
		series[len(phases)].Y = append(series[len(phases)].Y, st.Seconds)
	}
	fig.Series = series
	return fig, nil
}

// Fig5b regenerates Fig. 5b: retrieval times over the 19-image repository
// for Mirage, Hemera and Expelliarmus.
func (r *Runner) Fig5b() (*Figure, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	ss := []stores.Store{
		stores.NewMirage(r.Dev),
		stores.NewHemera(r.Dev),
		exp,
	}
	tpls := catalog.Paper19()
	for _, t := range tpls {
		for _, s := range ss {
			img, err := r.WL.Image(t)
			if err != nil {
				return nil, err
			}
			if _, err := s.Publish(img); err != nil {
				return nil, err
			}
		}
	}
	fig := &Figure{
		Title:  "Fig. 5b: retrieval time comparison, 19 VMIs",
		XLabel: "VMI",
		YLabel: "retrieval time (s)",
	}
	series := make([]Series, len(ss))
	for i, s := range ss {
		series[i] = Series{Label: s.Name()}
	}
	for _, t := range tpls {
		fig.X = append(fig.X, t.Name)
		for i, s := range ss {
			_, st, err := s.Retrieve(t.Name)
			if err != nil {
				return nil, fmt.Errorf("bench: %s retrieve %s: %w", s.Name(), t.Name, err)
			}
			series[i].Y = append(series[i].Y, st.Seconds)
		}
	}
	fig.Series = series
	return fig, nil
}

// TableII regenerates Table II: per-VMI characteristics under sequential
// upload into an initially empty Expelliarmus repository, with the paper's
// published values interleaved for comparison.
func (r *Runner) TableII() (*Table, error) {
	exp, err := r.newExpel(core.Options{})
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		Title: "Table II: experimental VMI characteristics (measured vs paper)",
		Columns: []string{"#", "VMI", "mounted[GB]", "p:mounted", "files", "p:files",
			"SimG", "p:SimG", "publish[s]", "p:publish", "retrieve[s]", "p:retrieve"},
	}
	tpls := catalog.Paper19()
	type pub struct {
		mounted float64
		files   int
		simG    float64
		pubS    float64
	}
	results := make([]pub, len(tpls))
	for i, t := range tpls {
		img, err := r.WL.Image(t)
		if err != nil {
			return nil, err
		}
		st, err := img.Stats()
		if err != nil {
			return nil, err
		}
		ps, err := exp.Publish(img)
		if err != nil {
			return nil, err
		}
		results[i] = pub{
			mounted: paperGB(st.MountedBytes),
			files:   catalog.PaperFiles(st.Files),
			simG:    ps.Similarity,
			pubS:    ps.Seconds,
		}
	}
	for i, t := range tpls {
		_, rs, err := exp.Retrieve(t.Name)
		if err != nil {
			return nil, err
		}
		ref, _ := PaperTableIIRow(t.Name)
		tbl.AddRow(
			fmt.Sprintf("%d", i+1), t.Name,
			fmt.Sprintf("%.3f", results[i].mounted), fmt.Sprintf("%.3f", ref.MountedGB),
			fmt.Sprintf("%d", results[i].files), fmt.Sprintf("%d", ref.Files),
			fmt.Sprintf("%.2f", results[i].simG), fmt.Sprintf("%.2f", ref.SimG),
			fmt.Sprintf("%.1f", results[i].pubS), fmt.Sprintf("%.1f", ref.PublishS),
			fmt.Sprintf("%.1f", rs.Seconds), fmt.Sprintf("%.1f", ref.RetrieveS),
		)
	}
	return tbl, nil
}
