// Package bench drives the paper's evaluation: it rebuilds every table and
// figure of Sec. VI (Table II, Figs. 3a–3c, 4a–4b, 5a–5b) against the
// synthetic workload, plus the ablation studies listed in DESIGN.md.
// Results carry the paper's reference numbers alongside the measured ones
// so EXPERIMENTS.md can be generated mechanically.
package bench

import (
	"fmt"
	"os"
	"strconv"
	"sync"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/stores"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// Workload builds and caches evaluation images. Images are expensive to
// build (hundreds of package installs each), so every experiment shares
// one cache and publishes clones.
type Workload struct {
	mu     sync.Mutex
	b      *builder.Builder
	images map[string]*vmi.Image
}

// NewWorkload returns an empty workload cache over a fresh universe.
func NewWorkload() *Workload {
	return &Workload{
		b:      builder.New(catalog.NewUniverse()),
		images: map[string]*vmi.Image{},
	}
}

// Builder exposes the underlying image builder.
func (w *Workload) Builder() *builder.Builder { return w.b }

// Image returns a clone of the built template image, building on first use.
func (w *Workload) Image(t catalog.Template) (*vmi.Image, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if img, ok := w.images[t.Name]; ok {
		return img.Clone(), nil
	}
	img, err := w.b.Build(t)
	if err != nil {
		return nil, fmt.Errorf("bench: build %s: %w", t.Name, err)
	}
	w.images[t.Name] = img
	return img.Clone(), nil
}

// Runner executes experiments on one device profile and workload.
type Runner struct {
	Dev *simio.Device
	WL  *Workload

	// Backend selects the blob backend every benchmarked Expelliarmus
	// system runs on: "" or "memory" for the in-memory sharded store,
	// "disk" for the durable segment-file store — so any experiment can be
	// rerun against either backend with nothing else changed.
	Backend string
	// StoreRoot is where disk-backed repositories are created (one fresh
	// subdirectory per system); empty means the OS temp dir. Directories
	// are left behind for inspection — benchmarks, not production.
	StoreRoot string
	// CacheBytes enables the retrieval cache on every benchmarked
	// Expelliarmus system (zero, the default, leaves it off). Because the
	// cache is transparent at the cost-model level, every experiment's
	// modeled numbers are identical with it on or off — which the
	// cache-enabled CI leg verifies by rerunning this whole suite.
	CacheBytes int64
	// WALCompactBytes tunes disk-backed systems' metadata-WAL compaction
	// threshold (zero keeps the default). CI's compaction leg sets it to
	// a few KiB so the whole bench suite runs with compactions firing on
	// nearly every sync — results must be identical, since compaction
	// only reorganises durable state.
	WALCompactBytes int64

	mu     sync.Mutex
	opened []*core.System // disk-backed systems to close via CloseAll

	// envErr records a malformed EXPELBENCH_* value from NewRunner; it is
	// surfaced by NewCoreSystem so a typo'd environment fails the run
	// loudly instead of silently benchmarking a different configuration.
	envErr error
}

// NewRunner returns a runner using the paper-calibrated device profile
// scaled to the generated workload. The backend defaults to in-memory but
// honours the EXPELBENCH_BACKEND, EXPELBENCH_STORE_ROOT, EXPELBENCH_CACHE
// (retrieval-cache bytes) and EXPELBENCH_WAL_COMPACT (metadata-WAL
// compaction threshold bytes) environment variables, so the identical
// benchmark (and test) suite can be pointed at the disk store, run
// cache-enabled, or run with aggressive WAL compaction with nothing
// recompiled — CI's disk-backend, cache and compaction legs do exactly
// that.
func NewRunner() *Runner {
	r := &Runner{
		Backend:   os.Getenv("EXPELBENCH_BACKEND"),
		StoreRoot: os.Getenv("EXPELBENCH_STORE_ROOT"),
		Dev:       simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale)),
		WL:        NewWorkload(),
	}
	if v := os.Getenv("EXPELBENCH_CACHE"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			// Do not run cacheless and report green: the cache-enabled CI
			// leg exists to verify cost transparency, so a malformed value
			// must fail the run (via NewCoreSystem), not disable the cache.
			r.envErr = fmt.Errorf("bench: EXPELBENCH_CACHE=%q: %w", v, err)
		}
		r.CacheBytes = n
	}
	if v := os.Getenv("EXPELBENCH_WAL_COMPACT"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			// Same loud-failure rule as above: the compaction leg exists to
			// exercise compaction, so a typo must not silently disable it.
			r.envErr = fmt.Errorf("bench: EXPELBENCH_WAL_COMPACT=%q: %w", v, err)
		}
		r.WALCompactBytes = n
	}
	return r
}

// NewDiskRepo creates a fresh disk-backed repository in its own directory
// under StoreRoot (or the OS temp dir) and returns the directory. The
// repository honours the runner's WALCompactBytes.
func (r *Runner) NewDiskRepo(prefix string) (string, *vmirepo.Repo, error) {
	return r.NewDiskRepoOpts(prefix, vmirepo.OpenOptions{WALCompactBytes: r.WALCompactBytes})
}

// NewDiskRepoOpts is NewDiskRepo with explicit repository options,
// overriding the runner's defaults — for experiments that must pin a
// setting regardless of the environment (the sync experiment pins the
// compaction threshold out of reach so its delta measurements stay pure).
func (r *Runner) NewDiskRepoOpts(prefix string, o vmirepo.OpenOptions) (string, *vmirepo.Repo, error) {
	root := r.StoreRoot
	if root == "" {
		root = os.TempDir()
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", nil, err
	}
	dir, err := os.MkdirTemp(root, prefix)
	if err != nil {
		return "", nil, err
	}
	repo, err := vmirepo.OpenAtOpts(dir, r.Dev, o)
	if err != nil {
		return "", nil, err
	}
	return dir, repo, nil
}

// NewCoreSystem creates a fresh Expelliarmus core system over the
// runner's selected backend, with the runner's retrieval-cache budget
// unless the experiment set its own. Disk-backed systems are tracked;
// call CloseAll when the experiments are done so sticky I/O failures
// surface and file handles are released.
func (r *Runner) NewCoreSystem(opts core.Options) (*core.System, error) {
	if r.envErr != nil {
		return nil, r.envErr
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = r.CacheBytes
	}
	switch r.Backend {
	case "", "memory":
		return core.NewSystem(r.Dev, opts), nil
	case "disk":
		_, repo, err := r.NewDiskRepo("expelbench-repo-")
		if err != nil {
			return nil, err
		}
		sys := core.NewSystemWithRepo(repo, r.Dev, opts)
		r.mu.Lock()
		r.opened = append(r.opened, sys)
		r.mu.Unlock()
		return sys, nil
	default:
		return nil, fmt.Errorf("bench: unknown backend %q (memory|disk)", r.Backend)
	}
}

// CloseAll syncs and closes every disk-backed system the runner created,
// returning the first error — the place a disk store's sticky I/O failure
// (e.g. a full filesystem mid-benchmark) finally surfaces instead of the
// results silently reflecting a partial store.
func (r *Runner) CloseAll() error {
	r.mu.Lock()
	opened := r.opened
	r.opened = nil
	r.mu.Unlock()
	var first error
	for _, sys := range opened {
		if err := sys.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// newExpel wraps a fresh backend-selected system in the Store adapter the
// comparison harness consumes.
func (r *Runner) newExpel(opts core.Options) (*stores.Expel, error) {
	sys, err := r.NewCoreSystem(opts)
	if err != nil {
		return nil, err
	}
	return stores.NewExpelWithSystem(sys), nil
}

// paperGB converts real bytes to paper-equivalent gigabytes.
func paperGB(realBytes int64) float64 {
	return float64(catalog.Paper(realBytes)) / 1e9
}
