// Package bench drives the paper's evaluation: it rebuilds every table and
// figure of Sec. VI (Table II, Figs. 3a–3c, 4a–4b, 5a–5b) against the
// synthetic workload, plus the ablation studies listed in DESIGN.md.
// Results carry the paper's reference numbers alongside the measured ones
// so EXPERIMENTS.md can be generated mechanically.
package bench

import (
	"fmt"
	"sync"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

// Workload builds and caches evaluation images. Images are expensive to
// build (hundreds of package installs each), so every experiment shares
// one cache and publishes clones.
type Workload struct {
	mu     sync.Mutex
	b      *builder.Builder
	images map[string]*vmi.Image
}

// NewWorkload returns an empty workload cache over a fresh universe.
func NewWorkload() *Workload {
	return &Workload{
		b:      builder.New(catalog.NewUniverse()),
		images: map[string]*vmi.Image{},
	}
}

// Builder exposes the underlying image builder.
func (w *Workload) Builder() *builder.Builder { return w.b }

// Image returns a clone of the built template image, building on first use.
func (w *Workload) Image(t catalog.Template) (*vmi.Image, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if img, ok := w.images[t.Name]; ok {
		return img.Clone(), nil
	}
	img, err := w.b.Build(t)
	if err != nil {
		return nil, fmt.Errorf("bench: build %s: %w", t.Name, err)
	}
	w.images[t.Name] = img
	return img.Clone(), nil
}

// Runner executes experiments on one device profile and workload.
type Runner struct {
	Dev *simio.Device
	WL  *Workload
}

// NewRunner returns a runner using the paper-calibrated device profile
// scaled to the generated workload.
func NewRunner() *Runner {
	return &Runner{
		Dev: simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale)),
		WL:  NewWorkload(),
	}
}

// paperGB converts real bytes to paper-equivalent gigabytes.
func paperGB(realBytes int64) float64 {
	return float64(catalog.Paper(realBytes)) / 1e9
}
