package bench

import (
	"context"
	"crypto/sha256"
	"fmt"
	"net"
	"net/http"
	"time"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/client"
	"expelliarmus/internal/core"
	"expelliarmus/internal/replica"
	"expelliarmus/internal/server"
	"expelliarmus/internal/vmirepo"
)

// ReplicaRound is one round of the replica experiment: the writer
// publishes one more image (compacting on alternate rounds to force
// epoch switches), the follower catches up, and every image published so
// far is retrieved from the follower and compared byte-for-byte against
// the writer's own stream.
type ReplicaRound struct {
	Image      string
	ImageBytes int64
	Epoch      uint64 // follower epoch after catch-up
	Applied    int64  // follower applied-WAL bytes after catch-up
	FetchBlobs int64  // cumulative read-through blob fetches
	FetchBytes int64  // cumulative read-through bytes
	CatchUp    time.Duration
	Verify     time.Duration // all follower retrievals this round
}

// ReplicaResult reports the replica experiment.
type ReplicaResult struct {
	Rounds    []ReplicaRound
	Epochs    uint64 // final epoch (>1 proves the follower crossed compactions)
	Retrieved int    // follower retrievals byte-verified against the writer
	WarmMiss  int64  // read-through fetches during the warm re-retrieval pass (gated at 0)
	// SnapshotBytes is the writer's metadata snapshot size at the end of
	// the run; RestartAlloc is the bytes a brand-new follower allocated
	// to bootstrap from it (snapshot stream + WAL tail + client
	// machinery), gated against restartAllocBound(SnapshotBytes).
	SnapshotBytes int64
	RestartAlloc  int64
}

// restartAllocBound is the streaming-restart gate: bootstrapping a fresh
// follower may allocate at most 2x the snapshot it loads (one exact-sized
// buffer inside the follower, plus transport incidentals) and a fixed
// slack for the HTTP client and catch-up machinery. The materializing
// restart this gate pins against buffered the whole snapshot in the
// client before handing a second copy to the follower — with growth
// slack on top, landing well past 2x on any non-trivial snapshot.
func restartAllocBound(snapshotBytes int64) int64 {
	return 2*snapshotBytes + 8<<20
}

// String renders the experiment as a table.
func (r *ReplicaResult) String() string {
	tbl := &Table{
		Title: fmt.Sprintf("Replica convergence: %d rounds, final epoch %d, %d byte-verified follower retrievals, %d warm misses; fresh bootstrap allocated %.2f MiB for a %.2f MiB snapshot",
			len(r.Rounds), r.Epochs, r.Retrieved, r.WarmMiss,
			float64(r.RestartAlloc)/(1<<20), float64(r.SnapshotBytes)/(1<<20)),
		Columns: []string{"image", "image[MiB]", "epoch", "applied[B]", "fetched", "fetched[MiB]", "catchup[s]", "verify[s]"},
	}
	for _, rd := range r.Rounds {
		tbl.AddRow(
			rd.Image,
			fmt.Sprintf("%.1f", float64(rd.ImageBytes)/(1<<20)),
			fmt.Sprintf("%d", rd.Epoch),
			fmt.Sprintf("%d", rd.Applied),
			fmt.Sprintf("%d", rd.FetchBlobs),
			fmt.Sprintf("%.2f", float64(rd.FetchBytes)/(1<<20)),
			fmt.Sprintf("%.3f", rd.CatchUp.Seconds()),
			fmt.Sprintf("%.3f", rd.Verify.Seconds()))
	}
	return tbl.String()
}

// ReplicaConvergence runs the replication gate: a disk-backed writer
// (the WAL is what gets shipped, so the writer is on disk regardless of
// EXPELBENCH_BACKEND) serves the replication endpoints over a loopback
// listener while an in-process follower tails it. Per round the writer
// publishes the next Table II catalog image and syncs — compacting
// instead on alternate rounds, so the follower must cross epoch switches
// — then the follower catches up. Catalog images (not bulk images) on
// purpose: their package sets differ, so each round decomposes to fresh
// base blobs instead of semantically deduplicating onto the first
// round's, and the read-through cache has real traffic to carry. Four
// gates:
//
//  1. after every catch-up the follower's metadata snapshot is
//     byte-identical to the writer's (MetaSnapshot comparison);
//  2. every image published so far streams from the follower
//     byte-identical (SHA-256 and length) to the writer's own
//     in-process retrieval, with missing blobs pulled through the
//     read-through cache on demand;
//  3. the final epoch exceeds 1 — the follower really crossed at least
//     one compaction-driven epoch switch;
//  4. a second retrieval pass over every image causes zero further
//     read-through fetches — the blob cache is warm, so steady-state
//     replica reads never touch the writer.
func (r *Runner) ReplicaConvergence(rounds int) (*ReplicaResult, error) {
	tpls := catalog.Paper19()
	if rounds <= 0 {
		rounds = 4
	}
	if rounds > len(tpls) {
		rounds = len(tpls)
	}
	ctx := context.Background()

	// Writer: always disk-backed — replication ships the metadata WAL.
	_, wrepo, err := r.NewDiskRepo("expelbench-replica-")
	if err != nil {
		return nil, err
	}
	wsys := core.NewSystemWithRepo(wrepo, r.Dev, core.Options{CacheBytes: -1})
	r.mu.Lock()
	r.opened = append(r.opened, wsys)
	r.mu.Unlock()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: server.New(wsys)}
	go srv.Serve(ln)
	defer srv.Close()

	rep := replica.New("http://"+ln.Addr().String(), blobstore.New(), r.Dev,
		replica.Options{Client: client.Options{Timeout: 10 * time.Minute, Retries: 1}})
	defer rep.Close()
	fsys := core.NewSystemWithRepo(rep.Repo(), r.Dev, core.Options{CacheBytes: -1})

	res := &ReplicaResult{}
	var names []string
	refSums := map[string]string{}
	refLens := map[string]int64{}
	for i := 0; i < rounds; i++ {
		name := tpls[i].Name
		img, err := r.WL.Image(tpls[i])
		if err != nil {
			return nil, err
		}
		if _, err := wsys.Publish(img); err != nil {
			return nil, fmt.Errorf("bench: replica publish %s: %w", name, err)
		}
		if i%2 == 1 {
			if _, err := wsys.Compact(); err != nil {
				return nil, fmt.Errorf("bench: replica compact: %w", err)
			}
		} else if _, err := wsys.Sync(); err != nil {
			return nil, fmt.Errorf("bench: replica sync: %w", err)
		}
		names = append(names, name)

		ref := &shaCountWriter{h: sha256.New()}
		if _, _, err := wsys.RetrieveTo(ref, name); err != nil {
			return nil, fmt.Errorf("bench: replica reference retrieve %s: %w", name, err)
		}
		refSums[name] = fmt.Sprintf("%x", ref.h.Sum(nil))
		refLens[name] = ref.n

		rd := ReplicaRound{Image: name, ImageBytes: ref.n}
		start := time.Now()
		if err := rep.CatchUp(ctx); err != nil {
			return nil, fmt.Errorf("bench: replica catch-up round %d: %w", i, err)
		}
		rd.CatchUp = time.Since(start)
		if w, f := string(wrepo.MetaSnapshot()), string(rep.Repo().MetaSnapshot()); w != f {
			return nil, fmt.Errorf("bench: replica round %d: follower metadata differs from writer after catch-up", i)
		}
		rd.Epoch, rd.Applied = rep.Repo().Follower().Position()

		start = time.Now()
		for _, n := range names {
			if err := verifyFollowerStream(fsys, n, refLens[n], refSums[n]); err != nil {
				return nil, fmt.Errorf("bench: replica round %d: %w", i, err)
			}
			res.Retrieved++
		}
		rd.Verify = time.Since(start)
		rd.FetchBlobs, rd.FetchBytes = rep.Fetches()
		res.Rounds = append(res.Rounds, rd)
	}

	// Gate 3: the rounds above compacted at least once, and the follower
	// must have followed the writer across that epoch switch.
	res.Epochs, _ = rep.Repo().Follower().Position()
	if rounds >= 2 && res.Epochs <= 1 {
		return nil, fmt.Errorf("bench: replica finished on epoch %d; the follower never crossed a compaction", res.Epochs)
	}

	// Gate 4: a warm second pass fetches nothing — every blob a retrieval
	// needed is cached locally now.
	before, _ := rep.Fetches()
	for _, n := range names {
		if err := verifyFollowerStream(fsys, n, refLens[n], refSums[n]); err != nil {
			return nil, fmt.Errorf("bench: replica warm pass: %w", err)
		}
	}
	after, _ := rep.Fetches()
	res.WarmMiss = after - before
	if res.WarmMiss != 0 {
		return nil, fmt.Errorf("bench: replica warm pass fetched %d blobs from the writer; the cache should have been warm", res.WarmMiss)
	}

	// The follower is read-only end to end.
	if _, err := fsys.Sync(); err == nil {
		return nil, fmt.Errorf("bench: follower system accepted Sync; want %v", vmirepo.ErrReadOnly)
	}

	// Gate 5: bootstrapping a brand-new follower streams the snapshot —
	// its allocation is bounded by restartAllocBound, not by how many
	// copies of the snapshot a materializing path would hold.
	res.SnapshotBytes = int64(len(wrepo.MetaSnapshot()))
	rep2 := replica.New("http://"+ln.Addr().String(), blobstore.New(), r.Dev,
		replica.Options{Client: client.Options{Timeout: 10 * time.Minute, Retries: 1}})
	defer rep2.Close()
	res.RestartAlloc, err = measureAlloc(func() error { return rep2.CatchUp(ctx) })
	if err != nil {
		return nil, fmt.Errorf("bench: replica fresh bootstrap: %w", err)
	}
	if bound := restartAllocBound(res.SnapshotBytes); res.RestartAlloc > bound {
		return nil, fmt.Errorf("bench: fresh follower bootstrap allocated %d bytes for a %d-byte snapshot, bound %d",
			res.RestartAlloc, res.SnapshotBytes, bound)
	}
	if w, f := string(wrepo.MetaSnapshot()), string(rep2.Repo().MetaSnapshot()); w != f {
		return nil, fmt.Errorf("bench: freshly bootstrapped follower metadata differs from writer")
	}
	return res, nil
}

// verifyFollowerStream retrieves name from the follower system and
// checks the stream against the writer's reference length and SHA-256.
func verifyFollowerStream(fsys *core.System, name string, wantLen int64, wantSum string) error {
	sink := &shaCountWriter{h: sha256.New()}
	if _, _, err := fsys.RetrieveTo(sink, name); err != nil {
		return fmt.Errorf("follower retrieve %s: %w", name, err)
	}
	if sink.n != wantLen || fmt.Sprintf("%x", sink.h.Sum(nil)) != wantSum {
		return fmt.Errorf("follower stream of %s differs from writer (%d vs %d bytes)", name, sink.n, wantLen)
	}
	return nil
}
