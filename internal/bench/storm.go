package bench

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// StormResult reports the storm experiment: one hot image under
// concurrent retrieval while steady publish traffic lands on unrelated
// bases (phase 1, the generation-striping contract), then repeated
// cold-miss bursts on the hot image (phase 2, the miss-singleflight
// contract).
type StormResult struct {
	Backend    string
	CacheBytes int64
	Hot        string
	// Publishes counts completed publishes to unrelated bases during the
	// storm; Retrievals the concurrent hot-image retrievals they raced.
	Publishes  int
	Retrievals int
	// Hits and Misses are the cache-counter deltas over the storm phase.
	// Striping keeps the hot entry warm, so Misses should stay 0 no
	// matter how many unrelated publishes land. Coalesced is the delta
	// over the burst phase: retrievals served by waiting on the burst
	// leader's assembly.
	Hits, Misses, Coalesced int64
	// Stale counts retrievals whose image bytes differed from the cold
	// reference — always 0, or the experiment errors out.
	Stale int64
	// HitRate is Hits / (Hits + Misses) over the storm phase.
	HitRate float64
	// Bursts fired BurstClients concurrent retrievals each at a freshly
	// invalidated hot key; BurstAssemblies is how many assemblies they
	// cost in total (singleflight: at most one per burst).
	Bursts, BurstClients int
	BurstAssemblies      int64
	// StormWall and BurstWall are host wall-clock times of the phases.
	StormWall, BurstWall time.Duration
}

// String renders the experiment as a table.
func (r *StormResult) String() string {
	backend := r.Backend
	if backend == "" {
		backend = "memory"
	}
	tbl := &Table{
		Title: fmt.Sprintf("Retrieval storm: hot %s vs publishes on unrelated bases (%s backend, %d MiB cache)",
			r.Hot, backend, r.CacheBytes>>20),
		Columns: []string{"phase", "events", "outcome", "wall[s]"},
	}
	tbl.AddRow("publish-storm",
		fmt.Sprintf("%d publishes / %d retrievals", r.Publishes, r.Retrievals),
		fmt.Sprintf("%d hits, %d misses, %d stale (hit rate %.1f%%)", r.Hits, r.Misses, r.Stale, 100*r.HitRate),
		fmt.Sprintf("%.3f", r.StormWall.Seconds()))
	tbl.AddRow("miss-bursts",
		fmt.Sprintf("%d bursts x %d clients", r.Bursts, r.BurstClients),
		fmt.Sprintf("%d assemblies, %d coalesced", r.BurstAssemblies, r.Coalesced),
		fmt.Sprintf("%.3f", r.BurstWall.Seconds()))
	return tbl.String()
}

// assemblies is the number of assemblies visible in a stats snapshot:
// every completed assembly either inserted (Puts), was too large
// (Rejected) or stood down because the generation moved (invalidations).
func assemblies(st core.CacheStats) int64 {
	n := st.Puts + st.Rejected
	for _, v := range st.StripeInvalidations {
		n += v
	}
	return n
}

// Storm runs the storm experiment: it publishes the hot image (Redis)
// and seed images of two foreign releases (different base-attribute
// quadruples, so their base images and generation stripes are unrelated
// to the hot image's), warms the hot cache entry, then races `publishes`
// publishes of the foreign images against concurrent hot retrievals from
// `clients` goroutines — every retrieval byte-compared against the cold
// reference. Afterwards it fires `bursts` rounds of `burstClients`
// concurrent retrievals at a freshly invalidated hot key and counts the
// assemblies the cache statistics saw. Stale bytes anywhere error out:
// a benchmark that silently measured wrong images would be worse than
// none.
func (r *Runner) Storm(publishes, clients, bursts, burstClients int) (*StormResult, error) {
	if publishes <= 0 {
		publishes = 120
	}
	if clients <= 0 {
		clients = 8
	}
	if bursts <= 0 {
		bursts = 3
	}
	if burstClients <= 0 {
		burstClients = 32
	}
	opts := core.Options{CacheBytes: r.CacheBytes}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = DefaultCacheBytes
	}
	sys, err := r.NewCoreSystem(opts)
	if err != nil {
		return nil, err
	}
	res := &StormResult{
		Backend: r.Backend, CacheBytes: opts.CacheBytes, Hot: "Redis",
		Bursts: bursts, BurstClients: burstClients,
	}

	hotTpl, ok := catalog.Find(res.Hot)
	if !ok {
		return nil, fmt.Errorf("bench: storm: template %s missing", res.Hot)
	}
	hotImg, err := r.WL.Image(hotTpl)
	if err != nil {
		return nil, err
	}
	if _, err := sys.Publish(hotImg); err != nil {
		return nil, fmt.Errorf("bench: storm publish %s: %w", res.Hot, err)
	}
	hotRec, err := sys.Repo().GetVMI(res.Hot, nil)
	if err != nil {
		return nil, err
	}
	hotStripes := map[int]bool{
		vmirepo.StripeFor(hotRec.BaseID): true,
		vmirepo.StripeFor(res.Hot):       true,
	}

	// Foreign-release noise images, built once and cloned per publish.
	// Names are chosen off the hot stripes; bases are content-derived, so
	// verify after the seed publish and drop a release whose base
	// collides (striping's documented false sharing — possible, but then
	// the experiment could not observe the striping contract).
	type noiseImage struct {
		name string
		img  *vmi.Image
	}
	var noise []noiseImage
	for _, rel := range []catalog.Release{catalog.ReleaseBionic, catalog.ReleaseStretch} {
		b := builder.New(catalog.NewUniverseFor(rel))
		tpl, _ := catalog.Find("Mini")
		name := ""
		for i := 0; i < 1000; i++ {
			cand := fmt.Sprintf("storm-noise-%s-%d", rel.Base.Version, i)
			if !hotStripes[vmirepo.StripeFor(cand)] {
				name = cand
				break
			}
		}
		tpl.Name = name
		img, err := b.Build(tpl)
		if err != nil {
			return nil, fmt.Errorf("bench: storm build %s: %w", name, err)
		}
		if _, err := sys.Publish(img.Clone()); err != nil {
			return nil, fmt.Errorf("bench: storm seed publish %s: %w", name, err)
		}
		rec, err := sys.Repo().GetVMI(name, nil)
		if err != nil {
			return nil, err
		}
		if hotStripes[vmirepo.StripeFor(rec.BaseID)] {
			continue
		}
		noise = append(noise, noiseImage{name: name, img: img})
	}
	if len(noise) == 0 {
		return nil, fmt.Errorf("bench: storm: every foreign base collides with a hot generation stripe")
	}

	// Warm the hot entry and capture the reference bytes.
	refImg, _, err := sys.Retrieve(res.Hot)
	if err != nil {
		return nil, err
	}
	ref := refImg.Disk.Serialize()
	warm, _ := sys.CacheStats()

	// Phase 1: the publish storm on unrelated bases vs hot retrievals.
	start := time.Now()
	done := make(chan struct{})
	var pubErr error
	go func() {
		defer close(done)
		for i := 0; i < publishes; i++ {
			if _, err := sys.Publish(noise[i%len(noise)].img.Clone()); err != nil {
				pubErr = fmt.Errorf("bench: storm publish %s [%d]: %w", noise[i%len(noise)].name, i, err)
				return
			}
			res.Publishes++
		}
	}()
	var (
		wg         sync.WaitGroup
		retrievals atomic.Int64
		stale      atomic.Int64
		retErr     atomic.Value
	)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				img, _, err := sys.Retrieve(res.Hot)
				if err != nil {
					retErr.Store(fmt.Errorf("bench: storm retrieve %s: %w", res.Hot, err))
					return
				}
				retrievals.Add(1)
				if !bytes.Equal(img.Disk.Serialize(), ref) {
					stale.Add(1)
				}
			}
		}()
	}
	<-done
	wg.Wait()
	res.StormWall = time.Since(start)
	if pubErr != nil {
		return nil, pubErr
	}
	if err, _ := retErr.Load().(error); err != nil {
		return nil, err
	}
	res.Retrievals = int(retrievals.Load())
	res.Stale = stale.Load()
	afterStorm, _ := sys.CacheStats()
	res.Hits = afterStorm.Hits - warm.Hits
	res.Misses = afterStorm.Misses - warm.Misses
	if res.Hits+res.Misses > 0 {
		res.HitRate = float64(res.Hits) / float64(res.Hits+res.Misses)
	}
	if res.Stale > 0 {
		return nil, fmt.Errorf("bench: storm: %d stale hot retrievals — the cache served wrong bytes", res.Stale)
	}

	// Phase 2: cold-miss bursts on the hot image.
	burstStart, _ := sys.CacheStats()
	start = time.Now()
	for b := 0; b < bursts; b++ {
		hotAgain, err := r.WL.Image(hotTpl)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Publish(hotAgain); err != nil {
			return nil, fmt.Errorf("bench: storm republish %s: %w", res.Hot, err)
		}
		before, _ := sys.CacheStats()
		var burst sync.WaitGroup
		for w := 0; w < burstClients; w++ {
			burst.Add(1)
			go func() {
				defer burst.Done()
				img, _, err := sys.Retrieve(res.Hot)
				if err != nil {
					retErr.Store(fmt.Errorf("bench: storm burst retrieve %s: %w", res.Hot, err))
					return
				}
				if !bytes.Equal(img.Disk.Serialize(), ref) {
					stale.Add(1)
				}
			}()
		}
		burst.Wait()
		if err, _ := retErr.Load().(error); err != nil {
			return nil, err
		}
		after, _ := sys.CacheStats()
		res.BurstAssemblies += assemblies(after) - assemblies(before)
	}
	res.BurstWall = time.Since(start)
	if stale.Load() > res.Stale {
		return nil, fmt.Errorf("bench: storm: stale bytes in the miss bursts")
	}
	final, _ := sys.CacheStats()
	res.Coalesced = final.Coalesced - burstStart.Coalesced

	// The experiment enforces its two contracts itself (like CacheHit
	// enforces cost transparency), so the CI smoke run fails on a
	// regression rather than printing it green. The hit-rate contract
	// needs traffic to judge: a run so short that no storm-phase
	// retrieval completed has nothing to enforce.
	if res.Hits+res.Misses > 0 && res.HitRate < 0.9 {
		return nil, fmt.Errorf("bench: storm: hit rate %.3f < 0.9 — %d of %d hot retrievals missed despite publishes landing only on unrelated bases (striping broken?)",
			res.HitRate, res.Misses, res.Hits+res.Misses)
	}
	if res.BurstAssemblies > int64(res.Bursts) {
		return nil, fmt.Errorf("bench: storm: %d assemblies across %d bursts of %d concurrent misses — misses did not coalesce (singleflight broken?)",
			res.BurstAssemblies, res.Bursts, res.BurstClients)
	}
	return res, nil
}
