package pkgmgr

import (
	"testing"

	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
)

func buildBlob(t *testing.T, p pkgmeta.Package, files []pkgfmt.File) []byte {
	t.Helper()
	blob, err := pkgfmt.Build(p, files)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestUpgradeReplacesFiles(t *testing.T) {
	m, fs := newMgr(t)
	v1 := pkg("nginx")
	v1.Version = "1.0"
	if err := m.InstallPackage(v1, []pkgfmt.File{
		{Path: "/usr/bin/nginx", Data: []byte("v1 binary")},
		{Path: "/usr/lib/nginx/old-module", Data: []byte("obsolete")},
	}); err != nil {
		t.Fatal(err)
	}
	v2 := pkg("nginx")
	v2.Version = "2.0"
	blob := buildBlob(t, v2, []pkgfmt.File{
		{Path: "/usr/bin/nginx", Data: []byte("v2 binary")},
		{Path: "/usr/lib/nginx/new-module", Data: []byte("fresh")},
	})
	if err := m.Upgrade(blob); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := m.Get("nginx")
	if !ok || got.Version != "2.0" {
		t.Fatalf("after upgrade: %+v (ok=%v)", got, ok)
	}
	data, err := fs.ReadFile("/usr/bin/nginx")
	if err != nil || string(data) != "v2 binary" {
		t.Fatalf("binary = %q, %v", data, err)
	}
	if fs.Exists("/usr/lib/nginx/old-module") {
		t.Fatal("old version's file survived upgrade")
	}
	if !fs.Exists("/usr/lib/nginx/new-module") {
		t.Fatal("new version's file missing")
	}
}

func TestUpgradeErrors(t *testing.T) {
	m, _ := newMgr(t)
	v1 := pkg("tool")
	v1.Version = "1.0"
	// Not installed yet.
	if err := m.Upgrade(buildBlob(t, v1, nil)); err == nil {
		t.Fatal("upgraded a package that is not installed")
	}
	if err := m.InstallPackage(v1, nil); err != nil {
		t.Fatal(err)
	}
	// Same version again.
	if err := m.Upgrade(buildBlob(t, v1, nil)); err == nil {
		t.Fatal("same-version upgrade accepted")
	}
	// Corrupt blob.
	if err := m.Upgrade([]byte("junk")); err == nil {
		t.Fatal("corrupt blob accepted")
	}
}

func TestOutdated(t *testing.T) {
	m, _ := newMgr(t)
	v1 := pkg("libssl")
	v1.Version = "1.0"
	m.InstallPackage(v1, nil)
	current := pkg("current")
	current.Version = "1.0"
	m.InstallPackage(current, nil)

	newer := pkg("libssl")
	newer.Version = "1.1"
	u := MapUniverse{"libssl": newer, "current": current}
	out, err := m.Outdated(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Name != "libssl" || out[0].Version != "1.1" {
		t.Fatalf("Outdated = %+v", out)
	}
}
