package pkgmgr

import (
	"fmt"
	"sort"

	"expelliarmus/internal/pkgmeta"
)

// Universe resolves package names to metadata: the package catalog during
// image building, or the installed set during closure queries.
type Universe interface {
	Lookup(name string) (pkgmeta.Package, bool)
}

// Closure returns the transitive dependency closure of roots (including
// the roots), sorted by name. Cycles are handled naturally; a missing
// dependency is an error.
func Closure(u Universe, roots []string) ([]string, error) {
	seen := map[string]bool{}
	queue := append([]string(nil), roots...)
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if seen[name] {
			continue
		}
		p, ok := u.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("pkgmgr: unresolvable dependency %q", name)
		}
		seen[name] = true
		queue = append(queue, p.Depends...)
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// InstallOrder computes an installation order for the given package set:
// strongly connected components (dependency cycles, which per Sec. III-B
// "always need to be provided and installed together") are grouped, and
// groups are emitted dependencies-first. Only edges within the set are
// considered, so callers typically pass a Closure result.
func InstallOrder(u Universe, names []string) ([][]string, error) {
	inSet := map[string]bool{}
	for _, n := range names {
		inSet[n] = true
	}
	// Deterministic vertex order.
	vertices := append([]string(nil), names...)
	sort.Strings(vertices)

	adj := map[string][]string{}
	for _, n := range vertices {
		p, ok := u.Lookup(n)
		if !ok {
			return nil, fmt.Errorf("pkgmgr: unknown package %q", n)
		}
		var deps []string
		for _, d := range p.Depends {
			if inSet[d] {
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		adj[n] = deps
	}

	// Tarjan's strongly connected components, iterative for safety on deep
	// dependency chains. Components are emitted in reverse topological
	// order of the condensation — i.e. dependencies first — which is
	// exactly the installation order.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var order [][]string
	next := 0

	type frame struct {
		node string
		iter int
	}
	var dfs func(root string)
	dfs = func(root string) {
		frames := []frame{{node: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			n := f.node
			if f.iter == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for f.iter < len(adj[n]) {
				d := adj[n][f.iter]
				f.iter++
				if _, visited := index[d]; !visited {
					frames = append(frames, frame{node: d})
					advanced = true
					break
				} else if onStack[d] {
					if index[d] < low[n] {
						low[n] = index[d]
					}
				}
			}
			if advanced {
				continue
			}
			// Post-order: fold low into parent, pop SCC if root.
			if low[n] == index[n] {
				var comp []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				sort.Strings(comp)
				order = append(order, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
		}
	}
	for _, n := range vertices {
		if _, visited := index[n]; !visited {
			dfs(n)
		}
	}
	return order, nil
}

// MapUniverse is a Universe backed by a map, convenient for tests and
// composed catalogs.
type MapUniverse map[string]pkgmeta.Package

// Lookup implements Universe.
func (m MapUniverse) Lookup(name string) (pkgmeta.Package, bool) {
	p, ok := m[name]
	return p, ok
}
