// Package pkgmgr implements the guest package manager the paper drives
// through libguestfs (Sec. V): a dpkg/apt analogue that maintains a status
// database inside the guest filesystem, installs and removes binary
// packages, recreates binary packages from installed files (dpkg-repack,
// the core of VMI publishing), auto-removes dependencies that are no longer
// required (Algorithm 1 line 10), and resolves dependency closures and
// installation order with full support for dependency cycles (the paper's
// libc6/perl-base/dpkg example).
package pkgmgr

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
)

// StatusPath is the guest path of the package status database.
const StatusPath = "/var/lib/dpkg/status"

// InfoDir is the guest directory holding per-package file lists.
const InfoDir = "/var/lib/dpkg/info"

// Manager operates the package database of one guest filesystem.
type Manager struct {
	fs *fstree.FS
}

// New returns a manager for the guest filesystem, initialising the package
// database directories if missing.
func New(fs *fstree.FS) (*Manager, error) {
	m := &Manager{fs: fs}
	if err := fs.MkdirAll(InfoDir); err != nil {
		return nil, fmt.Errorf("pkgmgr: init: %w", err)
	}
	if !fs.Exists(StatusPath) {
		if err := fs.WriteFile(StatusPath, nil); err != nil {
			return nil, fmt.Errorf("pkgmgr: init status: %w", err)
		}
	}
	return m, nil
}

// Installed returns the installed packages sorted by name.
func (m *Manager) Installed() ([]pkgmeta.Package, error) {
	data, err := m.fs.ReadFile(StatusPath)
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: read status: %w", err)
	}
	pkgs, err := pkgmeta.ParseStatus(string(data))
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: parse status: %w", err)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Name < pkgs[j].Name })
	return pkgs, nil
}

// Get returns the installed package with the given name.
func (m *Manager) Get(name string) (pkgmeta.Package, bool, error) {
	pkgs, err := m.Installed()
	if err != nil {
		return pkgmeta.Package{}, false, err
	}
	for _, p := range pkgs {
		if p.Name == name {
			return p, true, nil
		}
	}
	return pkgmeta.Package{}, false, nil
}

// IsInstalled reports whether the named package is installed.
func (m *Manager) IsInstalled(name string) bool {
	_, ok, err := m.Get(name)
	return err == nil && ok
}

func (m *Manager) writeStatus(pkgs []pkgmeta.Package) error {
	return m.fs.WriteFile(StatusPath, []byte(pkgmeta.FormatStatus(pkgs)))
}

func listPath(name string) string { return path.Join(InfoDir, name+".list") }

// OwnedFiles returns the absolute paths installed by the named package.
func (m *Manager) OwnedFiles(name string) ([]string, error) {
	data, err := m.fs.ReadFile(listPath(name))
	if err != nil {
		return nil, fmt.Errorf("pkgmgr: %s: no file list: %w", name, err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

// InstallPackage installs metadata and files directly (the builder's fast
// path, equivalent to unpacking a binary package).
func (m *Manager) InstallPackage(p pkgmeta.Package, files []pkgfmt.File) error {
	pkgs, err := m.Installed()
	if err != nil {
		return err
	}
	for _, q := range pkgs {
		if q.Name == p.Name {
			return fmt.Errorf("pkgmgr: %s already installed (version %s)", p.Name, q.Version)
		}
	}
	paths := make([]string, 0, len(files))
	for _, f := range files {
		dir := path.Dir(f.Path)
		if err := m.fs.MkdirAll(dir); err != nil {
			return fmt.Errorf("pkgmgr: install %s: %w", p.Name, err)
		}
		if err := m.fs.WriteFile(f.Path, f.Data); err != nil {
			return fmt.Errorf("pkgmgr: install %s: %w", p.Name, err)
		}
		paths = append(paths, f.Path)
	}
	sort.Strings(paths)
	if err := m.fs.WriteFile(listPath(p.Name), []byte(strings.Join(paths, "\n"))); err != nil {
		return err
	}
	pkgs = append(pkgs, p)
	return m.writeStatus(pkgs)
}

// Install unpacks and registers a binary package blob.
func (m *Manager) Install(blob []byte) error {
	p, files, err := pkgfmt.Extract(blob)
	if err != nil {
		return err
	}
	return m.InstallPackage(p, files)
}

// Remove uninstalls the named package: its files are deleted (empty parent
// directories are pruned) and its database records dropped.
func (m *Manager) Remove(name string) error {
	pkgs, err := m.Installed()
	if err != nil {
		return err
	}
	idx := -1
	for i, p := range pkgs {
		if p.Name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("pkgmgr: %s is not installed", name)
	}
	files, err := m.OwnedFiles(name)
	if err != nil {
		return err
	}
	dirs := map[string]bool{}
	for _, f := range files {
		if m.fs.Exists(f) {
			if err := m.fs.Remove(f); err != nil {
				return fmt.Errorf("pkgmgr: remove %s: %w", name, err)
			}
		}
		dirs[path.Dir(f)] = true
	}
	m.pruneEmptyDirs(dirs)
	if err := m.fs.Remove(listPath(name)); err != nil {
		return err
	}
	pkgs = append(pkgs[:idx], pkgs[idx+1:]...)
	return m.writeStatus(pkgs)
}

// pruneEmptyDirs removes now-empty directories bottom-up.
func (m *Manager) pruneEmptyDirs(dirs map[string]bool) {
	ordered := make([]string, 0, len(dirs))
	for d := range dirs {
		ordered = append(ordered, d)
	}
	// Deepest first.
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) > len(ordered[j]) })
	for _, d := range ordered {
		for d != "/" {
			entries, err := m.fs.ReadDir(d)
			if err != nil || len(entries) > 0 {
				break
			}
			if err := m.fs.Remove(d); err != nil {
				break
			}
			d = path.Dir(d)
		}
	}
}

// Repack recreates the binary package for the named installed package from
// its on-disk files and metadata — the dpkg-repack step of VMI publishing
// (Sec. V-3).
func (m *Manager) Repack(name string) ([]byte, error) {
	p, ok, err := m.Get(name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("pkgmgr: %s is not installed", name)
	}
	paths, err := m.OwnedFiles(name)
	if err != nil {
		return nil, err
	}
	files := make([]pkgfmt.File, 0, len(paths))
	for _, fp := range paths {
		data, err := m.fs.ReadFile(fp)
		if err != nil {
			return nil, fmt.Errorf("pkgmgr: repack %s: %w", name, err)
		}
		files = append(files, pkgfmt.File{Path: fp, Data: data})
	}
	return pkgfmt.Build(p, files)
}

// installedUniverse adapts the installed package set to the Universe
// interface for closure computations.
type installedUniverse map[string]pkgmeta.Package

func (u installedUniverse) Lookup(name string) (pkgmeta.Package, bool) {
	p, ok := u[name]
	return p, ok
}

// Autoremove removes every installed, non-essential package that is not in
// keep and not (transitively) required by a kept or essential package —
// Algorithm 1's removeUnusedDependencies. It returns the removed package
// names in sorted order.
func (m *Manager) Autoremove(keep []string) ([]string, error) {
	pkgs, err := m.Installed()
	if err != nil {
		return nil, err
	}
	u := make(installedUniverse, len(pkgs))
	for _, p := range pkgs {
		u[p.Name] = p
	}
	roots := append([]string(nil), keep...)
	for _, p := range pkgs {
		if p.Essential {
			roots = append(roots, p.Name)
		}
	}
	marked := map[string]bool{}
	queue := roots
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if marked[name] {
			continue
		}
		p, ok := u[name]
		if !ok {
			continue // kept name not installed: ignore
		}
		marked[name] = true
		queue = append(queue, p.Depends...)
	}
	var removed []string
	for _, p := range pkgs {
		if !marked[p.Name] {
			removed = append(removed, p.Name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		if err := m.Remove(name); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// InstalledBytes returns the sum of InstalledSize over installed packages.
func (m *Manager) InstalledBytes() (int64, error) {
	pkgs, err := m.Installed()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range pkgs {
		total += p.InstalledSize
	}
	return total, nil
}
