package pkgmgr

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/vdisk"
)

func newMgr(t *testing.T) (*Manager, *fstree.FS) {
	t.Helper()
	d := vdisk.New("guest", 16<<20, vdisk.DefaultClusterSize)
	fs, err := fstree.Format(d, 2048)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(fs)
	if err != nil {
		t.Fatal(err)
	}
	return m, fs
}

func pkg(name string, deps ...string) pkgmeta.Package {
	return pkgmeta.Package{
		Name: name, Version: "1.0", Arch: "amd64", Distro: "ubuntu",
		InstalledSize: 1000, Depends: deps,
	}
}

func filesFor(name string) []pkgfmt.File {
	return []pkgfmt.File{
		{Path: "/usr/bin/" + name, Data: []byte("binary of " + name)},
		{Path: "/usr/share/" + name + "/data", Data: bytes.Repeat([]byte{1}, 2000)},
	}
}

func TestInstallAndQuery(t *testing.T) {
	m, fs := newMgr(t)
	if err := m.InstallPackage(pkg("redis", "libc6"), filesFor("redis")); err != nil {
		t.Fatal(err)
	}
	if !m.IsInstalled("redis") {
		t.Fatal("redis not reported installed")
	}
	if m.IsInstalled("mongo") {
		t.Fatal("mongo reported installed")
	}
	got, ok, err := m.Get("redis")
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	if !reflect.DeepEqual(got, pkg("redis", "libc6")) {
		t.Fatalf("Get = %+v", got)
	}
	data, err := fs.ReadFile("/usr/bin/redis")
	if err != nil || string(data) != "binary of redis" {
		t.Fatalf("installed file: %q, %v", data, err)
	}
	owned, err := m.OwnedFiles("redis")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/usr/bin/redis", "/usr/share/redis/data"}
	if !reflect.DeepEqual(owned, want) {
		t.Fatalf("OwnedFiles = %v", owned)
	}
}

func TestDoubleInstallFails(t *testing.T) {
	m, _ := newMgr(t)
	if err := m.InstallPackage(pkg("x"), nil); err != nil {
		t.Fatal(err)
	}
	if err := m.InstallPackage(pkg("x"), nil); err == nil {
		t.Fatal("double install succeeded")
	}
}

func TestInstallFromBlob(t *testing.T) {
	m, _ := newMgr(t)
	blob, err := pkgfmt.Build(pkg("nginx"), filesFor("nginx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Install(blob); err != nil {
		t.Fatal(err)
	}
	if !m.IsInstalled("nginx") {
		t.Fatal("blob install did not register package")
	}
	if err := m.Install([]byte("garbage")); err == nil {
		t.Fatal("installed garbage blob")
	}
}

func TestRemoveDeletesFilesAndPrunesDirs(t *testing.T) {
	m, fs := newMgr(t)
	if err := m.InstallPackage(pkg("tool"), filesFor("tool")); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove("tool"); err != nil {
		t.Fatal(err)
	}
	if m.IsInstalled("tool") {
		t.Fatal("package still installed")
	}
	if fs.Exists("/usr/bin/tool") {
		t.Fatal("file survived removal")
	}
	if fs.Exists("/usr/share/tool") {
		t.Fatal("empty package dir not pruned")
	}
	if fs.Exists("/usr/share") {
		// /usr/share had only this package's subdir; pruning may remove it
		// entirely, which is fine — but /var/lib/dpkg must survive.
		t.Log("note: /usr/share pruned (empty)")
	}
	if !fs.Exists(StatusPath) {
		t.Fatal("status database lost")
	}
	if err := m.Remove("tool"); err == nil {
		t.Fatal("removing absent package succeeded")
	}
}

func TestRemoveKeepsSharedDirs(t *testing.T) {
	m, fs := newMgr(t)
	m.InstallPackage(pkg("a"), []pkgfmt.File{{Path: "/usr/bin/a", Data: []byte("a")}})
	m.InstallPackage(pkg("b"), []pkgfmt.File{{Path: "/usr/bin/b", Data: []byte("b")}})
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/usr/bin/b") {
		t.Fatal("removing a deleted b's file")
	}
	if !fs.Exists("/usr/bin") {
		t.Fatal("shared directory pruned while non-empty")
	}
}

func TestRepackRoundTrip(t *testing.T) {
	m, _ := newMgr(t)
	original := pkg("mariadb", "libc6", "ucf")
	if err := m.InstallPackage(original, filesFor("mariadb")); err != nil {
		t.Fatal(err)
	}
	blob, err := m.Repack("mariadb")
	if err != nil {
		t.Fatal(err)
	}
	p, files, err := pkgfmt.Extract(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, original) {
		t.Fatalf("repacked metadata = %+v", p)
	}
	if len(files) != 2 {
		t.Fatalf("repacked %d files", len(files))
	}
	// Repack → fresh install on another guest reproduces the files.
	m2, fs2 := newMgr(t)
	if err := m2.Install(blob); err != nil {
		t.Fatal(err)
	}
	data, err := fs2.ReadFile("/usr/bin/mariadb")
	if err != nil || string(data) != "binary of mariadb" {
		t.Fatalf("reinstalled file: %q, %v", data, err)
	}
	if _, err := m.Repack("missing"); err == nil {
		t.Fatal("repacked missing package")
	}
}

func TestAutoremoveBasic(t *testing.T) {
	m, _ := newMgr(t)
	// app depends on lib; orphan has no dependents.
	m.InstallPackage(pkg("lib"), filesFor("lib"))
	m.InstallPackage(pkg("orphan"), filesFor("orphan"))
	m.InstallPackage(pkg("app", "lib"), filesFor("app"))
	removed, err := m.Autoremove([]string{"app"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []string{"orphan"}) {
		t.Fatalf("removed = %v, want [orphan]", removed)
	}
	if !m.IsInstalled("lib") || !m.IsInstalled("app") {
		t.Fatal("kept packages were removed")
	}
}

func TestAutoremoveKeepsEssential(t *testing.T) {
	m, _ := newMgr(t)
	base := pkg("base-files")
	base.Essential = true
	m.InstallPackage(base, filesFor("base-files"))
	m.InstallPackage(pkg("extra"), filesFor("extra"))
	removed, err := m.Autoremove(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []string{"extra"}) {
		t.Fatalf("removed = %v", removed)
	}
	if !m.IsInstalled("base-files") {
		t.Fatal("essential package removed")
	}
}

func TestAutoremoveCycleReachable(t *testing.T) {
	m, _ := newMgr(t)
	// libc6 <-> perl-base cycle (the paper's example), reachable from app.
	m.InstallPackage(pkg("libc6", "perl-base"), filesFor("libc6"))
	m.InstallPackage(pkg("perl-base", "libc6"), filesFor("perl-base"))
	m.InstallPackage(pkg("app", "libc6"), filesFor("app"))
	removed, err := m.Autoremove([]string{"app"})
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("removed = %v, want none (cycle reachable)", removed)
	}
}

func TestAutoremoveCycleUnreachable(t *testing.T) {
	m, _ := newMgr(t)
	m.InstallPackage(pkg("loop-a", "loop-b"), filesFor("loop-a"))
	m.InstallPackage(pkg("loop-b", "loop-a"), filesFor("loop-b"))
	m.InstallPackage(pkg("app"), filesFor("app"))
	removed, err := m.Autoremove([]string{"app"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(removed, []string{"loop-a", "loop-b"}) {
		t.Fatalf("removed = %v, want whole unreachable cycle", removed)
	}
}

func TestInstalledBytes(t *testing.T) {
	m, _ := newMgr(t)
	a := pkg("a")
	a.InstalledSize = 100
	b := pkg("b")
	b.InstalledSize = 250
	m.InstallPackage(a, nil)
	m.InstallPackage(b, nil)
	got, err := m.InstalledBytes()
	if err != nil || got != 350 {
		t.Fatalf("InstalledBytes = %d, %v", got, err)
	}
}

// --- resolver tests ---

func testUniverse() MapUniverse {
	u := MapUniverse{}
	add := func(p pkgmeta.Package) { u[p.Name] = p }
	add(pkg("libc6", "perl-base", "dpkg"))
	add(pkg("perl-base", "libc6"))
	add(pkg("dpkg", "libc6"))
	add(pkg("bash", "libc6"))
	add(pkg("openjdk", "libc6", "bash"))
	add(pkg("tomcat8", "openjdk", "ucf"))
	add(pkg("ucf", "coreutils"))
	add(pkg("coreutils", "libc6"))
	add(pkg("mariadb", "libc6", "ucf"))
	return u
}

func TestClosure(t *testing.T) {
	u := testUniverse()
	got, err := Closure(u, []string{"tomcat8"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bash", "coreutils", "dpkg", "libc6", "openjdk", "perl-base", "tomcat8", "ucf"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Closure = %v\nwant %v", got, want)
	}
}

func TestClosureMultipleRootsAndMissing(t *testing.T) {
	u := testUniverse()
	got, err := Closure(u, []string{"mariadb", "tomcat8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("Closure = %v", got)
	}
	if _, err := Closure(u, []string{"nonexistent"}); err == nil {
		t.Fatal("closure over missing package succeeded")
	}
	u["broken"] = pkg("broken", "missing-dep")
	if _, err := Closure(u, []string{"broken"}); err == nil {
		t.Fatal("closure over missing dependency succeeded")
	}
}

func TestClosureEmptyRoots(t *testing.T) {
	got, err := Closure(testUniverse(), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("Closure(nil) = %v, %v", got, err)
	}
}

func groupIndex(order [][]string) map[string]int {
	idx := map[string]int{}
	for i, g := range order {
		for _, n := range g {
			idx[n] = i
		}
	}
	return idx
}

func TestInstallOrderCycleGrouped(t *testing.T) {
	u := testUniverse()
	names, _ := Closure(u, []string{"tomcat8", "mariadb"})
	order, err := InstallOrder(u, names)
	if err != nil {
		t.Fatal(err)
	}
	idx := groupIndex(order)
	// The libc6/perl-base/dpkg cycle must be one group.
	if idx["libc6"] != idx["perl-base"] || idx["libc6"] != idx["dpkg"] {
		t.Fatalf("cycle split across groups: %v", order)
	}
	// Dependencies come before dependents.
	deps := map[string][]string{
		"bash": {"libc6"}, "openjdk": {"libc6", "bash"},
		"tomcat8": {"openjdk", "ucf"}, "ucf": {"coreutils"},
		"coreutils": {"libc6"}, "mariadb": {"libc6", "ucf"},
	}
	for p, ds := range deps {
		for _, d := range ds {
			if idx[d] > idx[p] {
				t.Fatalf("%s (group %d) installed before its dependency %s (group %d)",
					p, idx[p], d, idx[d])
			}
		}
	}
	// Every package appears exactly once.
	count := 0
	for _, g := range order {
		count += len(g)
	}
	if count != len(names) {
		t.Fatalf("order covers %d packages, want %d", count, len(names))
	}
}

func TestInstallOrderDeterministic(t *testing.T) {
	u := testUniverse()
	names, _ := Closure(u, []string{"tomcat8", "mariadb"})
	a, err := InstallOrder(u, names)
	if err != nil {
		t.Fatal(err)
	}
	b, err := InstallOrder(u, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("InstallOrder not deterministic")
	}
}

func TestInstallOrderUnknownPackage(t *testing.T) {
	if _, err := InstallOrder(testUniverse(), []string{"ghost"}); err == nil {
		t.Fatal("unknown package accepted")
	}
}

func TestInstallOrderIgnoresOutOfSetEdges(t *testing.T) {
	u := testUniverse()
	// bash depends on libc6, but when libc6 is outside the requested set
	// the edge is ignored (it is assumed present already).
	order, err := InstallOrder(u, []string{"bash"})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0][0] != "bash" {
		t.Fatalf("order = %v", order)
	}
}

// TestQuickInstallOrderRespectsDeps: for random DAG-ish universes the
// install order always places dependencies in the same or an earlier group.
func TestQuickInstallOrderRespectsDeps(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		u := MapUniverse{}
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("p%02d", i)
		}
		for i := 0; i < n; i++ {
			var deps []string
			for j := 0; j < i; j++ { // edges to earlier vertices: acyclic
				if rng.Intn(4) == 0 {
					deps = append(deps, names[j])
				}
			}
			// Occasionally close a cycle.
			if i > 0 && rng.Intn(10) == 0 {
				deps = append(deps, names[rng.Intn(n)])
			}
			u[names[i]] = pkg(names[i], deps...)
		}
		order, err := InstallOrder(u, names)
		if err != nil {
			return false
		}
		idx := groupIndex(order)
		if len(idx) != n {
			return false
		}
		for _, p := range u {
			for _, d := range p.Depends {
				if idx[d] > idx[p.Name] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickInstallRemoveRestoresFS: installing then removing random
// packages restores the filesystem's file count.
func TestQuickInstallRemoveRestoresFS(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := vdisk.New("g", 16<<20, vdisk.DefaultClusterSize)
		fs, err := fstree.Format(d, 1024)
		if err != nil {
			return false
		}
		m, err := New(fs)
		if err != nil {
			return false
		}
		baseFiles := fs.NumFiles()
		n := rng.Intn(8) + 1
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("pkg%d", i)
			var files []pkgfmt.File
			for j := 0; j < rng.Intn(5)+1; j++ {
				data := make([]byte, rng.Intn(5000))
				rng.Read(data)
				files = append(files, pkgfmt.File{
					Path: fmt.Sprintf("/opt/%s/f%d", name, j), Data: data,
				})
			}
			if err := m.InstallPackage(pkg(name), files); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if err := m.Remove(fmt.Sprintf("pkg%d", i)); err != nil {
				return false
			}
		}
		return fs.NumFiles() == baseFiles
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInstallRemove(b *testing.B) {
	d := vdisk.New("bench", 64<<20, vdisk.DefaultClusterSize)
	fs, _ := fstree.Format(d, 8192)
	m, _ := New(fs)
	files := filesFor("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkg(fmt.Sprintf("bench%d", i))
		if err := m.InstallPackage(p, files); err != nil {
			b.Fatal(err)
		}
		if err := m.Remove(p.Name); err != nil {
			b.Fatal(err)
		}
	}
}
