package pkgmgr

import (
	"fmt"

	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
)

// Upgrade replaces an installed package with a different build of the same
// package: the old version's files are removed (shared directories are
// preserved) and the new version installed. The package metadata model
// treats versions as semantically distinct (simP < 1), so upgraded
// packages are re-exported on the next publish — the "software package
// updates" the paper's size model includes.
func (m *Manager) Upgrade(blob []byte) error {
	p, files, err := pkgfmt.Extract(blob)
	if err != nil {
		return err
	}
	old, installed, err := m.Get(p.Name)
	if err != nil {
		return err
	}
	if !installed {
		return fmt.Errorf("pkgmgr: upgrade %s: not installed", p.Name)
	}
	if old.Version == p.Version && old.Arch == p.Arch {
		return fmt.Errorf("pkgmgr: upgrade %s: version %s already installed", p.Name, p.Version)
	}
	if err := m.Remove(p.Name); err != nil {
		return err
	}
	return m.InstallPackage(p, files)
}

// Outdated compares the installed set against a universe and returns the
// packages whose universe version differs, sorted by name.
func (m *Manager) Outdated(u Universe) ([]pkgmeta.Package, error) {
	installed, err := m.Installed()
	if err != nil {
		return nil, err
	}
	var out []pkgmeta.Package
	for _, p := range installed {
		if cur, ok := u.Lookup(p.Name); ok && cur.Version != p.Version {
			out = append(out, cur)
		}
	}
	return out, nil
}
