package chunkpool

import (
	"bytes"
	"io"
	"testing"
)

// sliceReader yields data in deliberately small, non-chunk-aligned reads so
// Copy exercises its loop rather than a single pass.
type sliceReader struct {
	data []byte
	step int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.step
	if n > len(r.data) {
		n = len(r.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func TestCopy(t *testing.T) {
	data := make([]byte, 3*Size+1234)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var dst bytes.Buffer
	n, err := Copy(&dst, &sliceReader{data: append([]byte(nil), data...), step: 7919})
	if err != nil {
		t.Fatalf("Copy: %v", err)
	}
	if n != int64(len(data)) {
		t.Fatalf("Copy wrote %d bytes, want %d", n, len(data))
	}
	if !bytes.Equal(dst.Bytes(), data) {
		t.Fatal("Copy corrupted data")
	}
}

func TestGetPutSize(t *testing.T) {
	b := Get()
	if len(*b) != Size {
		t.Fatalf("Get returned %d-byte chunk, want %d", len(*b), Size)
	}
	Put(b)
	short := make([]byte, 10)
	Put(&short) // must be dropped, not pooled
	b2 := Get()
	if len(*b2) != Size {
		t.Fatalf("Get after undersized Put returned %d-byte chunk, want %d", len(*b2), Size)
	}
	Put(b2)
}

// TestWarmPathZeroAllocs is the satellite gate: once the pool is warm, a
// chunk round-trip allocates nothing.
func TestWarmPathZeroAllocs(t *testing.T) {
	Put(Get()) // warm the pool
	allocs := testing.AllocsPerRun(200, func() {
		b := Get()
		(*b)[0] = 1
		Put(b)
	})
	if allocs != 0 {
		t.Fatalf("warm Get/Put allocates %v objects per op, want 0", allocs)
	}
}

func BenchmarkWarmCopy(b *testing.B) {
	src := make([]byte, Size)
	b.SetBytes(Size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Copy(io.Discard, bytes.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}
