// Package chunkpool provides the shared chunk buffers used by every
// streaming IO path: blobstore streaming puts, diskstore segment appends,
// vdisk serialization, and the assembly pipeline's streaming copies. All of
// them move data in Size-byte chunks drawn from one process-wide sync.Pool,
// so the steady-state allocation rate of a streaming transfer is zero no
// matter how many bytes flow through it — the property the flat-RSS
// retrieval gate depends on.
package chunkpool

import (
	"io"
	"sync"
)

// Size is the chunk granularity of every streaming path. It is the knob
// that bounds peak streaming memory: a transfer holds at most one chunk at
// a time, so peak streaming RSS is Size × concurrent transfers plus
// fixed per-image metadata. 128 KiB amortizes per-chunk call overhead while
// staying far below any interesting image size.
const Size = 128 << 10

var pool = sync.Pool{
	New: func() any {
		b := make([]byte, Size)
		return &b
	},
}

// Get returns a Size-byte chunk buffer. Return it with Put when done; the
// pointer indirection keeps the pool allocation-free on the warm path.
func Get() *[]byte {
	return pool.Get().(*[]byte)
}

// Put returns a chunk obtained from Get to the pool. Buffers of any other
// length are dropped rather than pooled.
func Put(b *[]byte) {
	if b == nil || len(*b) != Size {
		return
	}
	pool.Put(b)
}

// Copy streams src into dst through a pooled chunk, like io.Copy but with
// zero steady-state allocations. It deliberately does not use src's
// WriteTo or dst's ReadFrom shortcuts: those can materialize or alias the
// source's whole backing buffer, and every caller here wants strictly
// chunked movement.
func Copy(dst io.Writer, src io.Reader) (int64, error) {
	buf := Get()
	defer Put(buf)
	var written int64
	for {
		n, rerr := src.Read(*buf)
		if n > 0 {
			w, werr := dst.Write((*buf)[:n])
			written += int64(w)
			if werr != nil {
				return written, werr
			}
			if w != n {
				return written, io.ErrShortWrite
			}
		}
		if rerr == io.EOF {
			return written, nil
		}
		if rerr != nil {
			return written, rerr
		}
	}
}
