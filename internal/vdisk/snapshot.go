package vdisk

import (
	"fmt"
	"sort"
)

// Snapshot records the disk's current contents under a name, like qcow2's
// internal snapshots. Snapshots capture the effective state including the
// backing chain, so later Flatten or backing changes do not disturb them.
func (d *Disk) Snapshot(name string) error {
	if name == "" {
		return fmt.Errorf("vdisk %s: empty snapshot name", d.name)
	}
	if d.snapshots == nil {
		d.snapshots = make(map[string]map[int64][]byte)
	}
	if _, exists := d.snapshots[name]; exists {
		return fmt.Errorf("vdisk %s: snapshot %q already exists", d.name, name)
	}
	snap := make(map[int64][]byte)
	for _, ci := range d.effectiveIndices() {
		cp := make([]byte, d.clusterSize)
		if err := d.readSpan(cp, ci, 0); err != nil {
			return fmt.Errorf("vdisk %s: snapshot %q: %w", d.name, name, err)
		}
		snap[ci] = cp
	}
	d.snapshots[name] = snap
	return nil
}

// Revert restores the disk to a snapshot's contents. The snapshot remains
// available. Reverting detaches the backing chain (the snapshot already
// includes its data).
func (d *Disk) Revert(name string) error {
	snap, ok := d.snapshots[name]
	if !ok {
		return fmt.Errorf("vdisk %s: snapshot %q not found", d.name, name)
	}
	clusters := make(map[int64][]byte, len(snap))
	for ci, data := range snap {
		cp := make([]byte, len(data))
		copy(cp, data)
		clusters[ci] = cp
	}
	d.clusters = clusters
	// The snapshot captured the full effective state, so the lazy source
	// and backing chain are detached along with their masks.
	d.lazy = nil
	d.dropped = nil
	d.backing = nil
	return nil
}

// DeleteSnapshot removes a snapshot.
func (d *Disk) DeleteSnapshot(name string) error {
	if _, ok := d.snapshots[name]; !ok {
		return fmt.Errorf("vdisk %s: snapshot %q not found", d.name, name)
	}
	delete(d.snapshots, name)
	return nil
}

// Snapshots lists snapshot names in sorted order.
func (d *Disk) Snapshots() []string {
	out := make([]string, 0, len(d.snapshots))
	for name := range d.snapshots {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
