// Package vdisk implements a qcow2-like virtual disk: a sparse,
// cluster-mapped block device with copy-on-write backing files and a
// two-level (L1/L2) mapping table in its serialized form.
//
// The paper's VMIs are qcow2 images; its repository-size figures (Fig. 3)
// account the bytes of serialized qcow2 files, and the Qcow2 / Qcow2+Gzip
// baselines store exactly those bytes. This package provides the same
// storage semantics — sparse allocation (unwritten clusters occupy no
// space), copy-on-write children (cheap VMI cloning and versioning), and a
// deterministic linear serialization whose length is the image's "actual
// size" — without requiring qemu.
package vdisk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultClusterSize is the default cluster size. Real qcow2 defaults to
// 64 KiB; the reproduction workload is generated at 1/1024 byte scale, so a
// proportionally smaller cluster keeps the allocation granularity faithful.
const DefaultClusterSize = 4096

// Magic identifies serialized disks ("QGO1" in analogy to qcow2's "QFI\xfb").
var Magic = []byte("QGO1")

const headerSize = 40

// Disk is a sparse virtual disk. The zero value is not usable; construct
// with New or Deserialize. Disk is not safe for concurrent mutation.
type Disk struct {
	name        string
	clusterSize int
	virtualSize int64
	clusters    map[int64][]byte // cluster index -> cluster data
	backing     *Disk
	snapshots   map[string]map[int64][]byte // named internal snapshots
}

// New creates an empty sparse disk with the given virtual size in bytes.
func New(name string, virtualSize int64, clusterSize int) *Disk {
	if clusterSize <= 0 || clusterSize&(clusterSize-1) != 0 {
		panic(fmt.Sprintf("vdisk: cluster size %d must be a positive power of two", clusterSize))
	}
	if virtualSize < 0 {
		panic("vdisk: negative virtual size")
	}
	return &Disk{
		name:        name,
		clusterSize: clusterSize,
		virtualSize: virtualSize,
		clusters:    make(map[int64][]byte),
	}
}

// Name returns the disk's name.
func (d *Disk) Name() string { return d.name }

// SetName renames the disk.
func (d *Disk) SetName(name string) { d.name = name }

// VirtualSize returns the guest-visible size in bytes.
func (d *Disk) VirtualSize() int64 { return d.virtualSize }

// ClusterSize returns the cluster size in bytes.
func (d *Disk) ClusterSize() int { return d.clusterSize }

// Backing returns the backing disk, or nil.
func (d *Disk) Backing() *Disk { return d.backing }

// AllocatedClusters returns the number of clusters allocated locally
// (excluding the backing chain).
func (d *Disk) AllocatedClusters() int { return len(d.clusters) }

// AllocatedBytes returns the local allocation in bytes — the sparse
// "actual size" of the image, excluding the backing chain.
func (d *Disk) AllocatedBytes() int64 {
	return int64(len(d.clusters)) * int64(d.clusterSize)
}

// Grow extends the virtual size. Shrinking is not supported.
func (d *Disk) Grow(newSize int64) error {
	if newSize < d.virtualSize {
		return fmt.Errorf("vdisk %s: cannot shrink from %d to %d", d.name, d.virtualSize, newSize)
	}
	d.virtualSize = newSize
	return nil
}

// ReadAt reads len(p) bytes at offset off, falling through to the backing
// chain for unallocated clusters and yielding zeros where nothing was ever
// written. It implements io.ReaderAt semantics for in-range requests.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.virtualSize {
		return 0, fmt.Errorf("vdisk %s: read [%d,%d) out of range [0,%d)", d.name, off, off+int64(len(p)), d.virtualSize)
	}
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / int64(d.clusterSize)
		co := int((off + int64(n)) % int64(d.clusterSize))
		span := d.clusterSize - co
		if span > len(p)-n {
			span = len(p) - n
		}
		src := d.lookup(ci)
		if src == nil {
			for i := 0; i < span; i++ {
				p[n+i] = 0
			}
		} else {
			copy(p[n:n+span], src[co:co+span])
		}
		n += span
	}
	return n, nil
}

// lookup finds the cluster data for index ci in this disk or its backing
// chain; nil means never written.
func (d *Disk) lookup(ci int64) []byte {
	for disk := d; disk != nil; disk = disk.backing {
		if c, ok := disk.clusters[ci]; ok {
			return c
		}
	}
	return nil
}

// WriteAt writes p at offset off, allocating clusters as needed. Partial
// cluster writes over backed clusters copy the old contents first
// (copy-on-write).
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.virtualSize {
		return 0, fmt.Errorf("vdisk %s: write [%d,%d) out of range [0,%d)", d.name, off, off+int64(len(p)), d.virtualSize)
	}
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / int64(d.clusterSize)
		co := int((off + int64(n)) % int64(d.clusterSize))
		span := d.clusterSize - co
		if span > len(p)-n {
			span = len(p) - n
		}
		c, ok := d.clusters[ci]
		if !ok {
			c = make([]byte, d.clusterSize)
			if span != d.clusterSize {
				// Partial write: preserve backing contents (COW).
				if old := d.lookup(ci); old != nil {
					copy(c, old)
				}
			}
			d.clusters[ci] = c
		}
		copy(c[co:co+span], p[n:n+span])
		n += span
	}
	return n, nil
}

// Discard deallocates all clusters fully contained in [off, off+length),
// reclaiming their space. Reads of discarded clusters return backing data
// or zeros. This models qemu's discard/unmap support, which the
// Expelliarmus decomposer relies on when removing packages shrinks an
// image.
func (d *Disk) Discard(off, length int64) {
	if length <= 0 {
		return
	}
	first := (off + int64(d.clusterSize) - 1) / int64(d.clusterSize)
	last := (off + length) / int64(d.clusterSize) // exclusive
	for ci := first; ci < last; ci++ {
		delete(d.clusters, ci)
	}
}

// ZeroFill explicitly writes zeros over [off, off+length). Unlike Discard
// it masks backing-file contents.
func (d *Disk) ZeroFill(off, length int64) error {
	zeros := make([]byte, d.clusterSize)
	for length > 0 {
		span := int64(d.clusterSize) - off%int64(d.clusterSize)
		if span > length {
			span = length
		}
		if _, err := d.WriteAt(zeros[:span], off); err != nil {
			return err
		}
		off += span
		length -= span
	}
	return nil
}

// NewChild creates a copy-on-write child whose reads fall through to d.
// Writes to the child never modify d.
func (d *Disk) NewChild(name string) *Disk {
	return &Disk{
		name:        name,
		clusterSize: d.clusterSize,
		virtualSize: d.virtualSize,
		clusters:    make(map[int64][]byte),
		backing:     d,
	}
}

// Clone returns an independent deep copy of the disk (same backing).
func (d *Disk) Clone(name string) *Disk {
	c := &Disk{
		name:        name,
		clusterSize: d.clusterSize,
		virtualSize: d.virtualSize,
		clusters:    make(map[int64][]byte, len(d.clusters)),
		backing:     d.backing,
	}
	for ci, data := range d.clusters {
		cp := make([]byte, len(data))
		copy(cp, data)
		c.clusters[ci] = cp
	}
	return c
}

// Flatten merges the whole backing chain into d, making it standalone.
func (d *Disk) Flatten() {
	for b := d.backing; b != nil; b = b.backing {
		for ci, data := range b.clusters {
			if _, ok := d.clusters[ci]; !ok {
				cp := make([]byte, len(data))
				copy(cp, data)
				d.clusters[ci] = cp
			}
		}
	}
	d.backing = nil
}

// allocatedIndices returns the locally allocated cluster indices in order.
func (d *Disk) allocatedIndices() []int64 {
	idx := make([]int64, 0, len(d.clusters))
	for ci := range d.clusters {
		idx = append(idx, ci)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// Serialize encodes the disk (with its backing chain flattened into the
// output, like `qemu-img convert`) in the qcow2-like format:
//
//	header | L1 table | L2 tables | data clusters
//
// Unallocated clusters occupy no space (sparse encoding). The length of
// the returned slice is the image's on-disk size, the quantity the Qcow2
// baseline accounts in Fig. 3.
func (d *Disk) Serialize() []byte {
	// Collect the effective cluster set including the backing chain.
	eff := make(map[int64][]byte)
	var chain []*Disk
	for disk := d; disk != nil; disk = disk.backing {
		chain = append(chain, disk)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		for ci, data := range chain[i].clusters {
			eff[ci] = data
		}
	}
	indices := make([]int64, 0, len(eff))
	for ci := range eff {
		indices = append(indices, ci)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	cs := int64(d.clusterSize)
	entriesPerL2 := cs / 8
	numClusters := (d.virtualSize + cs - 1) / cs
	numL2 := (numClusters + entriesPerL2 - 1) / entriesPerL2

	// Which L2 tables are needed?
	l2Needed := make(map[int64]bool)
	for _, ci := range indices {
		l2Needed[ci/entriesPerL2] = true
	}
	l2Order := make([]int64, 0, len(l2Needed))
	for t := range l2Needed {
		l2Order = append(l2Order, t)
	}
	sort.Slice(l2Order, func(i, j int) bool { return l2Order[i] < l2Order[j] })

	// Like real qcow2, every section is cluster-aligned: one header
	// cluster, then the L1 table rounded up to whole clusters, then the L2
	// tables (one cluster each), then the data clusters. Alignment matters
	// beyond fidelity — it is what lets fixed-size block deduplication
	// find identical clusters across images.
	headerClusters := (int64(headerSize) + cs - 1) / cs
	if headerClusters < 1 {
		headerClusters = 1
	}
	l1Bytes := numL2 * 8
	l1Clusters := (l1Bytes + cs - 1) / cs
	l2Start := (headerClusters + l1Clusters) * cs
	dataStart := l2Start + int64(len(l2Order))*cs

	var buf bytes.Buffer
	// Header cluster(s).
	buf.Write(Magic)
	hdr := make([]byte, headerClusters*cs-int64(len(Magic)))
	binary.BigEndian.PutUint32(hdr[0:], 1) // version
	binary.BigEndian.PutUint32(hdr[4:], uint32(d.clusterSize))
	binary.BigEndian.PutUint64(hdr[8:], uint64(d.virtualSize))
	binary.BigEndian.PutUint64(hdr[16:], uint64(numL2))
	binary.BigEndian.PutUint64(hdr[24:], uint64(len(indices)))
	buf.Write(hdr)

	// L1 table: offset of each L2 table, 0 = absent.
	l2Offset := make(map[int64]int64, len(l2Order))
	for i, t := range l2Order {
		l2Offset[t] = l2Start + int64(i)*cs
	}
	l1 := make([]byte, l1Clusters*cs)
	for t, off := range l2Offset {
		binary.BigEndian.PutUint64(l1[t*8:], uint64(off))
	}
	buf.Write(l1)

	// L2 tables: offset of each data cluster, 0 = unallocated.
	clusterOffset := make(map[int64]int64, len(indices))
	for i, ci := range indices {
		clusterOffset[ci] = dataStart + int64(i)*cs
	}
	for _, t := range l2Order {
		l2 := make([]byte, cs)
		base := t * entriesPerL2
		for e := int64(0); e < entriesPerL2; e++ {
			if off, ok := clusterOffset[base+e]; ok {
				binary.BigEndian.PutUint64(l2[e*8:], uint64(off))
			}
		}
		buf.Write(l2)
	}

	// Data clusters.
	for _, ci := range indices {
		buf.Write(eff[ci])
	}
	return buf.Bytes()
}

// Deserialize decodes a serialized disk image.
func Deserialize(name string, image []byte) (*Disk, error) {
	if len(image) < headerSize || !bytes.Equal(image[:len(Magic)], Magic) {
		return nil, fmt.Errorf("vdisk: bad magic")
	}
	hdr := image[len(Magic):headerSize]
	version := binary.BigEndian.Uint32(hdr[0:])
	if version != 1 {
		return nil, fmt.Errorf("vdisk: unsupported version %d", version)
	}
	clusterSize := int(binary.BigEndian.Uint32(hdr[4:]))
	if clusterSize <= 0 || clusterSize&(clusterSize-1) != 0 {
		return nil, fmt.Errorf("vdisk: corrupt cluster size %d", clusterSize)
	}
	virtualSize := int64(binary.BigEndian.Uint64(hdr[8:]))
	numL2 := int64(binary.BigEndian.Uint64(hdr[16:]))

	cs := int64(clusterSize)
	entriesPerL2 := cs / 8
	headerClusters := (int64(headerSize) + cs - 1) / cs
	if headerClusters < 1 {
		headerClusters = 1
	}
	l1Start := headerClusters * cs
	l1End := l1Start + numL2*8
	if int64(len(image)) < l1End {
		return nil, fmt.Errorf("vdisk: truncated L1 table")
	}
	d := New(name, virtualSize, clusterSize)
	for t := int64(0); t < numL2; t++ {
		l2Off := int64(binary.BigEndian.Uint64(image[l1Start+t*8:]))
		if l2Off == 0 {
			continue
		}
		if l2Off+cs > int64(len(image)) {
			return nil, fmt.Errorf("vdisk: L2 table %d out of bounds", t)
		}
		l2 := image[l2Off : l2Off+cs]
		for e := int64(0); e < entriesPerL2; e++ {
			dataOff := int64(binary.BigEndian.Uint64(l2[e*8:]))
			if dataOff == 0 {
				continue
			}
			if dataOff+cs > int64(len(image)) {
				return nil, fmt.Errorf("vdisk: cluster %d out of bounds", t*entriesPerL2+e)
			}
			c := make([]byte, cs)
			copy(c, image[dataOff:dataOff+cs])
			d.clusters[t*entriesPerL2+e] = c
		}
	}
	return d, nil
}
