// Package vdisk implements a qcow2-like virtual disk: a sparse,
// cluster-mapped block device with copy-on-write backing files and a
// two-level (L1/L2) mapping table in its serialized form.
//
// The paper's VMIs are qcow2 images; its repository-size figures (Fig. 3)
// account the bytes of serialized qcow2 files, and the Qcow2 / Qcow2+Gzip
// baselines store exactly those bytes. This package provides the same
// storage semantics — sparse allocation (unwritten clusters occupy no
// space), copy-on-write children (cheap VMI cloning and versioning), and a
// deterministic linear serialization whose length is the image's "actual
// size" — without requiring qemu.
package vdisk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// DefaultClusterSize is the default cluster size. Real qcow2 defaults to
// 64 KiB; the reproduction workload is generated at 1/1024 byte scale, so a
// proportionally smaller cluster keeps the allocation granularity faithful.
const DefaultClusterSize = 4096

// Magic identifies serialized disks ("QGO1" in analogy to qcow2's "QFI\xfb").
var Magic = []byte("QGO1")

const headerSize = 40

// lazySource is an on-demand cluster provider: a serialized image behind
// an io.ReaderAt plus the file offset of every allocated cluster. A disk
// opened with DeserializeLazy reads clusters straight from the source as
// they are touched instead of materializing the whole image up front. The
// source is immutable and safe to share between disks (Clone does).
type lazySource struct {
	ra      io.ReaderAt
	offsets map[int64]int64 // cluster index -> byte offset in ra
}

// Disk is a sparse virtual disk. The zero value is not usable; construct
// with New, Deserialize, or DeserializeLazy. Disk is not safe for
// concurrent mutation.
//
// A disk has up to three layers per cluster, consulted in order: local
// writes (clusters), the lazy source it was deserialized from (lazy,
// masked per-cluster by dropped so Discard works without materializing),
// and the backing chain. Writes always land in clusters (copy-on-write),
// so the lazy source is never modified.
type Disk struct {
	name        string
	clusterSize int
	virtualSize int64
	clusters    map[int64][]byte // cluster index -> cluster data
	lazy        *lazySource
	dropped     map[int64]struct{} // lazy clusters masked by Discard
	backing     *Disk
	snapshots   map[string]map[int64][]byte // named internal snapshots
}

// New creates an empty sparse disk with the given virtual size in bytes.
func New(name string, virtualSize int64, clusterSize int) *Disk {
	if clusterSize <= 0 || clusterSize&(clusterSize-1) != 0 {
		panic(fmt.Sprintf("vdisk: cluster size %d must be a positive power of two", clusterSize))
	}
	if virtualSize < 0 {
		panic("vdisk: negative virtual size")
	}
	return &Disk{
		name:        name,
		clusterSize: clusterSize,
		virtualSize: virtualSize,
		clusters:    make(map[int64][]byte),
	}
}

// Name returns the disk's name.
func (d *Disk) Name() string { return d.name }

// SetName renames the disk.
func (d *Disk) SetName(name string) { d.name = name }

// VirtualSize returns the guest-visible size in bytes.
func (d *Disk) VirtualSize() int64 { return d.virtualSize }

// ClusterSize returns the cluster size in bytes.
func (d *Disk) ClusterSize() int { return d.clusterSize }

// Backing returns the backing disk, or nil.
func (d *Disk) Backing() *Disk { return d.backing }

// AllocatedClusters returns the number of clusters allocated locally
// (excluding the backing chain). Lazily backed clusters count: they are
// this disk's own content, merely not materialized yet.
func (d *Disk) AllocatedClusters() int {
	n := len(d.clusters)
	if d.lazy != nil {
		for ci := range d.lazy.offsets {
			if _, ok := d.clusters[ci]; ok {
				continue
			}
			if _, ok := d.dropped[ci]; ok {
				continue
			}
			n++
		}
	}
	return n
}

// AllocatedBytes returns the local allocation in bytes — the sparse
// "actual size" of the image, excluding the backing chain.
func (d *Disk) AllocatedBytes() int64 {
	return int64(d.AllocatedClusters()) * int64(d.clusterSize)
}

// Grow extends the virtual size. Shrinking is not supported.
func (d *Disk) Grow(newSize int64) error {
	if newSize < d.virtualSize {
		return fmt.Errorf("vdisk %s: cannot shrink from %d to %d", d.name, d.virtualSize, newSize)
	}
	d.virtualSize = newSize
	return nil
}

// ReadAt reads len(p) bytes at offset off, falling through to the backing
// chain for unallocated clusters and yielding zeros where nothing was ever
// written. It implements io.ReaderAt semantics for in-range requests.
func (d *Disk) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.virtualSize {
		return 0, fmt.Errorf("vdisk %s: read [%d,%d) out of range [0,%d)", d.name, off, off+int64(len(p)), d.virtualSize)
	}
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / int64(d.clusterSize)
		co := int((off + int64(n)) % int64(d.clusterSize))
		span := d.clusterSize - co
		if span > len(p)-n {
			span = len(p) - n
		}
		if err := d.readSpan(p[n:n+span], ci, co); err != nil {
			return n, err
		}
		n += span
	}
	return n, nil
}

// readSpan fills dst with the bytes of cluster ci starting at in-cluster
// offset co, walking the layers: local clusters, then the disk's lazy
// source (unless the cluster was discarded), then the backing chain, then
// zeros. Lazy clusters are read straight into dst — no cluster buffer is
// materialized or retained.
func (d *Disk) readSpan(dst []byte, ci int64, co int) error {
	for disk := d; disk != nil; disk = disk.backing {
		if c, ok := disk.clusters[ci]; ok {
			copy(dst, c[co:co+len(dst)])
			return nil
		}
		if disk.lazy != nil {
			if _, gone := disk.dropped[ci]; !gone {
				if off, ok := disk.lazy.offsets[ci]; ok {
					if _, err := disk.lazy.ra.ReadAt(dst, off+int64(co)); err != nil {
						return fmt.Errorf("vdisk %s: lazy read of cluster %d: %w", disk.name, ci, err)
					}
					return nil
				}
			}
		}
	}
	for i := range dst {
		dst[i] = 0
	}
	return nil
}

// WriteAt writes p at offset off, allocating clusters as needed. Partial
// cluster writes over backed clusters copy the old contents first
// (copy-on-write).
func (d *Disk) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > d.virtualSize {
		return 0, fmt.Errorf("vdisk %s: write [%d,%d) out of range [0,%d)", d.name, off, off+int64(len(p)), d.virtualSize)
	}
	n := 0
	for n < len(p) {
		ci := (off + int64(n)) / int64(d.clusterSize)
		co := int((off + int64(n)) % int64(d.clusterSize))
		span := d.clusterSize - co
		if span > len(p)-n {
			span = len(p) - n
		}
		c, ok := d.clusters[ci]
		if !ok {
			c = make([]byte, d.clusterSize)
			if span != d.clusterSize {
				// Partial write: preserve lazy/backing contents (COW).
				if err := d.readSpan(c, ci, 0); err != nil {
					return n, err
				}
			}
			d.clusters[ci] = c
		}
		copy(c[co:co+span], p[n:n+span])
		n += span
	}
	return n, nil
}

// Discard deallocates all clusters fully contained in [off, off+length),
// reclaiming their space. Reads of discarded clusters return backing data
// or zeros. This models qemu's discard/unmap support, which the
// Expelliarmus decomposer relies on when removing packages shrinks an
// image.
func (d *Disk) Discard(off, length int64) {
	if length <= 0 {
		return
	}
	first := (off + int64(d.clusterSize) - 1) / int64(d.clusterSize)
	last := (off + length) / int64(d.clusterSize) // exclusive
	for ci := first; ci < last; ci++ {
		delete(d.clusters, ci)
		if d.lazy != nil {
			// Mask (don't materialize) the lazy cluster so reads fall
			// through to backing/zeros and serialization drops it, exactly
			// as if a materialized cluster had been deleted.
			if _, ok := d.lazy.offsets[ci]; ok {
				if d.dropped == nil {
					d.dropped = make(map[int64]struct{})
				}
				d.dropped[ci] = struct{}{}
			}
		}
	}
}

// ZeroFill explicitly writes zeros over [off, off+length). Unlike Discard
// it masks backing-file contents.
func (d *Disk) ZeroFill(off, length int64) error {
	zeros := make([]byte, d.clusterSize)
	for length > 0 {
		span := int64(d.clusterSize) - off%int64(d.clusterSize)
		if span > length {
			span = length
		}
		if _, err := d.WriteAt(zeros[:span], off); err != nil {
			return err
		}
		off += span
		length -= span
	}
	return nil
}

// NewChild creates a copy-on-write child whose reads fall through to d.
// Writes to the child never modify d.
func (d *Disk) NewChild(name string) *Disk {
	return &Disk{
		name:        name,
		clusterSize: d.clusterSize,
		virtualSize: d.virtualSize,
		clusters:    make(map[int64][]byte),
		backing:     d,
	}
}

// Clone returns an independent copy of the disk (same backing). Local
// clusters are deep-copied; the lazy source — immutable by construction —
// is shared, with the discard mask copied so each clone discards
// independently.
func (d *Disk) Clone(name string) *Disk {
	c := &Disk{
		name:        name,
		clusterSize: d.clusterSize,
		virtualSize: d.virtualSize,
		clusters:    make(map[int64][]byte, len(d.clusters)),
		lazy:        d.lazy,
		backing:     d.backing,
	}
	for ci, data := range d.clusters {
		cp := make([]byte, len(data))
		copy(cp, data)
		c.clusters[ci] = cp
	}
	if len(d.dropped) > 0 {
		c.dropped = make(map[int64]struct{}, len(d.dropped))
		for ci := range d.dropped {
			c.dropped[ci] = struct{}{}
		}
	}
	return c
}

// Flatten merges the whole backing chain and the disk's own lazy source
// into local clusters, making it standalone: after Flatten the disk holds
// every byte itself and no longer references its deserialization source.
// The error is always nil for fully materialized disks; a lazily backed
// disk surfaces read failures from its source.
func (d *Disk) Flatten() error {
	for _, ci := range d.effectiveIndices() {
		if _, ok := d.clusters[ci]; ok {
			continue
		}
		c := make([]byte, d.clusterSize)
		if err := d.readSpan(c, ci, 0); err != nil {
			return err
		}
		d.clusters[ci] = c
	}
	d.lazy = nil
	d.dropped = nil
	d.backing = nil
	return nil
}

// effectiveIndices returns the sorted union of allocated cluster indices
// across all layers: local clusters, the lazy source minus its discard
// mask, and the backing chain — the cluster set Serialize encodes.
func (d *Disk) effectiveIndices() []int64 {
	set := make(map[int64]struct{})
	for disk := d; disk != nil; disk = disk.backing {
		for ci := range disk.clusters {
			set[ci] = struct{}{}
		}
		if disk.lazy != nil {
			for ci := range disk.lazy.offsets {
				if _, gone := disk.dropped[ci]; !gone {
					set[ci] = struct{}{}
				}
			}
		}
	}
	idx := make([]int64, 0, len(set))
	for ci := range set {
		idx = append(idx, ci)
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx
}

// layout captures where each section of the serialized image lands. It is
// derived deterministically from the cluster set, so WriteTo can stream
// the image without building it.
type layout struct {
	cs             int64
	entriesPerL2   int64
	numL2          int64
	headerClusters int64
	l1Clusters     int64
	l2Start        int64
	dataStart      int64
	indices        []int64
	l2Order        []int64
	total          int64
}

func (d *Disk) layoutFor(indices []int64) layout {
	cs := int64(d.clusterSize)
	entriesPerL2 := cs / 8
	numClusters := (d.virtualSize + cs - 1) / cs
	numL2 := (numClusters + entriesPerL2 - 1) / entriesPerL2

	// Which L2 tables are needed?
	l2Needed := make(map[int64]bool)
	for _, ci := range indices {
		l2Needed[ci/entriesPerL2] = true
	}
	l2Order := make([]int64, 0, len(l2Needed))
	for t := range l2Needed {
		l2Order = append(l2Order, t)
	}
	sort.Slice(l2Order, func(i, j int) bool { return l2Order[i] < l2Order[j] })

	// Like real qcow2, every section is cluster-aligned: one header
	// cluster, then the L1 table rounded up to whole clusters, then the L2
	// tables (one cluster each), then the data clusters. Alignment matters
	// beyond fidelity — it is what lets fixed-size block deduplication
	// find identical clusters across images.
	headerClusters := (int64(headerSize) + cs - 1) / cs
	if headerClusters < 1 {
		headerClusters = 1
	}
	l1Bytes := numL2 * 8
	l1Clusters := (l1Bytes + cs - 1) / cs
	l2Start := (headerClusters + l1Clusters) * cs
	dataStart := l2Start + int64(len(l2Order))*cs
	return layout{
		cs:             cs,
		entriesPerL2:   entriesPerL2,
		numL2:          numL2,
		headerClusters: headerClusters,
		l1Clusters:     l1Clusters,
		l2Start:        l2Start,
		dataStart:      dataStart,
		indices:        indices,
		l2Order:        l2Order,
		total:          dataStart + int64(len(indices))*cs,
	}
}

// WriteTo streams the serialized image (identical bytes to Serialize) to
// w, one section buffer at a time: header and L1 up front, then each L2
// table through a single reused cluster buffer, then each data cluster
// through another. Peak memory is a few cluster buffers plus the offset
// bookkeeping — independent of image size — so a retrieval can serve a
// gigabyte image straight to a sink without ever holding it.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	lo := d.layoutFor(d.effectiveIndices())
	var written int64
	emit := func(b []byte) error {
		n, err := w.Write(b)
		written += int64(n)
		if err != nil {
			return err
		}
		if n < len(b) {
			return io.ErrShortWrite
		}
		return nil
	}

	// Header cluster(s).
	hdr := make([]byte, lo.headerClusters*lo.cs)
	copy(hdr, Magic)
	h := hdr[len(Magic):]
	binary.BigEndian.PutUint32(h[0:], 1) // version
	binary.BigEndian.PutUint32(h[4:], uint32(d.clusterSize))
	binary.BigEndian.PutUint64(h[8:], uint64(d.virtualSize))
	binary.BigEndian.PutUint64(h[16:], uint64(lo.numL2))
	binary.BigEndian.PutUint64(h[24:], uint64(len(lo.indices)))
	if err := emit(hdr); err != nil {
		return written, err
	}

	// L1 table: offset of each L2 table, 0 = absent.
	l1 := make([]byte, lo.l1Clusters*lo.cs)
	for i, t := range lo.l2Order {
		binary.BigEndian.PutUint64(l1[t*8:], uint64(lo.l2Start+int64(i)*lo.cs))
	}
	if err := emit(l1); err != nil {
		return written, err
	}

	// L2 tables: offset of each data cluster, 0 = unallocated. Data
	// cluster offsets follow from each cluster's rank in the sorted index
	// list, so one pass over indices in step with l2Order fills every
	// table through a single reused buffer.
	l2 := make([]byte, lo.cs)
	next := 0 // rank of the next index to place
	for _, t := range lo.l2Order {
		for i := range l2 {
			l2[i] = 0
		}
		base := t * lo.entriesPerL2
		for next < len(lo.indices) && lo.indices[next] < base+lo.entriesPerL2 {
			ci := lo.indices[next]
			off := lo.dataStart + int64(next)*lo.cs
			binary.BigEndian.PutUint64(l2[(ci-base)*8:], uint64(off))
			next++
		}
		if err := emit(l2); err != nil {
			return written, err
		}
	}

	// Data clusters, each streamed through one reused buffer.
	buf := make([]byte, lo.cs)
	for _, ci := range lo.indices {
		if err := d.readSpan(buf, ci, 0); err != nil {
			return written, err
		}
		if err := emit(buf); err != nil {
			return written, err
		}
	}
	return written, nil
}

// SerializedBytes returns the exact length of the serialized image without
// producing any of it.
func (d *Disk) SerializedBytes() int64 {
	return d.layoutFor(d.effectiveIndices()).total
}

// Serialize encodes the disk (with its backing chain flattened into the
// output, like `qemu-img convert`) in the qcow2-like format:
//
//	header | L1 table | L2 tables | data clusters
//
// Unallocated clusters occupy no space (sparse encoding). The length of
// the returned slice is the image's on-disk size, the quantity the Qcow2
// baseline accounts in Fig. 3. Serialize is a materializing adapter over
// WriteTo; it panics if a lazily backed cluster can no longer be read
// (error-aware callers stream with WriteTo instead).
func (d *Disk) Serialize() []byte {
	var buf bytes.Buffer
	buf.Grow(int(d.SerializedBytes()))
	if _, err := d.WriteTo(&buf); err != nil {
		panic(fmt.Sprintf("vdisk %s: serialize: %v", d.name, err))
	}
	return buf.Bytes()
}

// Deserialize decodes a serialized disk image into a fully materialized
// disk: an adapter over DeserializeLazy that copies every cluster out of
// the image, so the result never references it.
func Deserialize(name string, image []byte) (*Disk, error) {
	d, err := DeserializeLazy(name, bytes.NewReader(image), int64(len(image)))
	if err != nil {
		return nil, err
	}
	if err := d.Flatten(); err != nil {
		return nil, err
	}
	return d, nil
}

// DeserializeLazy decodes a serialized disk image served by ra without
// materializing its data clusters: the mapping tables are parsed (through
// one reused table buffer) and each cluster is remembered as an offset
// into ra, to be read on demand. The returned disk references ra for its
// lifetime — or until Flatten — so ra must stay readable; writes never
// touch it (copy-on-write), and Discard masks lazy clusters rather than
// materializing them.
func DeserializeLazy(name string, ra io.ReaderAt, size int64) (*Disk, error) {
	var hdrBuf [headerSize]byte
	if size < headerSize {
		return nil, fmt.Errorf("vdisk: bad magic")
	}
	if _, err := ra.ReadAt(hdrBuf[:], 0); err != nil {
		return nil, fmt.Errorf("vdisk: read header: %w", err)
	}
	if !bytes.Equal(hdrBuf[:len(Magic)], Magic) {
		return nil, fmt.Errorf("vdisk: bad magic")
	}
	hdr := hdrBuf[len(Magic):]
	version := binary.BigEndian.Uint32(hdr[0:])
	if version != 1 {
		return nil, fmt.Errorf("vdisk: unsupported version %d", version)
	}
	clusterSize := int(binary.BigEndian.Uint32(hdr[4:]))
	if clusterSize <= 0 || clusterSize&(clusterSize-1) != 0 {
		return nil, fmt.Errorf("vdisk: corrupt cluster size %d", clusterSize)
	}
	virtualSize := int64(binary.BigEndian.Uint64(hdr[8:]))
	numL2 := int64(binary.BigEndian.Uint64(hdr[16:]))

	cs := int64(clusterSize)
	entriesPerL2 := cs / 8
	headerClusters := (int64(headerSize) + cs - 1) / cs
	if headerClusters < 1 {
		headerClusters = 1
	}
	l1Start := headerClusters * cs
	l1End := l1Start + numL2*8
	if size < l1End {
		return nil, fmt.Errorf("vdisk: truncated L1 table")
	}
	d := New(name, virtualSize, clusterSize)
	l1 := make([]byte, numL2*8)
	if numL2 > 0 {
		if _, err := ra.ReadAt(l1, l1Start); err != nil {
			return nil, fmt.Errorf("vdisk: read L1 table: %w", err)
		}
	}
	offsets := make(map[int64]int64)
	l2 := make([]byte, cs)
	for t := int64(0); t < numL2; t++ {
		l2Off := int64(binary.BigEndian.Uint64(l1[t*8:]))
		if l2Off == 0 {
			continue
		}
		if l2Off+cs > size {
			return nil, fmt.Errorf("vdisk: L2 table %d out of bounds", t)
		}
		if _, err := ra.ReadAt(l2, l2Off); err != nil {
			return nil, fmt.Errorf("vdisk: read L2 table %d: %w", t, err)
		}
		for e := int64(0); e < entriesPerL2; e++ {
			dataOff := int64(binary.BigEndian.Uint64(l2[e*8:]))
			if dataOff == 0 {
				continue
			}
			if dataOff+cs > size {
				return nil, fmt.Errorf("vdisk: cluster %d out of bounds", t*entriesPerL2+e)
			}
			offsets[t*entriesPerL2+e] = dataOff
		}
	}
	if len(offsets) > 0 {
		d.lazy = &lazySource{ra: ra, offsets: offsets}
	}
	return d, nil
}
