package vdisk

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size int64) *Disk {
	t.Helper()
	return New("test", size, DefaultClusterSize)
}

func TestReadUnwrittenIsZero(t *testing.T) {
	d := mk(t, 64<<10)
	buf := make([]byte, 1000)
	for i := range buf {
		buf[i] = 0xFF
	}
	if _, err := d.ReadAt(buf, 12345); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
	if d.AllocatedBytes() != 0 {
		t.Fatalf("reads allocated %d bytes", d.AllocatedBytes())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := mk(t, 1<<20)
	data := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := d.WriteAt(data, 4000); err != nil { // straddles clusters
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 4000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-after-write mismatch")
	}
	// Bytes around the write are still zero.
	edge := make([]byte, 10)
	d.ReadAt(edge, 3990)
	if !bytes.Equal(edge, make([]byte, 10)) {
		t.Fatal("write spilled before offset")
	}
}

func TestOutOfRangeIO(t *testing.T) {
	d := mk(t, 8192)
	if _, err := d.ReadAt(make([]byte, 10), 8190); err == nil {
		t.Fatal("read past end succeeded")
	}
	if _, err := d.WriteAt(make([]byte, 10), -1); err == nil {
		t.Fatal("negative write succeeded")
	}
	if _, err := d.WriteAt(make([]byte, 1), 8191); err != nil {
		t.Fatalf("last byte write failed: %v", err)
	}
}

func TestSparseAllocation(t *testing.T) {
	d := mk(t, 1<<30) // 1 GiB virtual
	d.WriteAt([]byte("x"), 0)
	d.WriteAt([]byte("y"), 512<<20)
	if got := d.AllocatedClusters(); got != 2 {
		t.Fatalf("AllocatedClusters = %d, want 2", got)
	}
	if got := d.AllocatedBytes(); got != 2*DefaultClusterSize {
		t.Fatalf("AllocatedBytes = %d", got)
	}
}

func TestGrow(t *testing.T) {
	d := mk(t, 4096)
	if err := d.Grow(8192); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("z"), 8191); err != nil {
		t.Fatal(err)
	}
	if err := d.Grow(4096); err == nil {
		t.Fatal("shrink succeeded")
	}
}

func TestDiscardReclaims(t *testing.T) {
	d := mk(t, 1<<20)
	data := bytes.Repeat([]byte{0xAB}, 5*DefaultClusterSize)
	d.WriteAt(data, 0)
	before := d.AllocatedBytes()
	// Discard clusters 1..3 (fully contained in range).
	d.Discard(DefaultClusterSize, 3*DefaultClusterSize)
	if got := before - d.AllocatedBytes(); got != 3*DefaultClusterSize {
		t.Fatalf("reclaimed %d, want 3 clusters", got)
	}
	buf := make([]byte, DefaultClusterSize)
	d.ReadAt(buf, DefaultClusterSize)
	if !bytes.Equal(buf, make([]byte, DefaultClusterSize)) {
		t.Fatal("discarded cluster not zero")
	}
	d.ReadAt(buf, 0)
	if buf[0] != 0xAB {
		t.Fatal("undiscarded cluster lost data")
	}
}

func TestDiscardPartialClustersKept(t *testing.T) {
	d := mk(t, 1<<20)
	d.WriteAt(bytes.Repeat([]byte{1}, 2*DefaultClusterSize), 0)
	// Range covers only half of each cluster: nothing may be dropped.
	d.Discard(DefaultClusterSize/2, DefaultClusterSize)
	if d.AllocatedClusters() != 2 {
		t.Fatalf("partial discard dropped clusters: %d left", d.AllocatedClusters())
	}
}

func TestZeroFillMasksBacking(t *testing.T) {
	parent := mk(t, 1<<20)
	parent.WriteAt(bytes.Repeat([]byte{7}, 8192), 0)
	child := parent.NewChild("child")
	child.ZeroFill(0, 8192)
	buf := make([]byte, 8192)
	child.ReadAt(buf, 0)
	if !bytes.Equal(buf, make([]byte, 8192)) {
		t.Fatal("ZeroFill did not mask backing data")
	}
}

func TestCOWChildIsolation(t *testing.T) {
	parent := mk(t, 1<<20)
	orig := bytes.Repeat([]byte{0x11}, 3*DefaultClusterSize)
	parent.WriteAt(orig, 0)

	child := parent.NewChild("child")
	if child.Backing() != parent {
		t.Fatal("Backing not set")
	}
	// Child reads fall through to the parent.
	got := make([]byte, len(orig))
	child.ReadAt(got, 0)
	if !bytes.Equal(got, orig) {
		t.Fatal("child does not see parent data")
	}
	// Partial write in the middle of a backed cluster preserves the rest.
	child.WriteAt([]byte{0xFF}, 100)
	child.ReadAt(got, 0)
	if got[100] != 0xFF || got[99] != 0x11 || got[101] != 0x11 {
		t.Fatalf("COW partial write corrupted cluster: % x", got[98:103])
	}
	// Parent unchanged.
	parent.ReadAt(got, 0)
	if got[100] != 0x11 {
		t.Fatal("child write leaked into parent")
	}
	// Child allocation counts only its own clusters.
	if child.AllocatedClusters() != 1 {
		t.Fatalf("child AllocatedClusters = %d, want 1", child.AllocatedClusters())
	}
}

func TestFlatten(t *testing.T) {
	base := mk(t, 1<<20)
	base.WriteAt(bytes.Repeat([]byte{1}, 4096), 0)
	mid := base.NewChild("mid")
	mid.WriteAt(bytes.Repeat([]byte{2}, 4096), 4096)
	top := mid.NewChild("top")
	top.WriteAt(bytes.Repeat([]byte{3}, 4096), 8192)

	top.Flatten()
	if top.Backing() != nil {
		t.Fatal("backing survived Flatten")
	}
	if top.AllocatedClusters() != 3 {
		t.Fatalf("AllocatedClusters = %d, want 3", top.AllocatedClusters())
	}
	buf := make([]byte, 1)
	top.ReadAt(buf, 0)
	if buf[0] != 1 {
		t.Fatal("flattened disk lost base data")
	}
	// Mutating base after flatten must not affect top.
	base.WriteAt([]byte{9}, 0)
	top.ReadAt(buf, 0)
	if buf[0] != 1 {
		t.Fatal("flattened disk aliases base clusters")
	}
}

func TestCloneIndependent(t *testing.T) {
	d := mk(t, 1<<20)
	d.WriteAt([]byte("original"), 0)
	c := d.Clone("copy")
	c.WriteAt([]byte("modified"), 0)
	buf := make([]byte, 8)
	d.ReadAt(buf, 0)
	if string(buf) != "original" {
		t.Fatal("clone shares clusters with source")
	}
}

func TestSerializeDeserializeRoundTrip(t *testing.T) {
	d := mk(t, 1<<22)
	rng := rand.New(rand.NewSource(2))
	type span struct {
		off  int64
		data []byte
	}
	var spans []span
	for i := 0; i < 30; i++ {
		n := rng.Intn(20000) + 1
		off := rng.Int63n(d.VirtualSize() - int64(n))
		data := make([]byte, n)
		rng.Read(data)
		d.WriteAt(data, off)
		spans = append(spans, span{off, data})
	}
	img := d.Serialize()
	got, err := Deserialize("restored", img)
	if err != nil {
		t.Fatal(err)
	}
	if got.VirtualSize() != d.VirtualSize() {
		t.Fatalf("VirtualSize = %d, want %d", got.VirtualSize(), d.VirtualSize())
	}
	if got.AllocatedClusters() != d.AllocatedClusters() {
		t.Fatalf("AllocatedClusters = %d, want %d", got.AllocatedClusters(), d.AllocatedClusters())
	}
	for _, s := range spans {
		buf := make([]byte, len(s.data))
		got.ReadAt(buf, s.off)
		if !bytes.Equal(buf, s.data) {
			t.Fatalf("span at %d mismatches after round trip", s.off)
		}
	}
}

func TestSerializeIsSparse(t *testing.T) {
	d := mk(t, 1<<30) // 1 GiB virtual
	d.WriteAt([]byte("tiny"), 0)
	img := d.Serialize()
	// One data cluster + one L2 table + L1 + header: far below virtual size.
	if len(img) > 64*DefaultClusterSize {
		t.Fatalf("serialized size %d not sparse", len(img))
	}
}

func TestSerializeFlattensBacking(t *testing.T) {
	parent := mk(t, 1<<20)
	parent.WriteAt([]byte("base-data"), 0)
	child := parent.NewChild("child")
	child.WriteAt([]byte("child-data"), 8192)

	got, err := Deserialize("r", child.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	got.ReadAt(buf, 0)
	if string(buf) != "base-data" {
		t.Fatalf("backing data lost in serialization: %q", buf)
	}
}

func TestSerializeDeterministic(t *testing.T) {
	mkDisk := func() *Disk {
		d := New("det", 1<<20, DefaultClusterSize)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 10; i++ {
			data := make([]byte, 5000)
			rng.Read(data)
			d.WriteAt(data, rng.Int63n(1<<20-5000))
		}
		return d
	}
	a := mkDisk().Serialize()
	b := mkDisk().Serialize()
	if !bytes.Equal(a, b) {
		t.Fatal("serialization not deterministic")
	}
}

func TestDeserializeRejectsCorrupt(t *testing.T) {
	if _, err := Deserialize("x", []byte("garbage")); err == nil {
		t.Fatal("accepted garbage")
	}
	d := mk(t, 1<<20)
	d.WriteAt([]byte("data"), 0)
	img := d.Serialize()
	if _, err := Deserialize("x", img[:len(img)-100]); err == nil {
		t.Fatal("accepted truncated image")
	}
	bad := append([]byte{}, img...)
	bad[0] = 'X'
	if _, err := Deserialize("x", bad); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestNewPanicsOnBadClusterSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", 100, 1000) // not a power of two
}

// TestQuickReadAfterWrite: arbitrary write sequences, then every written
// span reads back exactly; overlapping writes apply in order.
func TestQuickReadAfterWrite(t *testing.T) {
	type op struct {
		Off  uint32
		Data []byte
	}
	err := quick.Check(func(ops []op) bool {
		const size = 1 << 18
		d := New("q", size, 512)
		shadow := make([]byte, size)
		for _, o := range ops {
			off := int64(o.Off % (size - 1))
			n := len(o.Data)
			if int64(n) > size-off {
				n = int(size - off)
			}
			d.WriteAt(o.Data[:n], off)
			copy(shadow[off:off+int64(n)], o.Data[:n])
		}
		got := make([]byte, size)
		d.ReadAt(got, 0)
		return bytes.Equal(got, shadow)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickSerializeRoundTrip: serialization preserves full disk contents
// for arbitrary writes.
func TestQuickSerializeRoundTrip(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	err := quick.Check(func(ops []op) bool {
		const size = 1 << 16
		d := New("q", size, 512)
		for _, o := range ops {
			off := int64(o.Off) % (size - 1)
			n := len(o.Data)
			if int64(n) > size-off {
				n = int(size - off)
			}
			d.WriteAt(o.Data[:n], off)
		}
		got, err := Deserialize("r", d.Serialize())
		if err != nil {
			return false
		}
		a := make([]byte, size)
		b := make([]byte, size)
		d.ReadAt(a, 0)
		got.ReadAt(b, 0)
		return bytes.Equal(a, b)
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteAt(b *testing.B) {
	d := New("bench", 1<<26, DefaultClusterSize)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(4)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.WriteAt(data, int64(i%512)*int64(len(data)))
	}
}

func BenchmarkSerialize(b *testing.B) {
	d := New("bench", 1<<24, DefaultClusterSize)
	data := make([]byte, 1<<22)
	rand.New(rand.NewSource(5)).Read(data)
	d.WriteAt(data, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Serialize()
	}
}
