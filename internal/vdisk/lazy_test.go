package vdisk

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// mkLazyFixture builds a disk with a sparse, multi-L2 cluster pattern,
// returning the materialized disk and its serialized image.
func mkLazyFixture(t *testing.T) (*Disk, []byte) {
	t.Helper()
	d := New("fixture", 4<<20, DefaultClusterSize)
	// Scattered writes: cluster-aligned, partial, and spanning.
	for i, off := range []int64{0, 4096, 12288, 100000, 1<<20 + 5, 3 << 20} {
		data := bytes.Repeat([]byte{byte(i + 1)}, 9000)
		if _, err := d.WriteAt(data, off); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	return d, d.Serialize()
}

func lazyOf(t *testing.T, img []byte) *Disk {
	t.Helper()
	d, err := DeserializeLazy("lazy", bytes.NewReader(img), int64(len(img)))
	if err != nil {
		t.Fatalf("DeserializeLazy: %v", err)
	}
	if d.lazy == nil {
		t.Fatal("DeserializeLazy produced no lazy source for a non-empty image")
	}
	return d
}

func TestLazyRoundTripByteIdentical(t *testing.T) {
	_, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	var out bytes.Buffer
	n, err := lz.WriteTo(&out)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(len(img)) || !bytes.Equal(out.Bytes(), img) {
		t.Fatalf("lazy WriteTo produced %d bytes, differs from source image (%d bytes)", n, len(img))
	}
	if got := lz.SerializedBytes(); got != int64(len(img)) {
		t.Fatalf("SerializedBytes = %d, want %d", got, len(img))
	}
	if !bytes.Equal(lz.Serialize(), img) {
		t.Fatal("lazy Serialize differs from source image")
	}
	if len(lz.clusters) != 0 {
		t.Fatalf("serializing a lazy disk materialized %d clusters", len(lz.clusters))
	}
}

func TestLazyReadEquivalence(t *testing.T) {
	full, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	for _, r := range []struct{ off, n int64 }{{0, 4096}, {4000, 10000}, {1 << 20, 64}, {2 << 20, 4096}, {4<<20 - 17, 17}} {
		want := make([]byte, r.n)
		got := make([]byte, r.n)
		if _, err := full.ReadAt(want, r.off); err != nil {
			t.Fatalf("materialized ReadAt(%d): %v", r.off, err)
		}
		if _, err := lz.ReadAt(got, r.off); err != nil {
			t.Fatalf("lazy ReadAt(%d): %v", r.off, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lazy read at %d differs from materialized", r.off)
		}
	}
}

// TestLazyCOW: writes to a lazy disk go to local clusters, never the
// source, and partial writes preserve lazily backed bytes.
func TestLazyCOW(t *testing.T) {
	full, img := mkLazyFixture(t)
	before := append([]byte(nil), img...)
	lz := lazyOf(t, img)
	patch := []byte("copy-on-write patch")
	if _, err := lz.WriteAt(patch, 4100); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if !bytes.Equal(img, before) {
		t.Fatal("write to a lazy disk mutated the source image")
	}
	if _, err := full.WriteAt(patch, 4100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lz.Serialize(), full.Serialize()) {
		t.Fatal("lazy disk after COW write serializes differently from materialized")
	}
}

// TestLazyDiscard: Discard must mask lazy clusters so reads zero and the
// serialized form drops them — identical to discarding materialized ones.
func TestLazyDiscard(t *testing.T) {
	full, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	full.Discard(0, 8192)
	lz.Discard(0, 8192)
	got := make([]byte, 8192)
	if _, err := lz.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after discard: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 8192)) {
		t.Fatal("discarded lazy clusters still serve data")
	}
	if !bytes.Equal(lz.Serialize(), full.Serialize()) {
		t.Fatal("discard on lazy disk serializes differently from materialized")
	}
	if lc, fc := lz.AllocatedClusters(), full.AllocatedClusters(); lc != fc {
		t.Fatalf("AllocatedClusters after discard: lazy %d, materialized %d", lc, fc)
	}
}

func TestLazyCloneIndependence(t *testing.T) {
	_, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	ref := lz.Serialize()
	c := lz.Clone("clone")
	c.Discard(0, 8192)
	if _, err := c.WriteAt([]byte("clone-only"), 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lz.Serialize(), ref) {
		t.Fatal("mutating a clone changed the original lazy disk")
	}
}

func TestLazySnapshotRevert(t *testing.T) {
	_, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	if err := lz.Snapshot("s0"); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if _, err := lz.WriteAt([]byte("scribble"), 0); err != nil {
		t.Fatal(err)
	}
	lz.Discard(1<<20, 8192)
	if err := lz.Revert("s0"); err != nil {
		t.Fatalf("Revert: %v", err)
	}
	if !bytes.Equal(lz.Serialize(), img) {
		t.Fatal("revert did not restore the lazily backed contents")
	}
}

func TestLazyFlattenMaterializes(t *testing.T) {
	_, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	if err := lz.Flatten(); err != nil {
		t.Fatalf("Flatten: %v", err)
	}
	if lz.lazy != nil {
		t.Fatal("Flatten left the lazy source attached")
	}
	if !bytes.Equal(lz.Serialize(), img) {
		t.Fatal("flattened disk serializes differently from its source image")
	}
}

func TestLazyAllocationAccounting(t *testing.T) {
	full, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	if lc, fc := lz.AllocatedClusters(), full.AllocatedClusters(); lc != fc {
		t.Fatalf("AllocatedClusters: lazy %d, materialized %d", lc, fc)
	}
	if lb, fb := lz.AllocatedBytes(), full.AllocatedBytes(); lb != fb {
		t.Fatalf("AllocatedBytes: lazy %d, materialized %d", lb, fb)
	}
	// Overwriting a lazily backed cluster must not double-count it.
	if _, err := lz.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if lc, fc := lz.AllocatedClusters(), full.AllocatedClusters(); lc != fc {
		t.Fatalf("AllocatedClusters after overwrite: lazy %d, materialized %d", lc, fc)
	}
}

// brokenAt serves reads until armed, then fails: the source disappearing
// after deserialization (e.g. a store closed underneath a lazy image).
type brokenAt struct {
	img   []byte
	armed bool
}

func (b *brokenAt) ReadAt(p []byte, off int64) (int, error) {
	if b.armed {
		return 0, errors.New("source gone")
	}
	r := bytes.NewReader(b.img)
	return r.ReadAt(p, off)
}

func TestLazyReadErrorSurfaces(t *testing.T) {
	_, img := mkLazyFixture(t)
	src := &brokenAt{img: img}
	lz, err := DeserializeLazy("lazy", src, int64(len(img)))
	if err != nil {
		t.Fatalf("DeserializeLazy: %v", err)
	}
	src.armed = true
	buf := make([]byte, 4096)
	if _, err := lz.ReadAt(buf, 0); err == nil {
		t.Fatal("lazy read with a dead source succeeded")
	}
	if _, err := lz.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTo with a dead source succeeded")
	}
	if err := lz.Flatten(); err == nil {
		t.Fatal("Flatten with a dead source succeeded")
	}
}

// TestLazyChildOverLazyBase: a COW child whose backing disk is lazy must
// read through to the source and serialize identically to a child over
// the materialized base.
func TestLazyChildOverLazyBase(t *testing.T) {
	full, img := mkLazyFixture(t)
	lz := lazyOf(t, img)
	mkChild := func(base *Disk) *Disk {
		c := base.NewChild(fmt.Sprintf("child-of-%s", base.Name()))
		if _, err := c.WriteAt([]byte("child data"), 555); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mkChild(full), mkChild(lz)
	if !bytes.Equal(a.Serialize(), b.Serialize()) {
		t.Fatal("child over lazy base serializes differently from child over materialized base")
	}
}
