package vdisk

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSnapshotRevert(t *testing.T) {
	d := New("snap", 1<<20, DefaultClusterSize)
	d.WriteAt([]byte("state one"), 0)
	if err := d.Snapshot("s1"); err != nil {
		t.Fatal(err)
	}
	d.WriteAt([]byte("state two"), 0)
	d.WriteAt([]byte("extra"), 8192)

	if err := d.Revert("s1"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	d.ReadAt(buf, 0)
	if string(buf) != "state one" {
		t.Fatalf("after revert: %q", buf)
	}
	// The post-snapshot write is gone entirely.
	extra := make([]byte, 5)
	d.ReadAt(extra, 8192)
	if !bytes.Equal(extra, make([]byte, 5)) {
		t.Fatal("post-snapshot cluster survived revert")
	}
	// Snapshot still available for a second revert.
	d.WriteAt([]byte("state tre"), 0)
	if err := d.Revert("s1"); err != nil {
		t.Fatal(err)
	}
	d.ReadAt(buf, 0)
	if string(buf) != "state one" {
		t.Fatalf("second revert: %q", buf)
	}
}

func TestSnapshotIncludesBackingChain(t *testing.T) {
	parent := New("parent", 1<<20, DefaultClusterSize)
	parent.WriteAt([]byte("from-parent"), 0)
	child := parent.NewChild("child")
	child.WriteAt([]byte("from-child"), 8192)

	if err := child.Snapshot("s"); err != nil {
		t.Fatal(err)
	}
	// Mutate the parent after snapshotting; the snapshot must not see it.
	parent.WriteAt([]byte("MUTATED-PARE"), 0)
	if err := child.Revert("s"); err != nil {
		t.Fatal(err)
	}
	if child.Backing() != nil {
		t.Fatal("revert kept backing chain")
	}
	buf := make([]byte, 11)
	child.ReadAt(buf, 0)
	if string(buf) != "from-parent" {
		t.Fatalf("snapshot lost backing data: %q", buf)
	}
}

func TestSnapshotErrors(t *testing.T) {
	d := New("errs", 1<<20, DefaultClusterSize)
	if err := d.Snapshot(""); err == nil {
		t.Fatal("empty snapshot name accepted")
	}
	if err := d.Revert("missing"); err == nil {
		t.Fatal("revert to missing snapshot succeeded")
	}
	if err := d.DeleteSnapshot("missing"); err == nil {
		t.Fatal("delete of missing snapshot succeeded")
	}
	d.Snapshot("a")
	if err := d.Snapshot("a"); err == nil {
		t.Fatal("duplicate snapshot name accepted")
	}
}

func TestSnapshotListAndDelete(t *testing.T) {
	d := New("list", 1<<20, DefaultClusterSize)
	d.Snapshot("zeta")
	d.Snapshot("alpha")
	if got := d.Snapshots(); !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Fatalf("Snapshots = %v", got)
	}
	if err := d.DeleteSnapshot("zeta"); err != nil {
		t.Fatal(err)
	}
	if got := d.Snapshots(); !reflect.DeepEqual(got, []string{"alpha"}) {
		t.Fatalf("after delete: %v", got)
	}
}

func TestSnapshotIsolatedFromLiveWrites(t *testing.T) {
	d := New("iso", 1<<20, DefaultClusterSize)
	d.WriteAt(bytes.Repeat([]byte{0xAA}, DefaultClusterSize), 0)
	d.Snapshot("s")
	// Overwrite the same cluster in place; the snapshot's copy must be
	// unaffected (deep copy, not aliased).
	d.WriteAt(bytes.Repeat([]byte{0xBB}, DefaultClusterSize), 0)
	d.Revert("s")
	buf := make([]byte, 1)
	d.ReadAt(buf, 0)
	if buf[0] != 0xAA {
		t.Fatal("snapshot aliased live cluster data")
	}
}
