package vmi

import (
	"bytes"
	"testing"

	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/vdisk"
)

func newImage(t *testing.T) *Image {
	t.Helper()
	d := vdisk.New("img", 4<<20, vdisk.DefaultClusterSize)
	fs, err := fstree.Format(d, 256)
	if err != nil {
		t.Fatal(err)
	}
	fs.MkdirAll("/usr/bin")
	fs.WriteFile("/usr/bin/app", bytes.Repeat([]byte{1}, 10000))
	return &Image{
		Name:      "test-img",
		Base:      pkgmeta.BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64"},
		Primaries: []string{"app"},
		Disk:      d,
	}
}

func TestMount(t *testing.T) {
	img := newImage(t)
	fs, err := img.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/usr/bin/app") {
		t.Fatal("mounted filesystem missing content")
	}
	// Unformatted disks fail to mount with the image name in the error.
	bad := &Image{Name: "broken", Disk: vdisk.New("b", 1<<20, 4096)}
	if _, err := bad.Mount(); err == nil {
		t.Fatal("mounted unformatted image")
	}
}

func TestSerializeMatchesDisk(t *testing.T) {
	img := newImage(t)
	if !bytes.Equal(img.Serialize(), img.Disk.Serialize()) {
		t.Fatal("Serialize differs from disk serialization")
	}
}

func TestStats(t *testing.T) {
	img := newImage(t)
	st, err := img.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Files != 1 {
		t.Fatalf("Files = %d", st.Files)
	}
	if st.MountedBytes <= 10000 {
		t.Fatalf("MountedBytes = %d, want content + metadata", st.MountedBytes)
	}
	if st.SerializedBytes <= 0 || st.SerializedBytes < st.MountedBytes/2 {
		t.Fatalf("SerializedBytes = %d", st.SerializedBytes)
	}
}

func TestCloneDeep(t *testing.T) {
	img := newImage(t)
	c := img.Clone()
	if c.Name != img.Name || c.Base != img.Base {
		t.Fatalf("clone metadata: %+v", c)
	}
	// Mutating the clone's primaries or disk leaves the original intact.
	c.Primaries[0] = "mutated"
	if img.Primaries[0] != "app" {
		t.Fatal("clone shares Primaries")
	}
	cfs, _ := c.Mount()
	cfs.RemoveAll("/usr")
	fs, _ := img.Mount()
	if !fs.Exists("/usr/bin/app") {
		t.Fatal("clone shares disk")
	}
}

func TestUserDataRoots(t *testing.T) {
	want := map[string]bool{"/home": true, "/root": true, "/srv": true}
	if len(UserDataRoots) != len(want) {
		t.Fatalf("UserDataRoots = %v", UserDataRoots)
	}
	for _, r := range UserDataRoots {
		if !want[r] {
			t.Fatalf("unexpected root %q", r)
		}
	}
}
