// Package vmi defines the virtual machine image model of Sec. III-A: an
// image I = (BI, PS, DS, Data) materialised as a virtual disk with a guest
// filesystem, plus the metadata (base-image attributes and primary package
// set) that accompanies an upload.
package vmi

import (
	"fmt"

	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/vdisk"
)

// UserDataRoots are the guest directories holding the user Data component
// of a VMI — content "not recognized by the guest OS package management"
// (Sec. III-A) that every storage system preserves verbatim.
var UserDataRoots = []string{"/home", "/root", "/srv"}

// Image is a VMI: disk content plus upload metadata. The primary package
// set PS is what the user declares when publishing ("the user uploads a
// VMI and a list of primary packages", Sec. IV-A); the dependency set DS
// and Data live inside the disk.
type Image struct {
	// Name identifies the image (e.g. "Redis" or "IDE-build-07").
	Name string
	// Base holds the base-image attribute quadruple attrs(BI).
	Base pkgmeta.BaseAttrs
	// Primaries is the declared primary package set PS.
	Primaries []string
	// Disk is the image content.
	Disk *vdisk.Disk
}

// Mount opens the guest filesystem.
func (im *Image) Mount() (*fstree.FS, error) {
	fs, err := fstree.Mount(im.Disk)
	if err != nil {
		return nil, fmt.Errorf("vmi %s: %w", im.Name, err)
	}
	return fs, nil
}

// Serialize encodes the disk in its qcow2-like on-disk form.
func (im *Image) Serialize() []byte { return im.Disk.Serialize() }

// Clone returns an independent deep copy (same metadata, copied disk), so
// destructive operations like semantic decomposition can run without
// consuming the caller's image.
func (im *Image) Clone() *Image {
	return &Image{
		Name:      im.Name,
		Base:      im.Base,
		Primaries: append([]string(nil), im.Primaries...),
		Disk:      im.Disk.Clone(im.Name + "-clone"),
	}
}

// Stats summarises the mounted image.
type Stats struct {
	// MountedBytes is the filesystem's allocated size (Table II "Mounted
	// size"), in real (generated) bytes.
	MountedBytes int64
	// Files is the number of regular files (real scale).
	Files int
	// SerializedBytes is the qcow2-like on-disk size.
	SerializedBytes int64
}

// Stats mounts the image and reports its size characteristics.
func (im *Image) Stats() (Stats, error) {
	fs, err := im.Mount()
	if err != nil {
		return Stats{}, err
	}
	return Stats{
		MountedBytes:    fs.UsedBytes(),
		Files:           fs.NumFiles(),
		SerializedBytes: int64(len(im.Serialize())),
	}, nil
}
