// Package wire defines the Expelliarmus network wire protocol shared by
// the repository server (internal/server) and its client
// (internal/client): the streaming image envelope that carries a VMI
// upload, and the JSON result types the server returns for each
// operation.
//
// The image envelope is designed so both sides can stream it:
//
//	magic "EXPWIR1\n"            (8 bytes)
//	header length, uint32 LE     (4 bytes)
//	header JSON                  (ImageHeader: name, base attrs,
//	                              primaries, disk byte count)
//	disk bytes                   (exactly ImageHeader.DiskBytes, the
//	                              image's qcow2-like serialized form)
//
// The sender produces the disk bytes with Disk.WriteTo — no whole-image
// buffer on the way out. The receiver must materialize the disk section
// once (publish mounts and mutates the image, so it needs random
// access), but hands it to vdisk.DeserializeLazy so clusters are
// directory-backed rather than copied again; the base image then streams
// into the blob store via the repository's PutBaseReader without a
// second materialization.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"expelliarmus/internal/core"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
)

// Magic opens every image envelope.
const Magic = "EXPWIR1\n"

// maxHeaderBytes bounds the JSON header so a corrupt or hostile length
// prefix cannot ask the receiver to allocate gigabytes.
const maxHeaderBytes = 1 << 20

// ImageHeader is the metadata section of an image envelope.
type ImageHeader struct {
	Name      string
	Base      pkgmeta.BaseAttrs
	Primaries []string
	// DiskBytes is the exact length of the disk section that follows.
	DiskBytes int64
	// Tenant and ExpiresAt carry the publish's lifecycle options: the
	// quota account to charge and the Unix-seconds expiry timestamp
	// (zero = never). Omitted on the wire when unset, so envelopes from
	// older clients decode identically.
	Tenant    string `json:",omitempty"`
	ExpiresAt int64  `json:",omitempty"`
}

// PublishMeta is the lifecycle metadata riding alongside an image upload:
// the tenant to charge for the stored bytes and the optional expiry
// timestamp (Unix seconds; zero = never expires).
type PublishMeta struct {
	Tenant    string
	ExpiresAt int64
}

// WriteImage encodes img as one image envelope on w, streaming the disk
// section straight from the virtual disk.
func WriteImage(w io.Writer, img *vmi.Image) error {
	return WriteImageMeta(w, img, PublishMeta{})
}

// WriteImageMeta is WriteImage with lifecycle metadata in the header.
func WriteImageMeta(w io.Writer, img *vmi.Image, meta PublishMeta) error {
	hdr := ImageHeader{
		Name:      img.Name,
		Base:      img.Base,
		Primaries: img.Primaries,
		DiskBytes: img.Disk.SerializedBytes(),
		Tenant:    meta.Tenant,
		ExpiresAt: meta.ExpiresAt,
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("wire: encode header: %w", err)
	}
	if len(hb) > maxHeaderBytes {
		return fmt.Errorf("wire: header %d bytes exceeds limit %d", len(hb), maxHeaderBytes)
	}
	var pre [12]byte
	copy(pre[:8], Magic)
	binary.LittleEndian.PutUint32(pre[8:], uint32(len(hb)))
	if _, err := w.Write(pre[:]); err != nil {
		return fmt.Errorf("wire: write envelope: %w", err)
	}
	if _, err := w.Write(hb); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	n, err := img.Disk.WriteTo(w)
	if err != nil {
		return fmt.Errorf("wire: write disk: %w", err)
	}
	if n != hdr.DiskBytes {
		return fmt.Errorf("wire: disk wrote %d bytes, header promised %d", n, hdr.DiskBytes)
	}
	return nil
}

// ReadImage decodes one image envelope from r into a VMI. The disk
// section is read into one owned buffer — the single materialization the
// receiving side needs for random access — and mounted lazily over it.
func ReadImage(r io.Reader) (*vmi.Image, error) {
	img, _, err := ReadImageMeta(r)
	return img, err
}

// ReadImageMeta is ReadImage plus the envelope's lifecycle metadata.
func ReadImageMeta(r io.Reader) (*vmi.Image, PublishMeta, error) {
	var pre [12]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, PublishMeta{}, fmt.Errorf("wire: read envelope: %w", err)
	}
	if string(pre[:8]) != Magic {
		return nil, PublishMeta{}, fmt.Errorf("wire: bad magic %q", pre[:8])
	}
	hlen := binary.LittleEndian.Uint32(pre[8:])
	if hlen == 0 || hlen > maxHeaderBytes {
		return nil, PublishMeta{}, fmt.Errorf("wire: header length %d out of range", hlen)
	}
	hb := make([]byte, hlen)
	if _, err := io.ReadFull(r, hb); err != nil {
		return nil, PublishMeta{}, fmt.Errorf("wire: read header: %w", err)
	}
	var hdr ImageHeader
	if err := json.Unmarshal(hb, &hdr); err != nil {
		return nil, PublishMeta{}, fmt.Errorf("wire: decode header: %w", err)
	}
	if hdr.Name == "" {
		return nil, PublishMeta{}, fmt.Errorf("wire: envelope names no image")
	}
	if hdr.DiskBytes < 0 {
		return nil, PublishMeta{}, fmt.Errorf("wire: negative disk length %d", hdr.DiskBytes)
	}
	if hdr.ExpiresAt < 0 {
		return nil, PublishMeta{}, fmt.Errorf("wire: negative expiry timestamp %d", hdr.ExpiresAt)
	}
	buf := make([]byte, hdr.DiskBytes)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, PublishMeta{}, fmt.Errorf("wire: read disk (%d bytes): %w", hdr.DiskBytes, err)
	}
	disk, err := vdisk.DeserializeLazy(hdr.Name, bytes.NewReader(buf), hdr.DiskBytes)
	if err != nil {
		return nil, PublishMeta{}, fmt.Errorf("wire: open disk: %w", err)
	}
	img := &vmi.Image{
		Name:      hdr.Name,
		Base:      hdr.Base,
		Primaries: hdr.Primaries,
		Disk:      disk,
	}
	return img, PublishMeta{Tenant: hdr.Tenant, ExpiresAt: hdr.ExpiresAt}, nil
}

// PublishResult is the server's reply to a publish.
type PublishResult struct {
	Similarity float64
	Exported   []string
	Skipped    int
	BaseStored bool
	Seconds    float64
	Phases     map[string]float64
}

// NewPublishResult flattens a core publish report for the wire.
func NewPublishResult(rep *core.PublishReport) *PublishResult {
	return &PublishResult{
		Similarity: rep.Similarity,
		Exported:   append([]string(nil), rep.Exported...),
		Skipped:    rep.Skipped,
		BaseStored: rep.BaseStored,
		Seconds:    rep.Seconds(),
		Phases:     phaseMap(rep.Meter),
	}
}

// RetrieveResult is the server's reply to a retrieval or assembly. For
// streamed responses it rides in the X-Expel-Result trailer, after the
// image bytes.
type RetrieveResult struct {
	Imported []string
	Seconds  float64
	Phases   map[string]float64
}

// NewRetrieveResult flattens a core retrieve report for the wire.
func NewRetrieveResult(rep *core.RetrieveReport) *RetrieveResult {
	return &RetrieveResult{
		Imported: append([]string(nil), rep.Imported...),
		Seconds:  rep.Seconds(),
		Phases:   phaseMap(rep.Meter),
	}
}

func phaseMap(m *simio.Meter) map[string]float64 {
	out := map[string]float64{}
	for ph, d := range m.Snapshot() {
		out[string(ph)] = d.Seconds()
	}
	return out
}

// Stats is the server's repository and cache statistics reply.
type Stats struct {
	Packages int
	Bases    int
	VMIs     int
	// TotalBytes is the live (deduplicated) repository size. On a
	// disk-backed server DiskBytes is the physical blob footprint —
	// including the garbage released images leave until compaction — and
	// DeadBytes the reclaimable part of it; both are zero for a
	// memory-backed server.
	TotalBytes int64
	DiskBytes  int64
	DeadBytes  int64

	CacheEnabled bool
	CacheHits    int64
	CacheMisses  int64
	CacheEntries int
	CacheBytes   int64

	// Tenants maps each tenant to its recorded live bytes (the quota
	// accounting publishes maintain). Nil when no tenant has ever been
	// charged.
	Tenants map[string]int64 `json:",omitempty"`

	// Repl carries replication state when the server participates in
	// snapshot + WAL shipping: as the writer (source of truth) or as a
	// follower serving the replicated read path. Nil on servers that do
	// neither (memory-backed daemons have no WAL to ship).
	Repl *ReplicationStats
}

// ReplCommit is the writer's current durable metadata position — the
// reply to GET /v1/repl/commit and the watermark a follower tails to.
// Epoch identifies the snapshot + WAL pair (it advances when the writer
// compacts); DurableBytes is the fsynced, commit-marker-covered WAL
// length within that epoch.
type ReplCommit struct {
	Epoch        uint64
	DurableBytes int64
}

// ReplicationStats is the replication section of a stats reply.
type ReplicationStats struct {
	// Role is "writer" or "follower".
	Role string
	// Epoch is the current snapshot/WAL epoch: the writer's own, or the
	// epoch the follower has applied up to.
	Epoch uint64
	// DurableBytes is the writer's durable WAL length. On a follower it
	// is the writer's position as of the last poll — the catch-up target.
	DurableBytes int64
	// AppliedBytes is how far into the epoch's WAL a follower has
	// applied (zero on writers).
	AppliedBytes int64
	// LagBytes is DurableBytes - AppliedBytes as of the follower's last
	// poll of the writer; zero on writers and on caught-up followers.
	LagBytes int64
	// Batches and Ops count what the follower has applied since it
	// started (zero on writers).
	Batches int64
	Ops     int64
	// WriterURL is the upstream a follower tails (empty on writers).
	WriterURL string
}

// SyncStats is the server's reply to a sync or compact: the durable-save
// breakdown of a disk-backed repository (see the facade's SyncStats for
// field semantics).
type SyncStats struct {
	Segments          int
	SegmentBytes      int64
	IndexBytes        int64
	MetaBytes         int64
	MetaOps           int
	Compacted         bool
	MetaSnapshotBytes int64
	SegmentsCompacted int
	BytesReclaimed    int64
	DeadBytes         int64
}

// VacuumStats is the server's reply to a vacuum: what the pass reclaimed
// (see core.VacuumStats for field semantics).
type VacuumStats struct {
	PackagesRemoved int
	UserDataRemoved int
	MetaRemoved     int
	BlobsReleased   int
	BytesReclaimed  int64
}

// AssembleRequest asks the server to build a VMI from stored packages
// (Algorithm 3 without a prior upload of this exact image).
type AssembleRequest struct {
	Name         string
	Primaries    []string
	UserDataFrom string
}
