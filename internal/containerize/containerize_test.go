package containerize

import (
	"bytes"
	"reflect"
	"testing"

	"expelliarmus/internal/builder"
	"expelliarmus/internal/catalog"
	"expelliarmus/internal/core"
	"expelliarmus/internal/fstree"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vmi"
)

var testDev = simio.NewDevice(simio.PaperProfile().Scaled(catalog.ByteScale, catalog.FileScale))

// publishSet builds and publishes the named templates into a fresh system.
func publishSet(t *testing.T, names ...string) *core.System {
	t.Helper()
	sys := core.NewSystem(testDev, core.Options{})
	b := builder.New(catalog.NewUniverse())
	for _, n := range names {
		tpl, ok := catalog.Find(n)
		if !ok {
			t.Fatalf("template %s", n)
		}
		img, err := b.Build(tpl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Publish(img); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestExportLayers(t *testing.T) {
	sys := publishSet(t, "Mini", "Redis")
	e := NewExporter(sys.Repo())
	m, err := e.Export("Redis")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "Redis" || m.Base == "" {
		t.Fatalf("manifest: %+v", m)
	}
	// base + redis-server + userdata.
	if len(m.Layers) != 3 {
		t.Fatalf("layers = %d: %+v", len(m.Layers), m.Layers)
	}
	if m.Layers[0].MediaType != MediaTypeBase {
		t.Fatal("first layer not base")
	}
	if m.Layers[1].MediaType != MediaTypePackage || m.Layers[1].CreatedBy != "pkg redis-server=1.0-ubuntu1/amd64" {
		t.Fatalf("package layer: %+v", m.Layers[1])
	}
	if m.Layers[2].MediaType != MediaTypeUserData {
		t.Fatal("last layer not user data")
	}
	for _, l := range m.Layers {
		blob, ok := e.LayerBlob(l.Digest)
		if !ok || int64(len(blob)) != l.Size {
			t.Fatalf("layer %s: blob %d vs size %d (ok=%v)", l.Digest, len(blob), l.Size, ok)
		}
	}
	if m.TotalSize() <= 0 {
		t.Fatal("TotalSize zero")
	}
}

func TestExportDeterministic(t *testing.T) {
	sys := publishSet(t, "Mini", "Redis")
	e := NewExporter(sys.Repo())
	m1, err := e.Export("Redis")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.Export("Redis")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("repeated export differs")
	}
}

func TestExportSharesLayersAcrossImages(t *testing.T) {
	sys := publishSet(t, "Mini", "Redis", "Base", "Lemp")
	e := NewExporter(sys.Repo())
	var logical int64
	for _, name := range []string{"Redis", "Base", "Lemp"} {
		m, err := e.Export(name)
		if err != nil {
			t.Fatal(err)
		}
		logical += m.TotalSize()
	}
	// All three containers share the base layer and Lemp shares
	// mysql-server with Base, so unique layer bytes are far below the
	// logical sum.
	if e.TotalBytes() >= logical*2/3 {
		t.Fatalf("layer store %d not well below logical %d", e.TotalBytes(), logical)
	}
	// Base and Lemp must reference the identical mysql layer digest.
	mBase, _ := e.Export("Base")
	mLemp, _ := e.Export("Lemp")
	find := func(m *Manifest, created string) string {
		for _, l := range m.Layers {
			if l.CreatedBy == created {
				return l.Digest
			}
		}
		return ""
	}
	const mysqlRef = "pkg mysql-server=1.0-ubuntu1/amd64"
	d1, d2 := find(mBase, mysqlRef), find(mLemp, mysqlRef)
	if d1 == "" || d1 != d2 {
		t.Fatalf("mysql layer not shared: %q vs %q", d1, d2)
	}
}

func TestMaterializeRoundTrip(t *testing.T) {
	sys := publishSet(t, "Mini", "Base")
	e := NewExporter(sys.Repo())
	m, err := e.Export("Base")
	if err != nil {
		t.Fatal(err)
	}
	img, err := e.Materialize(m)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := img.Mount()
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := pkgmgr.New(fs)
	for _, p := range []string{"apache2", "mysql-server", "php7", "libc6"} {
		if !mgr.IsInstalled(p) {
			t.Fatalf("materialized container missing %s", p)
		}
	}
	// User data layer applied.
	found := false
	for _, root := range vmi.UserDataRoots {
		if !fs.Exists(root) {
			continue
		}
		fs.Walk(root, func(fi fstree.FileInfo) error {
			if !fi.IsDir {
				found = true
			}
			return nil
		})
	}
	if !found {
		t.Fatal("user data layer not applied")
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	sys := publishSet(t, "Mini", "Redis")
	e := NewExporter(sys.Repo())
	m, err := e.Export("Redis")
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"mediaType"`)) {
		t.Fatalf("encoded manifest: %s", data)
	}
	got, err := DecodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("manifest round trip differs")
	}
	if _, err := DecodeManifest([]byte("not json")); err == nil {
		t.Fatal("decoded garbage")
	}
}

func TestExportErrors(t *testing.T) {
	sys := publishSet(t, "Mini")
	e := NewExporter(sys.Repo())
	if _, err := e.Export("never-published"); err == nil {
		t.Fatal("exported unknown VMI")
	}
	if _, err := e.Materialize(&Manifest{Name: "empty"}); err == nil {
		t.Fatal("materialized manifest without base layer")
	}
	if _, ok := e.LayerBlob("zz-not-hex"); ok {
		t.Fatal("LayerBlob accepted bad digest")
	}
}
