// Package containerize implements the paper's declared future work
// (Sec. VII): "extend Expelliarmus to support automated containerization
// of a VMI with multiple container service functionality". A published VMI
// is exported as a layered container image whose layers fall directly out
// of the semantic decomposition: one base layer (the shared base image),
// one layer per software package, and one user-data layer. Because layers
// are content-addressed, container images exported from different VMIs
// share their base and common package layers — the same dedup the
// repository itself achieves.
package containerize

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"

	"expelliarmus/internal/blobstore"
	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/pkgmgr"
	"expelliarmus/internal/semgraph"
	"expelliarmus/internal/simio"
	"expelliarmus/internal/vdisk"
	"expelliarmus/internal/vmi"
	"expelliarmus/internal/vmirepo"
)

// Layer media types, in the spirit of OCI image-spec media types.
const (
	MediaTypeBase     = "application/vnd.expelliarmus.layer.base"
	MediaTypePackage  = "application/vnd.expelliarmus.layer.package"
	MediaTypeUserData = "application/vnd.expelliarmus.layer.userdata"
)

// Layer is one content-addressed container image layer.
type Layer struct {
	MediaType string `json:"mediaType"`
	Digest    string `json:"digest"` // sha256 hex of the layer blob
	Size      int64  `json:"size"`
	CreatedBy string `json:"createdBy"` // provenance: base ID, package ref, or VMI name
}

// Manifest describes one exported container image.
type Manifest struct {
	Name   string  `json:"name"`
	Base   string  `json:"base"` // base image attribute quadruple
	Layers []Layer `json:"layers"`
}

// TotalSize is the logical image size: the sum of layer sizes.
func (m *Manifest) TotalSize() int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.Size
	}
	return total
}

// MarshalJSON output is deterministic; Encode renders the manifest.
func (m *Manifest) Encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses an encoded manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("containerize: decode manifest: %w", err)
	}
	return &m, nil
}

// Exporter converts published VMIs into container images over a shared,
// content-addressed layer store.
type Exporter struct {
	repo   *vmirepo.Repo
	layers *blobstore.Store
}

// NewExporter returns an exporter over the repository.
func NewExporter(repo *vmirepo.Repo) *Exporter {
	return &Exporter{repo: repo, layers: blobstore.New()}
}

// TotalBytes is the unique bytes held by the layer store — shared layers
// are counted once however many images reference them.
func (e *Exporter) TotalBytes() int64 { return e.layers.TotalBytes() }

// LayerBlob returns a layer's contents by digest.
func (e *Exporter) LayerBlob(digest string) ([]byte, bool) {
	id, err := blobstore.ParseID(digest)
	if err != nil {
		return nil, false
	}
	return e.layers.Get(id)
}

func (e *Exporter) addLayer(mediaType, createdBy string, blob []byte) Layer {
	id, _ := e.layers.Put(blob)
	return Layer{
		MediaType: mediaType,
		Digest:    id.String(),
		Size:      int64(len(blob)),
		CreatedBy: createdBy,
	}
}

// Export converts the published VMI into a container image: base layer,
// dependency-ordered package layers, then the user-data layer.
func (e *Exporter) Export(vmiName string) (*Manifest, error) {
	rec, err := e.repo.GetVMI(vmiName, nil)
	if err != nil {
		return nil, err
	}
	mg, err := e.repo.GetMaster(rec.BaseID, nil)
	if err != nil {
		return nil, err
	}
	baseBlob, err := e.repo.GetBase(rec.BaseID, simio.PhaseFetch, nil)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Name: vmiName, Base: mg.Attrs().String()}
	m.Layers = append(m.Layers, e.addLayer(MediaTypeBase, "base "+rec.BaseID, baseBlob))

	// The package set: union of the primaries' subgraphs within the
	// master, installed dependencies-first so each layer only depends on
	// layers below it.
	psUnion := semgraph.New(mg.Attrs())
	for _, p := range rec.Primaries {
		sub, err := mg.PrimarySubgraph(p)
		if err != nil {
			return nil, fmt.Errorf("containerize: %s: %w", vmiName, err)
		}
		psUnion.Union(sub)
	}
	baseSub := mg.BaseSubgraph()
	var missing []string
	for _, v := range psUnion.Vertices() {
		if !baseSub.HasVertex(v.Pkg.Name) {
			missing = append(missing, v.Pkg.Name)
		}
	}
	order, err := pkgmgr.InstallOrder(graphUniverse{psUnion}, missing)
	if err != nil {
		return nil, err
	}
	for _, group := range order {
		for _, name := range group {
			v, _ := psUnion.Vertex(name)
			_, blob, err := e.repo.GetPackage(v.Pkg.Ref(), simio.PhaseFetch, nil)
			if err != nil {
				return nil, err
			}
			m.Layers = append(m.Layers, e.addLayer(MediaTypePackage, "pkg "+v.Pkg.Ref(), blob))
		}
	}

	if archive, err := e.repo.GetUserData(vmiName, simio.PhaseFetch, nil); err != nil {
		return nil, err
	} else if archive != nil {
		m.Layers = append(m.Layers, e.addLayer(MediaTypeUserData, "userdata "+vmiName, archive))
	}
	return m, nil
}

// Materialize applies a manifest's layers bottom-up into a runnable image:
// the container-runtime side of the export.
func (e *Exporter) Materialize(m *Manifest) (*vmi.Image, error) {
	if len(m.Layers) == 0 || m.Layers[0].MediaType != MediaTypeBase {
		return nil, fmt.Errorf("containerize: manifest %s has no base layer", m.Name)
	}
	baseBlob, ok := e.LayerBlob(m.Layers[0].Digest)
	if !ok {
		return nil, fmt.Errorf("containerize: base layer %s missing", m.Layers[0].Digest)
	}
	disk, err := vdisk.Deserialize(m.Name, baseBlob)
	if err != nil {
		return nil, err
	}
	img := &vmi.Image{Name: m.Name, Disk: disk}
	fs, err := img.Mount()
	if err != nil {
		return nil, err
	}
	mgr, err := pkgmgr.New(fs)
	if err != nil {
		return nil, err
	}
	var primaries []string
	for _, l := range m.Layers[1:] {
		blob, ok := e.LayerBlob(l.Digest)
		if !ok {
			return nil, fmt.Errorf("containerize: layer %s missing", l.Digest)
		}
		switch l.MediaType {
		case MediaTypePackage:
			p, err := pkgfmt.Peek(blob)
			if err != nil {
				return nil, err
			}
			if !mgr.IsInstalled(p.Name) {
				if err := mgr.Install(blob); err != nil {
					return nil, fmt.Errorf("containerize: apply %s: %w", l.CreatedBy, err)
				}
			}
			primaries = append(primaries, p.Name)
		case MediaTypeUserData:
			files, err := pkgfmt.UnpackTar(blob)
			if err != nil {
				return nil, err
			}
			for _, f := range files {
				if err := fs.MkdirAll(path.Dir(f.Path)); err != nil {
					return nil, err
				}
				if err := fs.WriteFile(f.Path, f.Data); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("containerize: unknown layer type %q", l.MediaType)
		}
	}
	sort.Strings(primaries)
	img.Primaries = primaries
	return img, nil
}

// graphUniverse adapts a semantic graph to the resolver interface.
type graphUniverse struct{ g *semgraph.Graph }

func (u graphUniverse) Lookup(name string) (pkgmeta.Package, bool) {
	v, ok := u.g.Vertex(name)
	return v.Pkg, ok
}
