// Package semgraph implements the VMI semantic graph of Sec. III-B: a
// directed (possibly cyclic) graph G_I = (V_I, E_I) whose vertices are the
// packages of a VMI — base-image packages, primary packages and dependency
// packages — and whose edges are package dependencies. The base image's
// attribute quadruple is carried on the graph itself; metrics that involve
// the base image (simBI, SimG, comp) read it from there.
//
// The package also provides the induced subgraph extractions used by
// Algorithms 1–3 (base-image subgraph, primary-package subgraph), graph
// union (master-graph construction), deterministic serialization for
// repository storage, and DOT export for inspection.
package semgraph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"expelliarmus/internal/pkgmeta"
)

// Kind classifies a vertex within its VMI.
type Kind byte

const (
	// KindBase marks packages belonging to the base image BI.
	KindBase Kind = iota
	// KindPrimary marks user-requested primary packages (PS).
	KindPrimary
	// KindDependency marks dependency packages (DS).
	KindDependency
)

func (k Kind) String() string {
	switch k {
	case KindBase:
		return "base"
	case KindPrimary:
		return "primary"
	case KindDependency:
		return "dependency"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Vertex is one package vertex.
type Vertex struct {
	Pkg  pkgmeta.Package
	Kind Kind
}

// Graph is a VMI semantic graph. Vertices are keyed by package name.
// Graph is not safe for concurrent mutation.
type Graph struct {
	base     pkgmeta.BaseAttrs
	vertices map[string]*Vertex
	succ     map[string]map[string]bool
}

// New returns an empty graph for a base image with the given attributes.
func New(base pkgmeta.BaseAttrs) *Graph {
	return &Graph{
		base:     base,
		vertices: make(map[string]*Vertex),
		succ:     make(map[string]map[string]bool),
	}
}

// Base returns the base-image attribute quadruple attrs(BI).
func (g *Graph) Base() pkgmeta.BaseAttrs { return g.base }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.vertices) }

// AddVertex inserts or replaces a package vertex.
func (g *Graph) AddVertex(p pkgmeta.Package, kind Kind) {
	g.vertices[p.Name] = &Vertex{Pkg: p.Clone(), Kind: kind}
	if g.succ[p.Name] == nil {
		g.succ[p.Name] = make(map[string]bool)
	}
}

// AddEdge inserts a dependency edge from → to. Both vertices must exist.
func (g *Graph) AddEdge(from, to string) error {
	if _, ok := g.vertices[from]; !ok {
		return fmt.Errorf("semgraph: edge from unknown vertex %q", from)
	}
	if _, ok := g.vertices[to]; !ok {
		return fmt.Errorf("semgraph: edge to unknown vertex %q", to)
	}
	g.succ[from][to] = true
	return nil
}

// HasVertex reports whether the named package is a vertex.
func (g *Graph) HasVertex(name string) bool {
	_, ok := g.vertices[name]
	return ok
}

// Vertex returns the named vertex.
func (g *Graph) Vertex(name string) (Vertex, bool) {
	v, ok := g.vertices[name]
	if !ok {
		return Vertex{}, false
	}
	return *v, true
}

// Names returns all vertex names in sorted order.
func (g *Graph) Names() []string {
	out := make([]string, 0, len(g.vertices))
	for n := range g.vertices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Vertices returns all vertices sorted by name.
func (g *Graph) Vertices() []Vertex {
	names := g.Names()
	out := make([]Vertex, len(names))
	for i, n := range names {
		out[i] = *g.vertices[n]
	}
	return out
}

// Succ returns the successors (dependencies) of a vertex, sorted.
func (g *Graph) Succ(name string) []string {
	var out []string
	for to := range g.succ[name] {
		out = append(out, to)
	}
	sort.Strings(out)
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, m := range g.succ {
		n += len(m)
	}
	return n
}

// PrimaryNames returns the names of primary vertices, sorted.
func (g *Graph) PrimaryNames() []string {
	var out []string
	for n, v := range g.vertices {
		if v.Kind == KindPrimary {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Build constructs the semantic graph of a VMI from its installed package
// set and declared primaries: essential packages become base vertices,
// primaries become primary vertices, everything else dependency vertices.
// Dependency edges are added for every dependency present in the set.
func Build(base pkgmeta.BaseAttrs, installed []pkgmeta.Package, primaries []string) *Graph {
	isPrimary := make(map[string]bool, len(primaries))
	for _, p := range primaries {
		isPrimary[p] = true
	}
	g := New(base)
	for _, p := range installed {
		kind := KindDependency
		switch {
		case isPrimary[p.Name]:
			kind = KindPrimary
		case p.Essential:
			kind = KindBase
		}
		g.AddVertex(p, kind)
	}
	for _, p := range installed {
		for _, d := range p.Depends {
			if g.HasVertex(d) {
				g.AddEdge(p.Name, d) //nolint:errcheck // both vertices exist
			}
		}
	}
	return g
}

// induced returns the induced subgraph over the given vertex names.
func (g *Graph) induced(names map[string]bool) *Graph {
	out := New(g.base)
	for n := range names {
		if v, ok := g.vertices[n]; ok {
			out.AddVertex(v.Pkg, v.Kind)
		}
	}
	for n := range names {
		for to := range g.succ[n] {
			if names[to] {
				out.AddEdge(n, to) //nolint:errcheck
			}
		}
	}
	return out
}

// BaseSubgraph extracts G_I[BI]: the induced subgraph of base vertices.
func (g *Graph) BaseSubgraph() *Graph {
	names := map[string]bool{}
	for n, v := range g.vertices {
		if v.Kind == KindBase {
			names[n] = true
		}
	}
	return g.induced(names)
}

// PrimarySubgraph extracts G_I[PS]: the induced subgraph containing the
// primary packages and their transitive dependency closure within the
// graph (including homonyms of base packages, which the compatibility
// metric inspects).
func (g *Graph) PrimarySubgraph() *Graph {
	names := map[string]bool{}
	var queue []string
	for n, v := range g.vertices {
		if v.Kind == KindPrimary {
			queue = append(queue, n)
		}
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if names[n] {
			continue
		}
		names[n] = true
		queue = append(queue, g.Succ(n)...)
	}
	return g.induced(names)
}

// Union merges other into g: vertices are added (an existing vertex keeps
// its current kind unless the incoming one is KindPrimary, which wins so
// master graphs remember what is primary somewhere), edges are unioned.
func (g *Graph) Union(other *Graph) {
	for _, v := range other.Vertices() {
		if cur, ok := g.vertices[v.Pkg.Name]; ok {
			if v.Kind == KindPrimary && cur.Kind != KindPrimary {
				cur.Kind = KindPrimary
			}
			continue
		}
		g.AddVertex(v.Pkg, v.Kind)
	}
	for _, from := range other.Names() {
		for _, to := range other.Succ(from) {
			if g.HasVertex(from) && g.HasVertex(to) {
				g.AddEdge(from, to) //nolint:errcheck
			}
		}
	}
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	out := New(g.base)
	for _, v := range g.Vertices() {
		out.AddVertex(v.Pkg, v.Kind)
	}
	for from, tos := range g.succ {
		for to := range tos {
			out.AddEdge(from, to) //nolint:errcheck
		}
	}
	return out
}

// TotalSize returns the summed InstalledSize over all vertices.
func (g *Graph) TotalSize() int64 {
	var total int64
	for _, v := range g.vertices {
		total += v.Pkg.InstalledSize
	}
	return total
}

// DOT renders the graph in Graphviz DOT format (deterministic output).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	fmt.Fprintf(&b, "  label=%q;\n", g.base.String())
	for _, v := range g.Vertices() {
		shape := "ellipse"
		switch v.Kind {
		case KindBase:
			shape = "box"
		case KindPrimary:
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", v.Pkg.Name, shape)
	}
	for _, from := range g.Names() {
		for _, to := range g.Succ(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// --- serialization ---

var marshalMagic = []byte("SGRF1\n")

// Marshal encodes the graph deterministically.
func (g *Graph) Marshal() []byte {
	var buf bytes.Buffer
	buf.Write(marshalMagic)
	writeStr := func(s string) {
		var tmp [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		buf.Write(tmp[:n])
		buf.WriteString(s)
	}
	writeStr(g.base.Type)
	writeStr(g.base.Distro)
	writeStr(g.base.Version)
	writeStr(g.base.Arch)
	names := g.Names()
	writeStr(fmt.Sprintf("%d", len(names)))
	for _, n := range names {
		v := g.vertices[n]
		writeStr(pkgmeta.FormatControl(v.Pkg))
		buf.WriteByte(byte(v.Kind))
	}
	for _, n := range names {
		succ := g.Succ(n)
		writeStr(fmt.Sprintf("%d", len(succ)))
		for _, to := range succ {
			writeStr(to)
		}
	}
	return buf.Bytes()
}

// Unmarshal decodes a graph produced by Marshal.
func Unmarshal(data []byte) (*Graph, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(marshalMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, marshalMagic) {
		return nil, fmt.Errorf("semgraph: bad magic")
	}
	readStr := func() (string, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return "", err
		}
		if n > uint64(r.Len()) {
			return "", fmt.Errorf("semgraph: string length %d exceeds remaining %d", n, r.Len())
		}
		b := make([]byte, n)
		if n > 0 {
			if _, err := io.ReadFull(r, b); err != nil {
				return "", err
			}
		}
		return string(b), nil
	}
	var base pkgmeta.BaseAttrs
	var err error
	if base.Type, err = readStr(); err != nil {
		return nil, err
	}
	if base.Distro, err = readStr(); err != nil {
		return nil, err
	}
	if base.Version, err = readStr(); err != nil {
		return nil, err
	}
	if base.Arch, err = readStr(); err != nil {
		return nil, err
	}
	g := New(base)
	countStr, err := readStr()
	if err != nil {
		return nil, err
	}
	var count int
	if _, err := fmt.Sscanf(countStr, "%d", &count); err != nil {
		return nil, fmt.Errorf("semgraph: bad vertex count %q", countStr)
	}
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		control, err := readStr()
		if err != nil {
			return nil, err
		}
		p, err := pkgmeta.ParseControl(control)
		if err != nil {
			return nil, err
		}
		kind, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		g.AddVertex(p, Kind(kind))
		names = append(names, p.Name)
	}
	for _, n := range names {
		cntStr, err := readStr()
		if err != nil {
			return nil, err
		}
		var edges int
		if _, err := fmt.Sscanf(cntStr, "%d", &edges); err != nil {
			return nil, fmt.Errorf("semgraph: bad edge count %q", cntStr)
		}
		for j := 0; j < edges; j++ {
			to, err := readStr()
			if err != nil {
				return nil, err
			}
			if err := g.AddEdge(n, to); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
