package semgraph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"expelliarmus/internal/pkgmeta"
)

var testBase = pkgmeta.BaseAttrs{Type: "linux", Distro: "debian", Version: "9", Arch: "x86_64"}

func pkg(name string, essential bool, deps ...string) pkgmeta.Package {
	return pkgmeta.Package{
		Name: name, Version: "1.0", Arch: "amd64", Distro: "debian",
		InstalledSize: 1000, Depends: deps, Essential: essential,
	}
}

// paperExample builds the Fig. 1a graph: Debian base, MariaDB and Tomcat8
// primaries, and the cyclic libc6/perl-base/dpkg dependencies.
func paperExample() *Graph {
	installed := []pkgmeta.Package{
		pkg("libc6", true, "perl-base", "dpkg"),
		pkg("perl-base", true, "libc6", "dpkg"),
		pkg("dpkg", true, "libc6", "perl-base"),
		pkg("bash", true, "libc6"),
		pkg("coreutils", true, "libc6"),
		pkg("gawk", true, "libc6"),
		pkg("debconf", true, "perl-base"),
		pkg("ucf", false, "debconf", "coreutils"),
		pkg("openjdk", false, "libc6"),
		pkg("mariadb", false, "libc6", "ucf"),
		pkg("tomcat8", false, "openjdk", "ucf"),
	}
	return Build(testBase, installed, []string{"mariadb", "tomcat8"})
}

func TestBuildKinds(t *testing.T) {
	g := paperExample()
	if g.Len() != 11 {
		t.Fatalf("Len = %d, want 11", g.Len())
	}
	for name, want := range map[string]Kind{
		"libc6":   KindBase,
		"bash":    KindBase,
		"mariadb": KindPrimary,
		"tomcat8": KindPrimary,
		"ucf":     KindDependency,
		"openjdk": KindDependency,
	} {
		v, ok := g.Vertex(name)
		if !ok {
			t.Fatalf("vertex %s missing", name)
		}
		if v.Kind != want {
			t.Errorf("%s kind = %v, want %v", name, v.Kind, want)
		}
	}
	if g.Base() != testBase {
		t.Errorf("Base = %v", g.Base())
	}
}

func TestEdgesAndCycle(t *testing.T) {
	g := paperExample()
	if !reflect.DeepEqual(g.Succ("libc6"), []string{"dpkg", "perl-base"}) {
		t.Fatalf("Succ(libc6) = %v", g.Succ("libc6"))
	}
	// Cycle: libc6 -> perl-base -> libc6.
	found := false
	for _, s := range g.Succ("perl-base") {
		if s == "libc6" {
			found = true
		}
	}
	if !found {
		t.Fatal("cycle edge perl-base -> libc6 missing")
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

func TestAddEdgeUnknownVertex(t *testing.T) {
	g := New(testBase)
	g.AddVertex(pkg("a", false), KindDependency)
	if err := g.AddEdge("a", "ghost"); err == nil {
		t.Fatal("edge to unknown vertex accepted")
	}
	if err := g.AddEdge("ghost", "a"); err == nil {
		t.Fatal("edge from unknown vertex accepted")
	}
}

func TestBaseSubgraph(t *testing.T) {
	g := paperExample()
	bs := g.BaseSubgraph()
	want := []string{"bash", "coreutils", "debconf", "dpkg", "gawk", "libc6", "perl-base"}
	if !reflect.DeepEqual(bs.Names(), want) {
		t.Fatalf("base subgraph = %v", bs.Names())
	}
	// Induced edges only.
	for _, from := range bs.Names() {
		for _, to := range bs.Succ(from) {
			if !bs.HasVertex(to) {
				t.Fatalf("dangling edge %s->%s", from, to)
			}
		}
	}
	// Cycle preserved inside the subgraph.
	if len(bs.Succ("libc6")) != 2 {
		t.Fatalf("libc6 lost edges: %v", bs.Succ("libc6"))
	}
}

func TestPrimarySubgraph(t *testing.T) {
	g := paperExample()
	ps := g.PrimarySubgraph()
	// Closure of mariadb and tomcat8: both primaries plus ucf, openjdk,
	// debconf, coreutils, libc6 (homonym of base), perl-base, dpkg.
	want := []string{"coreutils", "debconf", "dpkg", "libc6", "mariadb",
		"openjdk", "perl-base", "tomcat8", "ucf"}
	if !reflect.DeepEqual(ps.Names(), want) {
		t.Fatalf("primary subgraph = %v", ps.Names())
	}
	if !reflect.DeepEqual(ps.PrimaryNames(), []string{"mariadb", "tomcat8"}) {
		t.Fatalf("primaries = %v", ps.PrimaryNames())
	}
}

func TestSubgraphsAreViews(t *testing.T) {
	g := paperExample()
	bs := g.BaseSubgraph()
	// Subgraph vertices are subsets of the graph's.
	for _, n := range bs.Names() {
		if !g.HasVertex(n) {
			t.Fatalf("subgraph invented vertex %s", n)
		}
	}
	// Mutating the subgraph does not affect the parent.
	bs.AddVertex(pkg("intruder", false), KindDependency)
	if g.HasVertex("intruder") {
		t.Fatal("subgraph mutation leaked into parent")
	}
}

func TestUnionIdempotentCommutative(t *testing.T) {
	g1 := paperExample()
	g2 := paperExample()
	before := g1.Names()
	g1.Union(g2)
	if !reflect.DeepEqual(g1.Names(), before) {
		t.Fatal("union with self changed vertex set")
	}

	a := New(testBase)
	a.AddVertex(pkg("x", false), KindDependency)
	b := New(testBase)
	b.AddVertex(pkg("y", false), KindPrimary)

	ab := a.Clone()
	ab.Union(b)
	ba := b.Clone()
	ba.Union(a)
	if !reflect.DeepEqual(ab.Names(), ba.Names()) {
		t.Fatalf("union not commutative on vertex sets: %v vs %v", ab.Names(), ba.Names())
	}
}

func TestUnionPrimaryKindWins(t *testing.T) {
	a := New(testBase)
	a.AddVertex(pkg("shared", false), KindDependency)
	b := New(testBase)
	b.AddVertex(pkg("shared", false), KindPrimary)
	a.Union(b)
	v, _ := a.Vertex("shared")
	if v.Kind != KindPrimary {
		t.Fatalf("kind = %v after union, want primary", v.Kind)
	}
	// But primary never downgrades.
	b2 := New(testBase)
	b2.AddVertex(pkg("shared", false), KindDependency)
	a.Union(b2)
	v, _ = a.Vertex("shared")
	if v.Kind != KindPrimary {
		t.Fatal("primary kind downgraded by union")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := paperExample()
	c := g.Clone()
	c.AddVertex(pkg("extra", false), KindDependency)
	if g.HasVertex("extra") {
		t.Fatal("clone shares vertex map")
	}
	if c.NumEdges() != g.NumEdges() {
		t.Fatal("clone lost edges")
	}
}

func TestTotalSize(t *testing.T) {
	g := paperExample()
	if g.TotalSize() != int64(g.Len())*1000 {
		t.Fatalf("TotalSize = %d", g.TotalSize())
	}
}

func TestDOT(t *testing.T) {
	g := paperExample()
	dot := g.DOT("fig1a")
	for _, want := range []string{"digraph", `"mariadb" [shape=doubleoctagon]`,
		`"libc6" [shape=box]`, `"libc6" -> "perl-base"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic.
	if dot != g.DOT("fig1a") {
		t.Fatal("DOT not deterministic")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	g := paperExample()
	data := g.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base() != g.Base() {
		t.Fatalf("base = %v", got.Base())
	}
	if !reflect.DeepEqual(got.Names(), g.Names()) {
		t.Fatalf("names = %v", got.Names())
	}
	for _, n := range g.Names() {
		if !reflect.DeepEqual(got.Succ(n), g.Succ(n)) {
			t.Fatalf("Succ(%s) = %v, want %v", n, got.Succ(n), g.Succ(n))
		}
		gv, _ := g.Vertex(n)
		rv, _ := got.Vertex(n)
		if !reflect.DeepEqual(gv, rv) {
			t.Fatalf("vertex %s = %+v, want %+v", n, rv, gv)
		}
	}
	if !bytes.Equal(got.Marshal(), data) {
		t.Fatal("re-marshal differs")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte("junk")); err == nil {
		t.Fatal("accepted junk")
	}
	data := paperExample().Marshal()
	if _, err := Unmarshal(data[:len(data)-4]); err == nil {
		t.Fatal("accepted truncated graph")
	}
}

func TestKindString(t *testing.T) {
	if KindBase.String() != "base" || KindPrimary.String() != "primary" ||
		KindDependency.String() != "dependency" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

// TestQuickSubgraphInvariant: for arbitrary package sets, subgraph
// vertices are always subsets, and base/primary subgraphs partition
// cleanly when dependency closures don't cross.
func TestQuickSubgraphInvariant(t *testing.T) {
	err := quick.Check(func(names []string, primariesIdx []byte) bool {
		uniq := map[string]bool{}
		var installed []pkgmeta.Package
		for i, raw := range names {
			n := "p" + sanitize(raw)
			if uniq[n] {
				continue
			}
			uniq[n] = true
			installed = append(installed, pkg(n, i%3 == 0))
		}
		var primaries []string
		for _, idx := range primariesIdx {
			if len(installed) > 0 {
				p := installed[int(idx)%len(installed)]
				if !p.Essential {
					primaries = append(primaries, p.Name)
				}
			}
		}
		g := Build(testBase, installed, primaries)
		bs, ps := g.BaseSubgraph(), g.PrimarySubgraph()
		for _, n := range bs.Names() {
			if !g.HasVertex(n) {
				return false
			}
			if v, _ := bs.Vertex(n); v.Kind != KindBase {
				return false
			}
		}
		for _, n := range ps.Names() {
			if !g.HasVertex(n) {
				return false
			}
		}
		return bs.Len()+len(g.Names()) >= g.Len() // sanity
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() > 8 {
		return b.String()[:8]
	}
	return b.String()
}

// TestQuickMarshalRoundTrip over random graphs.
func TestQuickMarshalRoundTrip(t *testing.T) {
	err := quick.Check(func(n uint8, edges []uint16) bool {
		count := int(n%20) + 1
		g := New(testBase)
		for i := 0; i < count; i++ {
			g.AddVertex(pkg(nodeName(i), i%2 == 0), Kind(i%3))
		}
		for _, e := range edges {
			from := nodeName(int(e>>8) % count)
			to := nodeName(int(e&0xff) % count)
			g.AddEdge(from, to) //nolint:errcheck
		}
		got, err := Unmarshal(g.Marshal())
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(got.Names(), g.Names()) {
			return false
		}
		for _, name := range g.Names() {
			if !reflect.DeepEqual(got.Succ(name), g.Succ(name)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func BenchmarkBuildGraph(b *testing.B) {
	installed := make([]pkgmeta.Package, 200)
	for i := range installed {
		deps := []string{}
		if i > 0 {
			deps = append(deps, "n"+itoa(i/2))
		}
		installed[i] = pkg("n"+itoa(i), i%4 == 0, deps...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(testBase, installed, []string{"n100", "n150"})
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
