package chunker

import "fmt"

// Rabin is a variable-size, content-defined chunker based on Rabin
// fingerprinting over a sliding window (Rabin 1981), as used by the
// variable-size chunking scheme evaluated by Jin et al. A chunk boundary is
// declared whenever the rolling fingerprint matches a mask-derived pattern,
// subject to minimum and maximum chunk-size bounds.
//
// Because boundaries depend only on window content, an insertion or
// deletion re-synchronises after at most one chunk: this is the property
// that lets variable-size dedup survive shifted data where fixed-size
// chunking does not.
type Rabin struct {
	window  int
	minSize int
	maxSize int
	avgSize int
	mask    uint64
	// outTable[b] removes byte b's contribution when it leaves the window.
	outTable [256]uint64
	// modTable reduces the fingerprint after the shift step.
	modTable [256]uint64
}

// Rabin polynomial: a fixed irreducible polynomial of degree 53, the same
// construction used by LBFS-style chunkers.
const rabinPoly uint64 = 0x3DA3358B4DC173

const rabinPolyDegree = 53

// NewRabin returns a content-defined chunker with the given average chunk
// size, which must be a power of two. Minimum and maximum chunk sizes are
// avg/4 and avg*4; the sliding window is 48 bytes.
func NewRabin(avgSize int) *Rabin {
	if avgSize <= 0 || avgSize&(avgSize-1) != 0 {
		panic(fmt.Sprintf("chunker: rabin average size %d must be a positive power of two", avgSize))
	}
	r := &Rabin{
		window:  48,
		minSize: avgSize / 4,
		maxSize: avgSize * 4,
		avgSize: avgSize,
		mask:    uint64(avgSize - 1),
	}
	if r.minSize < r.window {
		r.minSize = r.window
	}
	r.buildTables()
	return r
}

// polyMod returns p mod rabinPoly in GF(2).
func polyMod(p uint64) uint64 {
	for d := deg(p); d >= rabinPolyDegree; d = deg(p) {
		p ^= rabinPoly << uint(d-rabinPolyDegree)
	}
	return p
}

// polyMulMod returns (p*q) mod rabinPoly in GF(2).
func polyMulMod(p, q uint64) uint64 {
	var acc uint64
	for i := 0; q != 0; i++ {
		if q&1 != 0 {
			acc ^= shiftLeftMod(p, uint(i))
		}
		q >>= 1
	}
	return acc
}

// shiftLeftMod returns (p << n) mod rabinPoly, shifting one bit at a time to
// avoid overflow.
func shiftLeftMod(p uint64, n uint) uint64 {
	p = polyMod(p)
	for ; n > 0; n-- {
		p <<= 1
		p = polyMod(p)
	}
	return p
}

func deg(p uint64) int {
	d := -1
	for p != 0 {
		p >>= 1
		d++
	}
	return d
}

func (r *Rabin) buildTables() {
	// outTable[b] = b * x^(8*(window-1)) mod P: the current fingerprint
	// contribution of the byte about to slide out of the window, removed
	// just before the append step shifts the remaining bytes left.
	for b := 0; b < 256; b++ {
		r.outTable[b] = shiftLeftMod(uint64(b), uint(8*(r.window-1)))
	}
	// modTable folds the high byte produced by the append shift back into
	// the modulus.
	for b := 0; b < 256; b++ {
		r.modTable[b] = polyMod(uint64(b) << rabinPolyDegree)
	}
	_ = polyMulMod // retained for table cross-checks in tests
}

// Name implements Chunker.
func (r *Rabin) Name() string { return fmt.Sprintf("rabin-%d", r.avgSize) }

// MinSize returns the minimum chunk size.
func (r *Rabin) MinSize() int { return r.minSize }

// MaxSize returns the maximum chunk size.
func (r *Rabin) MaxSize() int { return r.maxSize }

// Split implements Chunker.
func (r *Rabin) Split(data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	var out []Chunk
	start := 0
	for start < len(data) {
		end := r.nextBoundary(data[start:])
		out = append(out, Chunk{Offset: int64(start), Data: data[start : start+end]})
		start += end
	}
	return out
}

// nextBoundary returns the length of the next chunk starting at data[0].
func (r *Rabin) nextBoundary(data []byte) int {
	n := len(data)
	if n <= r.minSize {
		return n
	}
	limit := n
	if limit > r.maxSize {
		limit = r.maxSize
	}
	// Warm the window over the bytes immediately before the minimum size so
	// the fingerprint at position minSize reflects a full window.
	var fp uint64
	warmStart := r.minSize - r.window
	for i := warmStart; i < r.minSize; i++ {
		fp = r.append(fp, data[i])
	}
	for i := r.minSize; i < limit; i++ {
		fp = r.roll(fp, data[i-r.window], data[i])
		if fp&r.mask == r.mask {
			return i + 1
		}
	}
	return limit
}

// append shifts the fingerprint left by one byte and adds b.
func (r *Rabin) append(fp uint64, b byte) uint64 {
	top := byte(fp >> (rabinPolyDegree - 8))
	fp = ((fp << 8) | uint64(b)) & ((1 << rabinPolyDegree) - 1)
	return fp ^ r.modTable[top]
}

// roll slides the window: removes out's contribution and appends in.
func (r *Rabin) roll(fp uint64, out, in byte) uint64 {
	fp ^= r.outTable[out]
	return r.append(fp, in)
}
