// Package chunker implements the content chunking schemes used by the
// block-level deduplication baselines discussed in the paper's related work
// (Jin et al., SYSTOR'09; Zhao et al., Liquid): fixed-size chunking and
// variable-size content-defined chunking with Rabin fingerprinting.
//
// These schemes are the "content level" dedup against which the paper's
// semantics-aware approach is contrasted, and they power the
// internal/stores/blockdedup ablation baseline.
package chunker

import "fmt"

// Chunk is a contiguous span of the input produced by a Chunker.
type Chunk struct {
	// Offset is the byte offset of the chunk within the input.
	Offset int64
	// Data aliases the corresponding span of the input slice.
	Data []byte
}

// Chunker splits byte streams into chunks. Implementations must be
// deterministic: equal inputs produce equal chunkings.
type Chunker interface {
	// Split partitions data into consecutive, non-empty chunks covering the
	// whole input. Split(nil) returns no chunks.
	Split(data []byte) []Chunk
	// Name identifies the scheme, e.g. "fixed-4096" or "rabin-8192".
	Name() string
}

// Fixed is a fixed-size chunker, the scheme Jin et al. found most effective
// for VMI deduplication.
type Fixed struct {
	size int
}

// NewFixed returns a fixed-size chunker with the given chunk size in bytes.
func NewFixed(size int) *Fixed {
	if size <= 0 {
		panic(fmt.Sprintf("chunker: invalid fixed chunk size %d", size))
	}
	return &Fixed{size: size}
}

// Size returns the configured chunk size.
func (f *Fixed) Size() int { return f.size }

// Name implements Chunker.
func (f *Fixed) Name() string { return fmt.Sprintf("fixed-%d", f.size) }

// Split implements Chunker. All chunks have exactly f.Size() bytes except
// possibly the last.
func (f *Fixed) Split(data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	n := (len(data) + f.size - 1) / f.size
	out := make([]Chunk, 0, n)
	for off := 0; off < len(data); off += f.size {
		end := off + f.size
		if end > len(data) {
			end = len(data)
		}
		out = append(out, Chunk{Offset: int64(off), Data: data[off:end]})
	}
	return out
}
