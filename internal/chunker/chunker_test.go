package chunker

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// reassemble concatenates chunk data and checks offsets are contiguous.
func reassemble(t *testing.T, chunks []Chunk) []byte {
	t.Helper()
	var buf bytes.Buffer
	var next int64
	for i, c := range chunks {
		if c.Offset != next {
			t.Fatalf("chunk %d offset = %d, want %d", i, c.Offset, next)
		}
		if len(c.Data) == 0 {
			t.Fatalf("chunk %d is empty", i)
		}
		buf.Write(c.Data)
		next += int64(len(c.Data))
	}
	return buf.Bytes()
}

func TestFixedSplitSizes(t *testing.T) {
	f := NewFixed(100)
	data := randBytes(rand.New(rand.NewSource(1)), 1050)
	chunks := f.Split(data)
	if len(chunks) != 11 {
		t.Fatalf("got %d chunks, want 11", len(chunks))
	}
	for i, c := range chunks[:10] {
		if len(c.Data) != 100 {
			t.Fatalf("chunk %d len = %d, want 100", i, len(c.Data))
		}
	}
	if len(chunks[10].Data) != 50 {
		t.Fatalf("last chunk len = %d, want 50", len(chunks[10].Data))
	}
	if !bytes.Equal(reassemble(t, chunks), data) {
		t.Fatal("fixed chunks do not reassemble to input")
	}
}

func TestFixedExactMultiple(t *testing.T) {
	f := NewFixed(64)
	data := randBytes(rand.New(rand.NewSource(2)), 640)
	chunks := f.Split(data)
	if len(chunks) != 10 {
		t.Fatalf("got %d chunks, want 10", len(chunks))
	}
	for i, c := range chunks {
		if len(c.Data) != 64 {
			t.Fatalf("chunk %d len = %d, want 64", i, len(c.Data))
		}
	}
}

func TestFixedEmptyInput(t *testing.T) {
	if got := NewFixed(10).Split(nil); got != nil {
		t.Fatalf("Split(nil) = %v, want nil", got)
	}
	if got := NewFixed(10).Split([]byte{}); got != nil {
		t.Fatalf("Split(empty) = %v, want nil", got)
	}
}

func TestFixedBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFixed(0)
}

func TestFixedName(t *testing.T) {
	if got := NewFixed(4096).Name(); got != "fixed-4096" {
		t.Fatalf("Name = %q", got)
	}
}

func TestRabinName(t *testing.T) {
	if got := NewRabin(8192).Name(); got != "rabin-8192" {
		t.Fatalf("Name = %q", got)
	}
}

func TestRabinBadSizePanics(t *testing.T) {
	for _, bad := range []int{0, -8, 3000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRabin(%d): expected panic", bad)
				}
			}()
			NewRabin(bad)
		}()
	}
}

func TestRabinCoversInput(t *testing.T) {
	r := NewRabin(1024)
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 47, 48, 255, 256, 1024, 4096, 100000} {
		data := randBytes(rng, n)
		chunks := r.Split(data)
		if n == 0 {
			if chunks != nil {
				t.Fatalf("Split(empty) = %v", chunks)
			}
			continue
		}
		if !bytes.Equal(reassemble(t, chunks), data) {
			t.Fatalf("n=%d: chunks do not reassemble", n)
		}
	}
}

func TestRabinChunkBounds(t *testing.T) {
	r := NewRabin(1024)
	data := randBytes(rand.New(rand.NewSource(4)), 1<<18)
	chunks := r.Split(data)
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	for i, c := range chunks {
		if len(c.Data) > r.MaxSize() {
			t.Fatalf("chunk %d len %d exceeds max %d", i, len(c.Data), r.MaxSize())
		}
		if i < len(chunks)-1 && len(c.Data) <= r.MinSize()-1 {
			t.Fatalf("non-final chunk %d len %d below min %d", i, len(c.Data), r.MinSize())
		}
	}
}

func TestRabinDeterministic(t *testing.T) {
	r1 := NewRabin(2048)
	r2 := NewRabin(2048)
	data := randBytes(rand.New(rand.NewSource(5)), 1<<17)
	a := r1.Split(data)
	b := r2.Split(data)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Offset != b[i].Offset || len(a[i].Data) != len(b[i].Data) {
			t.Fatalf("chunk %d differs", i)
		}
	}
}

func TestRabinAverageSize(t *testing.T) {
	r := NewRabin(4096)
	data := randBytes(rand.New(rand.NewSource(6)), 1<<21)
	chunks := r.Split(data)
	avg := len(data) / len(chunks)
	// Content-defined chunking with min/max bounds lands within a factor of
	// ~2.5 of the target on random data.
	if avg < 4096/3 || avg > 4096*3 {
		t.Fatalf("average chunk size %d too far from target 4096 (%d chunks)", avg, len(chunks))
	}
}

func chunkHashes(chunks []Chunk) map[[32]byte]bool {
	set := make(map[[32]byte]bool, len(chunks))
	for _, c := range chunks {
		set[sha256.Sum256(c.Data)] = true
	}
	return set
}

func sharedFraction(orig, edited []Chunk) float64 {
	origSet := chunkHashes(orig)
	shared := 0
	for _, c := range edited {
		if origSet[sha256.Sum256(c.Data)] {
			shared++
		}
	}
	return float64(shared) / float64(len(edited))
}

// TestRabinResyncAfterInsertion exercises the defining property of
// content-defined chunking: inserting a few bytes mid-stream perturbs only
// a local neighbourhood of boundaries, while fixed-size chunking loses all
// alignment after the edit point.
func TestRabinResyncAfterInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randBytes(rng, 1<<19) // 512 KiB
	edit := make([]byte, 0, len(data)+7)
	edit = append(edit, data[:200000]...)
	edit = append(edit, []byte("INSERT!")...)
	edit = append(edit, data[200000:]...)

	r := NewRabin(4096)
	rabinShared := sharedFraction(r.Split(data), r.Split(edit))
	if rabinShared < 0.85 {
		t.Errorf("rabin shared fraction after insertion = %.2f, want >= 0.85", rabinShared)
	}

	f := NewFixed(4096)
	fixedShared := sharedFraction(f.Split(data), f.Split(edit))
	// Fixed chunking only retains the prefix before the edit: 200000/524295
	// of the stream, ~38% of chunks, plus nothing after.
	if fixedShared > 0.55 {
		t.Errorf("fixed shared fraction = %.2f, expected misalignment below 0.55", fixedShared)
	}
	if rabinShared <= fixedShared {
		t.Errorf("rabin (%.2f) should beat fixed (%.2f) after insertion", rabinShared, fixedShared)
	}
}

// TestRabinDedupOnRepeatedContent checks that identical regions produce
// identical chunks so a content-addressed store dedups them.
func TestRabinDedupOnRepeatedContent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	block := randBytes(rng, 1<<16)
	doubled := append(append([]byte{}, block...), block...)
	r := NewRabin(2048)
	single := chunkHashes(r.Split(block))
	both := chunkHashes(r.Split(doubled))
	// The doubled stream should introduce only a handful of new chunks at
	// the junction.
	extra := 0
	for h := range both {
		if !single[h] {
			extra++
		}
	}
	if extra > 4 {
		t.Fatalf("doubled content introduced %d new unique chunks, want <= 4", extra)
	}
}

func TestQuickFixedRoundTrip(t *testing.T) {
	f := NewFixed(37)
	err := quick.Check(func(data []byte) bool {
		chunks := f.Split(data)
		var buf bytes.Buffer
		for _, c := range chunks {
			buf.Write(c.Data)
		}
		return bytes.Equal(buf.Bytes(), data)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickRabinRoundTrip(t *testing.T) {
	r := NewRabin(256)
	err := quick.Check(func(data []byte) bool {
		chunks := r.Split(data)
		var buf bytes.Buffer
		var next int64
		for _, c := range chunks {
			if c.Offset != next {
				return false
			}
			buf.Write(c.Data)
			next += int64(len(c.Data))
		}
		return bytes.Equal(buf.Bytes(), data)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFixedSplit(b *testing.B) {
	data := randBytes(rand.New(rand.NewSource(9)), 1<<20)
	f := NewFixed(4096)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Split(data)
	}
}

func BenchmarkRabinSplit(b *testing.B) {
	data := randBytes(rand.New(rand.NewSource(10)), 1<<20)
	r := NewRabin(4096)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Split(data)
	}
}
