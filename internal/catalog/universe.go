package catalog

import (
	"fmt"
	"path"
	"sort"

	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/pkgmeta"
)

// PackageSpec is a universe entry: package metadata (sizes at paper scale)
// plus the paper-scale file count used to drive content generation.
type PackageSpec struct {
	pkgmeta.Package
	// FileCount is the paper-scale number of files the package installs.
	FileCount int
}

// Universe is the synthetic Ubuntu-like package catalog for one release.
// It implements pkgmgr.Universe.
type Universe struct {
	release Release
	specs   map[string]PackageSpec
	names   []string
}

// DefaultBase is the base-image attribute quadruple of every generated
// template: the Ubuntu 16.04 x86_64 guests of the paper's testbed.
var DefaultBase = pkgmeta.BaseAttrs{
	Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64",
}

const mb = int64(1e6)

// NewUniverse constructs the package universe of the paper's testbed
// release (Ubuntu 16.04): an essential base-OS set (including the paper's
// libc6/perl-base/dpkg dependency cycle) sized to the Mini image of
// Table II, plus the application stacks of the 19 evaluation images,
// calibrated against the paper's publish and retrieval times (see
// EXPERIMENTS.md).
func NewUniverse() *Universe { return NewUniverseFor(ReleaseXenial) }

// NewUniverseFor constructs the same package structure for an arbitrary
// release: identical names and dependency graph, release-specific versions
// and therefore release-specific deterministic content.
func NewUniverseFor(rel Release) *Universe {
	u := &Universe{release: rel, specs: make(map[string]PackageSpec)}

	ess := func(name string, sizeMB int64, files int, deps ...string) {
		u.add(name, sizeMB, files, true, "base", deps...)
	}
	app := func(name string, sizeMB int64, files int, deps ...string) {
		u.add(name, sizeMB, files, false, "apps", deps...)
	}

	// --- essential base OS (~1.64 GB, ~67k files at paper scale) ---
	ess("libc6", 180, 3000, "perl-base", "dpkg") // cyclic, per Fig. 1a
	ess("perl-base", 120, 2200, "libc6")
	ess("dpkg", 60, 1500, "libc6")
	ess("bash", 30, 400, "libc6")
	ess("coreutils", 80, 900, "libc6")
	ess("ucf", 5, 120, "coreutils")
	ess("debconf", 8, 250, "perl-base")
	ess("gawk", 6, 150, "libc6")
	ess("systemd", 130, 3600, "libc6")
	ess("util-linux", 70, 1000, "libc6")
	ess("apt", 45, 700, "libc6", "dpkg")
	ess("openssl", 40, 450, "libc6")
	ess("ca-certificates", 3, 180, "openssl")
	ess("python3-minimal", 90, 2600, "libc6")
	ess("grub-pc", 25, 550, "libc6")
	ess("linux-image-generic", 200, 4800, "libc6")
	ess("initramfs-tools", 15, 350, "bash")
	ess("netbase", 2, 60, "libc6")
	ess("ifupdown", 4, 90, "netbase")
	ess("openssh-server", 12, 280, "openssl")
	ess("rsyslog", 9, 180, "libc6")
	ess("cron", 3, 80, "libc6")
	ess("tar", 6, 90, "libc6")
	ess("gzip", 4, 70, "libc6")
	ess("sed", 3, 60, "libc6")
	ess("grep", 4, 70, "libc6")
	ess("findutils", 5, 80, "libc6")
	ess("e2fsprogs", 10, 200, "util-linux")
	ess("mount", 5, 90, "util-linux")
	ess("login", 4, 110, "libc6")
	for i := 0; i < 18; i++ {
		ess(fmt.Sprintf("base-lib-%02d", i), 7, 2400, "libc6")
	}

	// --- application stacks (sizes calibrated to Table II) ---
	app("ssl-cert", 2, 40, "openssl")
	app("redis-server", 8, 200, "libc6")
	app("postgresql-9.5", 55, 1400, "libc6", "ssl-cert")
	app("python3-full", 12, 600, "python3-minimal")
	app("python-django", 14, 700, "python3-full")
	app("erlang-base", 22, 900, "libc6")
	app("rabbitmq-server", 16, 600, "erlang-base")
	app("libaprutil1", 4, 80, "libc6")
	app("apache2", 16, 500, "libaprutil1")
	app("libaio1", 1, 10, "libc6")
	app("mysql-server", 34, 700, "libaio1")
	app("php7", 16, 900, "libc6")
	app("couchdb", 62, 800, "erlang-base")
	app("java-common", 1, 20, "libc6")
	app("openjdk-8", 52, 1500, "java-common")
	app("cassandra", 18, 600, "openjdk-8")
	app("tomcat-libs", 90, 1100, "libc6")
	app("tomcat8", 18, 400, "openjdk-8", "tomcat-libs")
	app("libpq5", 12, 150, "libc6")
	app("php-pgsql", 8, 120, "php7", "libpq5")
	app("pgadmin", 80, 1500, "libpq5", "python3-full")
	app("nginx", 20, 350, "libc6")
	app("php-fpm", 13, 220, "php7")
	app("mongodb-org", 168, 500, "libc6")
	app("owncloud", 148, 8000, "apache2", "php7", "mysql-server")
	app("xorg", 45, 1200, "libc6")
	app("desktop-base", 10, 300, "xorg")
	app("libreoffice", 60, 2600, "desktop-base")
	app("thunderbird", 45, 900, "desktop-base")
	app("vsftpd", 3, 60, "libc6")
	app("nfs-kernel-server", 8, 150, "libc6")
	app("postfix", 15, 400, "libc6")
	app("dovecot", 12, 300, "libc6")
	for i := 0; i < 110; i++ {
		app(fmt.Sprintf("desktop-pkg-%03d", i), 1, 110, "desktop-base")
	}
	app("apache-solr", 125, 900, "openjdk-8")
	app("eclipse", 220, 3000, "openjdk-8")
	app("maven", 30, 400, "openjdk-8")
	app("jenkins", 113, 700, "openjdk-8")
	app("ruby-full", 70, 1800, "libc6")
	app("rails", 40, 1200, "ruby-full")
	app("redmine", 95, 2200, "rails", "mysql-server")
	app("elasticsearch", 140, 9000, "openjdk-8")
	app("logstash", 90, 8000, "openjdk-8")
	app("kibana", 80, 9000, "libc6")

	sort.Strings(u.names)
	return u
}

func (u *Universe) add(name string, sizeMB int64, files int, essential bool, section string, deps ...string) {
	if _, dup := u.specs[name]; dup {
		panic(fmt.Sprintf("catalog: duplicate package %q", name))
	}
	u.specs[name] = PackageSpec{
		Package: pkgmeta.Package{
			Name:          name,
			Version:       u.release.PkgVersion,
			Arch:          "amd64",
			Distro:        u.release.Base.Distro,
			Section:       section,
			InstalledSize: sizeMB * mb,
			Depends:       deps,
			Essential:     essential,
		},
		FileCount: files,
	}
	u.names = append(u.names, name)
}

// Release returns the universe's release.
func (u *Universe) Release() Release { return u.release }

// Lookup implements pkgmgr.Universe.
func (u *Universe) Lookup(name string) (pkgmeta.Package, bool) {
	s, ok := u.specs[name]
	return s.Package, ok
}

// Spec returns the full spec for a package.
func (u *Universe) Spec(name string) (PackageSpec, bool) {
	s, ok := u.specs[name]
	return s, ok
}

// Names returns all package names in sorted order.
func (u *Universe) Names() []string { return append([]string(nil), u.names...) }

// EssentialNames returns the names of the essential base-OS packages.
func (u *Universe) EssentialNames() []string {
	var out []string
	for _, n := range u.names {
		if u.specs[n].Essential {
			out = append(out, n)
		}
	}
	return out
}

// BaseInstalledBytes returns the paper-scale installed size of the
// essential base set.
func (u *Universe) BaseInstalledBytes() int64 {
	var total int64
	for _, n := range u.EssentialNames() {
		total += u.specs[n].InstalledSize
	}
	return total
}

// FilesFor generates the deterministic file contents of a package at real
// (generated) scale. The same name and version always produce identical
// bytes, which is what makes package payloads dedupable across images.
func (u *Universe) FilesFor(name string) ([]pkgfmt.File, error) {
	spec, ok := u.specs[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown package %q", name)
	}
	seed := seedString(spec.Name + "=" + spec.Version)
	realBytes := Real(spec.InstalledSize)
	realCount := RealFiles(spec.FileCount)
	sizes := splitSizes(seed, realBytes, realCount)

	files := make([]pkgfmt.File, 0, realCount+2)
	for i, size := range sizes {
		var p string
		switch {
		case i == 0:
			p = path.Join("/usr/bin", spec.Name)
		case i%9 == 1:
			p = fmt.Sprintf("/usr/share/%s/doc-%04d.txt", spec.Name, i)
		default:
			p = fmt.Sprintf("/usr/lib/%s/obj-%04d.bin", spec.Name, i)
		}
		files = append(files, pkgfmt.File{
			Path: p,
			Data: GenContent(splitmix64(seed^uint64(i)), int(size)),
		})
	}
	// A small, always-present configuration file.
	files = append(files, pkgfmt.File{
		Path: fmt.Sprintf("/etc/%s.conf", spec.Name),
		Data: []byte(fmt.Sprintf("# configuration for %s %s\nenabled=true\n", spec.Name, spec.Version)),
	})
	return files, nil
}
