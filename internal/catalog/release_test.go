package catalog

import (
	"bytes"
	"testing"
)

func TestReleasesDiffer(t *testing.T) {
	x := NewUniverseFor(ReleaseXenial)
	b := NewUniverseFor(ReleaseBionic)
	if x.Release() == b.Release() {
		t.Fatal("releases identical")
	}
	px, _ := x.Lookup("libc6")
	pb, _ := b.Lookup("libc6")
	if px.Version == pb.Version {
		t.Fatal("cross-release packages share a version")
	}
	if px.Ref() == pb.Ref() {
		t.Fatal("cross-release refs collide")
	}
	// Same structure: names and dependency graph identical.
	if len(x.Names()) != len(b.Names()) {
		t.Fatal("package sets differ across releases")
	}
	if len(px.Depends) != len(pb.Depends) {
		t.Fatal("dependency structure differs across releases")
	}
}

func TestReleaseContentDiffers(t *testing.T) {
	x := NewUniverseFor(ReleaseXenial)
	b := NewUniverseFor(ReleaseBionic)
	fx, err := x.FilesFor("bash")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.FilesFor("bash")
	if err != nil {
		t.Fatal(err)
	}
	if len(fx) != len(fb) {
		t.Fatal("file counts differ across releases")
	}
	same := 0
	for i := range fx {
		if bytes.Equal(fx[i].Data, fb[i].Data) {
			same++
		}
	}
	// Content is keyed by name=version, so essentially every payload file
	// differs between releases.
	if same > 1 {
		t.Fatalf("%d/%d files identical across releases", same, len(fx))
	}
}

func TestDefaultUniverseIsXenial(t *testing.T) {
	u := NewUniverse()
	if u.Release() != ReleaseXenial {
		t.Fatalf("default release = %+v", u.Release())
	}
	if u.Release().Base != DefaultBase {
		t.Fatal("DefaultBase drifted from ReleaseXenial")
	}
}

func TestStretchIsDifferentDistro(t *testing.T) {
	if ReleaseStretch.Base.Distro == ReleaseXenial.Base.Distro {
		t.Fatal("stretch should be a different distribution")
	}
	u := NewUniverseFor(ReleaseStretch)
	p, _ := u.Lookup("libc6")
	if p.Distro != "debian" {
		t.Fatalf("stretch package distro = %q", p.Distro)
	}
}
