package catalog

import (
	"fmt"

	"expelliarmus/internal/pkgfmt"
	"expelliarmus/internal/vmi"
)

// Template describes one synthetic VMI to build: the evaluation workload
// unit. Sizes are paper-scale bytes; see content.go for scaling.
type Template struct {
	// Name identifies the image (Table II's "VMI name").
	Name string
	// Primaries is the user-requested primary package set PS.
	Primaries []string
	// ChurnBytes/ChurnFiles size the instance-unique system churn (logs,
	// caches, spools) written outside package management. Every storage
	// system must either store (Mirage/Hemera/qcow2), compress (gzip) or
	// semantically discard (Expelliarmus) this content.
	ChurnBytes int64
	ChurnFiles int
	// SharedChurnBytes/Files size churn that is identical across a build
	// series (the successive IDE builds of Fig. 3c share most build
	// artifacts; only ~100 MB differs between builds).
	SharedChurnBytes int64
	SharedChurnFiles int
	// UserDataBytes/Files size the user Data component (home directories),
	// preserved verbatim by every system.
	UserDataBytes int64
	UserDataFiles int
	// SeriesSeed keys content shared across a series (shared churn, user
	// data); InstanceSeed keys instance-unique content.
	SeriesSeed   uint64
	InstanceSeed uint64
}

const kfiles = 1000

// tpl builds a standard template: series and instance seeds derive from
// the name so every template is unique and reproducible.
func tpl(name string, churnMB int64, churnFiles int, primaries ...string) Template {
	return Template{
		Name:          name,
		Primaries:     primaries,
		ChurnBytes:    churnMB * mb,
		ChurnFiles:    churnFiles,
		UserDataBytes: 10 * mb,
		UserDataFiles: 250,
		SeriesSeed:    seedString("series/" + name),
		InstanceSeed:  seedString("instance/" + name),
	}
}

// Paper19 returns the 19 evaluation images of Table II in upload order.
// Primary package sets follow the paper's stack descriptions; churn and
// user-data sizes are calibrated so mounted sizes and file counts land
// near Table II (see EXPERIMENTS.md for paper-vs-measured).
func Paper19() []Template {
	desktop := []string{
		"xorg", "desktop-base", "libreoffice", "thunderbird",
		"vsftpd", "nfs-kernel-server", "postfix", "dovecot",
		"apache2", "mysql-server", "php7",
	}
	for i := 0; i < 110; i++ {
		desktop = append(desktop, fmt.Sprintf("desktop-pkg-%03d", i))
	}
	ide := Template{
		Name:             "IDE",
		Primaries:        []string{"eclipse", "maven", "python3-full"},
		ChurnBytes:       105 * mb,
		ChurnFiles:       2500,
		SharedChurnBytes: 600 * mb,
		SharedChurnFiles: 6 * kfiles,
		UserDataBytes:    12 * mb,
		UserDataFiles:    300,
		SeriesSeed:       seedString("series/IDE"),
		InstanceSeed:     seedString("instance/IDE"),
	}
	return []Template{
		tpl("Mini", 180, 8*kfiles),
		tpl("Redis", 175, 7800, "redis-server"),
		tpl("PostgreSql", 165, 7*kfiles, "postgresql-9.5"),
		tpl("Django", 175, 7200, "python-django"),
		tpl("RabbitMQ", 165, 7*kfiles, "rabbitmq-server"),
		tpl("Base", 155, 6400, "apache2", "mysql-server", "php7"),
		tpl("CouchDB", 145, 6600, "couchdb"),
		tpl("Cassandra", 700, 10*kfiles, "cassandra"),
		tpl("Tomcat", 160, 5800, "tomcat8"),
		tpl("Lapp", 150, 5500, "apache2", "postgresql-9.5", "php7", "pgadmin", "php-pgsql"),
		tpl("Lemp", 250, 6500, "nginx", "mysql-server", "php-fpm"),
		tpl("MongoDb", 190, 7400, "mongodb-org"),
		tpl("OwnCloud", 450, 14*kfiles, "owncloud"),
		tpl("Desktop", 120, 4500, desktop...),
		tpl("ApacheSolr", 400, 10500, "apache-solr"),
		ide,
		tpl("Jenkins", 600, 11*kfiles, "jenkins"),
		tpl("Redmine", 400, 20*kfiles, "redmine"),
		tpl("ElasticStack", 600, 9500, "elasticsearch", "logstash", "kibana"),
	}
}

// Paper4 returns the four images shared with the Mirage and Hemera studies
// (Fig. 3a / Fig. 4a): Mini, Base, Desktop, IDE, in that order.
func Paper4() []Template {
	var out []Template
	for _, t := range Paper19() {
		switch t.Name {
		case "Mini", "Base", "Desktop", "IDE":
			out = append(out, t)
		}
	}
	return out
}

// Find returns the named template from Paper19.
func Find(name string) (Template, bool) {
	for _, t := range Paper19() {
		if t.Name == name {
			return t, true
		}
	}
	return Template{}, false
}

// IDEBuilds returns n successive builds of the IDE image (the Fig. 3c
// workload): identical packages and user data, identical shared build
// artifacts, but ~105 MB of build-specific churn each.
func IDEBuilds(n int) []Template {
	base, ok := Find("IDE")
	if !ok {
		panic("catalog: IDE template missing")
	}
	out := make([]Template, n)
	for i := 0; i < n; i++ {
		t := base
		t.Name = fmt.Sprintf("IDE-build-%02d", i+1)
		// Shared churn and user data stay keyed by the series seed;
		// instance churn varies per build.
		t.InstanceSeed = seedString(fmt.Sprintf("instance/IDE-build-%02d", i+1))
		out[i] = t
	}
	return out
}

// churnRoots are the guest directories receiving system churn.
var churnRoots = []string{"/var/log", "/var/cache", "/var/spool", "/tmp"}

// UserDataRoots mirrors vmi.UserDataRoots for workload generation.
var UserDataRoots = vmi.UserDataRoots

// genDataFiles deterministically spreads paperBytes over paperFiles files
// under the given roots.
func genDataFiles(roots []string, sub string, seed uint64, paperBytes int64, paperFiles int) []pkgfmt.File {
	realCount := RealFiles(paperFiles)
	if realCount == 0 || paperBytes <= 0 {
		return nil
	}
	sizes := splitSizes(seed, Real(paperBytes), realCount)
	files := make([]pkgfmt.File, realCount)
	r := newRNG(seed, 0xDA7A)
	for i, size := range sizes {
		root := roots[r.intn(len(roots))]
		files[i] = pkgfmt.File{
			Path: fmt.Sprintf("%s/%s/d%05d.dat", root, sub, i),
			Data: GenContent(splitmix64(seed^uint64(0xF00D+i)), int(size)),
		}
	}
	return files
}

// ChurnFileSet generates the template's system churn: the shared series
// component plus the instance-unique component.
func (t Template) ChurnFileSet() []pkgfmt.File {
	var out []pkgfmt.File
	if t.SharedChurnBytes > 0 {
		out = append(out, genDataFiles(churnRoots, "shared",
			t.SeriesSeed, t.SharedChurnBytes, t.SharedChurnFiles)...)
	}
	out = append(out, genDataFiles(churnRoots, "run",
		t.InstanceSeed, t.ChurnBytes, t.ChurnFiles)...)
	return out
}

// UserDataFileSet generates the template's user data, keyed by the series
// seed so rebuilt images carry identical user data.
func (t Template) UserDataFileSet() []pkgfmt.File {
	return genDataFiles(UserDataRoots, "user",
		splitmix64(t.SeriesSeed^0x05E4), t.UserDataBytes, t.UserDataFiles)
}
