package catalog

import (
	"bytes"
	"compress/gzip"
	"testing"

	"expelliarmus/internal/pkgmgr"
)

func TestUniverseWellFormed(t *testing.T) {
	u := NewUniverse()
	names := u.Names()
	if len(names) < 150 {
		t.Fatalf("universe has only %d packages", len(names))
	}
	// Every dependency resolves.
	for _, n := range names {
		p, ok := u.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%s) failed", n)
		}
		for _, d := range p.Depends {
			if _, ok := u.Lookup(d); !ok {
				t.Errorf("%s depends on unknown %s", n, d)
			}
		}
	}
}

func TestUniverseCycleExists(t *testing.T) {
	u := NewUniverse()
	// The paper's libc6/perl-base/dpkg cycle must be present and grouped.
	order, err := pkgmgr.InstallOrder(u, []string{"libc6", "perl-base", "dpkg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || len(order[0]) != 3 {
		t.Fatalf("cycle not grouped: %v", order)
	}
}

func TestBaseSizeMatchesMini(t *testing.T) {
	u := NewUniverse()
	base := u.BaseInstalledBytes()
	// The Mini image is ~1.9 GB mounted; base content sits near 1.3 GB,
	// leaving room for churn, block fragmentation and filesystem metadata.
	if base < 1200*mb || base > 1500*mb {
		t.Fatalf("base installed = %.2f GB, want ~1.3 GB", float64(base)/1e9)
	}
	var baseFiles int
	for _, n := range u.EssentialNames() {
		s, _ := u.Spec(n)
		baseFiles += s.FileCount
	}
	if baseFiles < 60000 || baseFiles > 72000 {
		t.Fatalf("base files = %d, want ~67k", baseFiles)
	}
}

func TestEssentialClosureIsEssentialOnly(t *testing.T) {
	u := NewUniverse()
	closure, err := pkgmgr.Closure(u, u.EssentialNames())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range closure {
		p, _ := u.Lookup(n)
		if !p.Essential {
			t.Errorf("essential closure pulled in non-essential %s", n)
		}
	}
}

func TestAppClosuresResolve(t *testing.T) {
	u := NewUniverse()
	for _, tpl := range Paper19() {
		if _, err := pkgmgr.Closure(u, tpl.Primaries); err != nil {
			t.Errorf("template %s: %v", tpl.Name, err)
		}
	}
}

func TestFilesForDeterministicAndSized(t *testing.T) {
	u := NewUniverse()
	a, err := u.FilesFor("redis-server")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := u.FilesFor("redis-server")
	if len(a) != len(b) {
		t.Fatal("file counts differ between generations")
	}
	var totalA int64
	for i := range a {
		if a[i].Path != b[i].Path || !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("file %d differs between generations", i)
		}
		totalA += int64(len(a[i].Data))
	}
	spec, _ := u.Spec("redis-server")
	want := Real(spec.InstalledSize)
	if totalA < want*95/100 || totalA > want*105/100 {
		t.Fatalf("generated %d bytes, want ~%d", totalA, want)
	}
	wantFiles := RealFiles(spec.FileCount) + 1 // + conf
	if len(a) != wantFiles {
		t.Fatalf("generated %d files, want %d", len(a), wantFiles)
	}
	if _, err := u.FilesFor("no-such-package"); err == nil {
		t.Fatal("FilesFor accepted unknown package")
	}
}

func TestGenContentDeterministicAndDistinct(t *testing.T) {
	a := GenContent(42, 10000)
	b := GenContent(42, 10000)
	c := GenContent(43, 10000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different content")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical content")
	}
	if len(GenContent(1, 0)) != 0 {
		t.Fatal("GenContent(_,0) non-empty")
	}
	if len(GenContent(1, 7)) != 7 {
		t.Fatal("GenContent length mismatch")
	}
}

func TestGenContentCompressibility(t *testing.T) {
	data := GenContent(7, 1<<20)
	var buf bytes.Buffer
	w, _ := gzip.NewWriterLevel(&buf, gzip.DefaultCompression)
	w.Write(data)
	w.Close()
	ratio := float64(len(data)) / float64(buf.Len())
	// Target ≈2.8x (the paper's whole-image gzip ratio); accept a band.
	if ratio < 2.0 || ratio > 4.0 {
		t.Fatalf("gzip ratio = %.2fx, want within [2.0, 4.0]", ratio)
	}
}

func TestSplitSizesConserves(t *testing.T) {
	for _, tc := range []struct {
		total int64
		n     int
	}{{1000, 1}, {1000, 7}, {999999, 100}, {5, 10}} {
		sizes := splitSizes(1, tc.total, tc.n)
		if len(sizes) != tc.n {
			t.Fatalf("n=%d: got %d sizes", tc.n, len(sizes))
		}
		var sum int64
		for _, s := range sizes {
			sum += s
		}
		if sum != tc.total {
			t.Fatalf("total=%d n=%d: sizes sum to %d", tc.total, tc.n, sum)
		}
	}
}

func TestScaleHelpers(t *testing.T) {
	if Real(1024) != 1 || Paper(1) != 1024 {
		t.Fatal("byte scaling wrong")
	}
	if RealFiles(0) != 0 || RealFiles(1) != 1 || RealFiles(640) != 10 {
		t.Fatal("file scaling wrong")
	}
	if PaperFiles(10) != 640 {
		t.Fatal("PaperFiles wrong")
	}
}

func TestPaper19Order(t *testing.T) {
	tpls := Paper19()
	if len(tpls) != 19 {
		t.Fatalf("Paper19 has %d templates", len(tpls))
	}
	want := []string{"Mini", "Redis", "PostgreSql", "Django", "RabbitMQ", "Base",
		"CouchDB", "Cassandra", "Tomcat", "Lapp", "Lemp", "MongoDb", "OwnCloud",
		"Desktop", "ApacheSolr", "IDE", "Jenkins", "Redmine", "ElasticStack"}
	for i, tt := range tpls {
		if tt.Name != want[i] {
			t.Fatalf("template %d = %s, want %s (Table II order)", i, tt.Name, want[i])
		}
	}
}

func TestPaper4Subset(t *testing.T) {
	tpls := Paper4()
	if len(tpls) != 4 {
		t.Fatalf("Paper4 has %d templates", len(tpls))
	}
	want := []string{"Mini", "Base", "Desktop", "IDE"}
	for i, tt := range tpls {
		if tt.Name != want[i] {
			t.Fatalf("Paper4[%d] = %s, want %s", i, tt.Name, want[i])
		}
	}
}

func TestDesktopExportsMany(t *testing.T) {
	tpl, ok := Find("Desktop")
	if !ok {
		t.Fatal("Desktop template missing")
	}
	// The paper reports 126 packages exported for Desktop; the primary set
	// alone should be >100.
	if len(tpl.Primaries) < 100 {
		t.Fatalf("Desktop has %d primaries", len(tpl.Primaries))
	}
}

func TestIDEBuildsShareSeriesContent(t *testing.T) {
	builds := IDEBuilds(3)
	if len(builds) != 3 {
		t.Fatal("wrong build count")
	}
	// Shared churn identical across builds; instance churn differs.
	a := builds[0].ChurnFileSet()
	b := builds[1].ChurnFileSet()
	shared, distinct := 0, 0
	bByPath := map[string][]byte{}
	for _, f := range b {
		bByPath[f.Path] = f.Data
	}
	for _, f := range a {
		if other, ok := bByPath[f.Path]; ok && bytes.Equal(other, f.Data) {
			shared++
		} else {
			distinct++
		}
	}
	if shared == 0 {
		t.Fatal("IDE builds share no churn content")
	}
	if distinct == 0 {
		t.Fatal("IDE builds have no distinct churn content")
	}
	// User data identical across the series.
	ua, ub := builds[0].UserDataFileSet(), builds[1].UserDataFileSet()
	if len(ua) != len(ub) {
		t.Fatal("user data counts differ")
	}
	for i := range ua {
		if ua[i].Path != ub[i].Path || !bytes.Equal(ua[i].Data, ub[i].Data) {
			t.Fatal("user data differs across IDE builds")
		}
	}
}

func TestTemplateChurnUniquePerInstance(t *testing.T) {
	tpls := Paper19()
	a := tpls[0].ChurnFileSet() // Mini
	b := tpls[1].ChurnFileSet() // Redis
	bByPath := map[string][]byte{}
	for _, f := range b {
		bByPath[f.Path] = f.Data
	}
	for _, f := range a {
		if other, ok := bByPath[f.Path]; ok && bytes.Equal(other, f.Data) {
			t.Fatalf("churn file %s shared between different templates", f.Path)
		}
	}
}

func BenchmarkGenContent(b *testing.B) {
	b.SetBytes(1 << 20)
	for i := 0; i < b.N; i++ {
		GenContent(uint64(i), 1<<20)
	}
}
