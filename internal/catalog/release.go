package catalog

import "expelliarmus/internal/pkgmeta"

// Release identifies one guest OS release: a base-image attribute
// quadruple plus the package version its packages carry. The paper's
// evaluation uses a single release (Ubuntu 16.04); additional releases
// exercise the multi-master-graph paths of Algorithms 1–2 (simBI < 1
// between releases, so base images are never replaced across them) and
// lay the groundwork for the paper's multi-OS future work.
type Release struct {
	// Base is the base-image attribute quadruple of the release.
	Base pkgmeta.BaseAttrs
	// PkgVersion is the version string of every package in the release;
	// differing versions make cross-release packages semantically distinct
	// (simP < 1) with distinct content.
	PkgVersion string
}

// ReleaseXenial is the paper's testbed release (Ubuntu 16.04).
var ReleaseXenial = Release{
	Base:       pkgmeta.BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64"},
	PkgVersion: "1.0-ubuntu1",
}

// ReleaseBionic is a newer release of the same distribution: same type,
// distro and architecture, different major version, so SimBI = 0.5 and
// base-image selection keeps the releases' bases separate.
var ReleaseBionic = Release{
	Base:       pkgmeta.BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "18.04", Arch: "x86_64"},
	PkgVersion: "2.0-ubuntu2",
}

// ReleaseStretch is a different distribution entirely (SimBI = 0).
var ReleaseStretch = Release{
	Base:       pkgmeta.BaseAttrs{Type: "linux", Distro: "debian", Version: "9", Arch: "x86_64"},
	PkgVersion: "1.0-deb9",
}
