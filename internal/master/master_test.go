package master

import (
	"reflect"
	"testing"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/semgraph"
)

var base = pkgmeta.BaseAttrs{Type: "linux", Distro: "ubuntu", Version: "16.04", Arch: "x86_64"}

func pkg(name string, essential bool, deps ...string) pkgmeta.Package {
	return pkgmeta.Package{
		Name: name, Version: "1.0", Arch: "amd64", Distro: "ubuntu",
		InstalledSize: 100, Depends: deps, Essential: essential,
	}
}

func baseSub() *semgraph.Graph {
	return semgraph.Build(base, []pkgmeta.Package{
		pkg("libc6", true, "perl-base"),
		pkg("perl-base", true, "libc6"),
		pkg("bash", true, "libc6"),
	}, nil)
}

func redisSub() *semgraph.Graph {
	g := semgraph.New(base)
	g.AddVertex(pkg("redis", false, "libc6"), semgraph.KindPrimary)
	g.AddVertex(pkg("libc6", true, "perl-base"), semgraph.KindBase)
	g.AddEdge("redis", "libc6")
	return g
}

func nginxSub() *semgraph.Graph {
	g := semgraph.New(base)
	g.AddVertex(pkg("nginx", false), semgraph.KindPrimary)
	g.AddVertex(pkg("nginx-common", false), semgraph.KindDependency)
	g.AddEdge("nginx", "nginx-common")
	return g
}

func TestNewAndAdd(t *testing.T) {
	m := New("base-1", baseSub())
	if m.BaseID != "base-1" || m.Attrs() != base {
		t.Fatalf("master metadata: %s %v", m.BaseID, m.Attrs())
	}
	if err := m.AddPrimarySubgraph(redisSub()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPrimarySubgraph(nginxSub()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.PrimaryNames(), []string{"nginx", "redis"}) {
		t.Fatalf("primaries = %v", m.PrimaryNames())
	}
	// Base subgraph unchanged by clustering.
	if got := m.BaseSubgraph().Names(); !reflect.DeepEqual(got, []string{"bash", "libc6", "perl-base"}) {
		t.Fatalf("base subgraph = %v", got)
	}
}

func TestAddIncompatibleRejected(t *testing.T) {
	m := New("base-1", baseSub())
	bad := semgraph.New(base)
	skewed := pkg("libc6", true)
	skewed.Version = "9.9"
	bad.AddVertex(pkg("app", false, "libc6"), semgraph.KindPrimary)
	bad.AddVertex(skewed, semgraph.KindBase)
	bad.AddEdge("app", "libc6")
	if err := m.AddPrimarySubgraph(bad); err == nil {
		t.Fatal("incompatible subgraph accepted")
	}
}

func TestPrimarySubgraphExtraction(t *testing.T) {
	m := New("base-1", baseSub())
	m.AddPrimarySubgraph(redisSub())
	m.AddPrimarySubgraph(nginxSub())

	sub, err := m.PrimarySubgraph("redis")
	if err != nil {
		t.Fatal(err)
	}
	// redis closure within the master: redis, libc6, perl-base (via cycle
	// edge from libc6).
	if !sub.HasVertex("redis") || !sub.HasVertex("libc6") {
		t.Fatalf("extraction = %v", sub.Names())
	}
	if sub.HasVertex("nginx") {
		t.Fatal("extraction leaked another primary")
	}
	if _, err := m.PrimarySubgraph("bash"); err == nil {
		t.Fatal("extracted non-primary")
	}
	if _, err := m.PrimarySubgraph("ghost"); err == nil {
		t.Fatal("extracted missing vertex")
	}
}

func TestSimilarityAgainstMaster(t *testing.T) {
	m := New("base-1", baseSub())
	m.AddPrimarySubgraph(redisSub())
	// A graph equal to the master's content scores 1.
	self := m.G.Clone()
	if got := m.Similarity(self); got < 0.999 {
		t.Fatalf("self similarity = %v", got)
	}
	// A fresh upload with one extra package scores below 1 but high.
	g := m.G.Clone()
	g.AddVertex(pkg("extra", false), semgraph.KindDependency)
	sim := m.Similarity(g)
	if sim >= 1 || sim < 0.5 {
		t.Fatalf("similarity with extra package = %v", sim)
	}
}

func TestMerge(t *testing.T) {
	m1 := New("base-1", baseSub())
	m1.AddPrimarySubgraph(redisSub())
	m2 := New("base-2", baseSub())
	m2.AddPrimarySubgraph(nginxSub())

	if err := m1.Merge(m2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.PrimaryNames(), []string{"nginx", "redis"}) {
		t.Fatalf("after merge primaries = %v", m1.PrimaryNames())
	}
	if !m1.G.HasVertex("nginx-common") {
		t.Fatal("merge dropped dependency vertex")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m := New("base-xyz", baseSub())
	m.AddPrimarySubgraph(redisSub())
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.BaseID != "base-xyz" {
		t.Fatalf("BaseID = %q", got.BaseID)
	}
	if !reflect.DeepEqual(got.G.Names(), m.G.Names()) {
		t.Fatalf("names = %v", got.G.Names())
	}
	if !reflect.DeepEqual(got.PrimaryNames(), m.PrimaryNames()) {
		t.Fatalf("primaries = %v", got.PrimaryNames())
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := Unmarshal([]byte{}); err == nil {
		t.Fatal("accepted empty")
	}
	if _, err := Unmarshal([]byte{0, 99}); err == nil {
		t.Fatal("accepted truncated id")
	}
}
