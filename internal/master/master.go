// Package master implements the VMI master graph of Sec. III-H: one graph
// per stored base image that unions the base-image subgraph with the
// primary-package subgraphs of every VMI clustered on that base. Its
// purpose is to "reduce the similarity computation overhead between
// multiple VMI semantic graphs with one single master graph comparison".
package master

import (
	"fmt"
	"sort"

	"expelliarmus/internal/pkgmeta"
	"expelliarmus/internal/semgraph"
	"expelliarmus/internal/similarity"
)

// Graph is a master graph: the union graph plus the identity of the base
// image it clusters on.
type Graph struct {
	// BaseID identifies the stored base image this master belongs to.
	BaseID string
	// G is the union of the base-image subgraph and all clustered
	// primary-package subgraphs.
	G *semgraph.Graph
}

// New creates a master graph from a base-image subgraph.
func New(baseID string, baseSub *semgraph.Graph) *Graph {
	return &Graph{BaseID: baseID, G: baseSub.Clone()}
}

// Attrs returns the base attribute quadruple (T,D,V,A) keying the master.
func (m *Graph) Attrs() pkgmeta.BaseAttrs { return m.G.Base() }

// ErrVersionConflict reports that a primary subgraph carries a different
// build of a package the master already clusters. The paper's master graph
// keys vertices by the pkg attribute, so it cannot represent two versions
// of one package on the same base image — a design limitation this
// reproduction surfaces as an explicit error (see DESIGN.md §6).
type ErrVersionConflict struct {
	BaseID   string
	Pkg      string
	Existing string // stored Ref
	Incoming string // conflicting Ref
}

func (e *ErrVersionConflict) Error() string {
	return fmt.Sprintf("master %s: version conflict for %s: %s already clustered, got %s",
		e.BaseID, e.Pkg, e.Existing, e.Incoming)
}

// AddPrimarySubgraph clusters a VMI's primary-package subgraph into the
// master. Per Sec. III-H the subgraph must be semantically compatible with
// the master's base image subgraph, and no package may arrive in a
// different version than one already clustered (*ErrVersionConflict).
func (m *Graph) AddPrimarySubgraph(ps *semgraph.Graph) error {
	if !similarity.Compatible(m.BaseSubgraph(), ps) {
		return fmt.Errorf("master %s: primary subgraph incompatible with base", m.BaseID)
	}
	for _, v := range ps.Vertices() {
		if cur, ok := m.G.Vertex(v.Pkg.Name); ok && cur.Pkg.Ref() != v.Pkg.Ref() {
			return &ErrVersionConflict{
				BaseID:   m.BaseID,
				Pkg:      v.Pkg.Name,
				Existing: cur.Pkg.Ref(),
				Incoming: v.Pkg.Ref(),
			}
		}
	}
	m.G.Union(ps)
	return nil
}

// BaseSubgraph returns the base-image part of the master.
func (m *Graph) BaseSubgraph() *semgraph.Graph { return m.G.BaseSubgraph() }

// PrimaryNames lists the primary packages clustered in the master.
func (m *Graph) PrimaryNames() []string { return m.G.PrimaryNames() }

// PrimarySubgraph extracts the subgraph of one clustered primary package:
// the package plus its dependency closure within the master (Algorithm 1
// line 25 / Algorithm 2 line 9, extractSubGraph(GM, P)).
func (m *Graph) PrimarySubgraph(primary string) (*semgraph.Graph, error) {
	v, ok := m.G.Vertex(primary)
	if !ok {
		return nil, fmt.Errorf("master %s: no vertex %q", m.BaseID, primary)
	}
	if v.Kind != semgraph.KindPrimary {
		return nil, fmt.Errorf("master %s: %q is not a primary package", m.BaseID, primary)
	}
	// Closure from the single primary.
	sub := semgraph.New(m.G.Base())
	var queue []string
	queue = append(queue, primary)
	seen := map[string]bool{}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if seen[n] {
			continue
		}
		seen[n] = true
		vv, _ := m.G.Vertex(n)
		sub.AddVertex(vv.Pkg, vv.Kind)
		queue = append(queue, m.G.Succ(n)...)
	}
	for n := range seen {
		for _, to := range m.G.Succ(n) {
			if seen[to] {
				sub.AddEdge(n, to) //nolint:errcheck
			}
		}
	}
	return sub, nil
}

// Similarity computes SimG between an uploaded VMI graph and the master.
func (m *Graph) Similarity(g *semgraph.Graph) float64 {
	return similarity.SimG(g, m.G)
}

// Merge folds another master's clustered primary subgraphs into this one
// (Algorithm 1 lines 22–26, replacing an obsolete base image).
func (m *Graph) Merge(other *Graph) error {
	names := other.PrimaryNames()
	sort.Strings(names)
	for _, p := range names {
		sub, err := other.PrimarySubgraph(p)
		if err != nil {
			return err
		}
		if err := m.AddPrimarySubgraph(sub); err != nil {
			return err
		}
	}
	return nil
}

// Marshal serialises the master graph.
func (m *Graph) Marshal() []byte {
	head := []byte(m.BaseID)
	body := m.G.Marshal()
	out := make([]byte, 0, 2+len(head)+len(body))
	out = append(out, byte(len(head)>>8), byte(len(head)))
	out = append(out, head...)
	out = append(out, body...)
	return out
}

// Unmarshal decodes a master graph.
func Unmarshal(data []byte) (*Graph, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("master: truncated")
	}
	n := int(data[0])<<8 | int(data[1])
	if len(data) < 2+n {
		return nil, fmt.Errorf("master: truncated base id")
	}
	g, err := semgraph.Unmarshal(data[2+n:])
	if err != nil {
		return nil, err
	}
	return &Graph{BaseID: string(data[2 : 2+n]), G: g}, nil
}
