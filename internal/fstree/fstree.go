// Package fstree implements a small inode/extent filesystem that lives
// inside a vdisk, standing in for the guest ext4 filesystem of the paper's
// VMIs. Every byte of file data, directory content and filesystem metadata
// is stored in the disk's clusters, so the disk's sparse allocated size and
// its serialized qcow2-like form faithfully reflect filesystem contents —
// including shrinkage when the Expelliarmus decomposer removes packages.
//
// Layout (block size = disk cluster size):
//
//	block 0                superblock
//	blocks 1..b            block allocation bitmap
//	blocks b+1..b+i        inode table (64-byte inodes, up to 6 extents)
//	remaining blocks       file and directory data
//
// Directories store their entries as ordinary file data (inode number,
// type, name records). The root directory is inode 0.
package fstree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"expelliarmus/internal/vdisk"
)

// Magic identifies a formatted filesystem.
var Magic = []byte("EXFS")

const (
	inodeSize  = 64
	maxExtents = 6

	modeFree = 0
	modeFile = 1
	modeDir  = 2
)

// RootInode is the inode number of the root directory.
const RootInode uint32 = 0

type extent struct {
	start  uint32 // first block
	blocks uint32 // run length
}

type inode struct {
	mode    byte
	size    int64
	extents []extent
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Path  string
	Size  int64
	IsDir bool
}

// FS is a mounted filesystem. It is not safe for concurrent use.
type FS struct {
	disk       *vdisk.Disk
	blockSize  int
	total      uint32 // total blocks
	bitmapBlk  uint32 // blocks used by the bitmap
	inodeBlk   uint32 // blocks used by the inode table
	maxInodes  uint32
	dataStart  uint32
	bitmap     []byte // in-memory mirror, written through
	usedBlocks uint32
	files      int
	dirs       int
}

// Format creates a fresh filesystem on the disk, sized for maxInodes files
// and directories, and returns it mounted.
func Format(d *vdisk.Disk, maxInodes uint32) (*FS, error) {
	bs := d.ClusterSize()
	total := uint32(d.VirtualSize() / int64(bs))
	if total < 8 {
		return nil, fmt.Errorf("fstree: disk too small (%d blocks)", total)
	}
	bitmapBlk := (total/8 + uint32(bs) - 1) / uint32(bs)
	inodeBlk := (maxInodes*inodeSize + uint32(bs) - 1) / uint32(bs)
	dataStart := 1 + bitmapBlk + inodeBlk
	if dataStart >= total {
		return nil, fmt.Errorf("fstree: metadata (%d blocks) exceeds disk (%d blocks)", dataStart, total)
	}
	fs := &FS{
		disk:      d,
		blockSize: bs,
		total:     total,
		bitmapBlk: bitmapBlk,
		inodeBlk:  inodeBlk,
		maxInodes: maxInodes,
		dataStart: dataStart,
		bitmap:    make([]byte, int(bitmapBlk)*bs),
	}
	// Reserve metadata blocks.
	for b := uint32(0); b < dataStart; b++ {
		fs.bitmap[b/8] |= 1 << (b % 8)
	}
	if err := fs.flushBitmap(0, dataStart); err != nil {
		return nil, err
	}
	// Superblock.
	sb := make([]byte, bs)
	copy(sb, Magic)
	binary.BigEndian.PutUint32(sb[4:], uint32(bs))
	binary.BigEndian.PutUint32(sb[8:], total)
	binary.BigEndian.PutUint32(sb[12:], bitmapBlk)
	binary.BigEndian.PutUint32(sb[16:], inodeBlk)
	binary.BigEndian.PutUint32(sb[20:], maxInodes)
	if _, err := d.WriteAt(sb, 0); err != nil {
		return nil, err
	}
	// Root directory.
	root := &inode{mode: modeDir}
	if err := fs.writeInode(RootInode, root); err != nil {
		return nil, err
	}
	fs.dirs = 1
	fs.usedBlocks = dataStart
	return fs, nil
}

// Mount opens an existing filesystem on the disk.
func Mount(d *vdisk.Disk) (*FS, error) {
	bs := d.ClusterSize()
	sb := make([]byte, bs)
	if _, err := d.ReadAt(sb, 0); err != nil {
		return nil, fmt.Errorf("fstree: read superblock: %w", err)
	}
	if !bytes.Equal(sb[:4], Magic) {
		return nil, fmt.Errorf("fstree: bad magic (unformatted disk?)")
	}
	if int(binary.BigEndian.Uint32(sb[4:])) != bs {
		return nil, fmt.Errorf("fstree: superblock block size %d != cluster size %d",
			binary.BigEndian.Uint32(sb[4:]), bs)
	}
	fs := &FS{
		disk:      d,
		blockSize: bs,
		total:     binary.BigEndian.Uint32(sb[8:]),
		bitmapBlk: binary.BigEndian.Uint32(sb[12:]),
		inodeBlk:  binary.BigEndian.Uint32(sb[16:]),
		maxInodes: binary.BigEndian.Uint32(sb[20:]),
	}
	fs.dataStart = 1 + fs.bitmapBlk + fs.inodeBlk
	fs.bitmap = make([]byte, int(fs.bitmapBlk)*bs)
	if _, err := d.ReadAt(fs.bitmap, int64(bs)); err != nil {
		return nil, fmt.Errorf("fstree: read bitmap: %w", err)
	}
	for b := uint32(0); b < fs.total; b++ {
		if fs.bitmap[b/8]&(1<<(b%8)) != 0 {
			fs.usedBlocks++
		}
	}
	// Count files and directories.
	for i := uint32(0); i < fs.maxInodes; i++ {
		ino, err := fs.readInode(i)
		if err != nil {
			return nil, err
		}
		switch ino.mode {
		case modeFile:
			fs.files++
		case modeDir:
			fs.dirs++
		}
	}
	return fs, nil
}

// Disk returns the underlying disk.
func (fs *FS) Disk() *vdisk.Disk { return fs.disk }

// NumFiles returns the number of regular files.
func (fs *FS) NumFiles() int { return fs.files }

// NumDirs returns the number of directories (including the root).
func (fs *FS) NumDirs() int { return fs.dirs }

// BlockSize returns the filesystem block size.
func (fs *FS) BlockSize() int { return fs.blockSize }

// UsedBytes returns the bytes consumed by allocated blocks (metadata and
// data) — the "mounted size" of Table II.
func (fs *FS) UsedBytes() int64 { return int64(fs.usedBlocks) * int64(fs.blockSize) }

// FreeBytes returns the unallocated capacity.
func (fs *FS) FreeBytes() int64 {
	return int64(fs.total-fs.usedBlocks) * int64(fs.blockSize)
}

// --- inode table ---

func (fs *FS) inodeOffset(num uint32) int64 {
	return int64(1+fs.bitmapBlk)*int64(fs.blockSize) + int64(num)*inodeSize
}

func (fs *FS) readInode(num uint32) (*inode, error) {
	if num >= fs.maxInodes {
		return nil, fmt.Errorf("fstree: inode %d out of range", num)
	}
	raw := make([]byte, inodeSize)
	if _, err := fs.disk.ReadAt(raw, fs.inodeOffset(num)); err != nil {
		return nil, err
	}
	ino := &inode{mode: raw[0], size: int64(binary.BigEndian.Uint64(raw[2:]))}
	n := int(raw[1])
	if n > maxExtents {
		return nil, fmt.Errorf("fstree: inode %d corrupt extent count %d", num, n)
	}
	for i := 0; i < n; i++ {
		base := 10 + i*8
		ino.extents = append(ino.extents, extent{
			start:  binary.BigEndian.Uint32(raw[base:]),
			blocks: binary.BigEndian.Uint32(raw[base+4:]),
		})
	}
	return ino, nil
}

func (fs *FS) writeInode(num uint32, ino *inode) error {
	if num >= fs.maxInodes {
		return fmt.Errorf("fstree: inode %d out of range", num)
	}
	if len(ino.extents) > maxExtents {
		return fmt.Errorf("fstree: inode %d has %d extents, max %d", num, len(ino.extents), maxExtents)
	}
	raw := make([]byte, inodeSize)
	raw[0] = ino.mode
	raw[1] = byte(len(ino.extents))
	binary.BigEndian.PutUint64(raw[2:], uint64(ino.size))
	for i, e := range ino.extents {
		base := 10 + i*8
		binary.BigEndian.PutUint32(raw[base:], e.start)
		binary.BigEndian.PutUint32(raw[base+4:], e.blocks)
	}
	_, err := fs.disk.WriteAt(raw, fs.inodeOffset(num))
	return err
}

func (fs *FS) allocInode() (uint32, error) {
	for i := uint32(0); i < fs.maxInodes; i++ {
		ino, err := fs.readInode(i)
		if err != nil {
			return 0, err
		}
		if ino.mode == modeFree {
			return i, nil
		}
	}
	return 0, fmt.Errorf("fstree: out of inodes (%d)", fs.maxInodes)
}

// --- block allocation ---

func (fs *FS) blockUsed(b uint32) bool { return fs.bitmap[b/8]&(1<<(b%8)) != 0 }

func (fs *FS) setBlocks(start, n uint32, used bool) error {
	for b := start; b < start+n; b++ {
		if used {
			fs.bitmap[b/8] |= 1 << (b % 8)
		} else {
			fs.bitmap[b/8] &^= 1 << (b % 8)
		}
	}
	if used {
		fs.usedBlocks += n
	} else {
		fs.usedBlocks -= n
	}
	return fs.flushBitmap(start, n)
}

// flushBitmap writes through the bitmap blocks covering [start,start+n).
func (fs *FS) flushBitmap(start, n uint32) error {
	bs := uint32(fs.blockSize)
	firstByte := start / 8
	lastByte := (start + n - 1) / 8
	firstBlk := firstByte / bs
	lastBlk := lastByte / bs
	for blk := firstBlk; blk <= lastBlk; blk++ {
		off := int64(1+blk) * int64(bs)
		_, err := fs.disk.WriteAt(fs.bitmap[blk*bs:(blk+1)*bs], off)
		if err != nil {
			return err
		}
	}
	return nil
}

// allocExtents finds free space for n blocks: the first contiguous run
// that fits if one exists, otherwise the largest free runs (so files stay
// within the inode's maxExtents even when small holes litter the bitmap).
func (fs *FS) allocExtents(n uint32) ([]extent, error) {
	if n == 0 {
		return nil, nil
	}
	// Collect all free runs.
	var runs []extent
	b := fs.dataStart
	for b < fs.total {
		for b < fs.total && fs.blockUsed(b) {
			b++
		}
		if b >= fs.total {
			break
		}
		start := b
		for b < fs.total && !fs.blockUsed(b) {
			b++
		}
		runs = append(runs, extent{start: start, blocks: b - start})
	}
	var out []extent
	contiguous := false
	for _, r := range runs {
		if r.blocks >= n {
			out = []extent{{start: r.start, blocks: n}}
			contiguous = true
			break
		}
	}
	if !contiguous {
		// Largest runs first (ties: lowest start) to minimise extent count.
		sort.Slice(runs, func(i, j int) bool {
			if runs[i].blocks != runs[j].blocks {
				return runs[i].blocks > runs[j].blocks
			}
			return runs[i].start < runs[j].start
		})
		remaining := n
		for _, r := range runs {
			if remaining == 0 {
				break
			}
			take := r.blocks
			if take > remaining {
				take = remaining
			}
			out = append(out, extent{start: r.start, blocks: take})
			remaining -= take
			if len(out) > maxExtents {
				return nil, fmt.Errorf("fstree: file too fragmented (> %d extents for %d blocks)", maxExtents, n)
			}
		}
		if remaining > 0 {
			return nil, fmt.Errorf("fstree: no space (%d blocks short of %d)", remaining, n)
		}
		// Keep extents in disk order for readability and determinism.
		sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	}
	for _, e := range out {
		if err := fs.setBlocks(e.start, e.blocks, true); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (fs *FS) freeExtents(extents []extent) error {
	for _, e := range extents {
		if err := fs.setBlocks(e.start, e.blocks, false); err != nil {
			return err
		}
		// Return the clusters to the disk so its sparse size shrinks.
		fs.disk.Discard(int64(e.start)*int64(fs.blockSize), int64(e.blocks)*int64(fs.blockSize))
	}
	return nil
}

// --- data I/O ---

func (fs *FS) readData(ino *inode) ([]byte, error) {
	out := make([]byte, 0, ino.size)
	remaining := ino.size
	for _, e := range ino.extents {
		span := int64(e.blocks) * int64(fs.blockSize)
		if span > remaining {
			span = remaining
		}
		buf := make([]byte, span)
		if _, err := fs.disk.ReadAt(buf, int64(e.start)*int64(fs.blockSize)); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		remaining -= span
	}
	if remaining != 0 {
		return nil, fmt.Errorf("fstree: inode extents cover %d bytes short of size %d", remaining, ino.size)
	}
	return out, nil
}

// writeData replaces the inode's data, reallocating extents.
func (fs *FS) writeData(ino *inode, data []byte) error {
	if err := fs.freeExtents(ino.extents); err != nil {
		return err
	}
	ino.extents = nil
	ino.size = int64(len(data))
	if len(data) == 0 {
		return nil
	}
	n := uint32((len(data) + fs.blockSize - 1) / fs.blockSize)
	extents, err := fs.allocExtents(n)
	if err != nil {
		return err
	}
	ino.extents = extents
	off := 0
	for _, e := range extents {
		span := int(e.blocks) * fs.blockSize
		if span > len(data)-off {
			span = len(data) - off
		}
		if _, err := fs.disk.WriteAt(data[off:off+span], int64(e.start)*int64(fs.blockSize)); err != nil {
			return err
		}
		off += span
	}
	return nil
}

// --- directories ---

type dirent struct {
	ino  uint32
	mode byte
	name string
}

func parseDir(data []byte) ([]dirent, error) {
	var out []dirent
	r := bytes.NewReader(data)
	for r.Len() > 0 {
		var hdr [5]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		nameLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if nameLen > uint64(r.Len()) {
			return nil, fmt.Errorf("entry name length %d exceeds remaining %d", nameLen, r.Len())
		}
		name := make([]byte, nameLen)
		if nameLen > 0 {
			if _, err := io.ReadFull(r, name); err != nil {
				return nil, err
			}
		}
		out = append(out, dirent{
			ino:  binary.BigEndian.Uint32(hdr[:4]),
			mode: hdr[4],
			name: string(name),
		})
	}
	return out, nil
}

func encodeDir(entries []dirent) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	for _, e := range entries {
		var hdr [5]byte
		binary.BigEndian.PutUint32(hdr[:4], e.ino)
		hdr[4] = e.mode
		buf.Write(hdr[:])
		n := binary.PutUvarint(tmp[:], uint64(len(e.name)))
		buf.Write(tmp[:n])
		buf.WriteString(e.name)
	}
	return buf.Bytes()
}

func (fs *FS) readDirents(num uint32) ([]dirent, *inode, error) {
	ino, err := fs.readInode(num)
	if err != nil {
		return nil, nil, err
	}
	if ino.mode != modeDir {
		return nil, nil, fmt.Errorf("fstree: inode %d is not a directory", num)
	}
	data, err := fs.readData(ino)
	if err != nil {
		return nil, nil, err
	}
	entries, err := parseDir(data)
	if err != nil {
		return nil, nil, fmt.Errorf("fstree: corrupt directory %d: %w", num, err)
	}
	return entries, ino, nil
}

func (fs *FS) writeDirents(num uint32, ino *inode, entries []dirent) error {
	if err := fs.writeData(ino, encodeDir(entries)); err != nil {
		return err
	}
	return fs.writeInode(num, ino)
}

// splitPath cleans p and returns its components; root yields nil.
func splitPath(p string) ([]string, error) {
	clean := path.Clean("/" + p)
	if clean == "/" {
		return nil, nil
	}
	return strings.Split(strings.TrimPrefix(clean, "/"), "/"), nil
}

// lookup resolves a path to (inode number, inode). The root resolves to
// RootInode.
func (fs *FS) lookup(p string) (uint32, *inode, error) {
	parts, err := splitPath(p)
	if err != nil {
		return 0, nil, err
	}
	cur := RootInode
	for _, part := range parts {
		entries, _, err := fs.readDirents(cur)
		if err != nil {
			return 0, nil, err
		}
		found := false
		for _, e := range entries {
			if e.name == part {
				cur = e.ino
				found = true
				break
			}
		}
		if !found {
			return 0, nil, fmt.Errorf("fstree: %s: no such file or directory", p)
		}
	}
	ino, err := fs.readInode(cur)
	if err != nil {
		return 0, nil, err
	}
	return cur, ino, nil
}

// Exists reports whether the path exists.
func (fs *FS) Exists(p string) bool {
	_, _, err := fs.lookup(p)
	return err == nil
}

// Stat returns information about the path.
func (fs *FS) Stat(p string) (FileInfo, error) {
	_, ino, err := fs.lookup(p)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: path.Clean("/" + p), Size: ino.size, IsDir: ino.mode == modeDir}, nil
}

// MkdirAll creates the directory p and any missing parents.
func (fs *FS) MkdirAll(p string) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	cur := RootInode
	for _, part := range parts {
		entries, ino, err := fs.readDirents(cur)
		if err != nil {
			return err
		}
		var next uint32
		found := false
		for _, e := range entries {
			if e.name == part {
				if e.mode != modeDir {
					return fmt.Errorf("fstree: %s: %q exists and is not a directory", p, part)
				}
				next = e.ino
				found = true
				break
			}
		}
		if !found {
			num, err := fs.allocInode()
			if err != nil {
				return err
			}
			if err := fs.writeInode(num, &inode{mode: modeDir}); err != nil {
				return err
			}
			entries = append(entries, dirent{ino: num, mode: modeDir, name: part})
			if err := fs.writeDirents(cur, ino, entries); err != nil {
				return err
			}
			fs.dirs++
			next = num
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces the file at p with data. Parent
// directories must exist (use MkdirAll).
func (fs *FS) WriteFile(p string, data []byte) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("fstree: cannot write to /")
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	name := parts[len(parts)-1]
	dirNum, _, err := fs.lookup(dir)
	if err != nil {
		return fmt.Errorf("fstree: parent of %s: %w", p, err)
	}
	entries, dirIno, err := fs.readDirents(dirNum)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.name == name {
			if e.mode == modeDir {
				return fmt.Errorf("fstree: %s is a directory", p)
			}
			// Replace contents in place.
			ino, err := fs.readInode(e.ino)
			if err != nil {
				return err
			}
			if err := fs.writeData(ino, data); err != nil {
				return err
			}
			return fs.writeInode(e.ino, ino)
		}
	}
	num, err := fs.allocInode()
	if err != nil {
		return err
	}
	ino := &inode{mode: modeFile}
	if err := fs.writeData(ino, data); err != nil {
		return err
	}
	if err := fs.writeInode(num, ino); err != nil {
		return err
	}
	entries = append(entries, dirent{ino: num, mode: modeFile, name: name})
	if err := fs.writeDirents(dirNum, dirIno, entries); err != nil {
		return err
	}
	fs.files++
	return nil
}

// ReadFile returns the contents of the file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	_, ino, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if ino.mode != modeFile {
		return nil, fmt.Errorf("fstree: %s is a directory", p)
	}
	return fs.readData(ino)
}

// ReadDir lists the entries of the directory at p.
func (fs *FS) ReadDir(p string) ([]FileInfo, error) {
	num, ino, err := fs.lookup(p)
	if err != nil {
		return nil, err
	}
	if ino.mode != modeDir {
		return nil, fmt.Errorf("fstree: %s is not a directory", p)
	}
	entries, _, err := fs.readDirents(num)
	if err != nil {
		return nil, err
	}
	base := path.Clean("/" + p)
	out := make([]FileInfo, 0, len(entries))
	for _, e := range entries {
		child, err := fs.readInode(e.ino)
		if err != nil {
			return nil, err
		}
		out = append(out, FileInfo{
			Path:  path.Join(base, e.name),
			Size:  child.size,
			IsDir: e.mode == modeDir,
		})
	}
	return out, nil
}

// Remove deletes the file or empty directory at p.
func (fs *FS) Remove(p string) error {
	parts, err := splitPath(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("fstree: cannot remove /")
	}
	dir := "/" + strings.Join(parts[:len(parts)-1], "/")
	name := parts[len(parts)-1]
	dirNum, _, err := fs.lookup(dir)
	if err != nil {
		return err
	}
	entries, dirIno, err := fs.readDirents(dirNum)
	if err != nil {
		return err
	}
	for i, e := range entries {
		if e.name != name {
			continue
		}
		ino, err := fs.readInode(e.ino)
		if err != nil {
			return err
		}
		if ino.mode == modeDir {
			children, _, err := fs.readDirents(e.ino)
			if err != nil {
				return err
			}
			if len(children) > 0 {
				return fmt.Errorf("fstree: %s: directory not empty", p)
			}
			fs.dirs--
		} else {
			fs.files--
		}
		if err := fs.freeExtents(ino.extents); err != nil {
			return err
		}
		if err := fs.writeInode(e.ino, &inode{mode: modeFree}); err != nil {
			return err
		}
		entries = append(entries[:i], entries[i+1:]...)
		return fs.writeDirents(dirNum, dirIno, entries)
	}
	return fmt.Errorf("fstree: %s: no such file or directory", p)
}

// RemoveAll deletes p and, if it is a directory, everything below it.
// Removing a non-existent path is not an error.
func (fs *FS) RemoveAll(p string) error {
	_, ino, err := fs.lookup(p)
	if err != nil {
		return nil
	}
	if ino.mode == modeDir {
		infos, err := fs.ReadDir(p)
		if err != nil {
			return err
		}
		for _, fi := range infos {
			if err := fs.RemoveAll(fi.Path); err != nil {
				return err
			}
		}
	}
	parts, _ := splitPath(p)
	if len(parts) == 0 {
		return nil // never remove the root itself
	}
	return fs.Remove(p)
}

// Walk visits every file and directory below root in deterministic
// (sorted) order, calling fn for each. Returning a non-nil error from fn
// aborts the walk.
func (fs *FS) Walk(root string, fn func(info FileInfo) error) error {
	num, ino, err := fs.lookup(root)
	if err != nil {
		return err
	}
	base := path.Clean("/" + root)
	if ino.mode != modeDir {
		return fn(FileInfo{Path: base, Size: ino.size, IsDir: false})
	}
	entries, _, err := fs.readDirents(num)
	if err != nil {
		return err
	}
	for _, e := range entries {
		child := path.Join(base, e.name)
		ci, err := fs.readInode(e.ino)
		if err != nil {
			return err
		}
		if ci.mode == modeDir {
			if err := fn(FileInfo{Path: child, Size: ci.size, IsDir: true}); err != nil {
				return err
			}
			if err := fs.Walk(child, fn); err != nil {
				return err
			}
		} else {
			if err := fn(FileInfo{Path: child, Size: ci.size, IsDir: false}); err != nil {
				return err
			}
		}
	}
	return nil
}
